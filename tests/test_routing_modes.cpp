// Routing-configuration coverage: top-1 (Switch-style) and top-E (dense
// mixture) routing through the full model, pre-training mode (trainable gate
// + auxiliary losses), and capacity factor inside a complete transformer.
#include <gtest/gtest.h>

#include <cmath>

#include "core/vela_system.h"
#include "model/transformer.h"
#include "moe/moe_block.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace vela {
namespace {

model::ModelConfig config_with_k(std::size_t top_k) {
  model::ModelConfig cfg = model::ModelConfig::tiny_test();
  cfg.top_k = top_k;
  return cfg;
}

class TopKSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopKSweep, EndToEndTrainingWorksForAnyK) {
  const std::size_t k = GetParam();
  auto cfg = config_with_k(k);
  moe::LocalExpertBackend backend(cfg.num_layers, cfg.num_experts,
                                  cfg.model_dim, cfg.hidden_dim, cfg.lora, 3);
  Rng rng(7);
  model::MoETransformer model(cfg, &backend, rng);

  moe::RoutingStats stats(cfg.num_layers, cfg.num_experts);
  ag::Variable loss = model.loss_batch({{1, 2, 3, 4, 5}}, &stats);
  EXPECT_TRUE(std::isfinite(loss.value()[0]));
  // Each token selects exactly k experts.
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    double total = 0.0;
    for (double f : stats.layer_frequencies(l)) total += f;
    EXPECT_NEAR(total, static_cast<double>(k), 1e-9);
  }
  EXPECT_NO_THROW(ag::backward(loss));
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKSweep, ::testing::Values(1u, 2u, 3u, 4u));

TEST(RoutingModes, TopEEqualsWeightedDenseMixture) {
  // With k = E the combine is a full softmax mixture: weights per token sum
  // to 1 over all experts and every expert sees every token.
  auto cfg = config_with_k(4);  // tiny_test has E = 4
  moe::LocalExpertBackend backend(cfg.num_layers, cfg.num_experts,
                                  cfg.model_dim, cfg.hidden_dim,
                                  nn::LoRAConfig::disabled(), 5);
  Rng rng(9);
  moe::MoEBlock block("b", 0, cfg.model_dim, 4, 4, rng, &backend);
  Rng xr(11);
  ag::Variable x = ag::Variable::constant(ops::randn({6, cfg.model_dim}, xr));
  Tensor moe_out = block.forward(x).value();

  // Reference: explicit softmax-weighted sum of all expert outputs.
  const moe::GateOutput& gate_out = block.last_gate_output();
  Tensor expected({6, cfg.model_dim});
  for (std::size_t e = 0; e < 4; ++e) {
    Tensor ye = backend.expert(0, e).forward(x).value();
    for (std::size_t t = 0; t < 6; ++t) {
      for (std::size_t h = 0; h < cfg.model_dim; ++h) {
        expected.at(t, h) += gate_out.probs.at(t, e) * ye.at(t, h);
      }
    }
  }
  EXPECT_TRUE(ops::allclose(moe_out, expected, 1e-4f, 1e-3f));
}

TEST(RoutingModes, Top1SingleExpertPerToken) {
  auto cfg = config_with_k(1);
  moe::LocalExpertBackend backend(cfg.num_layers, cfg.num_experts,
                                  cfg.model_dim, cfg.hidden_dim,
                                  nn::LoRAConfig::disabled(), 5);
  Rng rng(13);
  moe::MoEBlock block("b", 0, cfg.model_dim, 4, 1, rng, &backend);
  Rng xr(15);
  ag::Variable x = ag::Variable::constant(ops::randn({8, cfg.model_dim}, xr));
  Tensor out = block.forward(x).value();
  const moe::RoutePlan& plan = block.last_plan();
  // Combine weight is exactly 1 (restricted softmax over one logit), so the
  // output row equals that expert's raw output.
  for (std::size_t e = 0; e < 4; ++e) {
    if (plan.expert_tokens[e].empty()) continue;
    Tensor ye = backend.expert(0, e).forward(x).value();
    for (std::size_t t : plan.expert_tokens[e]) {
      for (std::size_t h = 0; h < cfg.model_dim; ++h) {
        EXPECT_NEAR(out.at(t, h), ye.at(t, h), 1e-5f);
      }
    }
  }
}

TEST(RoutingModes, PretrainingModeBalancesFromScratch) {
  // §III pre-training: trainable gate + load-balance aux loss, starting from
  // random weights. After training, routing should be flatter than an
  // identical run WITHOUT the aux loss.
  const auto run = [](float aux_weight) {
    auto cfg = config_with_k(2);
    moe::LocalExpertBackend backend(cfg.num_layers, cfg.num_experts,
                                    cfg.model_dim, cfg.hidden_dim, cfg.lora,
                                    21);
    Rng rng(23);
    model::MoETransformer model(cfg, &backend, rng, /*trainable_gate=*/true);
    // Bias one expert so there is imbalance to correct.
    Tensor& w = model.block(0).gate().weight().mutable_value();
    for (std::size_t h = 0; h < cfg.model_dim; ++h) w.at(0, h) += 0.8f;

    auto params = model.trainable_parameters();
    for (const auto& p : backend.trainable_parameters()) params.push_back(p);
    nn::SGD sgd(params, 0.05f);
    data::SyntheticCorpus corpus(data::CorpusConfig::uniform(cfg.vocab, 4), 3);
    Rng data_rng(29);
    for (int step = 0; step < 40; ++step) {
      sgd.zero_grad();
      ag::backward(model.loss_batch(corpus.sample_batch(4, 8, data_rng),
                                    nullptr, aux_weight));
      sgd.step();
    }
    // Measure resulting block-0 imbalance on a probe batch.
    moe::RoutingStats stats(cfg.num_layers, cfg.num_experts);
    model.forward_batch(corpus.sample_batch(8, 8, data_rng), &stats);
    auto freq = stats.layer_frequencies(0);
    double mx = 0.0;
    for (double f : freq) mx = std::max(mx, f);
    return mx;
  };
  const double without_aux = run(0.0f);
  const double with_aux = run(0.5f);
  EXPECT_LE(with_aux, without_aux + 1e-9);
}

TEST(RoutingModes, CapacityFactorInsideFullModel) {
  auto cfg = config_with_k(2);
  moe::LocalExpertBackend backend(cfg.num_layers, cfg.num_experts,
                                  cfg.model_dim, cfg.hidden_dim, cfg.lora, 31);
  Rng rng(33);
  model::MoETransformer model(cfg, &backend, rng);
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    model.block(l).gate().set_capacity_factor(1.0);
  }
  moe::RoutingStats stats(cfg.num_layers, cfg.num_experts);
  ag::Variable loss =
      model.loss_batch({{1, 2, 3, 4, 5, 6, 7, 8, 9}}, &stats);
  EXPECT_TRUE(std::isfinite(loss.value()[0]));
  // Cap = ceil(8·2/4) = 4 dispatch slots per expert (soft: the last token
  // of a tight assignment may overflow by one).
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    for (std::size_t e = 0; e < cfg.num_experts; ++e) {
      EXPECT_LE(stats.count(l, e), 5u);
    }
  }
  EXPECT_NO_THROW(ag::backward(loss));
}

TEST(RoutingModes, DistributedTop1System) {
  // The whole distributed stack under top-1 routing.
  core::VelaSystemConfig cfg;
  cfg.model = config_with_k(1);
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 41;
  cfg.wire_bits = 32;
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 43);
  core::VelaSystem vela(cfg, &corpus);
  auto batch = corpus.make_dataset(2, 6);
  auto report = vela.train_step(batch);
  EXPECT_TRUE(std::isfinite(report.loss));
  vela.profile(corpus.make_dataset(8, 6), 4);
  EXPECT_NO_THROW(vela.optimize_placement(2.0 * 5.0));
  EXPECT_TRUE(std::isfinite(vela.train_step(batch).loss));
}

}  // namespace
}  // namespace vela
