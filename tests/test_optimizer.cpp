#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace vela {
namespace {

nn::Parameter make_param(const std::string& name, Tensor value) {
  return {name, ag::Variable::leaf(std::move(value), true)};
}

TEST(Optimizer, RejectsFrozenParams) {
  nn::Parameter frozen{"w", ag::Variable::leaf(Tensor::ones({2}), false)};
  EXPECT_THROW(nn::SGD({frozen}, 0.1f), CheckError);
}

TEST(SGD, AppliesGradientDescent) {
  auto p = make_param("w", Tensor::from_vector({1.0f, 2.0f}));
  nn::SGD sgd({p}, 0.5f);
  ag::backward(ag::sum(ag::mul(p.var, p.var)));  // dL/dw = 2w
  sgd.step();
  EXPECT_FLOAT_EQ(p.var.value().at(0), 0.0f);   // 1 - 0.5*2
  EXPECT_FLOAT_EQ(p.var.value().at(1), 0.0f);   // 2 - 0.5*4
}

TEST(SGD, SkipsParamsWithoutGrad) {
  auto p = make_param("w", Tensor::ones({2}));
  nn::SGD sgd({p}, 0.5f);
  sgd.step();  // no backward happened
  EXPECT_FLOAT_EQ(p.var.value().at(0), 1.0f);
}

TEST(SGD, ConvergesOnQuadratic) {
  auto p = make_param("w", Tensor::from_vector({5.0f}));
  nn::SGD sgd({p}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    sgd.zero_grad();
    ag::backward(ag::sum(ag::mul(p.var, p.var)));
    sgd.step();
  }
  EXPECT_NEAR(p.var.value().at(0), 0.0f, 1e-4);
}

TEST(AdamW, FirstStepMovesByLearningRate) {
  auto p = make_param("w", Tensor::from_vector({1.0f}));
  nn::AdamWConfig cfg;
  cfg.lr = 0.01f;
  cfg.weight_decay = 0.0f;
  nn::AdamW adam({p}, cfg);
  ag::backward(ag::sum(p.var));  // grad = 1
  adam.step();
  // With bias correction, the first AdamW step magnitude is ≈ lr.
  EXPECT_NEAR(p.var.value().at(0), 1.0f - 0.01f, 1e-5);
}

TEST(AdamW, DecoupledWeightDecayShrinksWithoutGradSignal) {
  auto p = make_param("w", Tensor::from_vector({10.0f}));
  nn::AdamWConfig cfg;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.1f;
  nn::AdamW adam({p}, cfg);
  // Zero gradient: only the decay term acts.
  p.var.zero_grad();
  ag::backward(ag::sum(ag::scale(p.var, 0.0f)));
  adam.step();
  EXPECT_NEAR(p.var.value().at(0), 10.0f * (1.0f - 0.1f * 0.1f), 1e-4);
}

TEST(AdamW, ConvergesOnQuadratic) {
  auto p = make_param("w", Tensor::from_vector({3.0f, -4.0f}));
  nn::AdamWConfig cfg;
  cfg.lr = 0.05f;
  nn::AdamW adam({p}, cfg);
  for (int i = 0; i < 500; ++i) {
    adam.zero_grad();
    ag::backward(ag::sum(ag::mul(p.var, p.var)));
    adam.step();
  }
  EXPECT_NEAR(p.var.value().at(0), 0.0f, 1e-2);
  EXPECT_NEAR(p.var.value().at(1), 0.0f, 1e-2);
}

TEST(AdamW, StepsCounted) {
  auto p = make_param("w", Tensor::ones({1}));
  nn::AdamW adam({p});
  EXPECT_EQ(adam.steps_taken(), 0u);
  adam.step();
  adam.step();
  EXPECT_EQ(adam.steps_taken(), 2u);
}

TEST(AdamW, PaperHyperparametersAreDefault) {
  nn::AdamWConfig cfg;
  EXPECT_FLOAT_EQ(cfg.lr, 3e-5f);
  EXPECT_FLOAT_EQ(cfg.beta1, 0.8f);
  EXPECT_FLOAT_EQ(cfg.beta2, 0.999f);
  EXPECT_FLOAT_EQ(cfg.eps, 1e-8f);
  EXPECT_FLOAT_EQ(cfg.weight_decay, 3e-7f);
}

TEST(Optimizer, ZeroGradClearsAll) {
  auto p = make_param("w", Tensor::ones({2}));
  nn::SGD sgd({p}, 0.1f);
  ag::backward(ag::sum(p.var));
  EXPECT_TRUE(p.var.has_grad());
  sgd.zero_grad();
  EXPECT_FALSE(p.var.has_grad());
}

}  // namespace
}  // namespace vela
