#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.h"

namespace vela {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MatchesDirectComputation) {
  RunningStat s;
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_DOUBLE_EQ(s.sum(), sum);
}

TEST(Percentile, EndpointsAndMedian) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 73.0), 42.0);
}

TEST(EmpiricalCdf, StepsThroughSample) {
  std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  auto cdf = empirical_cdf(values, {0.5, 1.0, 2.5, 4.0, 9.0});
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.25);
  EXPECT_DOUBLE_EQ(cdf[2], 0.5);
  EXPECT_DOUBLE_EQ(cdf[3], 1.0);
  EXPECT_DOUBLE_EQ(cdf[4], 1.0);
}

TEST(Normalize, SumsToOne) {
  std::vector<double> v{2.0, 3.0, 5.0};
  normalize_in_place(v);
  EXPECT_DOUBLE_EQ(v[0] + v[1] + v[2], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(Normalize, AllZeroIsNoop) {
  std::vector<double> v{0.0, 0.0};
  normalize_in_place(v);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

TEST(Normalize, RejectsNegative) {
  std::vector<double> v{1.0, -1.0};
  EXPECT_THROW(normalize_in_place(v), CheckError);
}

TEST(Entropy, UniformIsLogN) {
  std::vector<double> p{0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(entropy(p), std::log(4.0), 1e-12);
}

TEST(Entropy, DegenerateIsZero) {
  EXPECT_DOUBLE_EQ(entropy({1.0, 0.0, 0.0}), 0.0);
}

TEST(L1Distance, Basics) {
  EXPECT_DOUBLE_EQ(l1_distance({1.0, 2.0}, {0.0, 4.0}), 3.0);
  EXPECT_THROW(l1_distance({1.0}, {1.0, 2.0}), CheckError);
}

}  // namespace
}  // namespace vela
