#include "nn/schedule.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "nn/optimizer.h"
#include "util/check.h"

namespace vela {
namespace {

TEST(Schedule, ConstantLr) {
  nn::ConstantLr schedule(0.01f);
  EXPECT_FLOAT_EQ(schedule.lr(0), 0.01f);
  EXPECT_FLOAT_EQ(schedule.lr(10000), 0.01f);
}

TEST(Schedule, WarmupRampsLinearly) {
  nn::WarmupCosineLr schedule(1.0f, 9, 100);
  EXPECT_GT(schedule.lr(0), 0.0f);
  EXPECT_LT(schedule.lr(0), schedule.lr(5));
  EXPECT_LT(schedule.lr(5), schedule.lr(8));
  EXPECT_NEAR(schedule.lr(4), 0.5f, 1e-5f);  // (4+1)/(9+1)
}

TEST(Schedule, PeakAtWarmupEnd) {
  nn::WarmupCosineLr schedule(2.0f, 10, 100);
  EXPECT_NEAR(schedule.lr(10), 2.0f, 1e-5f);
}

TEST(Schedule, CosineDecaysToMin) {
  nn::WarmupCosineLr schedule(1.0f, 0, 100, 0.1f);
  EXPECT_GT(schedule.lr(1), schedule.lr(50));
  EXPECT_GT(schedule.lr(50), schedule.lr(99));
  EXPECT_NEAR(schedule.lr(100), 0.1f, 1e-6f);
  EXPECT_NEAR(schedule.lr(5000), 0.1f, 1e-6f);  // constant after total
  // Halfway through the cosine: mid-point between peak and min.
  EXPECT_NEAR(schedule.lr(50), 0.55f, 1e-2f);
}

TEST(Schedule, MonotoneDecreasingAfterWarmup) {
  nn::WarmupCosineLr schedule(3e-5f, 20, 500, 1e-6f);
  for (std::size_t step = 20; step < 499; ++step) {
    EXPECT_GE(schedule.lr(step), schedule.lr(step + 1));
  }
}

TEST(Schedule, RejectsBadConfigs) {
  EXPECT_THROW(nn::WarmupCosineLr(0.0f, 5, 100), CheckError);
  EXPECT_THROW(nn::WarmupCosineLr(1.0f, 100, 100), CheckError);
  EXPECT_THROW(nn::WarmupCosineLr(1.0f, 5, 100, 2.0f), CheckError);
}

TEST(Schedule, DrivesOptimizerLearningRate) {
  nn::Parameter p{"w", ag::Variable::leaf(Tensor::ones({1}), true)};
  nn::AdamW adam({p});
  nn::WarmupCosineLr schedule(0.5f, 2, 10);
  adam.set_learning_rate(schedule.lr(0));
  EXPECT_FLOAT_EQ(adam.learning_rate(), schedule.lr(0));
  adam.set_learning_rate(schedule.lr(2));
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.5f);

  nn::SGD sgd({p}, 1.0f);
  sgd.set_learning_rate(0.25f);
  EXPECT_FLOAT_EQ(sgd.learning_rate(), 0.25f);
}

}  // namespace
}  // namespace vela
