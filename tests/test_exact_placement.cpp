#include "placement/exact.h"

#include <gtest/gtest.h>

#include <cmath>

#include "placement/annealing.h"
#include "placement/evaluator.h"
#include "placement/greedy.h"
#include "placement/locality_aware.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vela {
namespace {

placement::PlacementProblem small_problem(std::uint64_t seed,
                                          std::size_t workers = 3,
                                          std::size_t layers = 2,
                                          std::size_t experts = 4) {
  placement::PlacementProblem p;
  p.num_workers = workers;
  p.num_layers = layers;
  p.num_experts = experts;
  Rng rng(seed);
  p.probability = ops::rand_uniform({layers, experts}, rng, 0.05f, 1.0f);
  for (std::size_t w = 0; w < workers; ++w) {
    p.bandwidth.push_back(w == 0 ? 18.3e9 : 1.17e9);
    p.worker_node.push_back(w == 0 ? 0 : 1);
  }
  p.master_node = 0;
  p.capacity.assign(workers, (layers * experts) / workers + 2);
  p.tokens_per_step = 1024.0;
  p.bytes_per_token = 4096.0;
  p.validate();
  return p;
}

double brute_force(const placement::PlacementProblem& p) {
  const std::size_t total = p.num_layers * p.num_experts;
  const std::size_t combos = static_cast<std::size_t>(
      std::pow(double(p.num_workers), double(total)));
  double best = 1e100;
  for (std::size_t mask = 0; mask < combos; ++mask) {
    std::size_t m = mask;
    placement::Placement placement(p.num_layers, p.num_experts);
    std::vector<std::size_t> load(p.num_workers, 0);
    bool ok = true;
    for (std::size_t flat = 0; flat < total && ok; ++flat) {
      const std::size_t w = m % p.num_workers;
      m /= p.num_workers;
      placement.assign(flat / p.num_experts, flat % p.num_experts, w);
      ok = ++load[w] <= p.capacity[w];
    }
    if (!ok) continue;
    best = std::min(best, placement::expected_comm_seconds(p, placement));
  }
  return best;
}

class ExactMatchesBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactMatchesBruteForce, ProvenOptimumEqualsEnumeration) {
  auto problem = small_problem(GetParam());
  placement::ExactPlacement exact;
  auto placement = exact.place(problem);
  ASSERT_TRUE(exact.report().proven_optimal);
  EXPECT_TRUE(placement.feasible(problem));
  const double bnb = placement::expected_comm_seconds(problem, placement);
  const double enumerated = brute_force(problem);
  EXPECT_NEAR(bnb, enumerated, enumerated * 1e-9 + 1e-15);
  // The root LP bound must lower-bound the optimum.
  EXPECT_LE(exact.report().root_lp_bound, bnb + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactMatchesBruteForce,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(ExactPlacement, NeverWorseThanLpRounding) {
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    auto problem = small_problem(seed, 3, 3, 4);
    placement::ExactPlacement exact;
    placement::LocalityAwarePlacement rounding;
    const double t_exact =
        placement::expected_comm_seconds(problem, exact.place(problem));
    const double t_round =
        placement::expected_comm_seconds(problem, rounding.place(problem));
    EXPECT_LE(t_exact, t_round + 1e-12) << "seed " << seed;
  }
}

TEST(ExactPlacement, PrunesAggressively) {
  auto problem = small_problem(42, 3, 3, 4);
  placement::ExactPlacement exact;
  exact.place(problem);
  // Far fewer nodes than the 3^12 ≈ 531k enumeration.
  EXPECT_LT(exact.report().nodes_explored, 20000u);
}

TEST(ExactPlacement, NodeBudgetReportsUnproven) {
  auto problem = small_problem(7, 4, 3, 6);
  placement::ExactOptions options;
  options.max_nodes = 3;
  placement::ExactPlacement exact(options);
  auto placement = exact.place(problem);
  EXPECT_FALSE(exact.report().proven_optimal);
  // Still returns the (feasible) incumbent.
  EXPECT_TRUE(placement.feasible(problem));
}

TEST(Annealing, FeasibleAndAtLeastAsGoodAsGreedyStart) {
  for (std::uint64_t seed = 20; seed < 24; ++seed) {
    auto problem = small_problem(seed, 4, 4, 6);
    placement::AnnealingPlacement annealing(
        placement::AnnealingOptions{8000, 0.2, 0.999, seed});
    placement::GreedyLPTPlacement greedy;
    auto pa = annealing.place(problem);
    EXPECT_TRUE(pa.feasible(problem));
    EXPECT_LE(placement::expected_comm_seconds(problem, pa),
              placement::expected_comm_seconds(problem, greedy.place(problem)) +
                  1e-12)
        << "seed " << seed;
    EXPECT_GT(annealing.moves_accepted(), 0u);
  }
}

TEST(Annealing, ApproachesExactOptimumOnSmallInstances) {
  auto problem = small_problem(30);
  placement::ExactPlacement exact;
  const double optimum =
      placement::expected_comm_seconds(problem, exact.place(problem));
  placement::AnnealingPlacement annealing(
      placement::AnnealingOptions{30000, 0.3, 0.9995, 3});
  const double annealed =
      placement::expected_comm_seconds(problem, annealing.place(problem));
  EXPECT_LE(annealed, optimum * 1.15 + 1e-12);
}

TEST(Annealing, DeterministicInSeed) {
  auto problem = small_problem(40, 4, 3, 5);
  placement::AnnealingPlacement a(placement::AnnealingOptions{5000, 0.2, 0.999, 9});
  placement::AnnealingPlacement b(placement::AnnealingOptions{5000, 0.2, 0.999, 9});
  EXPECT_EQ(a.place(problem).to_string(), b.place(problem).to_string());
}

}  // namespace
}  // namespace vela
