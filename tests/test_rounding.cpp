// Unit tests of the paper's LP rounding (§IV-B) on crafted fractional
// solutions — every branch of the three-step procedure, in isolation from
// the simplex.
#include "placement/rounding.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace vela {
namespace {

using placement::RelaxedSolution;
using placement::RoundingReport;
using placement::round_relaxed_solution;

TEST(Rounding, IntegralSolutionPassesThrough) {
  RelaxedSolution relaxed(2, 1, 3);
  relaxed.set(0, 0, 0, 1.0);
  relaxed.set(1, 0, 1, 1.0);
  relaxed.set(0, 0, 2, 1.0);
  RoundingReport report;
  auto p = round_relaxed_solution(relaxed, {2, 1}, &report);
  EXPECT_EQ(p.worker_of(0, 0), 0u);
  EXPECT_EQ(p.worker_of(0, 1), 1u);
  EXPECT_EQ(p.worker_of(0, 2), 0u);
  EXPECT_EQ(report.thresholded, 3u);
  EXPECT_EQ(report.evicted, 0u);
  EXPECT_EQ(report.reassigned, 0u);
}

TEST(Rounding, ThresholdPicksTheMajorityWorker) {
  RelaxedSolution relaxed(3, 1, 1);
  relaxed.set(0, 0, 0, 0.2);
  relaxed.set(1, 0, 0, 0.7);
  relaxed.set(2, 0, 0, 0.1);
  auto p = round_relaxed_solution(relaxed, {1, 1, 1});
  EXPECT_EQ(p.worker_of(0, 0), 1u);
}

TEST(Rounding, ExactHalfGoesToAffinityStep) {
  // 0.5/0.5 split: neither exceeds the threshold ("above 0.5"), so step 3
  // assigns by affinity (first max wins the tie deterministically).
  RelaxedSolution relaxed(2, 1, 1);
  relaxed.set(0, 0, 0, 0.5);
  relaxed.set(1, 0, 0, 0.5);
  RoundingReport report;
  auto p = round_relaxed_solution(relaxed, {1, 1}, &report);
  EXPECT_EQ(report.thresholded, 0u);
  EXPECT_EQ(report.reassigned, 1u);
  EXPECT_EQ(p.worker_of(0, 0), 0u);
}

TEST(Rounding, CapacityRepairEvictsLowestAffinity) {
  // Worker 0 wins three experts (0.9, 0.8, 0.6) but has capacity 2: the
  // 0.6 assignment must be evicted and land on worker 1.
  RelaxedSolution relaxed(2, 1, 3);
  relaxed.set(0, 0, 0, 0.9);
  relaxed.set(1, 0, 0, 0.1);
  relaxed.set(0, 0, 1, 0.8);
  relaxed.set(1, 0, 1, 0.2);
  relaxed.set(0, 0, 2, 0.6);
  relaxed.set(1, 0, 2, 0.4);
  RoundingReport report;
  auto p = round_relaxed_solution(relaxed, {2, 3}, &report);
  EXPECT_EQ(report.thresholded, 3u);
  EXPECT_EQ(report.evicted, 1u);
  EXPECT_EQ(report.reassigned, 1u);
  EXPECT_EQ(p.worker_of(0, 0), 0u);
  EXPECT_EQ(p.worker_of(0, 1), 0u);
  EXPECT_EQ(p.worker_of(0, 2), 1u);
}

TEST(Rounding, OrphanSkipsFullWorkersEvenWithHigherAffinity) {
  // The orphan's best-affinity worker 0 is already full; it must take
  // worker 1 (next-best with capacity).
  RelaxedSolution relaxed(3, 1, 2);
  relaxed.set(0, 0, 0, 1.0);              // fills worker 0
  relaxed.set(0, 0, 1, 0.45);             // orphan prefers worker 0...
  relaxed.set(1, 0, 1, 0.35);
  relaxed.set(2, 0, 1, 0.20);
  auto p = round_relaxed_solution(relaxed, {1, 1, 1});
  EXPECT_EQ(p.worker_of(0, 0), 0u);
  EXPECT_EQ(p.worker_of(0, 1), 1u);       // ...but lands on worker 1
}

TEST(Rounding, CascadingEvictionsConverge) {
  // Two layers' experts all prefer worker 0 (capacity 1): exactly one
  // survives there; the rest distribute by affinity.
  RelaxedSolution relaxed(2, 2, 2);
  double v = 0.9;
  for (std::size_t l = 0; l < 2; ++l) {
    for (std::size_t e = 0; e < 2; ++e) {
      relaxed.set(0, l, e, v);
      relaxed.set(1, l, e, 1.0 - v);
      v -= 0.05;
    }
  }
  auto p = round_relaxed_solution(relaxed, {1, 3});
  std::size_t on_zero = 0;
  for (std::size_t l = 0; l < 2; ++l) {
    for (std::size_t e = 0; e < 2; ++e) {
      if (p.worker_of(l, e) == 0) ++on_zero;
    }
  }
  EXPECT_EQ(on_zero, 1u);
  // The survivor is the strongest-affinity assignment (0.9).
  EXPECT_EQ(p.worker_of(0, 0), 0u);
}

TEST(Rounding, InfeasibleCapacityThrows) {
  RelaxedSolution relaxed(2, 1, 3);
  EXPECT_THROW(round_relaxed_solution(relaxed, {1, 1}), CheckError);
}

TEST(Rounding, RejectsOutOfRangeValues) {
  RelaxedSolution relaxed(2, 1, 1);
  EXPECT_THROW(relaxed.set(0, 0, 0, 1.5), CheckError);
  EXPECT_THROW(relaxed.set(0, 0, 0, -0.2), CheckError);
  EXPECT_THROW(relaxed.get(2, 0, 0), CheckError);
}

TEST(Rounding, ColumnSums) {
  RelaxedSolution relaxed(3, 1, 1);
  relaxed.set(0, 0, 0, 0.25);
  relaxed.set(1, 0, 0, 0.25);
  relaxed.set(2, 0, 0, 0.5);
  EXPECT_DOUBLE_EQ(relaxed.column_sum(0, 0), 1.0);
}

TEST(Rounding, AlwaysProducesCompleteFeasiblePlacement) {
  // Property: for any relaxed solution with column sums 1 and feasible
  // capacities, the result assigns every expert within capacity.
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t workers = 2 + rng.uniform_index(3);
    const std::size_t layers = 1 + rng.uniform_index(3);
    const std::size_t experts = 2 + rng.uniform_index(4);
    RelaxedSolution relaxed(workers, layers, experts);
    for (std::size_t l = 0; l < layers; ++l) {
      for (std::size_t e = 0; e < experts; ++e) {
        std::vector<double> weights(workers);
        double total = 0.0;
        for (auto& w : weights) {
          w = rng.uniform(0.0, 1.0);
          total += w;
        }
        for (std::size_t w = 0; w < workers; ++w) {
          relaxed.set(w, l, e, weights[w] / total);
        }
      }
    }
    const std::size_t cap =
        (layers * experts + workers - 1) / workers + 1;
    auto p = round_relaxed_solution(relaxed,
                                    std::vector<std::size_t>(workers, cap));
    auto loads = p.worker_loads(workers);
    for (std::size_t w = 0; w < workers; ++w) EXPECT_LE(loads[w], cap);
    std::size_t total_assigned = 0;
    for (std::size_t w = 0; w < workers; ++w) total_assigned += loads[w];
    EXPECT_EQ(total_assigned, layers * experts);
  }
}

}  // namespace
}  // namespace vela
