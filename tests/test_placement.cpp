#include "placement/placement.h"

#include <gtest/gtest.h>

#include "placement/evaluator.h"
#include "placement/greedy.h"
#include "placement/random.h"
#include "placement/sequential.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace vela {
namespace {

placement::PlacementProblem make_problem(std::size_t workers = 4,
                                         std::size_t layers = 3,
                                         std::size_t experts = 4,
                                         double slack = 1.5,
                                         std::uint64_t seed = 1) {
  placement::PlacementProblem p;
  p.num_workers = workers;
  p.num_layers = layers;
  p.num_experts = experts;
  Rng rng(seed);
  p.probability = ops::rand_uniform({layers, experts}, rng, 0.05f, 1.0f);
  for (std::size_t w = 0; w < workers; ++w) {
    // Half the workers fast (intra-node), half slow (cross-node).
    p.bandwidth.push_back(w < workers / 2 ? 18.3e9 : 1.17e9);
    p.worker_node.push_back(w < workers / 2 ? 0 : 1 + w % 2);
  }
  const auto cap = static_cast<std::size_t>(
      static_cast<double>(layers * experts) / static_cast<double>(workers) *
          slack +
      0.999);
  p.capacity.assign(workers, cap);
  p.master_node = 0;
  p.tokens_per_step = 1024.0;
  p.bytes_per_token = 8192.0;
  p.validate();
  return p;
}

TEST(PlacementProblem, ValidateCatchesCapacityShortfall) {
  auto p = make_problem();
  p.capacity.assign(p.num_workers, 1);  // 4 slots for 12 experts
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(PlacementProblem, ValidateCatchesShapeMismatch) {
  auto p = make_problem();
  p.bandwidth.pop_back();
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(PlacementProblem, CostCoefficientMatchesEquationSix) {
  auto p = make_problem();
  // Eq. (6): 2 · bytes_per_token / B_n · P_le · K.
  const double expected = 2.0 * 8192.0 / 18.3e9 *
                          double(p.probability.at(1, 2)) * 1024.0;
  EXPECT_NEAR(p.cost_coefficient(0, 1, 2), expected, 1e-12);
  // Slower workers cost proportionally more.
  EXPECT_NEAR(p.cost_coefficient(3, 1, 2) / p.cost_coefficient(0, 1, 2),
              18.3 / 1.17, 1e-6);
}

TEST(Placement, AssignAndQuery) {
  placement::Placement p(2, 3);
  p.assign(0, 0, 1);
  EXPECT_EQ(p.worker_of(0, 0), 1u);
  EXPECT_THROW(p.worker_of(0, 1), CheckError);  // unassigned
  EXPECT_THROW(p.assign(2, 0, 0), CheckError);  // out of range
}

TEST(Placement, WorkerLoadsAndExpertsOf) {
  placement::Placement p(2, 2);
  p.assign(0, 0, 0);
  p.assign(0, 1, 1);
  p.assign(1, 0, 0);
  p.assign(1, 1, 0);
  auto loads = p.worker_loads(2);
  EXPECT_EQ(loads[0], 3u);
  EXPECT_EQ(loads[1], 1u);
  auto experts = p.experts_of(0);
  EXPECT_EQ(experts.size(), 3u);
}

TEST(Placement, FeasibilityChecksCapacityAndCompleteness) {
  auto problem = make_problem(2, 1, 2, 1.0);
  placement::Placement p(1, 2);
  EXPECT_FALSE(p.feasible(problem));  // unassigned
  p.assign(0, 0, 0);
  p.assign(0, 1, 0);
  EXPECT_FALSE(p.feasible(problem));  // capacity 1 per worker exceeded
  p.assign(0, 1, 1);
  EXPECT_TRUE(p.feasible(problem));
}

TEST(SequentialPlacement, RoundRobinLayout) {
  auto problem = make_problem(4, 2, 6, 2.0);
  placement::SequentialPlacement strategy;
  auto p = strategy.place(problem);
  EXPECT_TRUE(p.feasible(problem));
  EXPECT_EQ(p.worker_of(0, 0), 0u);
  EXPECT_EQ(p.worker_of(0, 5), 1u);
  EXPECT_EQ(p.worker_of(1, 4), 0u);
}

TEST(RandomPlacement, FeasibleAndSeedDeterministic) {
  auto problem = make_problem();
  placement::RandomPlacement a(5), b(5), c(6);
  auto pa = a.place(problem);
  auto pb = b.place(problem);
  auto pc = c.place(problem);
  EXPECT_TRUE(pa.feasible(problem));
  EXPECT_EQ(pa.to_string(), pb.to_string());
  EXPECT_NE(pa.to_string(), pc.to_string());
}

TEST(RandomPlacement, RespectsTightCapacity) {
  auto problem = make_problem(4, 3, 4, 1.0);  // exactly 3 per worker
  placement::RandomPlacement strategy(9);
  auto p = strategy.place(problem);
  EXPECT_TRUE(p.feasible(problem));
  for (std::size_t load : p.worker_loads(4)) EXPECT_EQ(load, 3u);
}

TEST(GreedyPlacement, FeasibleAndBeatsSequentialOnSkewedLoad) {
  auto problem = make_problem(4, 6, 4, 1.5, 3);
  // Make expert 3 extremely hot in every layer. Sequential pins it to the
  // slow worker 3 (e mod N); a load-aware strategy must do better.
  for (std::size_t l = 0; l < problem.num_layers; ++l) {
    problem.probability.at(l, 3) = 1.0f;
    for (std::size_t e = 0; e < 3; ++e) {
      problem.probability.at(l, e) = 0.05f;
    }
  }
  placement::GreedyLPTPlacement greedy;
  placement::SequentialPlacement sequential;
  auto pg = greedy.place(problem);
  auto ps = sequential.place(problem);
  EXPECT_TRUE(pg.feasible(problem));
  EXPECT_LE(placement::expected_comm_seconds(problem, pg),
            placement::expected_comm_seconds(problem, ps) + 1e-12);
}

TEST(Evaluator, LayerTimeIsMaxOverWorkers) {
  auto problem = make_problem(2, 1, 2, 2.0);
  placement::Placement p(1, 2);
  p.assign(0, 0, 0);
  p.assign(0, 1, 1);
  const double t0 = problem.cost_coefficient(0, 0, 0);
  const double t1 = problem.cost_coefficient(1, 0, 1);
  EXPECT_NEAR(placement::expected_layer_comm_seconds(problem, p, 0),
              std::max(t0, t1), 1e-15);
}

TEST(Evaluator, TotalIsSumOfLayers) {
  auto problem = make_problem(2, 3, 2, 2.0);
  placement::SequentialPlacement strategy;
  auto p = strategy.place(problem);
  double total = 0.0;
  for (std::size_t l = 0; l < 3; ++l) {
    total += placement::expected_layer_comm_seconds(problem, p, l);
  }
  EXPECT_NEAR(placement::expected_comm_seconds(problem, p), total, 1e-15);
}

TEST(Evaluator, ExternalBytesCountOnlyRemoteWorkers) {
  auto problem = make_problem(2, 1, 2, 2.0);
  placement::Placement all_local(1, 2);
  all_local.assign(0, 0, 0);
  all_local.assign(0, 1, 0);  // worker 0 on master node
  EXPECT_DOUBLE_EQ(placement::expected_external_bytes(problem, all_local), 0.0);

  placement::Placement all_remote(1, 2);
  all_remote.assign(0, 0, 1);
  all_remote.assign(0, 1, 1);
  const double tokens =
      (double(problem.probability.at(0, 0)) + problem.probability.at(0, 1)) *
      problem.tokens_per_step;
  EXPECT_NEAR(placement::expected_external_bytes(problem, all_remote),
              4.0 * tokens * problem.bytes_per_token, 1e-6);
}

TEST(Evaluator, LowerBoundHolds) {
  auto problem = make_problem(4, 4, 5, 1.5, 7);
  placement::SequentialPlacement sequential;
  placement::GreedyLPTPlacement greedy;
  const double lb = placement::comm_time_lower_bound(problem);
  EXPECT_GE(placement::expected_comm_seconds(problem, sequential.place(problem)),
            lb - 1e-12);
  EXPECT_GE(placement::expected_comm_seconds(problem, greedy.place(problem)),
            lb - 1e-12);
}

}  // namespace
}  // namespace vela
