#include "data/corpus.h"

#include <gtest/gtest.h>

#include "data/batch.h"
#include "data/tokenizer.h"
#include "util/check.h"
#include "util/stats.h"

namespace vela {
namespace {

TEST(CharTokenizer, RoundTrip) {
  data::CharTokenizer tok("hello world");
  const std::string text = "dlrow olleh";
  EXPECT_EQ(tok.decode(tok.encode(text)), text);
}

TEST(CharTokenizer, VocabIsDistinctChars) {
  data::CharTokenizer tok("aabbc");
  EXPECT_EQ(tok.vocab_size(), 3u);
}

TEST(CharTokenizer, UnknownMapsToZero) {
  data::CharTokenizer tok("ab");
  auto ids = tok.encode("z");
  EXPECT_EQ(ids[0], 0u);
}

TEST(Corpus, PresetsHaveExpectedOrdering) {
  auto wiki = data::CorpusConfig::wikitext_like(96, 8);
  auto alpaca = data::CorpusConfig::alpaca_like(96, 8);
  // WikiText-like must be strictly more concentrated than Alpaca-like.
  EXPECT_GT(wiki.domain_zipf, alpaca.domain_zipf);
  EXPECT_GT(wiki.purity, alpaca.purity);
}

TEST(Corpus, TokensInRangeAndDomainMapping) {
  data::SyntheticCorpus corpus(data::CorpusConfig::wikitext_like(50, 5), 1);
  Rng rng(2);
  auto seq = corpus.sample_sequence(100, rng);
  for (std::size_t t : seq) {
    ASSERT_LT(t, 50u);
    EXPECT_EQ(corpus.domain_of_token(t), t % 5);
  }
}

TEST(Corpus, DatasetIsDeterministic) {
  data::SyntheticCorpus a(data::CorpusConfig::wikitext_like(50, 5), 42);
  data::SyntheticCorpus b(data::CorpusConfig::wikitext_like(50, 5), 42);
  EXPECT_EQ(a.make_dataset(5, 16), b.make_dataset(5, 16));
}

TEST(Corpus, DifferentSeedsDifferentDatasets) {
  data::SyntheticCorpus a(data::CorpusConfig::wikitext_like(50, 5), 1);
  data::SyntheticCorpus b(data::CorpusConfig::wikitext_like(50, 5), 2);
  EXPECT_NE(a.make_dataset(5, 16), b.make_dataset(5, 16));
}

TEST(Corpus, DomainDistributionNormalized) {
  data::SyntheticCorpus corpus(data::CorpusConfig::alpaca_like(60, 6), 3);
  auto dist = corpus.domain_distribution();
  double total = 0.0;
  for (double d : dist) total += d;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Corpus, EmpiricalDomainUsageMatchesAnalytic) {
  data::SyntheticCorpus corpus(data::CorpusConfig::wikitext_like(60, 6), 4);
  const auto analytic = corpus.domain_distribution();
  Rng rng(5);
  std::vector<double> counts(6, 0.0);
  const int seqs = 3000, len = 20;
  for (int s = 0; s < seqs; ++s) {
    for (std::size_t t : corpus.sample_sequence(len, rng)) {
      counts[corpus.domain_of_token(t)] += 1.0;
    }
  }
  normalize_in_place(counts);
  EXPECT_LT(l1_distance(counts, analytic), 0.05);
}

TEST(Corpus, WikitextMoreConcentratedThanAlpaca) {
  data::SyntheticCorpus wiki(data::CorpusConfig::wikitext_like(60, 6), 7);
  data::SyntheticCorpus alpaca(data::CorpusConfig::alpaca_like(60, 6), 7);
  EXPECT_LT(entropy(wiki.domain_distribution()),
            entropy(alpaca.domain_distribution()));
}

TEST(Corpus, UniformConfigIsFlat) {
  data::SyntheticCorpus corpus(data::CorpusConfig::uniform(60, 6), 8);
  auto dist = corpus.domain_distribution();
  for (double d : dist) EXPECT_NEAR(d, 1.0 / 6.0, 1e-9);
}

TEST(Corpus, VocabSmallerThanDomainsRejected) {
  EXPECT_THROW(
      data::SyntheticCorpus(data::CorpusConfig::uniform(3, 6), 1),
      CheckError);
}

TEST(BatchIterator, YieldsRequestedBatchSize) {
  data::SyntheticCorpus corpus(data::CorpusConfig::wikitext_like(50, 5), 1);
  data::BatchIterator it(corpus.make_dataset(10, 8), 4, 2);
  auto batch = it.next();
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].size(), 8u);
}

TEST(BatchIterator, WrapsAroundEpochs) {
  data::SyntheticCorpus corpus(data::CorpusConfig::wikitext_like(50, 5), 1);
  data::BatchIterator it(corpus.make_dataset(3, 8), 2, 2);
  EXPECT_EQ(it.epochs_completed(), 0u);
  it.next();
  it.next();  // needs a reshuffle after 3 sequences
  EXPECT_GE(it.epochs_completed(), 1u);
}

TEST(BatchIterator, UnshuffledPreservesOrder) {
  std::vector<std::vector<std::size_t>> data{{1, 1}, {2, 2}, {3, 3}};
  data::BatchIterator it(data, 3, 0, /*shuffle=*/false);
  auto batch = it.next();
  EXPECT_EQ(batch[0][0], 1u);
  EXPECT_EQ(batch[1][0], 2u);
  EXPECT_EQ(batch[2][0], 3u);
}

TEST(BatchIterator, RejectsEmptyDataset) {
  EXPECT_THROW(data::BatchIterator({}, 2, 0), CheckError);
}

}  // namespace
}  // namespace vela
