#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/check.h"

namespace vela {
namespace {

TEST(TensorOps, ElementwiseAddSubMul) {
  Tensor a = Tensor::from_vector({1.0f, 2.0f, 3.0f});
  Tensor b = Tensor::from_vector({4.0f, 5.0f, 6.0f});
  EXPECT_EQ(ops::add(a, b).at(0), 5.0f);
  EXPECT_EQ(ops::sub(b, a).at(2), 3.0f);
  EXPECT_EQ(ops::mul(a, b).at(1), 10.0f);
  EXPECT_EQ(ops::scale(a, 2.0f).at(2), 6.0f);
  EXPECT_EQ(ops::neg(a).at(0), -1.0f);
}

TEST(TensorOps, SiluValues) {
  Tensor x = Tensor::from_vector({0.0f, 100.0f, -100.0f});
  Tensor y = ops::silu(x);
  EXPECT_FLOAT_EQ(y.at(0), 0.0f);
  EXPECT_NEAR(y.at(1), 100.0f, 1e-3);
  EXPECT_NEAR(y.at(2), 0.0f, 1e-3);
}

TEST(TensorOps, SiluGradMatchesNumeric) {
  Rng rng(3);
  Tensor x = ops::randn({8}, rng);
  Tensor g = ops::silu_grad(x);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    Tensor up = x, down = x;
    up[i] += eps;
    down[i] -= eps;
    const float numeric =
        (ops::silu(up)[i] - ops::silu(down)[i]) / (2.0f * eps);
    EXPECT_NEAR(g[i], numeric, 1e-3);
  }
}

TEST(TensorOps, MatmulSmall) {
  Tensor a = Tensor::from_rows({{1.0f, 2.0f}, {3.0f, 4.0f}});
  Tensor b = Tensor::from_rows({{5.0f, 6.0f}, {7.0f, 8.0f}});
  Tensor c = ops::matmul(a, b);
  EXPECT_EQ(c.at(0, 0), 19.0f);
  EXPECT_EQ(c.at(0, 1), 22.0f);
  EXPECT_EQ(c.at(1, 0), 43.0f);
  EXPECT_EQ(c.at(1, 1), 50.0f);
}

TEST(TensorOps, MatmulShapeMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  EXPECT_THROW(ops::matmul(a, b), CheckError);
}

TEST(TensorOps, MatmulVariantsAgree) {
  Rng rng(5);
  Tensor a = ops::randn({4, 6}, rng);
  Tensor b = ops::randn({6, 5}, rng);
  Tensor direct = ops::matmul(a, b);
  // matmul_tn(Aᵀ stored, B) == A·B when we pass A transposed.
  Tensor at = ops::transpose(a);
  EXPECT_TRUE(ops::allclose(ops::matmul_tn(at, b), direct));
  // matmul_nt(A, Bᵀ stored) == A·B.
  Tensor bt = ops::transpose(b);
  EXPECT_TRUE(ops::allclose(ops::matmul_nt(a, bt), direct));
}

TEST(TensorOps, TransposeRoundTrip) {
  Rng rng(7);
  Tensor a = ops::randn({3, 5}, rng);
  EXPECT_TRUE(ops::allclose(ops::transpose(ops::transpose(a)), a));
}

TEST(TensorOps, AddRowBroadcast) {
  Tensor a = Tensor::from_rows({{1.0f, 2.0f}, {3.0f, 4.0f}});
  Tensor bias = Tensor::from_vector({10.0f, 20.0f});
  Tensor out = ops::add_row_broadcast(a, bias);
  EXPECT_EQ(out.at(0, 0), 11.0f);
  EXPECT_EQ(out.at(1, 1), 24.0f);
}

TEST(TensorOps, Reductions) {
  Tensor a = Tensor::from_rows({{1.0f, -2.0f}, {3.0f, 4.0f}});
  EXPECT_FLOAT_EQ(ops::sum(a), 6.0f);
  EXPECT_FLOAT_EQ(ops::mean(a), 1.5f);
  EXPECT_FLOAT_EQ(ops::max_abs(a), 4.0f);
  Tensor rows = ops::sum_rows(a);
  EXPECT_FLOAT_EQ(rows.at(0), 4.0f);
  EXPECT_FLOAT_EQ(rows.at(1), 2.0f);
}

TEST(TensorOps, DotAndNorm) {
  Tensor a = Tensor::from_vector({3.0f, 4.0f});
  EXPECT_FLOAT_EQ(ops::dot(a, a), 25.0f);
  EXPECT_FLOAT_EQ(ops::l2_norm(a), 5.0f);
}

TEST(TensorOps, SoftmaxRowsSumToOne) {
  Rng rng(11);
  Tensor logits = ops::randn({5, 7}, rng, 0.0f, 3.0f);
  Tensor p = ops::softmax_rows(logits);
  for (std::size_t i = 0; i < 5; ++i) {
    float row = 0.0f;
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_GT(p.at(i, j), 0.0f);
      row += p.at(i, j);
    }
    EXPECT_NEAR(row, 1.0f, 1e-5);
  }
}

TEST(TensorOps, SoftmaxNumericallyStableWithLargeLogits) {
  Tensor logits = Tensor::from_rows({{1000.0f, 999.0f}});
  Tensor p = ops::softmax_rows(logits);
  EXPECT_TRUE(p.all_finite());
  EXPECT_NEAR(p.at(0, 0) + p.at(0, 1), 1.0f, 1e-6);
  EXPECT_GT(p.at(0, 0), p.at(0, 1));
}

TEST(TensorOps, LogSoftmaxConsistentWithSoftmax) {
  Rng rng(13);
  Tensor logits = ops::randn({3, 4}, rng);
  Tensor p = ops::softmax_rows(logits);
  Tensor logp = ops::log_softmax_rows(logits);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    EXPECT_NEAR(std::exp(logp[i]), p[i], 1e-5);
  }
}

TEST(TensorOps, CrossEntropyOfPerfectPrediction) {
  Tensor logits = Tensor::from_rows({{100.0f, 0.0f}, {0.0f, 100.0f}});
  EXPECT_NEAR(ops::cross_entropy(logits, {0, 1}), 0.0f, 1e-5);
}

TEST(TensorOps, CrossEntropyUniformIsLogC) {
  Tensor logits = Tensor::zeros({2, 4});
  EXPECT_NEAR(ops::cross_entropy(logits, {1, 2}), std::log(4.0f), 1e-5);
}

TEST(TensorOps, CrossEntropyGradSumsToZeroPerRow) {
  Rng rng(17);
  Tensor logits = ops::randn({4, 6}, rng);
  Tensor g = ops::cross_entropy_grad(logits, {0, 1, 2, 3});
  for (std::size_t i = 0; i < 4; ++i) {
    float row = 0.0f;
    for (std::size_t j = 0; j < 6; ++j) row += g.at(i, j);
    EXPECT_NEAR(row, 0.0f, 1e-6);
  }
}

TEST(TensorOps, TopkRowsOrderedDescending) {
  Tensor logits = Tensor::from_rows({{0.1f, 0.9f, 0.5f, 0.3f}});
  auto topk = ops::topk_rows(logits, 3);
  ASSERT_EQ(topk[0].size(), 3u);
  EXPECT_EQ(topk[0][0], 1u);
  EXPECT_EQ(topk[0][1], 2u);
  EXPECT_EQ(topk[0][2], 3u);
}

TEST(TensorOps, TopkDeterministicTieBreak) {
  Tensor logits = Tensor::from_rows({{0.5f, 0.5f, 0.5f}});
  auto topk = ops::topk_rows(logits, 2);
  EXPECT_EQ(topk[0][0], 0u);
  EXPECT_EQ(topk[0][1], 1u);
}

TEST(TensorOps, GatherScatterRoundTrip) {
  Tensor a = Tensor::from_rows({{1.0f, 2.0f}, {3.0f, 4.0f}, {5.0f, 6.0f}});
  std::vector<std::size_t> idx{2, 0};
  Tensor g = ops::gather_rows(a, idx);
  EXPECT_EQ(g.at(0, 0), 5.0f);
  EXPECT_EQ(g.at(1, 1), 2.0f);

  Tensor out({3, 2});
  ops::scatter_add_rows(out, g, idx);
  EXPECT_EQ(out.at(2, 0), 5.0f);
  EXPECT_EQ(out.at(0, 1), 2.0f);
  EXPECT_EQ(out.at(1, 0), 0.0f);
}

TEST(TensorOps, ScatterAccumulatesOnCollision) {
  Tensor src = Tensor::from_rows({{1.0f}, {2.0f}});
  Tensor out({1, 1});
  ops::scatter_add_rows(out, src, {0, 0});
  EXPECT_EQ(out.at(0, 0), 3.0f);
}

TEST(TensorOps, GatherEmptyIndicesThrows) {
  Tensor a({2, 2});
  EXPECT_THROW(ops::gather_rows(a, {}), CheckError);
}

TEST(TensorOps, RandnMoments) {
  Rng rng(19);
  Tensor t = ops::randn({10000}, rng, 1.0f, 2.0f);
  float sum = 0.0f, sumsq = 0.0f;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sumsq += (t[i] - 1.0f) * (t[i] - 1.0f);
  }
  const float n = static_cast<float>(t.size());
  EXPECT_NEAR(sum / n, 1.0f, 0.1f);
  EXPECT_NEAR(sumsq / n, 4.0f, 0.2f);
}

TEST(TensorOps, AllcloseToleratesSmallDeviation) {
  Tensor a = Tensor::ones({3});
  Tensor b = a;
  b.at(0) += 1e-6f;
  EXPECT_TRUE(ops::allclose(a, b));
  b.at(0) += 1.0f;
  EXPECT_FALSE(ops::allclose(a, b));
}

TEST(TensorOps, HalfPrecisionRoundTripError) {
  Rng rng(23);
  Tensor a = ops::randn({1000}, rng);
  Tensor h = ops::to_half_precision(a);
  EXPECT_TRUE(h.all_finite());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // fp16 has ~3 decimal digits: relative error below 2^-10.
    EXPECT_NEAR(h[i], a[i], std::abs(a[i]) * 1.0f / 1024.0f + 1e-7f);
  }
}

TEST(TensorOps, HalfPrecisionKeepsExactValues) {
  Tensor a = Tensor::from_vector({0.5f, 1.0f, 2.0f, -4.0f, 0.0f});
  Tensor h = ops::to_half_precision(a);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(h[i], a[i]);
}

}  // namespace
}  // namespace vela
