#include "core/vela_system.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/batch.h"
#include "placement/sequential.h"
#include "util/check.h"

namespace vela {
namespace {

core::VelaSystemConfig small_config() {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 3;
  cfg.wire_bits = 32;
  cfg.clock.compute_seconds = 0.5;
  return cfg;
}

data::SyntheticCorpus small_corpus(const model::ModelConfig& m) {
  return data::SyntheticCorpus(data::CorpusConfig::wikitext_like(m.vocab, 6),
                               17);
}

TEST(VelaSystem, ConstructsAndTrainsOneStep) {
  auto cfg = small_config();
  auto corpus = small_corpus(cfg.model);
  core::VelaSystem vela(cfg, &corpus);
  auto batch = corpus.make_dataset(2, 6);
  auto report = vela.train_step(batch);
  EXPECT_TRUE(std::isfinite(report.loss));
  EXPECT_GT(report.loss, 0.0f);
  EXPECT_GT(report.external_mb_per_node, 0.0);
  EXPECT_GT(report.comm_seconds, 0.0);
  EXPECT_NEAR(report.step_seconds, report.comm_seconds + 0.5, 1e-9);
  EXPECT_EQ(vela.steps_taken(), 1u);
}

TEST(VelaSystem, LossDecreasesOverRepeatedSteps) {
  auto cfg = small_config();
  cfg.adamw.lr = 3e-3f;  // faster learning for a short test
  auto corpus = small_corpus(cfg.model);
  core::VelaSystem vela(cfg, &corpus);
  auto batch = corpus.make_dataset(2, 8);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 15; ++i) {
    auto report = vela.train_step(batch);
    if (i == 0) first = report.loss;
    last = report.loss;
  }
  EXPECT_LT(last, first);
}

TEST(VelaSystem, ProfileThenOptimizeReducesExternalTraffic) {
  auto cfg = small_config();
  auto corpus = small_corpus(cfg.model);
  core::VelaSystem vela(cfg, &corpus);
  auto dataset = corpus.make_dataset(16, 8);

  // Baseline: a few steps under the initial sequential placement.
  data::BatchIterator it(dataset, 4, 5);
  double seq_traffic = 0.0;
  const int kSteps = 4;
  for (int i = 0; i < kSteps; ++i) {
    seq_traffic += vela.train_step(it.next()).external_mb_per_node;
  }

  // Profile → optimize placement → same number of steps.
  vela.profile(dataset, 4);
  EXPECT_TRUE(vela.profiled_stats().has_value());
  vela.optimize_placement(/*tokens_per_step=*/4.0 * 7.0);
  EXPECT_EQ(vela.placement_report().lp_status, lp::LpStatus::kOptimal);

  double vela_traffic = 0.0;
  for (int i = 0; i < kSteps; ++i) {
    vela_traffic += vela.train_step(it.next()).external_mb_per_node;
  }
  EXPECT_LT(vela_traffic, seq_traffic);
}

TEST(VelaSystem, OptimizeWithoutProfileThrows) {
  auto cfg = small_config();
  auto corpus = small_corpus(cfg.model);
  core::VelaSystem vela(cfg, &corpus);
  EXPECT_THROW(vela.optimize_placement(64.0), CheckError);
}

TEST(VelaSystem, SetPlacementInstallsBaseline) {
  auto cfg = small_config();
  auto corpus = small_corpus(cfg.model);
  core::VelaSystem vela(cfg, &corpus);
  placement::Placement manual(cfg.model.num_layers, cfg.model.num_experts);
  for (std::size_t l = 0; l < cfg.model.num_layers; ++l) {
    for (std::size_t e = 0; e < cfg.model.num_experts; ++e) {
      manual.assign(l, e, 0);  // everything on the master-node worker
    }
  }
  vela.set_placement(manual);
  auto batch = corpus.make_dataset(2, 6);
  auto report = vela.train_step(batch);
  // All experts co-located with the master: the only cross-node traffic
  // left is the end-of-step optimizer broadcast — one header-only round
  // trip for each of the 4 off-node workers.
  const double control_mb =
      4.0 * 2.0 * comm::Message::kHeaderBytes / 1e6 / 3.0;
  EXPECT_NEAR(report.external_mb_per_node, control_mb, 1e-12);
}

TEST(VelaSystem, HistoryAccumulates) {
  auto cfg = small_config();
  auto corpus = small_corpus(cfg.model);
  core::VelaSystem vela(cfg, &corpus);
  auto batch = corpus.make_dataset(2, 6);
  vela.train_step(batch);
  vela.train_step(batch);
  EXPECT_EQ(vela.history().size(), 2u);
  EXPECT_EQ(vela.history()[1].step, 1u);
}

TEST(VelaSystem, ProfiledFrequenciesSumToTopK) {
  auto cfg = small_config();
  auto corpus = small_corpus(cfg.model);
  core::VelaSystem vela(cfg, &corpus);
  const auto& stats = vela.profile(corpus.make_dataset(8, 8), 4);
  for (std::size_t l = 0; l < cfg.model.num_layers; ++l) {
    double total = 0.0;
    for (double f : stats.layer_frequencies(l)) total += f;
    EXPECT_NEAR(total, static_cast<double>(cfg.model.top_k), 1e-9);
  }
}

}  // namespace
}  // namespace vela
