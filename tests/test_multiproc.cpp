// Multi-process scale-out suite (`ctest -L multiproc`, DESIGN.md §12).
//
// Everything here runs REAL vela_node OS processes against this process
// playing master — no in-process shortcuts on the deployment side. The
// suite covers, bottom up:
//
//   * listen-side port handling — SO_REUSEADDR, ephemeral port-0 binding
//     with the bound port reported back, bounded bind-collision retry on
//     the injected clock;
//   * the kIdent peer-discovery handshake — malformed, truncated and
//     duplicate-identity connections are rejected without taking the
//     listener down; a full fleet dialing concurrently and a straggler
//     dialing late are both handled;
//   * the headline cross-mode bit-exactness gate — a multi-process N=6
//     two-step fine-tune must match the in-process socket run (and the
//     in-process inproc run) bit for bit: losses, serialized weights,
//     per-phase TrafficMeter ledgers, broker request counts;
//   * elastic behavior — SIGKILLing a worker process mid-run degrades to
//     the survivors (and equals a fresh reduced-topology run), or, with a
//     respawner installed, relaunches a replacement vela_node that is
//     restocked over the wire;
//   * the audited variant — a multi-process run under the runtime auditors
//     must report zero violations.
#include <gtest/gtest.h>
#include <signal.h>
// This suite deliberately speaks raw sockets to attack the listener
// (half-open connects, garbage bytes before the kIdent handshake).
#include <sys/socket.h>  // vela-analyze: allow(restricted-include)
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/endpoint.h"
#include "comm/peer_listener.h"
#include "comm/session.h"
#include "core/node_runtime.h"
#include "core/scenario.h"
#include "util/audit.h"
#include "util/check.h"
#include "util/clock.h"

namespace vela {
namespace {

using namespace std::chrono_literals;

// Compile-time path to the vela_node binary (set in tests/CMakeLists.txt);
// VELA_NODE_BIN in the environment overrides it.
std::string node_bin() {
  if (const char* env = std::getenv("VELA_NODE_BIN")) return env;
#ifdef VELA_NODE_BIN
  return VELA_NODE_BIN;
#else
  ADD_FAILURE() << "VELA_NODE_BIN is neither compiled in nor in the env";
  return "";
#endif
}

core::MultiProcOptions proc_options(const std::string& tag) {
  core::MultiProcOptions opts;
  opts.node_binary = node_bin();
  opts.log_dir = "mproc_logs_" + tag;
  std::filesystem::create_directories(opts.log_dir);
  // Keep the master-side reconnect budget small: a SIGKILLed worker should
  // fail over in milliseconds of test time, not the production default.
  opts.reconnect.max_attempts = 2;
  opts.reconnect.backoff_base = 5ms;
  opts.reconnect.backoff_max = 20ms;
  return opts;
}

core::RetryPolicy fast_retry() {
  core::RetryPolicy policy;
  policy.timeout = std::chrono::milliseconds(120);
  policy.max_retries = 4;
  policy.backoff = 2.0;
  return policy;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Spin (real time) until `pred` holds or `budget` elapses — for listener
// counters that a detached accept thread bumps.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 3000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

int dial_and_ident(std::uint16_t port, const comm::session::PeerIdentity& id) {
  const int fd = comm::session::dial_socket(port);
  EXPECT_GE(fd, 0);
  const auto rec = comm::session::encode_ident_record(id);
  EXPECT_TRUE(comm::session::write_all(fd, rec.data(), rec.size()));
  return fd;
}

// --- listen-side port handling (satellite 1) ---------------------------------

TEST(ListenSocket, EphemeralPortIsReportedAndReuseAddrIsSet) {
  std::uint16_t bound = 0;
  const int fd = comm::session::make_listen_socket(
      0, &bound, 8, /*bind_attempts=*/1, 0ms, nullptr);
  ASSERT_GE(fd, 0);
  EXPECT_GT(bound, 0);  // port 0 never comes back; the real port does

  int reuse = 0;
  socklen_t len = sizeof(reuse);
  ASSERT_EQ(::getsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, &len), 0);
  EXPECT_NE(reuse, 0);

  // A second ephemeral listener coexists on its own distinct port.
  std::uint16_t bound2 = 0;
  const int fd2 = comm::session::make_listen_socket(
      0, &bound2, 8, /*bind_attempts=*/1, 0ms, nullptr);
  ASSERT_GE(fd2, 0);
  EXPECT_NE(bound2, bound);
  ::close(fd2);
  ::close(fd);
}

TEST(ListenSocket, BindCollisionRetryIsBoundedOnTheInjectedClock) {
  // Occupy a port, then collide with it on a FakeClock: the retry loop must
  // sleep exactly (attempts - 1) times on the INJECTED clock and then give
  // up loudly — no unbounded spinning, no wall-clock sleeps.
  std::uint16_t occupied = 0;
  const int holder = comm::session::make_listen_socket(
      0, &occupied, 8, /*bind_attempts=*/1, 0ms, nullptr);
  ASSERT_GE(holder, 0);

  util::FakeClock clock;
  std::uint16_t bound = 0;
  EXPECT_THROW(comm::session::make_listen_socket(occupied, &bound, 8,
                                                 /*bind_attempts=*/3, 25ms,
                                                 &clock),
               CheckError);
  EXPECT_EQ(clock.sleep_calls(), 2u);
  EXPECT_EQ(clock.total_slept(), 50ms);
  ::close(holder);
}

TEST(ListenSocket, CollisionResolvedMidRetrySucceedsOnTheSamePort) {
  std::uint16_t occupied = 0;
  int holder = comm::session::make_listen_socket(0, &occupied, 8, 1, 0ms,
                                                 nullptr);
  ASSERT_GE(holder, 0);

  util::FakeClock clock;
  std::uint16_t bound = 0;
  int fd = -1;
  std::thread binder([&] {
    fd = comm::session::make_listen_socket(occupied, &bound, 8,
                                           /*bind_attempts=*/100000, 1ms,
                                           &clock);
  });
  // Let it collide a few times, then free the port: the next attempt wins.
  ASSERT_TRUE(eventually([&] { return clock.sleep_calls() >= 3; }));
  ::close(holder);
  binder.join();
  ASSERT_GE(fd, 0);
  EXPECT_EQ(bound, occupied);
  EXPECT_GE(clock.sleep_calls(), 3u);
  ::close(fd);
}

// --- kIdent handshake properties (satellite 2) -------------------------------

TEST(PeerListenerHandshake, MalformedOpenerIsRejectedAndListenerLivesOn) {
  auto listener = comm::make_peer_listener({});
  // Not a vela_node: an HTTP-ish opener must be rejected, not crash us.
  const int fd = comm::session::dial_socket(listener->bound_port());
  ASSERT_GE(fd, 0);
  const std::string garbage = "GET / HTTP/1.1\r\nHost: nope\r\n\r\n";
  ASSERT_TRUE(comm::session::write_all(
      fd, reinterpret_cast<const std::uint8_t*>(garbage.data()),
      garbage.size()));
  EXPECT_TRUE(
      eventually([&] { return listener->rejected_malformed() == 1; }));
  ::close(fd);

  // The listener still accepts a well-formed peer afterwards.
  const int good = dial_and_ident(listener->bound_port(),
                                  {7, comm::session::kLaneToWorker, 3, 42});
  auto peer = listener->take_peer(7, comm::session::kLaneToWorker, 3000ms);
  ASSERT_TRUE(peer.valid());
  EXPECT_EQ(peer.id.rank, 7u);
  EXPECT_EQ(peer.id.capacity, 3u);
  EXPECT_EQ(peer.id.session_id, 42u);
  ::close(peer.fd);
  ::close(good);
  EXPECT_EQ(listener->accepted_peers(), 1u);
}

TEST(PeerListenerHandshake, TruncatedIdentIsRejectedOnDialerDeath) {
  auto listener = comm::make_peer_listener({});
  const int fd = comm::session::dial_socket(listener->bound_port());
  ASSERT_GE(fd, 0);
  const auto rec = comm::session::encode_ident_record(
      {3, comm::session::kLaneToMaster, 1, 99});
  ASSERT_EQ(rec.size(), comm::session::kIdentRecordBytes);
  // First 10 bytes only, then hang up mid-record.
  ASSERT_TRUE(comm::session::write_all(fd, rec.data(), 10));
  ::close(fd);
  EXPECT_TRUE(
      eventually([&] { return listener->rejected_malformed() == 1; }));
  EXPECT_EQ(listener->accepted_peers(), 0u);
}

TEST(PeerListenerHandshake, BadLaneAndBadMagicAreBothMalformed) {
  auto listener = comm::make_peer_listener({});
  // Lane out of range.
  const int fd1 = dial_and_ident(listener->bound_port(), {0, 9, 0, 1});
  EXPECT_TRUE(
      eventually([&] { return listener->rejected_malformed() == 1; }));
  ::close(fd1);
  // Wrong magic: corrupt the magic field of an otherwise valid record.
  auto rec = comm::session::encode_ident_record(
      {0, comm::session::kLaneToWorker, 0, 1});
  rec[1] ^= 0xFF;
  const int fd2 = comm::session::dial_socket(listener->bound_port());
  ASSERT_GE(fd2, 0);
  ASSERT_TRUE(comm::session::write_all(fd2, rec.data(), rec.size()));
  EXPECT_TRUE(
      eventually([&] { return listener->rejected_malformed() == 2; }));
  ::close(fd2);
  EXPECT_EQ(listener->accepted_peers(), 0u);
}

TEST(PeerListenerHandshake, DuplicateIdentityIsRejectedFirstOneWins) {
  auto listener = comm::make_peer_listener({});
  const int first = dial_and_ident(listener->bound_port(),
                                   {2, comm::session::kLaneToWorker, 4, 111});
  ASSERT_TRUE(eventually([&] { return listener->accepted_peers() == 1; }));
  // Same (rank, lane), different session: a second FRESH claimant while one
  // is pending is a duplicate, not a resume.
  const int second = dial_and_ident(listener->bound_port(),
                                    {2, comm::session::kLaneToWorker, 4, 222});
  EXPECT_TRUE(
      eventually([&] { return listener->rejected_duplicate() == 1; }));

  auto peer = listener->take_peer(2, comm::session::kLaneToWorker, 3000ms);
  ASSERT_TRUE(peer.valid());
  EXPECT_EQ(peer.id.session_id, 111u);  // the first dialer won
  ::close(peer.fd);
  ::close(first);
  ::close(second);
}

TEST(PeerListenerHandshake, WholeFleetDialingConcurrentlyIsSorted) {
  // The launcher's startup pattern: N ranks × 2 lanes all dial at once.
  constexpr std::uint32_t kRanks = 6;
  auto listener = comm::make_peer_listener({});
  std::vector<std::thread> dialers;
  std::vector<int> fds(kRanks * 2, -1);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    for (std::uint8_t lane = 0; lane < 2; ++lane) {
      dialers.emplace_back([&, r, lane] {
        fds[r * 2 + lane] = dial_and_ident(
            listener->bound_port(), {r, lane, r, 1000 + r});
      });
    }
  }
  for (auto& t : dialers) t.join();

  for (std::uint32_t r = 0; r < kRanks; ++r) {
    for (std::uint8_t lane = 0; lane < 2; ++lane) {
      auto peer = listener->take_peer(r, lane, 5000ms);
      ASSERT_TRUE(peer.valid()) << "rank " << r << " lane " << int(lane);
      EXPECT_EQ(peer.id.rank, r);
      EXPECT_EQ(peer.id.lane, lane);
      EXPECT_EQ(peer.id.capacity, r);
      EXPECT_EQ(peer.id.session_id, 1000u + r);
      ::close(peer.fd);
    }
  }
  EXPECT_EQ(listener->accepted_peers(), kRanks * 2);
  EXPECT_EQ(listener->rejected_malformed(), 0u);
  EXPECT_EQ(listener->rejected_duplicate(), 0u);
  for (const int fd : fds) ::close(fd);
}

TEST(PeerListenerHandshake, StragglerAfterAcceptDelayIsStillClaimed) {
  auto listener = comm::make_peer_listener({});
  comm::AcceptedPeer peer;
  std::thread claimer([&] {
    // take_peer blocks FIRST; the peer dials well after the wait started.
    peer = listener->take_peer(5, comm::session::kLaneToMaster, 5000ms);
  });
  std::this_thread::sleep_for(200ms);
  const int fd = dial_and_ident(listener->bound_port(),
                                {5, comm::session::kLaneToMaster, 2, 7});
  claimer.join();
  ASSERT_TRUE(peer.valid());
  EXPECT_EQ(peer.id.rank, 5u);
  ::close(peer.fd);
  ::close(fd);
}

TEST(PeerListenerHandshake, TakePeerTimesOutInvalidWhenNobodyDials) {
  auto listener = comm::make_peer_listener({});
  const auto t0 = std::chrono::steady_clock::now();
  auto peer = listener->take_peer(0, comm::session::kLaneToWorker, 50ms);
  EXPECT_FALSE(peer.valid());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 50ms);
}

// --- the cross-mode bit-exactness gate (tentpole) ----------------------------

void expect_artifacts_equal(const core::FineTuneArtifacts& a,
                            const core::FineTuneArtifacts& b,
                            const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (std::size_t i = 0; i < a.losses.size(); ++i) {
    EXPECT_EQ(a.losses[i], b.losses[i]) << "loss diverged at step " << i;
  }
  EXPECT_EQ(a.step_external_bytes, b.step_external_bytes);
  EXPECT_EQ(a.step_total_bytes, b.step_total_bytes);
  EXPECT_EQ(a.step_recovery_bytes, b.step_recovery_bytes);
  EXPECT_EQ(a.lifetime_external_bytes, b.lifetime_external_bytes);
  EXPECT_EQ(a.lifetime_total_bytes, b.lifetime_total_bytes);
  EXPECT_EQ(a.requests, b.requests);
}

TEST(CrossModeGate, MultiProcessMatchesInProcessRunsBitForBit) {
  const core::Scenario scenario;  // N=6 workers, 2 steps, tiny_test

  // Reference runs: the fleet as threads, on both in-process backends.
  const core::FineTuneArtifacts inproc = core::run_in_process(
      scenario, comm::TransportKind::kInProc, "gate_inproc.ckpt");
  const core::FineTuneArtifacts socket = core::run_in_process(
      scenario, comm::TransportKind::kSocket, "gate_socket.ckpt");

  // The deployment under test: the fleet as vela_node OS processes.
  core::FineTuneArtifacts proc;
  int fleet_rc = -1;
  {
    core::MultiProcCluster cluster(scenario, proc_options("gate"));
    EXPECT_EQ(cluster.num_workers(), scenario.workers);
    EXPECT_GT(cluster.port(), 0);
    proc = core::run_fine_tune(cluster.system(), scenario, cluster.corpus(),
                               "gate_proc.ckpt");
    fleet_rc = cluster.shutdown_and_wait();
  }
  EXPECT_EQ(fleet_rc, 0) << "a vela_node process exited uncleanly";

  ASSERT_EQ(proc.losses.size(), scenario.steps);
  for (const float loss : proc.losses) EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(proc.lifetime_external_bytes, 0u);
  EXPECT_GT(proc.requests, 0u);

  expect_artifacts_equal(proc, socket, "processes vs in-process socket");
  expect_artifacts_equal(proc, inproc, "processes vs in-process inproc");

  // Weights: the serialized checkpoints must be byte-identical.
  const std::string proc_ckpt = slurp("gate_proc.ckpt");
  EXPECT_FALSE(proc_ckpt.empty());
  EXPECT_EQ(proc_ckpt, slurp("gate_socket.ckpt"));
  EXPECT_EQ(proc_ckpt, slurp("gate_inproc.ckpt"));
}

TEST(CrossModeGate, MultiProcessRunIsReproducible) {
  // Same scenario, two independent deployments: everything must repeat —
  // process scheduling and socket interleaving must not leak into results.
  core::Scenario scenario;
  scenario.workers = 4;
  core::FineTuneArtifacts runs[2];
  for (auto& run : runs) {
    core::MultiProcCluster cluster(scenario, proc_options("repro"));
    run = core::run_fine_tune(cluster.system(), scenario, cluster.corpus());
    EXPECT_EQ(cluster.shutdown_and_wait(), 0);
  }
  expect_artifacts_equal(runs[0], runs[1], "deployment A vs deployment B");
}

// --- kill a worker: degrade or respawn (satellite 3) -------------------------

TEST(MultiProcDegrade, KilledWorkerDegradesAndMatchesReducedTopologyRun) {
  core::Scenario scenario;
  scenario.steps = 3;

  core::FaultToleranceConfig ft;
  ft.retry = fast_retry();
  ft.snapshot_interval = 1;
  ft.respawn_budget = 0;  // no respawner installed → first failure degrades

  // Run A: multi-process; worker 2's PROCESS is SIGKILLed before step 0.
  std::vector<float> losses_a;
  placement::Placement degraded;
  int fleet_rc = -1;
  {
    core::MultiProcCluster cluster(scenario, proc_options("kill"));
    cluster.system().enable_fault_tolerance(ft);
    cluster.worker(2).kill(SIGKILL);
    ASSERT_NE(cluster.worker(2).wait(), 0);  // 137: killed, not exited

    const core::FineTuneArtifacts art =
        core::run_fine_tune(cluster.system(), scenario, cluster.corpus());
    losses_a = art.losses;
    for (const float loss : losses_a) ASSERT_TRUE(std::isfinite(loss));
    // Recovery (migration) bytes were charged to the step that degraded.
    EXPECT_GT(art.step_recovery_bytes[0], 0u);

    auto& master = cluster.system().master();
    EXPECT_TRUE(master.dead_mask()[2]);
    EXPECT_EQ(master.num_live_workers(), scenario.workers - 1);
    degraded = master.placement();
    for (std::size_t l = 0; l < degraded.num_layers(); ++l) {
      for (std::size_t e = 0; e < degraded.num_experts(); ++e) {
        EXPECT_NE(degraded.worker_of(l, e), 2u);
      }
    }
    fleet_rc = cluster.shutdown_and_wait();
  }
  // The fleet's worst exit code is the SIGKILLed worker — propagated, and
  // the run did NOT hang waiting for it.
  EXPECT_EQ(fleet_rc, 128 + SIGKILL);

  // Run B: an in-process fleet that STARTS on A's degraded placement. The
  // kill landed before any optimizer step, so both runs carry identical
  // state onto the survivors — the trajectories must match bit for bit.
  std::vector<float> losses_b;
  {
    core::VelaSystemConfig cfg = scenario.system_config(/*remote=*/false);
    cfg.transport = comm::TransportKind::kSocket;
    data::SyntheticCorpus corpus(scenario.corpus_config(),
                                 scenario.corpus_seed);
    core::VelaSystem vela(cfg, &corpus);
    core::FaultToleranceConfig healthy_ft;
    healthy_ft.retry = fast_retry();
    healthy_ft.snapshot_interval = 1;
    vela.enable_fault_tolerance(healthy_ft);
    vela.set_placement(degraded);
    losses_b =
        core::run_fine_tune(vela, scenario, corpus).losses;
  }
  ASSERT_EQ(losses_a.size(), losses_b.size());
  for (std::size_t i = 0; i < losses_a.size(); ++i) {
    EXPECT_EQ(losses_a[i], losses_b[i]) << "loss diverged at step " << i;
  }
}

TEST(MultiProcDegrade, RespawnerRelaunchesAFreshNodeProcess) {
  core::Scenario scenario;
  scenario.steps = 3;

  core::MultiProcCluster cluster(scenario, proc_options("respawn"));
  auto& vela = cluster.system();
  auto& master = vela.master();

  core::FaultToleranceConfig ft;
  ft.retry = fast_retry();
  ft.snapshot_interval = 1;
  ft.respawn_budget = 1;
  vela.enable_fault_tolerance(ft);

  // The respawner: relaunch rank w as a FRESH vela_node (new pid, new
  // session id, zero experts — capacity 0 by the respawn contract) and
  // adopt it from the listener.
  master.set_remote_respawner(
      [&](std::size_t w) -> std::unique_ptr<comm::DuplexLink> {
        cluster.relaunch_worker(w);
        return comm::make_master_remote_link(
            cluster.listener(), static_cast<std::uint32_t>(w),
            /*expected_capacity=*/0, /*master_node=*/0,
            /*worker_node=*/w + 1, &master.meter(), 15000ms);
      });

  const pid_t old_pid = cluster.worker(1).pid();
  cluster.worker(1).kill(SIGKILL);
  ASSERT_NE(cluster.worker(1).wait(), 0);

  const core::FineTuneArtifacts art =
      core::run_fine_tune(vela, scenario, cluster.corpus());
  for (const float loss : art.losses) ASSERT_TRUE(std::isfinite(loss));

  // The worker was respawned, not buried: nobody is dead, a NEW process
  // holds rank 1, and its restock bytes were charged to recovery.
  for (const bool dead : master.dead_mask()) EXPECT_FALSE(dead);
  EXPECT_NE(cluster.worker(1).pid(), old_pid);
  EXPECT_TRUE(cluster.worker(1).running());
  EXPECT_GT(art.step_recovery_bytes[0], 0u);
  EXPECT_GT(master.meter().lifetime_recovery_bytes(), 0u);

  // The relaunched child replaced the killed one in the fleet, so the whole
  // deployment now shuts down CLEAN.
  EXPECT_EQ(cluster.shutdown_and_wait(), 0);
}

// --- the audited variant (acceptance: -L multiproc under VELA_AUDIT) ---------

TEST(MultiProcAudit, AuditedMultiProcessRunReportsNoViolations) {
  audit::set_enabled_for_testing(true);
  audit::ConservationLedger::instance().reset_for_testing();
  std::vector<std::pair<std::string, std::string>> violations;
  audit::set_violation_handler(
      [&violations](const std::string& category, const std::string& detail) {
        violations.emplace_back(category, detail);
      });
  {
    core::Scenario scenario;
    core::MultiProcCluster cluster(scenario, proc_options("audit"));
    const core::FineTuneArtifacts art =
        core::run_fine_tune(cluster.system(), scenario, cluster.corpus());
    for (const float loss : art.losses) EXPECT_TRUE(std::isfinite(loss));
    EXPECT_EQ(cluster.shutdown_and_wait(), 0);
  }
  audit::set_violation_handler(nullptr);
  audit::ConservationLedger::instance().reset_for_testing();
  audit::set_enabled_for_testing(false);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " audit violation(s), first: "
      << violations.front().first << ": " << violations.front().second;
}

}  // namespace
}  // namespace vela
