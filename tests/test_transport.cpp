// Transport-fabric suite (`ctest -L transport`).
//
// Three layers of contract, bottom up:
//  * frame codec — every Message round-trips bit-exactly (all 24 types,
//    zero-length and phantom payloads, fragments, checksums), torn reads
//    re-segment, and corrupt or oversize frames are rejected loudly;
//  * transport semantics — both backends honour the blocking-queue contract:
//    FIFO order, close-then-drain, timed receive, cross-thread delivery;
//  * backend equivalence — the same two-step fine-tune (healthy and faulted,
//    VELA and EP) is bit-identical under VELA_TRANSPORT=inproc and =socket:
//    losses, final weights, TrafficMeter byte counts, audit balance.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/endpoint.h"
#include "comm/fault_injector.h"
#include "comm/frame.h"
#include "comm/message.h"
#include "comm/traffic_meter.h"
#include "comm/transport.h"
#include "core/vela_system.h"
#include "data/batch.h"
#include "ep/runtime.h"
#include "tensor/ops.h"
#include "util/audit.h"
#include "util/check.h"
#include "util/rng.h"

namespace vela {
namespace {

constexpr comm::TransportKind kBothKinds[] = {comm::TransportKind::kInProc,
                                              comm::TransportKind::kSocket};

// --- frame codec -------------------------------------------------------------

void expect_bit_identical(const comm::Message& a, const comm::Message& b,
                          const std::string& what) {
  EXPECT_EQ(a.type, b.type) << what;
  EXPECT_EQ(a.request_id, b.request_id) << what;
  EXPECT_EQ(a.source, b.source) << what;
  EXPECT_EQ(a.layer, b.layer) << what;
  EXPECT_EQ(a.expert, b.expert) << what;
  EXPECT_EQ(a.step, b.step) << what;
  EXPECT_EQ(a.phantom_bytes, b.phantom_bytes) << what;
  EXPECT_EQ(a.wire_bits, b.wire_bits) << what;
  EXPECT_EQ(a.chunk_index, b.chunk_index) << what;
  EXPECT_EQ(a.chunk_count, b.chunk_count) << what;
  EXPECT_EQ(a.checksum, b.checksum) << what;
  ASSERT_EQ(a.payload.shape(), b.payload.shape()) << what;
  if (a.payload.size() > 0) {
    EXPECT_EQ(std::memcmp(a.payload.data(), b.payload.data(),
                          a.payload.size() * sizeof(float)),
              0)
        << what << ": payload bits differ";
  }
  EXPECT_EQ(a.wire_size(), b.wire_size()) << what;
}

comm::Message round_trip(const comm::Message& msg) {
  const std::vector<std::uint8_t> frame = comm::encode_frame(msg);
  comm::Message out;
  std::string error;
  EXPECT_TRUE(comm::decode_frame(frame, &out, &error)) << error;
  return out;
}

// Property test: a varied Message of every type survives framing bit-exactly
// — real payloads (including awkward shapes and denormal-ish values),
// phantom payloads, fragment fields, wire_bits and stamped checksums.
TEST(FrameCodec, RoundTripsEveryMessageType) {
  Rng rng(91);
  const auto last = static_cast<unsigned>(comm::MessageType::kPrefetchExperts);
  for (unsigned t = 0; t <= last; ++t) {
    comm::Message msg;
    msg.type = static_cast<comm::MessageType>(t);
    msg.request_id = 0x0123456789ABCDEFull + t;
    msg.source = 7 + t;
    msg.layer = 11 + t;
    msg.expert = 13 + t;
    msg.step = 1000 + t;
    msg.wire_bits = (t % 2 == 0) ? 16 : 32;
    msg.chunk_index = static_cast<std::uint8_t>(t % 3);
    msg.chunk_count = static_cast<std::uint8_t>(3 + t % 2);
    switch (t % 3) {
      case 0:  // real tensor payload, varying rank
        msg.payload = t % 2 == 0 ? ops::randn({3, 5}, rng)
                                 : ops::randn({2, 3, 4}, rng);
        break;
      case 1:  // phantom payload: only the byte count travels
        msg.phantom_bytes = 1'000'000'000ull + t;
        break;
      default:  // pure control message
        break;
    }
    if (t % 2 == 1) msg.stamp_checksum();
    const comm::Message decoded = round_trip(msg);
    expect_bit_identical(msg, decoded, comm::message_type_name(msg.type));
    EXPECT_TRUE(decoded.checksum_ok());
  }
}

TEST(FrameCodec, ZeroLengthPayloadRoundTrips) {
  comm::Message msg;
  msg.type = comm::MessageType::kProbe;
  msg.request_id = 42;
  const comm::Message decoded = round_trip(msg);
  expect_bit_identical(msg, decoded, "zero-length");
  // A control frame is tiny: framing overhead plus the fixed body fields.
  EXPECT_LT(comm::encode_frame(msg).size(), 64u);
}

TEST(FrameCodec, PhantomGigabytesTravelAsBytes) {
  comm::Message msg;
  msg.type = comm::MessageType::kExpertForward;
  msg.phantom_bytes = 64ull << 30;  // Mixtral-scale accounting, no allocation
  const comm::Message decoded = round_trip(msg);
  EXPECT_EQ(decoded.phantom_bytes, msg.phantom_bytes);
  EXPECT_LT(comm::encode_frame(msg).size(), 64u);
}

TEST(FrameCodec, LargePayloadRoundTripsExactly) {
  Rng rng(17);
  comm::Message msg;
  msg.type = comm::MessageType::kAllReduceChunk;
  msg.payload = ops::randn({512, 512}, rng);  // 1 MiB of payload
  const comm::Message decoded = round_trip(msg);
  expect_bit_identical(msg, decoded, "large payload");
}

TEST(FrameCodec, TornReadsReassembleByteByByte) {
  Rng rng(23);
  std::vector<comm::Message> originals;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 3; ++i) {
    comm::Message msg;
    msg.type = comm::MessageType::kExpertForward;
    msg.request_id = static_cast<std::uint64_t>(i + 1);
    msg.payload = ops::randn({2, static_cast<std::size_t>(i + 1)}, rng);
    const auto frame = comm::encode_frame(msg);
    stream.insert(stream.end(), frame.begin(), frame.end());
    originals.push_back(std::move(msg));
  }

  comm::FrameDecoder decoder;
  std::vector<comm::Message> decoded;
  for (const std::uint8_t byte : stream) {
    decoder.feed(&byte, 1);  // worst-case re-segmentation: 1-byte reads
    std::vector<std::uint8_t> frame;
    while (decoder.next(&frame)) {
      comm::Message out;
      std::string error;
      ASSERT_TRUE(comm::decode_frame(frame, &out, &error)) << error;
      decoded.push_back(std::move(out));
    }
  }
  ASSERT_EQ(decoded.size(), originals.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    expect_bit_identical(originals[i], decoded[i], "torn read");
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameCodec, CorruptedFramesAreRejected) {
  comm::Message msg;
  msg.type = comm::MessageType::kExpertForward;
  msg.payload = Tensor::ones({4, 4});
  const std::vector<std::uint8_t> good = comm::encode_frame(msg);
  comm::Message out;
  std::string error;

  // A flipped body byte breaks the CRC.
  std::vector<std::uint8_t> flipped = good;
  flipped[8] ^= 0x40;
  EXPECT_FALSE(comm::decode_frame(flipped, &out, &error));
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;

  // A flipped CRC byte breaks the CRC check too.
  std::vector<std::uint8_t> bad_crc = good;
  bad_crc.back() ^= 0x01;
  EXPECT_FALSE(comm::decode_frame(bad_crc, &out, nullptr));

  // Truncation and trailing garbage disagree with the length prefix.
  std::vector<std::uint8_t> truncated(good.begin(), good.end() - 1);
  EXPECT_FALSE(comm::decode_frame(truncated, &out, nullptr));
  std::vector<std::uint8_t> padded = good;
  padded.push_back(0);
  EXPECT_FALSE(comm::decode_frame(padded, &out, nullptr));

  // Intact frames still decode (the rejects above copied, not mutated).
  EXPECT_TRUE(comm::decode_frame(good, &out, &error)) << error;
}

TEST(FrameCodec, OversizeLengthPrefixIsStreamCorruption) {
  // Craft a frame whose length prefix exceeds the body limit: decode_frame
  // rejects it gracefully, the streaming decoder fails the VELA_CHECK (a
  // desynchronized stream cannot be resynchronized — fail loudly).
  const std::uint32_t huge = comm::kMaxFrameBodyBytes + 1;
  std::vector<std::uint8_t> frame(sizeof(huge));
  // vela-lint: allow(wire-memcpy) -- hand-crafting a corrupt length prefix
  std::memcpy(frame.data(), &huge, sizeof(huge));
  comm::Message out;
  std::string error;
  EXPECT_FALSE(comm::decode_frame(frame, &out, &error));

  comm::FrameDecoder decoder;
  decoder.feed(frame.data(), frame.size());
  std::vector<std::uint8_t> next;
  EXPECT_THROW((void)decoder.next(&next), CheckError);
}

// The end-to-end (Message-level) checksum is body payload to the frame
// codec: a message corrupted *before* framing — what the fault injector
// does — frames cleanly, decodes cleanly, and is caught only by the
// receiving runtime's checksum_ok(). Identical on every backend.
TEST(FrameCodec, MessageChecksumTravelsInsideTheFrame) {
  comm::Message msg;
  msg.type = comm::MessageType::kExpertForwardResult;
  msg.payload = Tensor::ones({2, 2});
  msg.stamp_checksum();
  msg.payload[0] = -1.0f;  // in-flight corruption, post-stamp

  const comm::Message decoded = round_trip(msg);
  EXPECT_EQ(decoded.checksum, msg.checksum);
  EXPECT_FALSE(decoded.checksum_ok());
}

// --- transport semantics (both backends) -------------------------------------

std::vector<std::uint8_t> tiny_frame(std::uint8_t tag) {
  comm::Message msg;
  msg.type = comm::MessageType::kProbe;
  msg.request_id = tag;
  return comm::encode_frame(msg);
}

TEST(Transport, FifoOrderAndCloseThenDrain) {
  for (const auto kind : kBothKinds) {
    auto t = comm::make_transport(kind);
    ASSERT_TRUE(t->send(tiny_frame(1)));
    ASSERT_TRUE(t->send(tiny_frame(2)));
    ASSERT_TRUE(t->send(tiny_frame(3)));
    t->close();
    EXPECT_TRUE(t->closed());
    EXPECT_FALSE(t->send(tiny_frame(4)));  // closed: refused, not queued
    // The backlog drains in order after close...
    for (std::uint8_t expected = 1; expected <= 3; ++expected) {
      auto frame = t->receive();
      ASSERT_TRUE(frame.has_value()) << t->name();
      comm::Message msg;
      ASSERT_TRUE(comm::decode_frame(*frame, &msg));
      EXPECT_EQ(msg.request_id, expected) << t->name();
    }
    // ...then end-of-stream.
    EXPECT_FALSE(t->receive().has_value()) << t->name();
    EXPECT_FALSE(t->try_receive().has_value()) << t->name();
  }
}

TEST(Transport, TimedReceiveTimesOutAndDelivers) {
  for (const auto kind : kBothKinds) {
    auto t = comm::make_transport(kind);
    std::vector<std::uint8_t> out;
    EXPECT_EQ(t->receive_for(std::chrono::milliseconds(10), &out),
              PopStatus::kTimeout)
        << t->name();
    ASSERT_TRUE(t->send(tiny_frame(9)));
    EXPECT_EQ(t->receive_for(std::chrono::milliseconds(1000), &out),
              PopStatus::kOk)
        << t->name();
    t->close();
    EXPECT_EQ(t->receive_for(std::chrono::milliseconds(10), &out),
              PopStatus::kClosed)
        << t->name();
  }
}

TEST(Transport, CrossThreadBulkDelivery) {
  // Enough traffic to overflow kernel socket buffers: the writer must block
  // on backpressure and every frame must still arrive intact and in order.
  constexpr int kFrames = 400;
  Rng rng(5);
  const Tensor payload = ops::randn({64, 64}, rng);  // 16 KiB frames
  for (const auto kind : kBothKinds) {
    auto t = comm::make_transport(kind);
    std::thread writer([&] {
      for (int i = 0; i < kFrames; ++i) {
        comm::Message msg;
        msg.type = comm::MessageType::kAllReduceChunk;
        msg.request_id = static_cast<std::uint64_t>(i);
        msg.payload = payload;
        ASSERT_TRUE(t->send(comm::encode_frame(msg)));
      }
      t->close();
    });
    int received = 0;
    while (auto frame = t->receive()) {
      comm::Message msg;
      ASSERT_TRUE(comm::decode_frame(*frame, &msg));
      ASSERT_EQ(msg.request_id, static_cast<std::uint64_t>(received));
      ASSERT_EQ(std::memcmp(msg.payload.data(), payload.data(),
                            payload.size() * sizeof(float)),
                0);
      ++received;
    }
    writer.join();
    EXPECT_EQ(received, kFrames) << t->name();
  }
}

TEST(Transport, ManyWritersOneReader) {
  // The EP runtime's shared server inboxes are N-writer/1-reader; both
  // backends must serialize concurrent sends without tearing frames.
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 50;
  for (const auto kind : kBothKinds) {
    auto t = comm::make_transport(kind);
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&t, w] {
        for (int i = 0; i < kPerWriter; ++i) {
          comm::Message msg;
          msg.type = comm::MessageType::kExpertForward;
          msg.source = static_cast<std::uint32_t>(w);
          msg.request_id = static_cast<std::uint64_t>(i);
          msg.payload = Tensor::ones({8, 8});
          ASSERT_TRUE(t->send(comm::encode_frame(msg)));
        }
      });
    }
    for (auto& th : writers) th.join();
    t->close();
    std::vector<std::uint64_t> next_per_writer(kWriters, 0);
    int received = 0;
    while (auto frame = t->receive()) {
      comm::Message msg;
      ASSERT_TRUE(comm::decode_frame(*frame, &msg));
      // Per-writer FIFO: each writer's stream arrives in its send order.
      EXPECT_EQ(msg.request_id, next_per_writer[msg.source]++) << t->name();
      ++received;
    }
    EXPECT_EQ(received, kWriters * kPerWriter) << t->name();
  }
}

// --- endpoint semantics (both backends) --------------------------------------

cluster::ClusterTopology paper_topo() {
  return cluster::ClusterTopology(cluster::ClusterConfig::paper_testbed());
}

TEST(TransportEndpoint, MeterChargesAreBackendInvariant) {
  std::uint64_t expected_bytes = 0;
  for (const auto kind : kBothKinds) {
    auto topo = paper_topo();
    comm::TrafficMeter meter(&topo);
    auto ep = comm::make_endpoint(kind, 0, 1, &meter);
    comm::Message msg;
    msg.type = comm::MessageType::kExpertForward;
    msg.payload = Tensor::ones({16, 8});
    msg.wire_bits = 16;  // accounting precision: half the payload bytes
    const std::uint64_t size = msg.wire_size();
    ASSERT_TRUE(ep->send(std::move(msg)));
    EXPECT_EQ(ep->bytes_sent(), size);
    EXPECT_EQ(ep->messages_sent(), 1u);
    EXPECT_EQ(meter.current_external_bytes(), size);
    // The payload still crosses at full fp32 precision regardless of the
    // accounted wire_bits — the meter charge is the protocol size, never
    // the physical frame size.
    auto got = ep->receive();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload.size(), 16u * 8u);
    EXPECT_EQ(got->payload.data()[0], 1.0f);
    if (expected_bytes == 0) {
      expected_bytes = meter.current_external_bytes();
    } else {
      EXPECT_EQ(meter.current_external_bytes(), expected_bytes)
          << "meter charge differs between backends";
    }
    EXPECT_STREQ(ep->backend_name(), comm::transport_kind_name(kind));
  }
}

TEST(TransportEndpoint, PendingMatchesLedgerInFlightOnEveryBackend) {
  // `pending()` is maintained at the Endpoint with the same charge-before-
  // publish ordering as the conservation ledger, so the two agree at any
  // quiescent point — including on the socket backend, where the frames
  // live in kernel buffers rather than a queue whose size() could be read.
  audit::set_enabled_for_testing(true);
  audit::ConservationLedger::instance().reset_for_testing();
  for (const auto kind : kBothKinds) {
    audit::ConservationLedger::instance().reset_for_testing();
    auto ep = comm::make_endpoint(kind, 0, 1, nullptr);
    comm::Message msg;
    msg.type = comm::MessageType::kProbe;
    const std::uint64_t size = msg.wire_size();
    ASSERT_TRUE(ep->send(comm::Message(msg)));
    ASSERT_TRUE(ep->send(comm::Message(msg)));
    EXPECT_EQ(ep->pending(), 2u) << ep->backend_name();
    auto snap = audit::ConservationLedger::instance().snapshot();
    EXPECT_EQ(snap.in_flight(), 2 * size) << ep->backend_name();

    ASSERT_TRUE(ep->receive().has_value());
    EXPECT_EQ(ep->pending(), 1u) << ep->backend_name();
    EXPECT_EQ(audit::ConservationLedger::instance().snapshot().in_flight(),
              size)
        << ep->backend_name();

    ASSERT_TRUE(ep->receive().has_value());
    EXPECT_EQ(ep->pending(), 0u) << ep->backend_name();
    EXPECT_EQ(audit::ConservationLedger::instance().snapshot().in_flight(), 0u)
        << ep->backend_name();
    audit::ConservationLedger::instance().check("transport-pending");
  }
  audit::ConservationLedger::instance().reset_for_testing();
  audit::set_enabled_for_testing(false);
}

TEST(TransportEndpoint, InjectedFaultsBehaveIdenticallyOnEveryBackend) {
  for (const auto kind : kBothKinds) {
    comm::FaultPlan plan;
    plan.rules.push_back(
        {0, comm::LinkDir::kToWorker, 0, comm::FaultKind::kDrop, 0.0});
    plan.rules.push_back(
        {0, comm::LinkDir::kToWorker, 1, comm::FaultKind::kDuplicate, 0.0});
    plan.rules.push_back(
        {0, comm::LinkDir::kToWorker, 2, comm::FaultKind::kCorrupt, 0.0});
    comm::FaultInjector injector(plan);
    auto topo = paper_topo();
    comm::TrafficMeter meter(&topo);
    auto ep = comm::make_endpoint(kind, 0, 1, &meter);
    ep->set_fault_injector(&injector, 0, comm::LinkDir::kToWorker);

    comm::Message msg;
    msg.type = comm::MessageType::kExpertForward;
    msg.payload = Tensor::ones({4, 4});
    const std::uint64_t size = msg.wire_size();

    // Drop: send succeeds (the NIC transmitted), nothing arrives.
    ASSERT_TRUE(ep->send(comm::Message(msg)));
    EXPECT_FALSE(ep->try_receive().has_value()) << ep->backend_name();
    // Duplicate: both transmissions metered, both arrive, checksums intact.
    ASSERT_TRUE(ep->send(comm::Message(msg)));
    auto first = ep->receive();
    auto second = ep->receive();
    ASSERT_TRUE(first.has_value() && second.has_value());
    EXPECT_TRUE(first->checksum_ok() && second->checksum_ok());
    // Corrupt: arrives framed cleanly but fails the end-to-end checksum.
    ASSERT_TRUE(ep->send(comm::Message(msg)));
    auto corrupted = ep->receive();
    ASSERT_TRUE(corrupted.has_value());
    EXPECT_FALSE(corrupted->checksum_ok()) << ep->backend_name();

    // 4 transmissions metered: drop, duplicate ×2, corrupt.
    EXPECT_EQ(meter.current_external_bytes(), 4 * size) << ep->backend_name();
    EXPECT_EQ(ep->messages_sent(), 4u);
  }
}

TEST(TransportEndpoint, SeverClosesTheLinkOnEveryBackend) {
  for (const auto kind : kBothKinds) {
    comm::FaultPlan plan;
    plan.rules.push_back(
        {0, comm::LinkDir::kToWorker, 1, comm::FaultKind::kSever, 0.0});
    comm::FaultInjector injector(plan);
    auto ep = comm::make_endpoint(kind, 0, 1, nullptr);
    ep->set_fault_injector(&injector, 0, comm::LinkDir::kToWorker);
    comm::Message msg;
    msg.type = comm::MessageType::kProbe;
    EXPECT_TRUE(ep->send(comm::Message(msg)));
    EXPECT_FALSE(ep->send(comm::Message(msg))) << ep->backend_name();
    EXPECT_TRUE(ep->closed());
    EXPECT_FALSE(ep->send(comm::Message(msg)));  // stays dead
    // The pre-sever message still drains.
    EXPECT_TRUE(ep->receive().has_value());
    EXPECT_FALSE(ep->receive().has_value());
  }
}

// --- cross-backend equivalence: the tentpole gate ----------------------------

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

core::VelaSystemConfig vela_config(comm::TransportKind kind) {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 21;
  cfg.wire_bits = 16;
  cfg.transport = kind;
  return cfg;
}

struct VelaRunResult {
  std::vector<float> losses;
  std::vector<std::uint64_t> step_bytes;
  std::uint64_t lifetime_bytes = 0;
  std::uint64_t requests = 0;
  std::string checkpoint_bytes;
};

VelaRunResult run_vela_two_steps(comm::TransportKind kind,
                                 comm::FaultInjector* injector) {
  auto cfg = vela_config(kind);
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 77);
  core::VelaSystem vela(cfg, &corpus);
  if (injector != nullptr) {
    vela.attach_fault_injector(injector);
    vela.enable_fault_tolerance();
  }
  data::BatchIterator it(corpus.make_dataset(6, 8), 3, 4, /*shuffle=*/false);
  VelaRunResult result;
  for (int step = 0; step < 2; ++step) {
    result.losses.push_back(vela.train_step(it.next()).loss);
    result.step_bytes.push_back(vela.master().meter().step_external_bytes(
        vela.master().meter().num_steps() - 1));
  }
  result.requests = vela.master().broker().requests_sent();
  const std::string ckpt = std::string(::testing::TempDir()) + "/transport_" +
                           comm::transport_kind_name(kind) +
                           (injector != nullptr ? "_faulted" : "") + ".ckpt";
  vela.save_checkpoint(ckpt);
  result.lifetime_bytes = vela.master().meter().lifetime_external_bytes();
  result.checkpoint_bytes = read_file_bytes(ckpt);
  return result;
}

TEST(TransportEquivalence, VelaFineTuneIsBitExactAcrossBackends) {
  const VelaRunResult inproc =
      run_vela_two_steps(comm::TransportKind::kInProc, nullptr);
  const VelaRunResult socket =
      run_vela_two_steps(comm::TransportKind::kSocket, nullptr);
  ASSERT_EQ(inproc.losses.size(), socket.losses.size());
  for (std::size_t i = 0; i < inproc.losses.size(); ++i) {
    EXPECT_EQ(inproc.losses[i], socket.losses[i]) << "loss at step " << i;
    EXPECT_EQ(inproc.step_bytes[i], socket.step_bytes[i])
        << "metered bytes at step " << i;
  }
  EXPECT_EQ(inproc.lifetime_bytes, socket.lifetime_bytes);
  EXPECT_EQ(inproc.requests, socket.requests);
  EXPECT_EQ(inproc.checkpoint_bytes, socket.checkpoint_bytes)
      << "final weights diverged between transports";
}

TEST(TransportEquivalence, FaultedFineTuneIsBitExactAcrossBackends) {
  // One scripted fault of each recoverable kind; the plan is deterministic,
  // so both backends see the identical perturbation sequence.
  comm::FaultPlan plan;
  plan.rules.push_back(
      {0, comm::LinkDir::kToWorker, 2, comm::FaultKind::kDrop, 0.0});
  plan.rules.push_back(
      {1, comm::LinkDir::kToMaster, 3, comm::FaultKind::kDuplicate, 0.0});
  plan.rules.push_back(
      {2, comm::LinkDir::kToWorker, 4, comm::FaultKind::kCorrupt, 0.0});
  comm::FaultInjector inproc_injector(plan);
  comm::FaultInjector socket_injector(plan);

  const VelaRunResult inproc =
      run_vela_two_steps(comm::TransportKind::kInProc, &inproc_injector);
  const VelaRunResult socket =
      run_vela_two_steps(comm::TransportKind::kSocket, &socket_injector);

  EXPECT_GT(inproc_injector.faults_injected(), 0u);
  EXPECT_EQ(inproc_injector.faults_injected(),
            socket_injector.faults_injected());
  for (std::size_t i = 0; i < inproc.losses.size(); ++i) {
    EXPECT_EQ(inproc.losses[i], socket.losses[i]) << "loss at step " << i;
    EXPECT_EQ(inproc.step_bytes[i], socket.step_bytes[i])
        << "metered bytes at step " << i;
  }
  EXPECT_EQ(inproc.checkpoint_bytes, socket.checkpoint_bytes)
      << "final weights diverged between transports under faults";
}

TEST(TransportEquivalence, EpRuntimeIsBitExactAcrossBackends) {
  std::vector<float> losses[2];
  std::vector<std::uint64_t> bytes[2];
  int slot = 0;
  for (const auto kind : kBothKinds) {
    ep::EpRuntimeConfig cfg;
    cfg.model = model::ModelConfig::tiny_test();
    cfg.cluster = cluster::ClusterConfig::paper_testbed();
    cfg.cluster.num_nodes = 2;
    cfg.cluster.gpus_per_node = 1;
    cfg.seed = 33;
    cfg.wire_bits = 16;
    cfg.transport = kind;
    data::SyntheticCorpus corpus(
        data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 55);
    ep::EpRuntime ep(cfg, &corpus);
    auto batch = corpus.make_dataset(4, 8);
    for (int step = 0; step < 2; ++step) {
      losses[slot].push_back(ep.train_step(batch).loss);
      bytes[slot].push_back(
          ep.meter().step_external_bytes(ep.meter().num_steps() - 1));
    }
    ++slot;
  }
  ASSERT_EQ(losses[0].size(), losses[1].size());
  for (std::size_t i = 0; i < losses[0].size(); ++i) {
    EXPECT_EQ(losses[0][i], losses[1][i]) << "EP loss at step " << i;
    EXPECT_EQ(bytes[0][i], bytes[1][i]) << "EP metered bytes at step " << i;
  }
}

TEST(TransportEquivalence, AuditBalancesOnTheSocketBackend) {
  // VELA_AUDIT's byte-conservation check at every step boundary must hold
  // when the in-flight bytes live in kernel socket buffers: posted ==
  // delivered + dropped + (accepted − delivered).
  audit::set_enabled_for_testing(true);
  audit::ConservationLedger::instance().reset_for_testing();
  std::vector<std::pair<std::string, std::string>> violations;
  audit::set_violation_handler(
      [&violations](const std::string& category, const std::string& detail) {
        violations.emplace_back(category, detail);
      });
  {
    auto cfg = vela_config(comm::TransportKind::kSocket);
    data::SyntheticCorpus corpus(
        data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 77);
    core::VelaSystem vela(cfg, &corpus);
    data::BatchIterator it(corpus.make_dataset(6, 8), 3, 4,
                           /*shuffle=*/false);
    for (int step = 0; step < 2; ++step) (void)vela.train_step(it.next());
  }
  audit::set_violation_handler(nullptr);
  audit::ConservationLedger::instance().reset_for_testing();
  audit::set_enabled_for_testing(false);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " audit violation(s), first: "
      << violations.front().first << ": " << violations.front().second;
}

}  // namespace
}  // namespace vela
