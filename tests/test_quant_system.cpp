// End-to-end conformance for the quantized wire tier (`ctest -L quant`,
// DESIGN.md §13): transport-backend bit-identity, the 20-step fine-tune
// loss-tolerance gate vs fp32, measured traffic cuts, overlap composition,
// audit-clean conservation, and the fp32 default-path bit-identity contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/vela_system.h"
#include "data/batch.h"
#include "ep/runtime.h"
#include "util/audit.h"
#include "util/thread_pool.h"

namespace vela {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

core::VelaSystemConfig base_config() {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 13;
  cfg.wire_bits = 32;
  cfg.adamw.lr = 1e-3f;
  cfg.overlap_chunks = 0;
  return cfg;
}

struct RunResult {
  std::vector<float> losses;
  std::uint64_t external_bytes = 0;
};

// One deterministic fine-tune: fixed corpus, fixed batch order.
RunResult run_finetune(const core::VelaSystemConfig& cfg, int steps) {
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 31);
  core::VelaSystem vela(cfg, &corpus);
  data::BatchIterator it(corpus.make_dataset(6, 8), 3, 4, /*shuffle=*/false);
  RunResult out;
  for (int step = 0; step < steps; ++step) {
    out.losses.push_back(vela.train_step(it.next()).loss);
  }
  out.external_bytes = vela.master().meter().lifetime_external_bytes();
  return out;
}

TEST(QuantSystem, Int8RunIsBitIdenticalAcrossTransports) {
  auto cfg = base_config();
  cfg.wire_dtype = comm::WireDtype::kInt8;
  cfg.transport = comm::TransportKind::kInProc;
  const RunResult inproc = run_finetune(cfg, 6);
  cfg.transport = comm::TransportKind::kSocket;
  const RunResult socket = run_finetune(cfg, 6);
  ASSERT_EQ(inproc.losses.size(), socket.losses.size());
  for (std::size_t i = 0; i < inproc.losses.size(); ++i) {
    EXPECT_EQ(inproc.losses[i], socket.losses[i]) << "step " << i;
  }
  EXPECT_EQ(inproc.external_bytes, socket.external_bytes);
}

TEST(QuantSystem, Int8RunIsBitIdenticalAcrossThreadCounts) {
  auto cfg = base_config();
  cfg.wire_dtype = comm::WireDtype::kInt8;
  const RunResult serial = run_finetune(cfg, 4);
  util::ThreadPool::set_global_threads(8);
  const RunResult threaded = run_finetune(cfg, 4);
  util::ThreadPool::set_global_threads(0);
  for (std::size_t i = 0; i < serial.losses.size(); ++i) {
    EXPECT_EQ(serial.losses[i], threaded.losses[i]) << "step " << i;
  }
}

TEST(QuantSystem, TwentyStepLossTracksFp32WithinTolerance) {
  // The tier's convergence gate: per-step |Δloss| bound plus a final-loss
  // gate against the bit-exact fp32 run of the SAME schedule. Measured
  // drift on this schedule is ≤0.01 most steps with a peak of ~0.06, so
  // the ~0.26 bound is a deliberate ~4× headroom — the gate exists to
  // catch a broken codec (orders of magnitude), not to freeze harmless
  // rounding changes.
  const int kSteps = 20;
  const RunResult fp32 = run_finetune(base_config(), kSteps);
  auto cfg = base_config();
  cfg.wire_dtype = comm::WireDtype::kInt8;
  const RunResult q8 = run_finetune(cfg, kSteps);
  ASSERT_EQ(q8.losses.size(), fp32.losses.size());
  for (int i = 0; i < kSteps; ++i) {
    EXPECT_TRUE(std::isfinite(q8.losses[i])) << "step " << i;
    EXPECT_NEAR(q8.losses[i], fp32.losses[i],
                0.05f * std::abs(fp32.losses[i]) + 0.05f)
        << "step " << i;
    EXPECT_GT(q8.losses[i], 0.0f);
  }
  EXPECT_NEAR(q8.losses.back(), fp32.losses.back(),
              0.05f * std::abs(fp32.losses.back()));
  // Both runs must actually learn: final loss below initial.
  EXPECT_LT(q8.losses.back(), q8.losses.front());
}

TEST(QuantSystem, Int8CutsExternalBytesAtLeastTwofold) {
  const RunResult fp32 = run_finetune(base_config(), 3);
  auto cfg = base_config();
  cfg.wire_dtype = comm::WireDtype::kInt8;
  const RunResult q8 = run_finetune(cfg, 3);
  EXPECT_GE(fp32.external_bytes, 2 * q8.external_bytes)
      << "fp32 " << fp32.external_bytes << " B vs int8 " << q8.external_bytes
      << " B";
}

TEST(QuantSystem, Fp16TierSitsBetween) {
  auto cfg = base_config();
  cfg.wire_dtype = comm::WireDtype::kFp16;
  const RunResult f16 = run_finetune(cfg, 3);
  cfg.wire_dtype = comm::WireDtype::kInt8;
  const RunResult q8 = run_finetune(cfg, 3);
  const RunResult fp32 = run_finetune(base_config(), 3);
  EXPECT_LT(f16.external_bytes, fp32.external_bytes);
  EXPECT_LT(q8.external_bytes, f16.external_bytes);
  for (const float l : f16.losses) EXPECT_TRUE(std::isfinite(l));
}

TEST(QuantSystem, OverlapFragmentationIsBitIdenticalUnderInt8) {
  // Per-row block tiling ⇒ slicing K fragments then quantizing equals
  // quantizing then slicing, so the training trajectory cannot depend on
  // the pipeline depth. Byte totals are also invariant: fragment-0-only
  // header charging and row-aligned blocks mean no K-dependent padding.
  auto cfg = base_config();
  cfg.wire_dtype = comm::WireDtype::kInt8;
  cfg.overlap_chunks = 0;
  const RunResult k0 = run_finetune(cfg, 4);
  for (const int k : {2, 4}) {
    cfg.overlap_chunks = k;
    const RunResult kk = run_finetune(cfg, 4);
    ASSERT_EQ(kk.losses.size(), k0.losses.size());
    for (std::size_t i = 0; i < k0.losses.size(); ++i) {
      EXPECT_EQ(kk.losses[i], k0.losses[i]) << "K=" << k << " step " << i;
    }
  }
}

TEST(QuantSystem, ExplicitFp32MatchesDefaultBitForBit) {
  // The tier must be invisible until asked for: an explicit fp32 codec and
  // the legacy default (wire_bits=32, env unset) are the same run — losses
  // AND accounted bytes.
  const RunResult legacy = run_finetune(base_config(), 4);
  auto cfg = base_config();
  cfg.wire_dtype = comm::WireDtype::kFp32;
  const RunResult fp32 = run_finetune(cfg, 4);
  ASSERT_EQ(fp32.losses.size(), legacy.losses.size());
  for (std::size_t i = 0; i < legacy.losses.size(); ++i) {
    EXPECT_EQ(fp32.losses[i], legacy.losses[i]) << "step " << i;
  }
  EXPECT_EQ(fp32.external_bytes, legacy.external_bytes);
}

TEST(QuantSystem, EnvSelectsInt8ForDefaultConfig) {
  auto cfg = base_config();
  cfg.wire_dtype = comm::WireDtype::kInt8;
  const RunResult explicit_q8 = run_finetune(cfg, 3);
  ScopedEnv env("VELA_WIRE_DTYPE", "int8");
  const RunResult env_q8 = run_finetune(base_config(), 3);
  ASSERT_EQ(env_q8.losses.size(), explicit_q8.losses.size());
  for (std::size_t i = 0; i < explicit_q8.losses.size(); ++i) {
    EXPECT_EQ(env_q8.losses[i], explicit_q8.losses[i]) << "step " << i;
  }
  EXPECT_EQ(env_q8.external_bytes, explicit_q8.external_bytes);
}

TEST(QuantSystem, Block32And64BothTrainAndDifferOnlyInScaleOverhead) {
  auto cfg = base_config();
  // tiny_test's H=16 fits in ONE block either way (blocks are per row and
  // clamp to the row length), so widen the model until the block lengths
  // actually tile differently: H=48 is 2 blocks at b=32 vs 1 at b=64.
  cfg.model.model_dim = 48;
  cfg.wire_dtype = comm::WireDtype::kInt8;
  cfg.q8_block = 32;
  const RunResult b32 = run_finetune(cfg, 3);
  cfg.q8_block = 64;
  const RunResult b64 = run_finetune(cfg, 3);
  for (const float l : b32.losses) EXPECT_TRUE(std::isfinite(l));
  for (const float l : b64.losses) EXPECT_TRUE(std::isfinite(l));
  // Twice the blocks ⇒ more scale bytes on the wire.
  EXPECT_GT(b32.external_bytes, b64.external_bytes);
}

TEST(QuantSystem, ConservationAuditCleanUnderInt8) {
  // VELA_AUDIT's byte-conservation ledger must balance exactly with the
  // quantized wire_size() charges — the tier changes footprints, never
  // conservation.
  audit::set_enabled_for_testing(true);
  audit::LockOrderGraph::instance().reset_for_testing();
  audit::ConservationLedger::instance().reset_for_testing();
  std::vector<std::pair<std::string, std::string>> violations;
  audit::set_violation_handler(
      [&violations](const std::string& category, const std::string& detail) {
        violations.emplace_back(category, detail);
      });

  auto cfg = base_config();
  cfg.wire_dtype = comm::WireDtype::kInt8;
  const RunResult r = run_finetune(cfg, 2);
  EXPECT_EQ(r.losses.size(), 2u);

  audit::set_violation_handler(nullptr);
  audit::LockOrderGraph::instance().reset_for_testing();
  audit::ConservationLedger::instance().reset_for_testing();
  audit::set_enabled_for_testing(false);
  for (const auto& [category, detail] : violations) {
    ADD_FAILURE() << category << ": " << detail;
  }
}

TEST(QuantSystem, EpRuntimeInt8TrainsAndReducesTraffic) {
  ep::EpRuntimeConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.cluster.num_nodes = 2;
  cfg.cluster.gpus_per_node = 1;
  cfg.seed = 77;
  cfg.wire_bits = 32;
  cfg.adamw.lr = 1e-3f;
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 5);
  const auto batch = corpus.make_dataset(2, 6);

  std::uint64_t fp32_bytes = 0, q8_bytes = 0;
  {
    ep::EpRuntime ep(cfg, &corpus);
    for (int i = 0; i < 2; ++i) {
      EXPECT_TRUE(std::isfinite(ep.train_step(batch).loss));
    }
    fp32_bytes = ep.meter().lifetime_external_bytes();
  }
  {
    cfg.wire_dtype = comm::WireDtype::kInt8;
    ep::EpRuntime ep(cfg, &corpus);
    for (int i = 0; i < 2; ++i) {
      EXPECT_TRUE(std::isfinite(ep.train_step(batch).loss));
    }
    q8_bytes = ep.meter().lifetime_external_bytes();
  }
  // The all-to-all payloads shrink ~4x; the ring all-reduce stays fp32, so
  // the total is a smaller (but strict and substantial) cut.
  EXPECT_LT(2 * q8_bytes, 2 * fp32_bytes);
  EXPECT_LT(q8_bytes, (fp32_bytes * 3) / 4);
}

}  // namespace
}  // namespace vela
