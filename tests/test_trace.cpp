#include "moe/trace.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "model/router_planting.h"
#include "moe/synthetic_router.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace vela {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

moe::RoutingTrace sample_trace(std::size_t steps, std::size_t tokens = 32) {
  auto routing = model::PlantedRouting::generate(3, 6, 8, 1.1, 5);
  moe::SyntheticRouterConfig cfg;
  cfg.domain_dist.assign(8, 1.0);
  cfg.domain_dist[0] = 4.0;
  cfg.routing_noise = 0.1;
  cfg.seed = 9;
  moe::SyntheticRouter router(&routing, cfg);
  moe::RoutingTrace trace;
  for (std::size_t s = 0; s < steps; ++s) {
    trace.push_back(router.sample_step(tokens));
  }
  return trace;
}

TEST(Trace, SaveLoadRoundTrip) {
  const auto trace = sample_trace(4);
  const std::string path = temp_path("routing.trace");
  moe::save_routing_trace(path, trace);
  const auto loaded = moe::load_routing_trace(path);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t s = 0; s < trace.size(); ++s) {
    ASSERT_EQ(loaded[s].size(), trace[s].size());
    for (std::size_t l = 0; l < trace[s].size(); ++l) {
      EXPECT_EQ(loaded[s][l].num_tokens, trace[s][l].num_tokens);
      EXPECT_EQ(loaded[s][l].top_k, trace[s][l].top_k);
      EXPECT_EQ(loaded[s][l].expert_tokens, trace[s][l].expert_tokens);
    }
  }
}

TEST(Trace, LoadedPlansAreValid) {
  const auto trace = sample_trace(2);
  const std::string path = temp_path("valid.trace");
  moe::save_routing_trace(path, trace);
  for (const auto& step : moe::load_routing_trace(path)) {
    for (const auto& plan : step) EXPECT_NO_THROW(plan.validate());
  }
}

TEST(Trace, RejectsGarbage) {
  const std::string path = temp_path("junk.trace");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a trace at all, sorry", f);
    std::fclose(f);
  }
  EXPECT_THROW(moe::load_routing_trace(path), CheckError);
  EXPECT_THROW(moe::load_routing_trace(temp_path("nope.trace")), CheckError);
}

TEST(Trace, TruncationDetected) {
  const auto trace = sample_trace(2);
  const std::string path = temp_path("trunc.trace");
  moe::save_routing_trace(path, trace);
  // Truncate the file.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(size, 64);
  EXPECT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_THROW(moe::load_routing_trace(path), CheckError);
}

TEST(TraceRouter, ReplaysInOrderAndWraps) {
  const auto trace = sample_trace(3);
  moe::TraceRouter router(trace);
  EXPECT_EQ(router.num_steps(), 3u);
  const auto& s0 = router.next_step();
  EXPECT_EQ(s0[0].expert_tokens, trace[0][0].expert_tokens);
  router.next_step();
  router.next_step();
  // Wrap-around.
  const auto& again = router.next_step();
  EXPECT_EQ(again[0].expert_tokens, trace[0][0].expert_tokens);
  EXPECT_EQ(router.steps_replayed(), 4u);
}

TEST(TraceRouter, RejectsEmptyTrace) {
  EXPECT_THROW(moe::TraceRouter(moe::RoutingTrace{}), CheckError);
}

TEST(Trace, ProbabilityMatchesManualAggregation) {
  const auto trace = sample_trace(5, 64);
  Tensor p = moe::trace_probability(trace);
  EXPECT_EQ(p.rows(), 3u);
  EXPECT_EQ(p.cols(), 6u);
  // Rows sum to top-k = 2.
  for (std::size_t l = 0; l < 3; ++l) {
    float row = 0.0f;
    for (std::size_t e = 0; e < 6; ++e) row += p.at(l, e);
    EXPECT_NEAR(row, 2.0f, 1e-4f);
  }
  // Spot-check one cell against a manual count.
  std::uint64_t count = 0, tokens = 0;
  for (const auto& step : trace) {
    count += step[1].expert_tokens[2].size();
    tokens += step[1].num_tokens;
  }
  EXPECT_NEAR(p.at(1, 2), float(count) / float(tokens), 1e-6f);
}

}  // namespace
}  // namespace vela
