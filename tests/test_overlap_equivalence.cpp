// Overlap-pipeline equivalence (`ctest -L overlap`).
//
// The contract that makes VELA_OVERLAP a pure performance knob: at any
// pipeline depth K the micro-chunked dispatch produces bit-identical losses,
// gradients, adapter weights and per-step byte ledgers to the sequential
// exchange — threading and fragmentation may change only *when* bytes move,
// never which bytes move or what is computed from them. A run with the
// FaultInjector active additionally proves retransmitted fragments are
// charged exactly like first transmissions (no header double-count).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "comm/fault_injector.h"
#include "core/expert_broker.h"
#include "core/expert_worker.h"
#include "core/fault_tolerance.h"
#include "core/master.h"
#include "core/vela_system.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace vela {
namespace {

template <typename Fn>
auto with_threads(std::size_t threads, Fn&& fn) {
  util::ThreadPool::set_global_threads(threads);
  auto result = fn();
  util::ThreadPool::set_global_threads(0);
  return result;
}

core::VelaSystemConfig sys_config(int overlap_chunks) {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 3;
  cfg.wire_bits = 32;
  cfg.clock.compute_seconds = 0.5;
  cfg.overlap_chunks = overlap_chunks;  // explicit: env must not leak in
  return cfg;
}

struct RunTrace {
  std::vector<float> losses;
  std::vector<double> external_mb;
  std::vector<double> step_seconds;
  std::vector<double> overlap_step_seconds;
  std::vector<std::size_t> faults_injected;
  std::vector<Tensor> expert_states;  // all (layer, expert) adapter tensors
  std::size_t retransmissions = 0;
};

RunTrace run_finetune(int overlap_chunks, int steps,
                      const comm::FaultPlan* plan = nullptr) {
  auto cfg = sys_config(overlap_chunks);
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 17);
  comm::FaultInjector injector(plan != nullptr ? *plan : comm::FaultPlan{});
  core::VelaSystem vela(cfg, &corpus);
  if (plan != nullptr) {
    core::FaultToleranceConfig ft;
    ft.retry.timeout = std::chrono::milliseconds(60);
    ft.retry.max_retries = 4;
    ft.retry.backoff = 2.0;
    ft.snapshot_interval = 0;  // no snapshot traffic: ledgers stay comparable
    vela.enable_fault_tolerance(ft);
    vela.attach_fault_injector(&injector);
  }
  const auto batch = corpus.make_dataset(2, 6);
  RunTrace trace;
  for (int i = 0; i < steps; ++i) {
    const auto report = vela.train_step(batch);
    trace.losses.push_back(report.loss);
    trace.external_mb.push_back(report.external_mb_per_node);
    trace.step_seconds.push_back(report.step_seconds);
    trace.overlap_step_seconds.push_back(report.overlap_step_seconds);
    trace.faults_injected.push_back(report.faults_injected);
    EXPECT_EQ(report.overlap_chunks,
              static_cast<std::size_t>(overlap_chunks > 1 ? overlap_chunks : 0));
  }
  for (std::size_t l = 0; l < cfg.model.num_layers; ++l) {
    for (std::size_t e = 0; e < cfg.model.num_experts; ++e) {
      trace.expert_states.push_back(vela.master().query_expert_state(l, e));
    }
  }
  trace.retransmissions = vela.master().fault_stats().retransmissions;
  return trace;
}

void expect_traces_bit_exact(const RunTrace& a, const RunTrace& b,
                             const char* what) {
  ASSERT_EQ(a.losses.size(), b.losses.size()) << what;
  for (std::size_t i = 0; i < a.losses.size(); ++i) {
    EXPECT_TRUE(std::isfinite(a.losses[i])) << what;
    EXPECT_EQ(a.losses[i], b.losses[i]) << what << ": loss, step " << i;
    EXPECT_EQ(a.external_mb[i], b.external_mb[i])
        << what << ": metered bytes, step " << i;
    EXPECT_EQ(a.step_seconds[i], b.step_seconds[i])
        << what << ": sequential-model step time, step " << i;
  }
  ASSERT_EQ(a.expert_states.size(), b.expert_states.size()) << what;
  for (std::size_t i = 0; i < a.expert_states.size(); ++i) {
    ASSERT_EQ(a.expert_states[i].size(), b.expert_states[i].size()) << what;
    EXPECT_EQ(0, std::memcmp(a.expert_states[i].data(),
                             b.expert_states[i].data(),
                             a.expert_states[i].size() * sizeof(float)))
        << what << ": expert adapter state " << i << " differs bitwise";
  }
}

TEST(OverlapEquivalence, FullTrainingRunIsBitExactAcrossPipelineDepths) {
  // Two full fine-tuning steps (forward, backward, optimizer) at K = 0 and
  // K ∈ {2, 4, 8}: losses, per-step metered bytes and every expert adapter
  // tensor must match the sequential run bit-for-bit.
  const RunTrace sequential = run_finetune(0, 2);
  for (const int k : {2, 4, 8}) {
    const RunTrace piped = run_finetune(k, 2);
    expect_traces_bit_exact(sequential, piped,
                            ("K=" + std::to_string(k)).c_str());
    // The overlap clock must actually credit the pipeline: strictly below
    // the sequential model, never below the compute floor.
    for (std::size_t i = 0; i < piped.losses.size(); ++i) {
      EXPECT_LT(piped.overlap_step_seconds[i], piped.step_seconds[i]);
      EXPECT_GE(piped.overlap_step_seconds[i], 0.5);
    }
  }
  // With the pipeline off, the overlap series is the sequential series.
  for (std::size_t i = 0; i < sequential.losses.size(); ++i) {
    EXPECT_EQ(sequential.overlap_step_seconds[i], sequential.step_seconds[i]);
  }
}

TEST(OverlapEquivalence, ThreadedPipelineMatchesSerialSequential) {
  // The strongest cross: serial pool + sequential dispatch vs 8-lane pool +
  // depth-8 pipeline. Neither the pool size nor the pipeline depth may
  // change a single bit or byte.
  const RunTrace serial = with_threads(1, [] { return run_finetune(0, 2); });
  const RunTrace piped = with_threads(8, [] { return run_finetune(8, 2); });
  expect_traces_bit_exact(serial, piped, "serial/K=0 vs 8-lane/K=8");
}

TEST(OverlapEquivalence, EnvVarControlsPipelineDepth) {
  const auto with_env = [](const char* value) {
    if (value == nullptr) {
      ::unsetenv("VELA_OVERLAP");
    } else {
      ::setenv("VELA_OVERLAP", value, 1);
    }
    const std::size_t k = core::overlap_chunks_from_env();
    ::unsetenv("VELA_OVERLAP");
    return k;
  };
  EXPECT_EQ(with_env(nullptr), 0u);
  EXPECT_EQ(with_env("0"), 0u);
  EXPECT_EQ(with_env("1"), 0u);  // depth 1 is the sequential exchange
  EXPECT_EQ(with_env("4"), 4u);
  EXPECT_EQ(with_env("8"), 8u);
  EXPECT_EQ(with_env("999"), 255u);  // clamped: fragment header is one byte
  EXPECT_EQ(with_env("junk"), 0u);
  EXPECT_EQ(with_env("-3"), 0u);

  // The system honours the env var when the config says "ask the env", and
  // an explicit config value overrides it.
  ::setenv("VELA_OVERLAP", "4", 1);
  {
    auto cfg = sys_config(-1);
    data::SyntheticCorpus corpus(
        data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 17);
    core::VelaSystem from_env(cfg, &corpus);
    EXPECT_EQ(from_env.overlap_chunks(), 4u);
    core::VelaSystem overridden(sys_config(0), &corpus);
    EXPECT_EQ(overridden.overlap_chunks(), 0u);
  }
  ::unsetenv("VELA_OVERLAP");
}

TEST(OverlapEquivalence, FaultedOverlapRunStaysBitExact) {
  // Drop two in-flight training messages under a depth-4 pipeline. Reliable
  // retransmission must keep the run bit-identical to BOTH the fault-free
  // pipelined run and the fault-free sequential run; the retransmitted
  // bytes are metered on top.
  comm::FaultPlan plan;
  plan.rules.push_back(
      {0, comm::LinkDir::kToWorker, 2, comm::FaultKind::kDrop, 0.0});
  plan.rules.push_back(
      {2, comm::LinkDir::kToWorker, 5, comm::FaultKind::kDrop, 0.0});
  const RunTrace faulted = run_finetune(4, 2, &plan);
  const RunTrace clean = run_finetune(4, 2);
  const RunTrace sequential = run_finetune(0, 2);

  ASSERT_EQ(faulted.losses.size(), 2u);
  std::size_t faults = 0;
  for (const std::size_t f : faulted.faults_injected) faults += f;
  EXPECT_EQ(faults, 2u);
  EXPECT_GE(faulted.retransmissions, 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(faulted.losses[i], clean.losses[i]);
    EXPECT_EQ(faulted.losses[i], sequential.losses[i]);
    // Retransmissions are real wire traffic: metered once more, never less.
    EXPECT_GE(faulted.external_mb[i], clean.external_mb[i]);
  }
  double faulted_total = 0.0, clean_total = 0.0;
  for (std::size_t i = 0; i < 2; ++i) {
    faulted_total += faulted.external_mb[i];
    clean_total += clean.external_mb[i];
  }
  EXPECT_GT(faulted_total, clean_total);
  for (std::size_t i = 0; i < faulted.expert_states.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(faulted.expert_states[i].data(),
                             sequential.expert_states[i].data(),
                             faulted.expert_states[i].size() * sizeof(float)))
        << "faulted pipelined weights diverged from sequential, expert " << i;
  }
}

// --- fragment-level ledger precision -----------------------------------------

core::WorkerSpec broker_spec() {
  core::WorkerSpec s;
  s.model_dim = 8;
  s.hidden_dim = 16;
  s.lora = nn::LoRAConfig{2, 4.0f, true};
  s.base_seed = 3;
  s.wire_bits = 32;
  return s;
}

struct BrokerRun {
  Tensor output;
  comm::VelaStepRecord record;
  std::uint64_t retransmissions = 0;
};

// One chunked experts_forward against a single worker hosting one expert;
// 8 rows at depth 4 → four 2-row fragments, message order on the link is
// chunk 0, 1, 2, 3 (then the replies).
BrokerRun run_chunked_forward(const comm::FaultPlan* plan) {
  comm::FaultInjector injector(plan != nullptr ? *plan : comm::FaultPlan{});
  comm::DuplexLink link(comm::TransportKind::kDefault, 0, 0, nullptr);
  if (plan != nullptr) link.set_fault_injector(&injector, 0);
  core::ExpertWorker worker(broker_spec(), &link, {{0, 0}});
  worker.start();
  core::RetryPolicy policy;
  policy.timeout = std::chrono::milliseconds(60);
  policy.max_retries = 4;
  policy.backoff = 2.0;
  core::ReliableLink rlink(0, &link, &policy);
  placement::Placement placement(1, 1);
  placement.assign(0, 0, 0);
  core::ExpertBroker broker({&rlink}, &placement, 1, 32);
  broker.set_overlap_chunks(4);
  broker.begin_step();
  Rng xr(5);
  const Tensor x = ops::randn({8, 8}, xr);
  auto outs = broker.experts_forward(0, {{0, ag::Variable::constant(x)}});
  BrokerRun run;
  run.output = outs.at(0).value();
  run.record = broker.finish_step();
  run.retransmissions = rlink.stats().retransmissions;
  link.to_worker.close();
  worker.join();
  return run;
}

TEST(OverlapEquivalence, RetransmittedContinuationChargesPayloadOnly) {
  // Drop the second fragment (a header-free continuation) of a 4-chunk
  // dispatch. The retransmission must be charged to the ledger exactly like
  // the first transmission of that fragment: payload-only bytes, zero
  // additional messages — the logical transfer's header and message count
  // were already paid by fragment 0.
  comm::FaultPlan plan;
  plan.rules.push_back(
      {0, comm::LinkDir::kToWorker, 1, comm::FaultKind::kDrop, 0.0});
  const BrokerRun faulted = run_chunked_forward(&plan);
  const BrokerRun clean = run_chunked_forward(nullptr);

  EXPECT_EQ(faulted.retransmissions, 1u);
  ASSERT_EQ(faulted.output.shape(), clean.output.shape());
  EXPECT_EQ(0, std::memcmp(faulted.output.data(), clean.output.data(),
                           clean.output.size() * sizeof(float)));

  // Expected delta: the wire size of exactly one continuation fragment —
  // rows [2, 4) of the 8×8 input, chunk_index 1 → no header bytes.
  Rng xr(5);
  const Tensor x = ops::randn({8, 8}, xr);
  comm::Message frag;
  frag.type = comm::MessageType::kExpertForward;
  frag.wire_bits = 32;
  frag.chunk_index = 1;
  frag.chunk_count = 4;
  frag.payload = ops::slice_rows(x, 2, 2);
  const std::uint64_t continuation_bytes = frag.wire_size();
  EXPECT_GT(continuation_bytes, 0u);

  ASSERT_EQ(faulted.record.phases.size(), clean.record.phases.size());
  // One layer → phases[0] is the forward ledger, phases[1] the (empty)
  // backward ledger.
  ASSERT_EQ(faulted.record.phases[0].bytes.size(), 1u);
  EXPECT_EQ(faulted.record.phases[0].bytes[0],
            clean.record.phases[0].bytes[0] + continuation_bytes);
  // No header double-count: the message tally is identical.
  EXPECT_EQ(faulted.record.phases[0].messages, clean.record.phases[0].messages);
  EXPECT_EQ(faulted.record.phases[1].bytes, clean.record.phases[1].bytes);
}

TEST(OverlapEquivalence, ChunkedForwardLedgerMatchesSequential) {
  // Byte invariance at the ledger level, not just the MB roll-up: the
  // chunked dispatch must record the same per-phase bytes AND messages as
  // the sequential dispatch of the same group.
  const auto run_at_depth = [](std::size_t k) {
    comm::DuplexLink link(comm::TransportKind::kDefault, 0, 0, nullptr);
    core::ExpertWorker worker(broker_spec(), &link, {{0, 0}});
    worker.start();
    core::RetryPolicy policy;
    policy.timeout = std::chrono::milliseconds(500);
    policy.max_retries = 2;
    core::ReliableLink rlink(0, &link, &policy);
    placement::Placement placement(1, 1);
    placement.assign(0, 0, 0);
    core::ExpertBroker broker({&rlink}, &placement, 1, 32);
    broker.set_overlap_chunks(k);
    broker.begin_step();
    Rng xr(5);
    const Tensor x = ops::randn({8, 8}, xr);
    auto outs = broker.experts_forward(0, {{0, ag::Variable::constant(x)}});
    BrokerRun run;
    run.output = outs.at(0).value();
    run.record = broker.finish_step();
    link.to_worker.close();
    worker.join();
    return run;
  };
  const BrokerRun sequential = run_at_depth(0);
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const BrokerRun chunked = run_at_depth(k);
    ASSERT_EQ(chunked.output.shape(), sequential.output.shape());
    EXPECT_EQ(0,
              std::memcmp(chunked.output.data(), sequential.output.data(),
                          sequential.output.size() * sizeof(float)))
        << "depth " << k;
    ASSERT_EQ(chunked.record.phases.size(), sequential.record.phases.size());
    for (std::size_t p = 0; p < sequential.record.phases.size(); ++p) {
      EXPECT_EQ(chunked.record.phases[p].bytes,
                sequential.record.phases[p].bytes)
          << "depth " << k << ", phase " << p;
      EXPECT_EQ(chunked.record.phases[p].messages,
                sequential.record.phases[p].messages)
          << "depth " << k << ", phase " << p;
    }
  }
}

}  // namespace
}  // namespace vela
