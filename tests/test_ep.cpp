#include "ep/expert_parallel.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace vela {
namespace {

cluster::ClusterTopology paper_topo() {
  return cluster::ClusterTopology(cluster::ClusterConfig::paper_testbed());
}

moe::RoutePlan plan_all_to_expert(std::size_t tokens, std::size_t experts,
                                  std::size_t target) {
  moe::RoutePlan plan;
  plan.num_tokens = tokens;
  plan.num_experts = experts;
  plan.top_k = 1;
  plan.expert_tokens.assign(experts, {});
  for (std::size_t t = 0; t < tokens; ++t) {
    plan.expert_tokens[target].push_back(t);
  }
  return plan;
}

TEST(Ep, TokenShardingContiguous) {
  auto topo = paper_topo();
  ep::ExpertParallelModel ep_model(&topo, {8192, 0, 32});
  // 12 tokens over 6 devices: 2 per device.
  EXPECT_EQ(ep_model.device_of_token(0, 12), 0u);
  EXPECT_EQ(ep_model.device_of_token(1, 12), 0u);
  EXPECT_EQ(ep_model.device_of_token(2, 12), 1u);
  EXPECT_EQ(ep_model.device_of_token(11, 12), 5u);
}

TEST(Ep, ExpertPlacementRoundRobin) {
  auto topo = paper_topo();
  ep::ExpertParallelModel ep_model(&topo, {8192, 0, 32});
  EXPECT_EQ(ep_model.device_of_expert(0), 0u);
  EXPECT_EQ(ep_model.device_of_expert(7), 1u);
}

TEST(Ep, FourPhasesPerBlockPlusTranspose) {
  auto topo = paper_topo();
  ep::EpConfig cfg{64, 0, 0};
  ep::ExpertParallelModel ep_model(&topo, cfg);
  std::vector<moe::RoutePlan> plans{plan_all_to_expert(12, 6, 3)};
  auto record = ep_model.account_step(plans);
  ASSERT_EQ(record.phases.size(), 4u);
  // All 12 tokens go to expert 3 on device 3; tokens of device 3 (t=6,7)
  // are local. The gather phase must be the transpose of the dispatch.
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(record.phases[0].bytes[i][j], record.phases[1].bytes[j][i]);
    }
  }
  EXPECT_EQ(record.phases[0].bytes[0][3], 2u * 64u);  // 2 tokens, no header
  EXPECT_EQ(record.phases[0].bytes[3][3], 0u);        // local stays local
  // Backward mirrors forward.
  EXPECT_EQ(record.phases[2].bytes[0][3], record.phases[0].bytes[0][3]);
}

TEST(Ep, HeaderAddedPerCommunicatingPair) {
  auto topo = paper_topo();
  ep::EpConfig cfg{64, 0, 32};
  ep::ExpertParallelModel ep_model(&topo, cfg);
  std::vector<moe::RoutePlan> plans{plan_all_to_expert(12, 6, 3)};
  auto record = ep_model.account_step(plans);
  EXPECT_EQ(record.phases[0].bytes[0][3], 2u * 64u + 32u);
}

TEST(Ep, ExternalBytesCountOnlyCrossNodePairs) {
  auto topo = paper_topo();
  ep::EpConfig cfg{100, 0, 0};
  ep::ExpertParallelModel ep_model(&topo, cfg);
  // Expert 1 lives on device 1 (node 0). Tokens from devices 0/1 (node 0)
  // are internal; devices 2–5 send externally.
  std::vector<moe::RoutePlan> plans{plan_all_to_expert(12, 6, 1)};
  auto record = ep_model.account_step(plans);
  // Dispatch: 8 external tokens; ×2 (gather) ×2 (backward) = 32 tokens.
  EXPECT_EQ(ep_model.external_bytes(record), 32u * 100u);
}

TEST(Ep, AllReduceAddsExternalBytes) {
  auto topo = paper_topo();
  ep::EpConfig with{100, 600, 0};
  ep::EpConfig without{100, 0, 0};
  ep::ExpertParallelModel a(&topo, with), b(&topo, without);
  std::vector<moe::RoutePlan> plans{plan_all_to_expert(6, 6, 0)};
  const auto ra = a.account_step(plans);
  const auto rb = b.account_step(plans);
  // Ring over 6 devices: edges 1-2, 3-4, 5-0 cross nodes (3 edges), each
  // carrying 2·(5/6)·600 = 1000 bytes.
  EXPECT_EQ(a.external_bytes(ra), b.external_bytes(rb) + 3u * 1000u);
}

TEST(Ep, BalancedRoutingStillCrossesNodes) {
  // Even with perfectly uniform routing, ~(N-1)/N of dispatches are remote:
  // the structural cost of expert parallelism.
  auto topo = paper_topo();
  ep::EpConfig cfg{100, 0, 0};
  ep::ExpertParallelModel ep_model(&topo, cfg);
  moe::RoutePlan plan;
  plan.num_tokens = 6;
  plan.num_experts = 6;
  plan.top_k = 1;
  plan.expert_tokens.assign(6, {});
  for (std::size_t t = 0; t < 6; ++t) {
    plan.expert_tokens[(t + 1) % 6].push_back(t);  // shifted: all remote-ish
  }
  auto record = ep_model.account_step({plan});
  EXPECT_GT(ep_model.external_bytes(record), 0u);
}

TEST(Ep, RequiresPositiveBytesPerToken) {
  auto topo = paper_topo();
  EXPECT_THROW(ep::ExpertParallelModel(&topo, ep::EpConfig{0, 0, 0}),
               CheckError);
}

}  // namespace
}  // namespace vela
