// Golden-file regression test for the thrash-vs-replicate offload CSV
// (`ctest -L offload`, DESIGN.md §15).
//
// bench_micro and this test share the emitter in bench/offload_csv.h, so a
// schema, row-order or formatting drift in the sweep CSV fails here on a
// seconds-long replay. The golden file is checked in; regenerate
// deliberately with VELA_REGEN_GOLDEN=1 after an intentional change and
// review the diff. The schema test also pins the paper-facing claim the
// sweep exists to record: locality-priority admission beats LRU's hit rate
// on the Zipf corpus.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "offload_csv.h"

namespace vela {
namespace {

// Compile-time path to tests/golden/ (set in tests/CMakeLists.txt).
#ifndef VELA_GOLDEN_DIR
#error "VELA_GOLDEN_DIR must be defined by the build"
#endif

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, sep)) cells.push_back(cell);
  return cells;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream ss(text);
  while (std::getline(ss, line)) lines.push_back(line);
  return lines;
}

std::string join(const std::vector<std::string>& cells, char sep) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out.push_back(sep);
    out += cells[i];
  }
  return out;
}

std::string emit_offload_csv(const std::string& path) {
  {
    CsvWriter csv(path, bench::offload_columns());
    bench::emit_offload_sweep("tiny-offload", csv, ::testing::TempDir());
  }  // writer flushes on destruction
  return slurp(path);
}

void maybe_regenerate(const std::string& golden_path,
                      const std::string& produced) {
  if (std::getenv("VELA_REGEN_GOLDEN") == nullptr) return;
  std::ofstream out(golden_path, std::ios::binary);
  out << produced;
}

TEST(OffloadGolden, CsvMatchesGoldenByteForByte) {
  const std::string produced = emit_offload_csv("golden_offload_out.csv");
  const std::string golden_path =
      std::string(VELA_GOLDEN_DIR) + "/offload_tiny.csv";
  maybe_regenerate(golden_path, produced);
  EXPECT_EQ(produced, slurp(golden_path))
      << "offload CSV drifted from tests/golden/offload_tiny.csv; if "
         "intentional, regenerate with VELA_REGEN_GOLDEN=1 and review the "
         "diff";
}

TEST(OffloadGolden, SchemaAndInvariants) {
  const auto rows = lines_of(emit_offload_csv("golden_offload_schema.csv"));
  const std::size_t cells_per_row = bench::offload_columns().size();
  // policy-major, budget-minor: 3 policies x 5 budgets.
  ASSERT_EQ(rows.size(), 1u + 3u * 5u);
  EXPECT_EQ(rows[0], join(bench::offload_columns(), ','));

  // (policy, budget) -> (hit_rate, thrash_mb, replicate_once_mb)
  std::map<std::string, std::map<long long, std::vector<double>>> table;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto cells = split(rows[i], ',');
    ASSERT_EQ(cells.size(), cells_per_row) << rows[i];
    EXPECT_EQ(cells[0], "tiny-offload");
    const double hit_rate = std::stod(cells[3]);
    const double page_out_mb = std::stod(cells[4]);
    const double page_in_mb = std::stod(cells[5]);
    const double thrash_mb = std::stod(cells[6]);
    const double replicate_mb = std::stod(cells[7]);
    EXPECT_GE(hit_rate, 0.0) << rows[i];
    EXPECT_LE(hit_rate, 1.0) << rows[i];
    // Nothing can be paged in that was never paged out.
    EXPECT_LE(page_in_mb, page_out_mb) << rows[i];
    EXPECT_NEAR(thrash_mb, page_out_mb + page_in_mb, 1e-5) << rows[i];
    table[cells[1]][std::stoll(cells[2])] = {hit_rate, thrash_mb,
                                             replicate_mb};
  }
  for (const auto& [policy, by_budget] : table) {
    ASSERT_EQ(by_budget.size(), 5u) << policy;
    // More resident slots can only help: hit rate weakly rises with budget,
    // the one-time replication alternative weakly shrinks.
    double prev_hit = -1.0, prev_replicate = 1e18;
    for (const auto& [budget, vals] : by_budget) {
      EXPECT_GE(vals[0], prev_hit) << policy << " budget " << budget;
      EXPECT_LE(vals[2], prev_replicate) << policy << " budget " << budget;
      prev_hit = vals[0];
      prev_replicate = vals[2];
    }
  }
  // The acceptance claim: locality-priority admission (fed the trace's true
  // frequencies) beats plain LRU's hit rate on the Zipf corpus wherever the
  // pool is actually contended.
  double locality_sum = 0.0, lru_sum = 0.0;
  for (const auto& [budget, vals] : table["locality"]) {
    locality_sum += vals[0];
    lru_sum += table["lru"][budget][0];
    EXPECT_GE(vals[0], table["lru"][budget][0]) << "budget " << budget;
  }
  EXPECT_GT(locality_sum, lru_sum);
}

TEST(OffloadGolden, EmitterIsDeterministicAcrossRuns) {
  const std::string a = emit_offload_csv("golden_offload_det_a.csv");
  const std::string b = emit_offload_csv("golden_offload_det_b.csv");
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace vela
