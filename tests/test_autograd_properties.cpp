// Property-style sweeps over the autograd engine: gradcheck across shapes
// and seeds, plus algebraic identities the backward pass must satisfy.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vela {
namespace {

using ag::Variable;

struct Shape {
  std::size_t rows;
  std::size_t cols;
  std::uint64_t seed;
};

class GradcheckSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(GradcheckSweep, ComposedNetworkGradchecks) {
  // A miniature network touching most ops at once: y = softmax(silu(xWᵀ)),
  // loss = Σ (y ⊙ c) with a random constant c.
  const auto param = GetParam();
  Rng rng(param.seed);
  Variable x =
      Variable::leaf(ops::randn({param.rows, param.cols}, rng), true);
  Variable w =
      Variable::leaf(ops::randn({param.cols, param.cols}, rng), true);
  Rng cr(param.seed + 1);
  Variable c =
      Variable::constant(ops::randn({param.rows, param.cols}, cr));
  auto loss = [&] {
    return ag::sum(
        ag::mul(ag::softmax_rows(ag::silu(ag::linear_nt(x, w))), c));
  };
  EXPECT_LT(ag::gradcheck_max_abs_err(x, loss, 1e-2f), 2e-2f);
  EXPECT_LT(ag::gradcheck_max_abs_err(w, loss, 1e-2f), 2e-2f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GradcheckSweep,
                         ::testing::Values(Shape{2, 3, 1}, Shape{3, 4, 2},
                                           Shape{4, 2, 3}, Shape{1, 6, 4},
                                           Shape{6, 1, 5}, Shape{5, 5, 6}));

class MatmulChainSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(MatmulChainSweep, ChainRuleThroughTwoMatmuls) {
  const auto param = GetParam();
  Rng rng(param.seed + 100);
  Variable a = Variable::leaf(ops::randn({param.rows, param.cols}, rng), true);
  Variable b = Variable::leaf(ops::randn({param.cols, 3}, rng), true);
  Variable c = Variable::leaf(ops::randn({3, 2}, rng), true);
  auto loss = [&] { return ag::mean(ag::matmul(ag::matmul(a, b), c)); };
  EXPECT_LT(ag::gradcheck_max_abs_err(a, loss, 1e-2f), 1e-2f);
  EXPECT_LT(ag::gradcheck_max_abs_err(b, loss, 1e-2f), 1e-2f);
  EXPECT_LT(ag::gradcheck_max_abs_err(c, loss, 1e-2f), 1e-2f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulChainSweep,
                         ::testing::Values(Shape{2, 3, 1}, Shape{4, 4, 2},
                                           Shape{3, 5, 3}));

TEST(AutogradProperties, BackwardIsLinearInSeed) {
  // backward_from(root, a·g1 + b·g2) == a·backward_from(root, g1) +
  // b·backward_from(root, g2): reverse-mode is a linear map.
  Rng rng(7);
  const Tensor x0 = ops::randn({3, 4}, rng);
  const Tensor w0 = ops::randn({4, 4}, rng);
  const Tensor g1 = ops::randn({3, 4}, rng);
  const Tensor g2 = ops::randn({3, 4}, rng);

  auto grad_for = [&](const Tensor& seed) {
    Variable x = Variable::leaf(x0, true);
    Variable w = Variable::constant(w0);
    Variable y = ag::silu(ag::matmul(x, w));
    ag::backward_from(y, seed);
    return x.grad();
  };

  Tensor combined_seed = ops::add(ops::scale(g1, 2.0f), ops::scale(g2, -3.0f));
  Tensor lhs = grad_for(combined_seed);
  Tensor rhs = ops::add(ops::scale(grad_for(g1), 2.0f),
                        ops::scale(grad_for(g2), -3.0f));
  EXPECT_TRUE(ops::allclose(lhs, rhs, 1e-4f, 1e-4f));
}

TEST(AutogradProperties, SoftmaxGradOrthogonalToOnes) {
  // Softmax outputs sum to 1 per row, so the Jacobian maps any upstream
  // gradient to a row-wise zero-sum gradient.
  Rng rng(9);
  Variable x = Variable::leaf(ops::randn({4, 6}, rng), true);
  Variable y = ag::softmax_rows(x);
  ag::backward_from(y, ops::randn({4, 6}, rng));
  for (std::size_t i = 0; i < 4; ++i) {
    float row = 0.0f;
    for (std::size_t j = 0; j < 6; ++j) row += x.grad().at(i, j);
    EXPECT_NEAR(row, 0.0f, 1e-5f);
  }
}

TEST(AutogradProperties, RmsNormGradOrthogonalToInput) {
  // y = x/rms(x) is scale-invariant: d/dt f(norm(t·x)) |_{t=1} = 0, so the
  // input gradient must be orthogonal to x row-wise (with unit gain).
  Rng rng(11);
  const Tensor x0 = ops::randn({3, 8}, rng);
  Variable x = Variable::leaf(x0, true);
  Variable g = Variable::constant(Tensor::ones({8}));
  Variable y = ag::rmsnorm(x, g, 0.0f);
  ag::backward_from(y, ops::randn({3, 8}, rng));
  for (std::size_t i = 0; i < 3; ++i) {
    double inner = 0.0;
    for (std::size_t j = 0; j < 8; ++j) {
      inner += double(x.grad().at(i, j)) * x0.at(i, j);
    }
    EXPECT_NEAR(inner, 0.0, 1e-4);
  }
}

TEST(AutogradProperties, GatherScatterAreAdjoint) {
  // <gather(x, idx), y> == <x, scatter(y, idx)> — the defining adjoint
  // relation that makes their backward passes each other's forward.
  Rng rng(13);
  const Tensor x0 = ops::randn({5, 3}, rng);
  const std::vector<std::size_t> idx{4, 0, 2, 0};
  const Tensor y0 = ops::randn({4, 3}, rng);

  const Tensor gathered = ops::gather_rows(x0, idx);
  Tensor scattered({5, 3});
  ops::scatter_add_rows(scattered, y0, idx);
  EXPECT_NEAR(ops::dot(gathered, y0), ops::dot(x0, scattered), 1e-4f);
}

TEST(AutogradProperties, CrossEntropyGradImprovesLoss) {
  // One tiny gradient step on the logits must reduce the CE loss (descent
  // direction property).
  Rng rng(15);
  Tensor logits = ops::randn({6, 5}, rng);
  const std::vector<std::size_t> targets{0, 1, 2, 3, 4, 0};
  const float before = ops::cross_entropy(logits, targets);
  Tensor grad = ops::cross_entropy_grad(logits, targets);
  logits.axpy_(-0.1f, grad);
  EXPECT_LT(ops::cross_entropy(logits, targets), before);
}

TEST(AutogradProperties, ZeroGradIsolatesSteps) {
  Rng rng(17);
  Variable x = Variable::leaf(ops::randn({4}, rng), true);
  ag::backward(ag::sum(x));
  const Tensor first = x.grad();
  x.zero_grad();
  ag::backward(ag::sum(ag::scale(x, 2.0f)));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(x.grad()[i], 2.0f);
    EXPECT_FLOAT_EQ(first[i], 1.0f);
  }
}

}  // namespace
}  // namespace vela
