// Bit-exact determinism across pool sizes: every parallelized kernel and the
// full distributed training step must produce byte-identical results whether
// the shared pool has 1 lane (the serial fallback) or 8. This is the contract
// that makes VELA_THREADS a pure performance knob — never a numerics knob.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <vector>

#include "autograd/variable.h"
#include "core/vela_system.h"
#include "data/batch.h"
#include "nn/expert.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vela {
namespace {

// Runs `fn` under a pool of `threads` lanes, restoring the environment
// default afterwards so test order doesn't leak pool state.
template <typename Fn>
auto with_threads(std::size_t threads, Fn&& fn) {
  util::ThreadPool::set_global_threads(threads);
  auto result = fn();
  util::ThreadPool::set_global_threads(0);
  return result;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b,
                          const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what << ": serial and 8-lane results differ bitwise";
}

// Odd, non-grain-aligned sizes on purpose: partial chunks are where a
// thread-count-dependent partition would first show.
Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  Rng rng(seed);
  return ops::randn(std::move(shape), rng);
}

TEST(ParallelDeterminism, MatmulFamilyIsBitExact) {
  const Tensor a = random_tensor({67, 129}, 11);
  const Tensor b = random_tensor({129, 33}, 12);
  const Tensor at = random_tensor({129, 67}, 13);
  const Tensor bt = random_tensor({33, 129}, 14);

  const auto run = [&] {
    std::vector<Tensor> out;
    out.push_back(ops::matmul(a, b));
    out.push_back(ops::matmul_tn(at, b));
    out.push_back(ops::matmul_nt(a, bt));
    return out;
  };
  const auto serial = with_threads(1, run);
  const auto threaded = with_threads(8, run);
  expect_bitwise_equal(serial[0], threaded[0], "matmul");
  expect_bitwise_equal(serial[1], threaded[1], "matmul_tn");
  expect_bitwise_equal(serial[2], threaded[2], "matmul_nt");
}

TEST(ParallelDeterminism, SoftmaxRowsAreBitExact) {
  const Tensor logits = random_tensor({513, 77}, 21);
  const auto run = [&] {
    std::vector<Tensor> out;
    out.push_back(ops::softmax_rows(logits));
    out.push_back(ops::log_softmax_rows(logits));
    return out;
  };
  const auto serial = with_threads(1, run);
  const auto threaded = with_threads(8, run);
  expect_bitwise_equal(serial[0], threaded[0], "softmax_rows");
  expect_bitwise_equal(serial[1], threaded[1], "log_softmax_rows");
}

TEST(ParallelDeterminism, ReductionsAreBitExact) {
  // ~100k elements: many reduction chunks, so a merge order that varied
  // with thread count would almost surely change the low bits.
  const Tensor v = random_tensor({100003}, 31);
  const Tensor w = random_tensor({100003}, 32);
  const auto run = [&] {
    return std::vector<float>{ops::sum(v), ops::dot(v, w)};
  };
  const auto serial = with_threads(1, run);
  const auto threaded = with_threads(8, run);
  EXPECT_EQ(serial[0], threaded[0]) << "sum";
  EXPECT_EQ(serial[1], threaded[1]) << "dot";
}

TEST(ParallelDeterminism, ElementwiseAndBroadcastAreBitExact) {
  const Tensor a = random_tensor({91, 257}, 41);
  const Tensor b = random_tensor({91, 257}, 42);
  const Tensor bias = random_tensor({257}, 43);
  const auto run = [&] {
    std::vector<Tensor> out;
    out.push_back(ops::mul(a, b));
    out.push_back(ops::silu(a));
    out.push_back(ops::add_row_broadcast(a, bias));
    out.push_back(ops::sum_rows(a));
    out.push_back(ops::to_half_precision(a));
    return out;
  };
  const auto serial = with_threads(1, run);
  const auto threaded = with_threads(8, run);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_bitwise_equal(serial[i], threaded[i], "elementwise/broadcast");
  }
}

TEST(ParallelDeterminism, ExpertForwardBackwardIsBitExact) {
  // A fresh expert per run (same seed) so optimizer-free parameter state is
  // identical; compare the forward output and every LoRA gradient bitwise.
  const Tensor x = random_tensor({37, 32}, 51);
  const Tensor dy = random_tensor({37, 32}, 52);
  const auto run = [&] {
    Rng rng(7);
    nn::SwiGLUExpert expert("det.expert", 32, 64, nn::LoRAConfig{}, rng);
    ag::Variable in = ag::Variable::leaf(x, /*requires_grad=*/true);
    ag::Variable out = expert.forward(in);
    ag::backward_from(out, dy);
    std::vector<Tensor> result;
    result.push_back(out.value());
    result.push_back(in.grad());
    for (const auto& p : expert.trainable_parameters()) {
      result.push_back(p.var.grad());
    }
    return result;
  };
  const auto serial = with_threads(1, run);
  const auto threaded = with_threads(8, run);
  ASSERT_EQ(serial.size(), threaded.size());
  ASSERT_GT(serial.size(), 2u) << "expected trainable LoRA parameters";
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_bitwise_equal(serial[i], threaded[i], "expert forward/backward");
  }
}

TEST(ParallelDeterminism, FullTrainingStepIsBitExactWithIdenticalTraffic) {
  // End-to-end: two fine-tuning steps through the full master/worker system.
  // Losses must match bitwise and the TrafficMeter must count exactly the
  // same bytes — threading may only change *when* work happens, never what
  // goes over the wire.
  struct StepTrace {
    std::vector<float> losses;
    std::vector<double> external_mb;
  };
  const auto run = [&] {
    core::VelaSystemConfig cfg;
    cfg.model = model::ModelConfig::tiny_test();
    cfg.cluster = cluster::ClusterConfig::paper_testbed();
    cfg.seed = 3;
    cfg.wire_bits = 32;
    cfg.clock.compute_seconds = 0.5;
    data::SyntheticCorpus corpus(
        data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 17);
    core::VelaSystem vela(cfg, &corpus);
    const auto batch = corpus.make_dataset(2, 6);
    StepTrace trace;
    for (int i = 0; i < 2; ++i) {
      const auto report = vela.train_step(batch);
      trace.losses.push_back(report.loss);
      trace.external_mb.push_back(report.external_mb_per_node);
    }
    return trace;
  };
  const StepTrace serial = with_threads(1, run);
  const StepTrace threaded = with_threads(8, run);
  ASSERT_EQ(serial.losses.size(), threaded.losses.size());
  for (std::size_t i = 0; i < serial.losses.size(); ++i) {
    EXPECT_TRUE(std::isfinite(serial.losses[i]));
    EXPECT_EQ(serial.losses[i], threaded.losses[i])
        << "loss diverged at step " << i;
    EXPECT_EQ(serial.external_mb[i], threaded.external_mb[i])
        << "traffic diverged at step " << i;
  }
}

}  // namespace
}  // namespace vela
