#include "moe/routing_stats.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace vela {
namespace {

moe::RoutePlan make_plan(std::size_t tokens, std::size_t experts,
                         std::size_t k,
                         std::vector<std::vector<std::size_t>> groups) {
  moe::RoutePlan plan;
  plan.num_tokens = tokens;
  plan.num_experts = experts;
  plan.top_k = k;
  plan.expert_tokens = std::move(groups);
  return plan;
}

TEST(RoutingStats, CountsAndFrequencies) {
  moe::RoutingStats stats(2, 3);
  stats.record(0, make_plan(4, 3, 2, {{0, 1, 2, 3}, {0, 1}, {2, 3}}));
  EXPECT_EQ(stats.count(0, 0), 4u);
  EXPECT_EQ(stats.count(0, 1), 2u);
  EXPECT_EQ(stats.tokens_seen(0), 4u);
  EXPECT_DOUBLE_EQ(stats.frequency(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(stats.frequency(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(stats.frequency(1, 0), 0.0);  // untouched layer
}

TEST(RoutingStats, FrequenciesSumToTopK) {
  moe::RoutingStats stats(1, 3);
  stats.record(0, make_plan(4, 3, 2, {{0, 1, 2, 3}, {0, 1}, {2, 3}}));
  auto freq = stats.layer_frequencies(0);
  double total = 0.0;
  for (double f : freq) total += f;
  EXPECT_DOUBLE_EQ(total, 2.0);
}

TEST(RoutingStats, AccumulatesAcrossRecords) {
  moe::RoutingStats stats(1, 2);
  stats.record(0, make_plan(2, 2, 2, {{0, 1}, {0, 1}}));
  stats.record(0, make_plan(2, 2, 2, {{0, 1}, {0, 1}}));
  EXPECT_EQ(stats.tokens_seen(0), 4u);
  EXPECT_EQ(stats.count(0, 0), 4u);
}

TEST(RoutingStats, InconsistentTopKRejected) {
  moe::RoutingStats stats(1, 2);
  stats.record(0, make_plan(2, 2, 2, {{0, 1}, {0, 1}}));
  EXPECT_THROW(stats.record(0, make_plan(2, 2, 1, {{0, 1}, {}})), CheckError);
}

TEST(RoutingStats, ProbabilityMatrixShapeAndValues) {
  moe::RoutingStats stats(2, 2);
  stats.record(0, make_plan(2, 2, 2, {{0, 1}, {0, 1}}));
  stats.record(1, make_plan(2, 2, 2, {{0, 1}, {0, 1}}));
  Tensor p = stats.probability_matrix();
  EXPECT_EQ(p.rows(), 2u);
  EXPECT_EQ(p.cols(), 2u);
  EXPECT_FLOAT_EQ(p.at(0, 0), 1.0f);
}

TEST(RoutingStats, ScoreSumsAppend) {
  moe::RoutingStats stats(1, 2);
  stats.record_score_sums(0, {0.5f, 0.7f});
  stats.record_score_sums(0, {0.9f});
  EXPECT_EQ(stats.score_sums(0).size(), 3u);
}

TEST(RoutingStats, ResetClearsEverything) {
  moe::RoutingStats stats(1, 2);
  stats.record(0, make_plan(2, 2, 2, {{0, 1}, {0, 1}}));
  stats.record_score_sums(0, {0.5f});
  stats.reset();
  EXPECT_EQ(stats.tokens_seen(0), 0u);
  EXPECT_EQ(stats.count(0, 0), 0u);
  EXPECT_TRUE(stats.score_sums(0).empty());
}

TEST(RoutingStats, MergeCombinesCounts) {
  moe::RoutingStats a(1, 2), b(1, 2);
  a.record(0, make_plan(2, 2, 2, {{0, 1}, {0, 1}}));
  b.record(0, make_plan(4, 2, 2, {{0, 1, 2, 3}, {0, 1, 2, 3}}));
  a.merge(b);
  EXPECT_EQ(a.tokens_seen(0), 6u);
  EXPECT_EQ(a.count(0, 0), 6u);
}

TEST(FrequencyTimeline, RecordsSeries) {
  moe::FrequencyTimeline timeline(2);
  timeline.record_step(make_plan(4, 2, 2, {{0, 1, 2, 3}, {0, 1, 2, 3}}));
  timeline.record_step(make_plan(4, 2, 1, {{0, 1, 2}, {3}}));
  EXPECT_EQ(timeline.num_steps(), 2u);
  EXPECT_DOUBLE_EQ(timeline.step(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(timeline.step(1)[0], 0.75);
}

TEST(FrequencyTimeline, MaxDriftAgainstFirstStep) {
  moe::FrequencyTimeline timeline(2);
  timeline.record_step(make_plan(4, 2, 1, {{0, 1}, {2, 3}}));     // 0.5 / 0.5
  timeline.record_step(make_plan(4, 2, 1, {{0, 1, 2}, {3}}));     // 0.75
  timeline.record_step(make_plan(4, 2, 1, {{0}, {1, 2, 3}}));     // 0.25
  EXPECT_DOUBLE_EQ(timeline.max_drift(0), 0.25);
}

}  // namespace
}  // namespace vela
