// Failure-injection tests: the runtime must fail loudly and cleanly — a
// silent wrong answer is the worst outcome for a training system.
#include <gtest/gtest.h>

#include <thread>

#include "core/expert_broker.h"
#include "core/expert_worker.h"
#include "core/master.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace vela {
namespace {

core::WorkerSpec spec() {
  core::WorkerSpec s;
  s.model_dim = 8;
  s.hidden_dim = 16;
  s.lora = nn::LoRAConfig{2, 4.0f, true};
  s.base_seed = 3;
  s.wire_bits = 32;
  return s;
}

placement::Placement one_layer_placement(std::size_t experts,
                                         std::size_t workers) {
  placement::Placement p(1, experts);
  for (std::size_t e = 0; e < experts; ++e) p.assign(0, e, e % workers);
  return p;
}

TEST(FaultInjection, BrokerDetectsDeadWorkerChannel) {
  comm::DuplexLink link(0, 1, nullptr);
  placement::Placement placement = one_layer_placement(2, 1);
  core::ExpertBroker broker({&link}, &placement, 1, 32);
  // No worker is attached; close the reply channel to simulate a crash.
  link.to_master.close();
  Rng xr(1);
  EXPECT_THROW(broker.expert_forward(
                   0, 0, ag::Variable::constant(ops::randn({2, 8}, xr))),
               CheckError);
}

TEST(FaultInjection, BrokerRejectsMismatchedReply) {
  comm::DuplexLink link(0, 1, nullptr);
  placement::Placement placement = one_layer_placement(2, 1);
  core::ExpertBroker broker({&link}, &placement, 1, 32);
  // An impostor injects a reply with the wrong request id before the real
  // worker could answer.
  comm::Message bogus;
  bogus.type = comm::MessageType::kExpertForwardResult;
  bogus.request_id = 0xDEAD;
  link.to_master.send(std::move(bogus));
  Rng xr(2);
  EXPECT_THROW(broker.expert_forward(
                   0, 0, ag::Variable::constant(ops::randn({2, 8}, xr))),
               CheckError);
}

TEST(FaultInjection, WorkerBackwardForUnknownRequestKillsWorker) {
  comm::DuplexLink link(0, 0, nullptr);
  core::ExpertWorker worker(spec(), &link, {{0, 0}});
  worker.start();
  comm::Message msg;
  msg.type = comm::MessageType::kExpertBackward;
  msg.request_id = 999;  // never issued
  msg.payload = Tensor::ones({2, 8});
  link.to_worker.send(std::move(msg));
  // The worker thread aborts its loop via CheckError; join must not hang
  // and no reply may appear.
  link.to_worker.close();
  worker.join();
  EXPECT_FALSE(link.to_master.try_receive().has_value());
}

TEST(FaultInjection, WorkerForwardForMissingExpertKillsWorker) {
  comm::DuplexLink link(0, 0, nullptr);
  core::ExpertWorker worker(spec(), &link, {{0, 0}});
  worker.start();
  comm::Message msg;
  msg.type = comm::MessageType::kExpertForward;
  msg.request_id = 1;
  msg.layer = 5;  // not hosted
  msg.expert = 5;
  msg.payload = Tensor::ones({2, 8});
  link.to_worker.send(std::move(msg));
  link.to_worker.close();
  worker.join();
  EXPECT_FALSE(link.to_master.try_receive().has_value());
}

TEST(FaultInjection, DoubleInstallRejected) {
  comm::DuplexLink link(0, 0, nullptr);
  core::ExpertWorker worker(spec(), &link, {{0, 0}});
  worker.start();
  comm::Message install;
  install.type = comm::MessageType::kInstallExpert;
  install.request_id = 1;
  install.layer = 0;
  install.expert = 0;  // already hosted
  link.to_worker.send(std::move(install));
  link.to_worker.close();
  worker.join();
  EXPECT_FALSE(link.to_master.try_receive().has_value());
}

TEST(FaultInjection, MasterSurvivesShutdownDuringIdle) {
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  core::MasterProcess master(topology, spec(), one_layer_placement(4, 5), 1,
                             4);
  // Interleave real work with shutdown; nothing should deadlock.
  Rng xr(3);
  master.broker().expert_forward(0, 1,
                                 ag::Variable::constant(ops::randn({2, 8}, xr)));
  master.broadcast_optimizer_step(0);
  master.shutdown();
  master.shutdown();  // idempotent
  SUCCEED();
}

TEST(FaultInjection, ChannelCloseDuringPendingReceiveUnblocks) {
  comm::Channel ch(0, 1, nullptr);
  std::thread receiver([&] {
    auto msg = ch.receive();
    EXPECT_FALSE(msg.has_value());
  });
  ch.close();
  receiver.join();
}

TEST(FaultInjection, FetchOfUnknownExpertKillsWorker) {
  comm::DuplexLink link(0, 0, nullptr);
  core::ExpertWorker worker(spec(), &link, {{0, 0}});
  worker.start();
  comm::Message fetch;
  fetch.type = comm::MessageType::kFetchExpert;
  fetch.request_id = 2;
  fetch.layer = 9;
  fetch.expert = 9;
  link.to_worker.send(std::move(fetch));
  link.to_worker.close();
  worker.join();
  EXPECT_FALSE(link.to_master.try_receive().has_value());
}

}  // namespace
}  // namespace vela
