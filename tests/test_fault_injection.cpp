// Fault-injection & recovery tests (`ctest -L fault`).
//
// Two layers of guarantees:
//  * fail loudly and cleanly — a silent wrong answer is the worst outcome
//    for a training system (the legacy tests at the top);
//  * degrade gracefully — with the fault-tolerance layer on, every injected
//    fault kind (drop, delay, duplicate, corrupt, severed link, worker
//    crash) is recovered and the step completes; where the recovery path is
//    lossless the loss sequence is bit-identical to a fault-free run.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "comm/endpoint.h"
#include "comm/fault_injector.h"
#include "core/expert_broker.h"
#include "core/expert_worker.h"
#include "core/fault_tolerance.h"
#include "core/master.h"
#include "core/vela_system.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace vela {
namespace {

core::WorkerSpec spec() {
  core::WorkerSpec s;
  s.model_dim = 8;
  s.hidden_dim = 16;
  s.lora = nn::LoRAConfig{2, 4.0f, true};
  s.base_seed = 3;
  s.wire_bits = 32;
  return s;
}

placement::Placement one_layer_placement(std::size_t experts,
                                         std::size_t workers) {
  placement::Placement p(1, experts);
  for (std::size_t e = 0; e < experts; ++e) p.assign(0, e, e % workers);
  return p;
}

core::RetryPolicy fast_policy() {
  core::RetryPolicy policy;
  policy.timeout = std::chrono::milliseconds(60);
  policy.max_retries = 4;
  policy.backoff = 2.0;
  return policy;
}

// --- fail-loudly behaviour (pre-fault-tolerance contracts) -------------------

TEST(FaultInjection, BrokerDetectsDeadWorkerChannel) {
  comm::DuplexLink link(comm::TransportKind::kDefault, 0, 1, nullptr);
  core::RetryPolicy policy = fast_policy();
  core::ReliableLink rlink(0, &link, &policy);
  placement::Placement placement = one_layer_placement(2, 1);
  core::ExpertBroker broker({&rlink}, &placement, 1, 32);
  // No worker is attached; close the reply channel to simulate a crash.
  // The failure is structured now: WorkerFailedError, not a bare check.
  link.to_master.close();
  Rng xr(1);
  EXPECT_THROW(broker.expert_forward(
                   0, 0, ag::Variable::constant(ops::randn({2, 8}, xr))),
               core::WorkerFailedError);
}

TEST(FaultInjection, BrokerRejectsMismatchedReply) {
  comm::DuplexLink link(comm::TransportKind::kDefault, 0, 1, nullptr);
  core::RetryPolicy policy = fast_policy();
  core::ReliableLink rlink(0, &link, &policy);
  placement::Placement placement = one_layer_placement(2, 1);
  core::ExpertBroker broker({&rlink}, &placement, 1, 32);
  // An impostor injects a reply that matches nothing ever sent: that is a
  // genuine protocol violation, not a recoverable fault.
  comm::Message bogus;
  bogus.type = comm::MessageType::kExpertForwardResult;
  bogus.request_id = 0xDEAD;
  link.to_master.send(std::move(bogus));
  Rng xr(2);
  EXPECT_THROW(broker.expert_forward(
                   0, 0, ag::Variable::constant(ops::randn({2, 8}, xr))),
               CheckError);
}

TEST(FaultInjection, WorkerBackwardForUnknownRequestKillsWorker) {
  comm::DuplexLink link(comm::TransportKind::kDefault, 0, 0, nullptr);
  core::ExpertWorker worker(spec(), &link, {{0, 0}});
  worker.start();
  comm::Message msg;
  msg.type = comm::MessageType::kExpertBackward;
  msg.request_id = 999;  // never issued
  msg.payload = Tensor::ones({2, 8});
  link.to_worker.send(std::move(msg));
  // The worker thread aborts its loop via CheckError; join must not hang
  // and no reply may appear.
  link.to_worker.close();
  worker.join();
  EXPECT_FALSE(link.to_master.try_receive().has_value());
}

TEST(FaultInjection, WorkerForwardForMissingExpertKillsWorker) {
  comm::DuplexLink link(comm::TransportKind::kDefault, 0, 0, nullptr);
  core::ExpertWorker worker(spec(), &link, {{0, 0}});
  worker.start();
  comm::Message msg;
  msg.type = comm::MessageType::kExpertForward;
  msg.request_id = 1;
  msg.layer = 5;  // not hosted
  msg.expert = 5;
  msg.payload = Tensor::ones({2, 8});
  link.to_worker.send(std::move(msg));
  link.to_worker.close();
  worker.join();
  EXPECT_FALSE(link.to_master.try_receive().has_value());
}

TEST(FaultInjection, DoubleInstallRejected) {
  comm::DuplexLink link(comm::TransportKind::kDefault, 0, 0, nullptr);
  core::ExpertWorker worker(spec(), &link, {{0, 0}});
  worker.start();
  comm::Message install;
  install.type = comm::MessageType::kInstallExpert;
  install.request_id = 1;
  install.layer = 0;
  install.expert = 0;  // already hosted
  link.to_worker.send(std::move(install));
  link.to_worker.close();
  worker.join();
  EXPECT_FALSE(link.to_master.try_receive().has_value());
}

TEST(FaultInjection, MasterSurvivesShutdownDuringIdle) {
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  core::MasterProcess master(topology, spec(), one_layer_placement(4, 5), 1,
                             4);
  // Interleave real work with shutdown; nothing should deadlock.
  Rng xr(3);
  master.broker().expert_forward(0, 1,
                                 ag::Variable::constant(ops::randn({2, 8}, xr)));
  master.broadcast_optimizer_step(0);
  master.shutdown();
  master.shutdown();  // idempotent
  SUCCEED();
}

TEST(FaultInjection, ChannelCloseDuringPendingReceiveUnblocks) {
  comm::Endpoint ch(comm::TransportKind::kDefault, 0, 1, nullptr);
  std::thread receiver([&] {
    auto msg = ch.receive();
    EXPECT_FALSE(msg.has_value());
  });
  ch.close();
  receiver.join();
}

TEST(FaultInjection, FetchOfUnknownExpertKillsWorker) {
  comm::DuplexLink link(comm::TransportKind::kDefault, 0, 0, nullptr);
  core::ExpertWorker worker(spec(), &link, {{0, 0}});
  worker.start();
  comm::Message fetch;
  fetch.type = comm::MessageType::kFetchExpert;
  fetch.request_id = 2;
  fetch.layer = 9;
  fetch.expert = 9;
  link.to_worker.send(std::move(fetch));
  link.to_worker.close();
  worker.join();
  EXPECT_FALSE(link.to_master.try_receive().has_value());
}

// --- fault injector & checksum ----------------------------------------------

TEST(FaultInjectorTest, DeterministicAcrossInstances) {
  comm::FaultPlan plan;
  plan.drop_rate = 0.2;
  plan.corrupt_rate = 0.1;
  plan.duplicate_rate = 0.1;
  plan.seed = 42;
  comm::FaultInjector a(plan);
  comm::FaultInjector b(plan);
  for (int i = 0; i < 200; ++i) {
    comm::Message m1;
    m1.type = comm::MessageType::kProbe;
    m1.request_id = static_cast<std::uint64_t>(i);
    comm::Message m2 = m1;
    EXPECT_EQ(a.on_send(1, comm::LinkDir::kToWorker, m1),
              b.on_send(1, comm::LinkDir::kToWorker, m2));
  }
  EXPECT_EQ(a.counters().dropped, b.counters().dropped);
  EXPECT_EQ(a.counters().corrupted, b.counters().corrupted);
  EXPECT_GT(a.faults_injected(), 0u);
}

TEST(FaultInjectorTest, ScriptedRuleFiresExactlyOnce) {
  comm::FaultPlan plan;
  plan.rules.push_back(
      {0, comm::LinkDir::kToWorker, 2, comm::FaultKind::kDrop, 0.0});
  comm::FaultInjector injector(plan);
  for (int i = 0; i < 6; ++i) {
    comm::Message m;
    m.type = comm::MessageType::kProbe;
    const comm::FaultKind kind =
        injector.on_send(0, comm::LinkDir::kToWorker, m);
    EXPECT_EQ(kind, i == 2 ? comm::FaultKind::kDrop : comm::FaultKind::kNone);
  }
  EXPECT_EQ(injector.counters().dropped, 1u);
  EXPECT_EQ(injector.messages_seen(0, comm::LinkDir::kToWorker), 6u);
}

TEST(FaultInjectorTest, CorruptionBreaksChecksum) {
  comm::Message m;
  m.type = comm::MessageType::kExpertForward;
  m.request_id = 5;
  m.payload = Tensor::ones({4});
  m.stamp_checksum();
  EXPECT_TRUE(m.checksum_ok());
  m.payload[0] = 2.0f;  // bit flip in flight
  EXPECT_FALSE(m.checksum_ok());
  comm::Message unstamped;
  unstamped.payload = Tensor::ones({4});
  EXPECT_TRUE(unstamped.checksum_ok());  // 0 = unchecksummed, always passes
}

TEST(FaultInjectorTest, SeverClosesChannelPermanently) {
  comm::FaultPlan plan;
  plan.rules.push_back(
      {0, comm::LinkDir::kToWorker, 1, comm::FaultKind::kSever, 0.0});
  comm::FaultInjector injector(plan);
  comm::Endpoint ch(comm::TransportKind::kDefault, 0, 1, nullptr);
  ch.set_fault_injector(&injector, 0, comm::LinkDir::kToWorker);
  comm::Message m;
  m.type = comm::MessageType::kProbe;
  EXPECT_TRUE(ch.send(comm::Message(m)));
  EXPECT_FALSE(ch.send(comm::Message(m)));  // severed here
  EXPECT_TRUE(ch.closed());
  EXPECT_FALSE(ch.send(comm::Message(m)));  // stays dead
  EXPECT_EQ(injector.counters().severed, 1u);
}

TEST(FaultInjectorTest, NoInjectorMeansNoChecksumAndSameBytes) {
  // Acceptance guard: without an injector the wire format is byte-identical
  // to the seed runtime — no checksum stamped, header size unchanged.
  comm::Endpoint ch(comm::TransportKind::kDefault, 0, 1, nullptr);
  comm::Message m;
  m.type = comm::MessageType::kExpertForward;
  m.request_id = 1;
  m.payload = Tensor::ones({3});
  const std::uint64_t bytes = m.wire_size();
  ASSERT_TRUE(ch.send(std::move(m)));
  auto got = ch.try_receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->checksum, 0u);
  EXPECT_EQ(got->wire_size(), bytes);
  EXPECT_EQ(comm::Message::kHeaderBytes, 36u);
}

// --- reliable link & idempotent worker --------------------------------------

TEST(ReliableLinkTest, RetransmitsAfterDroppedRequest) {
  comm::FaultPlan plan;
  plan.rules.push_back(
      {0, comm::LinkDir::kToWorker, 0, comm::FaultKind::kDrop, 0.0});
  comm::FaultInjector injector(plan);
  comm::DuplexLink link(comm::TransportKind::kDefault, 0, 0, nullptr);
  link.set_fault_injector(&injector, 0);
  core::ExpertWorker worker(spec(), &link, {{0, 0}});
  worker.start();
  core::RetryPolicy policy = fast_policy();
  core::ReliableLink rlink(0, &link, &policy);

  comm::Message msg;
  msg.type = comm::MessageType::kExpertForward;
  msg.request_id = 1;
  msg.layer = 0;
  msg.expert = 0;
  msg.payload = Tensor::ones({2, 8});
  msg.wire_bits = 32;
  rlink.post(std::move(msg));
  comm::Message reply =
      rlink.await(comm::MessageType::kExpertForwardResult, 1);
  EXPECT_EQ(reply.payload.size(), 16u);
  EXPECT_EQ(rlink.stats().retransmissions, 1u);
  EXPECT_EQ(rlink.stats().timeouts, 1u);

  link.to_worker.close();
  worker.join();
  EXPECT_EQ(worker.requests_served(), 1u);  // executed once, not twice
}

TEST(ReliableLinkTest, ExhaustedRetriesRaiseWorkerFailed) {
  comm::DuplexLink link(comm::TransportKind::kDefault, 0, 0, nullptr);  // nobody answers
  core::RetryPolicy policy;
  policy.timeout = std::chrono::milliseconds(10);
  policy.max_retries = 1;
  core::ReliableLink rlink(3, &link, &policy);
  comm::Message msg;
  msg.type = comm::MessageType::kProbe;
  msg.request_id = 7;
  rlink.post(std::move(msg));
  try {
    rlink.await(comm::MessageType::kProbeAck, 7);
    FAIL() << "await should have thrown";
  } catch (const core::WorkerFailedError& err) {
    EXPECT_EQ(err.worker(), 3u);  // structured: carries the worker index
  }
  EXPECT_EQ(rlink.stats().retransmissions, 1u);
}

TEST(ReliableLinkTest, AbandonOutstandingRemembersKeysInSortedOrder) {
  // Regression: the duplicate-discard set is FIFO-bounded, so the order
  // abandoned keys enter it is observable once eviction kicks in. It must be
  // sorted-by-key, never unordered_map iteration order (hash-seed
  // dependent).
  comm::DuplexLink link(comm::TransportKind::kDefault, 0, 0, nullptr);
  core::RetryPolicy policy = fast_policy();
  core::ReliableLink rlink(0, &link, &policy);
  const std::vector<std::uint64_t> ids = {42, 3, 17, 99, 8};
  for (std::uint64_t id : ids) {
    comm::Message msg;
    msg.type = comm::MessageType::kProbe;
    msg.request_id = id;
    rlink.post(std::move(msg));
  }
  rlink.abandon_outstanding();
  const auto& remembered = rlink.recent_keys_for_testing();
  ASSERT_EQ(remembered.size(), ids.size());
  EXPECT_TRUE(std::is_sorted(remembered.begin(), remembered.end()));
}

TEST(ReliableLinkTest, WorkerReplaysCachedReplyOnDuplicate) {
  comm::DuplexLink link(comm::TransportKind::kDefault, 0, 0, nullptr);
  core::ExpertWorker worker(spec(), &link, {{0, 0}});
  worker.start();
  comm::Message fwd;
  fwd.type = comm::MessageType::kExpertForward;
  fwd.request_id = 1;
  fwd.layer = 0;
  fwd.expert = 0;
  fwd.payload = Tensor::ones({2, 8});
  fwd.wire_bits = 32;
  comm::Message dup = fwd;
  link.to_worker.send(std::move(fwd));
  link.to_worker.send(std::move(dup));
  auto r1 = link.to_master.receive();
  auto r2 = link.to_master.receive();
  ASSERT_TRUE(r1.has_value() && r2.has_value());
  ASSERT_EQ(r1->payload.size(), r2->payload.size());
  for (std::size_t i = 0; i < r1->payload.size(); ++i) {
    EXPECT_EQ(r1->payload[i], r2->payload[i]);  // replayed, not recomputed
  }
  link.to_worker.close();
  worker.join();
  EXPECT_EQ(worker.requests_served(), 1u);
  EXPECT_EQ(worker.duplicates_replayed(), 1u);
}

// --- master-level detection, respawn, standby --------------------------------

TEST(FaultRecovery, ProbeDetectsCrashAndRespawnRestores) {
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  core::MasterProcess master(topology, spec(), one_layer_placement(4, 5), 1,
                             4);
  master.set_retry_policy(fast_policy());
  master.snapshot_experts();
  EXPECT_EQ(master.snapshots_held(), 4u);
  EXPECT_TRUE(master.probe_worker(2));

  // The next message to worker 2 becomes a poison pill: abrupt death.
  comm::FaultPlan plan;
  plan.rules.push_back(
      {2, comm::LinkDir::kToWorker, 0, comm::FaultKind::kCrashWorker, 0.0});
  comm::FaultInjector injector(plan);
  master.attach_fault_injector(&injector);

  EXPECT_FALSE(master.probe_worker(2));
  EXPECT_EQ(master.recover_step().respawned, 1u);
  EXPECT_EQ(master.workers_recovered(), 1u);
  EXPECT_GT(master.recovery_bytes(), 0u);
  EXPECT_TRUE(master.probe_worker(2));
  // The respawned worker serves its experts again.
  Tensor state = master.query_expert_state(0, 2);
  EXPECT_GT(state.size(), 0u);
  master.shutdown();
}

TEST(FaultRecovery, StandbyReplicaServesRecoveryBitExactly) {
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  core::MasterProcess master(topology, spec(), one_layer_placement(4, 5), 1,
                             4);
  master.set_retry_policy(fast_policy());
  // Worker 4 hosts no primaries; park the standby of (0, 0) there.
  master.add_standby_replica(0, 0, 4);
  const Tensor before = master.query_expert_state(0, 0);

  comm::FaultPlan plan;
  plan.rules.push_back(
      {0, comm::LinkDir::kToWorker, 0, comm::FaultKind::kCrashWorker, 0.0});
  comm::FaultInjector injector(plan);
  master.attach_fault_injector(&injector);
  EXPECT_FALSE(master.probe_worker(0));
  master.recover_step();
  EXPECT_EQ(master.workers_recovered(), 1u);

  const Tensor after = master.query_expert_state(0, 0);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i], before[i]);  // adapter state survived the crash
  }
  master.shutdown();
}

TEST(FaultRecovery, ShutdownRobustToAlreadyDeadWorkers) {
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  core::MasterProcess master(topology, spec(), one_layer_placement(4, 5), 1,
                             4);
  master.set_retry_policy(fast_policy());
  comm::FaultPlan plan;
  plan.rules.push_back(
      {1, comm::LinkDir::kToWorker, 0, comm::FaultKind::kCrashWorker, 0.0});
  plan.rules.push_back(
      {3, comm::LinkDir::kToWorker, 0, comm::FaultKind::kSever, 0.0});
  comm::FaultInjector injector(plan);
  master.attach_fault_injector(&injector);
  EXPECT_FALSE(master.probe_worker(1));  // crashed
  EXPECT_FALSE(master.probe_worker(3));  // link severed
  // Two workers are gone and were never respawned; shutdown must neither
  // hang nor double-join.
  master.shutdown();
  master.shutdown();
  SUCCEED();
}

// --- end-to-end recovery: one test per fault kind ---------------------------

core::VelaSystemConfig sys_config() {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 3;
  cfg.wire_bits = 32;
  cfg.clock.compute_seconds = 0.5;
  return cfg;
}

core::FaultToleranceConfig fast_ft() {
  core::FaultToleranceConfig ft;
  ft.retry = fast_policy();
  ft.snapshot_interval = 1;  // snapshot every step → crash recovery lossless
  return ft;
}

struct FaultedRun {
  std::vector<core::StepReport> reports;
  core::FaultStats stats;
  std::size_t workers_recovered = 0;
};

// Runs `steps` identical fine-tuning steps; when `plan` is non-null the
// injector attaches after fault tolerance is enabled, so scripted message
// indices count from the first training message.
FaultedRun run_finetune(int steps, const comm::FaultPlan* plan,
                        const core::FaultToleranceConfig& ft) {
  auto cfg = sys_config();
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 17);
  // The injector must outlive the system (shutdown traffic still flows
  // through the attached channels).
  comm::FaultInjector injector(plan != nullptr ? *plan : comm::FaultPlan{});
  core::VelaSystem vela(cfg, &corpus);
  vela.enable_fault_tolerance(ft);
  if (plan != nullptr) vela.attach_fault_injector(&injector);
  auto batch = corpus.make_dataset(2, 6);
  FaultedRun run;
  for (int i = 0; i < steps; ++i) {
    run.reports.push_back(vela.train_step(batch));
  }
  run.stats = vela.master().fault_stats();
  run.workers_recovered = vela.master().workers_recovered();
  return run;
}

void expect_bit_exact(const FaultedRun& faulted, const FaultedRun& clean) {
  ASSERT_EQ(faulted.reports.size(), clean.reports.size());
  for (std::size_t i = 0; i < clean.reports.size(); ++i) {
    EXPECT_EQ(faulted.reports[i].loss, clean.reports[i].loss)
        << "loss diverged at step " << i;
  }
}

std::size_t total(const std::vector<core::StepReport>& reports,
                  std::size_t core::StepReport::*field) {
  std::size_t sum = 0;
  for (const auto& r : reports) sum += r.*field;
  return sum;
}

TEST(FaultRecovery, StepCompletesThroughDroppedMessages) {
  comm::FaultPlan plan;
  plan.rules.push_back(
      {0, comm::LinkDir::kToWorker, 1, comm::FaultKind::kDrop, 0.0});
  plan.rules.push_back(
      {1, comm::LinkDir::kToMaster, 0, comm::FaultKind::kDrop, 0.0});
  plan.rules.push_back(
      {2, comm::LinkDir::kToWorker, 3, comm::FaultKind::kDrop, 0.0});
  FaultedRun faulted = run_finetune(3, &plan, fast_ft());
  FaultedRun clean = run_finetune(3, nullptr, fast_ft());

  expect_bit_exact(faulted, clean);  // retransmission is lossless
  EXPECT_EQ(total(faulted.reports, &core::StepReport::faults_injected), 3u);
  EXPECT_GE(faulted.stats.retransmissions, 3u);
  EXPECT_EQ(total(faulted.reports, &core::StepReport::retries), 0u);
}

TEST(FaultRecovery, DelayFaultChargedToStepTime) {
  comm::FaultPlan plan;
  plan.rules.push_back(
      {1, comm::LinkDir::kToWorker, 0, comm::FaultKind::kDelay, 0.25});
  FaultedRun faulted = run_finetune(2, &plan, fast_ft());
  FaultedRun clean = run_finetune(2, nullptr, fast_ft());

  expect_bit_exact(faulted, clean);  // delays reorder nothing here
  EXPECT_DOUBLE_EQ(faulted.reports[0].injected_delay_seconds, 0.25);
  EXPECT_NEAR(faulted.reports[0].step_seconds,
              clean.reports[0].step_seconds + 0.25, 1e-9);
  EXPECT_NEAR(faulted.reports[1].step_seconds, clean.reports[1].step_seconds,
              1e-9);
}

TEST(FaultRecovery, StepCompletesThroughDuplicatedMessages) {
  comm::FaultPlan plan;
  plan.rules.push_back(
      {0, comm::LinkDir::kToMaster, 0, comm::FaultKind::kDuplicate, 0.0});
  plan.rules.push_back(
      {2, comm::LinkDir::kToWorker, 2, comm::FaultKind::kDuplicate, 0.0});
  FaultedRun faulted = run_finetune(3, &plan, fast_ft());
  FaultedRun clean = run_finetune(3, nullptr, fast_ft());

  expect_bit_exact(faulted, clean);  // dedupe is lossless
  EXPECT_EQ(total(faulted.reports, &core::StepReport::faults_injected), 2u);
  EXPECT_EQ(total(faulted.reports, &core::StepReport::retries), 0u);
}

TEST(FaultRecovery, StepCompletesThroughCorruptedMessages) {
  comm::FaultPlan plan;
  plan.rules.push_back(
      {1, comm::LinkDir::kToWorker, 1, comm::FaultKind::kCorrupt, 0.0});
  plan.rules.push_back(
      {3, comm::LinkDir::kToMaster, 1, comm::FaultKind::kCorrupt, 0.0});
  FaultedRun faulted = run_finetune(3, &plan, fast_ft());
  FaultedRun clean = run_finetune(3, nullptr, fast_ft());

  // Corrupted copies are detected by checksum and dropped; clean
  // retransmissions carry the computation — bit-exact.
  expect_bit_exact(faulted, clean);
  EXPECT_EQ(total(faulted.reports, &core::StepReport::faults_injected), 2u);
  EXPECT_GE(faulted.stats.retransmissions, 2u);
}

TEST(FaultRecovery, RecoversFromSeveredLink) {
  comm::FaultPlan plan;
  plan.rules.push_back(
      {2, comm::LinkDir::kToWorker, 1, comm::FaultKind::kSever, 0.0});
  FaultedRun faulted = run_finetune(3, &plan, fast_ft());
  FaultedRun clean = run_finetune(3, nullptr, fast_ft());

  // The worker behind the severed link is respawned and the step retried
  // from the pre-step snapshot — lossless.
  expect_bit_exact(faulted, clean);
  EXPECT_EQ(faulted.workers_recovered, 1u);
  EXPECT_GE(total(faulted.reports, &core::StepReport::retries), 1u);
}

TEST(FaultRecovery, RecoversFromWorkerCrashMidStep) {
  comm::FaultPlan plan;
  plan.rules.push_back(
      {0, comm::LinkDir::kToWorker, 0, comm::FaultKind::kCrashWorker, 0.0});
  FaultedRun faulted = run_finetune(3, &plan, fast_ft());
  FaultedRun clean = run_finetune(3, nullptr, fast_ft());

  expect_bit_exact(faulted, clean);
  EXPECT_EQ(faulted.workers_recovered, 1u);
  EXPECT_EQ(total(faulted.reports, &core::StepReport::workers_recovered), 1u);
  EXPECT_GE(total(faulted.reports, &core::StepReport::retries), 1u);
  // Recovery traffic is measured: broken out in the report AND visible as
  // extra metered bytes relative to the clean run's same step.
  EXPECT_GT(faulted.reports[0].recovery_mb, 0.0);
  EXPECT_GT(faulted.reports[0].external_mb_per_node,
            clean.reports[0].external_mb_per_node);
}

TEST(FaultRecovery, FaultToleranceAloneChangesNoBytes) {
  // With the FT layer on but no injector and no periodic snapshots, every
  // step's byte count must equal the plain runtime's.
  core::FaultToleranceConfig no_snap = fast_ft();
  no_snap.snapshot_interval = 0;
  FaultedRun with_ft = run_finetune(3, nullptr, no_snap);

  auto cfg = sys_config();
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 17);
  core::VelaSystem plain(cfg, &corpus);
  auto batch = corpus.make_dataset(2, 6);
  for (int i = 0; i < 3; ++i) {
    const auto p = plain.train_step(batch);
    EXPECT_DOUBLE_EQ(p.external_mb_per_node,
                     with_ft.reports[i].external_mb_per_node);
    EXPECT_EQ(p.loss, with_ft.reports[i].loss);
    EXPECT_EQ(with_ft.reports[i].faults_injected, 0u);
    EXPECT_EQ(with_ft.reports[i].retries, 0u);
    EXPECT_DOUBLE_EQ(with_ft.reports[i].recovery_mb, 0.0);
  }
}

// --- the ISSUE acceptance scenario and the soak test -------------------------

TEST(FaultRecovery, TwentyStepRunSurvivesScriptedCrashAndNoise) {
  // Scripted plan: crash one worker and drop/corrupt six messages over a
  // 20-step fine-tune. All 20 steps must complete with finite loss, the
  // run must report nonzero retries and workers_recovered, recovery
  // traffic must be measured, and — every recovery path being lossless —
  // the final loss must match the fault-free run.
  comm::FaultPlan plan;
  plan.rules.push_back(
      {1, comm::LinkDir::kToWorker, 1, comm::FaultKind::kCrashWorker, 0.0});
  plan.rules.push_back(
      {0, comm::LinkDir::kToWorker, 4, comm::FaultKind::kDrop, 0.0});
  plan.rules.push_back(
      {2, comm::LinkDir::kToWorker, 7, comm::FaultKind::kCorrupt, 0.0});
  plan.rules.push_back(
      {3, comm::LinkDir::kToMaster, 3, comm::FaultKind::kDrop, 0.0});
  plan.rules.push_back(
      {0, comm::LinkDir::kToMaster, 9, comm::FaultKind::kCorrupt, 0.0});
  plan.rules.push_back(
      {2, comm::LinkDir::kToWorker, 15, comm::FaultKind::kDrop, 0.0});
  plan.rules.push_back(
      {3, comm::LinkDir::kToWorker, 11, comm::FaultKind::kCorrupt, 0.0});
  FaultedRun faulted = run_finetune(20, &plan, fast_ft());
  FaultedRun clean = run_finetune(20, nullptr, fast_ft());

  ASSERT_EQ(faulted.reports.size(), 20u);
  for (const auto& r : faulted.reports) {
    EXPECT_TRUE(std::isfinite(r.loss));
  }
  EXPECT_EQ(total(faulted.reports, &core::StepReport::faults_injected), 7u);
  EXPECT_GE(total(faulted.reports, &core::StepReport::retries), 1u);
  EXPECT_EQ(total(faulted.reports, &core::StepReport::workers_recovered), 1u);
  double recovery_mb = 0.0;
  for (const auto& r : faulted.reports) recovery_mb += r.recovery_mb;
  EXPECT_GT(recovery_mb, 0.0);
  expect_bit_exact(faulted, clean);
}

TEST(FaultRecovery, SoakFiftyStepsUnderContinuousFaults) {
  // Deterministic multi-fault soak: background drop/corrupt/duplicate/delay
  // noise on every lane plus two scripted worker crashes, 50 steps. The
  // system must finish every step with finite loss and still be learning.
  comm::FaultPlan plan;
  plan.drop_rate = 0.004;
  plan.corrupt_rate = 0.004;
  plan.duplicate_rate = 0.01;
  plan.delay_rate = 0.01;
  plan.delay_seconds = 0.05;
  plan.seed = 2024;
  plan.rules.push_back(
      {2, comm::LinkDir::kToWorker, 5, comm::FaultKind::kCrashWorker, 0.0});
  plan.rules.push_back(
      {0, comm::LinkDir::kToWorker, 150, comm::FaultKind::kCrashWorker, 0.0});
  core::FaultToleranceConfig ft = fast_ft();
  ft.snapshot_interval = 5;  // snapshots stay periodic, recovery may be stale
  FaultedRun run = run_finetune(50, &plan, ft);

  ASSERT_EQ(run.reports.size(), 50u);
  for (const auto& r : run.reports) {
    EXPECT_TRUE(std::isfinite(r.loss));
  }
  EXPECT_GE(total(run.reports, &core::StepReport::faults_injected), 10u);
  EXPECT_EQ(run.workers_recovered, 2u);
  // Still training: the tail is clearly below the head despite the noise.
  EXPECT_LT(run.reports.back().loss, run.reports.front().loss);
}

TEST(FaultRecovery, TwoHundredStepsMixedFaultsUnderParallelCompute) {
  // Stress the interaction of the two subsystems: a 4-lane compute pool
  // (parallel expert forwards/backwards and batched worker inboxes) under
  // continuous background faults plus three scripted worker crashes, for
  // 200 fine-tuning iterations. Retry/replay and batch-parallel execution
  // must compose: every step finishes with finite loss, every crashed
  // worker is recovered, and the model is still learning at the end.
  util::ThreadPool::set_global_threads(4);
  comm::FaultPlan plan;
  plan.drop_rate = 0.003;
  plan.corrupt_rate = 0.003;
  plan.duplicate_rate = 0.008;
  plan.delay_rate = 0.008;
  plan.delay_seconds = 0.02;
  plan.seed = 4096;
  plan.rules.push_back(
      {1, comm::LinkDir::kToWorker, 9, comm::FaultKind::kCrashWorker, 0.0});
  plan.rules.push_back(
      {3, comm::LinkDir::kToWorker, 200, comm::FaultKind::kCrashWorker, 0.0});
  plan.rules.push_back(
      {0, comm::LinkDir::kToWorker, 450, comm::FaultKind::kCrashWorker, 0.0});
  core::FaultToleranceConfig ft = fast_ft();
  ft.snapshot_interval = 10;
  FaultedRun run = run_finetune(200, &plan, ft);
  util::ThreadPool::set_global_threads(0);  // restore the environment default

  ASSERT_EQ(run.reports.size(), 200u);
  for (const auto& r : run.reports) {
    EXPECT_TRUE(std::isfinite(r.loss));
  }
  EXPECT_GE(total(run.reports, &core::StepReport::faults_injected), 20u);
  EXPECT_EQ(run.workers_recovered, 3u);
  EXPECT_LT(run.reports.back().loss, run.reports.front().loss);
}

}  // namespace
}  // namespace vela
