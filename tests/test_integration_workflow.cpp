// End-to-end workflow tests: the complete paper pipeline and cross-cutting
// system properties that only show up when everything runs together.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/step_simulator.h"
#include "core/vela_system.h"
#include "data/batch.h"
#include "ep/expert_parallel.h"
#include "moe/trace.h"
#include "placement/evaluator.h"
#include "placement/sequential.h"
#include "util/check.h"
#include "util/stats.h"

namespace vela {
namespace {

core::VelaSystemConfig small_config(std::uint64_t seed) {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = seed;
  cfg.wire_bits = 32;
  return cfg;
}

TEST(Workflow, FullPaperPipelineEndToEnd) {
  // profile → optimize → fine-tune → verify: loss falls AND traffic falls,
  // in one run, through the real distributed machinery.
  auto cfg = small_config(51);
  cfg.adamw.lr = 2e-3f;
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 52);
  core::VelaSystem vela(cfg, &corpus);
  const auto dataset = corpus.make_dataset(24, 10);
  data::BatchIterator batches(dataset, 4, 53);

  RunningStat seq_traffic, vela_traffic, losses;
  for (int i = 0; i < 6; ++i) {
    auto r = vela.train_step(batches.next());
    seq_traffic.add(r.external_mb_per_node);
    losses.add(r.loss);
  }
  vela.profile(dataset, 4);
  vela.optimize_placement(4.0 * 9.0);
  float last_loss = 0.0f;
  for (int i = 0; i < 6; ++i) {
    auto r = vela.train_step(batches.next());
    vela_traffic.add(r.external_mb_per_node);
    last_loss = r.loss;
  }
  EXPECT_LT(vela_traffic.mean(), seq_traffic.mean());
  EXPECT_LT(last_loss, losses.max());
  EXPECT_TRUE(std::isfinite(last_loss));
}

TEST(Workflow, TwoSystemsRunConcurrently) {
  // Distinct VelaSystem instances must be fully isolated: run two on
  // separate threads and check both converge on their own data.
  auto run_one = [](std::uint64_t seed, float* final_loss) {
    auto cfg = small_config(seed);
    cfg.adamw.lr = 2e-3f;
    data::SyntheticCorpus corpus(
        data::CorpusConfig::alpaca_like(cfg.model.vocab, 6), seed + 1);
    core::VelaSystem vela(cfg, &corpus);
    auto batch = corpus.make_dataset(3, 8);
    float loss = 0.0f;
    for (int i = 0; i < 6; ++i) loss = vela.train_step(batch).loss;
    *final_loss = loss;
  };
  float loss_a = 0.0f, loss_b = 0.0f;
  std::thread ta(run_one, 60, &loss_a);
  std::thread tb(run_one, 61, &loss_b);
  ta.join();
  tb.join();
  EXPECT_TRUE(std::isfinite(loss_a));
  EXPECT_TRUE(std::isfinite(loss_b));
}

TEST(Workflow, TraceDrivenPlacementPipeline) {
  // Record routing from a live fine-tuning run, aggregate the trace into P,
  // and solve the placement offline — the "production traces" path.
  auto cfg = small_config(70);
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 71);
  core::VelaSystem vela(cfg, &corpus);
  auto batch = corpus.make_dataset(4, 8);

  moe::RoutingTrace trace;
  for (int i = 0; i < 5; ++i) {
    vela.train_step(batch);
    trace.push_back(vela.model().last_plans());
  }
  const std::string path =
      std::string(::testing::TempDir()) + "/workflow.trace";
  moe::save_routing_trace(path, trace);

  // Offline: load, build the problem, place, serialize the placement.
  const auto loaded = moe::load_routing_trace(path);
  const Tensor p = moe::trace_probability(loaded);
  const auto problem = core::build_placement_problem(
      p, cfg.model, vela.topology(), 4.0 * 7.0, 1.34);
  placement::LocalityAwarePlacement strategy;
  const auto offline = strategy.place(problem);
  const std::string wire = offline.serialize();
  const auto restored = placement::Placement::deserialize(wire);

  // Online: install the offline placement and keep training.
  vela.set_placement(restored);
  auto report = vela.train_step(batch);
  EXPECT_TRUE(std::isfinite(report.loss));
  EXPECT_LE(placement::expected_comm_seconds(problem, restored),
            placement::expected_comm_seconds(
                problem, placement::SequentialPlacement{}.place(problem)) +
                1e-12);
}

TEST(Workflow, PlacementSerializationRoundTrip) {
  placement::Placement p(2, 3);
  for (std::size_t l = 0; l < 2; ++l) {
    for (std::size_t e = 0; e < 3; ++e) p.assign(l, e, (l + e) % 4);
  }
  auto restored = placement::Placement::deserialize(p.serialize());
  EXPECT_EQ(restored.to_string(), p.to_string());
  EXPECT_THROW(placement::Placement::deserialize("2 3\n0 1"), CheckError);
  EXPECT_THROW(placement::Placement::deserialize("garbage"), CheckError);
  placement::Placement partial(1, 2);
  partial.assign(0, 0, 1);
  EXPECT_THROW(partial.serialize(), CheckError);
}

TEST(Workflow, EpAndVelaAccountSameRoutingConsistently) {
  // With every expert forced onto the master-node worker, VELA's external
  // traffic is zero while EP — input-sharded across all six devices — still
  // pays cross-node dispatches: the architectural difference in one assert.
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  moe::RoutePlan plan;
  plan.num_tokens = 12;
  plan.num_experts = 4;
  plan.top_k = 1;
  plan.expert_tokens.assign(4, {});
  for (std::size_t t = 0; t < 12; ++t) {
    plan.expert_tokens[t % 4].push_back(t);
  }
  placement::Placement local(1, 4);
  for (std::size_t e = 0; e < 4; ++e) local.assign(0, e, 0);

  core::VelaTrafficModel vela_model(&topology, {128, 0});
  ep::ExpertParallelModel ep_model(&topology, {128, 0, 0});
  EXPECT_EQ(vela_model.external_bytes(
                vela_model.account_step({plan}, local)),
            0u);
  EXPECT_GT(ep_model.external_bytes(ep_model.account_step({plan})), 0u);
}

}  // namespace
}  // namespace vela
