#include <gtest/gtest.h>

#include <cmath>

#include "moe/gate.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vela {
namespace {

TEST(LogSumExp, MatchesDirectComputation) {
  Rng rng(1);
  ag::Variable x = ag::Variable::constant(ops::randn({4, 6}, rng));
  Tensor lse = ag::logsumexp_rows(x).value();
  for (std::size_t i = 0; i < 4; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < 6; ++j) total += std::exp(x.value().at(i, j));
    EXPECT_NEAR(lse.at(i), std::log(total), 1e-5);
  }
}

TEST(LogSumExp, StableForLargeLogits) {
  ag::Variable x =
      ag::Variable::constant(Tensor::from_rows({{500.0f, 499.0f, 100.0f}}));
  Tensor lse = ag::logsumexp_rows(x).value();
  EXPECT_TRUE(lse.all_finite());
  EXPECT_NEAR(lse.at(0), 500.0f + std::log(1.0f + std::exp(-1.0f)), 1e-3);
}

TEST(LogSumExp, Gradcheck) {
  Rng rng(2);
  ag::Variable x = ag::Variable::leaf(ops::randn({3, 5}, rng), true);
  Rng wr(3);
  ag::Variable w = ag::Variable::constant(ops::randn({3}, wr));
  auto loss = [&] { return ag::sum(ag::mul(ag::logsumexp_rows(x), w)); };
  EXPECT_LT(ag::gradcheck_max_abs_err(x, loss, 1e-2f), 1e-2f);
}

TEST(RouterZLoss, ZeroLogitsGiveLogESquared) {
  Rng rng(4);
  moe::TopKGate gate("g", 8, 4, 2, rng);
  gate.weight().mutable_value().fill(0.0f);
  Rng xr(5);
  auto out = gate.forward(ag::Variable::constant(ops::randn({8, 8}, xr)));
  const float expected = std::log(4.0f) * std::log(4.0f);
  EXPECT_NEAR(moe::router_z_loss(out).value()[0], expected, 1e-4f);
}

TEST(RouterZLoss, GrowsWithLogitMagnitude) {
  Rng rng(6);
  moe::TopKGate small("g", 8, 4, 2, rng);
  Rng rng2(6);
  moe::TopKGate large("g", 8, 4, 2, rng2);
  large.weight().mutable_value().scale_(10.0f);
  Rng xr(7);
  Tensor x = ops::randn({16, 8}, xr);
  const float z_small =
      moe::router_z_loss(small.forward(ag::Variable::constant(x))).value()[0];
  const float z_large =
      moe::router_z_loss(large.forward(ag::Variable::constant(x))).value()[0];
  EXPECT_GT(z_large, z_small);
}

TEST(RouterZLoss, TrainingShrinksLogits) {
  Rng rng(8);
  moe::TopKGate gate("g", 8, 4, 2, rng, /*trainable=*/true);
  gate.weight().mutable_value().scale_(8.0f);  // oversized router weights
  Rng xr(9);
  Tensor x = ops::randn({32, 8}, xr);

  const float initial_norm = ops::l2_norm(gate.weight().value());
  const float initial_z =
      moe::router_z_loss(gate.forward(ag::Variable::constant(x))).value()[0];
  nn::SGD sgd(gate.trainable_parameters(), 0.05f);
  for (int step = 0; step < 100; ++step) {
    sgd.zero_grad();
    ag::backward(
        moe::router_z_loss(gate.forward(ag::Variable::constant(x))));
    sgd.step();
  }
  const float final_z =
      moe::router_z_loss(gate.forward(ag::Variable::constant(x))).value()[0];
  EXPECT_LT(final_z, initial_z * 0.8f);
  EXPECT_LT(ops::l2_norm(gate.weight().value()), initial_norm);
}

}  // namespace
}  // namespace vela
