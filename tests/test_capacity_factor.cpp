#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "moe/gate.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace vela {
namespace {

// A gate whose weights force every token towards expert 0 (then 1, 2, ...).
std::unique_ptr<moe::TopKGate> biased_gate(Rng& rng, std::size_t experts,
                                           bool strong = true) {
  auto gate = std::make_unique<moe::TopKGate>("g", 8, experts, 2, rng);
  Tensor& w = gate->weight().mutable_value();
  w.fill(0.0f);
  for (std::size_t e = 0; e < experts; ++e) {
    for (std::size_t h = 0; h < 8; ++h) {
      w.at(e, h) = (strong ? 2.0f : 0.2f) *
                   static_cast<float>(experts - e);  // 0 hottest
    }
  }
  return gate;
}

TEST(CapacityFactor, OffByDefaultAllowsFullConcentration) {
  Rng rng(1);
  auto gate = biased_gate(rng, 4);
  Rng xr(2);
  auto out = gate->forward(
      ag::Variable::constant(ops::rand_uniform({12, 8}, xr, 0.5f, 1.0f)));
  // Everyone picks experts 0 and 1.
  EXPECT_EQ(out.plan.expert_tokens[0].size(), 12u);
  EXPECT_EQ(out.plan.expert_tokens[1].size(), 12u);
}

TEST(CapacityFactor, CapsGroupSizesAndKeepsPlanValid) {
  Rng rng(3);
  auto gate = biased_gate(rng, 4);
  gate->set_capacity_factor(1.0);  // each expert ≤ ⌈12·2/4⌉ = 6 slots
  Rng xr(4);
  auto out = gate->forward(
      ag::Variable::constant(ops::rand_uniform({12, 8}, xr, 0.5f, 1.0f)));
  EXPECT_NO_THROW(out.plan.validate());
  for (const auto& group : out.plan.expert_tokens) {
    EXPECT_LE(group.size(), 6u + 2u);  // soft cap: small tail overflow only
  }
  // Overflow spilled into the previously idle experts.
  EXPECT_GT(out.plan.expert_tokens[2].size(), 0u);
}

TEST(CapacityFactor, LooseFactorChangesNothing) {
  Rng rng(5);
  auto gate_off = biased_gate(rng, 4);
  Rng rng2(5);
  auto gate_loose = biased_gate(rng2, 4);
  gate_loose->set_capacity_factor(4.0);  // cap = 24 ≥ any group
  Rng xr(6);
  Tensor x = ops::rand_uniform({10, 8}, xr, 0.5f, 1.0f);
  auto a = gate_off->forward(ag::Variable::constant(x));
  auto b = gate_loose->forward(ag::Variable::constant(x));
  EXPECT_EQ(a.plan.expert_tokens, b.plan.expert_tokens);
}

TEST(CapacityFactor, CombineWeightsStillNormalized) {
  Rng rng(7);
  auto gate = biased_gate(rng, 4);
  gate->set_capacity_factor(1.0);
  Rng xr(8);
  auto out = gate->forward(
      ag::Variable::constant(ops::rand_uniform({8, 8}, xr, 0.5f, 1.0f)));
  std::vector<float> token_sum(8, 0.0f);
  std::size_t idx = 0;
  for (std::size_t e = 0; e < 4; ++e) {
    for (std::size_t t : out.plan.expert_tokens[e]) {
      token_sum[t] += out.combine_weights.value()[idx++];
    }
  }
  for (float s : token_sum) EXPECT_NEAR(s, 1.0f, 1e-5f);
}

TEST(CapacityFactor, RejectsFactorBelowOne) {
  Rng rng(9);
  moe::TopKGate gate("g", 8, 4, 2, rng);
  EXPECT_THROW(gate.set_capacity_factor(0.5), CheckError);
  EXPECT_THROW(gate.set_capacity_factor(-1.0), CheckError);
  EXPECT_NO_THROW(gate.set_capacity_factor(0.0));
  EXPECT_NO_THROW(gate.set_capacity_factor(1.25));
}

// Property sweep: for any factor ≥ 1 every token still gets exactly k
// experts and no group exceeds the cap.
class CapacitySweep : public ::testing::TestWithParam<double> {};

TEST_P(CapacitySweep, InvariantsHold) {
  Rng rng(11);
  auto gate = biased_gate(rng, 6, /*strong=*/false);
  gate->set_capacity_factor(GetParam());
  Rng xr(12);
  auto out =
      gate->forward(ag::Variable::constant(ops::randn({30, 8}, xr)));
  EXPECT_NO_THROW(out.plan.validate());
  const std::size_t cap = static_cast<std::size_t>(
      std::ceil(GetParam() * 30.0 * 2.0 / 6.0));
  for (const auto& group : out.plan.expert_tokens) {
    EXPECT_LE(group.size(), cap + 2u);  // soft cap
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, CapacitySweep,
                         ::testing::Values(1.0, 1.1, 1.5, 2.0, 3.0));

}  // namespace
}  // namespace vela
