// Golden-file and schema tests for the --processes bench CSV emitters
// (`ctest -L multiproc`, satellite of ISSUE 7).
//
// The bench binaries' --processes mode and this test share the emitters in
// bench/proc_csv.h, so the measured multi-process CSV schema cannot drift
// silently. The N=16 series is pinned byte for byte under tests/golden/
// (regenerate deliberately with VELA_REGEN_GOLDEN=1 and review the diff);
// the N=32 and N=64 sweeps assert structural invariants only — worker ids
// monotone per step, node = worker + 1 (the scenario's one-worker-per-node
// shape), and per-row byte conservation: the per-worker lane rows of a step
// partition the TrafficMeter's external ledger exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "proc_csv.h"

namespace vela {
namespace {

#ifndef VELA_GOLDEN_DIR
#error "VELA_GOLDEN_DIR must be defined by the build"
#endif

std::string node_bin() {
  if (const char* env = std::getenv("VELA_NODE_BIN")) return env;
#ifdef VELA_NODE_BIN
  return VELA_NODE_BIN;
#else
  ADD_FAILURE() << "VELA_NODE_BIN is neither compiled in nor in the env";
  return "";
#endif
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream ss(text);
  while (std::getline(ss, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, sep)) cells.push_back(cell);
  return cells;
}

std::string join(const std::vector<std::string>& cells, char sep) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out.push_back(sep);
    out += cells[i];
  }
  return out;
}

void maybe_regenerate(const std::string& golden_path,
                      const std::string& produced) {
  if (std::getenv("VELA_REGEN_GOLDEN") == nullptr) return;
  std::ofstream out(golden_path, std::ios::binary);
  out << produced;
}

struct ProcCsvPair {
  std::string fig5;
  std::string fig6;
};

// Assembles an N-worker deployment, runs the scenario fine-tune through the
// shared emitters, and returns both CSVs' contents.
ProcCsvPair emit_proc_csvs(std::size_t workers, const std::string& tag) {
  core::Scenario scenario;
  scenario.workers = workers;
  core::MultiProcOptions opts;
  opts.node_binary = node_bin();
  opts.log_dir = "mproc_logs_" + tag;
  std::filesystem::create_directories(opts.log_dir);

  const std::string fig5_path = "proc_fig5_" + tag + ".csv";
  const std::string fig6_path = "proc_fig6_" + tag + ".csv";
  core::MultiProcCluster cluster(scenario, opts);
  {
    CsvWriter fig5(fig5_path, bench::fig5_proc_columns());
    CsvWriter fig6(fig6_path, bench::fig6_proc_columns());
    bench::emit_proc_figs(cluster, &fig5, &fig6);
  }  // writers flush on destruction
  EXPECT_EQ(cluster.shutdown_and_wait(), 0)
      << "a vela_node process exited uncleanly at N=" << workers;
  return {slurp(fig5_path), slurp(fig6_path)};
}

// Structural invariants of a fig5 proc CSV, independent of golden files.
void check_fig5_schema(const std::string& text, std::size_t workers,
                       std::size_t steps) {
  const auto rows = lines_of(text);
  ASSERT_EQ(rows.size(), 1 + steps * workers);
  EXPECT_EQ(rows[0], join(bench::fig5_proc_columns(), ','));
  for (std::size_t step = 0; step < steps; ++step) {
    unsigned long long row_sum = 0, step_external = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      const auto cells = split(rows[1 + step * workers + w], ',');
      ASSERT_EQ(cells.size(), bench::fig5_proc_columns().size());
      EXPECT_EQ(cells[0], std::to_string(workers));
      EXPECT_EQ(cells[1], std::to_string(step));
      // Monotone worker ids, 0..N-1 within every step …
      EXPECT_EQ(cells[2], std::to_string(w));
      // … each alone on its own node, one past the master's node 0.
      EXPECT_EQ(cells[3], std::to_string(w + 1));
      const auto to_worker = std::stoull(cells[4]);
      const auto to_master = std::stoull(cells[5]);
      const auto row_total = std::stoull(cells[6]);
      EXPECT_EQ(row_total, to_worker + to_master);
      row_sum += row_total;
      step_external = std::stoull(cells[7]);
    }
    // Per-row byte conservation: the worker rows of a step partition the
    // meter's external-byte ledger with nothing lost or double-counted.
    EXPECT_EQ(row_sum, step_external) << "step " << step;
    EXPECT_GT(step_external, 0u) << "step " << step;
  }
}

void check_fig6_schema(const std::string& text, std::size_t workers,
                       std::size_t steps) {
  const auto rows = lines_of(text);
  ASSERT_EQ(rows.size(), 1 + steps);
  EXPECT_EQ(rows[0], join(bench::fig6_proc_columns(), ','));
  for (std::size_t step = 0; step < steps; ++step) {
    const auto cells = split(rows[1 + step], ',');
    ASSERT_EQ(cells.size(), bench::fig6_proc_columns().size());
    EXPECT_EQ(cells[0], std::to_string(workers));
    EXPECT_EQ(cells[1], std::to_string(step));
    EXPECT_GT(std::stod(cells[2]), 0.0);   // loss
    EXPECT_GE(std::stod(cells[3]), 0.0);   // external MB/node
    EXPECT_GE(std::stod(cells[5]), std::stod(cells[4]));  // step_s ≥ comm_s
  }
}

TEST(MultiProcGolden, Fig5And6ProcCsvsMatchGoldenAtSixteenWorkers) {
  const ProcCsvPair produced = emit_proc_csvs(16, "golden16");
  const std::string fig5_golden =
      std::string(VELA_GOLDEN_DIR) + "/fig5_traffic_proc.csv";
  const std::string fig6_golden =
      std::string(VELA_GOLDEN_DIR) + "/fig6_steptime_proc.csv";
  maybe_regenerate(fig5_golden, produced.fig5);
  maybe_regenerate(fig6_golden, produced.fig6);
  EXPECT_EQ(produced.fig5, slurp(fig5_golden))
      << "fig5 proc CSV drifted from tests/golden/fig5_traffic_proc.csv; if "
         "intentional, regenerate with VELA_REGEN_GOLDEN=1 and review";
  EXPECT_EQ(produced.fig6, slurp(fig6_golden))
      << "fig6 proc CSV drifted from tests/golden/fig6_steptime_proc.csv; if "
         "intentional, regenerate with VELA_REGEN_GOLDEN=1 and review";
  check_fig5_schema(produced.fig5, 16, core::Scenario{}.steps);
  check_fig6_schema(produced.fig6, 16, core::Scenario{}.steps);
}

TEST(MultiProcGolden, SchemaInvariantsHoldAtThirtyTwoWorkers) {
  const ProcCsvPair produced = emit_proc_csvs(32, "schema32");
  check_fig5_schema(produced.fig5, 32, core::Scenario{}.steps);
  check_fig6_schema(produced.fig6, 32, core::Scenario{}.steps);
}

TEST(MultiProcGolden, SchemaInvariantsHoldAtSixtyFourWorkers) {
  const ProcCsvPair produced = emit_proc_csvs(64, "schema64");
  check_fig5_schema(produced.fig5, 64, core::Scenario{}.steps);
  check_fig6_schema(produced.fig6, 64, core::Scenario{}.steps);
}

}  // namespace
}  // namespace vela
