// Property tests for the simplex solver on randomly generated LPs: every
// reported optimum must be primal-feasible, and must weakly dominate any
// feasible point we can construct independently.
#include <gtest/gtest.h>

#include <cmath>

#include "placement/lp/simplex.h"
#include "util/rng.h"

namespace vela {
namespace {

using lp::LinearProgram;
using lp::LpStatus;
using lp::SparseRow;

// Random LP constructed AROUND a known feasible point x*, so feasibility is
// guaranteed: each ≤ row gets rhs = a·x* + slack, each equality row gets
// rhs = a·x* exactly.
struct RandomLp {
  LinearProgram prog;
  std::vector<double> feasible_point;
};

RandomLp make_random_lp(std::uint64_t seed, std::size_t vars,
                        std::size_t leq_rows, std::size_t eq_rows) {
  Rng rng(seed);
  RandomLp out;
  out.prog.num_vars = vars;
  out.feasible_point.resize(vars);
  for (auto& x : out.feasible_point) x = rng.uniform(0.0, 3.0);
  out.prog.objective.resize(vars);
  for (auto& c : out.prog.objective) c = rng.uniform(-1.0, 2.0);

  const auto dot_row = [&](const SparseRow& row) {
    double v = 0.0;
    for (const auto& [idx, coef] : row.coeffs) {
      v += coef * out.feasible_point[idx];
    }
    return v;
  };

  for (std::size_t r = 0; r < leq_rows; ++r) {
    SparseRow row;
    for (std::size_t v = 0; v < vars; ++v) {
      if (rng.uniform() < 0.6) {
        row.coeffs.emplace_back(v, rng.uniform(-2.0, 2.0));
      }
    }
    if (row.coeffs.empty()) row.coeffs.emplace_back(0, 1.0);
    row.rhs = dot_row(row) + rng.uniform(0.0, 2.0);
    out.prog.add_leq(std::move(row));
  }
  for (std::size_t r = 0; r < eq_rows; ++r) {
    SparseRow row;
    for (std::size_t v = 0; v < vars; ++v) {
      if (rng.uniform() < 0.5) {
        row.coeffs.emplace_back(v, rng.uniform(-1.5, 1.5));
      }
    }
    if (row.coeffs.empty()) row.coeffs.emplace_back(r % vars, 1.0);
    row.rhs = dot_row(row);
    out.prog.add_equality(std::move(row));
  }
  // Bound the feasible region so the LP cannot be unbounded: Σ x ≤ big.
  SparseRow cap;
  for (std::size_t v = 0; v < vars; ++v) cap.coeffs.emplace_back(v, 1.0);
  cap.rhs = 10.0 * double(vars);
  out.prog.add_leq(std::move(cap));
  return out;
}

bool satisfies(const LinearProgram& prog, const std::vector<double>& x,
               double tol = 1e-6) {
  for (double v : x) {
    if (v < -tol) return false;
  }
  for (const auto& row : prog.equalities) {
    double lhs = 0.0;
    for (const auto& [idx, coef] : row.coeffs) lhs += coef * x[idx];
    if (std::abs(lhs - row.rhs) > tol) return false;
  }
  for (const auto& row : prog.leq_rows) {
    double lhs = 0.0;
    for (const auto& [idx, coef] : row.coeffs) lhs += coef * x[idx];
    if (lhs > row.rhs + tol) return false;
  }
  return true;
}

double objective_of(const LinearProgram& prog, const std::vector<double>& x) {
  double v = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) v += prog.objective[i] * x[i];
  return v;
}

class RandomLpSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLpSweep, OptimumIsFeasibleAndDominatesKnownPoint) {
  auto instance = make_random_lp(GetParam(), 8, 6, 2);
  ASSERT_TRUE(satisfies(instance.prog, instance.feasible_point))
      << "construction bug: seed point infeasible";
  auto sol = lp::solve(instance.prog);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_TRUE(satisfies(instance.prog, sol.x));
  // Minimization: the optimum is at most the constructed point's value.
  EXPECT_LE(sol.objective,
            objective_of(instance.prog, instance.feasible_point) + 1e-6);
  // Reported objective is consistent with the reported x.
  EXPECT_NEAR(sol.objective, objective_of(instance.prog, sol.x), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u, 11u, 12u));

TEST(RandomLpLarge, MediumInstanceStaysFeasible) {
  auto instance = make_random_lp(99, 40, 30, 8);
  auto sol = lp::solve(instance.prog);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_TRUE(satisfies(instance.prog, sol.x, 1e-5));
  EXPECT_LE(sol.objective,
            objective_of(instance.prog, instance.feasible_point) + 1e-5);
}

TEST(RandomLpSweepNegatives, PerturbedEqualityBecomesInfeasible) {
  // Push an equality away from every feasible direction by also bounding the
  // variables it involves: x0 = -1 with x ≥ 0 is infeasible.
  LinearProgram prog;
  prog.num_vars = 3;
  prog.objective = {1.0, 1.0, 1.0};
  prog.add_equality({{{0, 1.0}}, -1.0});
  EXPECT_EQ(lp::solve(prog).status, LpStatus::kInfeasible);
}

}  // namespace
}  // namespace vela
