#include "placement/replication.h"

#include <gtest/gtest.h>

#include "placement/evaluator.h"
#include "placement/sequential.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace vela {
namespace {

placement::PlacementProblem make_problem(std::uint64_t seed = 1,
                                         double hot = 1.2f) {
  placement::PlacementProblem p;
  p.num_workers = 5;
  p.num_layers = 3;
  p.num_experts = 5;
  p.probability = Tensor({3, 5});
  Rng rng(seed);
  for (std::size_t l = 0; l < 3; ++l) {
    p.probability.at(l, 0) = static_cast<float>(hot);  // hot expert 0
    for (std::size_t e = 1; e < 5; ++e) {
      p.probability.at(l, e) =
          static_cast<float>((2.0 - hot) / 4.0 * rng.uniform(0.8, 1.2));
    }
  }
  for (std::size_t w = 0; w < 5; ++w) {
    p.bandwidth.push_back(w == 0 ? 18.3e9 : 1.17e9);
    p.worker_node.push_back(w == 0 ? 0 : 1 + (w - 1) / 2);
  }
  p.master_node = 0;
  p.capacity.assign(5, 6);
  p.tokens_per_step = 1024.0;
  p.bytes_per_token = 4096.0;
  p.validate();
  return p;
}

placement::Placement sequential(const placement::PlacementProblem& p) {
  placement::SequentialPlacement strategy;
  return strategy.place(p);
}

TEST(ReplicatedPlacement, StartsAsBase) {
  auto problem = make_problem();
  auto base = sequential(problem);
  placement::ReplicatedPlacement rp(base);
  EXPECT_EQ(rp.total_replicas(), 15u);
  for (std::size_t l = 0; l < 3; ++l) {
    for (std::size_t e = 0; e < 5; ++e) {
      ASSERT_EQ(rp.replicas(l, e).size(), 1u);
      EXPECT_EQ(rp.replicas(l, e)[0], base.worker_of(l, e));
    }
  }
  EXPECT_TRUE(rp.feasible(problem));
}

TEST(ReplicatedPlacement, AddReplicaRules) {
  auto problem = make_problem();
  placement::ReplicatedPlacement rp(sequential(problem));
  rp.add_replica(0, 0, 3);
  EXPECT_EQ(rp.replicas(0, 0).size(), 2u);
  EXPECT_EQ(rp.total_replicas(), 16u);
  // Duplicate replica on the same worker is rejected.
  EXPECT_THROW(rp.add_replica(0, 0, 3), CheckError);
  EXPECT_THROW(rp.add_replica(0, 0, 0), CheckError);  // base replica
}

TEST(ReplicatedPlacement, SplitFractionsFollowBandwidth) {
  auto problem = make_problem();
  placement::ReplicatedPlacement rp(sequential(problem));
  // Expert (0,1) sits on worker 1 (1.17 GB/s); replicate to worker 0 (18.3).
  rp.add_replica(0, 1, 0);
  auto fractions = rp.split_fractions(0, 1, problem);
  ASSERT_EQ(fractions.size(), 2u);
  EXPECT_NEAR(fractions[0] + fractions[1], 1.0, 1e-12);
  // Replicas are stored ascending: worker 0 first, and it takes the larger
  // share 18.3/(18.3+1.17).
  EXPECT_NEAR(fractions[0], 18.3 / 19.47, 1e-9);
}

TEST(ReplicatedPlacement, UnreplicatedMatchesBaseEvaluator) {
  auto problem = make_problem();
  auto base = sequential(problem);
  placement::ReplicatedPlacement rp(base);
  EXPECT_NEAR(placement::expected_comm_seconds_replicated(problem, rp),
              placement::expected_comm_seconds(problem, base), 1e-15);
  EXPECT_NEAR(placement::expected_external_bytes_replicated(problem, rp),
              placement::expected_external_bytes(problem, base), 1e-6);
}

TEST(ReplicatedPlacement, ReplicationNeverHurtsCommTime) {
  auto problem = make_problem();
  auto base = sequential(problem);
  const double base_time = placement::expected_comm_seconds(problem, base);
  for (std::size_t budget : {1u, 3u, 6u, 10u}) {
    auto rp = placement::greedy_replication(problem, base, budget);
    EXPECT_TRUE(rp.feasible(problem));
    EXPECT_LE(placement::expected_comm_seconds_replicated(problem, rp),
              base_time + 1e-12)
        << "budget " << budget;
  }
}

TEST(ReplicatedPlacement, GreedyImprovesMonotonicallyWithBudget) {
  auto problem = make_problem(3, 1.4);
  auto base = sequential(problem);
  double prev = placement::expected_comm_seconds(problem, base);
  for (std::size_t budget = 1; budget <= 8; ++budget) {
    auto rp = placement::greedy_replication(problem, base, budget);
    const double t = placement::expected_comm_seconds_replicated(problem, rp);
    EXPECT_LE(t, prev + 1e-12);
    prev = t;
  }
}

TEST(ReplicatedPlacement, GreedyReplicatesTheHotExpert) {
  auto problem = make_problem(5, 1.6);
  auto base = sequential(problem);
  auto rp = placement::greedy_replication(problem, base, 3);
  // At least one added replica must belong to the hot expert column 0.
  std::size_t extra_on_hot = 0;
  for (std::size_t l = 0; l < problem.num_layers; ++l) {
    extra_on_hot += rp.replicas(l, 0).size() - 1;
  }
  EXPECT_GT(extra_on_hot, 0u);
}

TEST(ReplicatedPlacement, GreedyStopsWhenNothingImproves) {
  // Uniform probabilities and equal bandwidths: replication cannot reduce
  // the max; the greedy must stop early and keep the base.
  auto problem = make_problem(7, 2.0 / 5.0 * 1.0);
  problem.probability.fill(0.4f);
  for (auto& b : problem.bandwidth) b = 1.17e9;
  auto base = sequential(problem);
  auto rp = placement::greedy_replication(problem, base, 10);
  EXPECT_EQ(rp.total_replicas(), 15u);
}

TEST(ReplicatedPlacement, RespectsCapacity) {
  auto problem = make_problem(9, 1.6);
  problem.capacity.assign(5, 3);  // exactly the base load, no spare slots
  auto base = sequential(problem);
  auto rp = placement::greedy_replication(problem, base, 5);
  EXPECT_EQ(rp.total_replicas(), 15u);  // nowhere to put replicas
  EXPECT_TRUE(rp.feasible(problem));
}

}  // namespace
}  // namespace vela
