// Empirical validation of Theorem 1 and the locality-stability claim (§III).
#include <gtest/gtest.h>

#include <cmath>

#include "core/profiler.h"
#include "model/router_planting.h"
#include "moe/moe_block.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/stats.h"

namespace vela {
namespace {

// --- Direct numerical check of the bound on a controlled gating model -------
//
// f(x; w) = w (logits are the parameters), so ‖∇f‖ ≤ L holds with L taken as
// the measured update norm. One SGD step w' = w − μ·g with ‖g‖ ≤ L must obey
//   ΔP(e) ≤ μ·E·L²·P(e)(1−P(e)).
struct BoundCase {
  std::size_t experts;
  double lr;
  std::uint64_t seed;
};

class TheoremBound : public ::testing::TestWithParam<BoundCase> {};

TEST_P(TheoremBound, SgdStepRespectsBound) {
  const auto param = GetParam();
  Rng rng(param.seed);
  const std::size_t E = param.experts;

  for (int trial = 0; trial < 50; ++trial) {
    // Confident logits: one dominant expert (the fine-tuning regime).
    Tensor w({1, E});
    for (std::size_t e = 0; e < E; ++e) {
      w.at(0, e) = static_cast<float>(rng.normal(0.0, 1.0));
    }
    w.at(0, rng.uniform_index(E)) += 4.0f;

    // A bounded pseudo-gradient: cross-entropy to a random target, whose
    // norm is at most sqrt(2); take L as the actual gradient max-norm so the
    // Lipschitz hypothesis holds by construction.
    const Tensor p0 = ops::softmax_rows(w);
    Tensor grad = p0;
    grad.at(0, rng.uniform_index(E)) -= 1.0f;
    double lips = 0.0;
    for (std::size_t e = 0; e < E; ++e) {
      lips = std::max(lips, std::abs(double(grad.at(0, e))));
    }

    Tensor w1 = w;
    w1.axpy_(-static_cast<float>(param.lr), grad);
    const Tensor p1 = ops::softmax_rows(w1);

    for (std::size_t e = 0; e < E; ++e) {
      const double delta = std::abs(double(p1.at(0, e)) - p0.at(0, e));
      const double uncertainty = double(p0.at(0, e)) * (1.0 - p0.at(0, e));
      const double bound =
          param.lr * static_cast<double>(E) * lips * lips * uncertainty;
      // First-order bound: allow the O(μ²) Taylor remainder.
      EXPECT_LE(delta, bound + 10.0 * param.lr * param.lr + 1e-9)
          << "trial " << trial << " expert " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TheoremBound,
    ::testing::Values(BoundCase{4, 0.01, 1}, BoundCase{6, 0.01, 2},
                      BoundCase{8, 0.005, 3}, BoundCase{6, 0.05, 4},
                      BoundCase{16, 0.01, 5}));

TEST(TheoremBound, ConfidentSelectionsMoveLessThanUncertainOnes) {
  // The uncertainty term P(1−P) is the whole story: a near-saturated softmax
  // must move less under the same logit perturbation than a flat one.
  Tensor confident = Tensor::from_rows({{6.0f, 0.0f, 0.0f, 0.0f}});
  Tensor uncertain = Tensor::from_rows({{0.3f, 0.0f, 0.2f, 0.1f}});
  Tensor perturb = Tensor::from_rows({{-0.1f, 0.1f, -0.05f, 0.05f}});

  const Tensor pc0 = ops::softmax_rows(confident);
  const Tensor pu0 = ops::softmax_rows(uncertain);
  const Tensor pc1 = ops::softmax_rows(ops::add(confident, perturb));
  const Tensor pu1 = ops::softmax_rows(ops::add(uncertain, perturb));

  const float dc = ops::max_abs(ops::sub(pc1, pc0));
  const float du = ops::max_abs(ops::sub(pu1, pu0));
  EXPECT_LT(dc, du * 0.25f);
}

// --- End-to-end locality stability (Fig. 3(c)) ------------------------------

TEST(LocalityStability, AccessFrequenciesStayStableUnderFineTuning) {
  model::ModelConfig cfg = model::ModelConfig::tiny_test();
  data::SyntheticCorpus corpus(
      data::CorpusConfig::shakespeare_like(cfg.vocab, 6), 23);
  moe::LocalExpertBackend backend(cfg.num_layers, cfg.num_experts,
                                  cfg.model_dim, cfg.hidden_dim, cfg.lora, 7);
  Rng rng(29);
  // Trainable gate: the stability must hold even when router weights are
  // themselves fine-tuned (the theorem's setting).
  model::MoETransformer model(cfg, &backend, rng, /*trainable_gate=*/true);
  model::plant_locality(model, corpus, model::PlantingConfig{});

  const auto probe = corpus.make_dataset(8, 10);
  auto initial = core::profile_expert_access(model, probe, 4);
  const auto base_freq = initial.layer_frequencies(0);

  // Fine-tune with SGD (the theorem's optimizer) on fresh batches.
  std::vector<nn::Parameter> params = model.trainable_parameters();
  for (const auto& p : backend.trainable_parameters()) params.push_back(p);
  nn::SGD sgd(params, 1e-3f);
  Rng data_rng(31);
  for (int step = 0; step < 25; ++step) {
    sgd.zero_grad();
    ag::backward(model.loss_batch(corpus.sample_batch(4, 10, data_rng)));
    sgd.step();
  }

  auto after = core::profile_expert_access(model, probe, 4);
  const auto final_freq = after.layer_frequencies(0);
  // Fig. 3(c): per-expert access frequency on a fixed probe set moves very
  // little over fine-tuning.
  for (std::size_t e = 0; e < cfg.num_experts; ++e) {
    EXPECT_NEAR(final_freq[e], base_freq[e], 0.12) << "expert " << e;
  }
}

TEST(LocalityStability, ProbabilityMatrixDriftIsSmall) {
  model::ModelConfig cfg = model::ModelConfig::tiny_test();
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.vocab, 6), 41);
  moe::LocalExpertBackend backend(cfg.num_layers, cfg.num_experts,
                                  cfg.model_dim, cfg.hidden_dim, cfg.lora, 11);
  Rng rng(43);
  model::MoETransformer model(cfg, &backend, rng);
  model::plant_locality(model, corpus, model::PlantingConfig{});

  const auto probe = corpus.make_dataset(10, 10);
  Tensor before = core::profile_expert_access(model, probe, 5)
                      .probability_matrix();

  std::vector<nn::Parameter> params = model.trainable_parameters();
  for (const auto& p : backend.trainable_parameters()) params.push_back(p);
  nn::AdamW adam(params, nn::AdamWConfig{});  // paper's optimizer + LR
  Rng data_rng(47);
  for (int step = 0; step < 20; ++step) {
    adam.zero_grad();
    ag::backward(model.loss_batch(corpus.sample_batch(4, 10, data_rng)));
    adam.step();
  }

  Tensor after = core::profile_expert_access(model, probe, 5)
                     .probability_matrix();
  // Mean absolute drift across the whole L×E matrix stays tiny — the
  // property that makes profiling before fine-tuning sound (§IV-B).
  double drift = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    drift += std::abs(double(after[i]) - before[i]);
  }
  drift /= static_cast<double>(before.size());
  EXPECT_LT(drift, 0.05);
}

}  // namespace
}  // namespace vela
