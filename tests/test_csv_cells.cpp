// Pins the unified CSV cell-formatting helper (bench/csv_cells.h) all bench
// emitters now share. The formatting contract is golden-file load-bearing:
// fig5/fig6/degrade/proc golden CSVs were generated with std::to_string
// semantics, so cell() must reproduce them byte for byte.
#include "csv_cells.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace vela {
namespace {

TEST(CsvCells, PlainStringsPassThroughVerbatim) {
  EXPECT_EQ(bench::cell(std::string("tiny-golden")), "tiny-golden");
  EXPECT_EQ(bench::cell("mixtral wikitext"), "mixtral wikitext");
  EXPECT_EQ(bench::cell(""), "");
}

TEST(CsvCells, SpecialCharactersGetRfc4180Quoted) {
  EXPECT_EQ(bench::cell("a,b"), "\"a,b\"");
  EXPECT_EQ(bench::cell("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(bench::cell("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(bench::cell("cr\rhere"), "\"cr\rhere\"");
}

TEST(CsvCells, IntegralsFormatAsToString) {
  EXPECT_EQ(bench::cell(0), "0");
  EXPECT_EQ(bench::cell(std::size_t{42}), "42");
  EXPECT_EQ(bench::cell(std::uint64_t{18446744073709551615ull}),
            "18446744073709551615");
  EXPECT_EQ(bench::cell(-7), "-7");
}

TEST(CsvCells, FloatAndDoubleKeepDistinctToStringFormatting) {
  // std::to_string(float) formats the float's value, not the double's: the
  // degrade emitter's loss cell is float, the proc emitter casts to double,
  // and their goldens pin different bytes for nearby values. 16777217 is
  // not representable in binary32 (rounds to 16777216), so the two
  // overloads MUST disagree here — this is the regression the shared
  // helper could silently introduce with a single double overload.
  EXPECT_EQ(bench::cell(16777217.0f), "16777216.000000");
  EXPECT_EQ(bench::cell(16777217.0), "16777217.000000");
  EXPECT_EQ(bench::cell(0.5f), "0.500000");
  EXPECT_EQ(bench::cell(0.5), "0.500000");
  EXPECT_EQ(bench::cell(-1.25), "-1.250000");
}

TEST(CsvCells, CellsBuildsRowInArgumentOrder) {
  const auto row = bench::cells("tiny", std::size_t{3}, 0.5, 0.25f, -2);
  ASSERT_EQ(row.size(), 5u);
  EXPECT_EQ(row[0], "tiny");
  EXPECT_EQ(row[1], "3");
  EXPECT_EQ(row[2], "0.500000");
  EXPECT_EQ(row[3], "0.250000");
  EXPECT_EQ(row[4], "-2");
}

}  // namespace
}  // namespace vela
