// Wire-level conformance for the quantized tier (`ctest -L quant`,
// DESIGN.md §13): the accounted codec (serialize.h) and the lossless
// transport frame (frame.h) against q8 payload sizes, the WireCodec
// resolution rules, and FrameDecoder torn-read/CRC behavior over the
// smallest and largest q8 frames. The inproc backend moves Message objects
// directly (no byte stream), so the framing tests exercise the socket
// backend's codec path; backend equivalence end-to-end is pinned by
// test_quant_system.cpp.
#include "comm/wire_codec.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "comm/frame.h"
#include "comm/serialize.h"
#include "tensor/ops.h"
#include "tensor/qblock.h"
#include "util/check.h"
#include "util/rng.h"

namespace vela {
namespace {

// setenv/unsetenv guard: restores the unset state on scope exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

comm::Message q8_message(std::size_t rows, std::size_t cols, unsigned block,
                         std::uint64_t seed = 5) {
  comm::Message msg;
  msg.type = comm::MessageType::kExpertForward;
  msg.request_id = 0x1122334455667788ull;
  msg.layer = 1;
  msg.expert = 2;
  msg.step = 9;
  Rng rng(seed);
  msg.payload = ops::randn({rows, cols}, rng);
  msg.wire_bits = 8;
  msg.q8_block = static_cast<std::uint8_t>(block);
  return msg;
}

// ---------------------------------------------------------------------------
// Accounted codec (serialize.h)
// ---------------------------------------------------------------------------

TEST(QuantSerialize, EncodedSizeEqualsWireSizeEqualsSumOfBlocks) {
  for (const unsigned block : {32u, 64u}) {
    const comm::Message msg = q8_message(6, 70, block);
    const auto bytes = comm::encode(msg);
    EXPECT_EQ(bytes.size(), msg.wire_size()) << "block " << block;
    // Ledger exactness: the charged body is exactly the sum of the per-block
    // encoded sizes (4 B scale + the block's code run, short last block).
    std::size_t body = 0;
    for (std::size_t r = 0; r < 6; ++r) {
      for (std::size_t b = 0; b * block < 70; ++b) {
        const std::size_t len = std::min<std::size_t>(block, 70 - b * block);
        body += sizeof(float) + len;
      }
    }
    EXPECT_EQ(msg.wire_size(), comm::Message::kHeaderBytes + body);
    EXPECT_EQ(body, qblock::wire_payload_bytes(6, 70, block));
  }
}

TEST(QuantSerialize, SmallestPayloadEncodes) {
  const comm::Message msg = q8_message(1, 1, 32);
  const auto bytes = comm::encode(msg);
  EXPECT_EQ(bytes.size(), comm::Message::kHeaderBytes + 1 + sizeof(float));
  const comm::Message back = comm::decode(bytes);
  EXPECT_EQ(back.wire_bits, 8u);
  EXPECT_EQ(back.q8_block, 32u);
  ASSERT_EQ(back.payload.size(), 1u);
}

TEST(QuantSerialize, RoundTripMatchesQuantizeDequantize) {
  const comm::Message msg = q8_message(4, 45, 64);
  const comm::Message back = comm::decode(comm::encode(msg));
  EXPECT_EQ(back.type, msg.type);
  EXPECT_EQ(back.request_id, msg.request_id);
  EXPECT_EQ(back.wire_bits, 8u);
  EXPECT_EQ(back.q8_block, 64u);
  // q8 decode restores the row structure (rank-2), unlike the rank-1
  // fp16/fp32 paths — the row tiling is part of the wire format.
  ASSERT_EQ(back.payload.rank(), 2u);
  EXPECT_EQ(back.payload.dim(0), 4u);
  EXPECT_EQ(back.payload.dim(1), 45u);
  const Tensor expect =
      qblock::dequantize(qblock::quantize(msg.payload, 64));
  ASSERT_EQ(back.payload.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(back.payload[i], expect[i]) << i;  // bit-exact
  }
}

TEST(QuantSerialize, DecodeRejectsBadBlockTag) {
  auto bytes = comm::encode(q8_message(2, 40, 32));
  bytes[1] = 0x80 | 16;  // valid-looking tag bit, invalid block length
  EXPECT_THROW(comm::decode(bytes), CheckError);
}

TEST(QuantSerialize, TruncatedQ8BufferRejected) {
  auto bytes = comm::encode(q8_message(2, 40, 32));
  bytes.resize(bytes.size() - 1);
  EXPECT_THROW(comm::decode(bytes), CheckError);
}

TEST(QuantMessage, WireSizeReflectsQuantizedFootprint) {
  const comm::Message q8 = q8_message(3, 64, 64);
  comm::Message f32 = q8;
  f32.wire_bits = 32;
  f32.q8_block = 0;
  // 3*64 codes + 3 scales vs 3*64 raw floats: better than 3.7x here.
  EXPECT_EQ(q8.wire_size(),
            comm::Message::kHeaderBytes + 3 * 64 + 3 * sizeof(float));
  EXPECT_GT(f32.wire_size(), 2 * q8.wire_size() - comm::Message::kHeaderBytes);
}

TEST(QuantMessage, ChecksumCoversBlockLength) {
  comm::Message msg = q8_message(2, 32, 32);
  msg.stamp_checksum();
  EXPECT_TRUE(msg.checksum_ok());
  msg.q8_block = 64;  // tamper the accounting tag
  EXPECT_FALSE(msg.checksum_ok());
}

// ---------------------------------------------------------------------------
// Transport frame (frame.h)
// ---------------------------------------------------------------------------

TEST(QuantFrame, RoundTripIsLossless) {
  const comm::Message msg = q8_message(4, 70, 64, /*seed=*/7);
  comm::Message back;
  std::string error;
  ASSERT_TRUE(comm::decode_frame(comm::encode_frame(msg), &back, &error))
      << error;
  EXPECT_EQ(back.wire_bits, 8u);
  EXPECT_EQ(back.q8_block, 64u);
  ASSERT_EQ(back.payload.size(), msg.payload.size());
  for (std::size_t i = 0; i < msg.payload.size(); ++i) {
    // The frame is the LOSSLESS layer: full fp32 payload bits survive even
    // for a q8-tagged message (quantization happened at the sender).
    EXPECT_EQ(back.payload[i], msg.payload[i]) << i;
  }
}

TEST(QuantFrame, InvalidBlockRejectedAtEncodeAndDecode) {
  comm::Message msg = q8_message(1, 8, 32);
  msg.q8_block = 16;
  EXPECT_THROW(comm::encode_frame(msg), CheckError);

  // A CRC-valid frame whose header carries a bad q8 tag must fail decode
  // gracefully (error string, no throw): body[1] is the precision slot.
  auto frame = comm::encode_frame(q8_message(1, 8, 32));
  frame[4 + 1] = 0x80 | 16;  // after the u32 length prefix
  const std::uint32_t body_len =
      static_cast<std::uint32_t>(frame.size() - comm::kFrameOverheadBytes);
  const std::uint32_t crc = comm::frame_crc(frame.data() + 4, body_len);
  // Deliberate frame surgery: this test re-seals a tampered frame.
  // vela-lint: allow(wire-memcpy)
  std::memcpy(frame.data() + 4 + body_len, &crc, sizeof(crc));
  comm::Message out;
  std::string error;
  EXPECT_FALSE(comm::decode_frame(frame, &out, &error));
  EXPECT_NE(error.find("q8"), std::string::npos) << error;
}

TEST(QuantFrame, CorruptedBytesRejectedByCrc) {
  for (const std::size_t rows : {1u, 64u}) {
    auto frame = comm::encode_frame(q8_message(rows, 65, 64));
    frame[frame.size() / 2] ^= 0x40;
    comm::Message out;
    std::string error;
    EXPECT_FALSE(comm::decode_frame(frame, &out, &error)) << rows;
  }
}

TEST(QuantFrame, DecoderReassemblesOneByteTornReads) {
  // Smallest q8 frame (1x1 payload: header + one short block) followed by
  // the largest in the test (64x128), fed one byte at a time — no read
  // boundary ever aligns with a frame.
  const comm::Message small = q8_message(1, 1, 32, /*seed=*/21);
  const comm::Message large = q8_message(64, 128, 64, /*seed=*/22);
  std::vector<std::uint8_t> stream;
  for (const auto* m : {&small, &large}) {
    const auto f = comm::encode_frame(*m);
    stream.insert(stream.end(), f.begin(), f.end());
  }

  comm::FrameDecoder decoder;
  std::vector<comm::Message> out;
  std::vector<std::uint8_t> frame;
  for (const std::uint8_t byte : stream) {
    decoder.feed(&byte, 1);
    while (decoder.next(&frame)) {
      comm::Message m;
      std::string error;
      ASSERT_TRUE(comm::decode_frame(frame, &m, &error)) << error;
      out.push_back(std::move(m));
    }
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_EQ(out[0].payload.size(), 1u);
  ASSERT_EQ(out[1].payload.size(), large.payload.size());
  for (std::size_t i = 0; i < large.payload.size(); ++i) {
    EXPECT_EQ(out[1].payload[i], large.payload[i]);
  }
}

// ---------------------------------------------------------------------------
// WireCodec resolution
// ---------------------------------------------------------------------------

TEST(WireCodec, LegacyPairStaysAuthoritativeWithoutEnv) {
  // Pre-tier configs must resolve bit-identically: wire_bits carries the
  // accounting, quantize_wire&&16 is the only legacy transform.
  const auto raw32 = comm::WireCodec::resolve(comm::WireDtype::kDefault, 32,
                                              /*legacy_quantize=*/false, 0);
  EXPECT_EQ(raw32.dtype, comm::WireDtype::kFp32);
  EXPECT_EQ(raw32.bits, 32u);
  EXPECT_FALSE(raw32.transforms);

  const auto acct16 = comm::WireCodec::resolve(comm::WireDtype::kDefault, 16,
                                               false, 0);
  EXPECT_EQ(acct16.bits, 16u);
  EXPECT_FALSE(acct16.transforms);  // accounting-only 16-bit, legacy default

  const auto legacy_f16 = comm::WireCodec::resolve(comm::WireDtype::kDefault,
                                                   16, true, 0);
  EXPECT_EQ(legacy_f16.dtype, comm::WireDtype::kFp16);
  EXPECT_TRUE(legacy_f16.transforms);
}

TEST(WireCodec, EnvSelectsTierForDefaultConfigs) {
  ScopedEnv env("VELA_WIRE_DTYPE", "int8");
  const auto codec =
      comm::WireCodec::resolve(comm::WireDtype::kDefault, 32, false, 0);
  EXPECT_EQ(codec.dtype, comm::WireDtype::kInt8);
  EXPECT_EQ(codec.bits, 8u);
  EXPECT_EQ(codec.block, qblock::kDefaultBlock);
  EXPECT_TRUE(codec.transforms);
}

TEST(WireCodec, ExplicitConfigBeatsEnv) {
  ScopedEnv env("VELA_WIRE_DTYPE", "int8");
  const auto codec =
      comm::WireCodec::resolve(comm::WireDtype::kFp32, 16, true, 0);
  EXPECT_EQ(codec.dtype, comm::WireDtype::kFp32);
  EXPECT_EQ(codec.bits, 32u);
  EXPECT_FALSE(codec.transforms);
}

TEST(WireCodec, BlockResolutionChain) {
  EXPECT_EQ(comm::WireCodec::resolve(comm::WireDtype::kInt8, 32, false, 32)
                .block,
            32u);
  {
    ScopedEnv env("VELA_WIRE_BLOCK", "32");
    EXPECT_EQ(comm::WireCodec::resolve(comm::WireDtype::kInt8, 32, false, 0)
                  .block,
              32u);
    // An explicit request still wins over the env.
    EXPECT_EQ(comm::WireCodec::resolve(comm::WireDtype::kInt8, 32, false, 64)
                  .block,
              64u);
  }
  EXPECT_EQ(
      comm::WireCodec::resolve(comm::WireDtype::kInt8, 32, false, 0).block,
      qblock::kDefaultBlock);
  EXPECT_THROW(comm::WireCodec::resolve(comm::WireDtype::kInt8, 32, false, 48),
               CheckError);
}

TEST(WireCodec, ParseNamesStrictly) {
  EXPECT_EQ(comm::parse_wire_dtype("fp32"), comm::WireDtype::kFp32);
  EXPECT_EQ(comm::parse_wire_dtype("fp16"), comm::WireDtype::kFp16);
  EXPECT_EQ(comm::parse_wire_dtype("int8"), comm::WireDtype::kInt8);
  EXPECT_EQ(comm::parse_wire_dtype("default"), comm::WireDtype::kDefault);
  EXPECT_EQ(comm::parse_wire_dtype(""), comm::WireDtype::kDefault);
  EXPECT_THROW(comm::parse_wire_dtype("int4"), CheckError);
  EXPECT_THROW(comm::parse_wire_dtype("INT8"), CheckError);
}

TEST(WireCodec, StampSetsAccountingFields) {
  comm::Message msg;
  const auto q8 = comm::WireCodec::resolve(comm::WireDtype::kInt8, 32, false,
                                           32);
  q8.stamp(msg);
  EXPECT_EQ(msg.wire_bits, 8u);
  EXPECT_EQ(msg.q8_block, 32u);
  const auto f16 = comm::WireCodec::resolve(comm::WireDtype::kFp16, 32, false,
                                            0);
  f16.stamp(msg);
  EXPECT_EQ(msg.wire_bits, 16u);
  EXPECT_EQ(msg.q8_block, 0u);
}

TEST(WireCodec, ApplyMatchesQblockRoundtrip) {
  Rng rng(41);
  const Tensor t = ops::randn({3, 50}, rng);
  const auto codec =
      comm::WireCodec::resolve(comm::WireDtype::kInt8, 32, false, 32);
  const Tensor wire = codec.apply(t);
  const Tensor expect = qblock::roundtrip(t, 32);
  ASSERT_EQ(wire.size(), expect.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(wire[i], expect[i]) << i;
  }
}

}  // namespace
}  // namespace vela
