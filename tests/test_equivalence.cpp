// The load-bearing integration tests: the distributed VELA system must be
// numerically equivalent to a single-process dense run (the paper's claim
// that VELA "maintains identical computation logic to single-device
// fine-tuning"), and the analytic traffic model must reproduce the measured
// byte counts exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "core/step_simulator.h"
#include "core/vela_system.h"
#include "data/batch.h"
#include "moe/moe_block.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace vela {
namespace {

constexpr std::uint64_t kSeed = 9;

core::VelaSystemConfig system_config() {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = kSeed;
  cfg.wire_bits = 32;  // exact transport for bit-equivalence
  return cfg;
}

// A single-process twin of VelaSystem: same seeds, dense local experts, one
// AdamW over backbone + expert adapters (AdamW state is per-parameter, so
// one optimizer over the union is mathematically identical to VELA's split
// master/worker optimizers).
struct DenseTwin {
  explicit DenseTwin(const core::VelaSystemConfig& cfg,
                     const data::SyntheticCorpus& corpus)
      : backend(cfg.model.num_layers, cfg.model.num_experts,
                cfg.model.model_dim, cfg.model.hidden_dim, cfg.model.lora,
                cfg.seed),
        rng(cfg.seed),
        model(cfg.model, &backend, rng) {
    model::plant_locality(model, corpus, model::PlantingConfig{});
    auto params = model.trainable_parameters();
    for (const auto& p : backend.trainable_parameters()) params.push_back(p);
    optimizer = std::make_unique<nn::AdamW>(params, cfg.adamw);
  }

  float train_step(const std::vector<std::vector<std::size_t>>& batch) {
    optimizer->zero_grad();
    ag::Variable loss = model.loss_batch(batch);
    ag::backward(loss);
    optimizer->step();
    return loss.value()[0];
  }

  moe::LocalExpertBackend backend;
  Rng rng;
  model::MoETransformer model;
  std::unique_ptr<nn::AdamW> optimizer;
};

TEST(Equivalence, InitialLossMatchesDenseTwin) {
  auto cfg = system_config();
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 31);
  core::VelaSystem vela(cfg, &corpus);
  DenseTwin dense(cfg, corpus);

  auto batch = corpus.make_dataset(3, 6);
  const float dense_loss = dense.model.loss_batch(batch).value()[0];
  const float vela_loss = vela.model().loss_batch(batch).value()[0];
  EXPECT_NEAR(vela_loss, dense_loss, 1e-5f);
}

TEST(Equivalence, TrainingTrajectoriesTrack) {
  auto cfg = system_config();
  cfg.adamw.lr = 1e-3f;
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 33);
  core::VelaSystem vela(cfg, &corpus);
  DenseTwin dense(cfg, corpus);

  data::BatchIterator it(corpus.make_dataset(6, 8), 3, 4,
                         /*shuffle=*/false);
  for (int step = 0; step < 4; ++step) {
    auto batch = it.next();
    const float dense_loss = dense.train_step(batch);
    const float vela_loss = vela.train_step(batch).loss;
    EXPECT_NEAR(vela_loss, dense_loss,
                std::abs(dense_loss) * 1e-3f + 1e-4f)
        << "step " << step;
  }
}

TEST(Equivalence, TrajectoriesTrackAcrossMigration) {
  auto cfg = system_config();
  cfg.adamw.lr = 1e-3f;
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 35);
  core::VelaSystem vela(cfg, &corpus);
  DenseTwin dense(cfg, corpus);

  data::BatchIterator it(corpus.make_dataset(6, 8), 3, 4, /*shuffle=*/false);
  auto warm = it.next();
  // Profile + optimized placement BEFORE any optimizer state accrues — the
  // migration path that the paper's workflow uses.
  vela.profile(corpus.make_dataset(6, 8), 3);
  vela.optimize_placement(3.0 * 7.0);
  for (int step = 0; step < 3; ++step) {
    auto batch = it.next();
    const float dense_loss = dense.train_step(batch);
    const float vela_loss = vela.train_step(batch).loss;
    EXPECT_NEAR(vela_loss, dense_loss, std::abs(dense_loss) * 1e-3f + 1e-4f);
  }
}

TEST(Equivalence, TrafficModelReproducesMeasuredBytesExactly) {
  auto cfg = system_config();
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 37);
  core::VelaSystem vela(cfg, &corpus);
  auto batch = corpus.make_dataset(4, 8);

  const std::uint64_t external_before =
      vela.master().meter().lifetime_external_bytes();
  vela.train_step(batch);
  const std::uint64_t measured =
      vela.master().meter().lifetime_external_bytes() - external_before;

  core::VelaTrafficModelConfig tm_cfg;
  tm_cfg.bytes_per_token = cfg.model.model_dim * cfg.wire_bits / 8;
  core::VelaTrafficModel traffic(&vela.topology(), tm_cfg);
  const std::uint64_t simulated = traffic.external_bytes(
      traffic.account_step(vela.model().last_plans(),
                           vela.master().placement()));

  // The only traffic the analytic model does not account for is the
  // end-of-step optimizer broadcast: one header-only round trip per
  // cross-node worker (4 of the 6 workers in the paper testbed).
  const std::uint64_t control = 4u * 2u * comm::Message::kHeaderBytes;
  EXPECT_EQ(measured, simulated + control);
}

TEST(Equivalence, StepRecordMatchesTrafficModelPhases) {
  auto cfg = system_config();
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 39);
  core::VelaSystem vela(cfg, &corpus);
  auto batch = corpus.make_dataset(4, 8);

  vela.master().broker().begin_step();
  ag::Variable loss = vela.model().loss_batch(batch);
  ag::backward(loss);
  auto live = vela.master().broker().finish_step();

  core::VelaTrafficModelConfig tm_cfg;
  tm_cfg.bytes_per_token = cfg.model.model_dim * cfg.wire_bits / 8;
  core::VelaTrafficModel traffic(&vela.topology(), tm_cfg);
  auto simulated = traffic.account_step(vela.model().last_plans(),
                                        vela.master().placement());

  ASSERT_EQ(live.phases.size(), simulated.phases.size());
  for (std::size_t i = 0; i < live.phases.size(); ++i) {
    for (std::size_t w = 0; w < live.phases[i].bytes.size(); ++w) {
      EXPECT_EQ(live.phases[i].bytes[w], simulated.phases[i].bytes[w])
          << "phase " << i << " worker " << w;
    }
  }
}

}  // namespace
}  // namespace vela
