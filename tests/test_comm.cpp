#include <gtest/gtest.h>

#include <thread>

#include "comm/endpoint.h"
#include "comm/message.h"
#include "comm/traffic_meter.h"
#include "util/blocking_queue.h"
#include "util/check.h"

namespace vela {
namespace {

cluster::ClusterTopology paper_topo() {
  return cluster::ClusterTopology(cluster::ClusterConfig::paper_testbed());
}

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BlockingQueue, TryPopEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, CloseReleasesBlockedConsumer) {
  BlockingQueue<int> q;
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  q.close();
  consumer.join();
  EXPECT_FALSE(q.push(5));
}

TEST(BlockingQueue, DrainsBacklogAfterClose) {
  BlockingQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, CrossThreadDelivery) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) q.push(i);
  });
  int sum = 0;
  for (int i = 0; i < 100; ++i) sum += q.pop().value();
  producer.join();
  EXPECT_EQ(sum, 4950);
}

TEST(Message, WireSizeWithPayload) {
  comm::Message msg;
  msg.payload = Tensor({4, 8});
  msg.wire_bits = 16;
  EXPECT_EQ(msg.wire_size(), comm::Message::kHeaderBytes + 32 * 2);
}

TEST(Message, WireSizePhantom) {
  comm::Message msg;
  msg.phantom_bytes = 1000;
  EXPECT_EQ(msg.wire_size(), comm::Message::kHeaderBytes + 1000);
}

TEST(Message, ControlMessageIsHeaderOnly) {
  comm::Message msg;
  EXPECT_EQ(msg.wire_size(), comm::Message::kHeaderBytes);
}

TEST(TrafficMeter, SeparatesExternalFromInternal) {
  auto topo = paper_topo();
  comm::TrafficMeter meter(&topo);
  meter.record(0, 0, 100);  // internal
  meter.record(0, 1, 50);   // external
  EXPECT_EQ(meter.current_total_bytes(), 150u);
  EXPECT_EQ(meter.current_external_bytes(), 50u);
}

TEST(TrafficMeter, StepHistory) {
  auto topo = paper_topo();
  comm::TrafficMeter meter(&topo);
  meter.record(0, 1, 3'000'000);
  meter.end_step();
  meter.record(0, 2, 6'000'000);
  meter.end_step();
  EXPECT_EQ(meter.num_steps(), 2u);
  EXPECT_EQ(meter.step_external_bytes(0), 3'000'000u);
  // MB per node: bytes / 1e6 / 3 nodes.
  EXPECT_NEAR(meter.step_external_mb_per_node(0), 1.0, 1e-9);
  EXPECT_NEAR(meter.mean_external_mb_per_node(), 1.5, 1e-9);
}

TEST(TrafficMeter, DiscardCurrentDropsWithoutRecording) {
  auto topo = paper_topo();
  comm::TrafficMeter meter(&topo);
  meter.record(0, 1, 500);
  meter.discard_current();
  EXPECT_EQ(meter.current_external_bytes(), 0u);
  EXPECT_EQ(meter.num_steps(), 0u);
}

TEST(TrafficMeter, LifetimeTotalsIncludeOpenStep) {
  auto topo = paper_topo();
  comm::TrafficMeter meter(&topo);
  meter.record(0, 1, 100);
  meter.end_step();
  meter.record(0, 2, 25);
  EXPECT_EQ(meter.lifetime_external_bytes(), 125u);
}

TEST(Endpoint, CountsBytesAndMessages) {
  auto topo = paper_topo();
  comm::TrafficMeter meter(&topo);
  comm::Endpoint ch(comm::TransportKind::kDefault, 0, 1, &meter);
  comm::Message msg;
  msg.payload = Tensor({2, 2});
  msg.wire_bits = 32;
  const auto size = msg.wire_size();
  ch.send(std::move(msg));
  EXPECT_EQ(ch.bytes_sent(), size);
  EXPECT_EQ(ch.messages_sent(), 1u);
  EXPECT_EQ(meter.current_external_bytes(), size);
  auto received = ch.receive();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->payload.size(), 4u);
}

TEST(Endpoint, NullMeterAllowed) {
  comm::Endpoint ch(comm::TransportKind::kDefault, 0, 0, nullptr);
  comm::Message msg;
  EXPECT_TRUE(ch.send(std::move(msg)));
  EXPECT_TRUE(ch.receive().has_value());
}

TEST(Endpoint, PayloadIntegrityAcrossThreads) {
  comm::Endpoint ch(comm::TransportKind::kDefault, 0, 1, nullptr);
  Tensor payload = Tensor::from_rows({{1.0f, 2.0f}, {3.0f, 4.0f}});
  std::thread sender([&] {
    comm::Message msg;
    msg.payload = payload;
    ch.send(std::move(msg));
  });
  auto received = ch.receive();
  sender.join();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->payload.at(1, 1), 4.0f);
}

TEST(DuplexLink, TwoIndependentDirections) {
  auto topo = paper_topo();
  comm::TrafficMeter meter(&topo);
  comm::DuplexLink link(comm::TransportKind::kDefault, 0, 2, &meter);
  comm::Message a, b;
  a.request_id = 1;
  b.request_id = 2;
  link.to_worker.send(std::move(a));
  link.to_master.send(std::move(b));
  EXPECT_EQ(link.to_worker.receive()->request_id, 1u);
  EXPECT_EQ(link.to_master.receive()->request_id, 2u);
  link.close();
  EXPECT_FALSE(link.to_worker.receive().has_value());
}

}  // namespace
}  // namespace vela
