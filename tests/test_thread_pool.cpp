// util::ThreadPool contract tests: construction/teardown, task execution,
// exception propagation (lowest index wins, matching serial order), the
// nested-submit inline guard, the pool-of-1 serial fallback, and the fixed
// partitioning that underwrites the bit-exact determinism guarantees.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace vela::util {
namespace {

TEST(ThreadPool, ConstructsAndTearsDownAtEverySize) {
  for (const std::size_t size : {1u, 2u, 8u}) {
    ThreadPool pool(size);
    EXPECT_EQ(pool.size(), size);
  }
  // Size 0 clamps to 1 rather than producing a poolless pool.
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1u);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  for (const std::size_t size : {1u, 2u, 8u}) {
    ThreadPool pool(size);
    std::vector<std::atomic<int>> hits(100);
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < hits.size(); ++i) {
      tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
    }
    pool.run(tasks);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, EmptyTaskListIsANoOp) {
  ThreadPool pool(4);
  pool.run({});
  pool.parallel_for(0, 8, [](std::size_t, std::size_t, std::size_t) {
    FAIL() << "body must not run for n == 0";
  });
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  ThreadPool pool(4);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([i] {
      if (i == 3) throw std::runtime_error("boom-3");
      if (i == 11) throw std::runtime_error("boom-11");
    });
  }
  // Serial execution would hit index 3 first; the parallel path must agree
  // no matter which error physically happened first.
  try {
    pool.run(tasks);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& err) {
    EXPECT_STREQ(err.what(), "boom-3");
  }
}

TEST(ThreadPool, PoolOfOneRunsInlineOnCallerThread) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    tasks.push_back([&seen, i] { seen[i] = std::this_thread::get_id(); });
  }
  pool.run(tasks);
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, PoolOfOneAbortsAtFirstException) {
  // Inline semantics: task 5 throws, tasks 6+ never run — exactly the
  // pre-pool serial loop behavior.
  ThreadPool pool(1);
  std::vector<int> ran(10, 0);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&ran, i] {
      if (i == 5) throw std::runtime_error("stop");
      ran[i] = 1;
    });
  }
  EXPECT_THROW(pool.run(tasks), std::runtime_error);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ran[i], 1);
  for (int i = 6; i < 10; ++i) EXPECT_EQ(ran[i], 0);
}

TEST(ThreadPool, NestedSubmitRunsInlineWithoutDeadlock) {
  // A task that submits to its own pool must not wait for a lane that may
  // never free up; the guard routes nested work inline.
  ThreadPool pool(2);
  std::atomic<int> inner_runs{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back([&pool, &inner_runs] {
      EXPECT_TRUE(ThreadPool::in_pool_task());
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 4; ++j) {
        inner.push_back([&inner_runs] { inner_runs.fetch_add(1); });
      }
      pool.run(inner);
      pool.parallel_for(10, 3,
                        [&inner_runs](std::size_t b, std::size_t e,
                                      std::size_t) {
                          inner_runs.fetch_add(static_cast<int>(e - b));
                        });
    });
  }
  pool.run(outer);
  EXPECT_EQ(inner_runs.load(), 4 * (4 + 10));
  EXPECT_FALSE(ThreadPool::in_pool_task());
}

TEST(ThreadPool, PartitionBoundariesDependOnlyOnSizeAndGrain) {
  // n=10, grain=3 must always yield (0,3)(3,6)(6,9)(9,10) with chunk ids
  // 0..3, regardless of how many lanes execute them. This is the entire
  // determinism story for the reduction kernels.
  using Chunk = std::array<std::size_t, 3>;
  const std::vector<Chunk> expected = {
      {0, 3, 0}, {3, 6, 1}, {6, 9, 2}, {9, 10, 3}};
  for (const std::size_t size : {1u, 2u, 8u}) {
    ThreadPool pool(size);
    std::mutex m;
    std::set<Chunk> chunks;
    pool.parallel_for(10, 3,
                      [&](std::size_t b, std::size_t e, std::size_t c) {
                        std::lock_guard<std::mutex> lock(m);
                        chunks.insert({b, e, c});
                      });
    const std::vector<Chunk> got(chunks.begin(), chunks.end());
    EXPECT_EQ(got, expected) << "pool size " << size;
  }
}

TEST(ThreadPool, ConcurrentSubmittersBothComplete) {
  // Two non-pool threads submitting simultaneously: jobs queue FIFO and both
  // callers participate; neither starves.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  const auto submit = [&] {
    for (int round = 0; round < 50; ++round) {
      pool.parallel_for(64, 8,
                        [&](std::size_t b, std::size_t e, std::size_t) {
                          total.fetch_add(static_cast<int>(e - b));
                        });
    }
  };
  std::thread a(submit), b(submit);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2 * 50 * 64);
}

TEST(ThreadPool, EnvThreadsParsesVelaThreads) {
  const char* saved = std::getenv("VELA_THREADS");
  const std::string restore = saved == nullptr ? "" : saved;

  ::setenv("VELA_THREADS", "7", 1);
  EXPECT_EQ(ThreadPool::env_threads(), 7u);
  ::setenv("VELA_THREADS", "not-a-number", 1);
  EXPECT_EQ(ThreadPool::env_threads(),
            std::max(1u, std::thread::hardware_concurrency()));
  ::setenv("VELA_THREADS", "-3", 1);
  EXPECT_EQ(ThreadPool::env_threads(),
            std::max(1u, std::thread::hardware_concurrency()));
  ::unsetenv("VELA_THREADS");
  EXPECT_EQ(ThreadPool::env_threads(),
            std::max(1u, std::thread::hardware_concurrency()));

  if (saved != nullptr) ::setenv("VELA_THREADS", restore.c_str(), 1);
}

TEST(ThreadPool, SetGlobalThreadsResizesTheSharedPool) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().size(), 3u);
  ThreadPool::set_global_threads(0);  // back to the environment default
  EXPECT_EQ(ThreadPool::global().size(), ThreadPool::env_threads());
}

}  // namespace
}  // namespace vela::util
