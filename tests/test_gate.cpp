#include "moe/gate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace vela {
namespace {

moe::GateOutput run_gate(std::size_t tokens, std::size_t dim,
                         std::size_t experts, std::size_t k,
                         std::uint64_t seed = 1) {
  Rng rng(seed);
  moe::TopKGate gate("g", dim, experts, k, rng);
  Rng xr(seed + 100);
  ag::Variable x = ag::Variable::constant(ops::randn({tokens, dim}, xr));
  return gate.forward(x);
}

TEST(RoutePlan, ValidateAcceptsWellFormed) {
  moe::RoutePlan plan;
  plan.num_tokens = 3;
  plan.num_experts = 2;
  plan.top_k = 2;
  plan.expert_tokens = {{0, 1, 2}, {0, 1, 2}};
  EXPECT_NO_THROW(plan.validate());
  EXPECT_EQ(plan.total_assignments(), 6u);
  EXPECT_EQ(plan.group_offset(1), 3u);
}

TEST(RoutePlan, ValidateRejectsWrongMultiplicity) {
  moe::RoutePlan plan;
  plan.num_tokens = 2;
  plan.num_experts = 2;
  plan.top_k = 2;
  plan.expert_tokens = {{0, 1}, {0}};  // token 1 routed once
  EXPECT_THROW(plan.validate(), CheckError);
}

TEST(RoutePlan, ValidateRejectsNonAscendingGroup) {
  moe::RoutePlan plan;
  plan.num_tokens = 2;
  plan.num_experts = 2;
  plan.top_k = 1;
  plan.expert_tokens = {{1, 0}, {}};
  EXPECT_THROW(plan.validate(), CheckError);
}

TEST(TopKGate, PlanIsValidAndComplete) {
  auto out = run_gate(16, 8, 6, 2);
  EXPECT_NO_THROW(out.plan.validate());
  EXPECT_EQ(out.plan.num_tokens, 16u);
  EXPECT_EQ(out.plan.top_k, 2u);
}

TEST(TopKGate, ProbsAreFullSoftmax) {
  auto out = run_gate(5, 8, 4, 2);
  for (std::size_t t = 0; t < 5; ++t) {
    float row = 0.0f;
    for (std::size_t e = 0; e < 4; ++e) row += out.probs.at(t, e);
    EXPECT_NEAR(row, 1.0f, 1e-5);
  }
}

TEST(TopKGate, SelectedExpertsHaveHighestProbs) {
  auto out = run_gate(10, 8, 5, 2);
  for (std::size_t e = 0; e < 5; ++e) {
    for (std::size_t t : out.plan.expert_tokens[e]) {
      // The selected expert's prob must be >= at least 3 others.
      int beaten = 0;
      for (std::size_t o = 0; o < 5; ++o) {
        if (out.probs.at(t, e) >= out.probs.at(t, o)) ++beaten;
      }
      EXPECT_GE(beaten, 4);  // itself + 3 others
    }
  }
}

TEST(TopKGate, CombineWeightsNormalizedPerToken) {
  auto out = run_gate(12, 8, 6, 2);
  // Sum the weights each token received across its selected experts.
  std::vector<float> token_sum(12, 0.0f);
  std::size_t idx = 0;
  for (std::size_t e = 0; e < 6; ++e) {
    for (std::size_t t : out.plan.expert_tokens[e]) {
      token_sum[t] += out.combine_weights.value()[idx++];
    }
  }
  for (float s : token_sum) EXPECT_NEAR(s, 1.0f, 1e-5);
}

TEST(TopKGate, CombineWeightsMatchEquationOne) {
  // Eq. (1): weight of selected expert i is p_i / Σ_{selected} p.
  auto out = run_gate(6, 8, 4, 2);
  std::size_t idx = 0;
  for (std::size_t e = 0; e < 4; ++e) {
    for (std::size_t t : out.plan.expert_tokens[e]) {
      EXPECT_NEAR(out.combine_weights.value()[idx++],
                  out.probs.at(t, e) / out.selected_score_sums[t], 1e-4);
    }
  }
}

TEST(TopKGate, ScoreSumsAreSumOfSelectedProbs) {
  auto out = run_gate(8, 8, 5, 2);
  ASSERT_EQ(out.selected_score_sums.size(), 8u);
  for (float s : out.selected_score_sums) {
    EXPECT_GT(s, 2.0f / 5.0f - 1e-5);  // top-2 of 5 beats the uniform share
    EXPECT_LE(s, 1.0f + 1e-5);
  }
}

TEST(TopKGate, TopKEqualsExpertsSelectsAll) {
  auto out = run_gate(4, 8, 3, 3);
  for (std::size_t e = 0; e < 3; ++e) {
    EXPECT_EQ(out.plan.expert_tokens[e].size(), 4u);
  }
}

TEST(TopKGate, GateFrozenByDefault) {
  Rng rng(1);
  moe::TopKGate gate("g", 8, 4, 2, rng);
  EXPECT_EQ(gate.trainable_parameter_count(), 0u);
  Rng rng2(1);
  moe::TopKGate trainable("g", 8, 4, 2, rng2, /*trainable=*/true);
  EXPECT_EQ(trainable.trainable_parameter_count(), 32u);
}

TEST(RoutingWeights, GradcheckThroughRestrictedSoftmax) {
  Rng rng(3);
  ag::Variable logits = ag::Variable::leaf(ops::randn({3, 4}, rng), true);
  moe::RoutePlan plan;
  plan.num_tokens = 3;
  plan.num_experts = 4;
  plan.top_k = 2;
  plan.expert_tokens = {{0, 2}, {1}, {0, 1}, {2}};
  plan.validate();
  Rng wr(4);
  Tensor weights = ops::randn({6}, wr);
  ag::Variable w = ag::Variable::constant(weights);
  auto loss = [&] {
    return ag::sum(ag::mul(moe::routing_weights(logits, plan), w));
  };
  EXPECT_LT(ag::gradcheck_max_abs_err(logits, loss, 1e-2f), 1e-2f);
}

TEST(RoutingWeights, UnselectedLogitsGetZeroGrad) {
  Rng rng(5);
  ag::Variable logits = ag::Variable::leaf(ops::randn({2, 3}, rng), true);
  moe::RoutePlan plan;
  plan.num_tokens = 2;
  plan.num_experts = 3;
  plan.top_k = 1;
  plan.expert_tokens = {{0}, {1}, {}};
  ag::backward(ag::sum(moe::routing_weights(logits, plan)));
  // Token 0 only uses expert 0; experts 1/2 logits untouched.
  EXPECT_EQ(logits.grad().at(0, 1), 0.0f);
  EXPECT_EQ(logits.grad().at(0, 2), 0.0f);
  EXPECT_EQ(logits.grad().at(1, 0), 0.0f);
}

TEST(RoutingWeights, SingleSelectionIsConstantOne) {
  Rng rng(6);
  ag::Variable logits = ag::Variable::leaf(ops::randn({2, 3}, rng), false);
  moe::RoutePlan plan;
  plan.num_tokens = 2;
  plan.num_experts = 3;
  plan.top_k = 1;
  plan.expert_tokens = {{0}, {1}, {}};
  Tensor w = moe::routing_weights(logits, plan).value();
  EXPECT_NEAR(w[0], 1.0f, 1e-6);
  EXPECT_NEAR(w[1], 1.0f, 1e-6);
}

}  // namespace
}  // namespace vela
