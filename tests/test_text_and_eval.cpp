// Tests for the real-text corpus, perplexity evaluation, and the arg parser.
#include <gtest/gtest.h>

#include <cmath>

#include "data/text_corpus.h"
#include "model/evaluate.h"
#include "moe/moe_block.h"
#include "nn/optimizer.h"
#include "util/argparse.h"
#include "util/check.h"

namespace vela {
namespace {

TEST(TextCorpus, SlidingWindows) {
  data::TextCorpus corpus("abcdefgh", 4, 2);
  // windows: abcd, cdef, efgh.
  ASSERT_EQ(corpus.num_sequences(), 3u);
  EXPECT_EQ(corpus.decode(corpus.sequences()[0]), "abcd");
  EXPECT_EQ(corpus.decode(corpus.sequences()[1]), "cdef");
  EXPECT_EQ(corpus.decode(corpus.sequences()[2]), "efgh");
}

TEST(TextCorpus, DisjointStride) {
  data::TextCorpus corpus("abcdefgh", 4, 4);
  ASSERT_EQ(corpus.num_sequences(), 2u);
  EXPECT_EQ(corpus.decode(corpus.sequences()[1]), "efgh");
}

TEST(TextCorpus, VocabIsDistinctChars) {
  data::TextCorpus corpus("aabbcc", 2, 1);
  EXPECT_EQ(corpus.vocab_size(), 3u);
  for (const auto& seq : corpus.sequences()) {
    for (std::size_t id : seq) EXPECT_LT(id, 3u);
  }
}

TEST(TextCorpus, RejectsTooShortText) {
  EXPECT_THROW(data::TextCorpus("ab", 4, 1), CheckError);
  EXPECT_THROW(data::TextCorpus("abcdef", 1, 1), CheckError);
}

TEST(TextCorpus, ShakespeareSampleUsable) {
  const std::string text = data::TextCorpus::tiny_shakespeare_sample();
  EXPECT_GT(text.size(), 1000u);
  data::TextCorpus corpus(text, 32, 16);
  EXPECT_GT(corpus.num_sequences(), 50u);
  EXPECT_LT(corpus.vocab_size(), 64u);  // letters + punctuation
  // Round-trip through the tokenizer.
  EXPECT_EQ(corpus.decode(corpus.tokenizer().encode("Now is")), "Now is");
}

struct EvalFixture {
  EvalFixture()
      : cfg(model::ModelConfig::tiny_test()),
        backend(cfg.num_layers, cfg.num_experts, cfg.model_dim, cfg.hidden_dim,
                cfg.lora, 3),
        rng(5),
        model(cfg, &backend, rng) {}
  model::ModelConfig cfg;
  moe::LocalExpertBackend backend;
  Rng rng;
  model::MoETransformer model;
};

TEST(Evaluate, PerplexityIsExpOfLoss) {
  EvalFixture f;
  std::vector<std::vector<std::size_t>> dataset{{1, 2, 3, 4}, {5, 6, 7, 8}};
  auto result = model::evaluate_perplexity(f.model, dataset, 2);
  EXPECT_EQ(result.tokens, 6u);
  EXPECT_NEAR(result.perplexity, std::exp(result.mean_loss), 1e-9);
  // Untrained model on a uniform-ish vocab: perplexity near vocab size.
  EXPECT_GT(result.perplexity, 5.0);
}

TEST(Evaluate, BatchingInvariance) {
  // Token-weighted aggregation: the result must not depend on batch size,
  // even with ragged sequence lengths.
  EvalFixture f;
  std::vector<std::vector<std::size_t>> dataset{
      {1, 2, 3, 4, 5, 6}, {7, 8, 9}, {10, 11, 12, 13}, {14, 15}};
  auto one = model::evaluate_perplexity(f.model, dataset, 1);
  auto all = model::evaluate_perplexity(f.model, dataset, 4);
  auto two = model::evaluate_perplexity(f.model, dataset, 2);
  EXPECT_NEAR(one.mean_loss, all.mean_loss, 2e-3);
  EXPECT_NEAR(two.mean_loss, all.mean_loss, 2e-3);
  EXPECT_EQ(one.tokens, 5u + 2u + 3u + 1u);
}

TEST(Evaluate, TrainingImprovesPerplexity) {
  EvalFixture f;
  std::vector<std::vector<std::size_t>> dataset{{1, 2, 3, 1, 2, 3, 1, 2},
                                                {4, 5, 6, 4, 5, 6, 4, 5}};
  const auto before = model::evaluate_perplexity(f.model, dataset, 2);
  auto params = f.model.trainable_parameters();
  for (const auto& p : f.backend.trainable_parameters()) params.push_back(p);
  nn::SGD sgd(params, 0.05f);
  for (int i = 0; i < 30; ++i) {
    sgd.zero_grad();
    ag::backward(f.model.loss_batch(dataset));
    sgd.step();
  }
  const auto after = model::evaluate_perplexity(f.model, dataset, 2);
  EXPECT_LT(after.perplexity, before.perplexity);
}

TEST(ArgParser, OptionsAndFlags) {
  const char* argv[] = {"prog", "pos1",      "--steps", "50",
                        "--lr=0.001", "--batch", "8",   "--verbose"};
  ArgParser args(8, argv);
  EXPECT_EQ(args.get_size("steps", 0), 50u);
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.0), 0.001);
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_FALSE(args.get_flag("quiet"));
  EXPECT_EQ(args.get_size("batch", 0), 8u);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.program(), "prog");
}

TEST(ArgParser, GreedyValueBinding) {
  // A bare option consumes the following non-option token as its value —
  // use --name=value when a positional must follow.
  const char* argv[] = {"prog", "--verbose", "pos1"};
  ArgParser args(3, argv);
  EXPECT_EQ(args.get_string("verbose", ""), "pos1");
  EXPECT_TRUE(args.positional().empty());
}

TEST(ArgParser, FallbacksAndErrors) {
  const char* argv[] = {"prog", "--count", "abc"};
  ArgParser args(3, argv);
  EXPECT_EQ(args.get_string("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_THROW(args.get_double("count", 0.0), CheckError);
  const char* argv2[] = {"prog", "--frac", "1.5"};
  ArgParser args2(3, argv2);
  EXPECT_THROW(args2.get_size("frac", 0), CheckError);
}

TEST(ArgParser, FlagFollowedByOption) {
  const char* argv[] = {"prog", "--dry-run", "--steps", "3"};
  ArgParser args(4, argv);
  EXPECT_TRUE(args.get_flag("dry-run"));
  EXPECT_EQ(args.get_size("steps", 0), 3u);
}

}  // namespace
}  // namespace vela
