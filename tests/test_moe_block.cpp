#include "moe/moe_block.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace vela {
namespace {

struct Fixture {
  static constexpr std::size_t kDim = 8;
  static constexpr std::size_t kHidden = 16;
  static constexpr std::size_t kExperts = 4;
  static constexpr std::size_t kTopK = 2;

  Fixture()
      : backend(2, kExperts, kDim, kHidden, nn::LoRAConfig{2, 4.0f, true}, 42),
        rng(7),
        block("b", 0, kDim, kExperts, kTopK, rng, &backend) {}

  moe::LocalExpertBackend backend;
  Rng rng;
  moe::MoEBlock block;
};

TEST(MoEBlock, OutputShapeMatchesInput) {
  Fixture f;
  Rng xr(1);
  ag::Variable x = ag::Variable::constant(ops::randn({10, Fixture::kDim}, xr));
  Tensor y = f.block.forward(x).value();
  EXPECT_EQ(y.rows(), 10u);
  EXPECT_EQ(y.cols(), Fixture::kDim);
  EXPECT_TRUE(y.all_finite());
}

TEST(MoEBlock, LastPlanReflectsForward) {
  Fixture f;
  Rng xr(2);
  ag::Variable x = ag::Variable::constant(ops::randn({6, Fixture::kDim}, xr));
  f.block.forward(x);
  const moe::RoutePlan& plan = f.block.last_plan();
  EXPECT_EQ(plan.num_tokens, 6u);
  EXPECT_NO_THROW(plan.validate());
}

TEST(MoEBlock, RecordsStatsWhenRequested) {
  Fixture f;
  moe::RoutingStats stats(2, Fixture::kExperts);
  Rng xr(3);
  ag::Variable x = ag::Variable::constant(ops::randn({5, Fixture::kDim}, xr));
  f.block.forward(x, &stats);
  EXPECT_EQ(stats.tokens_seen(0), 5u);
  EXPECT_EQ(stats.tokens_seen(1), 0u);
  std::uint64_t total = 0;
  for (std::size_t e = 0; e < Fixture::kExperts; ++e) total += stats.count(0, e);
  EXPECT_EQ(total, 5u * Fixture::kTopK);
  EXPECT_EQ(stats.score_sums(0).size(), 5u);
}

TEST(MoEBlock, OutputIsConvexCombinationOfExpertOutputs) {
  // With k = E = 1-expert blocks the MoE output must equal that expert's
  // output exactly (combine weight 1).
  Rng rng(11);
  moe::LocalExpertBackend backend(1, 1, 8, 16, nn::LoRAConfig::disabled(), 5);
  moe::MoEBlock block("b", 0, 8, 1, 1, rng, &backend);
  Rng xr(12);
  Tensor x = ops::randn({4, 8}, xr);
  Tensor moe_out = block.forward(ag::Variable::constant(x)).value();
  Tensor direct =
      backend.expert(0, 0).forward(ag::Variable::constant(x)).value();
  EXPECT_TRUE(ops::allclose(moe_out, direct));
}

TEST(MoEBlock, GradFlowsToExpertAdaptersAndInput) {
  Fixture f;
  Rng xr(4);
  ag::Variable x =
      ag::Variable::leaf(ops::randn({6, Fixture::kDim}, xr), true);
  ag::backward(ag::sum(f.block.forward(x)));
  EXPECT_TRUE(x.has_grad());
  EXPECT_GT(ops::max_abs(x.grad()), 0.0f);
  std::size_t experts_with_grad = 0;
  for (const auto& p : f.backend.trainable_parameters()) {
    if (p.var.has_grad()) ++experts_with_grad;
  }
  EXPECT_GT(experts_with_grad, 0u);
}

TEST(MoEBlock, EndToEndGradcheckThroughDispatchAndCombine) {
  Rng rng(13);
  moe::LocalExpertBackend backend(1, 3, 6, 8, nn::LoRAConfig{2, 4.0f, true},
                                  17);
  moe::MoEBlock block("b", 0, 6, 3, 2, rng, &backend);
  Rng xr(14);
  ag::Variable x = ag::Variable::leaf(ops::randn({4, 6}, xr), true);
  auto loss = [&] {
    ag::Variable y = block.forward(x);
    return ag::sum(ag::mul(y, y));
  };
  EXPECT_LT(ag::gradcheck_max_abs_err(x, loss, 1e-2f), 3e-2f);
}

TEST(MoEBlock, DeterministicAcrossIdenticalConstruction) {
  Rng ra(21), rb(21);
  moe::LocalExpertBackend ba(1, 4, 8, 16, nn::LoRAConfig::disabled(), 9);
  moe::LocalExpertBackend bb(1, 4, 8, 16, nn::LoRAConfig::disabled(), 9);
  moe::MoEBlock blocka("b", 0, 8, 4, 2, ra, &ba);
  moe::MoEBlock blockb("b", 0, 8, 4, 2, rb, &bb);
  Rng xr(22);
  Tensor x = ops::randn({5, 8}, xr);
  EXPECT_TRUE(
      ops::allclose(blocka.forward(ag::Variable::constant(x)).value(),
                    blockb.forward(ag::Variable::constant(x)).value()));
}

TEST(LocalExpertBackend, SeededDeterminism) {
  moe::LocalExpertBackend a(2, 3, 8, 16, nn::LoRAConfig::disabled(), 33);
  moe::LocalExpertBackend b(2, 3, 8, 16, nn::LoRAConfig::disabled(), 33);
  Rng xr(1);
  Tensor x = ops::randn({3, 8}, xr);
  for (std::size_t l = 0; l < 2; ++l) {
    for (std::size_t e = 0; e < 3; ++e) {
      EXPECT_TRUE(ops::allclose(
          a.expert(l, e).forward(ag::Variable::constant(x)).value(),
          b.expert(l, e).forward(ag::Variable::constant(x)).value()));
    }
  }
}

TEST(LocalExpertBackend, DifferentSeedsDifferentExperts) {
  moe::LocalExpertBackend a(1, 1, 8, 16, nn::LoRAConfig::disabled(), 1);
  moe::LocalExpertBackend b(1, 1, 8, 16, nn::LoRAConfig::disabled(), 2);
  Rng xr(1);
  Tensor x = ops::randn({3, 8}, xr);
  EXPECT_FALSE(ops::allclose(
      a.expert(0, 0).forward(ag::Variable::constant(x)).value(),
      b.expert(0, 0).forward(ag::Variable::constant(x)).value()));
}

TEST(LocalExpertBackend, OutOfRangeAccessThrows) {
  moe::LocalExpertBackend a(1, 2, 8, 16, nn::LoRAConfig::disabled(), 1);
  EXPECT_THROW(a.expert(1, 0), CheckError);
  EXPECT_THROW(a.expert(0, 2), CheckError);
}

}  // namespace
}  // namespace vela
