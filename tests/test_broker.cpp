#include "core/expert_broker.h"

#include <gtest/gtest.h>

#include "core/expert_worker.h"
#include "core/master.h"
#include "moe/moe_block.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace vela {
namespace {

constexpr std::size_t kLayers = 2;
constexpr std::size_t kExperts = 4;
constexpr std::size_t kDim = 8;
constexpr std::size_t kHidden = 16;
constexpr std::uint64_t kSeed = 21;

nn::LoRAConfig lora() { return nn::LoRAConfig{2, 4.0f, true}; }

core::WorkerSpec spec() {
  core::WorkerSpec s;
  s.model_dim = kDim;
  s.hidden_dim = kHidden;
  s.lora = lora();
  s.base_seed = kSeed;
  s.wire_bits = 32;
  return s;
}

placement::Placement seq_placement(std::size_t workers) {
  placement::Placement p(kLayers, kExperts);
  for (std::size_t l = 0; l < kLayers; ++l) {
    for (std::size_t e = 0; e < kExperts; ++e) p.assign(l, e, e % workers);
  }
  return p;
}

struct MasterFixture {
  MasterFixture()
      : topology(cluster::ClusterConfig::paper_testbed()),
        master(topology, spec(), seq_placement(5), kLayers, kExperts) {}

  cluster::ClusterTopology topology;
  core::MasterProcess master;
};

TEST(Broker, ForwardMatchesLocalBackend) {
  MasterFixture f;
  moe::LocalExpertBackend local(kLayers, kExperts, kDim, kHidden, lora(),
                                kSeed);
  Rng xr(1);
  Tensor xs = ops::randn({5, kDim}, xr);
  for (std::size_t l = 0; l < kLayers; ++l) {
    for (std::size_t e = 0; e < kExperts; ++e) {
      ag::Variable remote = f.master.broker().expert_forward(
          l, e, ag::Variable::constant(xs));
      ag::Variable dense =
          local.expert_forward(l, e, ag::Variable::constant(xs));
      EXPECT_TRUE(ops::allclose(remote.value(), dense.value()))
          << "layer " << l << " expert " << e;
    }
  }
}

TEST(Broker, BatchedForwardMatchesIndividual) {
  MasterFixture f;
  Rng xr(2);
  std::vector<std::pair<std::size_t, ag::Variable>> groups;
  groups.emplace_back(0, ag::Variable::constant(ops::randn({3, kDim}, xr)));
  groups.emplace_back(1, ag::Variable::constant(ops::randn({2, kDim}, xr)));
  groups.emplace_back(3, ag::Variable::constant(ops::randn({4, kDim}, xr)));
  auto batched = f.master.broker().experts_forward(0, groups);
  ASSERT_EQ(batched.size(), 3u);
  for (std::size_t i = 0; i < groups.size(); ++i) {
    ag::Variable single =
        f.master.broker().expert_forward(0, groups[i].first, groups[i].second);
    EXPECT_TRUE(ops::allclose(batched[i].value(), single.value()));
  }
}

TEST(Broker, BackwardMatchesLocalGradients) {
  MasterFixture f;
  moe::LocalExpertBackend local(kLayers, kExperts, kDim, kHidden, lora(),
                                kSeed);
  Rng xr(3);
  Tensor xs = ops::randn({4, kDim}, xr);

  ag::Variable x_remote = ag::Variable::leaf(xs, true);
  ag::backward(ag::sum(f.master.broker().expert_forward(1, 2, x_remote)));

  ag::Variable x_local = ag::Variable::leaf(xs, true);
  ag::backward(ag::sum(local.expert_forward(1, 2, x_local)));

  EXPECT_TRUE(ops::allclose(x_remote.grad(), x_local.grad(), 1e-4f, 1e-3f));
}

TEST(Broker, StepRecordHasForwardAndBackwardPhases) {
  MasterFixture f;
  f.master.broker().begin_step();
  Rng xr(4);
  ag::Variable x =
      ag::Variable::leaf(ops::randn({4, kDim}, xr), true);
  ag::backward(ag::sum(f.master.broker().expert_forward(0, 1, x)));
  auto record = f.master.broker().finish_step();
  ASSERT_EQ(record.phases.size(), 2u * kLayers);
  // Expert 1 lives on worker 1: forward phase 0 and backward phase for
  // layer 0 (the last phase) must carry bytes on worker 1 only.
  EXPECT_GT(record.phases[0].bytes[1], 0u);
  EXPECT_EQ(record.phases[0].bytes[0], 0u);
  EXPECT_GT(record.phases.back().bytes[1], 0u);
  // Layer 1 phases are empty.
  EXPECT_EQ(record.phases[1].bytes[1], 0u);
}

TEST(Broker, FinishStepResetsLedger) {
  MasterFixture f;
  Rng xr(5);
  f.master.broker().expert_forward(
      0, 0, ag::Variable::constant(ops::randn({2, kDim}, xr)));
  auto first = f.master.broker().finish_step();
  EXPECT_GT(first.phases[0].bytes[0], 0u);
  auto second = f.master.broker().finish_step();
  EXPECT_EQ(second.phases[0].bytes[0], 0u);
}

TEST(Broker, TrafficMeterSeesOnlyCrossNodeBytes) {
  MasterFixture f;
  Rng xr(6);
  Tensor xs = ops::randn({4, kDim}, xr);
  // Expert 0 → worker 0 (device 1, master's node): internal only.
  f.master.meter().discard_current();
  f.master.broker().expert_forward(0, 0, ag::Variable::constant(xs));
  EXPECT_EQ(f.master.meter().current_external_bytes(), 0u);
  EXPECT_GT(f.master.meter().current_total_bytes(), 0u);
  // Expert 2 → worker 2 (device 3, node 1): external.
  f.master.broker().expert_forward(0, 2, ag::Variable::constant(xs));
  EXPECT_GT(f.master.meter().current_external_bytes(), 0u);
}

TEST(Master, ApplyPlacementMovesExpertAndPreservesOutputs) {
  MasterFixture f;
  Rng xr(7);
  Tensor xs = ops::randn({3, kDim}, xr);
  Tensor before =
      f.master.broker().expert_forward(0, 2, ag::Variable::constant(xs)).value();

  placement::Placement next = seq_placement(5);
  next.assign(0, 2, 4);  // move expert (0,2) from worker 2 to worker 4
  f.master.apply_placement(next);
  EXPECT_EQ(f.master.placement().worker_of(0, 2), 4u);

  Tensor after =
      f.master.broker().expert_forward(0, 2, ag::Variable::constant(xs)).value();
  EXPECT_TRUE(ops::allclose(before, after));
}

TEST(Master, OptimizerBroadcastCompletes) {
  MasterFixture f;
  f.master.broadcast_optimizer_step(0);
  f.master.broadcast_optimizer_step(1);
  SUCCEED();
}

TEST(Master, ShutdownIsIdempotent) {
  MasterFixture f;
  f.master.shutdown();
  f.master.shutdown();
  SUCCEED();
}

}  // namespace
}  // namespace vela
