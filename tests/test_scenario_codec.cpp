// Property tests for the core::Scenario "key=value;" codec — the string a
// master hands every remote vela_node, so serialize→parse MUST be the
// identity on every field and parse MUST stay strict: a typo'd key or a
// malformed pair is a config error surfaced at parse time, never a silently
// defaulted knob on one process of a fleet.
#include "core/scenario.h"

#include <gtest/gtest.h>

#include <string>

#include "util/check.h"

namespace vela {
namespace {

core::Scenario nondefault_scenario() {
  core::Scenario sc;
  sc.model = "tiny_mistral";
  sc.workers = 5;
  sc.seed = 99;
  sc.wire_bits = 8;
  sc.quantize_wire = true;
  sc.wire_dtype = comm::WireDtype::kInt8;
  sc.q8_block = 32;
  sc.corpus = "alpaca";
  sc.corpus_seed = 1234;
  sc.corpus_domains = 3;
  sc.dataset_sequences = 7;
  sc.sequence_length = 11;
  sc.batch_size = 2;
  sc.batch_seed = 77;
  sc.steps = 13;
  return sc;
}

void expect_equal(const core::Scenario& a, const core::Scenario& b) {
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.workers, b.workers);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.wire_bits, b.wire_bits);
  EXPECT_EQ(a.quantize_wire, b.quantize_wire);
  EXPECT_EQ(a.wire_dtype, b.wire_dtype);
  EXPECT_EQ(a.q8_block, b.q8_block);
  EXPECT_EQ(a.corpus, b.corpus);
  EXPECT_EQ(a.corpus_seed, b.corpus_seed);
  EXPECT_EQ(a.corpus_domains, b.corpus_domains);
  EXPECT_EQ(a.dataset_sequences, b.dataset_sequences);
  EXPECT_EQ(a.sequence_length, b.sequence_length);
  EXPECT_EQ(a.batch_size, b.batch_size);
  EXPECT_EQ(a.batch_seed, b.batch_seed);
  EXPECT_EQ(a.steps, b.steps);
}

TEST(ScenarioCodec, DefaultRoundTripsExactly) {
  const core::Scenario sc;
  expect_equal(core::Scenario::parse(sc.serialize()), sc);
}

TEST(ScenarioCodec, EveryFieldSurvivesRoundTrip) {
  const core::Scenario sc = nondefault_scenario();
  expect_equal(core::Scenario::parse(sc.serialize()), sc);
  // Serialize is canonical: a second round trip produces identical text.
  EXPECT_EQ(core::Scenario::parse(sc.serialize()).serialize(),
            sc.serialize());
}

TEST(ScenarioCodec, WireDtypeSerializesByName) {
  // The dtype travels as a NAME — a kDefault scenario must reach a remote
  // vela_node still as "default" so the node resolves VELA_WIRE_DTYPE in
  // ITS environment, identically to the master's own resolution.
  core::Scenario sc;
  EXPECT_NE(sc.serialize().find("wire_dtype=default"), std::string::npos);
  sc.wire_dtype = comm::WireDtype::kInt8;
  EXPECT_NE(sc.serialize().find("wire_dtype=int8"), std::string::npos);
  EXPECT_EQ(core::Scenario::parse(sc.serialize()).wire_dtype,
            comm::WireDtype::kInt8);
}

TEST(ScenarioCodec, UnknownKeyRejected) {
  EXPECT_THROW(core::Scenario::parse("model=tiny_test;wire_dytpe=int8"),
               CheckError);
  EXPECT_THROW(core::Scenario::parse("bogus=1"), CheckError);
}

TEST(ScenarioCodec, MalformedPairsRejected) {
  // No '=' at all, and a pair that starts with '=' (empty key).
  EXPECT_THROW(core::Scenario::parse("model"), CheckError);
  EXPECT_THROW(core::Scenario::parse("=tiny_test"), CheckError);
}

TEST(ScenarioCodec, EmptyValuesRejectedForTypedKeys) {
  EXPECT_THROW(core::Scenario::parse("workers="), CheckError);
  EXPECT_THROW(core::Scenario::parse("wire_dtype="), CheckError);
  EXPECT_THROW(core::Scenario::parse("steps="), CheckError);
  // Non-numeric values for numeric keys are config errors too.
  EXPECT_THROW(core::Scenario::parse("workers=three"), CheckError);
  EXPECT_THROW(core::Scenario::parse("q8_block=64x"), CheckError);
}

TEST(ScenarioCodec, EmptyPairsBetweenSeparatorsTolerated) {
  // Trailing/doubled ';' separators carry no information and are skipped —
  // "a=1;;b=2;" parses like "a=1;b=2".
  const core::Scenario sc =
      core::Scenario::parse(";;model=tiny_test;;workers=2;;");
  EXPECT_EQ(sc.model, "tiny_test");
  EXPECT_EQ(sc.workers, 2u);
}

TEST(ScenarioCodec, UnknownPresetsRejectedAtParseTime) {
  // parse() resolves the model/corpus presets eagerly so a typo fails on
  // the master, not mid-assembly on a remote node.
  EXPECT_THROW(core::Scenario::parse("model=tiny_typo"), CheckError);
  EXPECT_THROW(core::Scenario::parse("corpus=imaginary"), CheckError);
}

TEST(ScenarioCodec, ValueWithEqualsSignKeepsEverythingAfterFirst) {
  // '=' binds at the FIRST occurrence; later '=' characters belong to the
  // value and are rejected by the preset check, not mis-split into keys.
  EXPECT_THROW(core::Scenario::parse("model=tiny=test"), CheckError);
}

}  // namespace
}  // namespace vela
