// The overlap-aware step model (`ctest -L overlap`, DESIGN.md §8).
//
// Two contracts:
//  * the pipelined clock generalizes Eqs. (5)–(7) — depth K <= 1 reproduces
//    the sequential model bit-for-bit, deeper pipelines follow the closed
//    form T_p = max_w[(t_w + c)/K + (K−1)/K · max(t_w, c)] and never beat
//    the critical-path bound max(t_w, c);
//  * the EP analytic model is untouched by this PR — its step times are
//    pinned to the exact doubles the pre-overlap clock produced, so any
//    accidental drift in the all-to-all/sync/all-reduce terms is caught
//    byte-for-byte.
#include "comm/comm_clock.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace vela {
namespace {

cluster::ClusterTopology paper_topo() {
  return cluster::ClusterTopology(cluster::ClusterConfig::paper_testbed());
}

// Deterministic non-trivial VELA record: 4 phases, every worker loaded with
// a distinct byte count and message count.
comm::VelaStepRecord pinned_vela_record(std::size_t workers) {
  comm::VelaStepRecord vr;
  for (int p = 0; p < 4; ++p) {
    comm::MasterWorkerPhase ph;
    ph.bytes.assign(workers, 0);
    ph.messages.assign(workers, 0);
    for (std::size_t k = 0; k < workers; ++k) {
      ph.bytes[k] = 500000ull * (k + 1) + 13ull * p;
      ph.messages[k] = static_cast<std::uint32_t>(2 + (k % 3));
    }
    vr.phases.push_back(ph);
  }
  return vr;
}

// Deterministic EP record: two all-to-all phases with a fixed byte pattern
// plus a backbone all-reduce.
comm::EpStepRecord pinned_ep_record(std::size_t devices) {
  comm::EpStepRecord rec;
  for (int p = 0; p < 2; ++p) {
    comm::AllToAllPhase phase;
    phase.bytes.assign(devices, std::vector<std::uint64_t>(devices, 0));
    for (std::size_t i = 0; i < devices; ++i) {
      for (std::size_t j = 0; j < devices; ++j) {
        if (i != j) {
          phase.bytes[i][j] =
              1000000ull * (i + 1) + 37ull * j + 1000ull * static_cast<unsigned>(p);
        }
      }
    }
    rec.phases.push_back(phase);
  }
  rec.allreduce_bytes_per_device = 4200000;
  return rec;
}

TEST(OverlapClock, DepthZeroAndOneMatchSequentialExactly) {
  auto topo = paper_topo();
  comm::CommClockConfig cfg;
  cfg.compute_seconds = 1.9;
  comm::CommClock clock(&topo, cfg);
  const auto record = pinned_vela_record(topo.num_workers());
  // Not NEAR: the sequential model IS the K<=1 path, same arithmetic.
  EXPECT_EQ(clock.vela_overlap_step_seconds(record, 0),
            clock.vela_step_seconds(record));
  EXPECT_EQ(clock.vela_overlap_step_seconds(record, 1),
            clock.vela_step_seconds(record));
  EXPECT_EQ(clock.vela_overlap_comm_seconds(record, 0),
            clock.vela_comm_seconds(record));
  EXPECT_EQ(clock.vela_overlap_comm_seconds(record, 1),
            clock.vela_comm_seconds(record));
}

TEST(OverlapClock, PipelineFormulaMatchesClosedForm) {
  // One cross-node worker (worker 2 = device 3: 1.17 GB/s, 200 µs/message),
  // three identical phases, compute 1.2 s → c = 0.4 s per phase.
  auto topo = paper_topo();
  comm::CommClockConfig cfg;
  cfg.compute_seconds = 1.2;
  comm::CommClock clock(&topo, cfg);
  comm::VelaStepRecord record;
  for (int p = 0; p < 3; ++p) {
    comm::MasterWorkerPhase ph;
    ph.bytes.assign(topo.num_workers(), 0);
    ph.messages.assign(topo.num_workers(), 0);
    ph.bytes[2] = 11'700'000;  // t = 10 ms
    record.phases.push_back(ph);
  }
  // K = 4: T_p = (0.01 + 0.4)/4 + (3/4)·max(0.01, 0.4)
  //            = 0.1025 + 0.3 = 0.4025; step = 3 · 0.4025.
  EXPECT_NEAR(clock.vela_overlap_step_seconds(record, 4), 3 * 0.4025, 1e-9);
  // Comm view subtracts the full compute budget.
  EXPECT_NEAR(clock.vela_overlap_comm_seconds(record, 4), 3 * 0.4025 - 1.2,
              1e-9);
}

TEST(OverlapClock, MonotoneNonIncreasingInDepthAndBoundedBelow) {
  // dT_p/dK = −min(t, c)/K² <= 0: deeper pipelines can only help, and no
  // depth beats the per-phase critical path max(t, c).
  auto topo = paper_topo();
  comm::CommClockConfig cfg;
  cfg.compute_seconds = 1.9;
  comm::CommClock clock(&topo, cfg);
  const auto record = pinned_vela_record(topo.num_workers());
  double prev = clock.vela_overlap_step_seconds(record, 1);
  for (std::size_t k = 2; k <= 64; k *= 2) {
    const double t = clock.vela_overlap_step_seconds(record, k);
    EXPECT_LE(t, prev + 1e-12) << "depth " << k << " regressed the model";
    prev = t;
  }
  // Lower bounds: the step can hide comm under compute (or vice versa) but
  // never shrink either.
  EXPECT_GE(prev, cfg.compute_seconds);
  EXPECT_GE(prev, clock.vela_comm_seconds(record));
}

TEST(OverlapClock, OverlapHidesTransferUnderCompute) {
  // Compute-dominated phases: at depth 8 all but 1/8 of the transfer hides
  // under compute, so the step must be strictly below sequential and within
  // (t + c)/K of the compute floor.
  auto topo = paper_topo();
  comm::CommClockConfig cfg;
  cfg.compute_seconds = 1.9;
  comm::CommClock clock(&topo, cfg);
  const auto record = pinned_vela_record(topo.num_workers());
  const double seq = clock.vela_step_seconds(record);
  const double piped = clock.vela_overlap_step_seconds(record, 8);
  EXPECT_LT(piped, seq);
  EXPECT_GT(seq - piped, 0.0);
}

// --- EP model pinned byte-for-byte (satellite: the all-to-all sync-cost
// --- term must be unchanged by the overlap PR) ------------------------------

TEST(OverlapClock, EpStepModelPinnedToPreOverlapValues) {
  auto topo = paper_topo();
  ASSERT_EQ(topo.num_devices(), 6u);
  ASSERT_EQ(topo.num_workers(), 5u);
  comm::CommClockConfig cfg;
  cfg.compute_seconds = 1.9;
  comm::CommClock clock(&topo, cfg);

  const auto rec = pinned_ep_record(topo.num_devices());
  // Exact doubles produced by the pre-overlap clock on this record (printed
  // with %.17g, which round-trips doubles). EXPECT_EQ, not NEAR: any change
  // to the EP arithmetic is a regression this PR promised not to make.
  EXPECT_EQ(clock.ep_comm_seconds(rec), 0.061728153823735456);
  EXPECT_EQ(clock.ep_step_seconds(rec), 1.9617281538237354);

  comm::EpStepRecord no_allreduce = rec;
  no_allreduce.allreduce_bytes_per_device = 0;
  EXPECT_EQ(clock.ep_comm_seconds(no_allreduce), 0.055745247840829473);
}

TEST(OverlapClock, VelaSequentialModelPinnedToPreOverlapValues) {
  auto topo = paper_topo();
  comm::CommClockConfig cfg;
  cfg.compute_seconds = 1.9;
  comm::CommClock clock(&topo, cfg);
  const auto vr = pinned_vela_record(topo.num_workers());
  EXPECT_EQ(clock.vela_comm_seconds(vr), 0.010947075213675213);
  EXPECT_EQ(clock.vela_step_seconds(vr), 1.910947075213675);
}

}  // namespace
}  // namespace vela
