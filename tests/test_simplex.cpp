#include "placement/lp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace vela {
namespace {

using lp::LinearProgram;
using lp::LpStatus;
using lp::SparseRow;

TEST(Simplex, TrivialBoundedMinimum) {
  // min x0 s.t. x0 >= 2 (as -x0 <= -2).
  LinearProgram prog;
  prog.num_vars = 1;
  prog.objective = {1.0};
  prog.add_leq({{{0, -1.0}}, -2.0});
  auto sol = lp::solve(prog);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-7);
  EXPECT_NEAR(sol.objective, 2.0, 1e-7);
}

TEST(Simplex, ClassicTwoVariableMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (min of negative).
  LinearProgram prog;
  prog.num_vars = 2;
  prog.objective = {-3.0, -5.0};
  prog.add_leq({{{0, 1.0}}, 4.0});
  prog.add_leq({{{1, 2.0}}, 12.0});
  prog.add_leq({{{0, 3.0}, {1, 2.0}}, 18.0});
  auto sol = lp::solve(prog);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-7);
  EXPECT_NEAR(sol.objective, -36.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 2y s.t. x + y = 10, x <= 4.
  LinearProgram prog;
  prog.num_vars = 2;
  prog.objective = {1.0, 2.0};
  prog.add_equality({{{0, 1.0}, {1, 1.0}}, 10.0});
  prog.add_leq({{{0, 1.0}}, 4.0});
  auto sol = lp::solve(prog);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  // x <= 1 and x >= 3 simultaneously.
  LinearProgram prog;
  prog.num_vars = 1;
  prog.objective = {1.0};
  prog.add_leq({{{0, 1.0}}, 1.0});
  prog.add_leq({{{0, -1.0}}, -3.0});
  EXPECT_EQ(lp::solve(prog).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x with only x >= 0.
  LinearProgram prog;
  prog.num_vars = 1;
  prog.objective = {-1.0};
  prog.add_leq({{{0, -1.0}}, 0.0});  // -x <= 0, always true
  EXPECT_EQ(lp::solve(prog).status, LpStatus::kUnbounded);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple constraints active at the optimum (degenerate vertex).
  LinearProgram prog;
  prog.num_vars = 2;
  prog.objective = {-1.0, -1.0};
  prog.add_leq({{{0, 1.0}}, 1.0});
  prog.add_leq({{{0, 1.0}, {1, 1.0}}, 1.0});
  prog.add_leq({{{1, 1.0}}, 1.0});
  prog.add_leq({{{0, 2.0}, {1, 1.0}}, 2.0});
  auto sol = lp::solve(prog);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -1.0, 1e-7);
}

TEST(Simplex, RedundantEqualityHandled) {
  // Same equality twice: phase 1 leaves a degenerate artificial basic row.
  LinearProgram prog;
  prog.num_vars = 2;
  prog.objective = {1.0, 1.0};
  prog.add_equality({{{0, 1.0}, {1, 1.0}}, 4.0});
  prog.add_equality({{{0, 2.0}, {1, 2.0}}, 8.0});
  auto sol = lp::solve(prog);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 4.0, 1e-7);
}

TEST(Simplex, NegativeRhsNormalized) {
  // -x - y <= -5 (i.e. x + y >= 5), min x + y.
  LinearProgram prog;
  prog.num_vars = 2;
  prog.objective = {1.0, 1.0};
  prog.add_leq({{{0, -1.0}, {1, -1.0}}, -5.0});
  auto sol = lp::solve(prog);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-7);
}

// Property test: LP assignment relaxations with a min-max objective are
// verified against brute force over all binary assignments.
struct MiniInstance {
  std::size_t workers;
  std::size_t experts;
  std::uint64_t seed;
};

class SimplexVsBruteForce : public ::testing::TestWithParam<MiniInstance> {};

TEST_P(SimplexVsBruteForce, LpLowerBoundsBruteForceOptimum) {
  const auto param = GetParam();
  Rng rng(param.seed);
  // Cost of placing expert e on worker n.
  std::vector<std::vector<double>> cost(param.workers,
                                        std::vector<double>(param.experts));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.uniform(0.1, 2.0);
  }
  const std::size_t capacity = (param.experts + 1) / 2 + 1;

  // LP: min λ s.t. Σ_n x_ne = 1, Σ_e x_ne <= cap, Σ_e cost·x − λ <= 0.
  LinearProgram prog;
  prog.num_vars = param.workers * param.experts + 1;
  const std::size_t lambda = param.workers * param.experts;
  prog.objective.assign(prog.num_vars, 0.0);
  prog.objective[lambda] = 1.0;
  for (std::size_t e = 0; e < param.experts; ++e) {
    SparseRow row;
    row.rhs = 1.0;
    for (std::size_t n = 0; n < param.workers; ++n) {
      row.coeffs.emplace_back(n * param.experts + e, 1.0);
    }
    prog.add_equality(std::move(row));
  }
  for (std::size_t n = 0; n < param.workers; ++n) {
    SparseRow cap_row;
    cap_row.rhs = static_cast<double>(capacity);
    SparseRow time_row;
    time_row.rhs = 0.0;
    for (std::size_t e = 0; e < param.experts; ++e) {
      cap_row.coeffs.emplace_back(n * param.experts + e, 1.0);
      time_row.coeffs.emplace_back(n * param.experts + e, cost[n][e]);
    }
    time_row.coeffs.emplace_back(lambda, -1.0);
    prog.add_leq(std::move(cap_row));
    prog.add_leq(std::move(time_row));
  }
  auto sol = lp::solve(prog);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);

  // Brute force the binary optimum.
  double best = 1e100;
  std::vector<std::size_t> assign(param.experts, 0);
  const std::size_t combos =
      static_cast<std::size_t>(std::pow(param.workers, param.experts));
  for (std::size_t mask = 0; mask < combos; ++mask) {
    std::size_t m = mask;
    std::vector<double> worker_cost(param.workers, 0.0);
    std::vector<std::size_t> load(param.workers, 0);
    for (std::size_t e = 0; e < param.experts; ++e) {
      const std::size_t n = m % param.workers;
      m /= param.workers;
      worker_cost[n] += cost[n][e];
      ++load[n];
    }
    bool ok = true;
    for (std::size_t n = 0; n < param.workers; ++n) {
      ok = ok && load[n] <= capacity;
    }
    if (!ok) continue;
    double t = 0.0;
    for (double c : worker_cost) t = std::max(t, c);
    best = std::min(best, t);
  }
  // The relaxation must lower-bound the integer optimum (within tolerance).
  EXPECT_LE(sol.objective, best + 1e-6);
  // And it should not be absurdly loose on these tiny instances.
  EXPECT_GE(sol.objective, best * 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    Instances, SimplexVsBruteForce,
    ::testing::Values(MiniInstance{2, 4, 1}, MiniInstance{2, 5, 2},
                      MiniInstance{3, 4, 3}, MiniInstance{3, 5, 4},
                      MiniInstance{2, 6, 5}, MiniInstance{3, 6, 6}));

TEST(Simplex, SolvesPlacementScaleInstanceQuickly) {
  // The real Mixtral-size LP: N=6, L=32, E=8 → 1568 + 32 vars.
  Rng rng(99);
  const std::size_t n = 6, layers = 32, experts = 8;
  LinearProgram prog;
  prog.num_vars = n * layers * experts + layers;
  prog.objective.assign(prog.num_vars, 0.0);
  const auto xidx = [&](std::size_t w, std::size_t l, std::size_t e) {
    return (w * layers + l) * experts + e;
  };
  for (std::size_t l = 0; l < layers; ++l) {
    prog.objective[n * layers * experts + l] = 1.0;
  }
  for (std::size_t l = 0; l < layers; ++l) {
    for (std::size_t e = 0; e < experts; ++e) {
      SparseRow row;
      row.rhs = 1.0;
      for (std::size_t w = 0; w < n; ++w) {
        row.coeffs.emplace_back(xidx(w, l, e), 1.0);
      }
      prog.add_equality(std::move(row));
    }
  }
  for (std::size_t w = 0; w < n; ++w) {
    SparseRow cap;
    cap.rhs = 56.0;
    for (std::size_t l = 0; l < layers; ++l) {
      for (std::size_t e = 0; e < experts; ++e) {
        cap.coeffs.emplace_back(xidx(w, l, e), 1.0);
      }
    }
    prog.add_leq(std::move(cap));
    for (std::size_t l = 0; l < layers; ++l) {
      SparseRow row;
      row.rhs = 0.0;
      for (std::size_t e = 0; e < experts; ++e) {
        row.coeffs.emplace_back(xidx(w, l, e), rng.uniform(0.01, 1.0));
      }
      row.coeffs.emplace_back(n * layers * experts + l, -1.0);
      prog.add_leq(std::move(row));
    }
  }
  auto sol = lp::solve(prog);
  EXPECT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_GT(sol.objective, 0.0);
}

}  // namespace
}  // namespace vela
