// Degrade-and-continue tests (`ctest -L degrade`, DESIGN.md §11).
//
// The elastic-fault-tolerance contract: a worker that exhausts its respawn
// budget is declared dead, the placement is re-solved for the survivors
// (degrade_placement — healthy assignments kept, orphans to the cheapest
// survivor), orphaned experts are live-migrated from the freshest recovery
// source with their bytes charged to the recovery phase, and training
// continues at reduced capacity. The equivalence gate at the bottom pins
// the strongest form: a kill-then-degrade run matches a fresh
// reduced-topology run's loss trajectory bit for bit.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "cluster/topology.h"
#include "comm/fault_injector.h"
#include "core/master.h"
#include "core/vela_system.h"
#include "data/corpus.h"
#include "placement/degrade.h"
#include "placement/placement.h"
#include "tensor/tensor.h"
#include "util/audit.h"
#include "util/clock.h"

namespace vela {
namespace {

core::WorkerSpec spec() {
  core::WorkerSpec s;
  s.model_dim = 8;
  s.hidden_dim = 16;
  s.lora = nn::LoRAConfig{2, 4.0f, true};
  s.base_seed = 3;
  s.wire_bits = 32;
  return s;
}

placement::Placement one_layer_placement(std::size_t experts,
                                         std::size_t workers) {
  placement::Placement p(1, experts);
  for (std::size_t e = 0; e < experts; ++e) p.assign(0, e, e % workers);
  return p;
}

core::RetryPolicy fast_policy() {
  core::RetryPolicy policy;
  policy.timeout = std::chrono::milliseconds(60);
  policy.max_retries = 4;
  policy.backoff = 2.0;
  return policy;
}

void expect_same_placement(const placement::Placement& a,
                           const placement::Placement& b) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  ASSERT_EQ(a.num_experts(), b.num_experts());
  for (std::size_t l = 0; l < a.num_layers(); ++l) {
    for (std::size_t e = 0; e < a.num_experts(); ++e) {
      EXPECT_EQ(a.worker_of(l, e), b.worker_of(l, e))
          << "expert (" << l << ", " << e << ")";
    }
  }
}

// --- degrade_placement -------------------------------------------------------

TEST(DegradePlacement, OrphansGoToTheLeastLoadedSurvivor) {
  placement::Placement cur(1, 4);
  cur.assign(0, 0, 0);
  cur.assign(0, 1, 1);
  cur.assign(0, 2, 2);
  cur.assign(0, 3, 0);  // w0 carries 2, w1 and w2 carry 1 each
  const std::vector<bool> dead = {false, true, false};

  const placement::Placement next =
      placement::degrade_placement(cur, dead, nullptr);
  // Healthy assignments are untouched …
  EXPECT_EQ(next.worker_of(0, 0), 0u);
  EXPECT_EQ(next.worker_of(0, 2), 2u);
  EXPECT_EQ(next.worker_of(0, 3), 0u);
  // … and the orphan goes to the least-loaded survivor (w2: 1 < w0: 2).
  EXPECT_EQ(next.worker_of(0, 1), 2u);
}

TEST(DegradePlacement, LoadTiesBreakTowardTheLowerWorkerId) {
  placement::Placement cur(1, 3);
  cur.assign(0, 0, 0);
  cur.assign(0, 1, 1);
  cur.assign(0, 2, 2);
  const std::vector<bool> dead = {false, true, false};

  const placement::Placement next =
      placement::degrade_placement(cur, dead, nullptr);
  EXPECT_EQ(next.worker_of(0, 1), 0u);  // w0 and w2 tie at load 1
}

placement::PlacementProblem three_worker_problem() {
  placement::PlacementProblem pb;
  pb.num_workers = 3;
  pb.num_layers = 1;
  pb.num_experts = 3;
  pb.probability = Tensor::ones({1, 3});
  // Worker 2's fat pipe makes it the cheapest host for any orphan.
  pb.bandwidth = {1e6, 1e6, 8e6};
  pb.capacity = {2, 2, 2};
  pb.worker_node = {0, 1, 2};
  pb.master_node = 0;
  pb.tokens_per_step = 64.0;
  pb.bytes_per_token = 4.0;
  return pb;
}

TEST(DegradePlacement, CostModelPrefersTheCheapSurvivor) {
  placement::Placement cur(1, 3);
  cur.assign(0, 0, 0);
  cur.assign(0, 1, 1);
  cur.assign(0, 2, 2);
  const std::vector<bool> dead = {false, true, false};
  const placement::PlacementProblem pb = three_worker_problem();

  const placement::Placement next =
      placement::degrade_placement(cur, dead, &pb);
  // Without the cost model the load tie broke toward w0; with it the
  // orphan pays the lower coefficient on w2's faster link.
  EXPECT_EQ(next.worker_of(0, 1), 2u);
  EXPECT_EQ(next.worker_of(0, 0), 0u);
  EXPECT_EQ(next.worker_of(0, 2), 2u);
}

TEST(DegradePlacement, FullSurvivorsRelaxCapacityInsteadOfStalling) {
  placement::Placement cur(1, 3);
  cur.assign(0, 0, 0);
  cur.assign(0, 1, 1);
  cur.assign(0, 2, 2);
  const std::vector<bool> dead = {false, true, false};
  placement::PlacementProblem pb = three_worker_problem();
  pb.capacity = {1, 1, 1};  // every survivor is already full

  const placement::Placement next =
      placement::degrade_placement(cur, dead, &pb);
  // Training at reduced capacity beats stalling: the cap is relaxed and
  // the orphan still lands on the cheapest survivor.
  EXPECT_EQ(next.worker_of(0, 1), 2u);
  const auto loads = next.worker_loads(3);
  EXPECT_EQ(loads[2], 2u);
}

TEST(DegradePlacement, DeterministicAcrossCallsAndMultipleDeaths) {
  placement::Placement cur(2, 4);
  for (std::size_t l = 0; l < 2; ++l) {
    for (std::size_t e = 0; e < 4; ++e) cur.assign(l, e, e % 4);
  }
  const std::vector<bool> dead = {false, true, false, true};

  const placement::Placement a =
      placement::degrade_placement(cur, dead, nullptr);
  const placement::Placement b =
      placement::degrade_placement(cur, dead, nullptr);
  expect_same_placement(a, b);
  for (std::size_t l = 0; l < 2; ++l) {
    for (std::size_t e = 0; e < 4; ++e) {
      const std::size_t w = a.worker_of(l, e);
      EXPECT_TRUE(w == 0 || w == 2) << "expert (" << l << ", " << e
                                    << ") placed on dead worker " << w;
    }
  }
}

// --- MasterProcess degrade path ----------------------------------------------

TEST(MasterDegrade, MigratesOrphansAndMetersRecoveryBytes) {
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  core::MasterProcess master(topology, spec(), one_layer_placement(4, 5), 1,
                             4);
  master.set_retry_policy(fast_policy());
  master.snapshot_experts();
  const Tensor before = master.query_expert_state(0, 1);
  const std::size_t recovery_before = master.recovery_bytes();

  master.mark_worker_dead(1);
  EXPECT_TRUE(master.dead_mask()[1]);
  EXPECT_EQ(master.num_live_workers(), 4u);
  EXPECT_FALSE(master.probe_worker(1));

  const placement::Placement next = placement::degrade_placement(
      master.placement(), master.dead_mask(), nullptr);
  master.degrade_to(next);
  EXPECT_NE(master.placement().worker_of(0, 1), 1u);

  // The orphan was restored bit-exactly from the snapshot on its new host.
  const Tensor after = master.query_expert_state(0, 1);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i], before[i]);
  }
  // Migration bytes were tallied and charged to the recovery phase.
  EXPECT_GT(master.recovery_bytes(), recovery_before);
  EXPECT_GT(master.meter().lifetime_recovery_bytes(), 0u);
  master.shutdown();
  master.shutdown();  // robust with a dead worker, twice
}

TEST(MasterDegrade, DeadStandbyHostIsSkippedAsRecoverySource) {
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  core::MasterProcess master(topology, spec(), one_layer_placement(4, 5), 1,
                             4);
  master.set_retry_policy(fast_policy());
  master.add_standby_replica(0, 1, 4);  // worker 4 hosts no primaries
  master.snapshot_experts();
  const Tensor before = master.query_expert_state(0, 1);

  // The standby's host dies first, then the primary's: recovery must fall
  // back to the snapshot without ever touching the dead standby.
  master.mark_worker_dead(4);
  master.mark_worker_dead(1);
  EXPECT_EQ(master.num_live_workers(), 3u);
  const placement::Placement next = placement::degrade_placement(
      master.placement(), master.dead_mask(), nullptr);
  master.degrade_to(next);

  const Tensor after = master.query_expert_state(0, 1);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i], before[i]);
  }
  master.shutdown();
}

// A scripted connection death (sever + refuse every reconnect) must kill a
// worker identically on both backends: the probe that hits the sever fails
// at the same index, and the degrade that follows computes the same
// placement and restores the same bytes.
TEST(MasterDegrade, ScriptedSeverKillsIdenticallyOnBothBackends) {
  ::setenv("VELA_RECONNECT_ATTEMPTS", "2", 1);
  struct Outcome {
    int first_failed_probe = -1;
    std::vector<std::size_t> declared_dead;
    placement::Placement placement;
    std::vector<Tensor> states;
  };
  std::vector<Outcome> outcomes;

  const comm::TransportKind kinds[] = {comm::TransportKind::kInProc,
                                       comm::TransportKind::kSocket};
  for (const auto kind : kinds) {
    SCOPED_TRACE(comm::transport_kind_name(kind));
    cluster::ClusterTopology topology(
        cluster::ClusterConfig::paper_testbed());
    core::MasterProcess master(topology, spec(), one_layer_placement(4, 5),
                               1, 4, kind);
    master.set_retry_policy(fast_policy());
    master.set_respawn_budget(0);
    master.snapshot_experts();

    comm::FaultPlan plan;
    comm::ConnectionFaultRule rule;
    rule.link = 2;
    rule.dir = comm::LinkDir::kToWorker;
    rule.script.severs.push_back({40, 0});
    rule.script.refuse_reconnects = 99;
    plan.connection_rules.push_back(rule);
    comm::FaultInjector injector(plan);
    master.attach_fault_injector(&injector);

    Outcome out;
    for (int i = 0; i < 80; ++i) {
      if (!master.probe_worker(2)) {
        out.first_failed_probe = i;
        break;
      }
    }
    ASSERT_NE(out.first_failed_probe, -1) << "scripted sever never fired";

    const core::RecoveryReport report = master.recover_step();
    EXPECT_EQ(report.respawned, 0u);
    out.declared_dead = report.declared_dead;
    ASSERT_EQ(out.declared_dead.size(), 1u);
    EXPECT_EQ(out.declared_dead[0], 2u);

    master.degrade_to(placement::degrade_placement(
        master.placement(), master.dead_mask(), nullptr));
    out.placement = master.placement();
    for (std::size_t e = 0; e < 4; ++e) {
      out.states.push_back(master.query_expert_state(0, e));
    }
    master.shutdown();
    outcomes.push_back(std::move(out));
  }
  ::unsetenv("VELA_RECONNECT_ATTEMPTS");

  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].first_failed_probe, outcomes[1].first_failed_probe);
  EXPECT_EQ(outcomes[0].declared_dead, outcomes[1].declared_dead);
  expect_same_placement(outcomes[0].placement, outcomes[1].placement);
  for (std::size_t e = 0; e < 4; ++e) {
    ASSERT_EQ(outcomes[0].states[e].size(), outcomes[1].states[e].size());
    for (std::size_t i = 0; i < outcomes[0].states[e].size(); ++i) {
      EXPECT_EQ(outcomes[0].states[e][i], outcomes[1].states[e][i])
          << "expert " << e << " diverged across backends at element " << i;
    }
  }
}

// --- VelaSystem: kill, degrade, continue -------------------------------------

core::VelaSystemConfig sys_config() {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 3;
  cfg.wire_bits = 32;
  cfg.clock.compute_seconds = 0.5;
  return cfg;
}

core::FaultToleranceConfig degrade_ft() {
  core::FaultToleranceConfig ft;
  ft.retry = fast_policy();
  ft.snapshot_interval = 1;
  ft.respawn_budget = 0;  // first failure degrades
  return ft;
}

TEST(VelaDegrade, KillMidStepDegradesAndTrainingContinues) {
  auto cfg = sys_config();
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 17);
  comm::FaultPlan plan;
  plan.rules.push_back(
      {1, comm::LinkDir::kToWorker, 0, comm::FaultKind::kCrashWorker, 0.0});
  comm::FaultInjector injector(plan);
  core::VelaSystem vela(cfg, &corpus);
  vela.enable_fault_tolerance(degrade_ft());
  vela.attach_fault_injector(&injector);

  const std::size_t fleet = vela.master().num_workers();
  auto batch = corpus.make_dataset(2, 6);
  std::vector<core::StepReport> reports;
  for (int i = 0; i < 3; ++i) reports.push_back(vela.train_step(batch));

  // The first training message to worker 1 was a poison pill: step 0 hit
  // the failure, declared the worker dead (budget 0) and completed on the
  // survivors.
  EXPECT_EQ(reports[0].workers_lost, 1u);
  EXPECT_GE(reports[0].retries, 1u);
  EXPECT_GT(reports[0].recovery_mb, 0.0);
  EXPECT_EQ(reports[1].workers_lost, 0u);
  EXPECT_EQ(reports[2].workers_lost, 0u);
  for (const auto& r : reports) EXPECT_TRUE(std::isfinite(r.loss));

  EXPECT_TRUE(vela.master().dead_mask()[1]);
  EXPECT_EQ(vela.master().num_live_workers(), fleet - 1);
  const auto& placement = vela.master().placement();
  for (std::size_t l = 0; l < placement.num_layers(); ++l) {
    for (std::size_t e = 0; e < placement.num_experts(); ++e) {
      EXPECT_NE(placement.worker_of(l, e), 1u);
    }
  }
}

// The equivalence gate: killing a worker during step 0 and degrading must
// produce the exact loss trajectory of a run that started on the degraded
// placement. The kill lands before any optimizer step, so both paths carry
// identical expert state (initial adapters, zero moments) onto the
// survivors — from the migration step onward the runs are the same
// computation bit for bit.
TEST(VelaDegrade, DegradedRunMatchesReducedTopologyRunBitForBit) {
  auto cfg = sys_config();
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 17);
  auto batch = corpus.make_dataset(2, 6);

  // Run A: worker 1 dies mid-step-0, budget 0 → degrade → retry.
  std::vector<float> losses_a;
  placement::Placement degraded;
  {
    comm::FaultPlan plan;
    plan.rules.push_back({1, comm::LinkDir::kToWorker, 0,
                          comm::FaultKind::kCrashWorker, 0.0});
    comm::FaultInjector injector(plan);
    core::VelaSystem vela(cfg, &corpus);
    vela.enable_fault_tolerance(degrade_ft());
    vela.attach_fault_injector(&injector);
    for (int i = 0; i < 3; ++i) losses_a.push_back(vela.train_step(batch).loss);
    ASSERT_TRUE(vela.master().dead_mask()[1]);
    degraded = vela.master().placement();
  }

  // Run B: a healthy fleet that starts step 0 on A's degraded placement.
  std::vector<float> losses_b;
  {
    core::VelaSystem vela(cfg, &corpus);
    core::FaultToleranceConfig ft;
    ft.retry = fast_policy();
    ft.snapshot_interval = 1;
    vela.enable_fault_tolerance(ft);
    vela.set_placement(degraded);
    for (int i = 0; i < 3; ++i) losses_b.push_back(vela.train_step(batch).loss);
  }

  ASSERT_EQ(losses_a.size(), losses_b.size());
  for (std::size_t i = 0; i < losses_a.size(); ++i) {
    EXPECT_EQ(losses_a[i], losses_b[i]) << "loss diverged at step " << i;
  }
}

TEST(VelaDegrade, KillThenDegradeIsBackendInvariant) {
  struct Outcome {
    std::vector<float> losses;
    std::vector<bool> dead;
    placement::Placement placement;
  };
  std::vector<Outcome> outcomes;
  const comm::TransportKind kinds[] = {comm::TransportKind::kInProc,
                                       comm::TransportKind::kSocket};
  for (const auto kind : kinds) {
    SCOPED_TRACE(comm::transport_kind_name(kind));
    auto cfg = sys_config();
    cfg.transport = kind;
    data::SyntheticCorpus corpus(
        data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 17);
    comm::FaultPlan plan;
    plan.rules.push_back({2, comm::LinkDir::kToWorker, 1,
                          comm::FaultKind::kCrashWorker, 0.0});
    comm::FaultInjector injector(plan);
    core::VelaSystem vela(cfg, &corpus);
    vela.enable_fault_tolerance(degrade_ft());
    vela.attach_fault_injector(&injector);
    auto batch = corpus.make_dataset(2, 6);
    Outcome out;
    for (int i = 0; i < 2; ++i) out.losses.push_back(vela.train_step(batch).loss);
    out.dead = vela.master().dead_mask();
    out.placement = vela.master().placement();
    outcomes.push_back(std::move(out));
  }
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].losses, outcomes[1].losses);
  EXPECT_EQ(outcomes[0].dead, outcomes[1].dead);
  expect_same_placement(outcomes[0].placement, outcomes[1].placement);
}

// Soak: 200 steps with two scripted kills at different depths. Training
// must neither wedge nor diverge — every step completes with a finite
// loss, both kills degrade cleanly, and the run ends with two workers
// gone. (Run under TSan in the sanitizer build; the degrade path crosses
// the broker, the retry layer and the worker join.)
TEST(VelaDegrade, TwoHundredStepKillSoakStaysStable) {
  auto cfg = sys_config();
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 17);
  comm::FaultPlan plan;
  plan.rules.push_back(
      {1, comm::LinkDir::kToWorker, 5, comm::FaultKind::kCrashWorker, 0.0});
  plan.rules.push_back({3, comm::LinkDir::kToWorker, 450,
                        comm::FaultKind::kCrashWorker, 0.0});
  comm::FaultInjector injector(plan);
  core::VelaSystem vela(cfg, &corpus);
  core::FaultToleranceConfig ft = degrade_ft();
  ft.snapshot_interval = 5;
  vela.enable_fault_tolerance(ft);
  vela.attach_fault_injector(&injector);

  const std::size_t fleet = vela.master().num_workers();
  auto batch = corpus.make_dataset(2, 6);
  std::size_t lost = 0;
  for (int i = 0; i < 200; ++i) {
    const auto r = vela.train_step(batch);
    ASSERT_TRUE(std::isfinite(r.loss)) << "step " << i;
    lost += r.workers_lost;
  }
  EXPECT_EQ(lost, 2u);
  EXPECT_EQ(vela.master().num_live_workers(), fleet - 2);
  EXPECT_TRUE(vela.master().dead_mask()[1]);
  EXPECT_TRUE(vela.master().dead_mask()[3]);
}

// The acceptance gate of DESIGN.md §11 in one test: on the socket backend,
// a scripted connection sever with every reconnect refused walks the full
// path — sever → reconnect refused → worker dead → re-placement →
// continue — under VELA_AUDIT, with zero conservation violations.
TEST(VelaDegrade, AuditedSeverKillAndDegradeBalancesOnSocket) {
  ::setenv("VELA_RECONNECT_ATTEMPTS", "2", 1);
  audit::set_enabled_for_testing(true);
  audit::ConservationLedger::instance().reset_for_testing();
  std::vector<std::pair<std::string, std::string>> violations;
  audit::set_violation_handler(
      [&violations](const std::string& category, const std::string& detail) {
        violations.emplace_back(category, detail);
      });
  std::size_t lost = 0;
  {
    auto cfg = sys_config();
    cfg.transport = comm::TransportKind::kSocket;
    data::SyntheticCorpus corpus(
        data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 17);
    comm::FaultPlan plan;
    comm::ConnectionFaultRule rule;
    rule.link = 1;
    rule.dir = comm::LinkDir::kToWorker;
    rule.script.severs.push_back({60, 0});
    rule.script.refuse_reconnects = 99;
    plan.connection_rules.push_back(rule);
    comm::FaultInjector injector(plan);
    core::VelaSystem vela(cfg, &corpus);
    vela.enable_fault_tolerance(degrade_ft());
    vela.attach_fault_injector(&injector);
    auto batch = corpus.make_dataset(2, 6);
    for (int i = 0; i < 15; ++i) {
      const auto r = vela.train_step(batch);
      ASSERT_TRUE(std::isfinite(r.loss)) << "step " << i;
      lost += r.workers_lost;
    }
    EXPECT_EQ(lost, 1u);
    EXPECT_TRUE(vela.master().dead_mask()[1]);
  }
  audit::set_violation_handler(nullptr);
  audit::ConservationLedger::instance().reset_for_testing();
  audit::set_enabled_for_testing(false);
  ::unsetenv("VELA_RECONNECT_ATTEMPTS");
  EXPECT_TRUE(violations.empty())
      << violations.size() << " audit violation(s), first: "
      << violations.front().first << ": " << violations.front().second;
}

}  // namespace
}  // namespace vela
