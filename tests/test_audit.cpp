// VELA_AUDIT dynamic auditor suite (`ctest -L audit`): the lock-order graph
// detector must catch a synthetic inversion, the conservation ledger must
// catch a synthetic leak, and a clean two-step fine-tuning run must pass
// every auditor with zero violations.
#include "util/audit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "comm/endpoint.h"
#include "comm/message.h"
#include "core/vela_system.h"
#include "data/batch.h"
#include "tensor/tensor.h"

namespace vela {
namespace {

// Arms the auditors for one test and captures violations instead of
// aborting; restores the disarmed default state on scope exit.
class AuditScope {
 public:
  AuditScope() {
    audit::set_enabled_for_testing(true);
    audit::LockOrderGraph::instance().reset_for_testing();
    audit::ConservationLedger::instance().reset_for_testing();
    audit::set_violation_handler(
        [this](const std::string& category, const std::string& detail) {
          violations_.emplace_back(category, detail);
        });
  }
  ~AuditScope() {
    audit::set_violation_handler(nullptr);
    audit::LockOrderGraph::instance().reset_for_testing();
    audit::ConservationLedger::instance().reset_for_testing();
    audit::set_enabled_for_testing(false);
  }

  const std::vector<std::pair<std::string, std::string>>& violations() const {
    return violations_;
  }
  std::size_t count(const std::string& category) const {
    std::size_t n = 0;
    for (const auto& [cat, detail] : violations_) {
      if (cat == category) ++n;
    }
    return n;
  }

 private:
  std::vector<std::pair<std::string, std::string>> violations_;
};

TEST(LockOrderAudit, ConsistentOrderIsClean) {
  AuditScope scope;
  audit::AuditedMutex a("a"), b("b");
  for (int i = 0; i < 3; ++i) {
    std::lock_guard<audit::AuditedMutex> la(a);
    std::lock_guard<audit::AuditedMutex> lb(b);
  }
  EXPECT_TRUE(scope.violations().empty());
  EXPECT_EQ(audit::LockOrderGraph::instance().edge_count(), 1u);
}

// The synthetic-inversion tests drive the graph hooks directly rather than
// actually taking the mutexes in inverted order — real inverted
// acquisitions would also trip ThreadSanitizer's own deadlock detector in
// sanitizer runs. The hook sequence is exactly what AuditedMutex::lock /
// unlock emit; the locked path itself is covered by ConsistentOrderIsClean
// and the integration test.
TEST(LockOrderAudit, DetectsSyntheticInversion) {
  AuditScope scope;
  auto& graph = audit::LockOrderGraph::instance();
  audit::AuditedMutex a("queue_mutex"), b("job_mutex");
  // Establish the order a → b.
  graph.on_acquire(&a);
  graph.on_acquire(&b);
  graph.on_release(&b);
  graph.on_release(&a);
  ASSERT_TRUE(scope.violations().empty());
  // Invert it: b → a closes the cycle at edge-formation time, on a single
  // thread — no deadlocking interleaving required.
  graph.on_acquire(&b);
  graph.on_acquire(&a);
  graph.on_release(&a);
  graph.on_release(&b);
  ASSERT_EQ(scope.count("lock-order"), 1u);
  const std::string& detail = scope.violations()[0].second;
  EXPECT_NE(detail.find("queue_mutex"), std::string::npos);
  EXPECT_NE(detail.find("job_mutex"), std::string::npos);
}

TEST(LockOrderAudit, ThreeMutexCycleIsDetected) {
  AuditScope scope;
  auto& graph = audit::LockOrderGraph::instance();
  audit::AuditedMutex a("a"), b("b"), c("c");
  graph.on_acquire(&a);
  graph.on_acquire(&b);
  graph.on_release(&b);
  graph.on_release(&a);
  graph.on_acquire(&b);
  graph.on_acquire(&c);
  graph.on_release(&c);
  graph.on_release(&b);
  ASSERT_TRUE(scope.violations().empty());
  // c → a completes a → b → c → a.
  graph.on_acquire(&c);
  graph.on_acquire(&a);
  graph.on_release(&a);
  graph.on_release(&c);
  EXPECT_EQ(scope.count("lock-order"), 1u);
}

TEST(LockOrderAudit, DestroyedMutexDoesNotPoisonReusedAddress) {
  AuditScope scope;
  audit::AuditedMutex a("long_lived");
  {
    audit::AuditedMutex b("short_lived");
    std::lock_guard<audit::AuditedMutex> la(a);
    std::lock_guard<audit::AuditedMutex> lb(b);
  }  // b destroyed; its edges must be forgotten
  EXPECT_EQ(audit::LockOrderGraph::instance().edge_count(), 0u);
}

TEST(ConservationAudit, CatchesSyntheticLeak) {
  AuditScope scope;
  auto& ledger = audit::ConservationLedger::instance();
  // A post with no disposition — the exact bug class the auditor exists
  // for: a new code path that transmits but never delivers, drops, or
  // queues.
  ledger.on_posted(512);
  ledger.check("synthetic");
  ASSERT_EQ(scope.count("conservation"), 1u);
  EXPECT_NE(scope.violations()[0].second.find("synthetic"),
            std::string::npos);
  // Disposing of the bytes rebalances the ledger.
  ledger.on_dropped(512);
  ledger.check("synthetic");
  EXPECT_EQ(scope.count("conservation"), 1u);
}

TEST(ConservationAudit, CatchesDequeueWithoutDelivery) {
  AuditScope scope;
  auto& ledger = audit::ConservationLedger::instance();
  ledger.on_posted(64);
  ledger.on_enqueued(64);
  ledger.on_dequeued(64);  // popped but never handed to the receiver
  ledger.check("synthetic");
  EXPECT_EQ(scope.count("conservation"), 1u);
}

TEST(ConservationAudit, EndpointFlowBalances) {
  AuditScope scope;
  auto& ledger = audit::ConservationLedger::instance();

  comm::Endpoint ch(comm::TransportKind::kDefault, 0, 1, nullptr);
  comm::Message msg;
  msg.type = comm::MessageType::kProbe;
  msg.request_id = 7;
  ASSERT_TRUE(ch.send(msg));
  ASSERT_TRUE(ch.send(msg));

  auto snap = ledger.snapshot();
  EXPECT_EQ(snap.posted, 2 * msg.wire_size());
  EXPECT_EQ(snap.in_flight(), 2 * msg.wire_size());
  ledger.check("in-flight");  // queued bytes balance without delivery

  ASSERT_TRUE(ch.receive().has_value());
  ASSERT_TRUE(ch.try_receive().has_value());
  snap = ledger.snapshot();
  EXPECT_EQ(snap.delivered, 2 * msg.wire_size());
  EXPECT_EQ(snap.in_flight(), 0u);
  ledger.check("drained");

  // A send that loses to close() is charged as dropped, not leaked.
  ch.close();
  EXPECT_FALSE(ch.send(msg));
  snap = ledger.snapshot();
  EXPECT_EQ(snap.dropped, msg.wire_size());
  ledger.check("after-close");
  EXPECT_TRUE(scope.violations().empty());
}

TEST(BackwardAudit, CatchesShapeMismatchAndAliasing) {
  AuditScope scope;
  Tensor value({2, 3});
  Tensor bad_grad({3, 2});
  audit::check_backward_tensors(value, bad_grad, "unit");
  ASSERT_EQ(scope.count("backward"), 1u);
  EXPECT_NE(scope.violations()[0].second.find("unit"), std::string::npos);

  audit::check_backward_tensors(value, value, "unit");  // self-aliasing
  EXPECT_EQ(scope.count("backward"), 2u);

  Tensor good_grad({2, 3});
  audit::check_backward_tensors(value, good_grad, "unit");
  EXPECT_EQ(scope.count("backward"), 2u);
}

TEST(AuditIntegration, CleanTrainingRunPassesAllAuditors) {
  AuditScope scope;

  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 3;
  cfg.wire_bits = 32;
  cfg.clock.compute_seconds = 0.5;

  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 17);
  {
    core::VelaSystem vela(cfg, &corpus);
    auto batch = corpus.make_dataset(2, 6);
    for (int step = 0; step < 2; ++step) {
      auto report = vela.train_step(batch);
      EXPECT_TRUE(std::isfinite(report.loss));
      // The step-end conservation check ran inside train_step; the backward
      // checker ran on every node of the autograd sweep; every
      // blocking-queue/pool/meter lock fed the order graph.
      EXPECT_TRUE(scope.violations().empty())
          << scope.violations()[0].first << ": "
          << scope.violations()[0].second;
    }
  }
  EXPECT_TRUE(scope.violations().empty());
  // The run exercised real lock nesting — the graph saw edges, found no
  // cycle.
  EXPECT_TRUE(scope.count("lock-order") == 0u);
}

TEST(AuditDisabled, HooksAreInertWhenOff) {
  audit::set_enabled_for_testing(false);
  std::vector<std::string> seen;
  audit::set_violation_handler(
      [&seen](const std::string& category, const std::string&) {
        seen.push_back(category);
      });
  audit::ConservationLedger::instance().reset_for_testing();
  audit::ConservationLedger::instance().on_posted(999);
  audit::ConservationLedger::instance().check("off");  // unbalanced, but off
  EXPECT_TRUE(seen.empty());
  Tensor value({2});
  Tensor grad({3});
  audit::check_backward_tensors(value, grad, "off");
  EXPECT_TRUE(seen.empty());
  audit::set_violation_handler(nullptr);
  audit::ConservationLedger::instance().reset_for_testing();
}

}  // namespace
}  // namespace vela
