#include "model/router_planting.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/profiler.h"
#include "moe/moe_block.h"
#include "util/check.h"
#include "util/stats.h"

namespace vela {
namespace {

TEST(PlantedRouting, GenerateShapesAndDistinctPairs) {
  auto routing = model::PlantedRouting::generate(4, 6, 8, 1.0, 1);
  EXPECT_EQ(routing.num_layers(), 4u);
  EXPECT_EQ(routing.num_experts(), 6u);
  EXPECT_EQ(routing.num_domains(), 8u);
  for (std::size_t l = 0; l < 4; ++l) {
    for (std::size_t d = 0; d < 8; ++d) {
      auto [p, s] = routing.preference(l, d);
      EXPECT_LT(p, 6u);
      EXPECT_LT(s, 6u);
      EXPECT_NE(p, s);
    }
  }
}

TEST(PlantedRouting, DeterministicInSeed) {
  auto a = model::PlantedRouting::generate(3, 4, 5, 1.0, 7);
  auto b = model::PlantedRouting::generate(3, 4, 5, 1.0, 7);
  for (std::size_t l = 0; l < 3; ++l) {
    for (std::size_t d = 0; d < 5; ++d) {
      EXPECT_EQ(a.preference(l, d), b.preference(l, d));
    }
  }
}

TEST(PlantedRouting, HotExpertsVaryAcrossLayers) {
  auto routing = model::PlantedRouting::generate(8, 8, 16, 1.2, 3);
  // Count each layer's most popular primary expert; they should not all be
  // the same expert id.
  std::vector<std::size_t> tops;
  for (std::size_t l = 0; l < 8; ++l) {
    std::vector<int> counts(8, 0);
    for (std::size_t d = 0; d < 16; ++d) {
      ++counts[routing.preference(l, d).first];
    }
    tops.push_back(static_cast<std::size_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin()));
  }
  std::sort(tops.begin(), tops.end());
  tops.erase(std::unique(tops.begin(), tops.end()), tops.end());
  EXPECT_GT(tops.size(), 1u);
}

TEST(PlantedRouting, ExpectedProbabilityRowsSumToTwo) {
  auto routing = model::PlantedRouting::generate(3, 5, 6, 1.0, 2);
  std::vector<double> dist(6, 1.0 / 6.0);
  Tensor p = routing.expected_probability(dist);
  for (std::size_t l = 0; l < 3; ++l) {
    float row = 0.0f;
    for (std::size_t e = 0; e < 5; ++e) row += p.at(l, e);
    EXPECT_NEAR(row, 2.0f, 1e-5);
  }
}

TEST(PlantedRouting, SkewedDomainsYieldSkewedExperts) {
  auto routing = model::PlantedRouting::generate(1, 6, 6, 1.5, 4);
  std::vector<double> dist{0.7, 0.1, 0.05, 0.05, 0.05, 0.05};
  Tensor p = routing.expected_probability(dist);
  float mx = 0.0f, mn = 1.0f;
  for (std::size_t e = 0; e < 6; ++e) {
    mx = std::max(mx, p.at(0, e));
    mn = std::min(mn, p.at(0, e));
  }
  EXPECT_GT(mx, 0.5f);
  EXPECT_LT(mn, 0.2f);
}

// End-to-end planting: a planted model must actually route according to the
// planted preferences — the empirical Fig. 3(a) phenomenon.
class PlantedModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = model::ModelConfig::tiny_test();
    cfg_.model_dim = 16;
    corpus_ = std::make_unique<data::SyntheticCorpus>(
        data::CorpusConfig::wikitext_like(cfg_.vocab, 6), 11);
    backend_ = std::make_unique<moe::LocalExpertBackend>(
        cfg_.num_layers, cfg_.num_experts, cfg_.model_dim, cfg_.hidden_dim,
        cfg_.lora, 5);
    Rng rng(13);
    model_ = std::make_unique<model::MoETransformer>(cfg_, backend_.get(), rng);
    // A confidently pre-trained router (the small test model has fewer
    // dims, so the domain signal needs a stronger gate to dominate).
    model::PlantingConfig planting;
    planting.gate_gain = 1.2f;
    routing_ = model::plant_locality(*model_, *corpus_, planting);
  }

  model::ModelConfig cfg_;
  std::unique_ptr<data::SyntheticCorpus> corpus_;
  std::unique_ptr<moe::LocalExpertBackend> backend_;
  std::unique_ptr<model::MoETransformer> model_;
  model::PlantedRouting routing_;
};

TEST_F(PlantedModelTest, AccessFrequencyIsVisiblySkewed) {
  auto dataset = corpus_->make_dataset(24, 12);
  auto stats = core::profile_expert_access(*model_, dataset, 8);
  // In every layer the hottest expert must see clearly more traffic than
  // the coldest (Fig. 3(a) "disparity in access frequency").
  std::size_t skewed_layers = 0;
  for (std::size_t l = 0; l < cfg_.num_layers; ++l) {
    auto freq = stats.layer_frequencies(l);
    const double mx = *std::max_element(freq.begin(), freq.end());
    const double mn = *std::min_element(freq.begin(), freq.end());
    if (mx > 2.5 * std::max(mn, 1e-9) || mx > mn + 0.4) ++skewed_layers;
  }
  EXPECT_EQ(skewed_layers, cfg_.num_layers);
}

TEST_F(PlantedModelTest, ProfiledMatrixTracksAnalyticMatrix) {
  auto dataset = corpus_->make_dataset(48, 12);
  auto stats = core::profile_expert_access(*model_, dataset, 8);
  Tensor profiled = stats.probability_matrix();
  Tensor analytic = routing_.expected_probability(corpus_->domain_distribution());
  // Per-layer L1 distance between the two distributions must be modest; the
  // planted signal dominates but attention noise keeps them from matching
  // exactly.
  for (std::size_t l = 0; l < cfg_.num_layers; ++l) {
    double l1 = 0.0;
    for (std::size_t e = 0; e < cfg_.num_experts; ++e) {
      l1 += std::abs(double(profiled.at(l, e)) - double(analytic.at(l, e)));
    }
    EXPECT_LT(l1, 1.2) << "layer " << l;  // out of a max possible 4.0
  }
}

TEST_F(PlantedModelTest, RouterIsConfident) {
  // Fig. 3(b): the summed softmax score of the selected experts should be
  // far above the uninformative 2/E baseline for most tokens.
  auto dataset = corpus_->make_dataset(16, 12);
  auto stats = core::profile_expert_access(*model_, dataset, 8);
  const auto& sums = stats.score_sums(0);
  ASSERT_FALSE(sums.empty());
  std::size_t confident = 0;
  for (float s : sums) {
    if (s > 0.5f) ++confident;
  }
  EXPECT_GT(static_cast<double>(confident) / static_cast<double>(sums.size()),
            0.8);
}

TEST_F(PlantedModelTest, PlantingRequiresEnoughDims) {
  model::ModelConfig cfg = model::ModelConfig::tiny_test();
  cfg.model_dim = 4;
  moe::LocalExpertBackend backend(cfg.num_layers, cfg.num_experts,
                                  cfg.model_dim, cfg.hidden_dim, cfg.lora, 5);
  Rng rng(13);
  model::MoETransformer model(cfg, &backend, rng);
  data::SyntheticCorpus corpus(data::CorpusConfig::uniform(cfg.vocab, 6), 1);
  EXPECT_THROW(model::plant_locality(model, corpus, model::PlantingConfig{}),
               CheckError);
}

}  // namespace
}  // namespace vela
