#include "autograd/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace vela {
namespace {

using ag::Variable;

TEST(Autograd, LeafBasics) {
  Variable v = Variable::leaf(Tensor::ones({2, 2}), true);
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FALSE(v.has_grad());
  EXPECT_THROW(v.grad(), CheckError);
}

TEST(Autograd, BackwardRequiresScalarRoot) {
  Variable v = Variable::leaf(Tensor::ones({2, 2}), true);
  EXPECT_THROW(ag::backward(v), CheckError);
}

TEST(Autograd, BackwardRequiresTrainableGraph) {
  Variable v = Variable::constant(Tensor::ones({1}));
  EXPECT_THROW(ag::backward(v), CheckError);
}

TEST(Autograd, SumGradientIsOnes) {
  Variable v = Variable::leaf(Tensor::ones({2, 3}), true);
  ag::backward(ag::sum(v));
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(v.grad()[i], 1.0f);
}

TEST(Autograd, MeanGradient) {
  Variable v = Variable::leaf(Tensor::ones({4}), true);
  ag::backward(ag::mean(v));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(v.grad()[i], 0.25f);
}

TEST(Autograd, GradAccumulatesAcrossBackwardCalls) {
  Variable v = Variable::leaf(Tensor::ones({2}), true);
  ag::backward(ag::sum(v));
  ag::backward(ag::sum(v));
  EXPECT_EQ(v.grad()[0], 2.0f);
  v.zero_grad();
  EXPECT_FALSE(v.has_grad());
}

TEST(Autograd, DiamondGraphAccumulates) {
  // y = sum(x + x): gradient of x must be 2.
  Variable x = Variable::leaf(Tensor::ones({3}), true);
  ag::backward(ag::sum(ag::add(x, x)));
  EXPECT_EQ(x.grad()[0], 2.0f);
}

TEST(Autograd, ConstantsReceiveNoGrad) {
  Variable x = Variable::leaf(Tensor::ones({2}), true);
  Variable c = Variable::constant(Tensor::ones({2}));
  ag::backward(ag::sum(ag::mul(x, c)));
  EXPECT_TRUE(x.has_grad());
  EXPECT_FALSE(c.has_grad());
}

TEST(Autograd, BackwardFromSeedsExternalGradient) {
  Variable x = Variable::leaf(Tensor::ones({2, 2}), true);
  Variable y = ag::scale(x, 3.0f);
  Tensor seed({2, 2});
  seed.fill(2.0f);
  ag::backward_from(y, seed);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(x.grad()[i], 6.0f);
}

// --- numerical gradient checks ---------------------------------------------

float gradcheck(Variable& leaf, const std::function<Variable()>& loss) {
  return ag::gradcheck_max_abs_err(leaf, loss, 1e-2f);
}

TEST(AutogradGradcheck, MatmulBothSides) {
  Rng rng(1);
  Variable a = Variable::leaf(ops::randn({3, 4}, rng), true);
  Variable b = Variable::leaf(ops::randn({4, 2}, rng), true);
  EXPECT_LT(gradcheck(a, [&] { return ag::sum(ag::matmul(a, b)); }), 1e-2f);
  EXPECT_LT(gradcheck(b, [&] { return ag::sum(ag::matmul(a, b)); }), 1e-2f);
}

TEST(AutogradGradcheck, MatmulNt) {
  Rng rng(2);
  Variable a = Variable::leaf(ops::randn({3, 4}, rng), true);
  Variable b = Variable::leaf(ops::randn({5, 4}, rng), true);
  auto loss = [&] { return ag::mean(ag::matmul_nt(a, b)); };
  EXPECT_LT(gradcheck(a, loss), 1e-2f);
  EXPECT_LT(gradcheck(b, loss), 1e-2f);
}

TEST(AutogradGradcheck, LinearNt) {
  Rng rng(3);
  Variable x = Variable::leaf(ops::randn({2, 4}, rng), true);
  Variable w = Variable::leaf(ops::randn({3, 4}, rng), true);
  auto loss = [&] { return ag::sum(ag::linear_nt(x, w)); };
  EXPECT_LT(gradcheck(x, loss), 1e-2f);
  EXPECT_LT(gradcheck(w, loss), 1e-2f);
}

TEST(AutogradGradcheck, MulAndSub) {
  Rng rng(4);
  Variable a = Variable::leaf(ops::randn({2, 3}, rng), true);
  Variable b = Variable::leaf(ops::randn({2, 3}, rng), true);
  auto loss = [&] { return ag::sum(ag::mul(ag::sub(a, b), a)); };
  EXPECT_LT(gradcheck(a, loss), 1e-2f);
  EXPECT_LT(gradcheck(b, loss), 1e-2f);
}

TEST(AutogradGradcheck, Silu) {
  Rng rng(5);
  Variable x = Variable::leaf(ops::randn({3, 3}, rng), true);
  EXPECT_LT(gradcheck(x, [&] { return ag::sum(ag::silu(x)); }), 1e-2f);
}

TEST(AutogradGradcheck, RmsNormInputAndGain) {
  Rng rng(6);
  Variable x = Variable::leaf(ops::randn({3, 4}, rng), true);
  Variable g = Variable::leaf(ops::rand_uniform({4}, rng, 0.5f, 1.5f), true);
  // Weighted loss to make the Jacobian non-trivial.
  Rng rng2(7);
  Variable w = Variable::constant(ops::randn({3, 4}, rng2));
  auto loss = [&] { return ag::sum(ag::mul(ag::rmsnorm(x, g), w)); };
  EXPECT_LT(gradcheck(x, loss), 2e-2f);
  EXPECT_LT(gradcheck(g, loss), 2e-2f);
}

TEST(AutogradGradcheck, SoftmaxRows) {
  Rng rng(8);
  Variable x = Variable::leaf(ops::randn({2, 5}, rng), true);
  Rng rng2(9);
  Variable w = Variable::constant(ops::randn({2, 5}, rng2));
  auto loss = [&] { return ag::sum(ag::mul(ag::softmax_rows(x), w)); };
  EXPECT_LT(gradcheck(x, loss), 1e-2f);
}

TEST(AutogradGradcheck, CausalMaskedSoftmax) {
  Rng rng(10);
  Variable x = Variable::leaf(ops::randn({4, 4}, rng), true);
  Rng rng2(11);
  Variable w = Variable::constant(ops::randn({4, 4}, rng2));
  auto loss = [&] {
    return ag::sum(ag::mul(ag::causal_masked_softmax(x), w));
  };
  EXPECT_LT(gradcheck(x, loss), 1e-2f);
}

TEST(Autograd, CausalMaskZeroesUpperTriangle) {
  Rng rng(12);
  Variable x = Variable::leaf(ops::randn({3, 3}, rng), false);
  Variable p = ag::causal_masked_softmax(x);
  EXPECT_EQ(p.value().at(0, 1), 0.0f);
  EXPECT_EQ(p.value().at(0, 2), 0.0f);
  EXPECT_EQ(p.value().at(1, 2), 0.0f);
  for (std::size_t i = 0; i < 3; ++i) {
    float row = 0.0f;
    for (std::size_t j = 0; j < 3; ++j) row += p.value().at(i, j);
    EXPECT_NEAR(row, 1.0f, 1e-6);
  }
}

TEST(AutogradGradcheck, EmbeddingScattersGrads) {
  Rng rng(13);
  Variable w = Variable::leaf(ops::randn({5, 3}, rng), true);
  auto loss = [&] { return ag::sum(ag::embedding(w, {1, 1, 4})); };
  EXPECT_LT(gradcheck(w, loss), 1e-2f);
  // Row 1 used twice -> gradient 2, row 4 once -> 1, others 0.
  w.zero_grad();
  ag::backward(loss());
  EXPECT_FLOAT_EQ(w.grad().at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(w.grad().at(4, 2), 1.0f);
  EXPECT_FLOAT_EQ(w.grad().at(0, 0), 0.0f);
}

TEST(AutogradGradcheck, GatherScatterScaleRows) {
  Rng rng(14);
  Variable x = Variable::leaf(ops::randn({4, 3}, rng), true);
  Variable w = Variable::leaf(ops::rand_uniform({2}, rng, 0.5f, 1.5f), true);
  auto loss = [&] {
    Variable g = ag::gather_rows(x, {2, 0});
    Variable s = ag::scale_rows(g, w);
    return ag::sum(ag::scatter_rows(s, {2, 0}, 4));
  };
  EXPECT_LT(gradcheck(x, loss), 1e-2f);
  EXPECT_LT(gradcheck(w, loss), 1e-2f);
}

TEST(AutogradGradcheck, SliceAndConcatCols) {
  Rng rng(15);
  Variable x = Variable::leaf(ops::randn({3, 6}, rng), true);
  auto loss = [&] {
    Variable left = ag::slice_cols(x, 0, 3);
    Variable right = ag::slice_cols(x, 3, 3);
    return ag::sum(ag::mul(ag::concat_cols({right, left}), ag::concat_cols({left, right})));
  };
  EXPECT_LT(gradcheck(x, loss), 1e-2f);
}

TEST(AutogradGradcheck, ConcatRows) {
  Rng rng(16);
  Variable a = Variable::leaf(ops::randn({2, 3}, rng), true);
  Variable b = Variable::leaf(ops::randn({4, 3}, rng), true);
  auto loss = [&] {
    Variable cat = ag::concat_rows({a, b});
    return ag::sum(ag::mul(cat, cat));
  };
  EXPECT_LT(gradcheck(a, loss), 2e-2f);
  EXPECT_LT(gradcheck(b, loss), 2e-2f);
}

TEST(AutogradGradcheck, SliceVec) {
  Rng rng(17);
  Variable x = Variable::leaf(ops::randn({6}, rng), true);
  auto loss = [&] {
    Variable s = ag::slice_vec(x, 2, 3);
    return ag::sum(ag::mul(s, s));
  };
  EXPECT_LT(gradcheck(x, loss), 1e-2f);
}

TEST(AutogradGradcheck, CrossEntropy) {
  Rng rng(18);
  Variable logits = Variable::leaf(ops::randn({3, 5}, rng), true);
  auto loss = [&] { return ag::cross_entropy(logits, {0, 2, 4}); };
  EXPECT_LT(gradcheck(logits, loss), 1e-2f);
}

TEST(Autograd, DeepChainDoesNotOverflow) {
  // 2000 chained ops exercise the iterative topological sort.
  Variable x = Variable::leaf(Tensor::ones({4}), true);
  Variable y = x;
  for (int i = 0; i < 2000; ++i) y = ag::scale(y, 1.0f);
  ag::backward(ag::sum(y));
  EXPECT_EQ(x.grad()[0], 1.0f);
}

}  // namespace
}  // namespace vela
