// Coverage for the small I/O utilities: CSV writer and the logger.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/csv.h"
#include "util/logging.h"

namespace vela {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = temp_path("out.csv");
  {
    CsvWriter csv(path, {"step", "value"});
    csv.row({std::string("0"), std::string("1.5")});
    csv.row({1.0, 2.25});
  }
  const std::string content = slurp(path);
  EXPECT_NE(content.find("step,value\n"), std::string::npos);
  EXPECT_NE(content.find("0,1.5\n"), std::string::npos);
  EXPECT_NE(content.find("1,2.25\n"), std::string::npos);
}

TEST(Csv, RejectsWrongWidth) {
  CsvWriter csv(temp_path("w.csv"), {"a", "b"});
  EXPECT_THROW(csv.row({std::string("only-one")}), CheckError);
  EXPECT_THROW(csv.row({1.0, 2.0, 3.0}), CheckError);
}

TEST(Csv, RejectsEmptyHeaderAndBadPath) {
  EXPECT_THROW(CsvWriter(temp_path("e.csv"), {}), CheckError);
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/f.csv", {"a"}), CheckError);
}

TEST(Csv, DoublePrecisionPreserved) {
  const std::string path = temp_path("p.csv");
  {
    CsvWriter csv(path, {"x"});
    csv.row(std::vector<double>{0.123456789012});
  }
  EXPECT_NE(slurp(path).find("0.123456789012"), std::string::npos);
}

TEST(Logging, LevelGating) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages are dropped (no crash, no output assertions —
  // the sink writes to stderr; this exercises the gate path).
  VELA_LOG_DEBUG("test") << "dropped";
  VELA_LOG_INFO("test") << "dropped";
  set_log_level(original);
  EXPECT_EQ(log_level(), original);
}

TEST(Logging, StreamingOperators) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);  // silence during the test run
  VELA_LOG_INFO("tag") << "value=" << 42 << " pi=" << 3.14;
  set_log_level(original);
  SUCCEED();
}

TEST(Check, MacrosThrowWithContext) {
  try {
    VELA_CHECK_MSG(1 == 2, "context " << 99);
    FAIL() << "should have thrown";
  } catch (const CheckError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 99"), std::string::npos);
  }
  EXPECT_NO_THROW(VELA_CHECK(2 == 2));
}

}  // namespace
}  // namespace vela
