// Tests for the executable expert-parallelism baseline: numerical
// equivalence with a dense single-process run, replica lockstep, and traffic
// behaviour.
#include "ep/runtime.h"

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "moe/moe_block.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace vela {
namespace {

ep::EpRuntimeConfig small_config(std::size_t nodes = 2,
                                 std::size_t gpus = 1) {
  ep::EpRuntimeConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.cluster.num_nodes = nodes;
  cfg.cluster.gpus_per_node = gpus;
  cfg.seed = 77;
  cfg.wire_bits = 32;
  cfg.adamw.lr = 1e-3f;
  return cfg;
}

data::SyntheticCorpus corpus_for(const model::ModelConfig& m,
                                 std::uint64_t seed = 5) {
  return data::SyntheticCorpus(data::CorpusConfig::wikitext_like(m.vocab, 6),
                               seed);
}

// Dense single-process twin: same seeds, one AdamW over backbone + experts.
struct DenseTwin {
  DenseTwin(const ep::EpRuntimeConfig& cfg, const data::SyntheticCorpus& c)
      : backend(cfg.model.num_layers, cfg.model.num_experts,
                cfg.model.model_dim, cfg.model.hidden_dim, cfg.model.lora,
                cfg.seed),
        rng(cfg.seed),
        model(cfg.model, &backend, rng) {
    model::plant_locality(model, c, model::PlantingConfig{});
    auto params = model.trainable_parameters();
    for (const auto& p : backend.trainable_parameters()) params.push_back(p);
    optimizer = std::make_unique<nn::AdamW>(params, cfg.adamw);
  }

  float train_step(const std::vector<std::vector<std::size_t>>& batch) {
    optimizer->zero_grad();
    ag::Variable loss = model.loss_batch(batch);
    ag::backward(loss);
    optimizer->step();
    return loss.value()[0];
  }

  moe::LocalExpertBackend backend;
  Rng rng;
  model::MoETransformer model;
  std::unique_ptr<nn::AdamW> optimizer;
};

TEST(EpRuntime, InitialLossMatchesDense) {
  auto cfg = small_config();
  auto corpus = corpus_for(cfg.model, 11);
  ep::EpRuntime ep(cfg, &corpus);
  DenseTwin dense(cfg, corpus);
  auto batch = corpus.make_dataset(4, 8);  // 2 sequences per shard

  const float dense_loss = dense.model.loss_batch(batch).value()[0];
  const float ep_loss = ep.train_step(batch).loss;
  // The FIRST EP step's loss is the pre-update loss; must match dense
  // forward (mean over equal-size shards == global mean).
  EXPECT_NEAR(ep_loss, dense_loss, 1e-5f);
}

TEST(EpRuntime, TrainingTrajectoriesTrackDense) {
  auto cfg = small_config();
  auto corpus = corpus_for(cfg.model, 13);
  ep::EpRuntime ep(cfg, &corpus);
  DenseTwin dense(cfg, corpus);
  auto batch = corpus.make_dataset(4, 8);

  for (int step = 0; step < 4; ++step) {
    const float dense_loss = dense.train_step(batch);
    const float ep_loss = ep.train_step(batch).loss;
    EXPECT_NEAR(ep_loss, dense_loss, std::abs(dense_loss) * 1e-3f + 1e-4f)
        << "step " << step;
  }
}

TEST(EpRuntime, FourShardsAlsoTrack) {
  auto cfg = small_config(2, 2);  // 4 shards
  auto corpus = corpus_for(cfg.model, 17);
  ep::EpRuntime ep(cfg, &corpus);
  ASSERT_EQ(ep.num_shards(), 4u);
  DenseTwin dense(cfg, corpus);
  auto batch = corpus.make_dataset(4, 8);  // 1 sequence per shard
  for (int step = 0; step < 3; ++step) {
    const float dense_loss = dense.train_step(batch);
    const float ep_loss = ep.train_step(batch).loss;
    EXPECT_NEAR(ep_loss, dense_loss, std::abs(dense_loss) * 2e-3f + 2e-4f);
  }
}

TEST(EpRuntime, TrainingIsBitDeterministicAcrossRuns) {
  // Backward requests from different shard threads race into each expert
  // server's inbox; the server stages gradient deltas per source shard and
  // folds them in ascending source order, so the trajectory must be
  // bit-identical run to run regardless of thread scheduling.
  auto cfg = small_config(2, 2);  // 4 shards — ≥3 contributions per expert
  auto corpus = corpus_for(cfg.model, 19);
  auto batch = corpus.make_dataset(4, 8);

  std::vector<float> first;
  for (int run = 0; run < 2; ++run) {
    ep::EpRuntime ep(cfg, &corpus);
    std::vector<float> losses;
    for (int step = 0; step < 3; ++step) {
      losses.push_back(ep.train_step(batch).loss);
    }
    if (run == 0) {
      first = losses;
    } else {
      for (std::size_t i = 0; i < losses.size(); ++i) {
        EXPECT_EQ(first[i], losses[i]) << "step " << i;  // bit-exact
      }
    }
  }
}

TEST(EpRuntime, CrossNodeTrafficMeasuredAndAllReducePaid) {
  auto cfg = small_config();  // 2 nodes × 1 GPU
  auto corpus = corpus_for(cfg.model, 19);
  ep::EpRuntime ep(cfg, &corpus);
  auto batch = corpus.make_dataset(2, 8);
  auto report = ep.train_step(batch);
  // Shards sit on different nodes: expert all-to-all AND the gradient ring
  // both cross the boundary.
  EXPECT_GT(report.external_mb_per_node, 0.0);

  // Lower bound: the ring all-reduce alone moves 2·(N−1)/N·B bytes per
  // shard of backbone gradients (fp32).
  const std::size_t lora_params = [&] {
    moe::LocalExpertBackend backend(1, 1, cfg.model.model_dim,
                                    cfg.model.hidden_dim, cfg.model.lora, 1);
    Rng rng(cfg.seed);
    model::MoETransformer m(cfg.model, &backend, rng);
    return m.trainable_parameter_count();
  }();
  const double ring_bytes = 2.0 * (2.0 - 1.0) / 2.0 *
                            double(lora_params) * sizeof(float) * 2.0;
  EXPECT_GT(report.external_mb_per_node * 1e6 *
                static_cast<double>(ep.topology().num_nodes()),
            ring_bytes);
}

TEST(EpRuntime, SingleNodeHasNoExternalTraffic) {
  auto cfg = small_config(1, 2);  // both shards on one node
  auto corpus = corpus_for(cfg.model, 23);
  ep::EpRuntime ep(cfg, &corpus);
  auto batch = corpus.make_dataset(2, 8);
  EXPECT_DOUBLE_EQ(ep.train_step(batch).external_mb_per_node, 0.0);
}

TEST(EpRuntime, RejectsBadBatches) {
  auto cfg = small_config();
  auto corpus = corpus_for(cfg.model, 29);
  ep::EpRuntime ep(cfg, &corpus);
  // Not divisible by shard count.
  auto odd = corpus.make_dataset(3, 8);
  EXPECT_THROW(ep.train_step(odd), CheckError);
  // Ragged lengths.
  std::vector<std::vector<std::size_t>> ragged{{1, 2, 3, 4}, {1, 2, 3}};
  EXPECT_THROW(ep.train_step(ragged), CheckError);
}

TEST(EpRuntime, EvaluationThroughReplicaWorks) {
  auto cfg = small_config();
  auto corpus = corpus_for(cfg.model, 31);
  ep::EpRuntime ep(cfg, &corpus);
  auto batch = corpus.make_dataset(2, 8);
  const float before = ep.replica().loss_batch(batch).value()[0];
  EXPECT_TRUE(std::isfinite(before));
  // Forward-only evaluation must not poison subsequent training steps.
  auto report = ep.train_step(batch);
  EXPECT_TRUE(std::isfinite(report.loss));
}

TEST(EpRuntime, LossDecreasesOverSteps) {
  auto cfg = small_config();
  cfg.adamw.lr = 3e-3f;
  auto corpus = corpus_for(cfg.model, 37);
  ep::EpRuntime ep(cfg, &corpus);
  auto batch = corpus.make_dataset(4, 8);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 12; ++i) {
    const float loss = ep.train_step(batch).loss;
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace vela
