#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace vela {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(5);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 7.0, 0.01);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_index(0), CheckError);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsScalesCorrectly) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(19);
  std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / double(n), 0.6, 0.015);
}

TEST(Rng, CategoricalRejectsNegativeAndAllZero) {
  Rng rng(23);
  EXPECT_THROW(rng.categorical({1.0, -0.5}), CheckError);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), CheckError);
  EXPECT_THROW(rng.categorical({}), CheckError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(ZipfSampler, UniformWhenExponentZero) {
  ZipfSampler sampler(5, 0.0);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(sampler.pmf(i), 0.2, 1e-12);
  }
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler sampler(20, 1.2);
  double total = 0.0;
  for (std::size_t i = 0; i < 20; ++i) total += sampler.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, PmfDecreasesWithRank) {
  ZipfSampler sampler(10, 1.0);
  for (std::size_t i = 1; i < 10; ++i) {
    EXPECT_LT(sampler.pmf(i), sampler.pmf(i - 1));
  }
}

TEST(ZipfSampler, EmpiricalMatchesPmf) {
  ZipfSampler sampler(6, 1.1);
  Rng rng(37);
  std::vector<int> counts(6, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(counts[i] / double(n), sampler.pmf(i), 0.01);
  }
}

// Property sweep: Zipf head mass grows with the exponent.
class ZipfConcentration : public ::testing::TestWithParam<double> {};

TEST_P(ZipfConcentration, HeadMassMonotoneInExponent) {
  const double s = GetParam();
  ZipfSampler low(16, s);
  ZipfSampler high(16, s + 0.5);
  EXPECT_LT(low.pmf(0), high.pmf(0));
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfConcentration,
                         ::testing::Values(0.0, 0.3, 0.7, 1.0, 1.5));

}  // namespace
}  // namespace vela
