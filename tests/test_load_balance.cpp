#include <gtest/gtest.h>

#include <cmath>

#include "data/corpus.h"
#include "model/router_planting.h"
#include "moe/gate.h"
#include "moe/moe_block.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/stats.h"

namespace vela {
namespace {

moe::GateOutput run_gate(moe::TopKGate& gate, const Tensor& x) {
  return gate.forward(ag::Variable::constant(x));
}

TEST(LoadBalanceLoss, UniformRoutingScoresNearOne) {
  // Perfectly uniform dispatch + uniform probabilities minimize the loss at
  // exactly 1 (E · Σ_e (1/E)·(1/E) · E = 1).
  Rng rng(1);
  moe::TopKGate gate("g", 8, 4, 2, rng);
  // Zero logits: uniform probs and (tie-broken) balanced-ish dispatch.
  gate.weight().mutable_value().fill(0.0f);
  Rng xr(2);
  auto out = run_gate(gate, ops::randn({16, 8}, xr));
  // Tie-break sends everyone to experts 0,1 — dispatch is NOT uniform, but
  // probs are; the loss reduces to E·Σ f_e·(1/E) = Σ f_e·1 = ... = 2... use
  // the analytic form: Σ_e f_e = 1, so loss = 1 exactly for uniform probs.
  EXPECT_NEAR(moe::load_balance_loss(out).value()[0], 1.0f, 1e-4f);
}

TEST(LoadBalanceLoss, ImbalancedRoutingScoresAboveOne) {
  Rng rng(3);
  moe::TopKGate gate("g", 8, 4, 2, rng);
  // Strong bias towards experts 0 and 1.
  Tensor& w = gate.weight().mutable_value();
  w.fill(0.0f);
  for (std::size_t h = 0; h < 8; ++h) {
    w.at(0, h) = 1.0f;
    w.at(1, h) = 0.9f;
  }
  Rng xr(4);
  auto out = run_gate(gate, ops::rand_uniform({16, 8}, xr, 0.5f, 1.5f));
  EXPECT_GT(moe::load_balance_loss(out).value()[0], 1.3f);
}

TEST(LoadBalanceLoss, GradientFlowsToTrainableGate) {
  Rng rng(5);
  moe::TopKGate gate("g", 8, 4, 2, rng, /*trainable=*/true);
  Rng xr(6);
  auto out = run_gate(gate, ops::randn({8, 8}, xr));
  ag::backward(moe::load_balance_loss(out));
  auto params = gate.trainable_parameters();
  ASSERT_EQ(params.size(), 1u);
  EXPECT_TRUE(params[0].var.has_grad());
  EXPECT_GT(ops::max_abs(params[0].var.grad()), 0.0f);
}

TEST(LoadBalanceLoss, TrainingWithAuxLossFlattensRouting) {
  // The §III pre-training story: a biased router trained WITH the auxiliary
  // loss becomes more balanced. Positive-valued inputs make the additive
  // row bias a genuine hot-expert bias.
  Rng rng(7);
  moe::TopKGate gate("g", 8, 4, 2, rng, /*trainable=*/true);
  Tensor& w = gate.weight().mutable_value();
  for (std::size_t h = 0; h < 8; ++h) w.at(0, h) += 1.0f;  // hot expert 0

  const auto max_dispatch_fraction = [](const moe::GateOutput& out) {
    double mx = 0.0;
    for (const auto& g : out.plan.expert_tokens) {
      mx = std::max(
          mx, double(g.size()) / double(out.plan.total_assignments()));
    }
    return mx;
  };

  Rng xr(8);
  Tensor x = ops::rand_uniform({64, 8}, xr, 0.2f, 1.2f);
  auto initial = run_gate(gate, x);
  const double initial_max = max_dispatch_fraction(initial);
  ASSERT_GT(initial_max, 0.45);  // expert 0 hoards nearly half the slots

  const auto mean_prob = [&](const moe::GateOutput& out, std::size_t e) {
    double total = 0.0;
    for (std::size_t t = 0; t < out.plan.num_tokens; ++t) {
      total += out.probs.at(t, e);
    }
    return total / static_cast<double>(out.plan.num_tokens);
  };
  const double initial_p0 = mean_prob(initial, 0);

  nn::SGD sgd(gate.trainable_parameters(), 1.0f);
  for (int step = 0; step < 300; ++step) {
    sgd.zero_grad();
    ag::backward(moe::load_balance_loss(run_gate(gate, x)));
    sgd.step();
  }
  auto final_out = run_gate(gate, x);
  // The loss and the hot expert's router probability both drop; dispatch
  // concentration follows once the logit ordering flips.
  EXPECT_LT(moe::load_balance_loss(final_out).value()[0],
            moe::load_balance_loss(initial).value()[0]);
  EXPECT_LT(mean_prob(final_out, 0), initial_p0 - 0.05);
  EXPECT_LE(max_dispatch_fraction(final_out), initial_max);
}

TEST(LoadBalanceLoss, AuxWeightedModelLossRuns) {
  model::ModelConfig cfg = model::ModelConfig::tiny_test();
  moe::LocalExpertBackend backend(cfg.num_layers, cfg.num_experts,
                                  cfg.model_dim, cfg.hidden_dim, cfg.lora, 3);
  Rng rng(9);
  model::MoETransformer model(cfg, &backend, rng, /*trainable_gate=*/true);
  ag::Variable plain = model.loss_batch({{1, 2, 3, 4}});
  ag::Variable with_aux = model.loss_batch({{1, 2, 3, 4}}, nullptr, 0.1f);
  // Aux loss is positive, so the combined loss must exceed the CE alone.
  EXPECT_GT(with_aux.value()[0], plain.value()[0]);
  EXPECT_NO_THROW(ag::backward(with_aux));
}

}  // namespace
}  // namespace vela
