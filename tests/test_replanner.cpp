#include "core/replanner.h"

#include <gtest/gtest.h>

#include "model/router_planting.h"
#include "moe/synthetic_router.h"
#include "placement/evaluator.h"
#include "placement/sequential.h"
#include "util/check.h"

namespace vela {
namespace {

model::ModelConfig shape() {
  model::ModelConfig cfg = model::ModelConfig::mixtral_8x7b_shape();
  cfg.num_layers = 8;  // keep the LP small for test speed
  return cfg;
}

cluster::ClusterTopology topo() {
  return cluster::ClusterTopology(cluster::ClusterConfig::paper_testbed());
}

moe::SyntheticRouter make_router(const model::PlantedRouting* routing,
                                 double noise, std::uint64_t seed) {
  moe::SyntheticRouterConfig cfg;
  cfg.domain_dist.assign(routing->num_domains(), 1.0);
  cfg.domain_dist[0] = 6.0;
  cfg.routing_noise = noise;
  cfg.seed = seed;
  return moe::SyntheticRouter(routing, cfg);
}

TEST(Replanner, WindowedProbabilityMatchesObservedCounts) {
  auto cfg = shape();
  auto topology = topo();
  core::Replanner replanner({10, 4, 0.0, 1.34}, cfg, &topology, 256.0);
  auto routing = model::PlantedRouting::generate(cfg.num_layers,
                                                 cfg.num_experts, 8, 1.0, 1);
  auto router = make_router(&routing, 0.05, 2);
  for (int i = 0; i < 4; ++i) replanner.observe(router.sample_step(256));

  Tensor p = replanner.windowed_probability();
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    float row = 0.0f;
    for (std::size_t e = 0; e < cfg.num_experts; ++e) row += p.at(l, e);
    EXPECT_NEAR(row, 2.0f, 1e-4f);  // top-2 routing
  }
}

float flat_sum(const Tensor& t) {
  float s = 0.0f;
  for (std::size_t i = 0; i < t.size(); ++i) s += t[i];
  return s;
}

TEST(Replanner, EmptyWindowGivesZeros) {
  auto cfg = shape();
  auto topology = topo();
  core::Replanner replanner({10, 4, 0.0, 1.34}, cfg, &topology, 256.0);
  Tensor p = replanner.windowed_probability();
  EXPECT_EQ(flat_sum(p), 0.0f);
}

TEST(Replanner, NoReplanBeforeWindowFull) {
  auto cfg = shape();
  auto topology = topo();
  core::Replanner replanner({2, 8, 0.0, 1.34}, cfg, &topology, 256.0);
  auto routing = model::PlantedRouting::generate(cfg.num_layers,
                                                 cfg.num_experts, 8, 1.0, 3);
  auto router = make_router(&routing, 0.05, 4);
  placement::Placement seq(cfg.num_layers, cfg.num_experts);
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    for (std::size_t e = 0; e < cfg.num_experts; ++e) {
      seq.assign(l, e, e % topology.num_workers());
    }
  }
  for (int i = 0; i < 4; ++i) {
    replanner.observe(router.sample_step(128));
    EXPECT_FALSE(replanner.maybe_replan(seq).has_value())
        << "window not yet full at step " << i;
  }
}

TEST(Replanner, ReplansAwayFromSequentialUnderLocality) {
  auto cfg = shape();
  auto topology = topo();
  core::Replanner replanner({4, 4, 0.02, 1.34}, cfg, &topology, 256.0);
  auto routing = model::PlantedRouting::generate(cfg.num_layers,
                                                 cfg.num_experts, 8, 1.3, 5);
  auto router = make_router(&routing, 0.03, 6);
  placement::Placement seq(cfg.num_layers, cfg.num_experts);
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    for (std::size_t e = 0; e < cfg.num_experts; ++e) {
      seq.assign(l, e, e % topology.num_workers());
    }
  }
  std::optional<placement::Placement> result;
  for (int i = 0; i < 4 && !result; ++i) {
    replanner.observe(router.sample_step(256));
    result = replanner.maybe_replan(seq);
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(replanner.replans_proposed(), 0u);
}

TEST(Replanner, HysteresisKeepsGoodPlacement) {
  // A placement that is already (near-)optimal for the routing must not be
  // churned. The threshold must sit above the LP-rounding jitter (re-solves
  // of near-identical instances can land on vertices a few percent apart),
  // so use a comfortably large 15%.
  auto cfg = shape();
  auto topology = topo();
  core::Replanner replanner({4, 4, 0.15, 1.34}, cfg, &topology, 256.0);
  auto routing = model::PlantedRouting::generate(cfg.num_layers,
                                                 cfg.num_experts, 8, 1.3, 7);
  auto router = make_router(&routing, 0.03, 8);

  // Warm the window, take the replanner's own proposal...
  placement::Placement seq(cfg.num_layers, cfg.num_experts);
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    for (std::size_t e = 0; e < cfg.num_experts; ++e) {
      seq.assign(l, e, e % topology.num_workers());
    }
  }
  std::optional<placement::Placement> proposal;
  for (int i = 0; i < 4 && !proposal; ++i) {
    replanner.observe(router.sample_step(256));
    proposal = replanner.maybe_replan(seq);
  }
  ASSERT_TRUE(proposal.has_value());
  // ...then keep observing the SAME distribution: no further re-plan.
  for (int i = 0; i < 8; ++i) {
    replanner.observe(router.sample_step(256));
    EXPECT_FALSE(replanner.maybe_replan(*proposal).has_value());
  }
}

TEST(Replanner, RejectsBadConfig) {
  auto cfg = shape();
  auto topology = topo();
  EXPECT_THROW(core::Replanner({0, 4, 0.0, 1.34}, cfg, &topology, 256.0),
               CheckError);
  EXPECT_THROW(core::Replanner({4, 0, 0.0, 1.34}, cfg, &topology, 256.0),
               CheckError);
  EXPECT_THROW(core::Replanner({4, 4, 0.0, 1.34}, cfg, &topology, 0.0),
               CheckError);
}

}  // namespace
}  // namespace vela
