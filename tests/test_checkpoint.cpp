#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/vela_system.h"
#include "nn/expert.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace vela {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Checkpoint, NamedTensorRoundTrip) {
  core::NamedTensors tensors;
  Rng rng(1);
  tensors.emplace_back("alpha", ops::randn({7}, rng));
  tensors.emplace_back("beta", ops::randn({32}, rng));
  const std::string path = temp_path("roundtrip.ckpt");
  core::save_named_tensors(path, tensors);
  auto loaded = core::load_named_tensors(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].first, "alpha");
  EXPECT_TRUE(ops::allclose(loaded[0].second, tensors[0].second));
  EXPECT_TRUE(ops::allclose(loaded[1].second, tensors[1].second));
}

TEST(Checkpoint, RejectsGarbageFile) {
  const std::string path = temp_path("garbage.ckpt");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a checkpoint", f);
    std::fclose(f);
  }
  EXPECT_THROW(core::load_named_tensors(path), CheckError);
  EXPECT_THROW(core::load_named_tensors(temp_path("missing.ckpt")),
               CheckError);
}

TEST(Checkpoint, ModuleSnapshotRestore) {
  Rng rng(2);
  nn::SwiGLUExpert a("e", 8, 16, nn::LoRAConfig{2, 4.0f, true}, rng);
  for (auto& p : a.trainable_parameters()) p.var.mutable_value().fill(0.7f);
  auto snapshot = core::snapshot_trainable(a);

  Rng rng2(3);
  nn::SwiGLUExpert b("e", 8, 16, nn::LoRAConfig{2, 4.0f, true}, rng2);
  core::restore_trainable(snapshot, b);
  for (const auto& p : b.trainable_parameters()) {
    for (std::size_t i = 0; i < p.var.value().size(); ++i) {
      EXPECT_FLOAT_EQ(p.var.value()[i], 0.7f);
    }
  }
}

TEST(Checkpoint, RestoreRejectsUnknownOrMismatched) {
  Rng rng(4);
  nn::SwiGLUExpert module("e", 8, 16, nn::LoRAConfig{2, 4.0f, true}, rng);
  core::NamedTensors unknown{{"nonexistent", Tensor::ones({3})}};
  EXPECT_THROW(core::restore_trainable(unknown, module), CheckError);

  auto snapshot = core::snapshot_trainable(module);
  snapshot[0].second = Tensor::ones({1});  // wrong size
  EXPECT_THROW(core::restore_trainable(snapshot, module), CheckError);
}

TEST(Checkpoint, SystemRoundTripRestoresTraining) {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 5;
  cfg.wire_bits = 32;
  cfg.adamw.lr = 1e-3f;
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 6);
  core::VelaSystem vela(cfg, &corpus);
  auto batch = corpus.make_dataset(2, 6);

  // Train, checkpoint, train more, restore, and verify the loss returns to
  // the checkpointed value.
  for (int i = 0; i < 3; ++i) vela.train_step(batch);
  const std::string path = temp_path("system.ckpt");
  vela.save_checkpoint(path);
  const float loss_at_ckpt = vela.model().loss_batch(batch).value()[0];

  for (int i = 0; i < 3; ++i) vela.train_step(batch);
  const float loss_later = vela.model().loss_batch(batch).value()[0];
  EXPECT_NE(loss_later, loss_at_ckpt);

  vela.load_checkpoint(path);
  const float loss_restored = vela.model().loss_batch(batch).value()[0];
  EXPECT_FLOAT_EQ(loss_restored, loss_at_ckpt);
}

TEST(Checkpoint, SurvivesMigration) {
  // Checkpoint saved under one placement must load under another: states
  // are keyed by expert identity, not by hosting worker.
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 7;
  cfg.wire_bits = 32;
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 8);
  core::VelaSystem vela(cfg, &corpus);
  auto batch = corpus.make_dataset(2, 6);
  vela.train_step(batch);

  const std::string path = temp_path("migrate.ckpt");
  vela.save_checkpoint(path);
  const float loss_at_ckpt = vela.model().loss_batch(batch).value()[0];

  // Move everything to worker 0, train (diverge), then restore.
  placement::Placement manual(cfg.model.num_layers, cfg.model.num_experts);
  for (std::size_t l = 0; l < cfg.model.num_layers; ++l) {
    for (std::size_t e = 0; e < cfg.model.num_experts; ++e) {
      manual.assign(l, e, 0);
    }
  }
  vela.set_placement(manual);
  vela.train_step(batch);
  vela.load_checkpoint(path);
  EXPECT_FLOAT_EQ(vela.model().loss_batch(batch).value()[0], loss_at_ckpt);
}

}  // namespace
}  // namespace vela
