// Heartbeat/liveness protocol tests (`ctest -L degrade`, DESIGN.md §11).
//
// Three layers:
//  * PeerHealth — the per-peer state machine in isolation, driven by
//    explicit time points (healthy → suspect → dead, snap-back, terminal
//    dead, probe scheduling);
//  * HeartbeatMonitor — the fleet view on an injected FakeClock;
//  * MasterProcess / VelaSystem — probes ride the real ReliableLink, a
//    worker that dies while idle is detected by the tick, respawned within
//    budget or declared dead and degraded around.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "comm/fault_injector.h"
#include "core/expert_worker.h"
#include "core/liveness.h"
#include "core/master.h"
#include "core/vela_system.h"
#include "data/corpus.h"
#include "placement/degrade.h"
#include "util/clock.h"

namespace vela {
namespace {

using std::chrono::milliseconds;
using core::LivenessConfig;
using core::PeerState;

core::WorkerSpec spec() {
  core::WorkerSpec s;
  s.model_dim = 8;
  s.hidden_dim = 16;
  s.lora = nn::LoRAConfig{2, 4.0f, true};
  s.base_seed = 3;
  s.wire_bits = 32;
  return s;
}

placement::Placement one_layer_placement(std::size_t experts,
                                         std::size_t workers) {
  placement::Placement p(1, experts);
  for (std::size_t e = 0; e < experts; ++e) p.assign(0, e, e % workers);
  return p;
}

core::RetryPolicy fast_policy() {
  core::RetryPolicy policy;
  policy.timeout = milliseconds(60);
  policy.max_retries = 4;
  policy.backoff = 2.0;
  return policy;
}

LivenessConfig beat(std::int64_t interval_ms, int suspect_after,
                    int dead_after) {
  LivenessConfig cfg;
  cfg.interval = milliseconds(interval_ms);
  cfg.suspect_after = suspect_after;
  cfg.dead_after = dead_after;
  return cfg;
}

// --- PeerHealth state machine ------------------------------------------------

TEST(PeerHealth, WalksHealthySuspectDead) {
  const auto t0 = util::Clock::time_point{} + std::chrono::hours(1);
  core::PeerHealth h(beat(100, 1, 3), t0);
  EXPECT_EQ(h.state(), PeerState::kHealthy);
  EXPECT_EQ(h.consecutive_misses(), 0);

  h.on_miss(t0 + milliseconds(100));
  EXPECT_EQ(h.state(), PeerState::kSuspect);
  EXPECT_EQ(h.consecutive_misses(), 1);
  h.on_miss(t0 + milliseconds(200));
  EXPECT_EQ(h.state(), PeerState::kSuspect);
  h.on_miss(t0 + milliseconds(300));
  EXPECT_EQ(h.state(), PeerState::kDead);
  EXPECT_EQ(h.consecutive_misses(), 3);
}

TEST(PeerHealth, AckSnapsSuspectBackToHealthy) {
  const auto t0 = util::Clock::time_point{} + std::chrono::hours(1);
  core::PeerHealth h(beat(100, 1, 3), t0);
  h.on_miss(t0 + milliseconds(100));
  ASSERT_EQ(h.state(), PeerState::kSuspect);
  h.on_ack(t0 + milliseconds(150));
  EXPECT_EQ(h.state(), PeerState::kHealthy);
  EXPECT_EQ(h.consecutive_misses(), 0);
}

TEST(PeerHealth, DeadIsTerminalUntilReset) {
  const auto t0 = util::Clock::time_point{} + std::chrono::hours(1);
  core::PeerHealth h(beat(100, 1, 2), t0);
  h.on_miss(t0 + milliseconds(100));
  h.on_miss(t0 + milliseconds(200));
  ASSERT_EQ(h.state(), PeerState::kDead);
  // Neither acks nor further misses move a dead peer.
  h.on_ack(t0 + milliseconds(300));
  EXPECT_EQ(h.state(), PeerState::kDead);
  h.on_miss(t0 + milliseconds(400));
  EXPECT_EQ(h.consecutive_misses(), 2);
  // Dead peers are never probed again.
  EXPECT_FALSE(h.probe_due(t0 + std::chrono::hours(10)));
  // Only the recovery path's explicit reset revives it.
  h.reset(t0 + milliseconds(500));
  EXPECT_EQ(h.state(), PeerState::kHealthy);
  EXPECT_EQ(h.consecutive_misses(), 0);
}

TEST(PeerHealth, MarkDeadSkipsTheMissLadder) {
  const auto t0 = util::Clock::time_point{} + std::chrono::hours(1);
  core::PeerHealth h(beat(100, 1, 3), t0);
  h.mark_dead();
  EXPECT_EQ(h.state(), PeerState::kDead);
  EXPECT_EQ(h.consecutive_misses(), 3);
}

TEST(PeerHealth, ProbeScheduleFollowsTheClock) {
  const auto t0 = util::Clock::time_point{} + std::chrono::hours(1);
  core::PeerHealth h(beat(100, 1, 3), t0);
  EXPECT_FALSE(h.probe_due(t0));
  EXPECT_FALSE(h.probe_due(t0 + milliseconds(99)));
  EXPECT_TRUE(h.probe_due(t0 + milliseconds(100)));

  // A miss re-arms the timer (the probe itself counts as a check) …
  h.on_miss(t0 + milliseconds(100));
  EXPECT_FALSE(h.probe_due(t0 + milliseconds(150)));
  EXPECT_TRUE(h.probe_due(t0 + milliseconds(200)));
  // … and so does an ack.
  h.on_ack(t0 + milliseconds(200));
  EXPECT_FALSE(h.probe_due(t0 + milliseconds(250)));
  EXPECT_TRUE(h.probe_due(t0 + milliseconds(300)));
}

TEST(PeerHealth, ZeroIntervalDisablesProbing) {
  const auto t0 = util::Clock::time_point{} + std::chrono::hours(1);
  core::PeerHealth h(beat(0, 1, 3), t0);
  EXPECT_FALSE(h.probe_due(t0 + std::chrono::hours(10)));
}

// --- env parsing -------------------------------------------------------------

TEST(LivenessConfigEnv, ReadsHeartbeatInterval) {
  const char* saved = std::getenv("VELA_HEARTBEAT_MS");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::setenv("VELA_HEARTBEAT_MS", "250", 1);
  EXPECT_EQ(core::liveness_config_from_env().interval, milliseconds(250));
  ::setenv("VELA_HEARTBEAT_MS", "0", 1);
  EXPECT_EQ(core::liveness_config_from_env().interval, milliseconds(0));
  ::unsetenv("VELA_HEARTBEAT_MS");
  EXPECT_EQ(core::liveness_config_from_env().interval, milliseconds(0));

  if (saved != nullptr) {
    ::setenv("VELA_HEARTBEAT_MS", saved_value.c_str(), 1);
  }
}

// --- HeartbeatMonitor --------------------------------------------------------

TEST(HeartbeatMonitor, TracksAFleetOnTheInjectedClock) {
  util::FakeClock clock;
  core::HeartbeatMonitor monitor(3, beat(50, 1, 2), &clock);
  ASSERT_TRUE(monitor.enabled());
  EXPECT_EQ(monitor.num_peers(), 3u);
  EXPECT_FALSE(monitor.due(0));

  clock.advance(milliseconds(50));
  EXPECT_TRUE(monitor.due(0));
  EXPECT_TRUE(monitor.due(1));
  EXPECT_TRUE(monitor.due(2));

  monitor.record_ack(0);
  EXPECT_FALSE(monitor.due(0));
  monitor.record_miss(1);
  EXPECT_EQ(monitor.state(1), PeerState::kSuspect);
  EXPECT_FALSE(monitor.due(1));  // the miss re-armed peer 1's timer
  monitor.mark_dead(2);
  EXPECT_EQ(monitor.state(2), PeerState::kDead);

  EXPECT_EQ(monitor.count(PeerState::kHealthy), 1u);
  EXPECT_EQ(monitor.count(PeerState::kSuspect), 1u);
  EXPECT_EQ(monitor.count(PeerState::kDead), 1u);

  clock.advance(milliseconds(50));
  EXPECT_TRUE(monitor.due(0));
  EXPECT_TRUE(monitor.due(1));
  EXPECT_FALSE(monitor.due(2));  // dead: never probed

  monitor.record_miss(1);
  EXPECT_EQ(monitor.state(1), PeerState::kDead);

  monitor.reset_peer(2);
  EXPECT_EQ(monitor.state(2), PeerState::kHealthy);
}

// --- MasterProcess integration ----------------------------------------------

TEST(MasterHeartbeat, TickIsANoopWithoutEnable) {
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  core::MasterProcess master(topology, spec(), one_layer_placement(4, 5), 1,
                             4);
  EXPECT_EQ(master.heartbeat(), nullptr);
  const core::RecoveryReport report = master.heartbeat_tick();
  EXPECT_EQ(report.respawned, 0u);
  EXPECT_TRUE(report.declared_dead.empty());
  master.shutdown();
}

TEST(MasterHeartbeat, DetectsIdleDeathAndRespawnsWithinBudget) {
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  core::MasterProcess master(topology, spec(), one_layer_placement(4, 5), 1,
                             4);
  master.set_retry_policy(fast_policy());
  // A generous real slice: each virtual retry budget blocks for its full
  // real duration (waking early on arrival), so a probe reply delayed by
  // CPU contention is not mistaken for a miss on the socket backend.
  util::FakeClock clock(milliseconds(250));
  master.set_clock(&clock);
  master.snapshot_experts();
  master.enable_heartbeat(beat(100, 1, 2));
  ASSERT_NE(master.heartbeat(), nullptr);

  // Nothing is due yet: the tick sends no probes and reports nothing.
  core::RecoveryReport report = master.heartbeat_tick();
  EXPECT_EQ(report.respawned, 0u);

  // First full pass: every peer answers, the fleet stays healthy.
  clock.advance(milliseconds(150));
  report = master.heartbeat_tick();
  EXPECT_EQ(report.respawned, 0u);
  EXPECT_EQ(master.heartbeat()->count(PeerState::kHealthy), 5u);

  // Worker 2 dies while idle: the next message on its link (which is the
  // heartbeat probe itself — no training traffic flows here) is a poison
  // pill.
  comm::FaultPlan plan;
  plan.rules.push_back(
      {2, comm::LinkDir::kToWorker, 0, comm::FaultKind::kCrashWorker, 0.0});
  comm::FaultInjector injector(plan);
  master.attach_fault_injector(&injector);

  clock.advance(milliseconds(150));
  report = master.heartbeat_tick();
  EXPECT_EQ(report.respawned, 0u);  // one miss: suspect, not dead
  EXPECT_EQ(master.heartbeat()->state(2), PeerState::kSuspect);
  EXPECT_EQ(master.heartbeat()->consecutive_misses(2), 1);

  clock.advance(milliseconds(150));
  report = master.heartbeat_tick();  // second miss: dead → respawned
  EXPECT_EQ(report.respawned, 1u);
  EXPECT_TRUE(report.declared_dead.empty());
  EXPECT_EQ(master.heartbeat()->state(2), PeerState::kHealthy);
  EXPECT_EQ(master.workers_recovered(), 1u);
  EXPECT_TRUE(master.probe_worker(2));

  // The respawned worker serves its expert again, bit-exactly restored.
  Tensor state = master.query_expert_state(0, 2);
  EXPECT_GT(state.size(), 0u);
  master.shutdown();
}

TEST(MasterHeartbeat, ExhaustedBudgetDeclaresDeadAndDegrades) {
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  core::MasterProcess master(topology, spec(), one_layer_placement(4, 5), 1,
                             4);
  master.set_retry_policy(fast_policy());
  // A generous real slice: each virtual retry budget blocks for its full
  // real duration (waking early on arrival), so a probe reply delayed by
  // CPU contention is not mistaken for a miss on the socket backend.
  util::FakeClock clock(milliseconds(250));
  master.set_clock(&clock);
  master.set_respawn_budget(0);
  master.snapshot_experts();
  master.enable_heartbeat(beat(100, 1, 2));

  comm::FaultPlan plan;
  plan.rules.push_back(
      {3, comm::LinkDir::kToWorker, 0, comm::FaultKind::kCrashWorker, 0.0});
  comm::FaultInjector injector(plan);
  master.attach_fault_injector(&injector);

  clock.advance(milliseconds(150));
  core::RecoveryReport report = master.heartbeat_tick();  // miss 1: suspect
  EXPECT_TRUE(report.declared_dead.empty());
  clock.advance(milliseconds(150));
  report = master.heartbeat_tick();  // miss 2: dead, budget 0 → no respawn
  EXPECT_EQ(report.respawned, 0u);
  ASSERT_EQ(report.declared_dead.size(), 1u);
  EXPECT_EQ(report.declared_dead[0], 3u);
  EXPECT_TRUE(master.dead_mask()[3]);
  EXPECT_EQ(master.num_live_workers(), 4u);
  EXPECT_FALSE(master.probe_worker(3));  // dead: never touches the wire
  EXPECT_EQ(master.heartbeat()->state(3), PeerState::kDead);

  // The caller's obligation: degrade around the dead worker, then traffic
  // flows again.
  const placement::Placement next = placement::degrade_placement(
      master.placement(), master.dead_mask(), nullptr);
  master.degrade_to(next);
  EXPECT_NE(master.placement().worker_of(0, 3), 3u);
  for (std::size_t e = 0; e < 4; ++e) {
    EXPECT_GT(master.query_expert_state(0, e).size(), 0u);
  }
  master.shutdown();
}

// --- VelaSystem integration --------------------------------------------------

TEST(VelaHeartbeat, ArmedHeartbeatLeavesHealthyRunsBitExact) {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 3;
  cfg.wire_bits = 32;
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 17);
  auto batch = corpus.make_dataset(2, 6);

  // Reference: fault tolerance on, heartbeat off.
  std::vector<float> base_losses;
  std::vector<double> base_mb;
  {
    core::VelaSystem vela(cfg, &corpus);
    core::FaultToleranceConfig ft;
    ft.retry = fast_policy();
    vela.enable_fault_tolerance(ft);
    for (int i = 0; i < 3; ++i) {
      const auto r = vela.train_step(batch);
      base_losses.push_back(r.loss);
      base_mb.push_back(r.external_mb_per_node);
    }
  }

  // Heartbeat armed on a FakeClock. Blocking receives under the injected
  // clock auto-advance virtual time by their wait budget, so the interval
  // must dwarf a step's worth of drift: only the explicit advance() before
  // the last step makes a probe pass fire. Probes are control traffic
  // outside the exchange phases and must not move the loss.
  const std::int64_t kIntervalMs = 1'000'000'000;  // ~11 days, virtual
  util::FakeClock clock(milliseconds(250));  // full real timeouts (see above)
  core::VelaSystem vela(cfg, &corpus);
  core::FaultToleranceConfig ft;
  ft.retry = fast_policy();
  ft.liveness = beat(kIntervalMs, 1, 3);
  ft.clock = &clock;
  vela.enable_fault_tolerance(ft);
  ASSERT_NE(vela.master().heartbeat(), nullptr);

  std::vector<float> losses;
  for (int i = 0; i < 3; ++i) {
    if (i == 2) clock.advance(milliseconds(2 * kIntervalMs));
    const auto r = vela.train_step(batch);
    losses.push_back(r.loss);
    EXPECT_EQ(r.workers_lost, 0u);
  }
  EXPECT_EQ(losses, base_losses);
  EXPECT_EQ(vela.master().heartbeat()->count(PeerState::kHealthy),
            vela.master().num_workers());
  // The first two steps carried no probe traffic at all; the probe pass
  // before the last step added bytes on top of the base step's traffic.
  EXPECT_EQ(vela.history()[0].external_mb_per_node, base_mb[0]);
  EXPECT_EQ(vela.history()[1].external_mb_per_node, base_mb[1]);
  EXPECT_GT(vela.history()[2].external_mb_per_node, base_mb[2]);
}

}  // namespace
}  // namespace vela
