#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace vela {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, RejectsZeroDimension) {
  EXPECT_THROW(Tensor({2, 0}), CheckError);
}

TEST(Tensor, DataShapeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f, 3.0f}), CheckError);
}

TEST(Tensor, FromRowsLayout) {
  Tensor t = Tensor::from_rows({{1.0f, 2.0f}, {3.0f, 4.0f}});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, FromRowsRejectsRagged) {
  EXPECT_THROW(Tensor::from_rows({{1.0f}, {1.0f, 2.0f}}), CheckError);
}

TEST(Tensor, Rank3Access) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 7.0f;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 7.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from_rows({{1.0f, 2.0f, 3.0f}, {4.0f, 5.0f, 6.0f}});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(0, 1), 2.0f);
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), CheckError);
}

TEST(Tensor, CopyIsDeep) {
  Tensor a = Tensor::ones({2, 2});
  Tensor b = a;
  b.at(0, 0) = 5.0f;
  EXPECT_EQ(a.at(0, 0), 1.0f);
}

TEST(Tensor, InPlaceArithmetic) {
  Tensor a = Tensor::from_vector({1.0f, 2.0f});
  Tensor b = Tensor::from_vector({3.0f, 4.0f});
  a.add_(b);
  EXPECT_EQ(a.at(0), 4.0f);
  a.sub_(b);
  EXPECT_EQ(a.at(1), 2.0f);
  a.scale_(3.0f);
  EXPECT_EQ(a.at(0), 3.0f);
  a.axpy_(2.0f, b);
  EXPECT_EQ(a.at(1), 14.0f);
}

TEST(Tensor, InPlaceShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a.add_(b), CheckError);
}

TEST(Tensor, AllFiniteDetectsNan) {
  Tensor t = Tensor::ones({2});
  EXPECT_TRUE(t.all_finite());
  t.at(1) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(t.all_finite());
}

TEST(Tensor, WireBytesRespectsBitDepth) {
  Tensor t({4, 8});
  EXPECT_EQ(t.wire_bytes(32), 32u * 4);
  EXPECT_EQ(t.wire_bytes(16), 32u * 2);
  EXPECT_THROW(static_cast<void>(t.wire_bytes(12)), CheckError);
}

TEST(Tensor, RowsColsRequireRank2) {
  Tensor t({4});
  EXPECT_THROW(t.rows(), CheckError);
}

TEST(Tensor, ShapeString) {
  Tensor t({2, 3});
  EXPECT_EQ(t.shape_string(), "[2, 3]");
}

}  // namespace
}  // namespace vela
