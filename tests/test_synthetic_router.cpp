#include "moe/synthetic_router.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/stats.h"

namespace vela {
namespace {

moe::PlantedRouting routing(std::size_t layers = 4, std::size_t experts = 8,
                              std::size_t domains = 8) {
  return moe::PlantedRouting::generate(layers, experts, domains, 1.2, 5);
}

moe::SyntheticRouterConfig router_cfg(std::size_t domains = 8) {
  moe::SyntheticRouterConfig cfg;
  cfg.domain_dist.assign(domains, 1.0);
  cfg.domain_dist[0] = 5.0;  // skewed usage
  cfg.routing_noise = 0.05;
  cfg.seed = 3;
  return cfg;
}

TEST(SyntheticRouter, PlansAreValidTop2) {
  auto r = routing();
  moe::SyntheticRouter router(&r, router_cfg());
  auto plans = router.sample_step(64);
  ASSERT_EQ(plans.size(), 4u);
  for (const auto& plan : plans) {
    EXPECT_NO_THROW(plan.validate());
    EXPECT_EQ(plan.top_k, 2u);
    EXPECT_EQ(plan.num_tokens, 64u);
  }
}

TEST(SyntheticRouter, NoNoiseFollowsPreferencesExactly) {
  auto r = routing(2, 6, 4);
  auto cfg = router_cfg(4);
  cfg.routing_noise = 0.0;
  moe::SyntheticRouter router(&r, cfg);
  auto plans = router.sample_step(128);
  // Every token must be routed to a (primary, secondary) pair of SOME
  // domain; with 4 domains that means at most 8 distinct experts get
  // traffic and each token's two experts form a planted pair.
  for (std::size_t l = 0; l < 2; ++l) {
    std::vector<std::pair<std::size_t, std::size_t>> valid_pairs;
    for (std::size_t d = 0; d < 4; ++d) valid_pairs.push_back(r.preference(l, d));
    // Rebuild per-token expert pairs.
    std::vector<std::vector<std::size_t>> token_experts(128);
    for (std::size_t e = 0; e < plans[l].num_experts; ++e) {
      for (std::size_t t : plans[l].expert_tokens[e]) {
        token_experts[t].push_back(e);
      }
    }
    for (const auto& pair : token_experts) {
      ASSERT_EQ(pair.size(), 2u);
      bool matches = false;
      for (auto [p, s] : valid_pairs) {
        matches = matches || (std::min(p, s) == std::min(pair[0], pair[1]) &&
                              std::max(p, s) == std::max(pair[0], pair[1]));
      }
      EXPECT_TRUE(matches);
    }
  }
}

TEST(SyntheticRouter, EstimateProbabilityRowsSumToTwo) {
  auto r = routing();
  moe::SyntheticRouter router(&r, router_cfg());
  Tensor p = router.estimate_probability(4000);
  for (std::size_t l = 0; l < 4; ++l) {
    float row = 0.0f;
    for (std::size_t e = 0; e < 8; ++e) row += p.at(l, e);
    EXPECT_NEAR(row, 2.0f, 1e-4);
  }
}

TEST(SyntheticRouter, EstimateTracksAnalyticExpectation) {
  auto r = routing();
  auto cfg = router_cfg();
  cfg.routing_noise = 0.0;
  moe::SyntheticRouter router(&r, cfg);
  Tensor estimated = router.estimate_probability(20000);
  Tensor analytic = r.expected_probability(router.domain_dist());
  for (std::size_t l = 0; l < 4; ++l) {
    for (std::size_t e = 0; e < 8; ++e) {
      EXPECT_NEAR(estimated.at(l, e), analytic.at(l, e), 0.03)
          << "layer " << l << " expert " << e;
    }
  }
}

TEST(SyntheticRouter, DriftChangesDomainUsage) {
  auto r = routing();
  auto cfg = router_cfg();
  cfg.drift_sigma = 0.05;
  moe::SyntheticRouter router(&r, cfg);
  const auto before = router.domain_dist();
  for (int i = 0; i < 50; ++i) router.sample_step(16);
  EXPECT_GT(l1_distance(before, router.domain_dist()), 0.01);
}

TEST(SyntheticRouter, NoDriftKeepsDistributionFixed) {
  auto r = routing();
  moe::SyntheticRouter router(&r, router_cfg());
  const auto before = router.domain_dist();
  router.sample_step(16);
  EXPECT_DOUBLE_EQ(l1_distance(before, router.domain_dist()), 0.0);
}

TEST(SyntheticRouter, DeterministicInSeed) {
  auto r = routing();
  moe::SyntheticRouter a(&r, router_cfg());
  moe::SyntheticRouter b(&r, router_cfg());
  auto pa = a.sample_step(32);
  auto pb = b.sample_step(32);
  for (std::size_t l = 0; l < pa.size(); ++l) {
    EXPECT_EQ(pa[l].expert_tokens, pb[l].expert_tokens);
  }
}

TEST(SyntheticRouter, RejectsMismatchedDomainDist) {
  auto r = routing();
  moe::SyntheticRouterConfig cfg;
  cfg.domain_dist.assign(3, 1.0);  // routing has 8 domains
  EXPECT_THROW(moe::SyntheticRouter(&r, cfg), CheckError);
}

}  // namespace
}  // namespace vela
