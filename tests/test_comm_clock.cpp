#include "comm/comm_clock.h"

#include <gtest/gtest.h>

namespace vela {
namespace {

cluster::ClusterTopology paper_topo() {
  return cluster::ClusterTopology(cluster::ClusterConfig::paper_testbed());
}

comm::MasterWorkerPhase phase_with(std::vector<std::uint64_t> bytes) {
  comm::MasterWorkerPhase p;
  p.bytes = std::move(bytes);
  p.messages.assign(p.bytes.size(), 0);
  return p;
}

TEST(CommClock, VelaPhaseIsMaxOverWorkers) {
  auto topo = paper_topo();
  comm::CommClock clock(&topo, {});
  comm::VelaStepRecord record;
  // Worker 0 (device 1: intra, 18.3 GB/s) gets 18.3 MB -> 1 ms.
  // Worker 2 (device 3: cross, 1.17 GB/s) gets 11.7 MB -> 10 ms. Phase = 10 ms.
  record.phases.push_back(
      phase_with({18'300'000, 0, 11'700'000, 0, 0}));
  EXPECT_NEAR(clock.vela_comm_seconds(record), 0.010, 1e-6);
}

TEST(CommClock, VelaPhasesAreSerialized) {
  auto topo = paper_topo();
  comm::CommClock clock(&topo, {});
  comm::VelaStepRecord record;
  record.phases.push_back(phase_with({0, 1'170'000, 0, 0, 0}));  // 1 ms
  record.phases.push_back(phase_with({0, 0, 1'170'000, 0, 0}));  // 1 ms
  EXPECT_NEAR(clock.vela_comm_seconds(record), 0.002, 1e-6);
}

TEST(CommClock, VelaLatencyTermCounted) {
  auto topo = paper_topo();
  comm::CommClock clock(&topo, {});
  comm::VelaStepRecord record;
  comm::MasterWorkerPhase p = phase_with({0, 0, 0, 0, 0});
  p.messages[3] = 10;  // cross-node worker: 10 × 200 µs = 2 ms
  record.phases.push_back(p);
  EXPECT_NEAR(clock.vela_comm_seconds(record), 0.002, 1e-6);
}

TEST(CommClock, VelaStepAddsComputeTime) {
  auto topo = paper_topo();
  comm::CommClockConfig cfg;
  cfg.compute_seconds = 2.5;
  comm::CommClock clock(&topo, cfg);
  comm::VelaStepRecord record;
  EXPECT_DOUBLE_EQ(clock.vela_step_seconds(record), 2.5);
}

TEST(CommClock, EpSyncChargedPerPhase) {
  auto topo = paper_topo();
  comm::CommClockConfig cfg;
  cfg.ep_sync_seconds_per_phase = 0.001;
  comm::CommClock clock(&topo, cfg);
  comm::EpStepRecord record;
  comm::AllToAllPhase phase;
  phase.bytes.assign(6, std::vector<std::uint64_t>(6, 0));
  record.phases.push_back(phase);
  record.phases.push_back(phase);
  // Two empty phases still pay 2 × (sync + barrier latency).
  const double t = clock.ep_comm_seconds(record);
  EXPECT_GT(t, 0.002);
  EXPECT_LT(t, 0.01);
}

TEST(CommClock, EpTransferBoundByBusiestDevice) {
  auto topo = paper_topo();
  comm::CommClockConfig cfg;
  cfg.ep_sync_seconds_per_phase = 0.0;
  comm::CommClock clock(&topo, cfg);
  comm::EpStepRecord record;
  comm::AllToAllPhase phase;
  phase.bytes.assign(6, std::vector<std::uint64_t>(6, 0));
  phase.bytes[0][3] = 11'700'000;  // cross-node: 10 ms
  phase.bytes[1][0] = 1'830'000;   // intra-node: 0.1 ms
  record.phases.push_back(phase);
  const double t = clock.ep_comm_seconds(record);
  EXPECT_GT(t, 0.010);
  EXPECT_LT(t, 0.013);  // 10 ms + latencies + log-barrier
}

TEST(CommClock, EpAllReduceAddsTime) {
  auto topo = paper_topo();
  comm::CommClockConfig cfg;
  cfg.ep_sync_seconds_per_phase = 0.0;
  comm::CommClock clock(&topo, cfg);
  comm::EpStepRecord empty;
  comm::EpStepRecord with_allreduce;
  with_allreduce.allreduce_bytes_per_device = 11'700'000;
  EXPECT_GT(clock.ep_comm_seconds(with_allreduce),
            clock.ep_comm_seconds(empty));
}

TEST(CommClock, EpSlowerThanVelaForSameVolume) {
  // The architectural claim of §V-B: with identical bytes, EP's all-to-all
  // plus synchronization is slower than VELA's one-to-all.
  auto topo = paper_topo();
  comm::CommClock clock(&topo, {});

  comm::VelaStepRecord vela;
  comm::EpStepRecord ep;
  for (int l = 0; l < 8; ++l) {
    // VELA: 6 MB split evenly over the cross-node workers.
    comm::MasterWorkerPhase p = phase_with({0, 1'500'000, 1'500'000,
                                            1'500'000, 1'500'000});
    p.messages = {0, 2, 2, 2, 2};
    vela.phases.push_back(p);
    // EP: the same 6 MB as an all-to-all (two phases per block direction
    // would double this; keep one for a conservative comparison).
    comm::AllToAllPhase a;
    a.bytes.assign(6, std::vector<std::uint64_t>(6, 0));
    a.bytes[0][2] = 1'500'000;
    a.bytes[1][3] = 1'500'000;
    a.bytes[2][4] = 1'500'000;
    a.bytes[3][5] = 1'500'000;
    ep.phases.push_back(a);
  }
  EXPECT_GT(clock.ep_comm_seconds(ep), clock.vela_comm_seconds(vela));
}

}  // namespace
}  // namespace vela
