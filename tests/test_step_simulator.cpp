#include "core/step_simulator.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace vela {
namespace {

cluster::ClusterTopology paper_topo() {
  return cluster::ClusterTopology(cluster::ClusterConfig::paper_testbed());
}

moe::RoutePlan uniform_plan(std::size_t tokens, std::size_t experts) {
  moe::RoutePlan plan;
  plan.num_tokens = tokens;
  plan.num_experts = experts;
  plan.top_k = 1;
  plan.expert_tokens.assign(experts, {});
  for (std::size_t t = 0; t < tokens; ++t) {
    plan.expert_tokens[t % experts].push_back(t);
  }
  return plan;
}

placement::Placement seq(std::size_t layers, std::size_t experts,
                         std::size_t workers) {
  placement::Placement p(layers, experts);
  for (std::size_t l = 0; l < layers; ++l) {
    for (std::size_t e = 0; e < experts; ++e) p.assign(l, e, e % workers);
  }
  return p;
}

TEST(VelaTrafficModel, PhaseCountAndSymmetry) {
  auto topo = paper_topo();
  core::VelaTrafficModel model(&topo, {128, 0});
  std::vector<moe::RoutePlan> plans{uniform_plan(10, 5), uniform_plan(10, 5)};
  auto record = model.account_step(plans, seq(2, 5, 5));
  ASSERT_EQ(record.phases.size(), 4u);
  // Forward phase l and backward phase (2L-1-l) carry identical bytes.
  for (std::size_t w = 0; w < 5; ++w) {
    EXPECT_EQ(record.phases[0].bytes[w], record.phases[3].bytes[w]);
    EXPECT_EQ(record.phases[1].bytes[w], record.phases[2].bytes[w]);
  }
}

TEST(VelaTrafficModel, BytesPerWorkerMatchHandCount) {
  auto topo = paper_topo();
  core::VelaTrafficModel model(&topo, {128, 0});
  std::vector<moe::RoutePlan> plans{uniform_plan(10, 5)};
  auto record = model.account_step(plans, seq(1, 5, 5));
  // Each expert gets 2 tokens; each worker hosts one expert:
  // 2 tokens × 128 B × 2 directions = 512 B.
  for (std::size_t w = 0; w < 5; ++w) {
    EXPECT_EQ(record.phases[0].bytes[w], 512u);
    EXPECT_EQ(record.phases[0].messages[w], 2u);
  }
}

TEST(VelaTrafficModel, HeadersCountedPerGroup) {
  auto topo = paper_topo();
  core::VelaTrafficModel model(&topo, {128, 32});
  std::vector<moe::RoutePlan> plans{uniform_plan(10, 5)};
  auto record = model.account_step(plans, seq(1, 5, 5));
  EXPECT_EQ(record.phases[0].bytes[0], 512u + 2u * 32u);
}

TEST(VelaTrafficModel, EmptyExpertGroupsCostNothing) {
  auto topo = paper_topo();
  core::VelaTrafficModel model(&topo, {128, 32});
  moe::RoutePlan plan;
  plan.num_tokens = 4;
  plan.num_experts = 5;
  plan.top_k = 1;
  plan.expert_tokens.assign(5, {});
  plan.expert_tokens[0] = {0, 1, 2, 3};  // everything on expert 0
  auto record = model.account_step({plan}, seq(1, 5, 5));
  EXPECT_GT(record.phases[0].bytes[0], 0u);
  for (std::size_t w = 1; w < 5; ++w) {
    EXPECT_EQ(record.phases[0].bytes[w], 0u);
    EXPECT_EQ(record.phases[0].messages[w], 0u);
  }
}

TEST(VelaTrafficModel, ExternalBytesExcludeMasterNodeWorkers) {
  auto topo = paper_topo();
  core::VelaTrafficModel model(&topo, {128, 0});
  std::vector<moe::RoutePlan> plans{uniform_plan(10, 5)};
  auto record = model.account_step(plans, seq(1, 5, 5));
  // Worker 0 (device 1) shares node 0 with the master; 512 of the 5·512
  // forward bytes are internal. Same backward. External = 2 × 4 × 512.
  EXPECT_EQ(model.external_bytes(record), 2u * 4u * 512u);
}

TEST(VelaTrafficModel, AllLocalPlacementHasZeroExternal) {
  auto topo = paper_topo();
  core::VelaTrafficModel model(&topo, {128, 0});
  placement::Placement local(1, 5);
  // Worker 0 is the only one sharing the master's node.
  for (std::size_t e = 0; e < 5; ++e) local.assign(0, e, 0);
  std::vector<moe::RoutePlan> plans{uniform_plan(10, 5)};
  EXPECT_EQ(model.external_bytes(model.account_step(plans, local)), 0u);
}

placement::PlacementProblem replicated_problem() {
  placement::PlacementProblem p;
  p.num_workers = 5;
  p.num_layers = 1;
  p.num_experts = 5;
  p.probability = Tensor({1, 5});
  for (std::size_t e = 0; e < 5; ++e) p.probability.at(0, e) = 0.4f;
  for (std::size_t w = 0; w < 5; ++w) {
    p.bandwidth.push_back(w == 0 ? 18.3e9 : 1.17e9);
    p.worker_node.push_back(w == 0 ? 0 : 1 + (w - 1) / 2);
  }
  p.master_node = 0;
  p.capacity.assign(5, 3);
  p.tokens_per_step = 10.0;
  p.bytes_per_token = 128.0;
  p.validate();
  return p;
}

TEST(VelaTrafficModel, ReplicatedUnreplicatedMatchesBase) {
  auto topo = paper_topo();
  core::VelaTrafficModel model(&topo, {128, 32});
  auto problem = replicated_problem();
  std::vector<moe::RoutePlan> plans{uniform_plan(10, 5)};
  auto base = seq(1, 5, 5);
  placement::ReplicatedPlacement rp(base);
  auto plain = model.account_step(plans, base);
  auto repl = model.account_step_replicated(plans, rp, problem);
  ASSERT_EQ(plain.phases.size(), repl.phases.size());
  for (std::size_t i = 0; i < plain.phases.size(); ++i) {
    EXPECT_EQ(plain.phases[i].bytes, repl.phases[i].bytes);
  }
}

TEST(VelaTrafficModel, ReplicatedSplitsConserveTokens) {
  auto topo = paper_topo();
  core::VelaTrafficModel model(&topo, {128, 0});  // no headers: pure payload
  auto problem = replicated_problem();
  std::vector<moe::RoutePlan> plans{uniform_plan(10, 5)};
  auto base = seq(1, 5, 5);
  placement::ReplicatedPlacement rp(base);
  rp.add_replica(0, 1, 0);  // expert 1 also on the fast worker 0
  rp.add_replica(0, 2, 4);
  auto record = model.account_step_replicated(plans, rp, problem);
  // Total forward bytes must equal the unreplicated total: splits move the
  // same tokens, just to more destinations.
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < 5; ++w) total += record.phases[0].bytes[w];
  EXPECT_EQ(total, 10u * 2u * 128u);  // 10 assignments × 2 directions × 128 B
}

TEST(VelaTrafficModel, ReplicationToMasterNodeCutsExternalBytes) {
  auto topo = paper_topo();
  core::VelaTrafficModel model(&topo, {128, 0});
  auto problem = replicated_problem();
  std::vector<moe::RoutePlan> plans{uniform_plan(10, 5)};
  auto base = seq(1, 5, 5);
  placement::ReplicatedPlacement rp(base);
  rp.add_replica(0, 3, 0);  // remote expert gains a master-node replica
  const auto before = model.external_bytes(model.account_step(plans, base));
  const auto after =
      model.external_bytes(model.account_step_replicated(plans, rp, problem));
  EXPECT_LT(after, before);
}

TEST(VelaTrafficModel, RejectsZeroBytesPerToken) {
  auto topo = paper_topo();
  EXPECT_THROW(core::VelaTrafficModel(&topo, {0, 0}), CheckError);
}

}  // namespace
}  // namespace vela
