// Session-resume tests for the socket backend (`ctest -L degrade`,
// DESIGN.md §11).
//
// The contract under test: a severed TCP connection loses no frames and
// duplicates none — the transport reconnects under a bounded, deterministic
// backoff schedule, replays every unacknowledged session record, and the
// receiver's sequence numbers dedupe anything the cut left ambiguous. The
// property sweep tears the connection at EVERY byte offset of a session
// record (0 .. kSessionDataOverheadBytes + frame size) and requires
// exactly-once in-order delivery at each offset. The conservation audit
// proves replayed bytes are charged exactly once at the accounting boundary.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "comm/endpoint.h"
#include "comm/fault_injector.h"
#include "comm/message.h"
#include "comm/transport.h"
#include "tensor/tensor.h"
#include "util/audit.h"
#include "util/clock.h"

namespace vela {
namespace {

using std::chrono::milliseconds;

std::vector<std::uint8_t> test_frame(std::size_t len, std::uint8_t tag) {
  std::vector<std::uint8_t> f(len);
  for (std::size_t i = 0; i < len; ++i) {
    f[i] = static_cast<std::uint8_t>(tag * 31u + i * 7u + 1u);
  }
  return f;
}

// --- torn-connection property sweep -----------------------------------------

TEST(SessionResume, TornConnectionAtEveryByteOffsetLosesNothing) {
  constexpr std::size_t kFrameLen = 32;
  const std::size_t record_len = comm::kSessionDataOverheadBytes + kFrameLen;
  // Offset 0 cuts before any byte; record_len cuts between records (the
  // whole severed record made it onto the wire).
  for (std::size_t cut = 0; cut <= record_len; ++cut) {
    SCOPED_TRACE("byte_offset=" + std::to_string(cut));
    util::FakeClock clock;
    comm::ConnectionScript script;
    script.severs.push_back({1, cut});
    comm::SocketTransport transport(&clock, comm::ReconnectPolicy{});
    transport.set_connection_script(&script);

    for (std::uint8_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(transport.send(test_frame(kFrameLen, i)));
    }
    for (std::uint8_t i = 0; i < 3; ++i) {
      const auto got = transport.receive();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, test_frame(kFrameLen, i));
    }

    const comm::SessionStats stats = transport.session_stats();
    EXPECT_EQ(stats.frames_sent, 3u);
    EXPECT_EQ(stats.severs_injected, 1u);
    EXPECT_EQ(stats.reconnects, 1u);
    // Nothing was acked before the cut, so resume replays frames 0 and 1.
    EXPECT_EQ(stats.replayed_frames, 2u);
    EXPECT_EQ(stats.replayed_bytes, 2u * record_len);
    transport.close();
  }
}

TEST(SessionResume, HelloHandshakePrunesDeliveredFrames) {
  util::FakeClock clock;
  comm::ConnectionScript script;
  script.severs.push_back({1, 5});
  comm::SocketTransport transport(&clock, comm::ReconnectPolicy{});
  transport.set_connection_script(&script);

  // Frame 0 round-trips before the sever: the receiver's next-expected
  // sequence number (carried by the resume hello) is authoritative, so the
  // replay after the cut cannot contain more than frames {0, 1} and the
  // receiver dedupes any overlap.
  ASSERT_TRUE(transport.send(test_frame(16, 0)));
  auto got = transport.receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, test_frame(16, 0));

  ASSERT_TRUE(transport.send(test_frame(16, 1)));  // severed mid-record
  ASSERT_TRUE(transport.send(test_frame(16, 2)));
  for (std::uint8_t i = 1; i <= 2; ++i) {
    got = transport.receive();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, test_frame(16, i));
  }

  const comm::SessionStats stats = transport.session_stats();
  EXPECT_EQ(stats.reconnects, 1u);
  EXPECT_GE(stats.replayed_frames, 1u);
  EXPECT_LE(stats.replayed_frames, 2u);
  // Exactly-once held above; any replayed copy of frame 0 was discarded.
  EXPECT_EQ(stats.duplicates_discarded, stats.replayed_frames - 1u);
  transport.close();
}

TEST(SessionResume, ConcurrentReceiverSurvivesRepeatedSevers) {
  constexpr int kFrames = 60;
  util::FakeClock clock;
  comm::ConnectionScript script;
  // Full-record cuts while the receiver is actively draining: the replay
  // may race a delivery that already happened, which is exactly what the
  // receiver-side sequence dedupe is for.
  const std::size_t record_len = comm::kSessionDataOverheadBytes + 24;
  script.severs.push_back({10, record_len});
  script.severs.push_back({25, 7});
  script.severs.push_back({40, record_len});
  comm::SocketTransport transport(&clock, comm::ReconnectPolicy{});
  transport.set_connection_script(&script);

  std::vector<std::vector<std::uint8_t>> received;
  std::thread rx([&transport, &received] {
    while (auto f = transport.receive()) received.push_back(std::move(*f));
  });
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(transport.send(test_frame(24, static_cast<std::uint8_t>(i))));
  }
  transport.close();
  rx.join();

  // Exactly once, in order — no matter how deliveries interleaved with the
  // three resumes.
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(received[i], test_frame(24, static_cast<std::uint8_t>(i)))
        << "frame " << i;
  }
  const comm::SessionStats stats = transport.session_stats();
  EXPECT_EQ(stats.severs_injected, 3u);
  EXPECT_EQ(stats.reconnects, 3u);
  EXPECT_GE(stats.replayed_frames, 3u);
}

// --- reconnect schedule ------------------------------------------------------

TEST(SessionResume, RefusalsShortOfTheBudgetRecover) {
  util::FakeClock clock;
  comm::ConnectionScript script;
  script.severs.push_back({1, 0});
  script.refuse_reconnects = 3;
  comm::ReconnectPolicy policy;  // base 5ms, ×2, max 250ms, 8 attempts
  comm::SocketTransport transport(&clock, policy);
  transport.set_connection_script(&script);

  for (std::uint8_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(transport.send(test_frame(16, i)));
  }
  for (std::uint8_t i = 0; i < 3; ++i) {
    const auto got = transport.receive();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, test_frame(16, i));
  }

  const comm::SessionStats stats = transport.session_stats();
  EXPECT_EQ(stats.refused_connects, 3u);
  EXPECT_EQ(stats.reconnects, 1u);
  // Attempt 1 is immediate; attempts 2–4 back off 5, 10, 20 ms plus a
  // seeded jitter in [0, base] each — all in virtual time.
  EXPECT_EQ(clock.sleep_calls(), 3u);
  EXPECT_GE(clock.total_slept(), milliseconds(35));
  EXPECT_LE(clock.total_slept(), milliseconds(50));
  transport.close();
}

TEST(SessionResume, BackoffScheduleIsDeterministicAndBounded) {
  const auto run = [](comm::ReconnectPolicy policy) {
    util::FakeClock clock;
    comm::ConnectionScript script;
    script.severs.push_back({0, 0});
    script.refuse_reconnects = 6;
    comm::SocketTransport transport(&clock, policy);
    transport.set_connection_script(&script);
    EXPECT_TRUE(transport.send(test_frame(8, 1)));
    const auto got = transport.receive();
    EXPECT_TRUE(got.has_value());
    transport.close();
    return clock.total_slept();
  };

  comm::ReconnectPolicy policy;
  const auto first = run(policy);
  const auto second = run(policy);
  // Same seed, same schedule: the jitter is deterministic by construction.
  EXPECT_EQ(first, second);
  // Attempts 2–7 back off 5, 10, 20, 40, 80, 160 ms (+ jitter ≤ 5 each).
  EXPECT_GE(first, milliseconds(315));
  EXPECT_LE(first, milliseconds(345));

  // A tight cap truncates the exponential tail.
  policy.backoff_max = milliseconds(20);
  const auto capped = run(policy);
  EXPECT_GE(capped, milliseconds(5 + 10 + 20 * 4));
  EXPECT_LE(capped, milliseconds(5 + 10 + 20 * 4 + 6 * 5));
}

TEST(SessionResume, ExhaustedReconnectBudgetKillsTheSession) {
  util::FakeClock clock;
  comm::ConnectionScript script;
  script.severs.push_back({1, 0});
  script.refuse_reconnects = 99;  // >= budget: the sever is permanent
  comm::ReconnectPolicy policy;
  policy.max_attempts = 3;
  comm::SocketTransport transport(&clock, policy);
  transport.set_connection_script(&script);

  EXPECT_TRUE(transport.send(test_frame(16, 0)));
  EXPECT_FALSE(transport.send(test_frame(16, 1)));  // budget exhausted here
  EXPECT_TRUE(transport.closed());
  EXPECT_FALSE(transport.send(test_frame(16, 2)));

  // The receiver must terminate (frames the cut stranded may be lost; the
  // layers above turn this into worker death and re-placement).
  std::size_t drained = 0;
  while (transport.receive().has_value()) ++drained;
  EXPECT_LE(drained, 1u);

  const comm::SessionStats stats = transport.session_stats();
  EXPECT_EQ(stats.refused_connects, 3u);
  EXPECT_EQ(stats.reconnects, 0u);
  EXPECT_EQ(stats.severs_injected, 1u);
}

TEST(SessionResume, AcceptDelayIsChargedToTheInjectedClock) {
  util::FakeClock clock;
  comm::ConnectionScript script;
  script.severs.push_back({1, 3});
  script.accept_delay = milliseconds(75);
  comm::SocketTransport transport(&clock, comm::ReconnectPolicy{});
  transport.set_connection_script(&script);

  for (std::uint8_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(transport.send(test_frame(16, i)));
  }
  for (std::uint8_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(transport.receive().has_value());
  }
  // Attempt 1 carries no backoff sleep, so the only charge is the scripted
  // accept stall — in virtual time, not wall time.
  EXPECT_EQ(clock.total_slept(), milliseconds(75));
  EXPECT_EQ(clock.sleep_calls(), 1u);
  transport.close();
}

// --- backend invariance at the transport layer -------------------------------

TEST(SessionResume, InProcScriptedSeverClosesTheQueuePermanently) {
  comm::InProcTransport transport;
  comm::ConnectionScript script;
  script.severs.push_back({2, 0});
  script.refuse_reconnects = 99;
  transport.set_connection_script(&script);

  EXPECT_TRUE(transport.send(test_frame(16, 0)));
  EXPECT_TRUE(transport.send(test_frame(16, 1)));
  EXPECT_FALSE(transport.send(test_frame(16, 2)));  // sever: permanent close
  EXPECT_TRUE(transport.closed());
  EXPECT_FALSE(transport.send(test_frame(16, 3)));

  // Close-then-drain: frames accepted before the sever are delivered.
  auto got = transport.receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, test_frame(16, 0));
  got = transport.receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, test_frame(16, 1));
  EXPECT_FALSE(transport.receive().has_value());
}

TEST(SessionResume, SeverPlusRefuseAllKillsTheLinkOnBothBackends) {
  // The backend-invariant "worker killed" signal: sends before the sever
  // succeed, the severed send and everything after it fail, and the
  // transport reports closed. (What the receiver can still drain differs —
  // in-proc keeps its queue, TCP loses kernel-buffered bytes with the
  // connection — which is why the degrade path above this layer only
  // relies on the death signal, not on drained bytes.)
  util::FakeClock clock;
  comm::ReconnectPolicy policy;
  policy.max_attempts = 2;
  comm::ConnectionScript script;
  script.severs.push_back({1, 0});
  script.refuse_reconnects = 99;

  comm::InProcTransport inproc;
  comm::SocketTransport socket(&clock, policy);
  for (comm::Transport* t :
       std::vector<comm::Transport*>{&inproc, &socket}) {
    SCOPED_TRACE(t->name());
    t->set_connection_script(&script);
    EXPECT_TRUE(t->send(test_frame(16, 0)));
    EXPECT_FALSE(t->send(test_frame(16, 1)));
    EXPECT_FALSE(t->send(test_frame(16, 2)));
    EXPECT_TRUE(t->closed());
    std::size_t drained = 0;
    while (t->receive().has_value()) ++drained;
    EXPECT_LE(drained, 1u);
  }
}

// --- conservation audit ------------------------------------------------------

TEST(SessionResume, ReplayedBytesAreChargedExactlyOnce) {
  // The ledger accounts at the Endpoint (message) boundary; session replays
  // happen below it. With replays > 0 and the balance intact, the replayed
  // bytes were charged exactly once: the receiver's dedupe keeps a replayed
  // frame from ever reaching `delivered` twice.
  audit::set_enabled_for_testing(true);
  audit::ConservationLedger::instance().reset_for_testing();
  std::vector<std::pair<std::string, std::string>> violations;
  audit::set_violation_handler(
      [&violations](const std::string& category, const std::string& detail) {
        violations.emplace_back(category, detail);
      });
  {
    comm::FaultPlan plan;
    comm::ConnectionFaultRule rule;
    rule.link = 0;
    rule.dir = comm::LinkDir::kToWorker;
    rule.script.severs.push_back({2, 7});
    plan.connection_rules.push_back(rule);
    comm::FaultInjector injector(plan);

    comm::DuplexLink link(comm::TransportKind::kSocket, 0, 1, nullptr);
    link.set_fault_injector(&injector, 0);
    for (std::uint64_t i = 0; i < 6; ++i) {
      comm::Message m;
      m.type = comm::MessageType::kExpertForward;
      m.request_id = i;
      m.payload = Tensor::ones({2, 4});
      ASSERT_TRUE(link.to_worker.send(std::move(m)));
    }
    for (std::uint64_t i = 0; i < 6; ++i) {
      const auto got = link.to_worker.receive();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->request_id, i);
    }
    const auto snap = audit::ConservationLedger::instance().snapshot();
    EXPECT_GE(snap.session_replays, 1u);
    EXPECT_GT(snap.session_replay_bytes, 0u);
    EXPECT_TRUE(snap.balanced());
    EXPECT_EQ(snap.posted, snap.delivered);  // everything arrived, no drops
    audit::ConservationLedger::instance().check("session-resume-test");
    link.close();
  }
  audit::set_violation_handler(nullptr);
  audit::ConservationLedger::instance().reset_for_testing();
  audit::set_enabled_for_testing(false);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " audit violation(s), first: "
      << violations.front().first << ": " << violations.front().second;
}

}  // namespace
}  // namespace vela
