#include "comm/serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace vela {
namespace {

TEST(Half, ExactValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -4.0f, 0.25f, 1024.0f,
                  -0.125f, 65504.0f /* max finite half */}) {
    EXPECT_EQ(comm::half_to_float(comm::float_to_half(v)), v) << v;
  }
}

TEST(Half, SignedZeroPreserved) {
  EXPECT_EQ(comm::float_to_half(0.0f), 0x0000);
  EXPECT_EQ(comm::float_to_half(-0.0f), 0x8000);
}

TEST(Half, InfinityAndNan) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(comm::float_to_half(inf), 0x7C00);
  EXPECT_EQ(comm::float_to_half(-inf), 0xFC00);
  EXPECT_TRUE(std::isinf(comm::half_to_float(0x7C00)));
  const std::uint16_t nan_half =
      comm::float_to_half(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(std::isnan(comm::half_to_float(nan_half)));
}

TEST(Half, OverflowSaturatesToInf) {
  EXPECT_EQ(comm::float_to_half(1e10f), 0x7C00);
  EXPECT_EQ(comm::float_to_half(-1e10f), 0xFC00);
}

TEST(Half, SubnormalsRepresented) {
  // Smallest positive half subnormal is 2^-24 ≈ 5.96e-8.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(comm::half_to_float(comm::float_to_half(tiny)), tiny);
  // Below half precision entirely → flush to zero.
  EXPECT_EQ(comm::half_to_float(comm::float_to_half(1e-9f)), 0.0f);
}

TEST(Half, RoundTripErrorWithinOneUlp) {
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const float v = static_cast<float>(rng.normal(0.0, 10.0));
    const float back = comm::half_to_float(comm::float_to_half(v));
    EXPECT_NEAR(back, v, std::abs(v) / 1024.0f + 1e-7f);
  }
}

TEST(Half, RoundToNearestEven) {
  // 2048 + 1 = 2049 is exactly halfway between representable 2048 and 2050;
  // nearest-even picks 2048.
  EXPECT_EQ(comm::half_to_float(comm::float_to_half(2049.0f)), 2048.0f);
  // 2051 is halfway between 2050 and 2052 → even mantissa gives 2052.
  EXPECT_EQ(comm::half_to_float(comm::float_to_half(2051.0f)), 2052.0f);
}

comm::Message sample_message(unsigned wire_bits) {
  comm::Message msg;
  msg.type = comm::MessageType::kExpertForward;
  msg.request_id = 0xABCDEF0123456789ull;
  msg.layer = 7;
  msg.expert = 3;
  msg.step = 42;
  Rng rng(5);
  msg.payload = ops::randn({6, 4}, rng);
  msg.wire_bits = wire_bits;
  return msg;
}

TEST(Serialize, EncodedSizeEqualsWireSize) {
  for (unsigned bits : {16u, 32u}) {
    const comm::Message msg = sample_message(bits);
    EXPECT_EQ(comm::encode(msg).size(), msg.wire_size()) << bits;
  }
  comm::Message control;
  control.type = comm::MessageType::kShutdown;
  EXPECT_EQ(comm::encode(control).size(), comm::Message::kHeaderBytes);
}

TEST(Serialize, RoundTrip32BitIsExact) {
  const comm::Message msg = sample_message(32);
  const comm::Message back = comm::decode(comm::encode(msg));
  EXPECT_EQ(back.type, msg.type);
  EXPECT_EQ(back.request_id, msg.request_id);
  EXPECT_EQ(back.layer, msg.layer);
  EXPECT_EQ(back.expert, msg.expert);
  EXPECT_EQ(back.step, msg.step);
  ASSERT_EQ(back.payload.size(), msg.payload.size());
  for (std::size_t i = 0; i < msg.payload.size(); ++i) {
    EXPECT_EQ(back.payload[i], msg.payload[i]);
  }
}

TEST(Serialize, RoundTrip16BitMatchesHalfRounding) {
  const comm::Message msg = sample_message(16);
  const comm::Message back = comm::decode(comm::encode(msg));
  ASSERT_EQ(back.payload.size(), msg.payload.size());
  for (std::size_t i = 0; i < msg.payload.size(); ++i) {
    EXPECT_EQ(back.payload[i],
              comm::half_to_float(comm::float_to_half(msg.payload[i])));
  }
}

TEST(Serialize, PhantomMessagesRejected) {
  comm::Message msg;
  msg.phantom_bytes = 100;
  EXPECT_THROW(comm::encode(msg), CheckError);
}

TEST(Serialize, TruncatedBufferRejected) {
  auto bytes = comm::encode(sample_message(32));
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(comm::decode(bytes), CheckError);
  std::vector<std::uint8_t> tiny(8, 0);
  EXPECT_THROW(comm::decode(tiny), CheckError);
}

TEST(Serialize, TrailingBytesRejected) {
  auto bytes = comm::encode(sample_message(32));
  bytes.push_back(0);
  EXPECT_THROW(comm::decode(bytes), CheckError);
}

TEST(Serialize, HalfPrecisionTensorOpAgreesWithCodec) {
  // ops::to_half_precision (used by the quantize-wire runtime path) and the
  // binary16 codec must implement the same value set.
  Rng rng(7);
  Tensor t = ops::randn({512}, rng, 0.0f, 3.0f);
  Tensor rounded = ops::to_half_precision(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_FLOAT_EQ(rounded[i],
                    comm::half_to_float(comm::float_to_half(t[i])))
        << "element " << i << " value " << t[i];
  }
}

}  // namespace
}  // namespace vela
