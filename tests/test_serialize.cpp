#include "comm/serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "tensor/ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace vela {
namespace {

TEST(Half, ExactValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -4.0f, 0.25f, 1024.0f,
                  -0.125f, 65504.0f /* max finite half */}) {
    EXPECT_EQ(comm::half_to_float(comm::float_to_half(v)), v) << v;
  }
}

TEST(Half, SignedZeroPreserved) {
  EXPECT_EQ(comm::float_to_half(0.0f), 0x0000);
  EXPECT_EQ(comm::float_to_half(-0.0f), 0x8000);
}

TEST(Half, InfinityAndNan) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(comm::float_to_half(inf), 0x7C00);
  EXPECT_EQ(comm::float_to_half(-inf), 0xFC00);
  EXPECT_TRUE(std::isinf(comm::half_to_float(0x7C00)));
  const std::uint16_t nan_half =
      comm::float_to_half(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(std::isnan(comm::half_to_float(nan_half)));
}

TEST(Half, OverflowSaturatesToInf) {
  EXPECT_EQ(comm::float_to_half(1e10f), 0x7C00);
  EXPECT_EQ(comm::float_to_half(-1e10f), 0xFC00);
}

TEST(Half, SubnormalsRepresented) {
  // Smallest positive half subnormal is 2^-24 ≈ 5.96e-8.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(comm::half_to_float(comm::float_to_half(tiny)), tiny);
  // Below half precision entirely → flush to zero.
  EXPECT_EQ(comm::half_to_float(comm::float_to_half(1e-9f)), 0.0f);
}

TEST(Half, RoundTripErrorWithinOneUlp) {
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const float v = static_cast<float>(rng.normal(0.0, 10.0));
    const float back = comm::half_to_float(comm::float_to_half(v));
    EXPECT_NEAR(back, v, std::abs(v) / 1024.0f + 1e-7f);
  }
}

TEST(Half, RoundToNearestEven) {
  // 2048 + 1 = 2049 is exactly halfway between representable 2048 and 2050;
  // nearest-even picks 2048.
  EXPECT_EQ(comm::half_to_float(comm::float_to_half(2049.0f)), 2048.0f);
  // 2051 is halfway between 2050 and 2052 → even mantissa gives 2052.
  EXPECT_EQ(comm::half_to_float(comm::float_to_half(2051.0f)), 2052.0f);
}

comm::Message sample_message(unsigned wire_bits) {
  comm::Message msg;
  msg.type = comm::MessageType::kExpertForward;
  msg.request_id = 0xABCDEF0123456789ull;
  msg.layer = 7;
  msg.expert = 3;
  msg.step = 42;
  Rng rng(5);
  msg.payload = ops::randn({6, 4}, rng);
  msg.wire_bits = wire_bits;
  return msg;
}

TEST(Serialize, EncodedSizeEqualsWireSize) {
  for (unsigned bits : {16u, 32u}) {
    const comm::Message msg = sample_message(bits);
    EXPECT_EQ(comm::encode(msg).size(), msg.wire_size()) << bits;
  }
  comm::Message control;
  control.type = comm::MessageType::kShutdown;
  EXPECT_EQ(comm::encode(control).size(), comm::Message::kHeaderBytes);
}

TEST(Serialize, RoundTrip32BitIsExact) {
  const comm::Message msg = sample_message(32);
  const comm::Message back = comm::decode(comm::encode(msg));
  EXPECT_EQ(back.type, msg.type);
  EXPECT_EQ(back.request_id, msg.request_id);
  EXPECT_EQ(back.layer, msg.layer);
  EXPECT_EQ(back.expert, msg.expert);
  EXPECT_EQ(back.step, msg.step);
  ASSERT_EQ(back.payload.size(), msg.payload.size());
  for (std::size_t i = 0; i < msg.payload.size(); ++i) {
    EXPECT_EQ(back.payload[i], msg.payload[i]);
  }
}

TEST(Serialize, RoundTrip16BitMatchesHalfRounding) {
  const comm::Message msg = sample_message(16);
  const comm::Message back = comm::decode(comm::encode(msg));
  ASSERT_EQ(back.payload.size(), msg.payload.size());
  for (std::size_t i = 0; i < msg.payload.size(); ++i) {
    EXPECT_EQ(back.payload[i],
              comm::half_to_float(comm::float_to_half(msg.payload[i])));
  }
}

TEST(Serialize, PhantomMessagesRejected) {
  comm::Message msg;
  msg.phantom_bytes = 100;
  EXPECT_THROW(comm::encode(msg), CheckError);
}

TEST(Serialize, TruncatedBufferRejected) {
  auto bytes = comm::encode(sample_message(32));
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(comm::decode(bytes), CheckError);
  std::vector<std::uint8_t> tiny(8, 0);
  EXPECT_THROW(comm::decode(tiny), CheckError);
}

TEST(Serialize, TrailingBytesRejected) {
  auto bytes = comm::encode(sample_message(32));
  bytes.push_back(0);
  EXPECT_THROW(comm::decode(bytes), CheckError);
}

// --- edge-value round-trip properties ----------------------------------------

// The IEEE corner cases a lossy codec is most likely to mangle.
std::vector<float> edge_values() {
  const float inf = std::numeric_limits<float>::infinity();
  float nan_payload;
  const std::uint32_t nan_bits = 0x7FC01234u;  // qNaN with payload bits set
  std::memcpy(&nan_payload, &nan_bits, sizeof(float));
  return {0.0f,
          -0.0f,
          inf,
          -inf,
          nan_payload,
          65504.0f,                                // max finite binary16
          -65504.0f,
          std::ldexp(1.0f, -24),                   // smallest binary16 subnormal
          std::ldexp(1.0f, -14),                   // smallest binary16 normal
          std::numeric_limits<float>::max(),       // max finite binary32
          std::numeric_limits<float>::lowest(),
          std::numeric_limits<float>::denorm_min(),  // binary32 subnormal
          std::numeric_limits<float>::min()};
}

std::uint32_t bits_of(float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, sizeof(std::uint32_t));
  return b;
}

TEST(Serialize, Binary32RoundTripPreservesEveryBitPattern) {
  // 32-bit transport is declared lossless; that must include signed zeros,
  // infinities, subnormals and NaN payload bits — compare bit patterns, not
  // values (NaN != NaN).
  const auto edges = edge_values();
  comm::Message msg;
  msg.type = comm::MessageType::kExpertForward;
  msg.request_id = 9;
  msg.wire_bits = 32;
  msg.payload = Tensor::ones({edges.size()});
  for (std::size_t i = 0; i < edges.size(); ++i) msg.payload[i] = edges[i];
  const comm::Message back = comm::decode(comm::encode(msg));
  ASSERT_EQ(back.payload.size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(bits_of(back.payload[i]), bits_of(edges[i]))
        << "edge value index " << i;
  }
}

TEST(Serialize, Binary16RoundTripHandlesEdgeValues) {
  // Through the 16-bit codec every edge value must land on the value the
  // binary16 format defines for it — and a second trip must be a fixed
  // point (quantization is idempotent).
  const auto edges = edge_values();
  comm::Message msg;
  msg.type = comm::MessageType::kExpertForward;
  msg.request_id = 10;
  msg.wire_bits = 16;
  msg.payload = Tensor::ones({edges.size()});
  for (std::size_t i = 0; i < edges.size(); ++i) msg.payload[i] = edges[i];
  const comm::Message once = comm::decode(comm::encode(msg));
  ASSERT_EQ(once.payload.size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const float expected = comm::half_to_float(comm::float_to_half(edges[i]));
    if (std::isnan(expected)) {
      EXPECT_TRUE(std::isnan(once.payload[i])) << "index " << i;
    } else {
      EXPECT_EQ(bits_of(once.payload[i]), bits_of(expected)) << "index " << i;
    }
  }
  // ±0 signs, ±inf and max-finite survive exactly.
  EXPECT_EQ(bits_of(once.payload[0]), bits_of(0.0f));
  EXPECT_EQ(bits_of(once.payload[1]), bits_of(-0.0f));
  EXPECT_TRUE(std::isinf(once.payload[2]) && once.payload[2] > 0);
  EXPECT_TRUE(std::isinf(once.payload[3]) && once.payload[3] < 0);
  EXPECT_TRUE(std::isnan(once.payload[4]));
  EXPECT_EQ(once.payload[5], 65504.0f);
  EXPECT_EQ(once.payload[6], -65504.0f);
  // Idempotence: re-encoding the decoded tensor changes nothing.
  comm::Message again = once;
  again.wire_bits = 16;
  const comm::Message twice = comm::decode(comm::encode(again));
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (std::isnan(once.payload[i])) {
      EXPECT_TRUE(std::isnan(twice.payload[i])) << "index " << i;
    } else {
      EXPECT_EQ(bits_of(twice.payload[i]), bits_of(once.payload[i]))
          << "index " << i;
    }
  }
}

TEST(Serialize, ZeroLengthTensorFramesAndRoundTrips) {
  // A message whose payload is a zero-element tensor is pure framing: it
  // must encode to exactly one header, decode back to an empty payload, and
  // carry all routing fields intact.
  comm::Message msg;
  msg.type = comm::MessageType::kExpertForwardResult;
  msg.request_id = 77;
  msg.layer = 1;
  msg.expert = 2;
  msg.step = 5;
  msg.wire_bits = 32;
  msg.payload = Tensor();  // zero-element: dims must be positive, so "empty"
                           // is the default tensor — pure framing
  EXPECT_EQ(msg.wire_size(), comm::Message::kHeaderBytes);
  const auto bytes = comm::encode(msg);
  EXPECT_EQ(bytes.size(), comm::Message::kHeaderBytes);
  const comm::Message back = comm::decode(bytes);
  EXPECT_EQ(back.type, msg.type);
  EXPECT_EQ(back.request_id, msg.request_id);
  EXPECT_EQ(back.layer, msg.layer);
  EXPECT_EQ(back.expert, msg.expert);
  EXPECT_EQ(back.step, msg.step);
  EXPECT_EQ(back.payload.size(), 0u);
}

// --- fragment framing (the overlap pipeline's wire contract) -----------------

TEST(Serialize, ChunkFieldsRoundTripThroughCodec) {
  comm::Message msg = sample_message(32);
  msg.chunk_index = 3;
  msg.chunk_count = 5;
  const comm::Message back = comm::decode(comm::encode(msg));
  EXPECT_EQ(back.chunk_index, 3u);
  EXPECT_EQ(back.chunk_count, 5u);
  // Defaults (unfragmented) survive too.
  const comm::Message plain = comm::decode(comm::encode(sample_message(32)));
  EXPECT_EQ(plain.chunk_index, 0u);
  EXPECT_EQ(plain.chunk_count, 1u);
}

TEST(Serialize, MalformedChunkFieldsRejected) {
  // Header layout: byte 2 = chunk_index, byte 3 = chunk_count.
  auto zero_count = comm::encode(sample_message(32));
  zero_count[3] = 0;  // chunk_count must be >= 1
  EXPECT_THROW(comm::decode(zero_count), CheckError);
  auto index_beyond = comm::encode(sample_message(32));
  index_beyond[2] = 4;
  index_beyond[3] = 4;  // chunk_index must be < chunk_count
  EXPECT_THROW(comm::decode(index_beyond), CheckError);
}

TEST(Serialize, FragmentTrainCostsExactlyOneHeader) {
  // Splitting a transfer into K row fragments must not change its wire
  // cost: fragment 0 carries the header, continuations are payload-only, so
  // the train's total equals the unfragmented message's total — at both
  // transport precisions and for any K.
  Rng rng(11);
  const Tensor full = ops::randn({12, 4}, rng);
  for (unsigned bits : {16u, 32u}) {
    comm::Message whole;
    whole.type = comm::MessageType::kExpertForward;
    whole.request_id = 100;
    whole.wire_bits = bits;
    whole.payload = full;
    for (std::size_t k : {2u, 3u, 5u, 12u}) {
      std::uint64_t train_bytes = 0;
      std::size_t at = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const std::size_t rows = 12 / k + (c < 12 % k ? 1 : 0);
        comm::Message frag;
        frag.type = comm::MessageType::kExpertForward;
        frag.request_id = 100 + c;
        frag.wire_bits = bits;
        frag.chunk_index = static_cast<std::uint8_t>(c);
        frag.chunk_count = static_cast<std::uint8_t>(k);
        frag.payload = ops::slice_rows(full, at, rows);
        at += rows;
        train_bytes += frag.wire_size();
      }
      ASSERT_EQ(at, 12u);
      EXPECT_EQ(train_bytes, whole.wire_size()) << "bits " << bits << " K " << k;
    }
  }
}

TEST(Serialize, HalfPrecisionTensorOpAgreesWithCodec) {
  // ops::to_half_precision (used by the quantize-wire runtime path) and the
  // binary16 codec must implement the same value set.
  Rng rng(7);
  Tensor t = ops::randn({512}, rng, 0.0f, 3.0f);
  Tensor rounded = ops::to_half_precision(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_FLOAT_EQ(rounded[i],
                    comm::half_to_float(comm::float_to_half(t[i])))
        << "element " << i << " value " << t[i];
  }
}

}  // namespace
}  // namespace vela
