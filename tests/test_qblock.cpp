// Conformance tests for the per-row block int8 codec (tensor/qblock.h) and
// the packed-GEMM microkernels (tensor/qgemm.h) — the numeric foundation of
// the quantized wire tier (`ctest -L quant`, DESIGN.md §13).
#include "tensor/qblock.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "tensor/ops.h"
#include "tensor/qgemm.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vela {
namespace {

// ---------------------------------------------------------------------------
// Quant/dequant round-trip properties
// ---------------------------------------------------------------------------

TEST(QBlock, AllZeroBlocksStoreZeroScaleAndCodes) {
  const qblock::QTensor q = qblock::quantize(Tensor::zeros({3, 70}));
  EXPECT_EQ(q.rows, 3u);
  EXPECT_EQ(q.cols, 70u);
  for (const float s : q.scales) EXPECT_EQ(s, 0.0f);
  for (const std::int8_t c : q.codes) EXPECT_EQ(c, 0);
  const Tensor back = qblock::dequantize(q);
  for (std::size_t i = 0; i < back.size(); ++i) EXPECT_EQ(back[i], 0.0f);
}

TEST(QBlock, SignedZeroQuantizesToPlusZero) {
  // -0.0f has absmax 0 → zero scale, zero codes; the sign of zero does not
  // survive (symmetric codes have a single zero).
  const Tensor t({1, 2}, {0.0f, -0.0f});
  const Tensor back = qblock::dequantize(qblock::quantize(t, qblock::kBlock32));
  EXPECT_FALSE(std::signbit(back[0]));
  EXPECT_FALSE(std::signbit(back[1]));
}

TEST(QBlock, MaxMagnitudeElementsHitFullScaleCodes) {
  Tensor t = Tensor::zeros({1, 64});
  t[0] = 10.0f;
  t[63] = -10.0f;
  const qblock::QTensor q = qblock::quantize(t, qblock::kBlock64);
  EXPECT_EQ(q.codes[0], 127);
  EXPECT_EQ(q.codes[63], -127);
  EXPECT_EQ(q.scales[0], 10.0f / 127.0f);
  const Tensor back = qblock::dequantize(q);
  EXPECT_NEAR(back[0], 10.0f, 10.0f / 127.0f);
  EXPECT_NEAR(back[63], -10.0f, 10.0f / 127.0f);
}

TEST(QBlock, DenormalBlocksUnderflowToZeroWithoutTrapping) {
  // absmax = denorm_min → scale = denorm_min/127 rounds to 0; the contract
  // is all-zero codes, not a division by the underflowed scale.
  const float denorm = std::numeric_limits<float>::denorm_min();
  Tensor t = Tensor::full({2, 32}, denorm);
  t[5] = -denorm;
  const qblock::QTensor q = qblock::quantize(t, qblock::kBlock32);
  for (const float s : q.scales) EXPECT_EQ(s, 0.0f);
  for (const std::int8_t c : q.codes) EXPECT_EQ(c, 0);
  const Tensor back = qblock::dequantize(q);
  for (std::size_t i = 0; i < back.size(); ++i) EXPECT_EQ(back[i], 0.0f);
}

TEST(QBlock, NanAndInfPayloadsRejected) {
  Tensor nan_t = Tensor::zeros({1, 8});
  nan_t[3] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(qblock::quantize(nan_t, qblock::kBlock32), CheckError);
  Tensor inf_t = Tensor::zeros({1, 8});
  inf_t[0] = std::numeric_limits<float>::infinity();
  EXPECT_THROW(qblock::quantize(inf_t, qblock::kBlock32), CheckError);
}

TEST(QBlock, InvalidBlockLengthRejected) {
  const Tensor t = Tensor::zeros({1, 8});
  for (const unsigned bad : {0u, 8u, 16u, 48u, 128u}) {
    EXPECT_THROW(qblock::quantize(t, bad), CheckError) << bad;
  }
}

TEST(QBlock, RelativeErrorBoundedByHalfStep) {
  // |x - dequant(quant(x))| <= scale/2 + float rounding, per element.
  Rng rng(11);
  const Tensor t = ops::randn({7, 100}, rng);
  const qblock::QTensor q = qblock::quantize(t, qblock::kBlock32);
  const Tensor back = qblock::dequantize(q);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t r = 0; r < q.rows; ++r) {
    for (std::size_t c = 0; c < q.cols; ++c) {
      const std::size_t i = r * q.cols + c;
      const float scale = q.scales[r * q.row_blocks() + c / q.block];
      EXPECT_NEAR(back[i], t[i], scale * 0.5f + 1e-6f) << "element " << i;
    }
  }
}

TEST(QBlock, CodesExactUnderRequantization) {
  // quantize(dequantize(q)) reproduces codes and byte counts exactly —
  // the property that makes the sender-side roundtrip transform idempotent
  // on the wire (scales only agree to float rounding; codes are pinned).
  Rng rng(3);
  for (const unsigned block : {qblock::kBlock32, qblock::kBlock64}) {
    const Tensor t = ops::randn({5, 97}, rng);
    const qblock::QTensor q1 = qblock::quantize(t, block);
    const qblock::QTensor q2 = qblock::quantize(qblock::dequantize(q1), block);
    EXPECT_EQ(q1.codes, q2.codes) << "block " << block;
    EXPECT_EQ(q1.wire_bytes(), q2.wire_bytes());
  }
}

TEST(QBlock, BlocksNeverSpanRows) {
  // Quantizing a row slice reproduces that row's blocks exactly — the
  // property the overlap pipeline's K-fragment bit-identity rests on.
  Rng rng(19);
  const std::size_t rows = 6, cols = 45;  // short last block per row
  const Tensor t = ops::randn({rows, cols}, rng);
  const qblock::QTensor whole = qblock::quantize(t, qblock::kBlock32);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<float> row(t.data() + r * cols, t.data() + (r + 1) * cols);
    const qblock::QTensor alone =
        qblock::quantize(Tensor({1, cols}, row), qblock::kBlock32);
    for (std::size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(alone.codes[c], whole.codes[r * cols + c]);
    }
    for (std::size_t b = 0; b < whole.row_blocks(); ++b) {
      EXPECT_EQ(alone.scales[b], whole.scales[r * whole.row_blocks() + b]);
    }
  }
}

TEST(QBlock, WirePayloadBytesCountsCodesPlusScales) {
  // 1 B per element + 4 B per block; last block short, still one scale.
  EXPECT_EQ(qblock::wire_payload_bytes(1, 64, 64), 64u + 4u);
  EXPECT_EQ(qblock::wire_payload_bytes(1, 65, 64), 65u + 2 * 4u);
  EXPECT_EQ(qblock::wire_payload_bytes(3, 70, 32), 3 * 70u + 3 * 3 * 4u);
  EXPECT_EQ(qblock::wire_payload_bytes(1, 1, 32), 1u + 4u);  // smallest
  Rng rng(7);
  const Tensor t = ops::randn({4, 33}, rng);
  const qblock::QTensor q = qblock::quantize(t, qblock::kBlock32);
  EXPECT_EQ(q.wire_bytes(),
            q.codes.size() * sizeof(std::int8_t) +
                q.scales.size() * sizeof(float));
}

TEST(QBlock, TensorRankMapsToRowTiling) {
  EXPECT_EQ(qblock::tile_rows(Tensor::zeros({12})), 1u);
  EXPECT_EQ(qblock::tile_rows(Tensor::zeros({3, 4})), 3u);
  EXPECT_EQ(qblock::tile_rows(Tensor::zeros({2, 3, 4})), 2u);
  // A rank-1 input can come back rank-1 when asked.
  Rng rng(5);
  const Tensor v = ops::randn({10}, rng);
  const Tensor back1 = qblock::dequantize(qblock::quantize(v), /*rank1=*/true);
  EXPECT_EQ(back1.rank(), 1u);
  EXPECT_EQ(back1.size(), 10u);
  // roundtrip() restores the exact input shape, rank 3 included.
  const Tensor t3 = ops::randn({2, 3, 8}, rng);
  const Tensor rt = qblock::roundtrip(t3, qblock::kBlock32);
  ASSERT_EQ(rt.rank(), 3u);
  EXPECT_EQ(rt.dim(0), 2u);
  EXPECT_EQ(rt.dim(1), 3u);
  EXPECT_EQ(rt.dim(2), 8u);
}

// ---------------------------------------------------------------------------
// Packed-GEMM microkernels
// ---------------------------------------------------------------------------

TEST(QGemm, KernelNameIsOneOfTheThree) {
  const std::string name = qgemm::kernel_name();
  EXPECT_TRUE(name == "avx2" || name == "sse2" || name == "scalar") << name;
}

TEST(QGemm, SimdDotMatchesScalarOnRandomRuns) {
  Rng rng(23);
  std::vector<std::int8_t> a(300), b(300);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::int8_t>(
        static_cast<int>(rng.uniform_index(255)) - 127);
    b[i] = static_cast<std::int8_t>(
        static_cast<int>(rng.uniform_index(255)) - 127);
  }
  // Every length through the SIMD width boundaries plus the block lengths.
  for (std::size_t n = 0; n <= 70; ++n) {
    EXPECT_EQ(qgemm::vec_dot_q8(a.data(), b.data(), n),
              qgemm::vec_dot_q8_scalar(a.data(), b.data(), n))
        << "n=" << n;
  }
  for (const std::size_t n : {127u, 128u, 129u, 300u}) {
    EXPECT_EQ(qgemm::vec_dot_q8(a.data(), b.data(), n),
              qgemm::vec_dot_q8_scalar(a.data(), b.data(), n));
  }
}

TEST(QGemm, DotOfFullScaleCodesIsExact) {
  // 64 · 127 · 127 is the per-block worst case; it must be exact (and is
  // also exactly representable in fp32 — the determinism argument).
  std::vector<std::int8_t> a(64, 127), b(64, 127);
  EXPECT_EQ(qgemm::vec_dot_q8(a.data(), b.data(), 64), 64 * 127 * 127);
  for (auto& v : b) v = -127;
  EXPECT_EQ(qgemm::vec_dot_q8(a.data(), b.data(), 64), -64 * 127 * 127);
  EXPECT_LT(64 * 127 * 127, 1 << 24);  // exact in fp32
}

TEST(QGemm, MatmulTracksDequantizedReference) {
  Rng rng(31);
  const Tensor x = ops::randn({5, 70}, rng);
  const Tensor w = ops::randn({9, 70}, rng);
  const qblock::QTensor packed = qgemm::pack(w, qblock::kBlock32);
  const Tensor y = qgemm::matmul_nt_q8(x, packed);
  const Tensor ref = ops::matmul_nt(qblock::roundtrip(x, qblock::kBlock32),
                                    qblock::dequantize(packed));
  ASSERT_EQ(y.rank(), 2u);
  ASSERT_EQ(y.dim(0), 5u);
  ASSERT_EQ(y.dim(1), 9u);
  for (std::size_t i = 0; i < y.size(); ++i) {
    // Same data, different summation grouping: agreement to accumulated
    // float rounding, not bit-for-bit.
    EXPECT_NEAR(y[i], ref[i], 1e-4f * (std::abs(ref[i]) + 1.0f)) << i;
  }
}

TEST(QGemm, MatmulBitIdenticalAcrossThreadCounts) {
  Rng rng(37);
  const Tensor x = ops::randn({32, 64}, rng);
  const qblock::QTensor w = qgemm::pack(ops::randn({48, 64}, rng));
  const Tensor serial = qgemm::matmul_nt_q8(x, w);
  util::ThreadPool::set_global_threads(8);
  const Tensor threaded = qgemm::matmul_nt_q8(x, w);
  util::ThreadPool::set_global_threads(0);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << i;  // bit-exact, not NEAR
  }
}

}  // namespace
}  // namespace vela
