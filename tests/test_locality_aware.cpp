#include "placement/locality_aware.h"

#include <gtest/gtest.h>

#include "placement/evaluator.h"
#include "placement/greedy.h"
#include "placement/random.h"
#include "placement/sequential.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace vela {
namespace {

placement::PlacementProblem paper_like_problem(std::uint64_t seed,
                                               std::size_t layers = 4,
                                               std::size_t experts = 6,
                                               double zipf = 1.2) {
  placement::PlacementProblem p;
  p.num_workers = 6;
  p.num_layers = layers;
  p.num_experts = experts;
  // Zipf-skewed per-layer access probabilities with layer-specific hot
  // experts (the planted-locality shape).
  Rng rng(seed);
  p.probability = Tensor({layers, experts});
  ZipfSampler zipf_sampler(experts, zipf);
  for (std::size_t l = 0; l < layers; ++l) {
    std::vector<std::size_t> perm(experts);
    for (std::size_t e = 0; e < experts; ++e) perm[e] = e;
    rng.shuffle(perm);
    for (std::size_t e = 0; e < experts; ++e) {
      p.probability.at(l, perm[e]) =
          static_cast<float>(2.0 * zipf_sampler.pmf(e));
    }
  }
  // Paper testbed: workers 0/1 co-located with the master (fast), 2–5 remote.
  for (std::size_t w = 0; w < 6; ++w) {
    p.bandwidth.push_back(w < 2 ? 18.3e9 : 1.17e9);
    p.worker_node.push_back(w / 2);
  }
  p.master_node = 0;
  const auto cap = static_cast<std::size_t>(
      static_cast<double>(layers * experts) / 6.0 * 1.4 + 0.999);
  p.capacity.assign(6, cap);
  p.tokens_per_step = 2048.0;
  p.bytes_per_token = 8192.0;
  p.validate();
  return p;
}

TEST(LocalityAware, ProducesFeasiblePlacement) {
  auto problem = paper_like_problem(1);
  placement::LocalityAwarePlacement strategy;
  auto p = strategy.place(problem);
  EXPECT_TRUE(p.feasible(problem));
  EXPECT_EQ(strategy.report().lp_status, lp::LpStatus::kOptimal);
  EXPECT_FALSE(strategy.report().used_fallback);
}

TEST(LocalityAware, LpObjectiveLowerBoundsRoundedPlacement) {
  auto problem = paper_like_problem(2);
  placement::LocalityAwarePlacement strategy;
  auto p = strategy.place(problem);
  EXPECT_LE(strategy.report().lp_objective,
            placement::expected_comm_seconds(problem, p) + 1e-9);
}

class LocalityAwareBeatsBaselines : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalityAwareBeatsBaselines, LowerExpectedCommTime) {
  auto problem = paper_like_problem(GetParam());
  placement::LocalityAwarePlacement vela;
  placement::SequentialPlacement sequential;
  placement::RandomPlacement random(GetParam() * 31 + 7);

  const double t_vela =
      placement::expected_comm_seconds(problem, vela.place(problem));
  const double t_seq =
      placement::expected_comm_seconds(problem, sequential.place(problem));
  const double t_rand =
      placement::expected_comm_seconds(problem, random.place(problem));
  EXPECT_LT(t_vela, t_seq);
  EXPECT_LT(t_vela, t_rand);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalityAwareBeatsBaselines,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u));

TEST(LocalityAware, NoWorseThanGreedyOnSkewedInstances) {
  for (std::uint64_t seed = 10; seed < 15; ++seed) {
    auto problem = paper_like_problem(seed, 6, 8, 1.4);
    placement::LocalityAwarePlacement vela;
    placement::GreedyLPTPlacement greedy;
    const double t_vela =
        placement::expected_comm_seconds(problem, vela.place(problem));
    const double t_greedy =
        placement::expected_comm_seconds(problem, greedy.place(problem));
    // The LP sees the global min-max structure; allow a small rounding
    // tolerance but it should rarely lose.
    EXPECT_LT(t_vela, t_greedy * 1.10) << "seed " << seed;
  }
}

TEST(LocalityAware, PrefersFastWorkersForHotExperts) {
  auto problem = paper_like_problem(20, 2, 6, 1.6);
  placement::LocalityAwarePlacement strategy;
  auto p = strategy.place(problem);
  // Aggregate probability hosted on fast (intra-node) workers must exceed
  // the uniform share: hot experts gravitate to high-bandwidth devices.
  double fast = 0.0, total = 0.0;
  for (std::size_t l = 0; l < problem.num_layers; ++l) {
    for (std::size_t e = 0; e < problem.num_experts; ++e) {
      const double prob = problem.probability.at(l, e);
      total += prob;
      if (p.worker_of(l, e) < 2) fast += prob;
    }
  }
  EXPECT_GT(fast / total, 2.0 / 6.0);
}

TEST(LocalityAware, TightCapacityStillFeasible) {
  auto problem = paper_like_problem(30);
  const auto exact = static_cast<std::size_t>(
      (problem.num_layers * problem.num_experts + 5) / 6);
  problem.capacity.assign(6, exact);  // zero slack
  placement::LocalityAwarePlacement strategy;
  auto p = strategy.place(problem);
  EXPECT_TRUE(p.feasible(problem));
}

TEST(LocalityAware, UniformProbabilityGivesNoAdvantage) {
  auto problem = paper_like_problem(40);
  problem.probability.fill(2.0f / 6.0f);  // perfectly uniform access
  placement::LocalityAwarePlacement vela;
  placement::SequentialPlacement sequential;
  const double t_vela =
      placement::expected_comm_seconds(problem, vela.place(problem));
  const double t_seq =
      placement::expected_comm_seconds(problem, sequential.place(problem));
  // With no locality to exploit, VELA should match (not beat) the baseline
  // up to rounding noise.
  EXPECT_NEAR(t_vela, t_seq, t_seq * 0.25);
}

TEST(LocalityAware, RoundingReportAccountsForAllExperts) {
  auto problem = paper_like_problem(50);
  placement::LocalityAwarePlacement strategy;
  strategy.place(problem);
  const auto& report = strategy.report();
  // Every expert was either thresholded (and possibly evicted+reassigned) or
  // reassigned directly.
  EXPECT_GE(report.thresholded + report.reassigned,
            problem.total_experts());
  EXPECT_EQ(report.thresholded + report.reassigned - report.evicted,
            problem.total_experts());
}

TEST(LocalityAware, BuildLpHasExpectedShape) {
  auto problem = paper_like_problem(60, 2, 3);
  auto prog = placement::LocalityAwarePlacement::build_lp(problem);
  EXPECT_EQ(prog.num_vars, 6u * 2 * 3 + 2);
  EXPECT_EQ(prog.equalities.size(), 2u * 3);
  EXPECT_EQ(prog.leq_rows.size(), 6u + 6u * 2);
}

}  // namespace
}  // namespace vela
