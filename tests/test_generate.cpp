#include "model/generate.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/vela_system.h"
#include "moe/moe_block.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace vela {
namespace {

struct Fixture {
  Fixture()
      : cfg(model::ModelConfig::tiny_test()),
        backend(cfg.num_layers, cfg.num_experts, cfg.model_dim, cfg.hidden_dim,
                cfg.lora, 31),
        rng(33),
        model(cfg, &backend, rng) {}

  model::ModelConfig cfg;
  moe::LocalExpertBackend backend;
  Rng rng;
  model::MoETransformer model;
};

TEST(Generate, ProducesRequestedLengthInVocab) {
  Fixture f;
  Rng gen_rng(1);
  model::GenerateOptions options;
  options.max_new_tokens = 12;
  auto out = model::generate(f.model, {1, 2, 3}, options, gen_rng);
  ASSERT_EQ(out.size(), 3u + 12u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[2], 3u);
  for (std::size_t id : out) EXPECT_LT(id, f.cfg.vocab);
}

TEST(Generate, GreedyIsDeterministic) {
  Fixture f;
  Rng r1(1), r2(999);  // greedy ignores the rng
  model::GenerateOptions options;
  options.max_new_tokens = 8;
  EXPECT_EQ(model::generate(f.model, {5, 6}, options, r1),
            model::generate(f.model, {5, 6}, options, r2));
}

TEST(Generate, TemperatureSamplingVaries) {
  Fixture f;
  model::GenerateOptions options;
  options.max_new_tokens = 10;
  options.temperature = 2.0f;
  Rng r1(1), r2(2);
  auto a = model::generate(f.model, {5, 6}, options, r1);
  auto b = model::generate(f.model, {5, 6}, options, r2);
  EXPECT_NE(a, b);  // different sampling streams
  Rng r3(1);
  EXPECT_EQ(a, model::generate(f.model, {5, 6}, options, r3));  // same seed
}

TEST(Generate, TopKRestrictsSupport) {
  Fixture f;
  // With top_k = 1, temperature sampling degenerates to greedy.
  model::GenerateOptions greedy;
  greedy.max_new_tokens = 8;
  model::GenerateOptions topk1;
  topk1.max_new_tokens = 8;
  topk1.temperature = 1.5f;
  topk1.top_k = 1;
  Rng r1(1), r2(1);
  EXPECT_EQ(model::generate(f.model, {4}, greedy, r1),
            model::generate(f.model, {4}, topk1, r2));
}

TEST(Generate, RecordsRoutingStats) {
  Fixture f;
  moe::RoutingStats stats(f.cfg.num_layers, f.cfg.num_experts);
  Rng gen_rng(3);
  model::GenerateOptions options;
  options.max_new_tokens = 4;
  model::generate(f.model, {1, 2}, options, gen_rng, &stats);
  // 4 decoding passes over prefixes of length 2,3,4,5 = 14 tokens per block.
  EXPECT_EQ(stats.tokens_seen(0), 2u + 3u + 4u + 5u);
}

TEST(Generate, RejectsEmptyPrompt) {
  Fixture f;
  Rng gen_rng(1);
  EXPECT_THROW(model::generate(f.model, {}, {}, gen_rng), CheckError);
}

TEST(Generate, WorksThroughDistributedBroker) {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 31;
  cfg.wire_bits = 32;
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 3);
  core::VelaSystem vela(cfg, &corpus);

  // Dense twin with the same seeds: distributed generation must match.
  moe::LocalExpertBackend backend(cfg.model.num_layers, cfg.model.num_experts,
                                  cfg.model.model_dim, cfg.model.hidden_dim,
                                  cfg.model.lora, cfg.seed);
  Rng mr(cfg.seed);
  model::MoETransformer dense(cfg.model, &backend, mr);
  model::plant_locality(dense, corpus, model::PlantingConfig{});

  model::GenerateOptions options;
  options.max_new_tokens = 6;
  Rng r1(5), r2(5);
  const auto remote = model::generate(vela.model(), {7, 8, 9}, options, r1);
  const auto local = model::generate(dense, {7, 8, 9}, options, r2);
  EXPECT_EQ(remote, local);
}

}  // namespace
}  // namespace vela
