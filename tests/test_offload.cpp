// Bounded-memory expert store conformance (`ctest -L offload`, DESIGN.md
// §15). The contract under test: paging is an implementation detail of
// WHERE expert state lives, never of WHAT it computes — a budget-constrained
// run must reproduce the unbounded run's losses bit for bit, with the spill
// bytes metered in their own paging series (the only extra network traffic
// is the deterministic priority/prefetch hint stream); checkpoints
// taken under an active pager must match unbounded checkpoints byte for
// byte; eviction must be a deterministic function of the access sequence;
// and a torn or truncated spill table must be rejected, never decoded.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "comm/fault_injector.h"
#include "core/master.h"
#include "core/vela_system.h"
#include "data/batch.h"
#include "data/corpus.h"
#include "nn/expert.h"
#include "nn/optimizer.h"
#include "store/disk_table.h"
#include "store/expert_store.h"
#include "store/paged_store.h"
#include "util/audit.h"
#include "util/check.h"
#include "util/rng.h"

namespace vela {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

core::VelaSystemConfig base_config() {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 13;
  cfg.wire_bits = 32;
  cfg.adamw.lr = 1e-3f;
  return cfg;
}

struct RunResult {
  std::vector<float> losses;
  std::uint64_t external_bytes = 0;
  std::uint64_t page_in_bytes = 0;
  std::uint64_t page_out_bytes = 0;
  double paged_mb = 0.0;  // sum of StepReport.paged_mb
};

// One deterministic fine-tune: fixed corpus, fixed batch order.
RunResult run_finetune(const core::VelaSystemConfig& cfg, int steps) {
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 31);
  core::VelaSystem vela(cfg, &corpus);
  data::BatchIterator it(corpus.make_dataset(6, 8), 3, 4, /*shuffle=*/false);
  RunResult out;
  for (int step = 0; step < steps; ++step) {
    const core::StepReport r = vela.train_step(it.next());
    out.losses.push_back(r.loss);
    out.paged_mb += r.paged_mb;
  }
  const comm::TrafficMeter& meter = vela.master().meter();
  out.external_bytes = meter.lifetime_external_bytes();
  out.page_in_bytes = meter.lifetime_page_in_bytes();
  out.page_out_bytes = meter.lifetime_page_out_bytes();
  return out;
}

// --- budget sweep bit-exactness ----------------------------------------------

TEST(Offload, BudgetSweepIsBitExactAndMetersPaging) {
  // Budgets {unbounded, E/2, 1} over the same schedule. Losses must be
  // identical at every budget; only the paging series may differ — zero
  // when unbounded, non-zero at budget 1 (each worker hosts several experts
  // of each layer under paper_testbed, so a one-slot pool must thrash).
  const int kSteps = 5;
  const RunResult unbounded = run_finetune(base_config(), kSteps);
  EXPECT_EQ(unbounded.page_in_bytes, 0u);
  EXPECT_EQ(unbounded.page_out_bytes, 0u);
  EXPECT_EQ(unbounded.paged_mb, 0.0);

  std::uint64_t bounded_external = 0;
  for (const long long budget : {2LL, 1LL}) {
    auto cfg = base_config();
    cfg.expert_budget = budget;
    const RunResult paged = run_finetune(cfg, kSteps);
    ASSERT_EQ(paged.losses.size(), unbounded.losses.size());
    for (std::size_t i = 0; i < unbounded.losses.size(); ++i) {
      EXPECT_EQ(paged.losses[i], unbounded.losses[i])
          << "budget " << budget << " step " << i;
    }
    // Paging is invisible in the data plane, but enabling the store adds a
    // control-plane stream (priority pushes + prefetch hints) that is real
    // network traffic and honestly charged — so bounded ledgers carry a
    // fixed overhead over the unbounded one, identical across budgets.
    EXPECT_GT(paged.external_bytes, unbounded.external_bytes)
        << "budget " << budget;
    if (bounded_external == 0) bounded_external = paged.external_bytes;
    EXPECT_EQ(paged.external_bytes, bounded_external) << "budget " << budget;
    if (budget == 1) {
      EXPECT_GT(paged.page_out_bytes, 0u);
      EXPECT_GT(paged.page_in_bytes, 0u);
      EXPECT_GT(paged.paged_mb, 0.0);
    }
    // Nothing can be read back that was never spilled.
    EXPECT_LE(paged.page_in_bytes, paged.page_out_bytes);
  }
}

TEST(Offload, EnvBudgetMatchesExplicitConfig) {
  auto cfg = base_config();
  cfg.expert_budget = 1;
  const RunResult explicit_run = run_finetune(cfg, 3);
  ScopedEnv env("VELA_EXPERT_BUDGET", "1");
  const RunResult env_run = run_finetune(base_config(), 3);
  ASSERT_EQ(env_run.losses.size(), explicit_run.losses.size());
  for (std::size_t i = 0; i < explicit_run.losses.size(); ++i) {
    EXPECT_EQ(env_run.losses[i], explicit_run.losses[i]) << "step " << i;
  }
  EXPECT_EQ(env_run.external_bytes, explicit_run.external_bytes);
  EXPECT_GT(env_run.page_out_bytes, 0u);
}

// --- checkpointing under an active pager -------------------------------------

TEST(Offload, CheckpointRoundTripUnderActivePager) {
  auto cfg = base_config();
  cfg.expert_budget = 1;
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 6);
  core::VelaSystem vela(cfg, &corpus);
  auto batch = corpus.make_dataset(2, 6);

  for (int i = 0; i < 3; ++i) vela.train_step(batch);
  const std::string path = temp_path("offload_pager.ckpt");
  vela.save_checkpoint(path);
  const float loss_at_ckpt = vela.model().loss_batch(batch).value()[0];

  for (int i = 0; i < 3; ++i) vela.train_step(batch);
  EXPECT_NE(vela.model().loss_batch(batch).value()[0], loss_at_ckpt);

  vela.load_checkpoint(path);
  EXPECT_FLOAT_EQ(vela.model().loss_batch(batch).value()[0], loss_at_ckpt);
  std::remove(path.c_str());
}

TEST(Offload, CheckpointBytesIdenticalToUnboundedRun) {
  // The pager must be invisible in persisted artifacts: the checkpoint file
  // written after N steps at budget 1 is byte-for-byte the file the
  // unbounded run writes.
  auto save_after = [](const core::VelaSystemConfig& cfg,
                       const std::string& path) {
    data::SyntheticCorpus corpus(
        data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 6);
    core::VelaSystem vela(cfg, &corpus);
    auto batch = corpus.make_dataset(2, 6);
    for (int i = 0; i < 3; ++i) vela.train_step(batch);
    vela.save_checkpoint(path);
  };
  const std::string unbounded_path = temp_path("offload_unbounded.ckpt");
  const std::string paged_path = temp_path("offload_paged.ckpt");
  save_after(base_config(), unbounded_path);
  auto cfg = base_config();
  cfg.expert_budget = 1;
  save_after(cfg, paged_path);

  std::ifstream a(unbounded_path, std::ios::binary);
  std::ifstream b(paged_path, std::ios::binary);
  ASSERT_TRUE(a.good() && b.good());
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_GT(bytes_a.size(), 0u);
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(unbounded_path.c_str());
  std::remove(paged_path.c_str());
}

// --- degrade with paged experts ----------------------------------------------

TEST(Offload, KillAWorkerDegradesWithPagedExperts) {
  // A worker dies while every survivor runs a one-slot pool: the orphaned
  // experts migrate onto stores that must page their existing tenants out
  // to admit them, and training continues.
  auto cfg = base_config();
  cfg.expert_budget = 1;
  cfg.clock.compute_seconds = 0.5;
  data::SyntheticCorpus corpus(
      data::CorpusConfig::wikitext_like(cfg.model.vocab, 6), 17);
  comm::FaultPlan plan;
  plan.rules.push_back(
      {1, comm::LinkDir::kToWorker, 0, comm::FaultKind::kCrashWorker, 0.0});
  comm::FaultInjector injector(plan);
  core::VelaSystem vela(cfg, &corpus);
  core::FaultToleranceConfig ft;
  ft.retry.timeout = std::chrono::milliseconds(60);
  ft.retry.max_retries = 4;
  ft.retry.backoff = 2.0;
  ft.snapshot_interval = 1;
  ft.respawn_budget = 0;  // first failure degrades
  vela.enable_fault_tolerance(ft);
  vela.attach_fault_injector(&injector);

  const std::size_t fleet = vela.master().num_workers();
  auto batch = corpus.make_dataset(2, 6);
  std::vector<core::StepReport> reports;
  for (int i = 0; i < 3; ++i) reports.push_back(vela.train_step(batch));

  EXPECT_EQ(reports[0].workers_lost, 1u);
  EXPECT_EQ(reports[1].workers_lost, 0u);
  EXPECT_EQ(reports[2].workers_lost, 0u);
  for (const auto& r : reports) EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_TRUE(vela.master().dead_mask()[1]);
  EXPECT_EQ(vela.master().num_live_workers(), fleet - 1);
  const auto& placement = vela.master().placement();
  for (std::size_t l = 0; l < placement.num_layers(); ++l) {
    for (std::size_t e = 0; e < placement.num_experts(); ++e) {
      EXPECT_NE(placement.worker_of(l, e), 1u);
    }
  }
}

// --- q8 at-rest tier ---------------------------------------------------------

TEST(Offload, Q8AtRestTrainsWithinTolerance) {
  // Block-quantized spill images are lossy, so bit-exactness is out of
  // scope; the gate is the same shape as the wire tier's: finite losses
  // that track the fp32 run and still go down. The envelope is wider than
  // the wire tier's: a one-slot pool re-quantizes weights AND optimizer
  // moments on every touch, so the rounding error compounds per access,
  // not per message.
  const int kSteps = 8;
  const RunResult fp32 = run_finetune(base_config(), kSteps);
  auto cfg = base_config();
  cfg.expert_budget = 1;
  cfg.store_dtype = store::StoreDtype::kQ8;
  const RunResult q8 = run_finetune(cfg, kSteps);
  ASSERT_EQ(q8.losses.size(), fp32.losses.size());
  for (int i = 0; i < kSteps; ++i) {
    EXPECT_TRUE(std::isfinite(q8.losses[i])) << "step " << i;
    EXPECT_NEAR(q8.losses[i], fp32.losses[i],
                0.15f * std::abs(fp32.losses[i]) + 0.05f)
        << "step " << i;
  }
  EXPECT_LT(q8.losses.back(), q8.losses.front());
  EXPECT_GT(q8.page_out_bytes, 0u);
  // The q8 spill image is materially smaller than fp32's for the same
  // schedule (bulk quarters; headers and scales stay fp32).
  cfg.store_dtype = store::StoreDtype::kFp32;
  const RunResult fp32_paged = run_finetune(cfg, kSteps);
  EXPECT_LT(q8.page_out_bytes, fp32_paged.page_out_bytes);
}

// --- audit -------------------------------------------------------------------

TEST(Offload, ConservationAuditCleanUnderPaging) {
  // VELA_AUDIT with a one-slot pool: the network ledger must still balance
  // exactly (paging is never charged as traffic), and the informational
  // paging counters must satisfy page_in <= page_out.
  audit::set_enabled_for_testing(true);
  audit::LockOrderGraph::instance().reset_for_testing();
  audit::ConservationLedger::instance().reset_for_testing();
  std::vector<std::pair<std::string, std::string>> violations;
  audit::set_violation_handler(
      [&violations](const std::string& category, const std::string& detail) {
        violations.emplace_back(category, detail);
      });

  auto cfg = base_config();
  cfg.expert_budget = 1;
  const RunResult r = run_finetune(cfg, 2);
  EXPECT_EQ(r.losses.size(), 2u);
  EXPECT_GT(r.page_out_bytes, 0u);

  audit::set_violation_handler(nullptr);
  audit::LockOrderGraph::instance().reset_for_testing();
  audit::ConservationLedger::instance().reset_for_testing();
  audit::set_enabled_for_testing(false);
  for (const auto& [category, detail] : violations) {
    ADD_FAILURE() << category << ": " << detail;
  }
}

// --- the disk table rejects torn state ---------------------------------------

TEST(OffloadDiskTable, RoundTripAndFreeSlotReuse) {
  const std::string path = temp_path("offload_table.bin");
  store::DiskTable table(path, /*remove_on_close=*/true);
  const std::vector<unsigned char> payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint32_t s0 = table.write(payload.data(), payload.size());
  const std::vector<unsigned char> other = {9, 9, 9, 9, 9, 9, 9, 9};
  const std::uint32_t s1 = table.write(other.data(), other.size());
  EXPECT_EQ(table.read(s0), payload);
  EXPECT_EQ(table.read(s1), other);
  table.free_slot(s0);
  EXPECT_THROW(table.read(s0), CheckError);
  // Lowest free index is reused deterministically.
  EXPECT_EQ(table.write(payload.data(), payload.size()), s0);
}

TEST(OffloadDiskTable, CorruptPayloadFailsChecksum) {
  const std::string path = temp_path("offload_corrupt.bin");
  std::uint32_t slot = 0;
  {
    store::DiskTable table(path, /*remove_on_close=*/false);
    const std::vector<unsigned char> payload(16, 0xAB);
    slot = table.write(payload.data(), payload.size());
  }
  {
    // Flip one payload byte on disk: header 20B + slot header 12B in.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(20 + 12 + 3);
    const char twiddled = static_cast<char>(0xAC);
    f.write(&twiddled, 1);
  }
  store::DiskTable reopened(path, /*remove_on_close=*/true);
  EXPECT_EQ(reopened.slots_in_use(), 1u);
  EXPECT_THROW(reopened.read(slot), CheckError);
}

TEST(OffloadDiskTable, TruncatedTableRejectedOnOpen) {
  const std::string path = temp_path("offload_truncated.bin");
  {
    store::DiskTable table(path, /*remove_on_close=*/false);
    const std::vector<unsigned char> payload(16, 0x5C);
    table.write(payload.data(), payload.size());
  }
  {
    // Chop the file mid-slot: the header still declares one full slot.
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 24u);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 8));
  }
  EXPECT_THROW(store::DiskTable(path, /*remove_on_close=*/false), CheckError);
  std::remove(path.c_str());
}

TEST(OffloadDiskTable, NotATableRejected) {
  const std::string path = temp_path("offload_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a VELA store table, but long enough to map";
  }
  EXPECT_THROW(store::DiskTable(path, /*remove_on_close=*/false), CheckError);
  std::remove(path.c_str());
}

// --- eviction determinism ----------------------------------------------------

store::SlotFactory tiny_factory() {
  return [](const store::ExpertKey& key) {
    Rng rng(nn::expert_seed(3, key.layer, key.expert));
    store::ExpertSlot slot;
    slot.expert = std::make_unique<nn::SwiGLUExpert>(
        "layer" + std::to_string(key.layer) + ".expert" +
            std::to_string(key.expert),
        8, 16, nn::LoRAConfig{2, 4.0f, true}, rng);
    slot.optimizer = std::make_unique<nn::AdamW>(
        slot.expert->trainable_parameters(), nn::AdamWConfig{});
    return slot;
  };
}

store::StoreConfig tiny_store_config(store::EvictionPolicy policy,
                                     long long budget) {
  store::StoreConfig cfg;
  cfg.budget = budget;
  cfg.dir = ::testing::TempDir();
  cfg.dtype = store::StoreDtype::kFp32;
  cfg.policy = policy;
  return cfg;
}

// A scripted access sequence over 6 experts with a 2-slot pool.
std::vector<store::ExpertKey> replay_evictions(store::EvictionPolicy policy) {
  store::PagedStore s(tiny_store_config(policy, 2), tiny_factory());
  // Priorities are known up front (as the placement's locality scores are)
  // and favor experts 0 and 1 — the opposite of install order, so locality-
  // driven evictions cannot coincide with FIFO's.
  std::vector<std::pair<store::ExpertKey, float>> prios;
  for (std::uint32_t e = 0; e < 6; ++e) {
    prios.emplace_back(store::ExpertKey{0, e}, static_cast<float>(5 - e));
  }
  s.set_priorities(prios);
  for (std::uint32_t e = 0; e < 6; ++e) s.emplace({0, e});
  const std::uint32_t script[] = {5, 4, 0, 5, 1, 2, 5, 4, 3, 0, 5};
  for (const std::uint32_t e : script) {
    s.pin({0, e});
    s.unpin({0, e});
  }
  return s.eviction_log();
}

TEST(OffloadEviction, LogIsDeterministicAcrossReplays) {
  for (const auto policy :
       {store::EvictionPolicy::kLocality, store::EvictionPolicy::kLru,
        store::EvictionPolicy::kFifo}) {
    const auto first = replay_evictions(policy);
    const auto second = replay_evictions(policy);
    EXPECT_GT(first.size(), 0u);
    EXPECT_EQ(first, second);
  }
}

TEST(OffloadEviction, PoliciesProduceDistinctOrders) {
  // Locality protects the high-priority experts the script keeps touching,
  // so it must evict differently from FIFO's install order on this script.
  const auto locality = replay_evictions(store::EvictionPolicy::kLocality);
  const auto fifo = replay_evictions(store::EvictionPolicy::kFifo);
  EXPECT_NE(locality, fifo);
}

TEST(OffloadEviction, EqualPrioritiesDegradeToLru) {
  // With a flat priority map the locality order's first key falls through
  // to its recency tie-break — i.e. exactly LRU. Replays must agree
  // eviction for eviction.
  auto run = [](store::EvictionPolicy policy, bool flat_prios) {
    store::PagedStore s(tiny_store_config(policy, 2), tiny_factory());
    for (std::uint32_t e = 0; e < 5; ++e) s.emplace({0, e});
    if (flat_prios) {
      std::vector<std::pair<store::ExpertKey, float>> prios;
      for (std::uint32_t e = 0; e < 5; ++e) {
        prios.emplace_back(store::ExpertKey{0, e}, 1.0f);
      }
      s.set_priorities(prios);
    }
    const std::uint32_t script[] = {0, 3, 1, 4, 2, 0, 3, 2};
    for (const std::uint32_t e : script) {
      s.pin({0, e});
      s.unpin({0, e});
    }
    return s.eviction_log();
  };
  EXPECT_EQ(run(store::EvictionPolicy::kLocality, /*flat_prios=*/true),
            run(store::EvictionPolicy::kLru, /*flat_prios=*/false));
}

TEST(OffloadEviction, PinnedExpertsAreNeverEvicted) {
  store::PagedStore s(tiny_store_config(store::EvictionPolicy::kLru, 1),
                      tiny_factory());
  s.emplace({0, 0});
  s.emplace({0, 1});
  store::ExpertSlot& held = s.pin({0, 0});
  // Transient over-budget: pinning a second expert while the first is held
  // may not evict the held one.
  s.pin({0, 1});
  s.unpin({0, 1});
  EXPECT_EQ(&s.pin({0, 0}), &held);  // same resident object, no reload
  s.unpin({0, 0});
  s.unpin({0, 0});
}

TEST(OffloadEviction, PagedStateSurvivesEviction) {
  // Mutate an expert's adapters, force it out of a 1-slot pool, page it
  // back in: the mutation must round-trip through the spill image.
  store::PagedStore s(tiny_store_config(store::EvictionPolicy::kLru, 1),
                      tiny_factory());
  s.emplace({0, 0});
  s.emplace({0, 1});
  std::vector<float> mutated;
  {
    store::Pinned pinned(s, {0, 0});
    for (auto& p : pinned.expert().trainable_parameters()) {
      Tensor& v = p.var.mutable_value();
      for (std::size_t i = 0; i < v.size(); ++i) v.data()[i] += 0.25f;
      for (std::size_t i = 0; i < v.size(); ++i) mutated.push_back(v.data()[i]);
    }
  }
  {
    // Touch the other expert so expert 0 is evicted (budget 1, LRU).
    store::Pinned other(s, {0, 1});
  }
  EXPECT_GE(s.stats().evictions, 1u);
  std::vector<float> reloaded;
  {
    store::Pinned pinned(s, {0, 0});
    for (auto& p : pinned.expert().trainable_parameters()) {
      const Tensor& v = p.var.value();
      for (std::size_t i = 0; i < v.size(); ++i) reloaded.push_back(v.data()[i]);
    }
  }
  ASSERT_EQ(reloaded.size(), mutated.size());
  for (std::size_t i = 0; i < mutated.size(); ++i) {
    EXPECT_EQ(reloaded[i], mutated[i]) << "index " << i;
  }
  EXPECT_GT(s.stats().misses, 0u);
}

}  // namespace
}  // namespace vela
