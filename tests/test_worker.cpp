#include "core/expert_worker.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace vela {
namespace {

core::WorkerSpec test_spec() {
  core::WorkerSpec spec;
  spec.worker_id = 0;
  spec.node = 0;
  spec.model_dim = 8;
  spec.hidden_dim = 16;
  spec.lora = nn::LoRAConfig{2, 4.0f, true};
  spec.base_seed = 11;
  spec.wire_bits = 32;
  return spec;
}

struct WorkerFixture {
  WorkerFixture()
      : link(comm::TransportKind::kDefault, 0, 0, nullptr),
        worker(test_spec(), &link, {{0, 0}, {0, 1}}) {
    worker.start();
  }
  ~WorkerFixture() {
    comm::Message bye;
    bye.type = comm::MessageType::kShutdown;
    link.to_worker.send(std::move(bye));
    worker.join();
  }

  comm::Message request_forward(std::uint64_t id, std::uint32_t expert,
                                const Tensor& xs) {
    comm::Message msg;
    msg.type = comm::MessageType::kExpertForward;
    msg.request_id = id;
    msg.layer = 0;
    msg.expert = expert;
    msg.payload = xs;
    link.to_worker.send(std::move(msg));
    return *link.to_master.receive();
  }

  comm::DuplexLink link;
  core::ExpertWorker worker;
};

TEST(ExpertWorker, ForwardMatchesLocalExpert) {
  WorkerFixture f;
  Rng xr(1);
  Tensor xs = ops::randn({5, 8}, xr);
  comm::Message reply = f.request_forward(1, 0, xs);
  EXPECT_EQ(reply.type, comm::MessageType::kExpertForwardResult);
  EXPECT_EQ(reply.request_id, 1u);

  // Reference: locally constructed expert from the same seed.
  Rng er(nn::expert_seed(11, 0, 0));
  nn::SwiGLUExpert ref("e", 8, 16, nn::LoRAConfig{2, 4.0f, true}, er);
  Tensor expected = ref.forward(ag::Variable::constant(xs)).value();
  EXPECT_TRUE(ops::allclose(reply.payload, expected));
}

TEST(ExpertWorker, BackwardReturnsInputGradient) {
  WorkerFixture f;
  Rng xr(2);
  Tensor xs = ops::randn({3, 8}, xr);
  f.request_forward(7, 1, xs);

  comm::Message grad_msg;
  grad_msg.type = comm::MessageType::kExpertBackward;
  grad_msg.request_id = 7;
  grad_msg.layer = 0;
  grad_msg.expert = 1;
  grad_msg.payload = Tensor::ones({3, 8});
  f.link.to_worker.send(std::move(grad_msg));
  comm::Message reply = *f.link.to_master.receive();
  EXPECT_EQ(reply.type, comm::MessageType::kExpertBackwardResult);
  ASSERT_EQ(reply.payload.rows(), 3u);

  // Reference input gradient from a local twin.
  Rng er(nn::expert_seed(11, 0, 1));
  nn::SwiGLUExpert ref("e", 8, 16, nn::LoRAConfig{2, 4.0f, true}, er);
  ag::Variable x = ag::Variable::leaf(xs, true);
  ag::backward(ag::sum(ref.forward(x)));
  EXPECT_TRUE(ops::allclose(reply.payload, x.grad(), 1e-4f, 1e-3f));
}

TEST(ExpertWorker, OptimizerStepUpdatesAdapters) {
  WorkerFixture f;
  Rng xr(3);
  Tensor xs = ops::randn({4, 8}, xr);
  Tensor before = f.request_forward(1, 0, xs).payload;

  comm::Message grad_msg;
  grad_msg.type = comm::MessageType::kExpertBackward;
  grad_msg.request_id = 1;
  grad_msg.layer = 0;
  grad_msg.expert = 0;
  grad_msg.payload = Tensor::full({4, 8}, 100.0f);  // big gradient
  f.link.to_worker.send(std::move(grad_msg));
  f.link.to_master.receive();

  comm::Message step;
  step.type = comm::MessageType::kOptimizerStep;
  step.request_id = 2;
  f.link.to_worker.send(std::move(step));
  EXPECT_EQ(f.link.to_master.receive()->type,
            comm::MessageType::kOptimizerStepDone);

  Tensor after = f.request_forward(3, 0, xs).payload;
  EXPECT_FALSE(ops::allclose(before, after, 1e-7f, 1e-7f));
}

TEST(ExpertWorker, UnknownExpertIsProtocolError) {
  // Worker hosts (0,0) and (0,1); requesting (0,3) must fail loudly, which
  // surfaces as a closed channel (the worker thread dies with an exception
  // suppressed by join) — instead we check through a fresh worker to keep
  // the failure containable: send to layer 5.
  comm::DuplexLink link(comm::TransportKind::kDefault, 0, 0, nullptr);
  core::ExpertWorker worker(test_spec(), &link, {{0, 0}});
  // Don't start the thread; exercise the construction paths only.
  EXPECT_EQ(worker.experts_hosted(), 1u);
}

TEST(ExpertWorker, FetchRemovesAndInstallRestores) {
  WorkerFixture f;
  Rng xr(4);
  Tensor xs = ops::randn({2, 8}, xr);
  Tensor before = f.request_forward(1, 0, xs).payload;

  comm::Message fetch;
  fetch.type = comm::MessageType::kFetchExpert;
  fetch.request_id = 2;
  fetch.layer = 0;
  fetch.expert = 0;
  f.link.to_worker.send(std::move(fetch));
  comm::Message state = *f.link.to_master.receive();
  EXPECT_EQ(state.type, comm::MessageType::kExpertState);
  EXPECT_GT(state.payload.size(), 0u);

  comm::Message install;
  install.type = comm::MessageType::kInstallExpert;
  install.request_id = 3;
  install.layer = 0;
  install.expert = 0;
  install.payload = std::move(state.payload);
  f.link.to_worker.send(std::move(install));
  EXPECT_EQ(f.link.to_master.receive()->type,
            comm::MessageType::kInstallExpertDone);

  Tensor after = f.request_forward(4, 0, xs).payload;
  EXPECT_TRUE(ops::allclose(before, after));
}

TEST(ExpertWorker, ClosingChannelStopsThread) {
  comm::DuplexLink link(comm::TransportKind::kDefault, 0, 0, nullptr);
  core::ExpertWorker worker(test_spec(), &link, {{0, 0}});
  worker.start();
  link.to_worker.close();
  worker.join();
  SUCCEED();
}

TEST(PackUnpack, RoundTripsTrainableState) {
  Rng er(5);
  nn::SwiGLUExpert a("e", 8, 16, nn::LoRAConfig{2, 4.0f, true}, er);
  // Perturb adapters, pack, unpack into a twin.
  for (auto& p : a.trainable_parameters()) {
    p.var.mutable_value().fill(0.37f);
  }
  Tensor packed = core::pack_trainable(a);
  Rng er2(6);
  nn::SwiGLUExpert b("e", 8, 16, nn::LoRAConfig{2, 4.0f, true}, er2);
  core::unpack_trainable(packed, b);
  for (const auto& p : b.trainable_parameters()) {
    for (std::size_t i = 0; i < p.var.value().size(); ++i) {
      EXPECT_FLOAT_EQ(p.var.value()[i], 0.37f);
    }
  }
}

TEST(PackUnpack, SizeMismatchThrows) {
  Rng er(5);
  nn::SwiGLUExpert a("e", 8, 16, nn::LoRAConfig{2, 4.0f, true}, er);
  Tensor wrong({3});
  EXPECT_THROW(core::unpack_trainable(wrong, a), CheckError);
}

}  // namespace
}  // namespace vela
