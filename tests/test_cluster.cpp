#include "cluster/topology.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace vela {
namespace {

TEST(Cluster, PaperTestbedDefaults) {
  cluster::ClusterTopology topo(cluster::ClusterConfig::paper_testbed());
  EXPECT_EQ(topo.num_devices(), 6u);
  EXPECT_EQ(topo.num_nodes(), 3u);
  EXPECT_DOUBLE_EQ(topo.config().intra_node_gbps, 18.3);
  EXPECT_DOUBLE_EQ(topo.config().cross_node_gbps, 1.17);
}

TEST(Cluster, NodeAssignment) {
  cluster::ClusterTopology topo(cluster::ClusterConfig::paper_testbed());
  EXPECT_EQ(topo.node_of(0), 0u);
  EXPECT_EQ(topo.node_of(1), 0u);
  EXPECT_EQ(topo.node_of(2), 1u);
  EXPECT_EQ(topo.node_of(5), 2u);
  EXPECT_TRUE(topo.same_node(0, 1));
  EXPECT_FALSE(topo.same_node(1, 2));
  EXPECT_THROW(topo.node_of(6), CheckError);
}

TEST(Cluster, MasterBandwidthDependsOnLocality) {
  cluster::ClusterTopology topo(cluster::ClusterConfig::paper_testbed());
  // Master on device 0 (node 0): workers 0/1 are intra-node, 2..5 cross.
  EXPECT_DOUBLE_EQ(topo.master_bandwidth(1), 18.3e9);
  EXPECT_DOUBLE_EQ(topo.master_bandwidth(2), 1.17e9);
  EXPECT_GT(topo.master_bandwidth(0), topo.master_bandwidth(4));
}

TEST(Cluster, MasterLatencyDependsOnLocality) {
  cluster::ClusterTopology topo(cluster::ClusterConfig::paper_testbed());
  EXPECT_LT(topo.master_latency(1), topo.master_latency(3));
}

TEST(Cluster, DeviceBandwidthSymmetricClasses) {
  cluster::ClusterTopology topo(cluster::ClusterConfig::paper_testbed());
  EXPECT_DOUBLE_EQ(topo.device_bandwidth(2, 3), 18.3e9);   // same node
  EXPECT_DOUBLE_EQ(topo.device_bandwidth(0, 5), 1.17e9);   // cross node
  EXPECT_GT(topo.device_bandwidth(4, 4), topo.device_bandwidth(4, 5));
  EXPECT_DOUBLE_EQ(topo.device_latency(4, 4), 0.0);
}

TEST(Cluster, WorkerIndexingSkipsMasterDevice) {
  cluster::ClusterTopology topo(cluster::ClusterConfig::paper_testbed());
  // Master occupies device 0 → 5 workers on devices 1..5.
  EXPECT_EQ(topo.num_workers(), 5u);
  EXPECT_EQ(topo.worker_device(0), 1u);
  EXPECT_EQ(topo.worker_device(4), 5u);
  EXPECT_EQ(topo.worker_node(0), 0u);  // shares the master's node
  EXPECT_EQ(topo.worker_node(1), 1u);
  EXPECT_EQ(topo.master_node(), 0u);
  EXPECT_THROW(topo.worker_device(5), CheckError);
  // Exactly one worker is co-located with the master.
  std::size_t local = 0;
  for (std::size_t w = 0; w < topo.num_workers(); ++w) {
    if (topo.worker_node(w) == topo.master_node()) ++local;
  }
  EXPECT_EQ(local, 1u);
}

TEST(Cluster, WorkerIndexingWithMidMaster) {
  cluster::ClusterConfig cfg = cluster::ClusterConfig::paper_testbed();
  cfg.master_device = 3;
  cluster::ClusterTopology topo(cfg);
  EXPECT_EQ(topo.worker_device(2), 2u);
  EXPECT_EQ(topo.worker_device(3), 4u);  // skips device 3
}

TEST(Cluster, NonExclusiveMasterSharesDevice) {
  cluster::ClusterConfig cfg = cluster::ClusterConfig::paper_testbed();
  cfg.master_exclusive = false;
  cluster::ClusterTopology topo(cfg);
  EXPECT_EQ(topo.num_workers(), 6u);
  EXPECT_EQ(topo.worker_device(0), 0u);
}

TEST(Cluster, WorkerBandwidthMatchesLocality) {
  cluster::ClusterTopology topo(cluster::ClusterConfig::paper_testbed());
  EXPECT_DOUBLE_EQ(topo.worker_bandwidth(0), 18.3e9);  // device 1, node 0
  EXPECT_DOUBLE_EQ(topo.worker_bandwidth(1), 1.17e9);  // device 2, node 1
  EXPECT_LT(topo.worker_latency(0), topo.worker_latency(3));
}

TEST(Cluster, CapacityFromDeviceMemory) {
  cluster::ClusterConfig cfg = cluster::ClusterConfig::paper_testbed();
  cfg.device_memory_bytes = 100;
  cluster::ClusterTopology topo(cfg);
  auto caps = topo.capacities(30);
  EXPECT_EQ(caps.size(), 5u);  // one per worker
  for (auto c : caps) EXPECT_EQ(c, 3u);
  EXPECT_THROW(topo.capacities(0), CheckError);
}

TEST(Cluster, UniformCapacityWithSlack) {
  cluster::ClusterTopology topo(cluster::ClusterConfig::paper_testbed());
  // 96 experts over 5 workers = 19.2 each; slack 1.25 → 24.
  auto caps = topo.uniform_capacities(96, 1.25);
  EXPECT_EQ(caps.size(), 5u);
  for (auto c : caps) EXPECT_EQ(c, 24u);
  EXPECT_THROW(topo.uniform_capacities(96, 0.5), CheckError);
}

TEST(Cluster, ValidationRejectsBadConfigs) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 0;
  EXPECT_THROW(cluster::ClusterTopology{cfg}, CheckError);
  cfg = cluster::ClusterConfig{};
  cfg.master_device = 99;
  EXPECT_THROW(cluster::ClusterTopology{cfg}, CheckError);
  cfg = cluster::ClusterConfig{};
  cfg.cross_node_gbps = 0.0;
  EXPECT_THROW(cluster::ClusterTopology{cfg}, CheckError);
}

TEST(Cluster, MasterOnOtherNode) {
  cluster::ClusterConfig cfg = cluster::ClusterConfig::paper_testbed();
  cfg.master_device = 4;  // node 2
  cluster::ClusterTopology topo(cfg);
  EXPECT_DOUBLE_EQ(topo.master_bandwidth(5), 18.3e9);
  EXPECT_DOUBLE_EQ(topo.master_bandwidth(0), 1.17e9);
}

}  // namespace
}  // namespace vela
