#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/expert.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace vela {
namespace {

nn::LoRAConfig small_lora() { return nn::LoRAConfig{2, 4.0f, true}; }

TEST(Linear, ShapesAndParamCount) {
  Rng rng(1);
  nn::Linear layer("l", 4, 3, rng);
  EXPECT_EQ(layer.parameter_count(), 12u);
  ag::Variable x = ag::Variable::constant(Tensor::ones({2, 4}));
  EXPECT_EQ(layer.forward(x).value().rows(), 2u);
  EXPECT_EQ(layer.forward(x).value().cols(), 3u);
}

TEST(Linear, BiasAddsParams) {
  Rng rng(1);
  nn::Linear layer("l", 4, 3, rng, true, /*bias=*/true);
  EXPECT_EQ(layer.parameter_count(), 15u);
}

TEST(Linear, FrozenHasNoTrainableParams) {
  Rng rng(1);
  nn::Linear layer("l", 4, 3, rng, /*trainable=*/false);
  EXPECT_EQ(layer.trainable_parameter_count(), 0u);
}

TEST(Linear, InputShapeValidated) {
  Rng rng(1);
  nn::Linear layer("l", 4, 3, rng);
  ag::Variable bad = ag::Variable::constant(Tensor::ones({2, 5}));
  EXPECT_THROW(layer.forward(bad), CheckError);
}

TEST(LoRALinear, StartsExactlyAtBaseModel) {
  Rng rng(2);
  nn::LoRALinear lora("l", 6, 4, small_lora(), rng);
  Rng rng2(2);
  nn::LoRALinear base("l", 6, 4, nn::LoRAConfig::disabled(), rng2);
  Rng xr(3);
  ag::Variable x = ag::Variable::constant(ops::randn({3, 6}, xr));
  // B initialized to zero ⇒ adapter contributes nothing initially.
  EXPECT_TRUE(ops::allclose(lora.forward(x).value(), base.forward(x).value()));
}

TEST(LoRALinear, OnlyAdaptersTrainable) {
  Rng rng(2);
  nn::LoRALinear lora("l", 6, 4, small_lora(), rng);
  // base 24, A 12, B 8.
  EXPECT_EQ(lora.parameter_count(), 24u + 12u + 8u);
  EXPECT_EQ(lora.trainable_parameter_count(), 20u);
  for (const auto& p : lora.trainable_parameters()) {
    EXPECT_TRUE(p.name.find("lora") != std::string::npos) << p.name;
  }
}

TEST(LoRALinear, AdapterAffectsOutputAfterUpdate) {
  Rng rng(4);
  nn::LoRALinear lora("l", 4, 4, small_lora(), rng);
  Rng xr(5);
  ag::Variable x = ag::Variable::constant(ops::randn({2, 4}, xr));
  Tensor before = lora.forward(x).value();
  // Push B away from zero manually.
  for (auto& p : lora.trainable_parameters()) {
    if (p.name.find("lora_b") != std::string::npos) {
      p.var.mutable_value().fill(0.5f);
    }
  }
  Tensor after = lora.forward(x).value();
  EXPECT_FALSE(ops::allclose(before, after));
}

TEST(LoRALinear, GradFlowsToAdaptersNotBase) {
  Rng rng(6);
  nn::LoRALinear lora("l", 4, 4, small_lora(), rng);
  Rng xr(7);
  ag::Variable x = ag::Variable::constant(ops::randn({2, 4}, xr));
  ag::backward(ag::sum(lora.forward(x)));
  for (const auto& p : lora.parameters()) {
    if (p.name.find("lora_a") != std::string::npos) {
      // dL/dA is nonzero only through B, which is 0; A receives a zero
      // gradient tensor but it must exist.
      EXPECT_TRUE(p.var.has_grad()) << p.name;
    } else if (p.name.find("lora_b") != std::string::npos) {
      EXPECT_TRUE(p.var.has_grad()) << p.name;
      EXPECT_GT(ops::max_abs(p.var.grad()), 0.0f);
    } else {
      EXPECT_FALSE(p.var.has_grad()) << p.name;
    }
  }
}

TEST(RMSNorm, NormalizesRows) {
  nn::RMSNorm norm("n", 8);
  Rng rng(8);
  ag::Variable x = ag::Variable::constant(ops::randn({4, 8}, rng, 0.0f, 5.0f));
  Tensor y = norm.forward(x).value();
  for (std::size_t i = 0; i < 4; ++i) {
    double ss = 0.0;
    for (std::size_t j = 0; j < 8; ++j) ss += double(y.at(i, j)) * y.at(i, j);
    EXPECT_NEAR(std::sqrt(ss / 8.0), 1.0, 1e-2);
  }
}

TEST(RMSNorm, PreservesDirection) {
  nn::RMSNorm norm("n", 4);
  ag::Variable x =
      ag::Variable::constant(Tensor::from_rows({{2.0f, 0.0f, 0.0f, 0.0f}}));
  Tensor y = norm.forward(x).value();
  EXPECT_GT(y.at(0, 0), 0.0f);
  EXPECT_EQ(y.at(0, 1), 0.0f);
}

TEST(Embedding, LooksUpRows) {
  Rng rng(9);
  nn::Embedding emb("e", 10, 4, rng);
  ag::Variable out = emb.forward({3, 3, 7});
  EXPECT_EQ(out.value().rows(), 3u);
  EXPECT_TRUE(ops::allclose(
      ops::gather_rows(out.value(), {0}), ops::gather_rows(out.value(), {1})));
}

TEST(Embedding, RejectsOutOfRangeIds) {
  Rng rng(9);
  nn::Embedding emb("e", 10, 4, rng);
  EXPECT_THROW(emb.forward({10}), CheckError);
  EXPECT_THROW(emb.forward({}), CheckError);
}

TEST(Attention, OutputShapeMatchesInput) {
  Rng rng(10);
  nn::CausalSelfAttention attn("a", 8, 2, small_lora(), rng);
  ag::Variable x = ag::Variable::constant(ops::randn({5, 8}, rng));
  Tensor y = attn.forward(x).value();
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 8u);
  EXPECT_TRUE(y.all_finite());
}

TEST(Attention, RequiresDivisibleHeads) {
  Rng rng(10);
  EXPECT_THROW(nn::CausalSelfAttention("a", 9, 2, small_lora(), rng),
               CheckError);
}

TEST(Attention, CausalityFirstTokenUnaffectedByLaterTokens) {
  Rng rng(11);
  nn::CausalSelfAttention attn("a", 8, 2, small_lora(), rng);
  Rng xr(12);
  Tensor x = ops::randn({4, 8}, xr);
  Tensor x2 = x;
  // Perturb the last token only.
  for (std::size_t j = 0; j < 8; ++j) x2.at(3, j) += 1.0f;
  Tensor y1 = attn.forward(ag::Variable::constant(x)).value();
  Tensor y2 = attn.forward(ag::Variable::constant(x2)).value();
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_FLOAT_EQ(y1.at(0, j), y2.at(0, j));
    EXPECT_FLOAT_EQ(y1.at(2, j), y2.at(2, j));
  }
  // ...but the last row must change.
  bool changed = false;
  for (std::size_t j = 0; j < 8; ++j) {
    changed = changed || y1.at(3, j) != y2.at(3, j);
  }
  EXPECT_TRUE(changed);
}

TEST(Attention, GradReachesAllAdapters) {
  Rng rng(13);
  nn::CausalSelfAttention attn("a", 8, 2, small_lora(), rng);
  Rng xr(14);
  ag::Variable x = ag::Variable::constant(ops::randn({3, 8}, xr));
  ag::backward(ag::sum(attn.forward(x)));
  std::size_t with_grad = 0;
  for (const auto& p : attn.trainable_parameters()) {
    if (p.var.has_grad()) ++with_grad;
  }
  EXPECT_EQ(with_grad, attn.trainable_parameters().size());
}

TEST(Expert, SwiGLUShapesAndFiniteness) {
  Rng rng(15);
  nn::SwiGLUExpert expert("x", 6, 12, small_lora(), rng);
  ag::Variable x = ag::Variable::constant(ops::randn({7, 6}, rng));
  Tensor y = expert.forward(x).value();
  EXPECT_EQ(y.rows(), 7u);
  EXPECT_EQ(y.cols(), 6u);
  EXPECT_TRUE(y.all_finite());
}

TEST(Expert, MemoryBytesScalesWithBitDepth) {
  Rng rng(15);
  nn::SwiGLUExpert expert("x", 6, 12, small_lora(), rng);
  EXPECT_EQ(expert.memory_bytes(32), 2 * expert.memory_bytes(16));
}

TEST(Expert, DeterministicSeedReproducesWeights) {
  const std::uint64_t seed = nn::expert_seed(99, 3, 1);
  Rng r1(seed), r2(seed);
  nn::SwiGLUExpert a("x", 6, 12, small_lora(), r1);
  nn::SwiGLUExpert b("x", 6, 12, small_lora(), r2);
  auto pa = a.parameters();
  auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(ops::allclose(pa[i].var.value(), pb[i].var.value()));
  }
}

TEST(Expert, SeedsDifferAcrossExperts) {
  EXPECT_NE(nn::expert_seed(1, 0, 0), nn::expert_seed(1, 0, 1));
  EXPECT_NE(nn::expert_seed(1, 0, 0), nn::expert_seed(1, 1, 0));
  EXPECT_NE(nn::expert_seed(1, 0, 0), nn::expert_seed(2, 0, 0));
}

TEST(Module, RecursiveParameterNaming) {
  Rng rng(16);
  nn::SwiGLUExpert expert("e", 4, 8, small_lora(), rng);
  bool found = false;
  for (const auto& p : expert.parameters()) {
    if (p.name.find("w1.e.w1.weight") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace vela
