// Integration tests for the trainer-side features: wire quantization,
// gradient accumulation and LR-schedule propagation to workers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/vela_system.h"
#include "data/batch.h"
#include "moe/moe_block.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"
#include "util/check.h"

namespace vela {
namespace {

core::VelaSystemConfig base_config() {
  core::VelaSystemConfig cfg;
  cfg.model = model::ModelConfig::tiny_test();
  cfg.cluster = cluster::ClusterConfig::paper_testbed();
  cfg.seed = 21;
  cfg.wire_bits = 32;
  return cfg;
}

data::SyntheticCorpus corpus_for(const model::ModelConfig& m,
                                 std::uint64_t seed = 5) {
  return data::SyntheticCorpus(data::CorpusConfig::wikitext_like(m.vocab, 6),
                               seed);
}

TEST(WireQuantization, HalfPrecisionTransportStaysCloseToExact) {
  auto exact_cfg = base_config();
  auto quant_cfg = base_config();
  quant_cfg.wire_bits = 16;
  quant_cfg.quantize_wire = true;

  auto corpus = corpus_for(exact_cfg.model);
  core::VelaSystem exact(exact_cfg, &corpus);
  core::VelaSystem quant(quant_cfg, &corpus);
  auto batch = corpus.make_dataset(3, 8);

  const float exact_loss = exact.model().loss_batch(batch).value()[0];
  const float quant_loss = quant.model().loss_batch(batch).value()[0];
  // fp16 rounding on features/outputs perturbs the loss only slightly.
  EXPECT_NE(exact_loss, quant_loss);
  EXPECT_NEAR(quant_loss, exact_loss, std::abs(exact_loss) * 5e-3f);
}

TEST(WireQuantization, ConvergencePreserved) {
  // The paper's claim: exchanging intermediate data at b=16 does not break
  // fine-tuning. Losses under quantized transport must track the exact run.
  auto exact_cfg = base_config();
  exact_cfg.adamw.lr = 1e-3f;
  auto quant_cfg = exact_cfg;
  quant_cfg.wire_bits = 16;
  quant_cfg.quantize_wire = true;

  auto corpus = corpus_for(exact_cfg.model, 11);
  core::VelaSystem exact(exact_cfg, &corpus);
  core::VelaSystem quant(quant_cfg, &corpus);
  auto batch = corpus.make_dataset(3, 8);

  float exact_final = 0.0f, quant_final = 0.0f, exact_first = 0.0f,
        quant_first = 0.0f;
  for (int i = 0; i < 10; ++i) {
    const float e = exact.train_step(batch).loss;
    const float q = quant.train_step(batch).loss;
    if (i == 0) {
      exact_first = e;
      quant_first = q;
    }
    exact_final = e;
    quant_final = q;
  }
  EXPECT_LT(exact_final, exact_first);
  EXPECT_LT(quant_final, quant_first);
  EXPECT_NEAR(quant_final, exact_final, std::abs(exact_final) * 0.02f);
}

TEST(GradAccumulation, EquivalentToLargeBatch) {
  // One step over {A, B} as a single batch must equal one accumulated step
  // over micro-batches {A} and {B} (same sequence lengths ⇒ the mean-CE of
  // the union is the mean of the two micro means).
  auto cfg = base_config();
  cfg.adamw.lr = 1e-3f;
  auto corpus = corpus_for(cfg.model, 13);
  auto data = corpus.make_dataset(4, 8);
  std::vector<std::vector<std::size_t>> micro_a{data[0], data[1]};
  std::vector<std::vector<std::size_t>> micro_b{data[2], data[3]};
  std::vector<std::vector<std::size_t>> full{data[0], data[1], data[2],
                                             data[3]};

  core::VelaSystem one_shot(cfg, &corpus);
  core::VelaSystem accumulated(cfg, &corpus);
  auto full_report = one_shot.train_step(full);
  auto accum_report = accumulated.train_step_accumulated({micro_a, micro_b});
  EXPECT_NEAR(accum_report.loss, full_report.loss, 1e-5f);

  // Post-step parameters must coincide (same gradients → same AdamW step).
  const float full_after = one_shot.model().loss_batch(full).value()[0];
  const float accum_after = accumulated.model().loss_batch(full).value()[0];
  EXPECT_NEAR(accum_after, full_after, std::abs(full_after) * 1e-4f);
}

TEST(GradAccumulation, RejectsEmpty) {
  auto cfg = base_config();
  auto corpus = corpus_for(cfg.model);
  core::VelaSystem vela(cfg, &corpus);
  EXPECT_THROW(vela.train_step_accumulated({}), CheckError);
}

TEST(LrSchedule, AppliedToBackboneAndWorkers) {
  auto cfg = base_config();
  auto corpus = corpus_for(cfg.model, 17);
  core::VelaSystem vela(cfg, &corpus);
  nn::WarmupCosineLr schedule(1e-2f, 2, 20, 1e-4f);
  vela.set_lr_schedule(&schedule);
  auto batch = corpus.make_dataset(2, 6);
  for (int i = 0; i < 3; ++i) vela.train_step(batch);
  // After 3 steps the system asked the schedule for steps 0..2; no crash
  // and training still progresses. (Worker-side application is covered by
  // the large-LR divergence check below.)
  SUCCEED();
}

TEST(LrSchedule, WorkerLrActuallyChangesUpdates) {
  // Two identical systems, same batches; one under a near-zero schedule.
  // The near-zero-LR system's loss must barely move while the other learns —
  // this fails if the scheduled LR never reaches the workers.
  auto cfg = base_config();
  cfg.adamw.lr = 5e-3f;
  auto corpus = corpus_for(cfg.model, 19);
  core::VelaSystem fast(cfg, &corpus);
  core::VelaSystem frozen(cfg, &corpus);
  nn::ConstantLr tiny(1e-9f);
  frozen.set_lr_schedule(&tiny);

  auto batch = corpus.make_dataset(3, 8);
  const float initial = fast.model().loss_batch(batch).value()[0];
  for (int i = 0; i < 8; ++i) {
    fast.train_step(batch);
    frozen.train_step(batch);
  }
  const float fast_after = fast.model().loss_batch(batch).value()[0];
  const float frozen_after = frozen.model().loss_batch(batch).value()[0];
  EXPECT_LT(fast_after, initial - 0.01f);
  EXPECT_NEAR(frozen_after, initial, 1e-3f);
}

TEST(DynamicReplacement, RunsInsideTrainingLoop) {
  auto cfg = base_config();
  auto corpus = corpus_for(cfg.model, 23);
  core::VelaSystem vela(cfg, &corpus);
  core::ReplanConfig rp;
  rp.interval = 2;
  rp.window = 2;
  rp.min_improvement = 0.0;  // always adopt the LP's proposal when due
  vela.enable_dynamic_replacement(rp, 2.0 * 5.0);

  data::BatchIterator batches(corpus.make_dataset(8, 6), 2, 3);
  for (int i = 0; i < 6; ++i) vela.train_step(batches.next());
  ASSERT_NE(vela.replanner(), nullptr);
  EXPECT_EQ(vela.replanner()->steps_observed(), 6u);
  EXPECT_GT(vela.replanner()->replans_evaluated(), 0u);
  // Training is still sound after migrations.
  EXPECT_TRUE(std::isfinite(vela.history().back().loss));
}

}  // namespace
}  // namespace vela
