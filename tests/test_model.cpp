#include "model/transformer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "moe/moe_block.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace vela {
namespace {

struct Fixture {
  Fixture()
      : cfg(model::ModelConfig::tiny_test()),
        backend(cfg.num_layers, cfg.num_experts, cfg.model_dim, cfg.hidden_dim,
                cfg.lora, 77),
        rng(5),
        model(cfg, &backend, rng) {}

  model::ModelConfig cfg;
  moe::LocalExpertBackend backend;
  Rng rng;
  model::MoETransformer model;
};

TEST(ModelConfig, Presets) {
  auto tiny = model::ModelConfig::tiny_mistral();
  EXPECT_EQ(tiny.num_layers, 12u);
  EXPECT_EQ(tiny.num_experts, 6u);
  EXPECT_EQ(tiny.top_k, 2u);

  auto mixtral = model::ModelConfig::mixtral_8x7b_shape();
  EXPECT_EQ(mixtral.num_layers, 32u);
  EXPECT_EQ(mixtral.num_experts, 8u);
  EXPECT_EQ(mixtral.model_dim, 4096u);
  EXPECT_EQ(mixtral.wire_bits, 16u);
  // One token, one direction: H·b/8 = 4096·2 = 8192 bytes.
  EXPECT_EQ(mixtral.bytes_per_token(), 8192u);

  auto grit = model::ModelConfig::gritlm_8x7b_shape();
  EXPECT_EQ(grit.num_layers, mixtral.num_layers);
  EXPECT_NE(grit.name, mixtral.name);
}

TEST(Model, ForwardShape) {
  Fixture f;
  std::vector<std::vector<std::size_t>> batch{{1, 2, 3, 4}, {5, 6, 7}};
  Tensor logits = f.model.forward_batch(batch).value();
  EXPECT_EQ(logits.rows(), 7u);  // 4 + 3 tokens
  EXPECT_EQ(logits.cols(), f.cfg.vocab);
  EXPECT_TRUE(logits.all_finite());
}

TEST(Model, SingleSequenceBatch) {
  Fixture f;
  Tensor logits = f.model.forward_batch({{1, 2, 3}}).value();
  EXPECT_EQ(logits.rows(), 3u);
}

TEST(Model, LossIsFiniteAndPositive) {
  Fixture f;
  std::vector<std::vector<std::size_t>> batch{{1, 2, 3, 4, 5}, {6, 7, 8, 9, 1}};
  float loss = f.model.loss_batch(batch).value()[0];
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0f);
}

TEST(Model, LossRejectsTooShortSequences) {
  Fixture f;
  EXPECT_THROW(f.model.loss_batch({{1}}), CheckError);
}

TEST(Model, StatsRecordedForAllBlocks) {
  Fixture f;
  moe::RoutingStats stats(f.cfg.num_layers, f.cfg.num_experts);
  f.model.forward_batch({{1, 2, 3, 4}}, &stats);
  for (std::size_t l = 0; l < f.cfg.num_layers; ++l) {
    EXPECT_EQ(stats.tokens_seen(l), 4u);
  }
}

TEST(Model, LastPlansOnePerBlock) {
  Fixture f;
  f.model.forward_batch({{1, 2, 3}});
  auto plans = f.model.last_plans();
  EXPECT_EQ(plans.size(), f.cfg.num_layers);
  for (const auto& plan : plans) {
    EXPECT_EQ(plan.num_tokens, 3u);
    EXPECT_NO_THROW(plan.validate());
  }
}

TEST(Model, OnlyLoRAAndGateBackboneSplit) {
  Fixture f;
  // Trainable params must all be LoRA adapters (gate frozen, embed frozen).
  for (const auto& p : f.model.trainable_parameters()) {
    EXPECT_NE(p.name.find("lora"), std::string::npos) << p.name;
  }
  EXPECT_GT(f.model.trainable_parameter_count(), 0u);
  EXPECT_LT(f.model.trainable_parameter_count(), f.model.parameter_count());
}

TEST(Model, BackwardReachesEveryTrainableParam) {
  Fixture f;
  ag::backward(f.model.loss_batch({{1, 2, 3, 4, 5}, {6, 7, 8, 9, 1}}));
  std::size_t without = 0;
  for (const auto& p : f.model.trainable_parameters()) {
    if (!p.var.has_grad()) ++without;
  }
  EXPECT_EQ(without, 0u);
}

TEST(Model, TrainingStepReducesLossOnFixedBatch) {
  Fixture f;
  std::vector<std::vector<std::size_t>> batch{{1, 2, 3, 1, 2, 3, 1, 2},
                                              {4, 5, 6, 4, 5, 6, 4, 5}};
  std::vector<nn::Parameter> params = f.model.trainable_parameters();
  for (const auto& bp : f.backend.trainable_parameters()) params.push_back(bp);
  nn::SGD sgd(params, 0.05f);
  const float initial = f.model.loss_batch(batch).value()[0];
  float final_loss = initial;
  for (int i = 0; i < 30; ++i) {
    sgd.zero_grad();
    ag::Variable loss = f.model.loss_batch(batch);
    final_loss = loss.value()[0];
    ag::backward(loss);
    sgd.step();
  }
  EXPECT_LT(final_loss, initial * 0.98f);
}

TEST(Model, DeterministicConstruction) {
  auto cfg = model::ModelConfig::tiny_test();
  moe::LocalExpertBackend b1(cfg.num_layers, cfg.num_experts, cfg.model_dim,
                             cfg.hidden_dim, cfg.lora, 3);
  moe::LocalExpertBackend b2(cfg.num_layers, cfg.num_experts, cfg.model_dim,
                             cfg.hidden_dim, cfg.lora, 3);
  Rng r1(9), r2(9);
  model::MoETransformer m1(cfg, &b1, r1);
  model::MoETransformer m2(cfg, &b2, r2);
  std::vector<std::vector<std::size_t>> batch{{1, 2, 3, 4}};
  EXPECT_TRUE(ops::allclose(m1.forward_batch(batch).value(),
                            m2.forward_batch(batch).value()));
}

}  // namespace
}  // namespace vela
