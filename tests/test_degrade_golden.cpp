// Golden-file regression test for the degrade-and-continue recovery CSV
// (`ctest -L degrade`).
//
// bench_fault_tolerance and this test share the emitter in
// bench/degrade_csv.h, so a schema, row-order or formatting drift fails
// here on a seconds-long configuration instead of after a paper-scale run.
// The golden file is checked in; regenerate deliberately with
// VELA_REGEN_GOLDEN=1 after an intentional change and review the diff.
// Because the scripted kill fires at a fixed message index and every cell
// is either bit-exact or modelled, the same bytes must come out on both
// VELA_TRANSPORT backends — the golden comparison doubles as a
// backend-invariance gate for the whole recovery path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "degrade_csv.h"

namespace vela {
namespace {

// Compile-time path to tests/golden/ (set in tests/CMakeLists.txt).
#ifndef VELA_GOLDEN_DIR
#error "VELA_GOLDEN_DIR must be defined by the build"
#endif

constexpr int kGoldenSteps = 12;
constexpr std::size_t kKillWorker = 1;
constexpr std::uint64_t kKillMessage = 20;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, sep)) cells.push_back(cell);
  return cells;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream ss(text);
  while (std::getline(ss, line)) lines.push_back(line);
  return lines;
}

std::string join(const std::vector<std::string>& cells, char sep) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out.push_back(sep);
    out += cells[i];
  }
  return out;
}

std::string emit_degrade_csv(const std::string& path) {
  {
    CsvWriter csv(path, bench::degrade_columns());
    bench::emit_degrade_recovery("tiny-degrade", csv, kGoldenSteps,
                                 kKillWorker, kKillMessage);
  }  // writer flushes on destruction
  return slurp(path);
}

void maybe_regenerate(const std::string& golden_path,
                      const std::string& produced) {
  if (std::getenv("VELA_REGEN_GOLDEN") == nullptr) return;
  std::ofstream out(golden_path, std::ios::binary);
  out << produced;
}

TEST(DegradeGolden, RecoveryCsvMatchesGoldenByteForByte) {
  const std::string produced = emit_degrade_csv("golden_degrade_out.csv");
  const std::string golden_path =
      std::string(VELA_GOLDEN_DIR) + "/degrade_tiny.csv";
  maybe_regenerate(golden_path, produced);
  EXPECT_EQ(produced, slurp(golden_path))
      << "degrade CSV drifted from tests/golden/degrade_tiny.csv; if "
         "intentional, regenerate with VELA_REGEN_GOLDEN=1 and review the "
         "diff";
}

TEST(DegradeGolden, SchemaAndRecoveryInvariants) {
  const auto rows = lines_of(emit_degrade_csv("golden_degrade_schema.csv"));
  ASSERT_EQ(rows.size(), 1u + kGoldenSteps);  // header + one row per step
  EXPECT_EQ(rows[0], join(bench::degrade_columns(), ','));

  std::size_t kill_row = 0, total_lost = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto cells = split(rows[i], ',');
    ASSERT_EQ(cells.size(), bench::degrade_columns().size()) << rows[i];
    EXPECT_EQ(cells[0], "tiny-degrade");
    EXPECT_EQ(cells[1], std::to_string(i - 1));  // monotonic step index
    const double loss = std::stod(cells[2]);
    EXPECT_TRUE(loss > 0.0 && loss < 100.0) << rows[i];
    const std::size_t lost = std::stoul(cells[3]);
    total_lost += lost;
    if (lost > 0) kill_row = i;
    // The fleet never grows back: 5 live workers before the kill, 4 after.
    EXPECT_EQ(cells[4], kill_row == 0 ? "5" : "4") << rows[i];
    EXPECT_GE(std::stod(cells[6]), 0.0) << rows[i];   // recovery_mb
    EXPECT_GT(std::stod(cells[7]), 0.0) << rows[i];   // traffic
    EXPECT_GE(std::stod(cells[8]), 0.5) << rows[i];   // compute floor
  }
  // Exactly one worker dies, on the step the scripted kill lands in, and
  // that step pays a non-zero state-migration bill.
  EXPECT_EQ(total_lost, 1u);
  ASSERT_GT(kill_row, 0u);
  const auto kill_cells = split(rows[kill_row], ',');
  EXPECT_GE(std::stoul(kill_cells[5]), 1u) << rows[kill_row];  // retries
  EXPECT_GT(std::stod(kill_cells[6]), 0.0) << rows[kill_row];
}

TEST(DegradeGolden, EmitterIsDeterministicAcrossRuns) {
  const std::string a = emit_degrade_csv("golden_degrade_det_a.csv");
  const std::string b = emit_degrade_csv("golden_degrade_det_b.csv");
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace vela
