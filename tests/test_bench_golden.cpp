// Golden-file regression test for the Fig. 5 / Fig. 6 bench CSV schemas
// (`ctest -L overlap`).
//
// The bench binaries and this test share the emitters in bench/fig_csv.h, so
// a schema, series-order or formatting drift in the figure CSVs fails here
// on a seconds-long configuration instead of being discovered after a
// 500-step paper-scale run. The golden files are checked in; regenerate
// deliberately with VELA_REGEN_GOLDEN=1 after an intentional change and
// review the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fig_csv.h"
#include "util/thread_pool.h"

namespace vela {
namespace {

// Compile-time path to tests/golden/ (set in tests/CMakeLists.txt).
#ifndef VELA_GOLDEN_DIR
#error "VELA_GOLDEN_DIR must be defined by the build"
#endif

constexpr std::size_t kGoldenSteps = 5;
constexpr std::size_t kGoldenTokens = 64;

// A seconds-scale setting: the tiny model preset with a matching tiny corpus.
bench::Setting golden_setting() {
  bench::Setting s;
  s.name = "tiny-golden";
  s.model = model::ModelConfig::tiny_test();
  s.corpus = data::CorpusConfig::wikitext_like(s.model.vocab, 6);
  s.num_domains = 6;
  s.seed = 7;
  return s;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, sep)) cells.push_back(cell);
  return cells;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream ss(text);
  while (std::getline(ss, line)) lines.push_back(line);
  return lines;
}

std::string join(const std::vector<std::string>& cells, char sep) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out.push_back(sep);
    out += cells[i];
  }
  return out;
}

// Emits the golden setting through the shared emitters into `dir`/<name>.
std::string emit_fig5_csv(const std::string& path) {
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  {
    CsvWriter csv(path, bench::fig5_columns());
    bench::emit_fig5_setting(golden_setting(), topology, csv, kGoldenSteps,
                             kGoldenTokens);
  }  // writer flushes on destruction
  return slurp(path);
}

std::string emit_fig6_csv(const std::string& path) {
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  {
    CsvWriter csv(path, bench::fig6_columns());
    bench::emit_fig6_setting(golden_setting(), topology, csv, kGoldenSteps,
                             kGoldenTokens, /*compute_seconds=*/0.5,
                             /*overlap_chunks=*/8);
  }
  return slurp(path);
}

void maybe_regenerate(const std::string& golden_path,
                      const std::string& produced) {
  if (std::getenv("VELA_REGEN_GOLDEN") == nullptr) return;
  std::ofstream out(golden_path, std::ios::binary);
  out << produced;
}

TEST(BenchGolden, Fig5CsvMatchesGoldenByteForByte) {
  const std::string produced = emit_fig5_csv("golden_fig5_out.csv");
  const std::string golden_path = std::string(VELA_GOLDEN_DIR) + "/fig5_tiny.csv";
  maybe_regenerate(golden_path, produced);
  EXPECT_EQ(produced, slurp(golden_path))
      << "fig5 CSV drifted from tests/golden/fig5_tiny.csv; if intentional, "
         "regenerate with VELA_REGEN_GOLDEN=1 and review the diff";
}

TEST(BenchGolden, Fig6CsvMatchesGoldenByteForByte) {
  const std::string produced = emit_fig6_csv("golden_fig6_out.csv");
  const std::string golden_path = std::string(VELA_GOLDEN_DIR) + "/fig6_tiny.csv";
  maybe_regenerate(golden_path, produced);
  EXPECT_EQ(produced, slurp(golden_path))
      << "fig6 CSV drifted from tests/golden/fig6_tiny.csv; if intentional, "
         "regenerate with VELA_REGEN_GOLDEN=1 and review the diff";
}

TEST(BenchGolden, Fig5SchemaAndInvariants) {
  const auto rows = lines_of(emit_fig5_csv("golden_fig5_schema.csv"));
  ASSERT_EQ(rows.size(), 1 + kGoldenSteps);  // header + one row per step
  EXPECT_EQ(rows[0], join(bench::fig5_columns(), ','));
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto cells = split(rows[i], ',');
    ASSERT_EQ(cells.size(), bench::fig5_columns().size()) << rows[i];
    EXPECT_EQ(cells[0], "tiny-golden");
    // Monotonic step index, starting at 0.
    EXPECT_EQ(cells[1], std::to_string(i - 1));
    const double seq_mb = std::stod(cells[2]);
    const double rnd_mb = std::stod(cells[3]);
    const double vela_mb = std::stod(cells[4]);
    const double ep_mb = std::stod(cells[5]);
    const double f16_mb = std::stod(cells[6]);
    const double q8_mb = std::stod(cells[7]);
    for (const double v : {seq_mb, rnd_mb, vela_mb, ep_mb, f16_mb, q8_mb}) {
      EXPECT_GE(v, 0.0) << rows[i];
    }
    // The paper's core claim, enforced per step: the locality-aware
    // placement never moves more bytes than the sequential layout.
    EXPECT_LE(vela_mb, seq_mb) << rows[i];
    // Wire-tier claims (DESIGN.md §13). The golden model is tiny_test with
    // wire_bits = 32, so vela_mb is fp32-accounted: the int8 tier must cut
    // the vela placement's external bytes at least 2x per step, and the
    // fp16 tier sits strictly between.
    EXPECT_LE(2.0 * q8_mb, vela_mb) << rows[i];
    EXPECT_LT(q8_mb, f16_mb) << rows[i];
    EXPECT_LT(f16_mb, vela_mb) << rows[i];
  }
}

TEST(BenchGolden, Fig5F16TierMatchesNativeF16Accounting) {
  // Sanity pin for the tier math: on a model that already models a 16-bit
  // wire (bytes_per_token == model_dim * 2), the vela_f16_mb column must be
  // byte-identical to vela_mb — same placement, same plans, same bytes.
  bench::Setting s = golden_setting();
  s.model.wire_bits = 16;
  cluster::ClusterTopology topology(cluster::ClusterConfig::paper_testbed());
  {
    CsvWriter csv("golden_fig5_f16.csv", bench::fig5_columns());
    bench::emit_fig5_setting(s, topology, csv, kGoldenSteps, kGoldenTokens);
  }
  const auto rows = lines_of(slurp("golden_fig5_f16.csv"));
  ASSERT_EQ(rows.size(), 1 + kGoldenSteps);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto cells = split(rows[i], ',');
    ASSERT_EQ(cells.size(), bench::fig5_columns().size()) << rows[i];
    EXPECT_EQ(cells[6], cells[4]) << rows[i];  // vela_f16_mb == vela_mb
  }
}

TEST(BenchGolden, Fig6SchemaAndInvariants) {
  const auto rows = lines_of(emit_fig6_csv("golden_fig6_schema.csv"));
  ASSERT_EQ(rows.size(), 2u);  // header + one summary row per setting
  EXPECT_EQ(rows[0], join(bench::fig6_columns(), ','));
  const auto cells = split(rows[1], ',');
  ASSERT_EQ(cells.size(), bench::fig6_columns().size());
  EXPECT_EQ(cells[0], "tiny-golden");
  const double ep_s = std::stod(cells[1]);
  const double seq_s = std::stod(cells[2]);
  const double vela_s = std::stod(cells[4]);
  const double overlap_s = std::stod(cells[5]);
  const double f16_s = std::stod(cells[6]);
  const double q8_s = std::stod(cells[7]);
  // Every step time includes the compute floor.
  for (std::size_t i = 1; i < cells.size(); ++i) {
    EXPECT_GE(std::stod(cells[i]), 0.5) << rows[1];
  }
  EXPECT_LE(vela_s, seq_s);
  EXPECT_LE(vela_s, ep_s);
  // The overlap series models the SAME bytes, so it can only be faster.
  EXPECT_LE(overlap_s, vela_s);
  // Fewer wire bytes can only shrink the modeled step: int8 < fp16 < fp32.
  EXPECT_LE(q8_s, f16_s);
  EXPECT_LE(f16_s, vela_s);
}

TEST(BenchGolden, EmittersAreDeterministicAcrossRunsAndThreadCounts) {
  // The golden contract presupposes determinism: identical bytes run-to-run
  // and independent of the compute pool size.
  const std::string a = emit_fig5_csv("golden_fig5_det_a.csv");
  const std::string b = emit_fig5_csv("golden_fig5_det_b.csv");
  EXPECT_EQ(a, b);
  util::ThreadPool::set_global_threads(8);
  const std::string threaded = emit_fig5_csv("golden_fig5_det_c.csv");
  util::ThreadPool::set_global_threads(0);
  EXPECT_EQ(a, threaded);
}

}  // namespace
}  // namespace vela
