# Empty dependencies file for compare_runtimes.
# This may be replaced when dependencies are built.
