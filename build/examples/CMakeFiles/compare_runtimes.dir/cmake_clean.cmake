file(REMOVE_RECURSE
  "CMakeFiles/compare_runtimes.dir/compare_runtimes.cpp.o"
  "CMakeFiles/compare_runtimes.dir/compare_runtimes.cpp.o.d"
  "compare_runtimes"
  "compare_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
