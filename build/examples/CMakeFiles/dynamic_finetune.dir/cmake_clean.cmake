file(REMOVE_RECURSE
  "CMakeFiles/dynamic_finetune.dir/dynamic_finetune.cpp.o"
  "CMakeFiles/dynamic_finetune.dir/dynamic_finetune.cpp.o.d"
  "dynamic_finetune"
  "dynamic_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
