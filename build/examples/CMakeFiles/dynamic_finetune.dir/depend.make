# Empty dependencies file for dynamic_finetune.
# This may be replaced when dependencies are built.
