# Empty compiler generated dependencies file for finetune_wikitext.
# This may be replaced when dependencies are built.
