file(REMOVE_RECURSE
  "CMakeFiles/finetune_wikitext.dir/finetune_wikitext.cpp.o"
  "CMakeFiles/finetune_wikitext.dir/finetune_wikitext.cpp.o.d"
  "finetune_wikitext"
  "finetune_wikitext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finetune_wikitext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
