# Empty compiler generated dependencies file for finetune_shakespeare.
# This may be replaced when dependencies are built.
