file(REMOVE_RECURSE
  "CMakeFiles/finetune_shakespeare.dir/finetune_shakespeare.cpp.o"
  "CMakeFiles/finetune_shakespeare.dir/finetune_shakespeare.cpp.o.d"
  "finetune_shakespeare"
  "finetune_shakespeare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finetune_shakespeare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
