# Empty compiler generated dependencies file for finetune_alpaca.
# This may be replaced when dependencies are built.
