file(REMOVE_RECURSE
  "CMakeFiles/finetune_alpaca.dir/finetune_alpaca.cpp.o"
  "CMakeFiles/finetune_alpaca.dir/finetune_alpaca.cpp.o.d"
  "finetune_alpaca"
  "finetune_alpaca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finetune_alpaca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
