# Empty dependencies file for placement_explorer.
# This may be replaced when dependencies are built.
