file(REMOVE_RECURSE
  "libvela.a"
)
