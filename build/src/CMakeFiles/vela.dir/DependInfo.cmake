
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/ops.cpp" "src/CMakeFiles/vela.dir/autograd/ops.cpp.o" "gcc" "src/CMakeFiles/vela.dir/autograd/ops.cpp.o.d"
  "/root/repo/src/autograd/variable.cpp" "src/CMakeFiles/vela.dir/autograd/variable.cpp.o" "gcc" "src/CMakeFiles/vela.dir/autograd/variable.cpp.o.d"
  "/root/repo/src/cluster/topology.cpp" "src/CMakeFiles/vela.dir/cluster/topology.cpp.o" "gcc" "src/CMakeFiles/vela.dir/cluster/topology.cpp.o.d"
  "/root/repo/src/comm/channel.cpp" "src/CMakeFiles/vela.dir/comm/channel.cpp.o" "gcc" "src/CMakeFiles/vela.dir/comm/channel.cpp.o.d"
  "/root/repo/src/comm/comm_clock.cpp" "src/CMakeFiles/vela.dir/comm/comm_clock.cpp.o" "gcc" "src/CMakeFiles/vela.dir/comm/comm_clock.cpp.o.d"
  "/root/repo/src/comm/message.cpp" "src/CMakeFiles/vela.dir/comm/message.cpp.o" "gcc" "src/CMakeFiles/vela.dir/comm/message.cpp.o.d"
  "/root/repo/src/comm/serialize.cpp" "src/CMakeFiles/vela.dir/comm/serialize.cpp.o" "gcc" "src/CMakeFiles/vela.dir/comm/serialize.cpp.o.d"
  "/root/repo/src/comm/traffic_meter.cpp" "src/CMakeFiles/vela.dir/comm/traffic_meter.cpp.o" "gcc" "src/CMakeFiles/vela.dir/comm/traffic_meter.cpp.o.d"
  "/root/repo/src/core/checkpoint.cpp" "src/CMakeFiles/vela.dir/core/checkpoint.cpp.o" "gcc" "src/CMakeFiles/vela.dir/core/checkpoint.cpp.o.d"
  "/root/repo/src/core/expert_broker.cpp" "src/CMakeFiles/vela.dir/core/expert_broker.cpp.o" "gcc" "src/CMakeFiles/vela.dir/core/expert_broker.cpp.o.d"
  "/root/repo/src/core/expert_worker.cpp" "src/CMakeFiles/vela.dir/core/expert_worker.cpp.o" "gcc" "src/CMakeFiles/vela.dir/core/expert_worker.cpp.o.d"
  "/root/repo/src/core/master.cpp" "src/CMakeFiles/vela.dir/core/master.cpp.o" "gcc" "src/CMakeFiles/vela.dir/core/master.cpp.o.d"
  "/root/repo/src/core/profiler.cpp" "src/CMakeFiles/vela.dir/core/profiler.cpp.o" "gcc" "src/CMakeFiles/vela.dir/core/profiler.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/CMakeFiles/vela.dir/core/protocol.cpp.o" "gcc" "src/CMakeFiles/vela.dir/core/protocol.cpp.o.d"
  "/root/repo/src/core/replanner.cpp" "src/CMakeFiles/vela.dir/core/replanner.cpp.o" "gcc" "src/CMakeFiles/vela.dir/core/replanner.cpp.o.d"
  "/root/repo/src/core/step_simulator.cpp" "src/CMakeFiles/vela.dir/core/step_simulator.cpp.o" "gcc" "src/CMakeFiles/vela.dir/core/step_simulator.cpp.o.d"
  "/root/repo/src/core/vela_system.cpp" "src/CMakeFiles/vela.dir/core/vela_system.cpp.o" "gcc" "src/CMakeFiles/vela.dir/core/vela_system.cpp.o.d"
  "/root/repo/src/data/batch.cpp" "src/CMakeFiles/vela.dir/data/batch.cpp.o" "gcc" "src/CMakeFiles/vela.dir/data/batch.cpp.o.d"
  "/root/repo/src/data/corpus.cpp" "src/CMakeFiles/vela.dir/data/corpus.cpp.o" "gcc" "src/CMakeFiles/vela.dir/data/corpus.cpp.o.d"
  "/root/repo/src/data/text_corpus.cpp" "src/CMakeFiles/vela.dir/data/text_corpus.cpp.o" "gcc" "src/CMakeFiles/vela.dir/data/text_corpus.cpp.o.d"
  "/root/repo/src/data/tokenizer.cpp" "src/CMakeFiles/vela.dir/data/tokenizer.cpp.o" "gcc" "src/CMakeFiles/vela.dir/data/tokenizer.cpp.o.d"
  "/root/repo/src/ep/expert_parallel.cpp" "src/CMakeFiles/vela.dir/ep/expert_parallel.cpp.o" "gcc" "src/CMakeFiles/vela.dir/ep/expert_parallel.cpp.o.d"
  "/root/repo/src/ep/runtime.cpp" "src/CMakeFiles/vela.dir/ep/runtime.cpp.o" "gcc" "src/CMakeFiles/vela.dir/ep/runtime.cpp.o.d"
  "/root/repo/src/model/config.cpp" "src/CMakeFiles/vela.dir/model/config.cpp.o" "gcc" "src/CMakeFiles/vela.dir/model/config.cpp.o.d"
  "/root/repo/src/model/evaluate.cpp" "src/CMakeFiles/vela.dir/model/evaluate.cpp.o" "gcc" "src/CMakeFiles/vela.dir/model/evaluate.cpp.o.d"
  "/root/repo/src/model/generate.cpp" "src/CMakeFiles/vela.dir/model/generate.cpp.o" "gcc" "src/CMakeFiles/vela.dir/model/generate.cpp.o.d"
  "/root/repo/src/model/router_planting.cpp" "src/CMakeFiles/vela.dir/model/router_planting.cpp.o" "gcc" "src/CMakeFiles/vela.dir/model/router_planting.cpp.o.d"
  "/root/repo/src/model/transformer.cpp" "src/CMakeFiles/vela.dir/model/transformer.cpp.o" "gcc" "src/CMakeFiles/vela.dir/model/transformer.cpp.o.d"
  "/root/repo/src/moe/gate.cpp" "src/CMakeFiles/vela.dir/moe/gate.cpp.o" "gcc" "src/CMakeFiles/vela.dir/moe/gate.cpp.o.d"
  "/root/repo/src/moe/moe_block.cpp" "src/CMakeFiles/vela.dir/moe/moe_block.cpp.o" "gcc" "src/CMakeFiles/vela.dir/moe/moe_block.cpp.o.d"
  "/root/repo/src/moe/routing_stats.cpp" "src/CMakeFiles/vela.dir/moe/routing_stats.cpp.o" "gcc" "src/CMakeFiles/vela.dir/moe/routing_stats.cpp.o.d"
  "/root/repo/src/moe/synthetic_router.cpp" "src/CMakeFiles/vela.dir/moe/synthetic_router.cpp.o" "gcc" "src/CMakeFiles/vela.dir/moe/synthetic_router.cpp.o.d"
  "/root/repo/src/moe/trace.cpp" "src/CMakeFiles/vela.dir/moe/trace.cpp.o" "gcc" "src/CMakeFiles/vela.dir/moe/trace.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/CMakeFiles/vela.dir/nn/attention.cpp.o" "gcc" "src/CMakeFiles/vela.dir/nn/attention.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/CMakeFiles/vela.dir/nn/embedding.cpp.o" "gcc" "src/CMakeFiles/vela.dir/nn/embedding.cpp.o.d"
  "/root/repo/src/nn/expert.cpp" "src/CMakeFiles/vela.dir/nn/expert.cpp.o" "gcc" "src/CMakeFiles/vela.dir/nn/expert.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/vela.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/vela.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/CMakeFiles/vela.dir/nn/module.cpp.o" "gcc" "src/CMakeFiles/vela.dir/nn/module.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/CMakeFiles/vela.dir/nn/norm.cpp.o" "gcc" "src/CMakeFiles/vela.dir/nn/norm.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/vela.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/vela.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/schedule.cpp" "src/CMakeFiles/vela.dir/nn/schedule.cpp.o" "gcc" "src/CMakeFiles/vela.dir/nn/schedule.cpp.o.d"
  "/root/repo/src/placement/annealing.cpp" "src/CMakeFiles/vela.dir/placement/annealing.cpp.o" "gcc" "src/CMakeFiles/vela.dir/placement/annealing.cpp.o.d"
  "/root/repo/src/placement/evaluator.cpp" "src/CMakeFiles/vela.dir/placement/evaluator.cpp.o" "gcc" "src/CMakeFiles/vela.dir/placement/evaluator.cpp.o.d"
  "/root/repo/src/placement/exact.cpp" "src/CMakeFiles/vela.dir/placement/exact.cpp.o" "gcc" "src/CMakeFiles/vela.dir/placement/exact.cpp.o.d"
  "/root/repo/src/placement/greedy.cpp" "src/CMakeFiles/vela.dir/placement/greedy.cpp.o" "gcc" "src/CMakeFiles/vela.dir/placement/greedy.cpp.o.d"
  "/root/repo/src/placement/locality_aware.cpp" "src/CMakeFiles/vela.dir/placement/locality_aware.cpp.o" "gcc" "src/CMakeFiles/vela.dir/placement/locality_aware.cpp.o.d"
  "/root/repo/src/placement/lp/simplex.cpp" "src/CMakeFiles/vela.dir/placement/lp/simplex.cpp.o" "gcc" "src/CMakeFiles/vela.dir/placement/lp/simplex.cpp.o.d"
  "/root/repo/src/placement/placement.cpp" "src/CMakeFiles/vela.dir/placement/placement.cpp.o" "gcc" "src/CMakeFiles/vela.dir/placement/placement.cpp.o.d"
  "/root/repo/src/placement/random.cpp" "src/CMakeFiles/vela.dir/placement/random.cpp.o" "gcc" "src/CMakeFiles/vela.dir/placement/random.cpp.o.d"
  "/root/repo/src/placement/replication.cpp" "src/CMakeFiles/vela.dir/placement/replication.cpp.o" "gcc" "src/CMakeFiles/vela.dir/placement/replication.cpp.o.d"
  "/root/repo/src/placement/rounding.cpp" "src/CMakeFiles/vela.dir/placement/rounding.cpp.o" "gcc" "src/CMakeFiles/vela.dir/placement/rounding.cpp.o.d"
  "/root/repo/src/placement/sequential.cpp" "src/CMakeFiles/vela.dir/placement/sequential.cpp.o" "gcc" "src/CMakeFiles/vela.dir/placement/sequential.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/vela.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/vela.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/vela.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/vela.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/util/argparse.cpp" "src/CMakeFiles/vela.dir/util/argparse.cpp.o" "gcc" "src/CMakeFiles/vela.dir/util/argparse.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/vela.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/vela.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/vela.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/vela.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/vela.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/vela.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/vela.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/vela.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
