# Empty compiler generated dependencies file for vela.
# This may be replaced when dependencies are built.
