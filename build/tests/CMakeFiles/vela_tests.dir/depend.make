# Empty dependencies file for vela_tests.
# This may be replaced when dependencies are built.
