
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_autograd.cpp" "tests/CMakeFiles/vela_tests.dir/test_autograd.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_autograd.cpp.o.d"
  "/root/repo/tests/test_autograd_properties.cpp" "tests/CMakeFiles/vela_tests.dir/test_autograd_properties.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_autograd_properties.cpp.o.d"
  "/root/repo/tests/test_broker.cpp" "tests/CMakeFiles/vela_tests.dir/test_broker.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_broker.cpp.o.d"
  "/root/repo/tests/test_capacity_factor.cpp" "tests/CMakeFiles/vela_tests.dir/test_capacity_factor.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_capacity_factor.cpp.o.d"
  "/root/repo/tests/test_checkpoint.cpp" "tests/CMakeFiles/vela_tests.dir/test_checkpoint.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_checkpoint.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/vela_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_comm.cpp" "tests/CMakeFiles/vela_tests.dir/test_comm.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_comm.cpp.o.d"
  "/root/repo/tests/test_comm_clock.cpp" "tests/CMakeFiles/vela_tests.dir/test_comm_clock.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_comm_clock.cpp.o.d"
  "/root/repo/tests/test_corpus.cpp" "tests/CMakeFiles/vela_tests.dir/test_corpus.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_corpus.cpp.o.d"
  "/root/repo/tests/test_ep.cpp" "tests/CMakeFiles/vela_tests.dir/test_ep.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_ep.cpp.o.d"
  "/root/repo/tests/test_ep_runtime.cpp" "tests/CMakeFiles/vela_tests.dir/test_ep_runtime.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_ep_runtime.cpp.o.d"
  "/root/repo/tests/test_equivalence.cpp" "tests/CMakeFiles/vela_tests.dir/test_equivalence.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_equivalence.cpp.o.d"
  "/root/repo/tests/test_exact_placement.cpp" "tests/CMakeFiles/vela_tests.dir/test_exact_placement.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_exact_placement.cpp.o.d"
  "/root/repo/tests/test_fault_injection.cpp" "tests/CMakeFiles/vela_tests.dir/test_fault_injection.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_fault_injection.cpp.o.d"
  "/root/repo/tests/test_gate.cpp" "tests/CMakeFiles/vela_tests.dir/test_gate.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_gate.cpp.o.d"
  "/root/repo/tests/test_generate.cpp" "tests/CMakeFiles/vela_tests.dir/test_generate.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_generate.cpp.o.d"
  "/root/repo/tests/test_integration_workflow.cpp" "tests/CMakeFiles/vela_tests.dir/test_integration_workflow.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_integration_workflow.cpp.o.d"
  "/root/repo/tests/test_load_balance.cpp" "tests/CMakeFiles/vela_tests.dir/test_load_balance.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_load_balance.cpp.o.d"
  "/root/repo/tests/test_locality_aware.cpp" "tests/CMakeFiles/vela_tests.dir/test_locality_aware.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_locality_aware.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/vela_tests.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_model.cpp.o.d"
  "/root/repo/tests/test_moe_block.cpp" "tests/CMakeFiles/vela_tests.dir/test_moe_block.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_moe_block.cpp.o.d"
  "/root/repo/tests/test_nn.cpp" "tests/CMakeFiles/vela_tests.dir/test_nn.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_nn.cpp.o.d"
  "/root/repo/tests/test_optimizer.cpp" "tests/CMakeFiles/vela_tests.dir/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_optimizer.cpp.o.d"
  "/root/repo/tests/test_placement.cpp" "tests/CMakeFiles/vela_tests.dir/test_placement.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_placement.cpp.o.d"
  "/root/repo/tests/test_planting.cpp" "tests/CMakeFiles/vela_tests.dir/test_planting.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_planting.cpp.o.d"
  "/root/repo/tests/test_replanner.cpp" "tests/CMakeFiles/vela_tests.dir/test_replanner.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_replanner.cpp.o.d"
  "/root/repo/tests/test_replication.cpp" "tests/CMakeFiles/vela_tests.dir/test_replication.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_replication.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/vela_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_rounding.cpp" "tests/CMakeFiles/vela_tests.dir/test_rounding.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_rounding.cpp.o.d"
  "/root/repo/tests/test_routing_modes.cpp" "tests/CMakeFiles/vela_tests.dir/test_routing_modes.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_routing_modes.cpp.o.d"
  "/root/repo/tests/test_routing_stats.cpp" "tests/CMakeFiles/vela_tests.dir/test_routing_stats.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_routing_stats.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/vela_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/vela_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_simplex.cpp" "tests/CMakeFiles/vela_tests.dir/test_simplex.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_simplex.cpp.o.d"
  "/root/repo/tests/test_simplex_properties.cpp" "tests/CMakeFiles/vela_tests.dir/test_simplex_properties.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_simplex_properties.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/vela_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_step_simulator.cpp" "tests/CMakeFiles/vela_tests.dir/test_step_simulator.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_step_simulator.cpp.o.d"
  "/root/repo/tests/test_synthetic_router.cpp" "tests/CMakeFiles/vela_tests.dir/test_synthetic_router.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_synthetic_router.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/vela_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_tensor_ops.cpp" "tests/CMakeFiles/vela_tests.dir/test_tensor_ops.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_tensor_ops.cpp.o.d"
  "/root/repo/tests/test_text_and_eval.cpp" "tests/CMakeFiles/vela_tests.dir/test_text_and_eval.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_text_and_eval.cpp.o.d"
  "/root/repo/tests/test_theorem1.cpp" "tests/CMakeFiles/vela_tests.dir/test_theorem1.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_theorem1.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/vela_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_training_features.cpp" "tests/CMakeFiles/vela_tests.dir/test_training_features.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_training_features.cpp.o.d"
  "/root/repo/tests/test_util_io.cpp" "tests/CMakeFiles/vela_tests.dir/test_util_io.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_util_io.cpp.o.d"
  "/root/repo/tests/test_vela_system.cpp" "tests/CMakeFiles/vela_tests.dir/test_vela_system.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_vela_system.cpp.o.d"
  "/root/repo/tests/test_worker.cpp" "tests/CMakeFiles/vela_tests.dir/test_worker.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_worker.cpp.o.d"
  "/root/repo/tests/test_zloss.cpp" "tests/CMakeFiles/vela_tests.dir/test_zloss.cpp.o" "gcc" "tests/CMakeFiles/vela_tests.dir/test_zloss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vela.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
