file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_steptime.dir/bench_fig6_steptime.cpp.o"
  "CMakeFiles/bench_fig6_steptime.dir/bench_fig6_steptime.cpp.o.d"
  "bench_fig6_steptime"
  "bench_fig6_steptime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_steptime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
