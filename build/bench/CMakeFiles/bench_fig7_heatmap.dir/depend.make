# Empty dependencies file for bench_fig7_heatmap.
# This may be replaced when dependencies are built.
