// Ledger-coverage and registry passes (rules: uncharged-send,
// unregistered-env, stale-env-registry, stale-env-docs, stale-golden).
//
// The byte-accounting contract (DESIGN.md §11): ALL traffic accounting
// happens at Message::wire_size() inside comm::Endpoint. Two static checks
// keep every call path honest:
//   1. the Message -> frame handoff (encode_frame) and raw Transport sends
//      may only appear under src/comm — runtimes must go through Endpoint;
//   2. inside src/comm, every function that calls encode_frame must also
//      touch wire_size() (charge or receive-account), or carry an
//      // vela-analyze: allow(uncharged-send) rationale.
//
// The env registry keeps runtime knobs discoverable: every getenv("VELA_*")
// site must be declared in tools/env_registry.conf, every registry entry
// must still have a consumer, and docs/env.md must be byte-identical to the
// table regenerated from scan + registry.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analyze.h"
#include "source_tree.h"

namespace vela::analyze {

struct EnvRegistryEntry {
  std::string name;
  std::string default_value;
  std::string description;
  std::size_t line = 0;  // in the registry file
};

struct EnvRegistry {
  std::vector<EnvRegistryEntry> entries;  // registry order
  std::vector<std::string> errors;
};

// Parses tools/env_registry.conf: `NAME|default|description` lines, '#'
// comments. A missing file parses as empty (every consumer unregistered).
EnvRegistry parse_env_registry(const std::string& text,
                               const std::string& path);

struct EnvSite {
  std::string file;
  std::size_t line = 0;
};

// All getenv("VELA_*") sites in the tree, var name -> sorted sites.
std::map<std::string, std::vector<EnvSite>> scan_env_sites(
    const SourceTree& tree);

void run_ledger_pass(const SourceTree& tree, std::vector<Finding>* findings);

// Env passes; also renders the canonical docs/env.md content into
// *env_docs and compares it against current_docs (stale-env-docs).
void run_env_passes(const SourceTree& tree, const EnvRegistry& registry,
                    const std::string& registry_rel_path,
                    const std::string& current_docs,
                    const std::string& docs_rel_path, std::string* env_docs,
                    std::vector<Finding>* findings);

// stale-golden: every tests/golden/*.csv must be named by a file under
// tests/.
void run_golden_pass(const SourceTree& tree, std::vector<Finding>* findings);

}  // namespace vela::analyze
