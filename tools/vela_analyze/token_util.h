// Token-stream structure helpers shared by the analyzer passes: brace
// matching, scope classification (namespace/class body vs function body),
// and enclosing-function lookup. Operates on the vela_lint token stream.
#pragma once

#include <cstddef>
#include <vector>

#include "lexer.h"

namespace vela::analyze {

using vela::lint::Token;
using vela::lint::TokenKind;

// Index of the '}' matching the '{' at open_idx, or tokens.size() if
// unbalanced (malformed input lexes to end-of-file).
std::size_t match_brace(const std::vector<Token>& tokens, std::size_t open_idx);

// Index of the ')' matching the '(' at open_idx, or tokens.size().
std::size_t match_paren(const std::vector<Token>& tokens, std::size_t open_idx);

// True when the '{' at open_idx opens a namespace/class/struct/enum/union
// body (walk back past the scope head; stop at ; } { or ')').
bool is_type_scope_open(const std::vector<Token>& tokens, std::size_t open_idx);

// [open_idx, close_idx] of the outermost enclosing brace block around token
// `at` that is NOT a type scope — i.e. the enclosing function (or lambda /
// initializer) body. Returns {npos, npos} when `at` is at namespace scope.
struct Extent {
  std::size_t open = static_cast<std::size_t>(-1);
  std::size_t close = static_cast<std::size_t>(-1);
  [[nodiscard]] bool valid() const {
    return open != static_cast<std::size_t>(-1);
  }
};
Extent enclosing_function(const std::vector<Token>& tokens, std::size_t at);

}  // namespace vela::analyze
