// vela_analyze — whole-program architecture & protocol conformance checks
// for the VELA tree (see analyze.h for the pass list).
//
// Usage:
//   vela_analyze [--root <dir>] [--json <report.json>] [--list-rules]
//                [--layers <path>] [--env-registry <path>]
//                [--env-docs <path>] [--write-env-docs]
//
// Paths default to tools/layers.conf, tools/env_registry.conf and
// docs/env.md under the root. Exit status mirrors vela_lint: 0 when every
// finding is suppressed, 1 on unsuppressed findings, 2 on usage/config/IO
// errors. --write-env-docs regenerates docs/env.md from the scan and exits.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "analyze.h"

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  vela::analyze::Options opts;
  std::string json_path;
  bool write_env_docs = false;

  auto need_value = [&](int& i, const std::string& flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "vela_analyze: " << flag << " needs a value\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& r : vela::analyze::all_rules())
        std::cout << r << "\n";
      return 0;
    } else if (arg == "--root") {
      opts.root = need_value(i, arg);
    } else if (arg == "--json") {
      json_path = need_value(i, arg);
    } else if (arg == "--layers") {
      opts.layers_path = need_value(i, arg);
    } else if (arg == "--env-registry") {
      opts.env_registry_path = need_value(i, arg);
    } else if (arg == "--env-docs") {
      opts.env_docs_path = need_value(i, arg);
    } else if (arg == "--write-env-docs") {
      write_env_docs = true;
    } else {
      std::cerr << "usage: vela_analyze [--root dir] [--json report.json] "
                   "[--list-rules] [--layers p] [--env-registry p] "
                   "[--env-docs p] [--write-env-docs]\n";
      return 2;
    }
  }

  vela::analyze::Report report = vela::analyze::run(opts);
  for (const std::string& e : report.errors)
    std::cerr << "vela_analyze: error: " << e << "\n";
  if (!report.errors.empty()) return 2;

  if (write_env_docs) {
    namespace fs = std::filesystem;
    fs::path docs = fs::path(opts.env_docs_path);
    if (!docs.is_absolute()) docs = fs::path(opts.root) / docs;
    std::error_code ec;
    fs::create_directories(docs.parent_path(), ec);
    std::ofstream out(docs, std::ios::binary);
    if (!out) {
      std::cerr << "vela_analyze: cannot write " << docs.generic_string()
                << "\n";
      return 2;
    }
    out << report.env_docs;
    std::cerr << "vela_analyze: wrote " << docs.generic_string() << "\n";
    return 0;
  }

  std::size_t unsuppressed = 0;
  std::size_t suppressed = 0;
  for (const vela::analyze::Finding& f : report.findings) {
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    ++unsuppressed;
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "vela_analyze: cannot write " << json_path << "\n";
      return 2;
    }
    out << "{\n  \"files_scanned\": " << report.files_scanned
        << ",\n  \"unsuppressed\": " << unsuppressed
        << ",\n  \"suppressed\": " << suppressed << ",\n  \"findings\": [\n";
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
      const vela::analyze::Finding& f = report.findings[i];
      out << "    {\"file\": \"" << json_escape(f.file)
          << "\", \"line\": " << f.line << ", \"rule\": \"" << f.rule
          << "\", \"suppressed\": " << (f.suppressed ? "true" : "false")
          << ", \"message\": \"" << json_escape(f.message) << "\"}"
          << (i + 1 < report.findings.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

  std::cerr << "vela_analyze: " << report.files_scanned << " files, "
            << unsuppressed << " unsuppressed finding(s), " << suppressed
            << " suppressed\n";
  return unsuppressed == 0 ? 0 : 1;
}
