// Self-test for vela_analyze: every rule is exercised against a seeded
// fixture tree under fixtures/ (one mini-repo per pass family), and the
// clean/ fixture pins the zero-findings contract the full-tree gate relies
// on. Fixture layout:
//
//   clean/   fully conformant tree — every pass runs, nothing fires
//   cycle/   a 2-cycle (a <-> b) and a 3-cycle (p -> q -> r -> p)
//   arch/    layer-violation, unknown-layer, restricted-include (+ allows)
//   proto/   partial switches / else-if chains, record kinds, codec drift
//   ledger/  uncharged sends, env registry drift, stale docs, stale golden

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze.h"

namespace vela::analyze {
namespace {

Report run_fixture(const std::string& name) {
  Options opts;
  opts.root = std::string(VELA_ANALYZE_FIXTURE_DIR) + "/" + name;
  Report report = run(opts);
  EXPECT_TRUE(report.errors.empty())
      << "fixture " << name << " error: "
      << (report.errors.empty() ? "" : report.errors.front());
  return report;
}

std::vector<Finding> with_rule(const Report& report, const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : report.findings)
    if (f.rule == rule) out.push_back(f);
  return out;
}

const Finding* find_at(const Report& report, const std::string& rule,
                       const std::string& file) {
  for (const Finding& f : report.findings)
    if (f.rule == rule && f.file == file) return &f;
  return nullptr;
}

TEST(VelaAnalyzeRules, AllRulesListedAndStable) {
  const std::vector<std::string>& rules = all_rules();
  ASSERT_EQ(rules.size(), 11u);
  const std::vector<std::string> expected = {
      "include-cycle",      "layer-violation", "unknown-layer",
      "restricted-include", "partial-dispatch", "codec-key-mismatch",
      "uncharged-send",     "unregistered-env", "stale-env-registry",
      "stale-env-docs",     "stale-golden"};
  EXPECT_EQ(rules, expected);
}

// ---------------------------------------------------------------- clean --

TEST(VelaAnalyzeClean, ConformantTreeHasNoFindings) {
  Report report = run_fixture("clean");
  EXPECT_EQ(report.findings.size(), 0u)
      << (report.findings.empty()
              ? ""
              : report.findings.front().rule + " at " +
                    report.findings.front().file);
  EXPECT_EQ(report.unsuppressed(), 0u);
  EXPECT_GE(report.files_scanned, 3u);
}

TEST(VelaAnalyzeClean, EnvDocsRoundTripByteIdentical) {
  // clean/docs/env.md was written by --write-env-docs; re-running the
  // analysis must regenerate the identical bytes (no stale-env-docs).
  Report report = run_fixture("clean");
  EXPECT_TRUE(with_rule(report, "stale-env-docs").empty());
  EXPECT_NE(report.env_docs.find("| `VELA_CLEAN` | `0` |"),
            std::string::npos);
  EXPECT_NE(report.env_docs.find("`src/comm/endpoint.cpp`"),
            std::string::npos);
}

TEST(VelaAnalyzeClean, MissingLayersConfIsAnErrorNotAFinding) {
  Options opts;
  opts.root = std::string(VELA_ANALYZE_FIXTURE_DIR) + "/clean";
  opts.layers_path = "tools/no_such_layers.conf";
  Report report = run(opts);
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors.front().find("no_such_layers.conf"),
            std::string::npos);
}

// ---------------------------------------------------------------- cycle --

TEST(VelaAnalyzeCycles, ReportedOncePerComponentWithMembership) {
  Report report = run_fixture("cycle");
  std::vector<Finding> cycles = with_rule(report, "include-cycle");
  ASSERT_EQ(cycles.size(), 2u);  // one per SCC, not one per member

  const Finding* two = find_at(report, "include-cycle", "src/a/x.h");
  ASSERT_NE(two, nullptr);
  EXPECT_NE(two->message.find("2 files"), std::string::npos);
  EXPECT_NE(two->message.find("src/a/x.h"), std::string::npos);
  EXPECT_NE(two->message.find("src/b/y.h"), std::string::npos);
  EXPECT_EQ(two->line, 2u);  // anchored at the include edge, not line 0

  const Finding* three = find_at(report, "include-cycle", "src/c/p.h");
  ASSERT_NE(three, nullptr);
  EXPECT_NE(three->message.find("3 files"), std::string::npos);
  EXPECT_NE(three->message.find("src/c/q.h"), std::string::npos);
  EXPECT_NE(three->message.find("src/c/r.h"), std::string::npos);
}

// ----------------------------------------------------------------- arch --

TEST(VelaAnalyzeLayers, UndeclaredEdgeIsAViolationWithFileAndLine) {
  Report report = run_fixture("arch");
  const Finding* f = find_at(report, "layer-violation", "src/util/bad.h");
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->suppressed);
  EXPECT_EQ(f->line, 2u);
  EXPECT_NE(f->message.find("src/util"), std::string::npos);
  EXPECT_NE(f->message.find("src/core/top.h"), std::string::npos);
}

TEST(VelaAnalyzeLayers, AllowCommentSuppressesLayerViolation) {
  Report report = run_fixture("arch");
  const Finding* f =
      find_at(report, "layer-violation", "src/util/bad_allowed.h");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->suppressed);
}

TEST(VelaAnalyzeLayers, UndeclaredDirectoryIsUnknownLayer) {
  Report report = run_fixture("arch");
  std::vector<Finding> unknown = with_rule(report, "unknown-layer");
  ASSERT_EQ(unknown.size(), 1u);  // once per directory, not per file
  EXPECT_EQ(unknown[0].file, "src/rogue/r.h");
  EXPECT_NE(unknown[0].message.find("src/rogue"), std::string::npos);
}

TEST(VelaAnalyzeLayers, SocketIncludeOutsideCommIsRestricted) {
  Report report = run_fixture("arch");
  const Finding* bad =
      find_at(report, "restricted-include", "src/core/net.cpp");
  ASSERT_NE(bad, nullptr);
  EXPECT_FALSE(bad->suppressed);
  EXPECT_EQ(bad->line, 1u);
  EXPECT_NE(bad->message.find("sys/socket.h"), std::string::npos);

  const Finding* allowed =
      find_at(report, "restricted-include", "src/core/net_allowed.cpp");
  ASSERT_NE(allowed, nullptr);
  EXPECT_TRUE(allowed->suppressed);

  // comm itself may speak sockets.
  EXPECT_EQ(find_at(report, "restricted-include", "src/comm/sock.cpp"),
            nullptr);
}

// ---------------------------------------------------------------- proto --

TEST(VelaAnalyzeDispatch, PartialSwitchNamesTheMissingVariant) {
  Report report = run_fixture("proto");
  const Finding* f =
      find_at(report, "partial-dispatch", "src/core/dispatch.cpp");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->line, 4u);
  EXPECT_NE(f->message.find("2/3"), std::string::npos);
  EXPECT_NE(f->message.find("kGamma"), std::string::npos);
}

TEST(VelaAnalyzeDispatch, DefaultArmDoesNotCountAsHandling) {
  // The line-4 switch covers kAlpha/kBeta plus `default:`; it still fires.
  // The line-15 switch names all three variants and must not.
  Report report = run_fixture("proto");
  std::vector<Finding> partial = with_rule(report, "partial-dispatch");
  bool fired_line4 = false;
  for (const Finding& f : partial) {
    EXPECT_NE(f.line, 15u) << "exhaustive switch flagged";
    if (f.line == 4u) fired_line4 = true;
  }
  EXPECT_TRUE(fired_line4);
}

TEST(VelaAnalyzeDispatch, ElseIfChainIsCheckedToo) {
  Report report = run_fixture("proto");
  std::vector<Finding> partial = with_rule(report, "partial-dispatch");
  auto it = std::find_if(partial.begin(), partial.end(),
                         [](const Finding& f) { return f.line == 27u; });
  ASSERT_NE(it, partial.end());
  EXPECT_NE(it->message.find("else-if chain"), std::string::npos);
  EXPECT_NE(it->message.find("kGamma"), std::string::npos);
}

TEST(VelaAnalyzeDispatch, AllowCommentAboveSwitchSuppresses) {
  Report report = run_fixture("proto");
  std::vector<Finding> partial = with_rule(report, "partial-dispatch");
  auto it = std::find_if(partial.begin(), partial.end(),
                         [](const Finding& f) { return f.suppressed; });
  ASSERT_NE(it, partial.end());
  EXPECT_EQ(it->line, 39u);  // suppressed_partial's switch
}

TEST(VelaAnalyzeDispatch, RecordKindSwitchesAreCovered) {
  Report report = run_fixture("proto");
  std::vector<Finding> partial = with_rule(report, "partial-dispatch");
  auto it = std::find_if(partial.begin(), partial.end(), [](const Finding& f) {
    return f.message.find("kRecTwo") != std::string::npos;
  });
  ASSERT_NE(it, partial.end());
  EXPECT_NE(it->message.find("record kind"), std::string::npos);
}

TEST(VelaAnalyzeCodec, MismatchReportedInBothDirections) {
  Report report = run_fixture("proto");
  std::vector<Finding> codec = with_rule(report, "codec-key-mismatch");
  ASSERT_EQ(codec.size(), 2u);
  bool emitted_not_parsed = false, parsed_not_emitted = false;
  for (const Finding& f : codec) {
    EXPECT_EQ(f.file, "src/core/codec.cpp");
    if (f.message.find("'beta'") != std::string::npos)
      emitted_not_parsed = true;
    if (f.message.find("'gamma'") != std::string::npos)
      parsed_not_emitted = true;
  }
  EXPECT_TRUE(emitted_not_parsed);
  EXPECT_TRUE(parsed_not_emitted);
}

// --------------------------------------------------------------- ledger --

TEST(VelaAnalyzeLedger, UnchargedFrameInsideCommIsFlagged) {
  Report report = run_fixture("ledger");
  std::vector<Finding> sends = with_rule(report, "uncharged-send");
  // offer_bad (endpoint.cpp:12) fires; send_ok (charges wire_size) and
  // offer_allowed (suppressed) do not fire unsuppressed.
  auto it = std::find_if(sends.begin(), sends.end(), [](const Finding& f) {
    return f.file == "src/comm/endpoint.cpp" && !f.suppressed;
  });
  ASSERT_NE(it, sends.end());
  EXPECT_EQ(it->line, 12u);
  EXPECT_NE(it->message.find("wire_size"), std::string::npos);
}

TEST(VelaAnalyzeLedger, ChargedAndAllowedCommSendsAreClean) {
  Report report = run_fixture("ledger");
  for (const Finding& f : with_rule(report, "uncharged-send")) {
    if (f.file != "src/comm/endpoint.cpp") continue;
    EXPECT_NE(f.line, 8u) << "send_ok charges wire_size and must not fire";
    if (f.line == 17u) {
      EXPECT_TRUE(f.suppressed);
    }
  }
}

TEST(VelaAnalyzeLedger, FramingOutsideCommIsFlaggedBothWays) {
  Report report = run_fixture("ledger");
  std::vector<Finding> sends = with_rule(report, "uncharged-send");
  bool frame = false, raw_send = false;
  for (const Finding& f : sends) {
    if (f.file != "src/core/master.cpp" || f.suppressed) continue;
    if (f.line == 10u) frame = true;      // encode_frame outside comm
    if (f.line == 11u) raw_send = true;   // transport->send outside comm
  }
  EXPECT_TRUE(frame);
  EXPECT_TRUE(raw_send);
  // rogue_allowed carries allow() on both lines.
  int suppressed = 0;
  for (const Finding& f : sends)
    if (f.file == "src/core/master.cpp" && f.suppressed) ++suppressed;
  EXPECT_EQ(suppressed, 2);
}

TEST(VelaAnalyzeEnv, UnregisteredVarNamedWithRegistryHint) {
  Report report = run_fixture("ledger");
  std::vector<Finding> env = with_rule(report, "unregistered-env");
  ASSERT_EQ(env.size(), 1u);
  EXPECT_EQ(env[0].file, "src/core/master.cpp");
  EXPECT_NE(env[0].message.find("VELA_MYSTERY"), std::string::npos);
  EXPECT_NE(env[0].message.find("env_registry.conf"), std::string::npos);
  // VELA_KNOWN is registered and consumed — no finding anywhere names it.
  for (const Finding& f : report.findings)
    EXPECT_EQ(f.message.find("VELA_KNOWN"), std::string::npos);
}

TEST(VelaAnalyzeEnv, OrphanRegistryEntryIsStale) {
  Report report = run_fixture("ledger");
  std::vector<Finding> stale = with_rule(report, "stale-env-registry");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].file, "tools/env_registry.conf");
  EXPECT_EQ(stale[0].line, 3u);
  EXPECT_NE(stale[0].message.find("VELA_GONE"), std::string::npos);
  EXPECT_FALSE(stale[0].suppressed);  // stale-* findings are unsuppressible
}

TEST(VelaAnalyzeEnv, HandEditedDocsAreStale) {
  Report report = run_fixture("ledger");
  std::vector<Finding> stale = with_rule(report, "stale-env-docs");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].file, "docs/env.md");
  EXPECT_NE(stale[0].message.find("--write-env-docs"), std::string::npos);
  // The regenerated table carries the registered var with its consumer.
  EXPECT_NE(report.env_docs.find("| `VELA_KNOWN` | `0` |"),
            std::string::npos);
}

TEST(VelaAnalyzeGolden, UnreferencedGoldenCsvIsStale) {
  Report report = run_fixture("ledger");
  std::vector<Finding> stale = with_rule(report, "stale-golden");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].file, "tests/golden/stale.csv");
  // referenced.csv is named by tests/test_ref.cpp and must not fire.
  EXPECT_EQ(find_at(report, "stale-golden", "tests/golden/referenced.csv"),
            nullptr);
}

TEST(VelaAnalyzeReport, FindingsSortedByFileLineRule) {
  Report report = run_fixture("ledger");
  ASSERT_GE(report.findings.size(), 2u);
  for (std::size_t i = 1; i < report.findings.size(); ++i) {
    const Finding& a = report.findings[i - 1];
    const Finding& b = report.findings[i];
    EXPECT_LE(std::tie(a.file, a.line, a.rule), std::tie(b.file, b.line, b.rule));
  }
}

}  // namespace
}  // namespace vela::analyze
