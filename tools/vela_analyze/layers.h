// Include-graph layering checker (rules: include-cycle, layer-violation,
// unknown-layer, restricted-include).
//
// tools/layers.conf is the checked-in architecture:
//
//   layer core: comm model moe ...     # src/core may include these layers
//   restrict-include sys/socket.h: comm  # only src/comm may include this
//
// Quoted includes are resolved against src/ (the repo convention) and the
// including file's own directory; edges that resolve to a scanned file form
// the file-level include graph. The graph must be a DAG (Tarjan SCC), and
// every cross-layer edge must be declared.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze.h"
#include "source_tree.h"

namespace vela::analyze {

struct LayerConfig {
  // layer name -> layers it may include (itself always allowed).
  std::map<std::string, std::set<std::string>> allowed;
  // include-path substring -> layers allowed to include it.
  std::vector<std::pair<std::string, std::set<std::string>>> restricted;
  std::vector<std::string> errors;
};

LayerConfig parse_layer_config(const std::string& text,
                               const std::string& path);

void run_layer_passes(const SourceTree& tree, const LayerConfig& config,
                      std::vector<Finding>* findings);

}  // namespace vela::analyze
