#pragma once

enum class MessageType : int {
  kAlpha,
  kBeta,
  kGamma,
};

enum : unsigned char {
  kRecOne = 1,
  kRecTwo = 2,
};

struct Message {
  MessageType type;
  unsigned char rec;
};
