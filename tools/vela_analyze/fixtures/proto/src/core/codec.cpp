#include <string>

struct Scenario {
  std::string alpha;
  std::string beta;
  std::string serialize() const;
  static Scenario parse(const std::string& text);
};

std::string Scenario::serialize() const {
  return std::string("alpha=") + alpha + ";beta=" + beta;
}

Scenario Scenario::parse(const std::string& text) {
  Scenario sc;
  std::string key = text.substr(0, text.find('='));
  std::string value = text.substr(text.find('=') + 1);
  if (key == "alpha") {
    sc.alpha = value;
  }
  if (key == "gamma") {
    sc.beta = value;
  }
  return sc;
}
