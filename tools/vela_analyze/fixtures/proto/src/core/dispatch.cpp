#include "comm/message.h"

int partial_switch(const Message& msg) {
  switch (msg.type) {
    case MessageType::kAlpha:
      return 1;
    case MessageType::kBeta:
      return 2;
    default:
      return 0;
  }
}

int exhaustive_switch(const Message& msg) {
  switch (msg.type) {
    case MessageType::kAlpha:
      return 1;
    case MessageType::kBeta:
      return 2;
    case MessageType::kGamma:
      return 3;
  }
  return 0;
}

int partial_chain(const Message& msg) {
  if (msg.type == MessageType::kAlpha) {
    return 1;
  } else if (msg.type == MessageType::kBeta) {
    return 2;
  } else {
    return 0;
  }
}

int suppressed_partial(const Message& msg) {
  // kGamma is a master-only message; this helper runs worker-side.
  // vela-analyze: allow(partial-dispatch)
  switch (msg.type) {
    case MessageType::kAlpha:
      return 1;
    case MessageType::kBeta:
      return 2;
    default:
      return 0;
  }
}

int partial_record_switch(const Message& msg) {
  switch (msg.rec) {
    case kRecOne:
      return 1;
    default:
      return 0;
  }
}
