// Reads tests/golden/referenced.csv and compares row-by-row.
int main() { return 0; }
