#include "comm/frame.h"

extern void account(std::uint64_t bytes);
extern void push(const std::vector<std::uint8_t>& frame);

void send_ok(const Message& msg) {
  account(msg.wire_size());
  push(encode_frame(msg));
}

void offer_bad(const Message& msg) {
  push(encode_frame(msg));
}

void offer_allowed(const Message& msg) {
  // The caller already charged wire_size() before handing the Message over.
  push(encode_frame(msg));  // vela-analyze: allow(uncharged-send)
}
