#pragma once

#include <cstdint>
#include <vector>

struct Message {
  int type = 0;
  std::uint64_t wire_size() const;
};

std::vector<std::uint8_t> encode_frame(const Message& msg);
