#include <cstdlib>

#include "comm/frame.h"

struct Transport {
  void send(const std::vector<std::uint8_t>& frame);
};

void rogue_frame(const Message& msg, Transport* transport) {
  std::vector<std::uint8_t> frame = encode_frame(msg);
  transport->send(frame);
}

void rogue_allowed(const Message& msg, Transport* transport) {
  // Bootstrap path: the Endpoint does not exist yet at this point.
  // vela-analyze: allow(uncharged-send)
  std::vector<std::uint8_t> frame = encode_frame(msg);
  transport->send(frame);  // vela-analyze: allow(uncharged-send)
}

const char* read_knobs() {
  const char* known = std::getenv("VELA_KNOWN");
  const char* mystery = std::getenv("VELA_MYSTERY");
  return mystery != nullptr ? mystery : known;
}
