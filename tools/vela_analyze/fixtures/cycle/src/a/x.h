#pragma once
#include "b/y.h"
struct X { Y y; };
