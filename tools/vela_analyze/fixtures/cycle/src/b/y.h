#pragma once
#include "a/x.h"
struct Y { int v; };
