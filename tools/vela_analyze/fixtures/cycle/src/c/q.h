#pragma once
#include "c/r.h"
