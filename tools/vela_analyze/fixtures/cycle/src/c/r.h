#pragma once
#include "c/p.h"
