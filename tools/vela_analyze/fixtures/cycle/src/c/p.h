#pragma once
#include "c/q.h"
