#include <cstdint>
#include <cstdlib>
#include <vector>

#include "util/ok.h"

struct Message {
  int type = 0;
  std::uint64_t wire_size() const { return 4; }
};

std::vector<std::uint8_t> encode_frame(const Message& msg);

extern void account(std::uint64_t bytes);
extern void push(const std::vector<std::uint8_t>& frame);

void send_ok(const Message& msg) {
  account(msg.wire_size());
  push(encode_frame(msg));
}

int threads() {
  const char* env = std::getenv("VELA_CLEAN");
  return env != nullptr ? 1 : forty_two();
}
