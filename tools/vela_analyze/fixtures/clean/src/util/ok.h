#pragma once

inline int forty_two() { return 42; }
