// Regression test over tests/golden/referenced.csv.
int main() { return 0; }
