#include <sys/socket.h>
int comm_socket() { return socket(0, 0, 0); }
