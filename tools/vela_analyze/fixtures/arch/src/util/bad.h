#pragma once
#include "core/top.h"
