#pragma once
inline int ok() { return 1; }
