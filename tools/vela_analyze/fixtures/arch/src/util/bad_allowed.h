#pragma once
// transitional edge, tracked in the migration issue
#include "core/top.h"  // vela-analyze: allow(layer-violation)
