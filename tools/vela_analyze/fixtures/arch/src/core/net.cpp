#include <sys/socket.h>
int core_socket() { return socket(0, 0, 0); }
