// legacy probe path, scheduled for the comm fabric
#include <sys/socket.h>  // vela-analyze: allow(restricted-include)
int legacy_socket() { return socket(0, 0, 0); }
