#pragma once
#include "util/ok.h"
