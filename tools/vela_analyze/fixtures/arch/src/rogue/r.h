#pragma once
inline int rogue() { return 0; }
