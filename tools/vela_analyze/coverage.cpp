#include "coverage.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <set>
#include <sstream>

#include "token_util.h"

namespace vela::analyze {
namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}
bool is_ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

void emit(std::vector<Finding>* findings, const std::string& file,
          std::size_t line, const std::string& rule,
          const std::string& message, bool suppressed) {
  Finding f;
  f.rule = rule;
  f.file = file;
  f.line = line;
  f.message = message;
  f.suppressed = suppressed;
  findings->push_back(std::move(f));
}

// The identifier a member call is invoked on: for `a->send(`, `a.send(`,
// `a()->send(` (walking back over one call's parens), the index of `a`,
// or npos.
std::size_t receiver_of_call(const std::vector<Token>& toks,
                             std::size_t send_idx) {
  if (send_idx < 2) return static_cast<std::size_t>(-1);
  std::size_t arrow = send_idx - 1;
  if (!is_punct(toks[arrow], "->") && !is_punct(toks[arrow], "."))
    return static_cast<std::size_t>(-1);
  std::size_t j = arrow - 1;
  if (is_punct(toks[j], ")")) {
    int depth = 0;
    for (;; --j) {
      if (is_punct(toks[j], ")")) ++depth;
      if (is_punct(toks[j], "(") && --depth == 0) break;
      if (j == 0) return static_cast<std::size_t>(-1);
    }
    if (j == 0) return static_cast<std::size_t>(-1);
    --j;
  }
  if (toks[j].kind == TokenKind::kIdentifier) return j;
  return static_cast<std::size_t>(-1);
}

bool contains_insensitive(const std::string& haystack, const char* needle) {
  std::string lower;
  lower.reserve(haystack.size());
  for (char c : haystack)
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return lower.find(needle) != std::string::npos;
}

}  // namespace

void run_ledger_pass(const SourceTree& tree, std::vector<Finding>* findings) {
  for (const SourceFile& f : tree.files) {
    if (is_test_file(f.rel)) continue;
    const bool in_comm = f.rel.rfind("src/comm/", 0) == 0;
    const std::vector<Token>& toks = f.lexed.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      // encode_frame(...) — THE Message -> wire handoff.
      if (is_ident(toks[i], "encode_frame") && is_punct(toks[i + 1], "(")) {
        if (!in_comm) {
          emit(findings, f.rel, toks[i].line, "uncharged-send",
               "encode_frame() frames a Message outside src/comm; runtimes "
               "must hand Messages to comm::Endpoint so the byte ledger "
               "charges wire_size() exactly once",
               suppressed_at(f, toks[i].line, "uncharged-send"));
          continue;
        }
        Extent fn = enclosing_function(toks, i);
        // No enclosing function body: this is the declaration or the
        // definition's own signature, not a call site.
        if (!fn.valid()) continue;
        bool charged = false;
        for (std::size_t j = fn.open; j < fn.close && j < toks.size(); ++j) {
          if (is_ident(toks[j], "wire_size")) {
            charged = true;
            break;
          }
        }
        if (!charged) {
          emit(findings, f.rel, toks[i].line, "uncharged-send",
               "this function frames a Message (encode_frame) but never "
               "touches Message::wire_size(); charge the ledger in the same "
               "function or carry // vela-analyze: allow(uncharged-send) "
               "with a rationale",
               suppressed_at(f, toks[i].line, "uncharged-send"));
        }
        continue;
      }
      // <transport-ish>->send(...) outside src/comm: a raw frame pipe used
      // behind the Endpoint's back.
      if (!in_comm && is_ident(toks[i], "send") &&
          is_punct(toks[i + 1], "(")) {
        std::size_t recv = receiver_of_call(toks, i);
        if (recv != static_cast<std::size_t>(-1) &&
            contains_insensitive(toks[recv].text, "transport")) {
          emit(findings, f.rel, toks[i].line, "uncharged-send",
               "raw Transport::send() outside src/comm bypasses the "
               "Endpoint's wire_size() accounting; send Messages through "
               "comm::Endpoint instead",
               suppressed_at(f, toks[i].line, "uncharged-send"));
        }
      }
    }
  }
}

EnvRegistry parse_env_registry(const std::string& text,
                               const std::string& path) {
  EnvRegistry reg;
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = raw;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
      line.pop_back();
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::size_t p1 = line.find('|');
    std::size_t p2 = p1 == std::string::npos ? p1 : line.find('|', p1 + 1);
    if (p2 == std::string::npos) {
      reg.errors.push_back(path + ":" + std::to_string(lineno) +
                           ": expected 'NAME|default|description'");
      continue;
    }
    EnvRegistryEntry e;
    e.name = line.substr(first, p1 - first);
    e.default_value = line.substr(p1 + 1, p2 - p1 - 1);
    e.description = line.substr(p2 + 1);
    e.line = lineno;
    reg.entries.push_back(std::move(e));
  }
  return reg;
}

std::map<std::string, std::vector<EnvSite>> scan_env_sites(
    const SourceTree& tree) {
  std::map<std::string, std::vector<EnvSite>> sites;
  const std::string needle = "getenv";
  for (const SourceFile& f : tree.files) {
    for (std::size_t n = 0; n < f.lines.size(); ++n) {
      const std::string& line = f.lines[n];
      std::size_t pos = 0;
      while ((pos = line.find(needle, pos)) != std::string::npos) {
        std::size_t at = pos;
        pos += needle.size();
        // Reject my_getenv / getenv_foo.
        if (at > 0 && (std::isalnum(static_cast<unsigned char>(
                           line[at - 1])) ||
                       line[at - 1] == '_'))
          continue;
        std::size_t i = pos;
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
          ++i;
        if (i >= line.size() || line[i] != '(') continue;
        ++i;
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
          ++i;
        if (i >= line.size() || line[i] != '"') continue;
        std::size_t start = ++i;
        while (i < line.size() && (std::isalnum(static_cast<unsigned char>(
                                       line[i])) ||
                                   line[i] == '_'))
          ++i;
        if (i >= line.size() || line[i] != '"') continue;
        std::string var = line.substr(start, i - start);
        if (var.rfind("VELA_", 0) != 0) continue;
        sites[var].push_back({f.rel, n + 1});
      }
    }
  }
  return sites;
}

void run_env_passes(const SourceTree& tree, const EnvRegistry& registry,
                    const std::string& registry_rel_path,
                    const std::string& current_docs,
                    const std::string& docs_rel_path, std::string* env_docs,
                    std::vector<Finding>* findings) {
  std::map<std::string, std::vector<EnvSite>> sites = scan_env_sites(tree);
  std::set<std::string> registered;
  for (const EnvRegistryEntry& e : registry.entries) registered.insert(e.name);

  for (const auto& [var, var_sites] : sites) {
    if (registered.count(var)) continue;
    for (const EnvSite& s : var_sites) {
      const SourceFile* file = tree.find(s.file);
      bool sup =
          file != nullptr && suppressed_at(*file, s.line, "unregistered-env");
      emit(findings, s.file, s.line, "unregistered-env",
           "getenv(\"" + var + "\") is not declared in " + registry_rel_path +
               "; add a 'NAME|default|description' line and regenerate "
               "docs/env.md (vela_analyze --write-env-docs)",
           sup);
    }
  }

  for (const EnvRegistryEntry& e : registry.entries) {
    if (sites.count(e.name)) continue;
    emit(findings, registry_rel_path, e.line, "stale-env-registry",
         "registry entry " + e.name +
             " has no getenv consumer left in the tree; delete the entry "
             "and regenerate docs/env.md",
         false);
  }

  // Canonical docs table: registry order is sorted by name so the output is
  // stable; consumers are sorted unique file paths (no line numbers — they
  // would churn on every unrelated edit).
  std::vector<EnvRegistryEntry> rows = registry.entries;
  std::sort(rows.begin(), rows.end(),
            [](const EnvRegistryEntry& a, const EnvRegistryEntry& b) {
              return a.name < b.name;
            });
  std::ostringstream out;
  out << "# VELA environment variables\n\n";
  out << "<!-- Generated by `vela_analyze --write-env-docs` from "
         "tools/env_registry.conf\n"
         "     plus the tree-wide getenv scan. Do not edit by hand: "
         "`ctest -L analyze`\n"
         "     fails (stale-env-docs) when this table drifts from the "
         "code. -->\n\n";
  out << "| Variable | Default | Consumers | Description |\n";
  out << "|---|---|---|---|\n";
  for (const EnvRegistryEntry& e : rows) {
    std::set<std::string> consumers;
    auto it = sites.find(e.name);
    if (it != sites.end())
      for (const EnvSite& s : it->second) consumers.insert(s.file);
    std::string consumer_cell;
    for (const std::string& c : consumers)
      consumer_cell += (consumer_cell.empty() ? "`" : ", `") + c + "`";
    if (consumer_cell.empty()) consumer_cell = "—";
    out << "| `" << e.name << "` | `" << e.default_value << "` | "
        << consumer_cell << " | " << e.description << " |\n";
  }
  *env_docs = out.str();

  if (current_docs != *env_docs) {
    emit(findings, docs_rel_path, 0, "stale-env-docs",
         docs_rel_path +
             " does not match the regenerated table; run vela_analyze "
             "--write-env-docs and commit the result",
         false);
  }
}

void run_golden_pass(const SourceTree& tree, std::vector<Finding>* findings) {
  namespace fs = std::filesystem;
  fs::path golden_dir = fs::path(tree.root) / "tests" / "golden";
  std::error_code ec;
  if (!fs::is_directory(golden_dir, ec)) return;
  std::vector<std::string> goldens;
  for (const auto& entry : fs::directory_iterator(golden_dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv")
      goldens.push_back(entry.path().filename().string());
  }
  std::sort(goldens.begin(), goldens.end());
  for (const std::string& name : goldens) {
    bool referenced = false;
    for (const SourceFile& f : tree.files) {
      if (!f.in_tests()) continue;
      if (f.text.find(name) != std::string::npos) {
        referenced = true;
        break;
      }
    }
    if (!referenced) {
      emit(findings, "tests/golden/" + name, 0, "stale-golden",
           "golden file tests/golden/" + name +
               " is not referenced by any file under tests/; delete it or "
               "add the regression test that reads it",
           false);
    }
  }
}

}  // namespace vela::analyze
