// Source-tree model for vela_analyze.
//
// The analyzer works at two altitudes at once: the vela_lint token stream
// (reused via vela_lint_core) for anything structural — enum bodies, switch
// statements, function extents — and the raw source lines for everything the
// lint lexer deliberately drops: `#include` paths, string-literal contents
// (scenario codec keys, getenv names), and `vela-analyze: allow(...)`
// suppression comments.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace vela::analyze {

struct IncludeEdge {
  std::string path;  // as written between the delimiters
  std::size_t line = 0;
  bool system = false;  // <...> vs "..."
};

struct SourceFile {
  std::string rel;   // root-relative, forward slashes
  std::string text;  // raw bytes
  std::vector<std::string> lines;  // lines[0] is line 1
  std::vector<IncludeEdge> includes;
  vela::lint::LexResult lexed;
  // line -> rules allowed on that line via `vela-analyze: allow(...)`.
  std::map<std::size_t, std::set<std::string>> allowances;
  // First path component under src/ ("comm", "util", ...), empty otherwise.
  std::string layer;

  [[nodiscard]] bool in_src() const { return rel.rfind("src/", 0) == 0; }
  [[nodiscard]] bool in_tests() const { return rel.rfind("tests/", 0) == 0; }
  [[nodiscard]] const std::string& line(std::size_t n) const;
};

struct SourceTree {
  std::string root;
  std::vector<SourceFile> files;  // sorted by rel
  std::vector<std::string> errors;

  [[nodiscard]] const SourceFile* find(const std::string& rel) const;
};

// Loads every .h/.hpp/.cpp/.cc/.cxx under root/{src,bench,tests,tools,
// examples}, skipping fixture trees, build dirs, and dot-dirs. Missing
// top-level dirs are fine (fixture roots are sparse).
SourceTree load_tree(const std::string& root);

// Lint-style suppression check: `vela-analyze: allow(rule)` (or allow(all))
// on the finding's line or the line directly above.
bool suppressed_at(const SourceFile& file, std::size_t line,
                   const std::string& rule);

// True for files the dispatch/ledger passes exempt: anything under tests/
// or whose basename starts with test_ (tests drive transports and fake
// partial protocols on purpose).
bool is_test_file(const std::string& rel);

}  // namespace vela::analyze
