#include "protocol.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "token_util.h"

namespace vela::analyze {
namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}
bool is_ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

// Enumerators of the enum whose '{' is at open_idx: identifiers at depth 1
// directly preceded by '{' or ','.
std::vector<std::string> enum_body(const std::vector<Token>& toks,
                                   std::size_t open_idx) {
  std::vector<std::string> out;
  std::size_t close = match_brace(toks, open_idx);
  int depth = 0;
  for (std::size_t i = open_idx; i < close; ++i) {
    if (is_punct(toks[i], "{")) ++depth;
    if (is_punct(toks[i], "}")) --depth;
    if (depth != 1) continue;
    if (i + 1 < close && toks[i + 1].kind == TokenKind::kIdentifier &&
        (is_punct(toks[i], "{") || is_punct(toks[i], ",")))
      out.push_back(toks[i + 1].text);
  }
  return out;
}

// Finds the '{' of an enum definition starting at the `enum` token, or
// npos for forward declarations (`enum class X : u8;`).
std::size_t enum_open_brace(const std::vector<Token>& toks, std::size_t at) {
  for (std::size_t i = at; i < toks.size() && i < at + 12; ++i) {
    if (is_punct(toks[i], "{")) return i;
    if (is_punct(toks[i], ";")) return static_cast<std::size_t>(-1);
  }
  return static_cast<std::size_t>(-1);
}

void emit(std::vector<Finding>* findings, const SourceFile& file,
          std::size_t line, const std::string& rule,
          const std::string& message) {
  Finding f;
  f.rule = rule;
  f.file = file.rel;
  f.line = line;
  f.message = message;
  f.suppressed = suppressed_at(file, line, rule);
  findings->push_back(std::move(f));
}

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) out += (out.empty() ? "" : ", ") + n;
  return out;
}

// ---------------------------------------------------------------------------
// Dispatch extraction

struct Dispatch {
  std::size_t line = 0;
  std::set<std::string> handled;
  bool over_messages = false;
  bool over_records = false;
  const char* kind = "switch";
};

// Which tracked enum (if any) the identifier names.
void classify_variant(const std::string& id, const ProtocolEnums& enums,
                      Dispatch* d) {
  if (std::find(enums.message_variants.begin(), enums.message_variants.end(),
                id) != enums.message_variants.end()) {
    d->over_messages = true;
    d->handled.insert(id);
  } else if (std::find(enums.record_kinds.begin(), enums.record_kinds.end(),
                       id) != enums.record_kinds.end()) {
    d->over_records = true;
    d->handled.insert(id);
  }
}

// Scans one switch body for case labels naming tracked variants. Nested
// switches are skipped — they are dispatch sites of their own.
void scan_switch(const std::vector<Token>& toks, std::size_t switch_idx,
                 const ProtocolEnums& enums, std::vector<Dispatch>* out,
                 std::size_t* resume) {
  std::size_t i = switch_idx + 1;
  if (i >= toks.size() || !is_punct(toks[i], "(")) return;
  std::size_t close_paren = match_paren(toks, i);
  std::size_t open = close_paren + 1;
  if (open >= toks.size() || !is_punct(toks[open], "{")) return;
  std::size_t close = match_brace(toks, open);
  *resume = close;

  Dispatch d;
  d.line = toks[switch_idx].line;
  d.kind = "switch";
  for (std::size_t j = open + 1; j < close; ++j) {
    if (is_ident(toks[j], "switch")) {
      // Skip the nested switch's body.
      std::size_t nested_resume = j;
      scan_switch(toks, j, enums, out, &nested_resume);
      j = nested_resume;
      continue;
    }
    if (!is_ident(toks[j], "case")) continue;
    for (std::size_t k = j + 1; k < close && !is_punct(toks[k], ":"); ++k) {
      if (toks[k].kind == TokenKind::kIdentifier)
        classify_variant(toks[k].text, enums, &d);
    }
  }
  if (d.over_messages || d.over_records) out->push_back(d);
}

// Scans an else-if chain starting at the `if` token at if_idx. Only braced
// arms are followed (the tree style is always-braced); a chain qualifies as
// a dispatch when >= 2 arms test tracked variants.
void scan_if_chain(const std::vector<Token>& toks, std::size_t if_idx,
                   const ProtocolEnums& enums, std::vector<Dispatch>* out,
                   std::size_t* resume) {
  Dispatch d;
  d.line = toks[if_idx].line;
  d.kind = "else-if chain";
  std::size_t arms_with_variants = 0;
  std::size_t i = if_idx;
  for (;;) {
    if (i >= toks.size() || !is_ident(toks[i], "if")) break;
    std::size_t paren = i + 1;
    if (paren >= toks.size() || !is_punct(toks[paren], "(")) break;
    std::size_t close_paren = match_paren(toks, paren);
    Dispatch arm;
    for (std::size_t k = paren + 1; k < close_paren; ++k) {
      if (toks[k].kind == TokenKind::kIdentifier)
        classify_variant(toks[k].text, enums, &arm);
    }
    if (arm.over_messages || arm.over_records) {
      ++arms_with_variants;
      d.over_messages = d.over_messages || arm.over_messages;
      d.over_records = d.over_records || arm.over_records;
      d.handled.insert(arm.handled.begin(), arm.handled.end());
    }
    std::size_t body = close_paren + 1;
    if (body >= toks.size() || !is_punct(toks[body], "{")) break;
    std::size_t body_close = match_brace(toks, body);
    *resume = body_close;
    std::size_t next = body_close + 1;
    if (next >= toks.size() || !is_ident(toks[next], "else")) break;
    if (next + 1 < toks.size() && is_ident(toks[next + 1], "if")) {
      i = next + 1;
      continue;
    }
    // Terminal else: part of the chain, but (like `default:`) it does not
    // handle anything — it is where an unhandled variant would land.
    if (next + 1 < toks.size() && is_punct(toks[next + 1], "{"))
      *resume = match_brace(toks, next + 1);
    break;
  }
  if (arms_with_variants >= 2) out->push_back(d);
}

void check_dispatches(const SourceFile& file, const ProtocolEnums& enums,
                      std::vector<Finding>* findings) {
  const std::vector<Token>& toks = file.lexed.tokens;
  std::vector<Dispatch> dispatches;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_ident(toks[i], "switch")) {
      std::size_t resume = i;
      scan_switch(toks, i, enums, &dispatches, &resume);
      i = std::max(i, resume);
    } else if (is_ident(toks[i], "if") &&
               (i == 0 || !is_ident(toks[i - 1], "else"))) {
      std::size_t resume = i;
      scan_if_chain(toks, i, enums, &dispatches, &resume);
      i = std::max(i, resume);
    }
  }
  for (const Dispatch& d : dispatches) {
    const std::vector<std::string>& all =
        d.over_messages ? enums.message_variants : enums.record_kinds;
    const char* what = d.over_messages ? "MessageType" : "session record kind";
    std::vector<std::string> missing;
    for (const std::string& v : all)
      if (!d.handled.count(v)) missing.push_back(v);
    if (missing.empty()) continue;
    emit(findings, file, d.line, "partial-dispatch",
         std::string(d.kind) + " over " + what + " handles " +
             std::to_string(d.handled.size()) + "/" +
             std::to_string(all.size()) + " variants; missing: " +
             join(missing) +
             "; handle them or carry // vela-analyze: "
             "allow(partial-dispatch) with a rationale");
  }
}

// ---------------------------------------------------------------------------
// Scenario codec keys

// Keys emitted by serialize(): inside each string literal in the extent,
// identifier runs terminated by '=' at the start of the literal or after a
// separator (';', ',', space).
std::set<std::string> serialize_keys(const SourceFile& file, std::size_t lo,
                                     std::size_t hi) {
  std::set<std::string> keys;
  for (std::size_t n = lo; n <= hi && n <= file.lines.size(); ++n) {
    const std::string& line = file.line(n);
    bool in_string = false;
    std::size_t lit_start = 0;
    for (std::size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      if (c == '\\' && in_string) {
        ++i;
        continue;
      }
      if (c == '"') {
        if (!in_string) {
          in_string = true;
          lit_start = i + 1;
        } else {
          // Literal spans [lit_start, i): pull out `key=` runs.
          std::size_t j = lit_start;
          while (j < i) {
            std::size_t start = j;
            while (j < i && (std::isalnum(static_cast<unsigned char>(
                                 line[j])) ||
                             line[j] == '_'))
              ++j;
            if (j > start && j < i && line[j] == '=' &&
                (start == lit_start || line[start - 1] == ';' ||
                 line[start - 1] == ',' || line[start - 1] == ' ')) {
              keys.insert(line.substr(start, j - start));
            }
            if (j == start) ++j;  // non-identifier char: advance
          }
          in_string = false;
        }
      }
    }
  }
  return keys;
}

// Keys accepted by parse(): occurrences of `== "ident"` in the extent.
std::set<std::string> parse_keys(const SourceFile& file, std::size_t lo,
                                 std::size_t hi) {
  std::set<std::string> keys;
  for (std::size_t n = lo; n <= hi && n <= file.lines.size(); ++n) {
    const std::string& line = file.line(n);
    std::size_t pos = 0;
    while ((pos = line.find("==", pos)) != std::string::npos) {
      std::size_t i = pos + 2;
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
      if (i < line.size() && line[i] == '"') {
        std::size_t start = ++i;
        while (i < line.size() && (std::isalnum(static_cast<unsigned char>(
                                       line[i])) ||
                                   line[i] == '_'))
          ++i;
        if (i < line.size() && line[i] == '"' && i > start)
          keys.insert(line.substr(start, i - start));
      }
      pos += 2;
    }
  }
  return keys;
}

// Line extent of the member function `Class::name(...) { ... }` in `file`,
// or {0, 0} when not defined there.
struct LineExtent {
  std::size_t lo = 0, hi = 0;
};
LineExtent member_function_extent(const SourceFile& file, const char* cls,
                                  const char* name) {
  const std::vector<Token>& toks = file.lexed.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_ident(toks[i], cls) || !is_punct(toks[i + 1], "::") ||
        !is_ident(toks[i + 2], name))
      continue;
    // Definition (not a call): next non-( token chain must reach a '{'
    // before a ';'.
    for (std::size_t j = i + 3; j < toks.size(); ++j) {
      if (is_punct(toks[j], ";")) break;
      if (is_punct(toks[j], "{")) {
        std::size_t close = match_brace(toks, j);
        LineExtent e;
        e.lo = toks[i].line;
        e.hi = close < toks.size() ? toks[close].line : file.lines.size();
        return e;
      }
    }
  }
  return {};
}

void check_scenario_codec(const SourceTree& tree,
                          std::vector<Finding>* findings) {
  for (const SourceFile& f : tree.files) {
    LineExtent ser = member_function_extent(f, "Scenario", "serialize");
    if (ser.lo == 0) continue;
    LineExtent par = member_function_extent(f, "Scenario", "parse");
    if (par.lo == 0) {
      emit(findings, f, ser.lo, "codec-key-mismatch",
           "Scenario::serialize() is defined here but Scenario::parse() was "
           "not found in the same file; the codec halves must live together "
           "so the key sets can be checked");
      continue;
    }
    std::set<std::string> emitted = serialize_keys(f, ser.lo, ser.hi);
    std::set<std::string> accepted = parse_keys(f, par.lo, par.hi);
    for (const std::string& k : emitted) {
      if (!accepted.count(k))
        emit(findings, f, par.lo, "codec-key-mismatch",
             "scenario codec: serialize() emits key '" + k +
                 "' but parse() never accepts it; every emitted key must "
                 "round-trip");
    }
    for (const std::string& k : accepted) {
      if (!emitted.count(k))
        emit(findings, f, ser.lo, "codec-key-mismatch",
             "scenario codec: parse() accepts key '" + k +
                 "' but serialize() never emits it; dead keys hide schema "
                 "drift");
    }
  }
}

}  // namespace

ProtocolEnums extract_protocol_enums(const SourceTree& tree) {
  ProtocolEnums enums;
  for (const SourceFile& f : tree.files) {
    const std::vector<Token>& toks = f.lexed.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!is_ident(toks[i], "enum")) continue;
      // enum class MessageType { ... } — prefer the comm/message.h copy.
      if (is_ident(toks[i + 1], "class") &&
          is_ident(toks[i + 2], "MessageType")) {
        std::size_t open = enum_open_brace(toks, i);
        if (open == static_cast<std::size_t>(-1)) continue;
        bool preferred = f.rel.size() >= 14 &&
                         f.rel.compare(f.rel.size() - 14, 14,
                                       "comm/message.h") == 0;
        if (enums.message_variants.empty() || preferred) {
          enums.message_variants = enum_body(toks, open);
          enums.message_enum_file = f.rel;
        }
        continue;
      }
      // Any enum whose first enumerator starts with kRec is the session
      // record-kind enum (it is anonymous in the tree).
      std::size_t open = enum_open_brace(toks, i);
      if (open == static_cast<std::size_t>(-1)) continue;
      std::vector<std::string> body = enum_body(toks, open);
      if (!body.empty() && body.front().rfind("kRec", 0) == 0 &&
          enums.record_kinds.empty()) {
        enums.record_kinds = body;
      }
    }
  }
  return enums;
}

void run_protocol_passes(const SourceTree& tree, const ProtocolEnums& enums,
                         std::vector<Finding>* findings) {
  if (!enums.message_variants.empty() || !enums.record_kinds.empty()) {
    for (const SourceFile& f : tree.files) {
      if (is_test_file(f.rel)) continue;
      check_dispatches(f, enums, findings);
    }
  }
  check_scenario_codec(tree, findings);
}

}  // namespace vela::analyze
