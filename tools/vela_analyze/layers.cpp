#include "layers.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <sstream>

namespace vela::analyze {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_words(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string w;
  while (in >> w) out.push_back(w);
  return out;
}

// Resolves one quoted include to a scanned file, or nullptr. The repo
// convention is root-relative-to-src/ paths ("comm/message.h"); tool and
// test sources also use paths relative to their own directory.
const SourceFile* resolve_include(const SourceTree& tree,
                                  const SourceFile& from,
                                  const IncludeEdge& edge) {
  if (edge.system) return nullptr;
  if (const SourceFile* f = tree.find("src/" + edge.path)) return f;
  std::size_t slash = from.rel.find_last_of('/');
  if (slash != std::string::npos) {
    if (const SourceFile* f =
            tree.find(from.rel.substr(0, slash + 1) + edge.path))
      return f;
  }
  return tree.find(edge.path);
}

void emit(std::vector<Finding>* findings, const SourceFile& file,
          std::size_t line, const std::string& rule,
          const std::string& message) {
  Finding f;
  f.rule = rule;
  f.file = file.rel;
  f.line = line;
  f.message = message;
  f.suppressed = suppressed_at(file, line, rule);
  findings->push_back(std::move(f));
}

// Tarjan SCC over the src/ include graph; components of size > 1 (or with a
// self-loop) are cycles and get one finding each, anchored at the first
// member's edge into the component.
void check_cycles(const SourceTree& tree,
                  const std::vector<const SourceFile*>& nodes,
                  const std::map<std::string, std::size_t>& index_of,
                  const std::vector<std::vector<std::size_t>>& adj,
                  std::vector<Finding>* findings) {
  const std::size_t n = nodes.size();
  std::vector<std::size_t> index(n, 0), low(n, 0);
  std::vector<bool> on_stack(n, false), visited(n, false);
  std::vector<std::size_t> stack;
  std::size_t counter = 1;
  std::vector<std::vector<std::size_t>> components;

  std::function<void(std::size_t)> strongconnect = [&](std::size_t v) {
    index[v] = low[v] = counter++;
    visited[v] = true;
    stack.push_back(v);
    on_stack[v] = true;
    for (std::size_t w : adj[v]) {
      if (!visited[w]) {
        strongconnect(w);
        low[v] = std::min(low[v], low[w]);
      } else if (on_stack[w]) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      std::vector<std::size_t> comp;
      for (;;) {
        std::size_t w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        comp.push_back(w);
        if (w == v) break;
      }
      bool self_loop =
          comp.size() == 1 &&
          std::find(adj[comp[0]].begin(), adj[comp[0]].end(), comp[0]) !=
              adj[comp[0]].end();
      if (comp.size() > 1 || self_loop) components.push_back(std::move(comp));
    }
  };
  for (std::size_t v = 0; v < n; ++v)
    if (!visited[v]) strongconnect(v);

  for (auto& comp : components) {
    std::vector<std::string> members;
    members.reserve(comp.size());
    for (std::size_t v : comp) members.push_back(nodes[v]->rel);
    std::sort(members.begin(), members.end());
    const SourceFile* anchor = tree.find(members.front());
    std::size_t line = 1;
    // Anchor at the anchor file's first include edge into the component.
    for (const IncludeEdge& e : anchor->includes) {
      const SourceFile* to = resolve_include(tree, *anchor, e);
      if (!to) continue;
      auto it = index_of.find(to->rel);
      if (it == index_of.end()) continue;
      if (std::find(comp.begin(), comp.end(), it->second) != comp.end() &&
          to->rel != anchor->rel) {
        line = e.line;
        break;
      }
    }
    std::string msg = "include cycle among " +
                      std::to_string(members.size()) + " files: ";
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i) msg += " -> ";
      msg += members[i];
    }
    msg += "; break the cycle (forward-declare, or split the shared part "
           "into a lower layer)";
    emit(findings, *anchor, line, "include-cycle", msg);
  }
}

}  // namespace

LayerConfig parse_layer_config(const std::string& text,
                               const std::string& path) {
  LayerConfig cfg;
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  // Deferred dep validation: a layer may name a dep declared further down.
  std::vector<std::pair<std::size_t, std::string>> pending_deps;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      cfg.errors.push_back(path + ":" + std::to_string(lineno) +
                           ": expected 'layer NAME: deps...' or "
                           "'restrict-include PATTERN: layers...'");
      continue;
    }
    std::string head = trim(line.substr(0, colon));
    std::vector<std::string> tail = split_words(line.substr(colon + 1));
    std::vector<std::string> head_words = split_words(head);
    if (head_words.size() == 2 && head_words[0] == "layer") {
      const std::string& name = head_words[1];
      if (cfg.allowed.count(name)) {
        cfg.errors.push_back(path + ":" + std::to_string(lineno) +
                             ": duplicate layer '" + name + "'");
        continue;
      }
      auto& deps = cfg.allowed[name];
      for (const std::string& d : tail) {
        deps.insert(d);
        pending_deps.emplace_back(lineno, d);
      }
    } else if (head_words.size() == 2 && head_words[0] == "restrict-include") {
      cfg.restricted.emplace_back(
          head_words[1], std::set<std::string>(tail.begin(), tail.end()));
      for (const std::string& l : tail) pending_deps.emplace_back(lineno, l);
    } else {
      cfg.errors.push_back(path + ":" + std::to_string(lineno) +
                           ": unrecognized directive '" + head + "'");
    }
  }
  for (const auto& [lineno2, dep] : pending_deps) {
    if (!cfg.allowed.count(dep))
      cfg.errors.push_back(path + ":" + std::to_string(lineno2) +
                           ": unknown layer '" + dep + "'");
  }
  return cfg;
}

void run_layer_passes(const SourceTree& tree, const LayerConfig& config,
                      std::vector<Finding>* findings) {
  // Build the src/ file graph.
  std::vector<const SourceFile*> nodes;
  std::map<std::string, std::size_t> index_of;
  for (const SourceFile& f : tree.files) {
    if (!f.in_src()) continue;
    index_of[f.rel] = nodes.size();
    nodes.push_back(&f);
  }
  std::vector<std::vector<std::size_t>> adj(nodes.size());
  for (std::size_t v = 0; v < nodes.size(); ++v) {
    for (const IncludeEdge& e : nodes[v]->includes) {
      const SourceFile* to = resolve_include(tree, *nodes[v], e);
      if (!to || !to->in_src()) continue;
      adj[v].push_back(index_of.at(to->rel));
    }
  }

  check_cycles(tree, nodes, index_of, adj, findings);

  // unknown-layer: every src/ directory must be declared in layers.conf
  // (one finding per layer, anchored at its first file).
  std::set<std::string> reported_unknown;
  for (const SourceFile* f : nodes) {
    if (f->layer.empty()) continue;
    if (config.allowed.count(f->layer)) continue;
    if (!reported_unknown.insert(f->layer).second) continue;
    emit(findings, *f, 1, "unknown-layer",
         "directory src/" + f->layer +
             " is not declared in tools/layers.conf; add a 'layer " +
             f->layer + ": ...' line placing it in the DAG");
  }

  // layer-violation: cross-layer edges must be declared.
  for (std::size_t v = 0; v < nodes.size(); ++v) {
    const SourceFile& from = *nodes[v];
    if (from.layer.empty() || !config.allowed.count(from.layer)) continue;
    const std::set<std::string>& allowed = config.allowed.at(from.layer);
    for (const IncludeEdge& e : from.includes) {
      const SourceFile* to = resolve_include(tree, from, e);
      if (!to || !to->in_src() || to->layer.empty()) continue;
      if (to->layer == from.layer || allowed.count(to->layer)) continue;
      emit(findings, from, e.line, "layer-violation",
           "layer src/" + from.layer + " may not include src/" + to->layer +
               " (edge " + from.rel + " -> " + to->rel +
               " is not declared in tools/layers.conf)");
    }
  }

  // restricted-include: applies tree-wide, including tests.
  for (const SourceFile& f : tree.files) {
    for (const auto& [pattern, layers] : config.restricted) {
      if (!f.layer.empty() && layers.count(f.layer)) continue;
      for (const IncludeEdge& e : f.includes) {
        if (e.path.find(pattern) == std::string::npos) continue;
        std::string who;
        for (const std::string& l : layers)
          who += (who.empty() ? "src/" : ", src/") + l;
        emit(findings, f, e.line, "restricted-include",
             "#include " + std::string(e.system ? "<" : "\"") + e.path +
                 std::string(e.system ? ">" : "\"") +
                 " is restricted to " + who +
                 " by tools/layers.conf; route through the comm fabric or "
                 "suppress with a rationale");
      }
    }
  }
}

}  // namespace vela::analyze
