#include "token_util.h"

namespace vela::analyze {

namespace {

std::size_t match_closer(const std::vector<Token>& tokens,
                         std::size_t open_idx, const char* open,
                         const char* close) {
  int depth = 0;
  for (std::size_t i = open_idx; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kPunct) continue;
    if (tokens[i].text == open) {
      ++depth;
    } else if (tokens[i].text == close) {
      if (--depth == 0) return i;
    }
  }
  return tokens.size();
}

}  // namespace

std::size_t match_brace(const std::vector<Token>& tokens,
                        std::size_t open_idx) {
  return match_closer(tokens, open_idx, "{", "}");
}

std::size_t match_paren(const std::vector<Token>& tokens,
                        std::size_t open_idx) {
  return match_closer(tokens, open_idx, "(", ")");
}

bool is_type_scope_open(const std::vector<Token>& tokens,
                        std::size_t open_idx) {
  // Walk back over the scope head: `namespace a::b {`, `class Foo final :
  // public Bar {`, `enum class E : std::uint8_t {`. A ')' before any scope
  // keyword means a function/control head; ';' '{' '}' mean we left the
  // declaration entirely.
  std::size_t i = open_idx;
  while (i > 0) {
    const Token& t = tokens[--i];
    if (t.kind == TokenKind::kPunct &&
        (t.text == ")" || t.text == ";" || t.text == "{" || t.text == "}"))
      return false;
    if (t.kind == TokenKind::kIdentifier &&
        (t.text == "namespace" || t.text == "class" || t.text == "struct" ||
         t.text == "enum" || t.text == "union"))
      return true;
  }
  return false;
}

Extent enclosing_function(const std::vector<Token>& tokens, std::size_t at) {
  // Scan from the top, maintaining the stack of open braces; the answer is
  // the outermost non-type-scope brace on the stack when we reach `at`.
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < tokens.size() && i <= at; ++i) {
    if (tokens[i].kind != TokenKind::kPunct) continue;
    if (tokens[i].text == "{") {
      stack.push_back(i);
    } else if (tokens[i].text == "}") {
      if (!stack.empty()) stack.pop_back();
    }
  }
  for (std::size_t open : stack) {
    if (is_type_scope_open(tokens, open)) continue;
    Extent e;
    e.open = open;
    e.close = match_brace(tokens, open);
    return e;
  }
  return {};
}

}  // namespace vela::analyze
