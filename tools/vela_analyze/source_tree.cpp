#include "source_tree.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace vela::analyze {
namespace fs = std::filesystem;

namespace {

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

bool skip_dir(const std::string& name) {
  return name == "fixtures" || name.rfind("build", 0) == 0 ||
         (!name.empty() && name[0] == '.');
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

// Parses `#include <...>` / `#include "..."` from one raw line. The lint
// lexer blanks string contents, so include paths only exist down here.
bool parse_include(const std::string& line, IncludeEdge* out) {
  std::size_t i = 0;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
    ++i;
  if (i >= line.size() || line[i] != '#') return false;
  ++i;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
    ++i;
  if (line.compare(i, 7, "include") != 0) return false;
  i += 7;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
    ++i;
  if (i >= line.size()) return false;
  char open = line[i];
  char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
  if (close == '\0') return false;
  std::size_t end = line.find(close, i + 1);
  if (end == std::string::npos) return false;
  out->path = line.substr(i + 1, end - i - 1);
  out->system = open == '<';
  return true;
}

// Records `vela-analyze: allow(rule-a, rule-b)` allowances per line. Scanned
// from raw lines because the lint lexer keeps only vela-lint allowances.
void scan_allowances(SourceFile* file) {
  static const std::string kTag = "vela-analyze:";
  for (std::size_t n = 0; n < file->lines.size(); ++n) {
    const std::string& line = file->lines[n];
    std::size_t at = line.find(kTag);
    if (at == std::string::npos) continue;
    std::size_t open = line.find("allow(", at + kTag.size());
    if (open == std::string::npos) continue;
    std::size_t close = line.find(')', open);
    if (close == std::string::npos) continue;
    std::string inner = line.substr(open + 6, close - open - 6);
    std::string name;
    auto flush = [&] {
      if (!name.empty()) file->allowances[n + 1].insert(name);
      name.clear();
    };
    for (char c : inner) {
      if (c == ',' || std::isspace(static_cast<unsigned char>(c)))
        flush();
      else
        name.push_back(c);
    }
    flush();
  }
}

void load_file(const fs::path& abs, const std::string& rel, SourceTree* tree) {
  std::ifstream in(abs, std::ios::binary);
  if (!in) {
    tree->errors.push_back("cannot read " + rel);
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  SourceFile file;
  file.rel = rel;
  file.text = buf.str();
  file.lines = split_lines(file.text);
  for (std::size_t n = 0; n < file.lines.size(); ++n) {
    IncludeEdge edge;
    if (parse_include(file.lines[n], &edge)) {
      edge.line = n + 1;
      file.includes.push_back(edge);
    }
  }
  file.lexed = vela::lint::lex(file.text);
  scan_allowances(&file);
  if (file.in_src()) {
    std::size_t slash = file.rel.find('/', 4);
    if (slash != std::string::npos)
      file.layer = file.rel.substr(4, slash - 4);
  }
  tree->files.push_back(std::move(file));
}

}  // namespace

const std::string& SourceFile::line(std::size_t n) const {
  static const std::string kEmpty;
  if (n == 0 || n > lines.size()) return kEmpty;
  return lines[n - 1];
}

const SourceFile* SourceTree::find(const std::string& rel) const {
  auto it = std::lower_bound(
      files.begin(), files.end(), rel,
      [](const SourceFile& f, const std::string& r) { return f.rel < r; });
  if (it != files.end() && it->rel == rel) return &*it;
  return nullptr;
}

SourceTree load_tree(const std::string& root) {
  SourceTree tree;
  tree.root = root;
  static const char* kTopDirs[] = {"src", "bench", "tests", "tools",
                                   "examples"};
  for (const char* top : kTopDirs) {
    fs::path dir = fs::path(root) / top;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        tree.errors.push_back("walk error under " + dir.string() + ": " +
                              ec.message());
        break;
      }
      if (it->is_directory() && skip_dir(it->path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file() || !has_source_extension(it->path()))
        continue;
      std::string rel =
          fs::relative(it->path(), root).generic_string();
      load_file(it->path(), rel, &tree);
    }
  }
  std::sort(tree.files.begin(), tree.files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  return tree;
}

bool suppressed_at(const SourceFile& file, std::size_t line,
                   const std::string& rule) {
  for (std::size_t n : {line, line > 0 ? line - 1 : 0}) {
    auto it = file.allowances.find(n);
    if (it == file.allowances.end()) continue;
    if (it->second.count(rule) || it->second.count("all")) return true;
  }
  return false;
}

bool is_test_file(const std::string& rel) {
  if (rel.rfind("tests/", 0) == 0) return true;
  std::size_t slash = rel.find_last_of('/');
  std::string base = slash == std::string::npos ? rel : rel.substr(slash + 1);
  return base.rfind("test_", 0) == 0;
}

}  // namespace vela::analyze
