#include "analyze.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "coverage.h"
#include "layers.h"
#include "protocol.h"
#include "source_tree.h"

namespace vela::analyze {
namespace fs = std::filesystem;

namespace {

std::string resolve(const std::string& root, const std::string& path) {
  fs::path p(path);
  if (p.is_absolute()) return p.generic_string();
  return (fs::path(root) / p).generic_string();
}

// Reads a whole file; returns false when absent/unreadable.
bool slurp(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      "include-cycle",      "layer-violation",  "unknown-layer",
      "restricted-include", "partial-dispatch", "codec-key-mismatch",
      "uncharged-send",     "unregistered-env", "stale-env-registry",
      "stale-env-docs",     "stale-golden",
  };
  return kRules;
}

Report run(const Options& opts) {
  Report report;
  SourceTree tree = load_tree(opts.root);
  report.files_scanned = tree.files.size();
  report.errors = tree.errors;

  // layers.conf is mandatory: the declared DAG is the contract under test.
  const std::string layers_abs = resolve(opts.root, opts.layers_path);
  std::string layers_text;
  if (!slurp(layers_abs, &layers_text)) {
    report.errors.push_back("cannot read layer config " + layers_abs);
    return report;
  }
  LayerConfig layers = parse_layer_config(layers_text, opts.layers_path);
  report.errors.insert(report.errors.end(), layers.errors.begin(),
                       layers.errors.end());

  // A missing registry parses as empty: every consumer is then an
  // unregistered-env finding, which is the right failure mode.
  std::string registry_text;
  slurp(resolve(opts.root, opts.env_registry_path), &registry_text);
  EnvRegistry registry =
      parse_env_registry(registry_text, opts.env_registry_path);
  report.errors.insert(report.errors.end(), registry.errors.begin(),
                       registry.errors.end());

  std::string current_docs;
  slurp(resolve(opts.root, opts.env_docs_path), &current_docs);

  if (!report.errors.empty()) return report;

  run_layer_passes(tree, layers, &report.findings);
  ProtocolEnums enums = extract_protocol_enums(tree);
  run_protocol_passes(tree, enums, &report.findings);
  run_ledger_pass(tree, &report.findings);
  run_env_passes(tree, registry, opts.env_registry_path, current_docs,
                 opts.env_docs_path, &report.env_docs, &report.findings);
  run_golden_pass(tree, &report.findings);

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return report;
}

}  // namespace vela::analyze
