// vela_analyze — whole-program architecture & protocol conformance analyzer
// for the VELA tree (DESIGN.md §14). Sibling of vela_lint, one altitude up:
// where the linter pattern-matches hazards inside a single file, the
// analyzer checks invariants that only exist BETWEEN files — the include
// graph's layering, the exhaustiveness of every protocol dispatch against
// the enums it switches over, the charge coverage of the byte ledger, and
// the registry of VELA_* environment knobs.
//
// Passes (rule names as reported):
//
//   include-cycle      the file-level include graph over src/ must be a DAG;
//                      a strongly connected component is reported once, with
//                      its full membership.
//   layer-violation    every cross-directory include edge src/A -> src/B
//                      must be declared in tools/layers.conf. The conf is
//                      the checked-in architecture; an undeclared edge is
//                      either a layering inversion (fix the code) or a real
//                      architectural change (change the conf in the same PR
//                      that reviews it).
//   restricted-include headers named by `restrict-include` lines (the raw
//                      socket API) may only be included by the named layers.
//                      Applies to the whole tree, tests included — a test
//                      that legitimately speaks raw sockets suppresses with
//                      a rationale.
//   partial-dispatch   every switch / else-if chain over MessageType or the
//                      session-record kinds must name every variant, or
//                      carry `// vela-analyze: allow(partial-dispatch)` with
//                      a written rationale. A `default:` arm does NOT count
//                      as handling: it is exactly the hole a 25th message
//                      type would fall through silently.
//   codec-key-mismatch Scenario::serialize() and Scenario::parse() must
//                      agree on the exact key set (a key emitted but never
//                      parsed desynchronizes every multi-process run).
//   uncharged-send     the Message -> frame handoff (encode_frame) and raw
//                      Transport sends are confined to src/comm, and every
//                      comm function that frames a Message must charge
//                      Message::wire_size() (or carry a rationale) — the
//                      paper's traffic accounting is only trustworthy if
//                      every byte is charged exactly once.
//   unregistered-env   every getenv("VELA_*") in the tree must appear in
//                      tools/env_registry.conf (name|default|description).
//   stale-env-registry every registry entry must still have a consumer.
//   stale-env-docs     docs/env.md must equal the table regenerated from
//                      the scan + registry (vela_analyze --write-env-docs).
//   stale-golden       every tests/golden/*.csv must be referenced by at
//                      least one file under tests/.
//
// Suppression grammar (mirrors vela_lint): a comment
// `// vela-analyze: allow(rule-a, rule-b)` on the finding's line or the
// line directly above downgrades the finding to suppressed. Tree-state
// findings with no meaningful source line (stale-env-docs, stale-golden,
// stale-env-registry) are not suppressible — they are fixed by regenerating
// the artifact they guard.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vela::analyze {

struct Finding {
  std::string rule;
  std::string file;  // repo-root-relative, forward slashes
  std::size_t line = 0;
  std::string message;
  bool suppressed = false;
};

struct Options {
  // Repo root; every path below is resolved against it when relative.
  std::string root = ".";
  std::string layers_path = "tools/layers.conf";
  std::string env_registry_path = "tools/env_registry.conf";
  std::string env_docs_path = "docs/env.md";
};

struct Report {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  // The regenerated docs/env.md content (what --write-env-docs writes and
  // what the stale-env-docs pass compares against).
  std::string env_docs;
  // Configuration/IO errors (missing layers.conf, unreadable file): the
  // CLI exits 2 on these, distinct from findings.
  std::vector<std::string> errors;

  [[nodiscard]] std::size_t unsuppressed() const {
    std::size_t n = 0;
    for (const Finding& f : findings) n += f.suppressed ? 0 : 1;
    return n;
  }
};

// Runs every pass over the tree at opts.root.
Report run(const Options& opts);

// Rule names above, in reporting order.
const std::vector<std::string>& all_rules();

}  // namespace vela::analyze
