// Protocol exhaustiveness checker (rules: partial-dispatch,
// codec-key-mismatch).
//
// The enums of record are extracted from the tree itself, so the analyzer
// never goes stale against the code: `enum class MessageType { ... }` (the
// wire protocol) and the anonymous session-record enum whose enumerators
// start with kRec. Every switch / else-if chain whose labels name those
// variants must handle ALL of them — a `default:` arm or terminal `else`
// does not count, because it is exactly where an unhandled new variant
// would silently land.
//
// The scenario codec is checked as a key-set equation: the `"key="` literals
// Scenario::serialize() emits must equal the `key == "..."` comparisons
// Scenario::parse() accepts.
#pragma once

#include <string>
#include <vector>

#include "analyze.h"
#include "source_tree.h"

namespace vela::analyze {

struct ProtocolEnums {
  std::vector<std::string> message_variants;  // MessageType::k*
  std::vector<std::string> record_kinds;      // kRec*
  std::string message_enum_file;              // where MessageType was found
};

// Extracts both enums from the tree (empty vectors when absent — fixture
// trees without a protocol simply skip the dispatch pass).
ProtocolEnums extract_protocol_enums(const SourceTree& tree);

void run_protocol_passes(const SourceTree& tree, const ProtocolEnums& enums,
                         std::vector<Finding>* findings);

}  // namespace vela::analyze
