// vela_node: one process of a multi-process VELA deployment (DESIGN.md §12).
//
// Roles:
//   --role master  host the PeerListener, adopt the worker fleet, run the
//                  scenario's fine-tuning loop, print the artifact summary.
//                  Announces "VELA_PORT <port>" on stdout once listening so a
//                  launcher (or a human) can start workers against it.
//   --role worker  dial the master's port, host this rank's experts, serve
//                  until shutdown. --fresh starts with zero experts (the
//                  respawn contract: replacements are restocked on the wire).
//
// Every process rebuilds identical configuration from the shared --scenario
// string; nothing is negotiated beyond the kIdent handshake.
//
//   vela_node --role master --scenario "workers=6;steps=2" &
//   vela_node --role worker --rank 0 --port <announced> --scenario "..."
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "comm/peer_listener.h"
#include "core/node_runtime.h"
#include "core/scenario.h"

using namespace vela;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --role master --scenario STR [--port P] "
               "[--checkpoint PATH]\n"
               "       %s --role worker --scenario STR --rank R --port P "
               "[--fresh]\n",
               argv0, argv0);
  return 2;
}

int run_master(const core::Scenario& scenario, std::uint16_t port,
               const std::string& checkpoint_path) {
  comm::PeerListenerConfig lc;
  lc.port = port;
  auto listener = comm::make_peer_listener(lc);
  // The launcher scrapes this exact line from the log; keep it first and
  // flushed so workers can dial before the fleet-adoption timeout.
  std::printf("VELA_PORT %u\n", static_cast<unsigned>(listener->bound_port()));
  std::fflush(stdout);

  auto master = core::make_remote_master(scenario, listener.get(),
                                         std::chrono::milliseconds(30000));
  data::SyntheticCorpus corpus(scenario.corpus_config(), scenario.corpus_seed);
  core::VelaSystem vela(scenario.system_config(/*remote=*/true),
                        std::move(master), &corpus);

  const core::FineTuneArtifacts art =
      core::run_fine_tune(vela, scenario, corpus, checkpoint_path);
  for (std::size_t s = 0; s < art.losses.size(); ++s) {
    std::printf("step %zu: loss %.6f, external %llu B, total %llu B\n", s,
                static_cast<double>(art.losses[s]),
                static_cast<unsigned long long>(art.step_external_bytes[s]),
                static_cast<unsigned long long>(art.step_total_bytes[s]));
  }
  std::printf("lifetime: external %llu B, total %llu B, requests %llu\n",
              static_cast<unsigned long long>(art.lifetime_external_bytes),
              static_cast<unsigned long long>(art.lifetime_total_bytes),
              static_cast<unsigned long long>(art.requests));
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string role, scenario_str, checkpoint_path;
  long rank = -1, port = 0;
  bool fresh = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--role") {
      role = value();
    } else if (arg == "--scenario") {
      scenario_str = value();
    } else if (arg == "--rank") {
      rank = std::atol(value());
    } else if (arg == "--port") {
      port = std::atol(value());
    } else if (arg == "--checkpoint") {
      checkpoint_path = value();
    } else if (arg == "--fresh") {
      fresh = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (scenario_str.empty() || (role != "master" && role != "worker")) {
    return usage(argv[0]);
  }
  const core::Scenario scenario = core::Scenario::parse(scenario_str);

  if (role == "master") {
    if (port < 0 || port > 65535) return usage(argv[0]);
    return run_master(scenario, static_cast<std::uint16_t>(port),
                      checkpoint_path);
  }
  if (rank < 0 || port <= 0 || port > 65535) return usage(argv[0]);
  // The pid is this incarnation's transport session id: unique per process
  // on one host, so a respawned rank never aliases its predecessor's session.
  return core::run_worker_node(scenario, static_cast<std::uint32_t>(rank),
                               static_cast<std::uint16_t>(port),
                               static_cast<std::uint64_t>(::getpid()), fresh);
}
