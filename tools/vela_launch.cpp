// vela_launch: process launcher for a multi-process VELA deployment.
//
// Spawns one vela_node master plus scenario.workers vela_node workers on
// this host, wires them together (the master binds port 0 and announces the
// bound port in its log; the launcher scrapes it and passes it to every
// worker), captures per-process logs, and propagates the worst exit code —
// a crash surfaces as 128+signal, exec failure as 127.
//
//   vela_launch --scenario "workers=6;steps=2" --log-dir /tmp/vela-logs
//
// The vela_node binary is found next to vela_launch unless --node-bin is
// given. Master stdout (per-step losses and byte ledgers) is echoed after
// the run so the launcher is usable interactively.
#include <libgen.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/launcher.h"
#include "core/scenario.h"

using namespace vela;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scenario STR] [--log-dir DIR] [--node-bin PATH]\n",
               argv0);
  return 2;
}

std::string sibling_binary(const char* argv0, const std::string& name) {
  std::string path(argv0);  // dirname() mutates its argument; copy first
  return std::string(::dirname(path.data())) + "/" + name;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_str = "workers=6;steps=2";
  std::string log_dir = "/tmp/vela-launch";
  std::string node_bin;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      scenario_str = value();
    } else if (arg == "--log-dir") {
      log_dir = value();
    } else if (arg == "--node-bin") {
      node_bin = value();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (node_bin.empty()) node_bin = sibling_binary(argv[0], "vela_node");
  const core::Scenario scenario = core::Scenario::parse(scenario_str);

  std::string mkdir_cmd = "mkdir -p '" + log_dir + "'";
  if (std::system(mkdir_cmd.c_str()) != 0) {
    std::fprintf(stderr, "cannot create log dir %s\n", log_dir.c_str());
    return 1;
  }

  // Master first: it binds port 0 and announces the real port in its log.
  const std::string master_log = log_dir + "/master.log";
  std::vector<std::unique_ptr<cluster::ChildProcess>> children;
  {
    cluster::ProcessSpec spec;
    spec.binary = node_bin;
    spec.args = {"--role", "master", "--scenario", scenario_str};
    spec.log_path = master_log;
    children.push_back(std::make_unique<cluster::ChildProcess>(spec));
  }
  const std::uint16_t port =
      cluster::wait_for_port(master_log, std::chrono::milliseconds(15000));
  if (port == 0) {
    std::fprintf(stderr, "master never announced a port (log: %s)\n",
                 master_log.c_str());
    children[0]->kill();
    return cluster::wait_all(children) ? 1 : 1;
  }
  std::printf("master pid %d listening on port %u\n",
              static_cast<int>(children[0]->pid()),
              static_cast<unsigned>(port));

  for (std::size_t w = 0; w < scenario.workers; ++w) {
    cluster::ProcessSpec spec;
    spec.binary = node_bin;
    spec.args = {"--role",     "worker",
                 "--rank",     std::to_string(w),
                 "--port",     std::to_string(port),
                 "--scenario", scenario_str};
    spec.log_path = log_dir + "/worker_" + std::to_string(w) + ".log";
    children.push_back(std::make_unique<cluster::ChildProcess>(spec));
  }
  std::printf("launched %zu worker(s); logs in %s\n", scenario.workers,
              log_dir.c_str());

  const int worst = cluster::wait_all(children);
  std::ifstream in(master_log);
  std::string line;
  while (std::getline(in, line)) std::printf("[master] %s\n", line.c_str());
  if (worst != 0) {
    std::fprintf(stderr, "deployment failed: worst exit code %d\n", worst);
  }
  return worst;
}
