// vela_lint — repo-specific static analysis for the VELA tree.
//
// Usage:
//   vela_lint [--json <report.json>] [--list-rules] <file-or-dir>...
//
// Directories are scanned recursively for .h/.hpp/.cpp/.cc/.cxx files
// (build trees and lint fixtures are skipped). Exit status is 0 when every
// finding is suppressed via `// vela-lint: allow(<rule>)`, 1 when any
// unsuppressed finding remains, 2 on usage/IO errors — so the tree scan can
// run as a ctest that fails the build on new hazards.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rules.h"

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

bool skipped_directory(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "fixtures" || name.rfind("build", 0) == 0 ||
         (!name.empty() && name[0] == '.');
}

void collect_files(const fs::path& root, std::vector<fs::path>* out) {
  if (fs::is_regular_file(root)) {
    out->push_back(root);
    return;
  }
  fs::recursive_directory_iterator it(root), end;
  for (; it != end; ++it) {
    if (it->is_directory() && skipped_directory(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable_extension(it->path())) {
      out->push_back(it->path());
    }
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& r : vela::lint::all_rules()) {
        std::cout << r << "\n";
      }
      return 0;
    }
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "vela_lint: --json needs a path\n";
        return 2;
      }
      json_path = argv[++i];
      continue;
    }
    if (!fs::exists(arg)) {
      std::cerr << "vela_lint: no such file or directory: " << arg << "\n";
      return 2;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "usage: vela_lint [--json report.json] [--list-rules] "
                 "<file-or-dir>...\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& r : roots) collect_files(r, &files);
  std::sort(files.begin(), files.end());

  std::vector<vela::lint::Finding> all;
  for (const fs::path& f : files) {
    std::ifstream in(f);
    if (!in) {
      std::cerr << "vela_lint: cannot read " << f << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string path = f.generic_string();
    for (vela::lint::Finding& finding :
         vela::lint::lint_file(path, buf.str())) {
      all.push_back(std::move(finding));
    }
  }

  std::size_t unsuppressed = 0;
  std::size_t suppressed = 0;
  for (const vela::lint::Finding& f : all) {
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    ++unsuppressed;
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "vela_lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << "{\n  \"files_scanned\": " << files.size()
        << ",\n  \"unsuppressed\": " << unsuppressed
        << ",\n  \"suppressed\": " << suppressed << ",\n  \"findings\": [\n";
    for (std::size_t i = 0; i < all.size(); ++i) {
      const vela::lint::Finding& f = all[i];
      out << "    {\"file\": \"" << json_escape(f.file)
          << "\", \"line\": " << f.line << ", \"rule\": \"" << f.rule
          << "\", \"suppressed\": " << (f.suppressed ? "true" : "false")
          << ", \"message\": \"" << json_escape(f.message) << "\"}"
          << (i + 1 < all.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

  std::cerr << "vela_lint: " << files.size() << " files, " << unsuppressed
            << " unsuppressed finding(s), " << suppressed << " suppressed\n";
  return unsuppressed == 0 ? 0 : 1;
}
