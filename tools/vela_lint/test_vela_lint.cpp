// vela_lint self-test: every rule must detect its seeded violation in the
// fixture files, suppressions must downgrade (not hide) findings, and the
// clean fixture must produce zero unsuppressed findings. Inline-source cases
// cover the lexer edge behavior the rules rely on (comments, strings, raw
// strings must never produce findings).
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lexer.h"
#include "rules.h"

namespace {

using vela::lint::Finding;
using vela::lint::lint_file;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string fixture_path(const std::string& name) {
  return std::string(VELA_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<Finding> lint_fixture(const std::string& name) {
  const std::string path = fixture_path(name);
  return lint_file(path, read_file(path));
}

// Findings for `rule`, keyed by line, suppressed excluded.
std::set<std::size_t> unsuppressed_lines(const std::vector<Finding>& findings,
                                         const std::string& rule) {
  std::set<std::size_t> lines;
  for (const Finding& f : findings) {
    if (f.rule == rule && !f.suppressed) lines.insert(f.line);
  }
  return lines;
}

TEST(VelaLintFixtures, DetectsEverySeededViolation) {
  const auto findings = lint_fixture("violations.cc");
  EXPECT_EQ(unsuppressed_lines(findings, "unordered-iteration"),
            (std::set<std::size_t>{17}));
  EXPECT_EQ(unsuppressed_lines(findings, "naked-new"),
            (std::set<std::size_t>{23, 24}));
  EXPECT_EQ(unsuppressed_lines(findings, "wire-memcpy"),
            (std::set<std::size_t>{34}));
  EXPECT_EQ(unsuppressed_lines(findings, "manual-lock"),
            (std::set<std::size_t>{38, 39}));
  EXPECT_EQ(unsuppressed_lines(findings, "float-equality"),
            (std::set<std::size_t>{43}));
  EXPECT_EQ(unsuppressed_lines(findings, "direct-transport"),
            (std::set<std::size_t>{53, 54, 55}));
}

TEST(VelaLintFixtures, NodiscardWireOnHeaders) {
  const auto findings = lint_fixture("wire_header.h");
  EXPECT_EQ(unsuppressed_lines(findings, "nodiscard-wire"),
            (std::set<std::size_t>{14}));
  // The suppressed checksum_ok declaration is reported but downgraded.
  bool saw_suppressed = false;
  for (const Finding& f : findings) {
    if (f.rule == "nodiscard-wire" && f.suppressed && f.line == 15) {
      saw_suppressed = true;
    }
  }
  EXPECT_TRUE(saw_suppressed);
}

TEST(VelaLintFixtures, SuppressionsDowngradeEveryRule) {
  const auto findings = lint_fixture("suppressed.cc");
  std::size_t suppressed = 0;
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.suppressed) << f.file << ":" << f.line << " [" << f.rule
                              << "] " << f.message;
    ++suppressed;
  }
  // One per rule demonstrated: unordered-iteration, 2× naked-new,
  // wire-memcpy, 2× manual-lock, float-equality, direct-transport.
  EXPECT_EQ(suppressed, 8u);
}

TEST(VelaLintFixtures, CleanFixtureHasNoUnsuppressedFindings) {
  for (const Finding& f : lint_fixture("clean.cc")) {
    EXPECT_TRUE(f.suppressed) << f.file << ":" << f.line << " [" << f.rule
                              << "] " << f.message;
  }
}

TEST(VelaLintRules, IncludeHygieneFlagsCppIncludes) {
  const std::string src =
      "#include \"comm/message.h\"\n"
      "#include \"comm/frame.cpp\"\n"
      "  #  include <impl/detail.cc>\n"
      "#include \"tensor/qgemm.cxx\"\n";
  EXPECT_EQ(unsuppressed_lines(lint_file("src/foo.cpp", src),
                               "include-hygiene"),
            (std::set<std::size_t>{2, 3, 4}));
}

TEST(VelaLintRules, IncludeHygieneCleanOnHeadersAndSuppressible) {
  const std::string clean =
      "#include \"comm/message.h\"\n"
      "#include <vector>\n"
      "// mentions frame.cpp in a comment only\n";
  EXPECT_TRUE(lint_file("src/foo.cpp", clean).empty());
  const std::string suppressed =
      "// vela-lint: allow(include-hygiene) generated amalgamation build\n"
      "#include \"one_big_tu.cpp\"\n";
  for (const Finding& f : lint_file("src/foo.cpp", suppressed)) {
    EXPECT_TRUE(f.suppressed);
  }
}

TEST(VelaLintLexer, CommentsAndStringsProduceNoFindings) {
  const std::string src = R"src(
// for (auto& kv : some_unordered_map_in_a_comment) {}
// int* p = new int; m.lock();
const char* text = "new delete memcpy(.lock() == 0.0f";
const char* raw = R"x(for (auto& kv : pending_) {} new int)x";
)src";
  EXPECT_TRUE(lint_file("sample.cpp", src).empty());
}

TEST(VelaLintLexer, FloatLiteralClassification) {
  EXPECT_TRUE(vela::lint::is_float_literal("1.0"));
  EXPECT_TRUE(vela::lint::is_float_literal("0.5f"));
  EXPECT_TRUE(vela::lint::is_float_literal("1e-3"));
  EXPECT_TRUE(vela::lint::is_float_literal("3F"));
  EXPECT_FALSE(vela::lint::is_float_literal("42"));
  EXPECT_FALSE(vela::lint::is_float_literal("0xFF"));  // hex digits, not float
  EXPECT_FALSE(vela::lint::is_float_literal("16u"));
}

TEST(VelaLintRules, UnorderedAliasOneLevel) {
  const std::string src = R"src(
#include <unordered_map>
using Ledger = std::unordered_map<int, long>;
void emit(const Ledger& ledger) {
  for (const auto& [k, v] : ledger) { (void)k; (void)v; }
}
)src";
  const auto findings = lint_file("alias.cpp", src);
  ASSERT_EQ(unsuppressed_lines(findings, "unordered-iteration").size(), 1u);
}

TEST(VelaLintRules, OrderedMapNotFlagged) {
  const std::string src = R"src(
#include <map>
void emit(const std::map<int, long>& ledger) {
  for (const auto& [k, v] : ledger) { (void)k; (void)v; }
}
)src";
  EXPECT_TRUE(lint_file("ordered.cpp", src).empty());
}

TEST(VelaLintRules, FloatEqualitySkipsTestFiles) {
  const std::string src = "bool b = (x == 1.5f);\n";
  EXPECT_FALSE(lint_file("src/core/foo.cpp", src).empty());
  EXPECT_TRUE(lint_file("tests/test_foo.cpp", src).empty());
  EXPECT_TRUE(lint_file("test_bar.cpp", src).empty());
}

TEST(VelaLintRules, MemcpyWithAdjacentAssertsClean) {
  const std::string src = R"src(
#include <cstring>
struct H { unsigned id; };
static_assert(std::is_trivially_copyable_v<H>);
static_assert(sizeof(H) == 4);
void pack(unsigned char* out, const H& h) { std::memcpy(out, &h, sizeof(h)); }
)src";
  EXPECT_TRUE(lint_file("wire.cpp", src).empty());
}

TEST(VelaLintRules, MemcpyMissingSizeAssertStillFlagged) {
  const std::string src = R"src(
#include <cstring>
struct H { unsigned id; };
static_assert(std::is_trivially_copyable_v<H>);
void pack(unsigned char* out, const H& h) { std::memcpy(out, &h, 4); }
)src";
  const auto findings = lint_file("wire.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wire-memcpy");
  EXPECT_NE(findings[0].message.find("sizeof-based"), std::string::npos);
}

TEST(VelaLintRules, MemcpyOfPrimitiveElementsExempt) {
  // Bulk element copies and float<->bits casts are sized in terms of
  // builtin types — no struct layout to drift, no asserts required.
  const std::string src = R"src(
#include <cstring>
void bulk(float* dst, const float* src_p, unsigned long n) {
  std::memcpy(dst, src_p, n * sizeof(float));
}
unsigned int bits_of(float v) {
  unsigned int b;
  std::memcpy(&b, &v, sizeof(unsigned int));
  return b;
}
)src";
  EXPECT_TRUE(lint_file("bulk.cpp", src).empty());
}

TEST(VelaLintRules, DeletedSpecialMembersNotFlagged) {
  const std::string src = R"src(
struct NoCopy {
  NoCopy(const NoCopy&) = delete;
  NoCopy& operator=(const NoCopy&) = delete;
};
void* operator new(unsigned long);
)src";
  EXPECT_TRUE(lint_file("special.cpp", src).empty());
}

TEST(VelaLintRules, SuppressionOnPrecedingLineCovers) {
  const std::string src =
      "// vela-lint: allow(naked-new)\n"
      "int* p = new int;\n"
      "int* q = new int;\n";
  const auto findings = lint_file("supp.cpp", src);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_FALSE(findings[1].suppressed);
}

TEST(VelaLintRules, DirectTransportScopedToNonFabricCode) {
  const std::string construction = R"src(
namespace comm { struct Endpoint {}; }
void hand_roll() { comm::Endpoint ep{}; }
)src";
  // A runtime file is flagged; the fabric layer and test files are exempt.
  EXPECT_EQ(
      unsuppressed_lines(lint_file("src/core/master.cpp", construction),
                         "direct-transport")
          .size(),
      1u);
  EXPECT_TRUE(lint_file("src/comm/endpoint.cpp", construction).empty());
  EXPECT_TRUE(lint_file("tests/test_transport.cpp", construction).empty());
}

TEST(VelaLintRules, DirectTransportAllowsFactoriesAndViews) {
  const std::string src = R"src(
#include <memory>
namespace comm {
struct Endpoint;
struct DuplexLink;
std::unique_ptr<comm::Endpoint> make_endpoint(int, int);
}  // namespace comm
void wire(comm::Endpoint* ep, const comm::DuplexLink& link) {
  auto owned = comm::make_endpoint(0, 1);
  (void)ep; (void)link; (void)owned;
}
)src";
  EXPECT_TRUE(lint_file("src/core/master.cpp", src).empty());
}

TEST(VelaLintRules, NakedClockScopedToCommAndCore) {
  const std::string now_read = R"src(
#include <chrono>
void backoff() {
  auto t = std::chrono::steady_clock::now();
  (void)t;
}
)src";
  // Flagged inside the clock-injected layers; everywhere else raw time is
  // fine (the bench harness times real work on purpose).
  EXPECT_EQ(unsuppressed_lines(lint_file("src/comm/transport.cpp", now_read),
                               "naked-clock")
                .size(),
            1u);
  EXPECT_EQ(unsuppressed_lines(
                lint_file("src/core/fault_tolerance.cpp", now_read),
                "naked-clock")
                .size(),
            1u);
  EXPECT_TRUE(lint_file("src/util/clock.cpp", now_read).empty());
  EXPECT_TRUE(lint_file("bench/bench_fault_tolerance.cpp", now_read).empty());
  EXPECT_TRUE(lint_file("tests/test_liveness.cpp", now_read).empty());
}

TEST(VelaLintRules, NakedClockCatchesRawSleeps) {
  const std::string sleeper = R"src(
#include <chrono>
#include <thread>
void retry_pause() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}
)src";
  const auto findings = lint_file("src/core/master.cpp", sleeper);
  ASSERT_EQ(unsuppressed_lines(findings, "naked-clock").size(), 1u);
  // The injected-clock equivalents are exactly what the rule points at.
  const std::string clean = R"src(
#include "util/clock.h"
void retry_pause(vela::util::Clock* clock) {
  clock->sleep_for(std::chrono::milliseconds(5));
}
)src";
  EXPECT_TRUE(lint_file("src/core/master.cpp", clean).empty());
}

TEST(VelaLintRules, NakedClockSuppressibleWithRationale) {
  const std::string src =
      "// OS poll budget, the injection point itself.\n"
      "// vela-lint: allow(naked-clock)\n"
      "auto t = std::chrono::steady_clock::now();\n";
  const auto findings = lint_file("src/comm/transport.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
}

TEST(VelaLintFixtures, QuantBufferSeededViolations) {
  // quant.cc lives in its own fixture so the violations.cc line pins above
  // never shift: reinterpret_cast of q.codes (12) and memcpy of q.scales
  // (13) are flagged; the allow()'d checkpoint shim (20) is downgraded.
  const auto findings = lint_fixture("quant.cc");
  EXPECT_EQ(unsuppressed_lines(findings, "quant-buffer"),
            (std::set<std::size_t>{12, 13}));
  bool saw_suppressed = false;
  for (const Finding& f : findings) {
    if (f.rule == "quant-buffer" && f.suppressed && f.line == 20) {
      saw_suppressed = true;
    }
  }
  EXPECT_TRUE(saw_suppressed);
}

TEST(VelaLintRules, QuantBufferScopedToNonCodecCode) {
  const std::string src = R"src(
#include <cstring>
void spill(unsigned char* out, const signed char* q8_codes, unsigned long n) {
  std::memcpy(out, q8_codes, n * sizeof(char));
}
)src";
  // The codec layers own the byte layout; tests may poke it freely; any
  // other layer is a third private copy of the format.
  EXPECT_EQ(unsuppressed_lines(lint_file("src/nn/linear.cpp", src),
                               "quant-buffer")
                .size(),
            1u);
  EXPECT_TRUE(lint_file("src/tensor/qblock.cpp", src).empty());
  EXPECT_TRUE(lint_file("src/comm/serialize.cpp", src).empty());
  EXPECT_TRUE(lint_file("tests/test_qblock.cpp", src).empty());
}

TEST(VelaLintRules, QuantBufferIgnoresUnrelatedCopies) {
  // memcpy/reinterpret_cast with no quant-buffer identifier in the call's
  // extent stays the business of the wire-memcpy rule only.
  const std::string src = R"src(
#include <cstring>
void bulk(float* dst, const float* src_p, unsigned long n) {
  std::memcpy(dst, src_p, n * sizeof(float));
}
unsigned char* view(float* p) { return reinterpret_cast<unsigned char*>(p); }
)src";
  EXPECT_TRUE(lint_file("src/nn/linear.cpp", src).empty());
}

TEST(VelaLintRules, QuantBufferCatchesCastTemplateArguments) {
  // The quant identifier may appear only in the cast's TEMPLATE argument
  // (casting a raw wire pointer to a quant-block struct type).
  const std::string src = R"src(
struct Q8Block;
const Q8Block* peek(const unsigned char* wire) {
  return reinterpret_cast<const Q8Block*>(wire);
}
)src";
  EXPECT_EQ(unsuppressed_lines(lint_file("src/ep/runtime.cpp", src),
                               "quant-buffer")
                .size(),
            1u);
}

TEST(VelaLintFixtures, RawFileIoSeededViolations) {
  // The rule scopes to production src/ paths, so the fixture source is
  // linted under a synthetic one: streams (10, 11), fopen (12), global
  // ::open (14), and the mmap family (15-17) are flagged; the allow()'d
  // legacy shim (22) is downgraded.
  const std::string src = read_file(fixture_path("fileio.cc"));
  const auto findings = lint_file("src/moe/fileio.cc", src);
  EXPECT_EQ(unsuppressed_lines(findings, "raw-file-io"),
            (std::set<std::size_t>{10, 11, 12, 14, 15, 16, 17}));
  bool saw_suppressed = false;
  for (const Finding& f : findings) {
    if (f.rule == "raw-file-io" && f.suppressed && f.line == 22) {
      saw_suppressed = true;
    }
  }
  EXPECT_TRUE(saw_suppressed);
}

TEST(VelaLintRules, RawFileIoScopedToNonStoreSrc) {
  const std::string src = R"src(
#include <fstream>
void dump(const char* path) { std::ofstream out(path); (void)out; }
)src";
  // The store and util layers own the file seams; tests, bench harnesses,
  // and tools are out of scope entirely.
  EXPECT_EQ(unsuppressed_lines(lint_file("src/moe/trace.cpp", src),
                               "raw-file-io")
                .size(),
            1u);
  EXPECT_TRUE(lint_file("src/store/disk_table.cpp", src).empty());
  EXPECT_TRUE(lint_file("src/util/csv.h", src).empty());
  EXPECT_TRUE(lint_file("tests/test_offload.cpp", src).empty());
  EXPECT_TRUE(lint_file("bench/bench_micro.cpp", src).empty());
  EXPECT_TRUE(lint_file("tools/vela_launch.cpp", src).empty());
}

TEST(VelaLintRules, RawFileIoIgnoresMembersAndIncludes) {
  // `stream.open(...)` is someone else's API, `#include <fstream>` names a
  // header, and a namespace-qualified open() is not the POSIX call.
  const std::string src = R"src(
#include <fstream>
struct Table { void open(const char* p); };
void use(Table& t, const char* p) {
  t.open(p);
  Table* tp = &t;
  tp->open(p);
  io::open(p);
}
)src";
  EXPECT_TRUE(lint_file("src/core/master.cpp", src).empty());
}

TEST(VelaLintRules, AllRulesListedAndStable) {
  const auto& rules = vela::lint::all_rules();
  EXPECT_EQ(rules.size(), 11u);
  const std::set<std::string> expected = {
      "unordered-iteration", "naked-new",      "wire-memcpy",
      "manual-lock",         "float-equality", "nodiscard-wire",
      "direct-transport",    "naked-clock",    "quant-buffer",
      "raw-file-io",         "include-hygiene"};
  EXPECT_EQ(std::set<std::string>(rules.begin(), rules.end()), expected);
}

}  // namespace
