// Token-level C++ lexer for vela_lint.
//
// This is not a compiler front end: it produces a flat token stream with
// line numbers, skipping comments and the interiors of string/char literals
// (both of which routinely contain text that looks like code). That is
// exactly the right altitude for the repo-specific hazard patterns the
// linter checks — every rule is a short token-pattern match, so the linter
// stays dependency-free, fast, and auditable.
//
// Suppression comments are the one piece of comment content the lexer keeps:
// a comment containing `vela-lint: allow(rule-a, rule-b)` records those rule
// names against the comment's line, and a finding is suppressed when its
// line or the line directly above carries a matching allowance.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace vela::lint {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords (the rules tell them apart)
  kNumber,      // integer or floating literal, suffix included
  kString,      // string literal (text is the raw spelling, quotes included)
  kChar,        // character literal
  kPunct,       // operators and punctuation, longest-match ("==", "->", ...)
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t line;  // 1-based
};

struct LexResult {
  std::vector<Token> tokens;
  // line -> rule names allowed on that line via `vela-lint: allow(...)`.
  std::map<std::size_t, std::set<std::string>> allowances;
};

// Lexes one translation unit worth of source text. Never throws: malformed
// trailing constructs (unterminated literals/comments) lex to end-of-input.
LexResult lex(const std::string& source);

// True when a floating-point literal: has a '.', a p/P or (non-hex) e/E
// exponent, or an f/F suffix on a decimal literal.
bool is_float_literal(const std::string& number_text);

}  // namespace vela::lint
