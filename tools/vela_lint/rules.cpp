#include "rules.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "lexer.h"

namespace vela::lint {
namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool is_header(const std::string& path) {
  return ends_with(path, ".h") || ends_with(path, ".hpp");
}

bool is_tok(const Token& t, const char* text) { return t.text == text; }

// Keywords that can directly precede a call expression; a candidate function
// name preceded by one of these is a use, not a declaration.
bool is_expression_keyword(const std::string& t) {
  static const std::set<std::string> kKeywords = {
      "return", "co_return", "co_await", "co_yield", "throw", "case",
      "sizeof", "typeid",    "not",      "else",     "do",    "goto",
  };
  return kKeywords.count(t) > 0;
}

// --- shared token-walking helpers -----------------------------------------

// Index of the matching closer for the opener at `open` ('<'/'>', '('/')').
// Returns tokens.size() when unbalanced. Treats ">>" as two closers when
// matching angle brackets.
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const char* opener, const char* closer) {
  int depth = 0;
  const bool angles = opener[0] == '<';
  for (std::size_t i = open; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == opener) {
      ++depth;
    } else if (t == closer) {
      if (--depth == 0) return i;
    } else if (angles && t == ">>") {
      depth -= 2;
      if (depth <= 0) return i;
    } else if (angles && (t == ";" || t == "{")) {
      return toks.size();  // not a template argument list after all
    }
  }
  return toks.size();
}

// --- rule: unordered-iteration --------------------------------------------

// Collects names of variables declared with an unordered container type,
// including one level of `using Alias = std::unordered_map<...>` indirection,
// then flags any range-for whose range expression names one of them.
void rule_unordered_iteration(const std::string& path,
                              const std::vector<Token>& toks,
                              std::vector<Finding>* findings) {
  std::set<std::string> unordered_vars;
  std::set<std::string> unordered_type_aliases;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const bool base_type = toks[i].kind == TokenKind::kIdentifier &&
                           (toks[i].text == "unordered_map" ||
                            toks[i].text == "unordered_set" ||
                            toks[i].text == "unordered_multimap" ||
                            toks[i].text == "unordered_multiset");
    const bool alias_type = toks[i].kind == TokenKind::kIdentifier &&
                            unordered_type_aliases.count(toks[i].text) > 0;
    if (!base_type && !alias_type) continue;

    // `using Alias = std::unordered_map<...>` records the alias (the
    // namespace qualifier is optional).
    std::size_t eq = i;
    if (eq >= 2 && is_tok(toks[eq - 1], "::")) eq -= 2;
    if (eq >= 3 && is_tok(toks[eq - 1], "=") && is_tok(toks[eq - 3], "using") &&
        toks[eq - 2].kind == TokenKind::kIdentifier) {
      unordered_type_aliases.insert(toks[eq - 2].text);
      continue;
    }

    // Skip the template argument list, if any.
    std::size_t j = i + 1;
    if (base_type) {
      if (j >= toks.size() || !is_tok(toks[j], "<")) continue;
      j = match_forward(toks, j, "<", ">");
      if (j >= toks.size()) continue;
      ++j;
    }
    // `Type::iterator`, `Type(`... are not variable declarations.
    while (j < toks.size() &&
           (is_tok(toks[j], "&") || is_tok(toks[j], "*") ||
            (toks[j].kind == TokenKind::kIdentifier &&
             toks[j].text == "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier &&
        !is_expression_keyword(toks[j].text) &&
        (j + 1 >= toks.size() || !is_tok(toks[j + 1], "("))) {
      unordered_vars.insert(toks[j].text);
    }
  }

  if (unordered_vars.empty()) return;

  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!(toks[i].kind == TokenKind::kIdentifier && toks[i].text == "for"))
      continue;
    if (!is_tok(toks[i + 1], "(")) continue;
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close >= toks.size()) continue;
    // Find the range-for colon at paren depth 1.
    std::size_t colon = toks.size();
    int depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (is_tok(toks[j], "(")) ++depth;
      if (is_tok(toks[j], ")")) --depth;
      if (depth == 1 && is_tok(toks[j], ":")) {
        colon = j;
        break;
      }
      if (depth == 1 && is_tok(toks[j], ";")) break;  // classic for
    }
    if (colon >= toks.size()) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind == TokenKind::kIdentifier &&
          unordered_vars.count(toks[j].text) > 0) {
        findings->push_back(
            {"unordered-iteration", path, toks[j].line,
             "range-for over unordered container '" + toks[j].text +
                 "': iteration order is implementation-defined — sort keys "
                 "before feeding ledgers, CSV emitters, or serialized "
                 "payloads"});
        break;
      }
    }
  }
}

// --- rule: naked-new -------------------------------------------------------

void rule_naked_new(const std::string& path, const std::vector<Token>& toks,
                    std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    const std::string& t = toks[i].text;
    if (t != "new" && t != "delete") continue;
    const std::string prev = i > 0 ? toks[i - 1].text : "";
    if (prev == "operator") continue;  // operator new/delete declarations
    if (t == "delete" && prev == "=") continue;  // deleted special members
    findings->push_back(
        {"naked-new", path, toks[i].line,
         "naked '" + t +
             "': ownership must go through std::unique_ptr / std::make_* / "
             "containers"});
  }
}

// --- rule: wire-memcpy -----------------------------------------------------

// Fundamental types whose layout cannot drift: a memcpy sized in terms of
// `sizeof(<builtin>)` is a bulk element copy (or a float<->bits cast), not a
// struct-layout dependency, and is exempt.
bool is_builtin_type_name(const std::string& t) {
  static const std::set<std::string> kBuiltins = {
      "float",    "double",   "char",     "short",    "int",      "long",
      "bool",     "unsigned", "signed",   "size_t",   "wchar_t",  "char8_t",
      "char16_t", "char32_t", "int8_t",   "int16_t",  "int32_t",  "int64_t",
      "uint8_t",  "uint16_t", "uint32_t", "uint64_t", "intptr_t", "uintptr_t",
      "ptrdiff_t"};
  return kBuiltins.count(t) > 0;
}

// True when the token range [begin, end) contains `sizeof(<builtin>)`.
bool has_builtin_sizeof(const std::vector<Token>& toks, std::size_t begin,
                        std::size_t end) {
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (!(toks[i].kind == TokenKind::kIdentifier && toks[i].text == "sizeof"))
      continue;
    if (i + 1 >= toks.size() || !is_tok(toks[i + 1], "(")) continue;
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    for (std::size_t j = i + 2; j < close && j < toks.size(); ++j) {
      if (toks[j].kind == TokenKind::kIdentifier &&
          is_builtin_type_name(toks[j].text)) {
        return true;
      }
    }
  }
  return false;
}

// Every struct-sized memcpy needs a
// static_assert(std::is_trivially_copyable_v<...>) and a sizeof-based
// static_assert within the surrounding 40 lines (10 after) — close enough
// that layout drift and the copy that depends on it are reviewed together.
void rule_wire_memcpy(const std::string& path, const std::vector<Token>& toks,
                      std::vector<Finding>* findings) {
  struct AssertInfo {
    std::size_t line;
    bool trivially_copyable = false;
    bool size = false;
  };
  std::vector<AssertInfo> asserts;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!(toks[i].kind == TokenKind::kIdentifier &&
          toks[i].text == "static_assert")) {
      continue;
    }
    if (i + 1 >= toks.size() || !is_tok(toks[i + 1], "(")) continue;
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    AssertInfo info{toks[i].line, false, false};
    for (std::size_t j = i + 2; j < close && j < toks.size(); ++j) {
      if (toks[j].kind != TokenKind::kIdentifier) continue;
      if (toks[j].text.find("is_trivially_copyable") != std::string::npos)
        info.trivially_copyable = true;
      if (toks[j].text == "sizeof") info.size = true;
    }
    asserts.push_back(info);
  }

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!(toks[i].kind == TokenKind::kIdentifier &&
          toks[i].text == "memcpy")) {
      continue;
    }
    if (i + 1 >= toks.size() || !is_tok(toks[i + 1], "(")) continue;
    const std::size_t call_close = match_forward(toks, i + 1, "(", ")");
    if (has_builtin_sizeof(toks, i + 2, call_close)) continue;
    const std::size_t line = toks[i].line;
    bool has_tc = false;
    bool has_size = false;
    for (const AssertInfo& a : asserts) {
      // Assert may sit up to 40 lines above the memcpy or 10 lines below it.
      const bool adjacent = a.line + 40 >= line && a.line <= line + 10;
      if (!adjacent) continue;
      has_tc = has_tc || a.trivially_copyable;
      has_size = has_size || a.size;
    }
    if (has_tc && has_size) continue;
    std::string missing;
    if (!has_tc) missing = "static_assert(std::is_trivially_copyable_v<...>)";
    if (!has_size) {
      if (!missing.empty()) missing += " and ";
      missing += "a sizeof-based size static_assert";
    }
    findings->push_back(
        {"wire-memcpy", path, line,
         "memcpy without adjacent " + missing +
             " — wire/struct layout drift must break the build, not the "
             "protocol"});
  }
}

// --- rule: manual-lock -----------------------------------------------------

void rule_manual_lock(const std::string& path, const std::vector<Token>& toks,
                      std::vector<Finding>* findings) {
  for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    const std::string& t = toks[i].text;
    if (t != "lock" && t != "unlock") continue;
    const std::string& prev = toks[i - 1].text;
    if (prev != "." && prev != "->") continue;
    if (!is_tok(toks[i + 1], "(")) continue;
    findings->push_back(
        {"manual-lock", path, toks[i].line,
         "direct ." + t +
             "() call: lock discipline is RAII-only (std::lock_guard / "
             "std::unique_lock / std::scoped_lock)"});
  }
}

// --- rule: float-equality --------------------------------------------------

void rule_float_equality(const std::string& path,
                         const std::vector<Token>& toks,
                         std::vector<Finding>* findings) {
  if (is_test_file(path)) return;  // tests pin bit-exactness on purpose
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text != "==" && toks[i].text != "!=") continue;
    const Token& lhs = toks[i - 1];
    // A signed literal lexes as a sign punct plus a number.
    std::size_t r = i + 1;
    if ((is_tok(toks[r], "-") || is_tok(toks[r], "+")) && r + 1 < toks.size())
      ++r;
    const Token& rhs = toks[r];
    const bool lhs_float =
        lhs.kind == TokenKind::kNumber && is_float_literal(lhs.text);
    const bool rhs_float =
        rhs.kind == TokenKind::kNumber && is_float_literal(rhs.text);
    if (!lhs_float && !rhs_float) continue;
    findings->push_back(
        {"float-equality", path, toks[i].line,
         "'" + toks[i].text +
             "' against a floating-point literal outside tests: compare "
             "against a tolerance, or restructure to avoid exact float "
             "comparison"});
  }
}

// --- rule: nodiscard-wire --------------------------------------------------

bool is_wire_function_name(const std::string& name) {
  if (name == "wire_size" || name == "wire_bytes") return true;
  return name.find("checksum") != std::string::npos;
}

// Token texts that may appear inside a declaration's specifier/return-type
// span when walking backwards from the function name.
bool is_decl_span_token(const Token& t) {
  if (t.kind == TokenKind::kIdentifier) return true;
  static const std::set<std::string> kPunct = {"::", "<", ">", ">>", "&",
                                               "*",  ",", "[[", "]]"};
  return kPunct.count(t.text) > 0;
}

void rule_nodiscard_wire(const std::string& path,
                         const std::vector<Token>& toks,
                         std::vector<Finding>* findings) {
  if (!is_header(path)) return;  // the attribute belongs on declarations
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    if (!is_wire_function_name(toks[i].text)) continue;
    if (!is_tok(toks[i + 1], "(")) continue;
    const Token& prev = toks[i - 1];
    // A declaration has its return type directly before the name; calls are
    // preceded by ./->/(/operators/expression keywords instead.
    const bool preceded_by_type =
        (prev.kind == TokenKind::kIdentifier &&
         !is_expression_keyword(prev.text)) ||
        prev.text == ">" || prev.text == "&" || prev.text == "*" ||
        prev.text == "]]" || prev.text == "::";
    if (!preceded_by_type) continue;
    if (prev.text == "::") continue;  // out-of-line definition
    // Walk the specifier/return-type span backwards; [[nodiscard]] anywhere
    // in it (or `void`, which has nothing to discard) satisfies the rule.
    bool ok = false;
    for (std::size_t j = i; j-- > 0;) {
      if (!is_decl_span_token(toks[j])) break;
      if (toks[j].text == "nodiscard") ok = true;
      if (toks[j].text == "void") ok = true;
    }
    if (ok) continue;
    findings->push_back(
        {"nodiscard-wire", path, toks[i].line,
         "'" + toks[i].text +
             "' declaration missing [[nodiscard]]: dropping wire-size or "
             "checksum results silently corrupts byte accounting"});
  }
}

// --- rule: direct-transport ------------------------------------------------

// Comm-fabric primitives a runtime must not construct by hand. Construction
// goes through comm::make_endpoint / comm::make_duplex_link (or a config's
// TransportKind), which is what keeps traffic attribution inside Endpoint
// and the backend swappable via VELA_TRANSPORT (DESIGN.md §10).
bool is_fabric_type(const std::string& name) {
  return name == "Channel" || name == "Endpoint" || name == "DuplexLink" ||
         name == "BlockingQueue" || name == "InProcTransport" ||
         name == "SocketTransport" || name == "RemoteSocketTransport" ||
         name == "PeerListener";
}

void rule_direct_transport(const std::string& path,
                           const std::vector<Token>& toks,
                           std::vector<Finding>* findings) {
  // The fabric layer constructs its own primitives; the queue header defines
  // one; fabric tests construct backends directly on purpose (same carve-out
  // as float-equality). Everyone else needs an allow() rationale.
  if (path.find("src/comm/") != std::string::npos) return;
  if (ends_with(path, "util/blocking_queue.h")) return;
  if (is_test_file(path)) return;
  const std::string advice =
      " outside src/comm: construct through comm::make_endpoint / "
      "comm::make_duplex_link (or a config's TransportKind) so traffic "
      "attribution and backend selection stay inside the fabric";
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        !is_fabric_type(toks[i].text)) {
      continue;
    }
    const std::string& type = toks[i].text;
    if (i > 0) {
      const std::string& prev = toks[i - 1].text;
      // The type's own declarations and destructors are not constructions.
      if (prev == "class" || prev == "struct" || prev == "friend" ||
          prev == "~") {
        continue;
      }
      // `new Endpoint(...)` / `make_unique<Endpoint>(...)` heap construction.
      if (prev == "new" ||
          (prev == "<" && i >= 2 && toks[i - 2].text == "make_unique")) {
        findings->push_back({"direct-transport", path, toks[i].line,
                             "heap-constructed " + type + advice});
        continue;
      }
      // Any other template-argument position is a use, not a construction
      // (`std::unique_ptr<Endpoint>`, `std::vector<DuplexLink>`).
      if (prev == "<" || prev == ",") continue;
    }
    std::size_t j = i + 1;
    if (j < toks.size() && is_tok(toks[j], "<")) {
      j = match_forward(toks, j, "<", ">");
      if (j >= toks.size()) continue;
      ++j;
    }
    if (j >= toks.size()) continue;
    // Pointer, reference and nested-name uses are fine.
    if (is_tok(toks[j], "*") || is_tok(toks[j], "&") || is_tok(toks[j], "::"))
      continue;
    // `Endpoint ep(...)` / `... ep{...}` / `... ep;` / `... ep = ...` stack
    // declarations, and `Endpoint(...)` / `Endpoint{...}` temporaries.
    const bool named_decl =
        toks[j].kind == TokenKind::kIdentifier &&
        !is_expression_keyword(toks[j].text) && j + 1 < toks.size() &&
        (is_tok(toks[j + 1], "(") || is_tok(toks[j + 1], "{") ||
         is_tok(toks[j + 1], ";") || is_tok(toks[j + 1], "="));
    const bool temporary = is_tok(toks[j], "(") || is_tok(toks[j], "{");
    if (!named_decl && !temporary) continue;
    findings->push_back({"direct-transport", path, toks[i].line,
                         "direct construction of " + type + advice});
  }
}

// --- rule: naked-clock -----------------------------------------------------

// Timing in the comm/core layers (retry deadlines, reconnect backoff,
// heartbeat scheduling) must flow through the injectable util::Clock so
// tests resolve timeout schedules in virtual time (DESIGN.md §11). A raw
// std::chrono clock read or this_thread sleep bypasses that injection point
// and turns every timeout test into a wall-clock test. OS-level wait budgets
// (poll timeouts etc.) are legitimately real-time — suppress those with a
// `vela-lint: allow(naked-clock)` rationale.
bool is_raw_clock_type(const std::string& t) {
  return t == "steady_clock" || t == "system_clock" ||
         t == "high_resolution_clock";
}

void rule_naked_clock(const std::string& path, const std::vector<Token>& toks,
                      std::vector<Finding>* findings) {
  const bool scoped = path.find("src/comm/") != std::string::npos ||
                      path.find("src/core/") != std::string::npos;
  if (!scoped || is_test_file(path)) return;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    // `steady_clock::now(` — raw time reads.
    if (is_raw_clock_type(toks[i].text) && is_tok(toks[i + 1], "::") &&
        toks[i + 2].text == "now" && is_tok(toks[i + 3], "(")) {
      findings->push_back(
          {"naked-clock", path, toks[i + 2].line,
           "raw std::chrono::" + toks[i].text +
               "::now() in comm/core: read time through the injected "
               "util::Clock (clock_->now()) so timeout and backoff schedules "
               "run in virtual time under test"});
      continue;
    }
    // `this_thread::sleep_for(` / `sleep_until(` — raw blocking sleeps.
    if (toks[i].text == "this_thread" && is_tok(toks[i + 1], "::") &&
        (toks[i + 2].text == "sleep_for" ||
         toks[i + 2].text == "sleep_until") &&
        is_tok(toks[i + 3], "(")) {
      findings->push_back(
          {"naked-clock", path, toks[i + 2].line,
           "raw std::this_thread::" + toks[i + 2].text +
               "() in comm/core: sleep through the injected util::Clock "
               "(sleep_for / wait_slice) so retry loops are testable in "
               "virtual time"});
    }
  }
}

// --- rule: quant-buffer ----------------------------------------------------

// Identifiers that by repo convention name quantized-block storage: the int8
// code runs and per-block fp32 scales of tensor/qblock.h, and anything
// q8/quant-prefixed that wraps them.
bool names_quant_buffer(const std::string& t) {
  if (t == "codes" || t == "scales") return true;
  std::string lower;
  lower.reserve(t.size());
  for (char c : t) {
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return lower.find("q8") != std::string::npos ||
         lower.find("qblock") != std::string::npos ||
         lower.find("quant") != std::string::npos;
}

// The q8 block layout (DESIGN.md §13) has exactly two byte-level owners: the
// codec in src/tensor and the wire formats in src/comm. A reinterpret_cast
// or memcpy whose argument range touches a quant-buffer identifier anywhere
// else is a third private copy of the layout — it goes through
// qblock::quantize/dequantize, or carries an allow() rationale.
void rule_quant_buffer(const std::string& path, const std::vector<Token>& toks,
                       std::vector<Finding>* findings) {
  if (path.find("src/tensor/") != std::string::npos) return;
  if (path.find("src/comm/") != std::string::npos) return;
  if (is_test_file(path)) return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    const bool cast = toks[i].text == "reinterpret_cast";
    const bool copy = toks[i].text == "memcpy";
    if (!cast && !copy) continue;
    // The flagged extent is the whole call: template arguments (for the
    // cast) plus the parenthesized argument list.
    std::size_t j = i + 1;
    if (cast && j < toks.size() && is_tok(toks[j], "<")) {
      j = match_forward(toks, j, "<", ">");
      if (j >= toks.size()) continue;
      ++j;
    }
    if (j >= toks.size() || !is_tok(toks[j], "(")) continue;
    const std::size_t close = match_forward(toks, j, "(", ")");
    for (std::size_t k = i + 1; k < close && k < toks.size(); ++k) {
      if (toks[k].kind == TokenKind::kIdentifier &&
          names_quant_buffer(toks[k].text)) {
        findings->push_back(
            {"quant-buffer", path, toks[i].line,
             std::string(cast ? "reinterpret_cast" : "memcpy") +
                 " over quantized block buffer '" + toks[k].text +
                 "' outside the codec layers: q8 codes/scales have exactly "
                 "two byte-layout owners (src/tensor, src/comm) — go "
                 "through qblock::quantize/dequantize instead"});
        break;
      }
    }
  }
}

// --- rule: raw-file-io -----------------------------------------------------

// On-disk bytes have exactly two legitimate owners inside src/: the store
// layer (paged expert tables, checkpoint tensor files — DESIGN.md §15) and
// util's emitters (CSV, logging). Raw file access anywhere else grows a
// private on-disk format with no torn-write or checksum discipline and no
// fault-injection seam; it goes through store::DiskTable / the store tensor
// files / a util emitter, or carries an allow() rationale. Tests, bench
// harnesses, and tools read and write files freely.
bool is_stream_type_name(const std::string& t) {
  return t == "ifstream" || t == "ofstream" || t == "fstream" ||
         t == "basic_ifstream" || t == "basic_ofstream" ||
         t == "basic_fstream";
}

bool is_posix_file_call(const std::string& t) {
  return t == "fopen" || t == "freopen" || t == "fdopen" || t == "mmap" ||
         t == "munmap" || t == "msync" || t == "ftruncate";
}

void rule_raw_file_io(const std::string& path, const std::vector<Token>& toks,
                      std::vector<Finding>* findings) {
  if (path.find("src/") == std::string::npos) return;
  if (path.find("src/store/") != std::string::npos) return;
  if (path.find("src/util/") != std::string::npos) return;
  if (is_test_file(path)) return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    const std::string& t = toks[i].text;
    // `#include <fstream>` names the header, not a use.
    if (i >= 2 && is_tok(toks[i - 1], "<") && toks[i - 2].text == "include")
      continue;
    std::string what;
    if (is_stream_type_name(t)) {
      what = "std::" + t;
    } else if (is_posix_file_call(t) && i + 1 < toks.size() &&
               is_tok(toks[i + 1], "(") &&
               (i == 0 || (toks[i - 1].text != "." &&
                           toks[i - 1].text != "->"))) {
      what = t + "()";
    } else if (t == "open" && i >= 1 && i + 1 < toks.size() &&
               is_tok(toks[i + 1], "(") && is_tok(toks[i - 1], "::") &&
               (i == 1 || toks[i - 2].kind != TokenKind::kIdentifier)) {
      // Global-qualified `::open(` only; `stream.open(` and namespace-
      // qualified calls are someone else's API.
      what = "::open()";
    }
    if (what.empty()) continue;
    findings->push_back(
        {"raw-file-io", path, toks[i].line,
         "raw file I/O (" + what +
             ") outside src/store and src/util: on-disk formats are owned by "
             "the store layer (DESIGN.md §15) — route bytes through "
             "store::DiskTable / the store tensor files or a util emitter, "
             "or carry an allow() rationale"});
  }
}

// include-hygiene: `#include` of a .cpp/.cc/.cxx file splices one
// translation unit into another — ODR violations, double-compiled statics,
// and headers that only compile because their includer dragged in the
// implementation. Scanned from the raw source because the lexer drops
// string/include-path content. (The companion header self-containedness
// gate lives in tools/check_headers.sh, `ctest -L analyze`.)
void rule_include_hygiene(const std::string& path, const std::string& source,
                          std::vector<Finding>* findings) {
  std::size_t line = 1;
  std::size_t pos = 0;
  while (pos < source.size()) {
    std::size_t eol = source.find('\n', pos);
    if (eol == std::string::npos) eol = source.size();
    std::string text = source.substr(pos, eol - pos);
    std::size_t i = text.find_first_not_of(" \t");
    if (i != std::string::npos && text[i] == '#') {
      std::size_t inc = text.find("include", i + 1);
      if (inc != std::string::npos) {
        std::size_t open = text.find_first_of("\"<", inc + 7);
        if (open != std::string::npos) {
          const char close = text[open] == '<' ? '>' : '"';
          std::size_t end = text.find(close, open + 1);
          if (end != std::string::npos) {
            const std::string inc_path = text.substr(open + 1, end - open - 1);
            for (const char* ext : {".cpp", ".cc", ".cxx"}) {
              const std::size_t n = std::string(ext).size();
              if (inc_path.size() > n &&
                  inc_path.compare(inc_path.size() - n, n, ext) == 0) {
                findings->push_back(
                    {"include-hygiene", path, line,
                     "#include of implementation file \"" + inc_path +
                         "\" splices translation units together; include the "
                         "header and link the .cpp instead",
                     false});
                break;
              }
            }
          }
        }
      }
    }
    line += 1;
    pos = eol + 1;
  }
}

}  // namespace

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      "unordered-iteration", "naked-new",      "wire-memcpy",
      "manual-lock",         "float-equality", "nodiscard-wire",
      "direct-transport",    "naked-clock",    "quant-buffer",
      "raw-file-io",         "include-hygiene",
  };
  return kRules;
}

bool is_test_file(const std::string& path) {
  if (path.find("/tests/") != std::string::npos) return true;
  const std::string base = basename_of(path);
  return base.rfind("test_", 0) == 0;
}

std::vector<Finding> lint_file(const std::string& path,
                               const std::string& source) {
  const LexResult lexed = lex(source);
  std::vector<Finding> findings;
  rule_unordered_iteration(path, lexed.tokens, &findings);
  rule_naked_new(path, lexed.tokens, &findings);
  rule_wire_memcpy(path, lexed.tokens, &findings);
  rule_manual_lock(path, lexed.tokens, &findings);
  rule_float_equality(path, lexed.tokens, &findings);
  rule_nodiscard_wire(path, lexed.tokens, &findings);
  rule_direct_transport(path, lexed.tokens, &findings);
  rule_naked_clock(path, lexed.tokens, &findings);
  rule_quant_buffer(path, lexed.tokens, &findings);
  rule_raw_file_io(path, lexed.tokens, &findings);
  rule_include_hygiene(path, source, &findings);

  // Apply suppressions: an allowance on the finding's line or the line
  // directly above it covers the finding.
  for (Finding& f : findings) {
    for (std::size_t line : {f.line, f.line > 0 ? f.line - 1 : f.line}) {
      auto it = lexed.allowances.find(line);
      if (it != lexed.allowances.end() &&
          (it->second.count(f.rule) > 0 || it->second.count("all") > 0)) {
        f.suppressed = true;
        break;
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

}  // namespace vela::lint
