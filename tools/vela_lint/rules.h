// vela_lint's rule set: repo-specific hazard patterns for the VELA tree.
//
// Every rule guards an invariant the runtime's headline guarantees depend on
// (DESIGN.md §9): bit-identical losses across thread counts / overlap depths
// and byte-accurate traffic ledgers only hold if the code never lets an
// unordered container's iteration order, an unchecked wire-struct layout, or
// a hand-rolled lock/unlock pair leak into an observable path.
//
//   unordered-iteration  range-for over an unordered_map/unordered_set —
//                        iteration order is implementation-defined, so any
//                        ledger/CSV/serialized output fed from it is
//                        nondeterministic. Sort keys first, or suppress with
//                        a rationale when order provably cannot escape.
//   naked-new            `new` / `delete` outside owning smart pointers and
//                        containers (leak + exception-safety hazard).
//   wire-memcpy          memcpy without an adjacent
//                        static_assert(std::is_trivially_copyable_v<...>)
//                        plus a sizeof-based size assert — layout drift must
//                        break the build, not the protocol.
//   manual-lock          direct `.lock()` / `.unlock()` calls on anything —
//                        lock discipline is RAII-only (lock_guard /
//                        unique_lock / scoped_lock).
//   float-equality       `==` / `!=` against a floating-point literal
//                        outside tests (tests pin bit-exactness on purpose).
//   nodiscard-wire       wire_size / wire_bytes / *checksum* declarations in
//                        headers missing [[nodiscard]] — dropping these
//                        return values silently corrupts byte accounting.
//   naked-clock          raw std::chrono::*_clock::now() or
//                        this_thread::sleep_for in src/comm / src/core —
//                        timing there must flow through the injectable
//                        util::Clock (DESIGN.md §11) so timeout/backoff
//                        schedules are testable in virtual time. OS-level
//                        wait budgets suppress with a rationale.
//   include-hygiene      `#include` of a .cpp/.cc/.cxx file — splicing
//                        translation units breaks the ODR and hides
//                        non-self-contained headers. (Header standalone
//                        compilation is gated by tools/check_headers.sh,
//                        `ctest -L analyze`.)
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vela::lint {

struct Finding {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::string message;
  bool suppressed = false;  // a `vela-lint: allow(rule)` covers this line
};

// The rule names above, in reporting order.
const std::vector<std::string>& all_rules();

// Runs every rule over one file's source text. `path` decides per-file rule
// scoping (float-equality skips test files; nodiscard-wire runs on headers).
std::vector<Finding> lint_file(const std::string& path,
                               const std::string& source);

// True for files the float-equality rule exempts: anything under a tests/
// directory or whose basename starts with "test_".
bool is_test_file(const std::string& path);

}  // namespace vela::lint
