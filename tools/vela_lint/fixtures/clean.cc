// vela_lint fixture: idiomatic VELA code — zero unsuppressed findings
// expected (the one allowance below is the canonical sort-the-keys pattern).
// Guards against rule over-reach: false positives on the patterns the tree
// actually uses.
#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace fixture {

// Ordered containers iterate deterministically.
inline int sum_ordered(const std::map<int, int>& ordered) {
  int total = 0;
  for (const auto& [k, v] : ordered) total += v + k;
  return total;
}

// Sorting the keys first is the canonical fix for unordered feeds.
inline std::vector<int> sorted_keys(const std::unordered_map<int, int>& by_id) {
  std::vector<int> keys;
  keys.reserve(by_id.size());
  // vela-lint: allow(unordered-iteration)
  for (const auto& [k, v] : by_id) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Smart pointers, deleted special members, RAII locks: all clean.
struct Resource {
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;
  std::unique_ptr<int> storage = std::make_unique<int>(0);
};

inline void guarded(std::mutex& m) {
  std::lock_guard<std::mutex> lock(m);
}

// memcpy with both adjacent asserts is compliant.
struct Header {
  unsigned int id;
};
static_assert(std::is_trivially_copyable_v<Header>, "wire layout");
static_assert(sizeof(Header) == 4, "wire layout");

inline void pack(unsigned char* out, const Header& h) {
  std::memcpy(out, &h, sizeof(h));
}

// Integer equality and tolerance-based float compare are fine.
inline bool close(float a, float b) {
  return (a > b ? a - b : b - a) < 1e-6f && 16 == 16;
}

// Fabric types by pointer, reference or template argument are uses, not
// constructions; factory calls are the sanctioned construction path.
struct Endpoint;
std::unique_ptr<Endpoint> make_endpoint(int src, int dst);
inline void route(Endpoint* ep, const Endpoint& ref,
                  std::vector<Endpoint*>* all) {
  if (ep != nullptr && all != nullptr) all->push_back(ep);
  (void)ref;
  auto owned = make_endpoint(0, 1);
}

}  // namespace fixture
