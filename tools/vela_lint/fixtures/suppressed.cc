// vela_lint fixture: every hazard here carries a `vela-lint: allow(<rule>)`
// suppression — the self-test pins that suppressed findings are still
// reported in the JSON ledger but do not fail the scan.
#include <cstring>
#include <mutex>
#include <unordered_map>

namespace fixture {

inline int count_evens(const std::unordered_map<int, int>& histogram) {
  int evens = 0;
  // Order cannot escape: the loop computes an order-independent reduction.
  // vela-lint: allow(unordered-iteration)
  for (const auto& [key, value] : histogram) {
    if (value % 2 == 0) ++evens;
  }
  return evens;
}

inline void legacy_alloc() {
  int* raw = new int;  // vela-lint: allow(naked-new)
  delete raw;          // vela-lint: allow(naked-new)
}

inline void pack(unsigned char* out, const unsigned int& word) {
  // vela-lint: allow(wire-memcpy)
  std::memcpy(out, &word, sizeof(word));
}

inline void condvar_handoff(std::mutex& m) {
  // vela-lint: allow(manual-lock)
  m.lock();
  m.unlock();  // vela-lint: allow(manual-lock)
}

inline bool is_sentinel(float v) {
  // The sentinel is assigned, never computed, so exact compare is sound.
  return v == -1.0f;  // vela-lint: allow(float-equality)
}

struct Endpoint {};

inline void fabric_by_hand() {
  // A micro-benchmark drives a raw endpoint pair on purpose.
  // vela-lint: allow(direct-transport)
  Endpoint probe;
}

}  // namespace fixture
