// vela_lint fixture: nodiscard-wire runs on headers only. One compliant
// declaration, one missing the attribute, one suppressed, one void mutator
// that must not be flagged.
#pragma once

#include <cstdint>

namespace fixture {

struct Packet {
  std::uint32_t checksum = 0;

  [[nodiscard]] std::uint64_t wire_size() const;     // compliant
  std::uint32_t compute_checksum() const;            // line 14: nodiscard-wire
  bool checksum_ok() const;  // vela-lint: allow(nodiscard-wire)
  void stamp_checksum();                             // void: not flagged
};

}  // namespace fixture
