// Seeded quant-buffer violations: raw byte-level access to q8 block storage
// outside the codec layers (pinned lines in test_vela_lint.cpp).
#include <cstdint>
#include <cstring>

struct FakeQTensor {  // stand-in for vela::qblock::QTensor
  signed char* codes;
  float* scales;
};

void leak_layout(FakeQTensor& q, unsigned char* wire) {
  const auto* raw = reinterpret_cast<const std::uint8_t*>(q.codes);
  std::memcpy(wire, q.scales, 2 * sizeof(float));
  (void)raw;
}

void sanctioned(FakeQTensor& q, unsigned char* wire) {
  // Checkpoint shim: layout pinned by the codec's own static_asserts.
  // vela-lint: allow(quant-buffer)
  std::memcpy(wire, q.codes, 16 * sizeof(char));
}
