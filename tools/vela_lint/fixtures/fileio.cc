// Seeded raw-file-io violations. The self-test lints this source under a
// synthetic src/ path (the rule only scopes to production src/ code); it
// lives in its own fixture so the violations.cc line pins never shift.
#include <cstdio>
#include <fstream>
#include <sys/mman.h>
#include <unistd.h>

void spill_bytes(const char* path) {
  std::ofstream out(path);
  std::ifstream in(path);
  FILE* f = std::fopen(path, "rb");
  (void)f;
  const int fd = ::open(path, 0);
  void* m = mmap(nullptr, 16, 0, 0, fd, 0);
  munmap(m, 16);
  ftruncate(fd, 0);
}

// The sanctioned escape hatch: a shim that is being migrated to the store.
// vela-lint: allow(raw-file-io)
std::fstream legacy_handle(const char* path);
