// vela_lint fixture: one seeded violation per rule, at known line numbers.
// This file is never compiled — it exists so the linter self-test can pin
// that every rule detects its hazard pattern. Keep the line numbers of the
// seeded violations in sync with test_vela_lint.cpp.
#include <cstring>
#include <mutex>
#include <unordered_map>

namespace fixture {

struct Ledger {
  void add(int k, double v);
};

inline void emit_ledger(Ledger& ledger) {
  std::unordered_map<int, double> per_expert;
  for (const auto& [expert, bytes] : per_expert) {  // line 17: unordered-iteration
    ledger.add(expert, bytes);
  }
}

inline int* allocate() {
  int* raw = new int[4];  // line 23: naked-new
  delete[] raw;           // line 24: naked-new
  return nullptr;
}

struct WireHeader {
  unsigned int request_id;
  unsigned short layer;
};

inline void pack(unsigned char* out, const WireHeader& h) {
  std::memcpy(out, &h, sizeof(h));  // line 34: wire-memcpy (no asserts)
}

inline void locked_section(std::mutex& m) {
  m.lock();  // line 38: manual-lock
  m.unlock();  // line 39: manual-lock
}

inline bool converged(float loss) {
  return loss == 0.0f;  // line 43: float-equality
}

// Hand-rolled comm-fabric construction: the rule is name-based, so local
// stand-ins with the fabric type names exercise it without the real headers.
struct Endpoint {};
template <typename T>
class BlockingQueue {};

inline void hand_rolled_fabric() {
  Endpoint ep;                                // line 53: direct-transport
  BlockingQueue<int> inbox;                   // line 54: direct-transport
  auto heap = std::make_unique<Endpoint>();   // line 55: direct-transport
}

}  // namespace fixture
