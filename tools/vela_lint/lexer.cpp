#include "lexer.h"

#include <cctype>

namespace vela::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators, longest first so longest-match wins.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++",  "--", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  "##",  "[[",  "]]",
};

// Records `vela-lint: allow(a, b)` rule names found inside comment text.
void scan_allowances(const std::string& comment, std::size_t line,
                     std::map<std::size_t, std::set<std::string>>* out) {
  const std::string tag = "vela-lint:";
  std::size_t pos = comment.find(tag);
  if (pos == std::string::npos) return;
  pos = comment.find("allow", pos + tag.size());
  if (pos == std::string::npos) return;
  pos = comment.find('(', pos);
  if (pos == std::string::npos) return;
  const std::size_t end = comment.find(')', pos);
  if (end == std::string::npos) return;
  std::string name;
  for (std::size_t i = pos + 1; i <= end; ++i) {
    const char c = comment[i];
    if (c == ',' || c == ')') {
      if (!name.empty()) (*out)[line].insert(name);
      name.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      name.push_back(c);
    }
  }
}

}  // namespace

bool is_float_literal(const std::string& t) {
  if (t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
    // Hex floats exist but carry a mandatory p-exponent.
    return t.find('p') != std::string::npos || t.find('P') != std::string::npos;
  }
  for (char c : t) {
    if (c == '.' || c == 'e' || c == 'E' || c == 'f' || c == 'F') return true;
  }
  return false;
}

LexResult lex(const std::string& src) {
  LexResult out;
  std::size_t i = 0;
  std::size_t line = 1;
  const std::size_t n = src.size();

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      scan_allowances(src.substr(start, i - start), line, &out.allowances);
      continue;
    }
    // Block comment. An allowance inside applies to the line it starts on.
    if (c == '/' && peek(1) == '*') {
      std::size_t start = i;
      const std::size_t start_line = line;
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) i += 2;
      scan_allowances(src.substr(start, i - start), start_line,
                      &out.allowances);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim.push_back(src[j++]);
      const std::string close = ")" + delim + "\"";
      std::size_t end = src.find(close, j);
      if (end == std::string::npos) end = n;
      const std::size_t stop = end == n ? n : end + close.size();
      for (std::size_t k = i; k < stop; ++k) {
        if (src[k] == '\n') ++line;
      }
      out.tokens.push_back({TokenKind::kString, "R\"...\"", line});
      i = stop;
      continue;
    }
    // String / char literal (escape-aware).
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t tok_line = line;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      out.tokens.push_back({quote == '"' ? TokenKind::kString : TokenKind::kChar,
                            std::string(1, quote) + "..." + quote, tok_line});
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      out.tokens.push_back(
          {TokenKind::kIdentifier, src.substr(start, i - start), line});
      continue;
    }
    // Number (pp-number-ish: digits, dots, suffixes, exponents with sign).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t start = i;
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
          // Exponent sign binds to the number: 1e-3, 0x1p+2.
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
              (peek(0) == '+' || peek(0) == '-')) {
            ++i;
          }
        } else {
          break;
        }
      }
      out.tokens.push_back({TokenKind::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // Punctuation, longest match first.
    bool matched = false;
    for (const char* p : kPuncts) {
      const std::size_t len = std::char_traits<char>::length(p);
      if (src.compare(i, len, p) == 0) {
        out.tokens.push_back({TokenKind::kPunct, p, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back({TokenKind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

}  // namespace vela::lint
