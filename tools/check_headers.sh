#!/bin/sh
# Header self-containedness gate (include-what-you-use-lite, satellite of
# vela_analyze): every header under src/ must compile standalone — no
# reliance on whatever its includer happened to include first. Runs as
# `ctest -L analyze` (test vela_check_headers).
#
# Usage: check_headers.sh <c++-compiler> <repo-root>
set -u
CXX="${1:?usage: check_headers.sh <c++-compiler> <repo-root>}"
ROOT="${2:?usage: check_headers.sh <c++-compiler> <repo-root>}"

failed=0
checked=0
for header in $(cd "$ROOT" && find src -name '*.h' | sort); do
  checked=$((checked + 1))
  if ! printf '#include "%s"\n' "$header" | \
      "$CXX" -std=c++20 -fsyntax-only -I "$ROOT/src" -I "$ROOT" \
             -x c++ - 2>/tmp/check_headers_err.$$; then
    echo "NOT SELF-CONTAINED: $header"
    sed 's/^/    /' /tmp/check_headers_err.$$
    failed=$((failed + 1))
  fi
done
rm -f /tmp/check_headers_err.$$
echo "check_headers: $checked headers, $failed not self-contained"
[ "$failed" -eq 0 ]
