// ExpertStore — the single owner of hosted expert state (DESIGN.md §15).
//
// Every runtime that used to hold a `std::map<ExpertKey, {expert, AdamW}>`
// (the expert worker, the EP expert server) now holds an ExpertStore handle
// instead, so migration, recovery, checkpointing and paging all flow through
// one chokepoint. Two backends:
//
//   InMemoryStore  every hosted expert stays resident — byte-for-byte the
//                  pre-store semantics, and the default.
//   PagedStore     at most `budget` experts resident; cold experts spill to
//                  an mmap-backed DiskTable and page back in on demand
//                  (paged_store.h).
//
// Access protocol: pin() pages the expert in (if needed) and holds it
// resident until the matching unpin(). The worker pins for exactly the
// lifetime of the state an expert's resident object carries that its paged
// image cannot: a live autograd tape (forward → backward retire). Between
// pins an expert is evictable because pack_paged_state captures everything
// else — parameters, accumulated gradients, AdamW moments, LR. All pin
// bookkeeping happens on the owning runtime's thread; the parallel compute
// tasks only touch experts their caller already pinned.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/expert.h"
#include "nn/optimizer.h"
#include "store/expert_state.h"

namespace vela::comm {
class TrafficMeter;
}

namespace vela::store {

// A hosted expert: the module plus its local optimizer (null when LoRA is
// disabled — frozen experts have nothing to train).
struct ExpertSlot {
  std::unique_ptr<nn::SwiGLUExpert> expert;
  std::unique_ptr<nn::AdamW> optimizer;
};

// Rebuilds a fresh slot for a key: seeded frozen bases, default-initialized
// adapters/optimizer. Page-in applies the spilled image on top of this.
using SlotFactory = std::function<ExpertSlot(const ExpertKey&)>;

// At-rest encoding of spilled images. kQ8 block-quantizes the bulk payload
// (tensor/qblock.h) to roughly quarter the spill footprint — lossy, so the
// bit-exactness gates run fp32; structural header floats are never
// quantized.
enum class StoreDtype { kDefault, kFp32, kQ8 };

// Victim selection among unpinned residents. All orders are total (exact
// tie-breaks on the key), so eviction is deterministic for a given access
// sequence.
enum class EvictionPolicy {
  kLocality,  // lowest locality priority, then least-recent, then key
  kLru,       // least-recent, then key
  kFifo       // oldest install, then key
};

struct StoreStats {
  std::uint64_t hits = 0;        // pins served from the resident pool
  std::uint64_t misses = 0;      // pins that paged in
  std::uint64_t evictions = 0;
  std::uint64_t page_in_bytes = 0;
  std::uint64_t page_out_bytes = 0;
  std::size_t resident = 0;
};

struct StoreConfig {
  // Max experts resident at once. -1: resolve VELA_EXPERT_BUDGET; 0 (or an
  // unset/empty variable): unbounded — the InMemoryStore backend.
  long long budget = -1;
  // Spill directory. Empty: VELA_STORE_DIR, then the system temp dir.
  std::string dir;
  // kDefault: resolve VELA_STORE_DTYPE ("fp32" | "q8"), then fp32.
  StoreDtype dtype = StoreDtype::kDefault;
  EvictionPolicy policy = EvictionPolicy::kLocality;
  // Optional sink for page-in/page-out byte series (parallel to the
  // recovery series — never added to external/total traffic).
  comm::TrafficMeter* meter = nullptr;

  // Fills every kDefault/-1/empty field from the environment.
  StoreConfig resolved() const;
  bool bounded() const { return budget > 0; }
};

class ExpertStore {
 public:
  virtual ~ExpertStore() = default;

  virtual bool bounded() const = 0;
  virtual bool contains(const ExpertKey& key) const = 0;
  virtual std::size_t size() const = 0;  // hosted = resident + spilled
  virtual std::vector<ExpertKey> keys() const = 0;  // ascending

  // Builds a fresh slot from the factory. The key must not be hosted.
  virtual void emplace(const ExpertKey& key) = 0;
  // Drops a hosted expert entirely (resident object and any spilled image).
  // The key must not be pinned.
  virtual void erase(const ExpertKey& key) = 0;
  // Drops everything (injected crash: all hosted state is lost).
  virtual void clear() = 0;

  // Pages in if needed, pins, and returns the resident slot. The reference
  // stays valid until the matching unpin(). Pins nest.
  virtual ExpertSlot& pin(const ExpertKey& key) = 0;
  virtual void unpin(const ExpertKey& key) = 0;

  // Step-abort support: discards accumulated gradients of every hosted
  // expert — resident ones immediately, spilled ones lazily at their next
  // page-in (paging them in just to zero them would be wasted thrash).
  virtual void zero_all_grads() = 0;

  // Locality scores from the placement optimizer's access statistics
  // (moe::RoutingStats::probability_matrix row for this worker's layers);
  // drives kLocality admission. No-op for unbounded stores.
  virtual void set_priorities(const std::vector<std::pair<ExpertKey, float>>&
                                  priorities) {
    (void)priorities;
  }
  // Dispatch-schedule hint: page these in ahead of the forward requests
  // already in flight behind the hint. Never changes results, only which
  // pins miss. No-op for unbounded stores.
  virtual void prefetch(const std::vector<ExpertKey>& keys) { (void)keys; }

  virtual StoreStats stats() const { return {}; }
};

// RAII pin for the serial control paths (snapshot, restore, fetch, step).
class Pinned {
 public:
  Pinned(ExpertStore& store, const ExpertKey& key)
      : store_(&store), key_(key), slot_(&store.pin(key)) {}
  ~Pinned() { store_->unpin(key_); }
  Pinned(const Pinned&) = delete;
  Pinned& operator=(const Pinned&) = delete;

  nn::SwiGLUExpert& expert() { return *slot_->expert; }
  nn::AdamW* optimizer() { return slot_->optimizer.get(); }
  ExpertSlot& slot() { return *slot_; }

 private:
  ExpertStore* store_;
  ExpertKey key_;
  ExpertSlot* slot_;
};

// InMemoryStore: the unbounded backend — a std::map of slots, exactly the
// ownership the runtimes had before the store existed. pin/unpin are plain
// lookups; nothing is ever written to disk.
class InMemoryStore final : public ExpertStore {
 public:
  explicit InMemoryStore(SlotFactory factory);

  bool bounded() const override { return false; }
  bool contains(const ExpertKey& key) const override;
  std::size_t size() const override;
  std::vector<ExpertKey> keys() const override;
  void emplace(const ExpertKey& key) override;
  void erase(const ExpertKey& key) override;
  void clear() override;
  ExpertSlot& pin(const ExpertKey& key) override;
  void unpin(const ExpertKey& key) override;
  void zero_all_grads() override;
  StoreStats stats() const override;

 private:
  SlotFactory factory_;
  std::map<ExpertKey, ExpertSlot> slots_;
  std::uint64_t pins_ = 0;
};

// Picks the backend from the RESOLVED config: budget 0 → InMemoryStore,
// budget > 0 → PagedStore.
std::unique_ptr<ExpertStore> make_expert_store(const StoreConfig& config,
                                               SlotFactory factory);

}  // namespace vela::store
