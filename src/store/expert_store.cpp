#include "store/expert_store.h"

#include <cstdlib>
#include <filesystem>
#include <string>

#include "store/paged_store.h"
#include "util/check.h"

namespace vela::store {

StoreConfig StoreConfig::resolved() const {
  StoreConfig out = *this;
  if (out.budget < 0) {
    out.budget = 0;
    if (const char* env = std::getenv("VELA_EXPERT_BUDGET")) {
      if (*env != '\0') out.budget = std::atoll(env);
      VELA_CHECK_MSG(out.budget >= 0,
                     "VELA_EXPERT_BUDGET must be >= 0, got " << env);
    }
  }
  if (out.dir.empty()) {
    if (const char* env = std::getenv("VELA_STORE_DIR"); env && *env != '\0') {
      out.dir = env;
    } else {
      out.dir = std::filesystem::temp_directory_path().string();
    }
  }
  if (out.dtype == StoreDtype::kDefault) {
    out.dtype = StoreDtype::kFp32;
    if (const char* env = std::getenv("VELA_STORE_DTYPE"); env && *env != '\0') {
      const std::string v(env);
      if (v == "q8") {
        out.dtype = StoreDtype::kQ8;
      } else {
        VELA_CHECK_MSG(v == "fp32",
                       "VELA_STORE_DTYPE must be fp32 or q8, got " << v);
      }
    }
  }
  return out;
}

InMemoryStore::InMemoryStore(SlotFactory factory)
    : factory_(std::move(factory)) {}

bool InMemoryStore::contains(const ExpertKey& key) const {
  return slots_.count(key) != 0;
}

std::size_t InMemoryStore::size() const { return slots_.size(); }

std::vector<ExpertKey> InMemoryStore::keys() const {
  std::vector<ExpertKey> out;
  out.reserve(slots_.size());
  for (const auto& [key, slot] : slots_) out.push_back(key);
  return out;
}

void InMemoryStore::emplace(const ExpertKey& key) {
  VELA_CHECK_MSG(slots_.count(key) == 0,
                 "expert " << to_string(key) << " already in store");
  slots_.emplace(key, factory_(key));
}

void InMemoryStore::erase(const ExpertKey& key) {
  VELA_CHECK_MSG(slots_.erase(key) == 1,
                 "erase of unhosted expert " << to_string(key));
}

void InMemoryStore::clear() { slots_.clear(); }

ExpertSlot& InMemoryStore::pin(const ExpertKey& key) {
  auto it = slots_.find(key);
  VELA_CHECK_MSG(it != slots_.end(),
                 "pin of unhosted expert " << to_string(key));
  ++pins_;
  return it->second;
}

void InMemoryStore::unpin(const ExpertKey& key) { (void)key; }

void InMemoryStore::zero_all_grads() {
  for (auto& [key, slot] : slots_) {
    if (slot.optimizer != nullptr) slot.optimizer->zero_grad();
  }
}

StoreStats InMemoryStore::stats() const {
  StoreStats s;
  s.hits = pins_;
  s.resident = slots_.size();
  return s;
}

std::unique_ptr<ExpertStore> make_expert_store(const StoreConfig& config,
                                               SlotFactory factory) {
  VELA_CHECK_MSG(config.budget >= 0,
                 "make_expert_store needs a resolved config (budget >= 0)");
  if (config.budget == 0) {
    return std::make_unique<InMemoryStore>(std::move(factory));
  }
  return std::make_unique<PagedStore>(config, std::move(factory));
}

}  // namespace vela::store
