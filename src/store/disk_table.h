// Mmap-backed on-disk slot table — the spill target of the paged expert
// store (DESIGN.md §15).
//
// The file is a header plus an array of uniform slots; a fixed slot array
// keeps free-slot reuse trivial and deterministic (lowest free index wins).
// Slot width starts at the first payload's size and widens in place when a
// larger image arrives (an expert's image grows once gradients and optimizer
// moments accumulate); slot indices are stable across that reslot.
//
//   header: magic "VELASTOR" | u32 version | u32 slot_bytes | u32 capacity
//   slot:   u32 used | u32 payload_bytes | u32 fnv1a(payload) | payload,
//           zero-padded to slot_bytes
//
// The whole file is memory-mapped; reads and writes go through the mapping
// and growth remaps after ftruncate. Every read re-verifies length bounds
// and the payload checksum, so a torn or truncated table (host crash, disk
// corruption) is rejected with CheckError instead of feeding garbage bits
// into an expert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vela::store {

class DiskTable {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  // Opens (validating the header) or creates the table file. `remove_on_close`
  // unlinks the file in the destructor — the pager's spill files are scratch;
  // tests keep them to exercise reopen/corruption paths.
  explicit DiskTable(std::string path, bool remove_on_close = true);
  ~DiskTable();

  DiskTable(const DiskTable&) = delete;
  DiskTable& operator=(const DiskTable&) = delete;

  // Stores a payload, reusing the lowest free slot or growing the file.
  // A payload wider than the current slots widens every slot first.
  std::uint32_t write(const unsigned char* data, std::size_t bytes);
  // Reads a slot back, verifying bounds and checksum. Throws CheckError on
  // a free slot, an out-of-range payload length, or a checksum mismatch.
  std::vector<unsigned char> read(std::uint32_t slot) const;
  void free_slot(std::uint32_t slot);

  const std::string& path() const { return path_; }
  std::size_t slots_in_use() const { return in_use_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t slot_bytes() const { return slot_bytes_; }
  std::size_t file_bytes() const { return mapped_bytes_; }

 private:
  void map_file(std::size_t bytes);
  void grow(std::size_t min_capacity);
  void reslot(std::size_t new_slot_bytes);
  unsigned char* slot_base(std::uint32_t slot) const;

  std::string path_;
  bool remove_on_close_;
  int fd_ = -1;
  unsigned char* map_ = nullptr;
  std::size_t mapped_bytes_ = 0;
  std::size_t slot_bytes_ = 0;  // 0 until the first write fixes it
  std::size_t capacity_ = 0;
  std::size_t in_use_ = 0;
};

}  // namespace vela::store
