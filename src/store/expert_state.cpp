#include "store/expert_state.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace vela::store {
namespace {

// Trainable parameters in name order — the canonical serialization order
// every image format shares.
std::vector<nn::Parameter> sorted_trainable(const nn::Module& module) {
  auto params = module.trainable_parameters();
  std::sort(params.begin(), params.end(),
            [](const nn::Parameter& a, const nn::Parameter& b) {
              return a.name < b.name;
            });
  return params;
}

}  // namespace

Tensor pack_trainable(const nn::Module& module) {
  const auto params = sorted_trainable(module);
  std::size_t total = 0;
  for (const auto& p : params) total += p.var.value().size();
  VELA_CHECK_MSG(total > 0, "module has no trainable parameters to pack");
  Tensor packed({total});
  std::size_t offset = 0;
  for (const auto& p : params) {
    const Tensor& v = p.var.value();
    std::copy(v.data(), v.data() + v.size(), packed.data() + offset);
    offset += v.size();
  }
  return packed;
}

void unpack_trainable(const Tensor& packed, nn::Module& module) {
  auto params = sorted_trainable(module);
  std::size_t total = 0;
  for (const auto& p : params) total += p.var.value().size();
  VELA_CHECK_MSG(packed.size() == total,
                 "packed state size " << packed.size()
                                      << " != module trainable size " << total);
  std::size_t offset = 0;
  for (auto& p : params) {
    Tensor& v = p.var.mutable_value();
    std::copy(packed.data() + offset, packed.data() + offset + v.size(),
              v.data());
    offset += v.size();
  }
}

Tensor pack_full_state(const nn::Module& module, const nn::AdamW* optimizer) {
  const Tensor params = pack_trainable(module);
  const Tensor opt =
      optimizer != nullptr ? optimizer->pack_state() : Tensor{};
  Tensor packed({1 + params.size() + opt.size()});
  packed[0] = static_cast<float>(params.size());
  std::copy(params.data(), params.data() + params.size(), packed.data() + 1);
  if (opt.size() > 0) {
    std::copy(opt.data(), opt.data() + opt.size(),
              packed.data() + 1 + params.size());
  }
  return packed;
}

void unpack_full_state(const Tensor& packed, nn::Module& module,
                       nn::AdamW* optimizer) {
  VELA_CHECK_MSG(packed.size() >= 1, "full state blob is empty");
  const std::size_t param_count = static_cast<std::size_t>(packed[0]);
  VELA_CHECK_MSG(1 + param_count <= packed.size(),
                 "full state blob truncated: declares " << param_count
                                                        << " params in "
                                                        << packed.size()
                                                        << " floats");
  Tensor params({param_count});
  std::copy(packed.data() + 1, packed.data() + 1 + param_count, params.data());
  unpack_trainable(params, module);
  const std::size_t opt_size = packed.size() - 1 - param_count;
  if (optimizer != nullptr && opt_size > 0) {
    Tensor opt({opt_size});
    std::copy(packed.data() + 1 + param_count,
              packed.data() + packed.size(), opt.data());
    optimizer->load_state(opt);
  }
}

PagedImage pack_paged_state(const nn::Module& module,
                            const nn::AdamW* optimizer) {
  const auto params = sorted_trainable(module);
  if (params.empty()) return {};  // frozen expert: the seed is the state

  std::size_t param_floats = 0;
  std::size_t grad_floats = 0;
  for (const auto& p : params) {
    param_floats += p.var.value().size();
    if (p.var.has_grad()) grad_floats += p.var.grad().size();
  }
  const Tensor opt_state =
      optimizer != nullptr ? optimizer->pack_state() : Tensor{};
  const std::size_t moment_floats =
      opt_state.size() > 0 ? opt_state.size() - 1 : 0;

  PagedImage image;
  image.header = Tensor({5 + params.size()});
  image.header[0] = static_cast<float>(params.size());
  image.header[1] = static_cast<float>(param_floats);
  image.header[2] = optimizer != nullptr ? 1.0f : 0.0f;
  image.header[3] = optimizer != nullptr ? optimizer->learning_rate() : 0.0f;
  image.header[4] = opt_state.size() > 0 ? opt_state[0] : 0.0f;  // AdamW t
  for (std::size_t i = 0; i < params.size(); ++i) {
    image.header[5 + i] = params[i].var.has_grad() ? 1.0f : 0.0f;
  }

  image.bulk = Tensor({param_floats + grad_floats + moment_floats});
  std::size_t offset = 0;
  for (const auto& p : params) {
    const Tensor& v = p.var.value();
    std::copy(v.data(), v.data() + v.size(), image.bulk.data() + offset);
    offset += v.size();
  }
  for (const auto& p : params) {
    if (!p.var.has_grad()) continue;
    const Tensor& g = p.var.grad();
    std::copy(g.data(), g.data() + g.size(), image.bulk.data() + offset);
    offset += g.size();
  }
  if (moment_floats > 0) {
    std::copy(opt_state.data() + 1, opt_state.data() + opt_state.size(),
              image.bulk.data() + offset);
  }
  return image;
}

void unpack_paged_state(const PagedImage& image, nn::Module& module,
                        nn::AdamW* optimizer) {
  if (image.header.size() == 0) {
    VELA_CHECK_MSG(module.trainable_parameter_count() == 0,
                   "empty paged image for a trainable expert");
    return;
  }
  auto params = sorted_trainable(module);
  const std::size_t n_tensors = static_cast<std::size_t>(image.header[0]);
  const std::size_t param_floats = static_cast<std::size_t>(image.header[1]);
  // Header flags are 0/1 integers stored in floats — exact by construction.
  // vela-lint: allow(float-equality)
  const bool has_opt = image.header[2] != 0.0f;
  VELA_CHECK_MSG(n_tensors == params.size(),
                 "paged image has " << n_tensors << " tensors, module has "
                                    << params.size());
  VELA_CHECK_MSG(image.header.size() == 5 + n_tensors,
                 "paged image header malformed");
  VELA_CHECK_MSG(has_opt == (optimizer != nullptr),
                 "paged image optimizer presence mismatch");

  std::size_t offset = 0;
  for (auto& p : params) {
    Tensor& v = p.var.mutable_value();
    VELA_CHECK_MSG(offset + v.size() <= image.bulk.size(),
                   "paged image bulk truncated in parameters");
    std::copy(image.bulk.data() + offset,
              image.bulk.data() + offset + v.size(), v.data());
    offset += v.size();
  }
  VELA_CHECK_MSG(offset == param_floats, "paged image parameter size mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    // vela-lint: allow(float-equality)
    if (image.header[5 + i] == 0.0f) continue;
    const Tensor& v = params[i].var.value();
    VELA_CHECK_MSG(offset + v.size() <= image.bulk.size(),
                   "paged image bulk truncated in gradients");
    Tensor grad(v.shape());
    std::copy(image.bulk.data() + offset,
              image.bulk.data() + offset + v.size(), grad.data());
    params[i].var.set_grad(std::move(grad));
    offset += v.size();
  }
  if (optimizer != nullptr) {
    const std::size_t moment_floats = image.bulk.size() - offset;
    Tensor opt_state({1 + moment_floats});
    opt_state[0] = image.header[4];
    std::copy(image.bulk.data() + offset,
              image.bulk.data() + image.bulk.size(), opt_state.data() + 1);
    optimizer->load_state(opt_state);
    optimizer->set_learning_rate(image.header[3]);
  } else {
    VELA_CHECK_MSG(offset == image.bulk.size(),
                   "paged image has trailing bytes");
  }
}

std::string to_string(const ExpertKey& key) {
  return "(" + std::to_string(key.layer) + ", " + std::to_string(key.expert) +
         ")";
}

}  // namespace vela::store
