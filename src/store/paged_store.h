// PagedStore — the bounded-memory ExpertStore backend (DESIGN.md §15).
//
// At most `budget` experts are resident; the rest exist as paged images in
// an mmap-backed DiskTable. pin() pages a cold expert in on demand (frozen
// bases rebuild from the seed via the SlotFactory; the image restores
// adapters, accumulated gradients, AdamW moments and LR on top), and unpin()
// triggers eviction back down to the budget. Pinned experts are never
// evicted — transient over-budget is allowed when every resident expert is
// pinned, because evicting a live autograd tape's parameters would be
// unsound.
//
// Eviction is deterministic: victims are chosen by a total order (locality
// priority / recency / install order, each with exact key tie-breaks) over
// logical counters, never wall-clock time, and all bookkeeping runs on the
// owning runtime's thread. Page-in/page-out byte flows feed the
// TrafficMeter's paging series and the audit ledger's informational paging
// counters; they are never charged as network traffic.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "store/disk_table.h"
#include "store/expert_store.h"

namespace vela::store {

class PagedStore final : public ExpertStore {
 public:
  // `config` must be resolved and bounded (budget > 0).
  PagedStore(const StoreConfig& config, SlotFactory factory);

  bool bounded() const override { return true; }
  bool contains(const ExpertKey& key) const override;
  std::size_t size() const override;
  std::vector<ExpertKey> keys() const override;
  void emplace(const ExpertKey& key) override;
  void erase(const ExpertKey& key) override;
  void clear() override;
  ExpertSlot& pin(const ExpertKey& key) override;
  void unpin(const ExpertKey& key) override;
  void zero_all_grads() override;
  void set_priorities(const std::vector<std::pair<ExpertKey, float>>&
                          priorities) override;
  void prefetch(const std::vector<ExpertKey>& keys) override;
  StoreStats stats() const override;

  // Every eviction in order — tests pin the determinism of this sequence,
  // the bench derives thrash metrics from it.
  const std::vector<ExpertKey>& eviction_log() const { return eviction_log_; }
  const StoreConfig& config() const { return cfg_; }

 private:
  struct Entry {
    ExpertSlot slot;  // resident iff slot.expert != nullptr
    int pins = 0;
    std::uint64_t last_use = 0;     // logical tick of the latest pin
    std::uint64_t install_seq = 0;  // FIFO order
    // Set by zero_all_grads() for spilled entries: their image carries
    // gradients the abort discarded, so drop them at the next page-in.
    bool drop_grads_on_load = false;
    std::uint32_t disk_slot = DiskTable::kNoSlot;
  };

  bool resident(const Entry& e) const { return e.slot.expert != nullptr; }
  void page_in(const ExpertKey& key, Entry& e, bool demand);
  void page_out(const ExpertKey& key, Entry& e);
  void ensure_budget();
  float priority_of(const ExpertKey& key) const;
  std::vector<unsigned char> encode(const PagedImage& image) const;
  PagedImage decode(const std::vector<unsigned char>& bytes) const;

  StoreConfig cfg_;
  SlotFactory factory_;
  DiskTable table_;
  std::map<ExpertKey, Entry> entries_;
  std::map<ExpertKey, float> priority_;
  std::size_t resident_count_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t installs_ = 0;
  StoreStats stats_;
  std::vector<ExpertKey> eviction_log_;
};

}  // namespace vela::store
