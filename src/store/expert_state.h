// Expert identity and expert-state (de)serialization.
//
// These primitives used to live in core/protocol; they moved down into the
// store layer because the store is now the single owner of expert state, and
// both the wire protocol (migration, recovery) and the pager (spill/reload)
// serialize experts through the same code. core/protocol.h re-exports the
// names into vela::core, so protocol call sites are unchanged.
//
// Three image formats, by what must survive:
//
//   pack_trainable    adapters only            — migration, checkpoints
//   pack_full_state   adapters + AdamW moments — respawn/standby recovery
//   pack_paged_state  full state + accumulated — page-out of a LIVE expert
//                     gradients + current LR     between micro-batches
//
// The paged image is the superset: an expert may be evicted after one
// micro-batch's backward accumulated LoRA gradients but before the optimizer
// step consumed them, so dropping gradients at page-out would silently
// change the update. It is split into a structural `header` (counts, flags,
// step counter, LR) that must round-trip exactly and a `bulk` payload
// (parameters, gradients, moments) that the q8-at-rest encoding may
// quantize.
#pragma once

#include <cstdint>
#include <string>

#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"

namespace vela::store {

// Key for an expert within the whole model.
struct ExpertKey {
  std::uint32_t layer = 0;
  std::uint32_t expert = 0;

  bool operator==(const ExpertKey&) const = default;
  bool operator<(const ExpertKey& o) const {
    return layer != o.layer ? layer < o.layer : expert < o.expert;
  }
};

std::string to_string(const ExpertKey& key);

// Packs a module's *trainable* parameters into one flat rank-1 tensor, in
// name order (deterministic across processes).
Tensor pack_trainable(const nn::Module& module);

// Inverse of pack_trainable: writes `packed` back into the module's
// trainable parameters. Sizes must match exactly.
void unpack_trainable(const Tensor& packed, nn::Module& module);

// Full recovery state of a hosted expert: [param count, params...,
// optimizer state...]. Unlike pack_trainable this also carries the AdamW
// step count and moment buffers, so restoring onto a respawned worker
// resumes training bit-exactly (adapter-only restores reset the moments and
// perturb every later update). `optimizer` may be null (frozen experts).
Tensor pack_full_state(const nn::Module& module, const nn::AdamW* optimizer);
void unpack_full_state(const Tensor& packed, nn::Module& module,
                       nn::AdamW* optimizer);

// Page-out image of a live expert.
//
// header: [n_tensors, param_floats, has_opt, lr, t, grad_flag...(n_tensors)]
// bulk:   params flat (name order) | grads flat (flagged params, name order)
//         | AdamW moments (pack_state() without the leading t)
//
// A module with no trainable parameters packs to an empty image (frozen
// experts re-derive entirely from their seed).
struct PagedImage {
  Tensor header;
  Tensor bulk;
};

PagedImage pack_paged_state(const nn::Module& module,
                            const nn::AdamW* optimizer);
// Inverse, onto a FRESH factory-built module/optimizer pair: restores
// parameters, re-attaches accumulated gradients, reloads moments + step
// count, and re-applies the learning rate the optimizer carried at
// page-out.
void unpack_paged_state(const PagedImage& image, nn::Module& module,
                        nn::AdamW* optimizer);

}  // namespace vela::store
