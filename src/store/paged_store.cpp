#include "store/paged_store.h"

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <utility>

#include "comm/traffic_meter.h"
#include "tensor/qblock.h"
#include "util/audit.h"
#include "util/check.h"

namespace vela::store {
namespace {

constexpr unsigned char kDtypeFp32 = 0;
constexpr unsigned char kDtypeQ8 = 1;

// Each store instance spills into its own table file: workers page
// independently and a respawned worker must not inherit a dead worker's
// images (its hosted state is lost by definition).
std::string next_table_path(const std::string& dir) {
  static std::atomic<std::uint64_t> counter{0};
  return dir + "/vela_store_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".bin";
}

void append_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const unsigned char*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

std::uint32_t take_u32(const std::vector<unsigned char>& in,
                       std::size_t& at) {
  VELA_CHECK_MSG(at + sizeof(std::uint32_t) <= in.size(),
                 "paged image truncated");
  std::uint32_t v;
  std::memcpy(&v, in.data() + at, sizeof(std::uint32_t));
  at += sizeof(v);
  return v;
}

}  // namespace

PagedStore::PagedStore(const StoreConfig& config, SlotFactory factory)
    : cfg_(config),
      factory_(std::move(factory)),
      table_(next_table_path(config.dir)) {
  VELA_CHECK_MSG(cfg_.bounded(), "PagedStore needs a budget > 0");
  VELA_CHECK_MSG(cfg_.dtype != StoreDtype::kDefault,
                 "PagedStore needs a resolved config");
}

bool PagedStore::contains(const ExpertKey& key) const {
  return entries_.count(key) != 0;
}

std::size_t PagedStore::size() const { return entries_.size(); }

std::vector<ExpertKey> PagedStore::keys() const {
  std::vector<ExpertKey> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) out.push_back(key);
  return out;
}

void PagedStore::emplace(const ExpertKey& key) {
  VELA_CHECK_MSG(entries_.count(key) == 0,
                 "expert " << to_string(key) << " already in store");
  Entry e;
  e.slot = factory_(key);
  e.install_seq = ++installs_;
  e.last_use = ++tick_;
  entries_.emplace(key, std::move(e));
  ++resident_count_;
  ensure_budget();
}

void PagedStore::erase(const ExpertKey& key) {
  auto it = entries_.find(key);
  VELA_CHECK_MSG(it != entries_.end(),
                 "erase of unhosted expert " << to_string(key));
  VELA_CHECK_MSG(it->second.pins == 0,
                 "erase of pinned expert " << to_string(key));
  if (it->second.disk_slot != DiskTable::kNoSlot) {
    table_.free_slot(it->second.disk_slot);
  }
  if (resident(it->second)) --resident_count_;
  entries_.erase(it);
}

void PagedStore::clear() {
  for (auto& [key, e] : entries_) {
    if (e.disk_slot != DiskTable::kNoSlot) table_.free_slot(e.disk_slot);
  }
  entries_.clear();
  resident_count_ = 0;
}

ExpertSlot& PagedStore::pin(const ExpertKey& key) {
  auto it = entries_.find(key);
  VELA_CHECK_MSG(it != entries_.end(),
                 "pin of unhosted expert " << to_string(key));
  Entry& e = it->second;
  if (resident(e)) {
    ++stats_.hits;
  } else {
    page_in(key, e, /*demand=*/true);
  }
  ++e.pins;
  e.last_use = ++tick_;
  // A demand page-in can push the pool over budget; evict (other, unpinned)
  // residents back down before handing the slot out.
  ensure_budget();
  return e.slot;
}

void PagedStore::unpin(const ExpertKey& key) {
  auto it = entries_.find(key);
  VELA_CHECK_MSG(it != entries_.end(),
                 "unpin of unhosted expert " << to_string(key));
  VELA_CHECK_MSG(it->second.pins > 0,
                 "unpin of unpinned expert " << to_string(key));
  --it->second.pins;
  ensure_budget();
}

void PagedStore::zero_all_grads() {
  for (auto& [key, e] : entries_) {
    if (resident(e)) {
      if (e.slot.optimizer != nullptr) e.slot.optimizer->zero_grad();
    } else {
      e.drop_grads_on_load = true;
    }
  }
}

void PagedStore::set_priorities(
    const std::vector<std::pair<ExpertKey, float>>& priorities) {
  priority_.clear();
  for (const auto& [key, p] : priorities) priority_[key] = p;
}

void PagedStore::prefetch(const std::vector<ExpertKey>& keys) {
  for (const ExpertKey& key : keys) {
    // Fill spare budget only: a prefetch must not evict a resident expert —
    // the requests already queued behind the hint may still need it.
    if (resident_count_ >= static_cast<std::size_t>(cfg_.budget)) return;
    auto it = entries_.find(key);
    if (it == entries_.end() || resident(it->second)) continue;
    page_in(key, it->second, /*demand=*/false);
    it->second.last_use = ++tick_;
  }
}

StoreStats PagedStore::stats() const {
  StoreStats s = stats_;
  s.resident = resident_count_;
  s.evictions = eviction_log_.size();
  return s;
}

float PagedStore::priority_of(const ExpertKey& key) const {
  auto it = priority_.find(key);
  return it != priority_.end() ? it->second : 0.0f;
}

void PagedStore::page_in(const ExpertKey& key, Entry& e, bool demand) {
  VELA_CHECK(!resident(e));
  if (demand) ++stats_.misses;
  e.slot = factory_(key);
  if (e.disk_slot != DiskTable::kNoSlot) {
    const std::vector<unsigned char> bytes = table_.read(e.disk_slot);
    table_.free_slot(e.disk_slot);
    e.disk_slot = DiskTable::kNoSlot;
    unpack_paged_state(decode(bytes), *e.slot.expert, e.slot.optimizer.get());
    stats_.page_in_bytes += bytes.size();
    if (cfg_.meter != nullptr) cfg_.meter->record_page_in(bytes.size());
    audit::ConservationLedger::instance().on_page_in(bytes.size());
  }
  if (e.drop_grads_on_load) {
    if (e.slot.optimizer != nullptr) e.slot.optimizer->zero_grad();
    e.drop_grads_on_load = false;
  }
  ++resident_count_;
}

void PagedStore::page_out(const ExpertKey& key, Entry& e) {
  VELA_CHECK(resident(e) && e.pins == 0);
  const PagedImage image =
      pack_paged_state(*e.slot.expert, e.slot.optimizer.get());
  if (image.header.size() > 0) {
    const std::vector<unsigned char> bytes = encode(image);
    e.disk_slot = table_.write(bytes.data(), bytes.size());
    stats_.page_out_bytes += bytes.size();
    if (cfg_.meter != nullptr) cfg_.meter->record_page_out(bytes.size());
    audit::ConservationLedger::instance().on_page_out(bytes.size());
  }
  // else: a frozen expert IS its seed — drop it, the factory rebuilds it.
  e.slot = ExpertSlot{};
  --resident_count_;
  eviction_log_.push_back(key);
}

void PagedStore::ensure_budget() {
  while (resident_count_ > static_cast<std::size_t>(cfg_.budget)) {
    // Victim = minimum of a total order over the unpinned residents; every
    // policy breaks remaining ties on the key, so the choice is exact.
    ExpertKey victim{};
    Entry* victim_entry = nullptr;
    for (auto& [key, e] : entries_) {
      if (!resident(e) || e.pins > 0) continue;
      if (victim_entry == nullptr) {
        victim = key;
        victim_entry = &e;
        continue;
      }
      bool better = false;
      switch (cfg_.policy) {
        case EvictionPolicy::kLocality: {
          const float pk = priority_of(key);
          const float pv = priority_of(victim);
          better = pk != pv ? pk < pv
                            : (e.last_use != victim_entry->last_use
                                   ? e.last_use < victim_entry->last_use
                                   : key < victim);
          break;
        }
        case EvictionPolicy::kLru:
          better = e.last_use != victim_entry->last_use
                       ? e.last_use < victim_entry->last_use
                       : key < victim;
          break;
        case EvictionPolicy::kFifo:
          better = e.install_seq < victim_entry->install_seq;
          break;
      }
      if (better) {
        victim = key;
        victim_entry = &e;
      }
    }
    if (victim_entry == nullptr) return;  // everything pinned: over-budget
    page_out(victim, *victim_entry);
  }
}

std::vector<unsigned char> PagedStore::encode(const PagedImage& image) const {
  // u32 header floats | header (raw f32 — counts/flags must round-trip
  // exactly) | u8 dtype | bulk (raw f32, or q8 codes + scales).
  std::vector<unsigned char> out;
  append_u32(out, static_cast<std::uint32_t>(image.header.size()));
  const auto* hp = reinterpret_cast<const unsigned char*>(image.header.data());
  out.insert(out.end(), hp, hp + image.header.size() * sizeof(float));
  if (cfg_.dtype == StoreDtype::kQ8) {
    out.push_back(kDtypeQ8);
    const qblock::QTensor q = qblock::quantize(image.bulk);
    append_u32(out, static_cast<std::uint32_t>(q.cols));
    // The at-rest image concatenates the opaque qblock buffers verbatim;
    // their byte layout stays owned by qblock::quantize/dequantize
    // (DESIGN.md §15). vela-lint: allow(quant-buffer)
    const auto* cp = reinterpret_cast<const unsigned char*>(q.codes.data());
    out.insert(out.end(), cp, cp + q.codes.size());
    append_u32(out, static_cast<std::uint32_t>(q.scales.size()));
    // vela-lint: allow(quant-buffer)
    const auto* sp = reinterpret_cast<const unsigned char*>(q.scales.data());
    out.insert(out.end(), sp, sp + q.scales.size() * sizeof(float));
  } else {
    out.push_back(kDtypeFp32);
    const auto* bp = reinterpret_cast<const unsigned char*>(image.bulk.data());
    out.insert(out.end(), bp, bp + image.bulk.size() * sizeof(float));
  }
  return out;
}

PagedImage PagedStore::decode(const std::vector<unsigned char>& bytes) const {
  PagedImage image;
  std::size_t at = 0;
  const std::uint32_t header_floats = take_u32(bytes, at);
  VELA_CHECK_MSG(at + header_floats * sizeof(float) + 1 <= bytes.size(),
                 "paged image truncated in header");
  image.header = Tensor({header_floats});
  std::memcpy(image.header.data(), bytes.data() + at,
              header_floats * sizeof(float));
  at += header_floats * sizeof(float);
  const unsigned char dtype = bytes[at++];
  if (dtype == kDtypeQ8) {
    qblock::QTensor q;
    q.rows = 1;
    q.cols = take_u32(bytes, at);
    q.block = qblock::kDefaultBlock;
    VELA_CHECK_MSG(at + q.cols <= bytes.size(),
                   "paged image truncated in q8 codes");
    q.codes.resize(q.cols);
    // Opaque qblock code bytes copied verbatim; layout stays owned by
    // qblock. vela-lint: allow(quant-buffer, wire-memcpy)
    std::memcpy(q.codes.data(), bytes.data() + at, q.cols);
    at += q.cols;
    const std::uint32_t n_scales = take_u32(bytes, at);
    VELA_CHECK_MSG(n_scales == q.row_blocks() &&
                       at + n_scales * sizeof(float) == bytes.size(),
                   "paged image q8 scale section malformed");
    q.scales.resize(n_scales);
    // vela-lint: allow(quant-buffer)
    std::memcpy(q.scales.data(), bytes.data() + at, n_scales * sizeof(float));
    image.bulk = qblock::dequantize(q, /*rank1=*/true);
  } else {
    VELA_CHECK_MSG(dtype == kDtypeFp32, "paged image has unknown dtype "
                                            << static_cast<int>(dtype));
    VELA_CHECK_MSG((bytes.size() - at) % sizeof(float) == 0,
                   "paged image bulk misaligned");
    image.bulk = Tensor({(bytes.size() - at) / sizeof(float)});
    std::memcpy(image.bulk.data(), bytes.data() + at,
                image.bulk.size() * sizeof(float));
  }
  return image;
}

}  // namespace vela::store
