#include "store/tensor_file.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "util/check.h"

namespace vela::store {
namespace {

constexpr char kMagic[8] = {'V', 'E', 'L', 'A', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  VELA_CHECK_MSG(in.good(), "checkpoint truncated");
  return value;
}

}  // namespace

void save_named_tensors(const std::string& path, const NamedTensors& tensors) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  VELA_CHECK_MSG(out.good(), "cannot open checkpoint file " << path);
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(tensors.size()));
  for (const auto& [name, tensor] : tensors) {
    VELA_CHECK(!name.empty());
    write_pod(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(out, static_cast<std::uint64_t>(tensor.size()));
    out.write(reinterpret_cast<const char*>(tensor.data()),
              static_cast<std::streamsize>(tensor.size() * sizeof(float)));
  }
  VELA_CHECK_MSG(out.good(), "checkpoint write failed: " << path);
}

NamedTensors load_named_tensors(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  VELA_CHECK_MSG(in.good(), "cannot open checkpoint file " << path);
  char magic[8];
  in.read(magic, sizeof(magic));
  VELA_CHECK_MSG(in.good() && std::equal(magic, magic + 8, kMagic),
                 "not a VELA checkpoint: " << path);
  const auto version = read_pod<std::uint32_t>(in);
  VELA_CHECK_MSG(version == kVersion,
                 "unsupported checkpoint version " << version);
  const auto count = read_pod<std::uint64_t>(in);
  NamedTensors tensors;
  tensors.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    const auto numel = read_pod<std::uint64_t>(in);
    VELA_CHECK_MSG(numel > 0, "empty tensor in checkpoint");
    std::vector<float> data(numel);
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    VELA_CHECK_MSG(in.good(), "checkpoint truncated at entry " << name);
    tensors.emplace_back(
        std::move(name),
        Tensor({static_cast<std::size_t>(numel)}, std::move(data)));
  }
  return tensors;
}

}  // namespace vela::store
