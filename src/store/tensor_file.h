// Named-tensor container I/O — the checkpoint file format.
//
// Moved from core/checkpoint so that every raw file access in the library
// lives in the store layer (the vela_lint raw-file-io rule enforces this);
// core/checkpoint.h re-exports the names, so checkpoint call sites are
// unchanged. Format (little-endian binary):
//
//   magic "VELACKPT" | u32 version | u64 entry count |
//   per entry: u32 name length | name bytes | u64 element count | f32 data
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace vela::store {

using NamedTensors = std::vector<std::pair<std::string, Tensor>>;

// Low-level container I/O. Throws CheckError on malformed files.
void save_named_tensors(const std::string& path, const NamedTensors& tensors);
NamedTensors load_named_tensors(const std::string& path);

}  // namespace vela::store
