#include "store/disk_table.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "util/check.h"

namespace vela::store {
namespace {

constexpr char kMagic[8] = {'V', 'E', 'L', 'A', 'S', 'T', 'O', 'R'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = sizeof(kMagic) + 3 * sizeof(std::uint32_t);
constexpr std::size_t kSlotHeaderBytes = 3 * sizeof(std::uint32_t);

std::uint32_t fnv1a(const unsigned char* data, std::size_t bytes) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

void store_u32(unsigned char* at, std::uint32_t v) {
  std::memcpy(at, &v, sizeof(std::uint32_t));
}

std::uint32_t load_u32(const unsigned char* at) {
  std::uint32_t v;
  std::memcpy(&v, at, sizeof(std::uint32_t));
  return v;
}

}  // namespace

DiskTable::DiskTable(std::string path, bool remove_on_close)
    : path_(std::move(path)), remove_on_close_(remove_on_close) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  VELA_CHECK_MSG(fd_ >= 0, "cannot open store table " << path_);
  struct stat st{};
  VELA_CHECK(::fstat(fd_, &st) == 0);
  const auto existing = static_cast<std::size_t>(st.st_size);
  if (existing == 0) {
    // Fresh table: header only; slot geometry is fixed at the first write.
    VELA_CHECK(::ftruncate(fd_, static_cast<off_t>(kHeaderBytes)) == 0);
    map_file(kHeaderBytes);
    static_assert(std::is_trivially_copyable_v<decltype(kMagic)>);
    static_assert(sizeof(kMagic) == 8, "table magic is 8 raw bytes");
    std::memcpy(map_, kMagic, sizeof(kMagic));
    store_u32(map_ + 8, kVersion);
    store_u32(map_ + 12, 0);  // slot_bytes
    store_u32(map_ + 16, 0);  // capacity
    return;
  }
  VELA_CHECK_MSG(existing >= kHeaderBytes,
                 "store table " << path_ << " truncated below header");
  map_file(existing);
  VELA_CHECK_MSG(std::memcmp(map_, kMagic, sizeof(kMagic)) == 0,
                 "not a VELA store table: " << path_);
  VELA_CHECK_MSG(load_u32(map_ + 8) == kVersion,
                 "unsupported store table version " << load_u32(map_ + 8));
  slot_bytes_ = load_u32(map_ + 12);
  capacity_ = load_u32(map_ + 16);
  VELA_CHECK_MSG(existing >= kHeaderBytes + capacity_ * slot_bytes_,
                 "store table " << path_ << " truncated: header declares "
                                << capacity_ << " slots of " << slot_bytes_
                                << " bytes");
  for (std::uint32_t s = 0; s < capacity_; ++s) {
    if (load_u32(slot_base(s)) != 0) ++in_use_;
  }
}

DiskTable::~DiskTable() {
  if (map_ != nullptr) ::munmap(map_, mapped_bytes_);
  if (fd_ >= 0) ::close(fd_);
  if (remove_on_close_) ::unlink(path_.c_str());
}

void DiskTable::map_file(std::size_t bytes) {
  if (map_ != nullptr) {
    VELA_CHECK(::munmap(map_, mapped_bytes_) == 0);
    map_ = nullptr;
  }
  void* m =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  VELA_CHECK_MSG(m != MAP_FAILED, "mmap failed for store table " << path_);
  map_ = static_cast<unsigned char*>(m);
  mapped_bytes_ = bytes;
}

unsigned char* DiskTable::slot_base(std::uint32_t slot) const {
  return map_ + kHeaderBytes + static_cast<std::size_t>(slot) * slot_bytes_;
}

void DiskTable::grow(std::size_t min_capacity) {
  std::size_t next = std::max<std::size_t>(capacity_ * 2, 4);
  next = std::max(next, min_capacity);
  const std::size_t bytes = kHeaderBytes + next * slot_bytes_;
  VELA_CHECK(::ftruncate(fd_, static_cast<off_t>(bytes)) == 0);
  map_file(bytes);  // ftruncate zero-fills, so new slots read as free
  capacity_ = next;
  store_u32(map_ + 16, static_cast<std::uint32_t>(capacity_));
}

void DiskTable::reslot(std::size_t new_slot_bytes) {
  const std::size_t bytes = kHeaderBytes + capacity_ * new_slot_bytes;
  VELA_CHECK(::ftruncate(fd_, static_cast<off_t>(bytes)) == 0);
  map_file(bytes);
  // Spread the slots into the wider layout highest-first: slot s's new
  // offset is >= its old one and below slot s+1's new offset, so no source
  // region is overwritten before it moves. Slot indices are stable — the
  // pager's disk_slot handles stay valid across a reslot.
  for (std::uint32_t s = capacity_; s-- > 0;) {
    unsigned char* old_base = map_ + kHeaderBytes + s * slot_bytes_;
    unsigned char* new_base = map_ + kHeaderBytes + s * new_slot_bytes;
    std::memmove(new_base, old_base, slot_bytes_);
    std::memset(new_base + slot_bytes_, 0, new_slot_bytes - slot_bytes_);
  }
  slot_bytes_ = new_slot_bytes;
  store_u32(map_ + 12, static_cast<std::uint32_t>(slot_bytes_));
}

std::uint32_t DiskTable::write(const unsigned char* data, std::size_t bytes) {
  if (slot_bytes_ == 0) {
    slot_bytes_ = kSlotHeaderBytes + bytes;
    store_u32(map_ + 12, static_cast<std::uint32_t>(slot_bytes_));
  }
  // Images grow over an expert's life (a freshly-installed adapter pages
  // out without gradients or moments; a trained one carries both), so the
  // first write's size is a floor, not an invariant — widen the slots when
  // a bigger image arrives.
  if (kSlotHeaderBytes + bytes > slot_bytes_) {
    reslot(kSlotHeaderBytes + bytes);
  }
  std::uint32_t slot = kNoSlot;
  for (std::uint32_t s = 0; s < capacity_; ++s) {
    if (load_u32(slot_base(s)) == 0) {
      slot = s;
      break;
    }
  }
  if (slot == kNoSlot) {
    slot = static_cast<std::uint32_t>(capacity_);
    grow(capacity_ + 1);
  }
  unsigned char* base = slot_base(slot);
  store_u32(base + 4, static_cast<std::uint32_t>(bytes));
  store_u32(base + 8, fnv1a(data, bytes));
  // Opaque payload bytes; no struct layout. vela-lint: allow(wire-memcpy)
  std::memcpy(base + kSlotHeaderBytes, data, bytes);
  store_u32(base, 1);  // publish last: a torn write leaves the slot free
  ++in_use_;
  return slot;
}

std::vector<unsigned char> DiskTable::read(std::uint32_t slot) const {
  VELA_CHECK_MSG(slot < capacity_, "store table slot " << slot
                                                       << " out of range");
  const unsigned char* base = slot_base(slot);
  VELA_CHECK_MSG(load_u32(base) != 0, "store table slot " << slot
                                                          << " is free");
  const std::uint32_t bytes = load_u32(base + 4);
  VELA_CHECK_MSG(kSlotHeaderBytes + bytes <= slot_bytes_,
                 "store table slot " << slot << " declares " << bytes
                                     << " payload bytes in a " << slot_bytes_
                                     << "-byte slot (torn write?)");
  const std::uint32_t want = load_u32(base + 8);
  const std::uint32_t got = fnv1a(base + kSlotHeaderBytes, bytes);
  VELA_CHECK_MSG(got == want, "store table slot "
                                  << slot << " checksum mismatch (stored "
                                  << want << ", computed " << got
                                  << "): table is corrupt");
  return std::vector<unsigned char>(base + kSlotHeaderBytes,
                                    base + kSlotHeaderBytes + bytes);
}

void DiskTable::free_slot(std::uint32_t slot) {
  VELA_CHECK(slot < capacity_);
  unsigned char* base = slot_base(slot);
  VELA_CHECK_MSG(load_u32(base) != 0,
                 "double free of store table slot " << slot);
  store_u32(base, 0);
  --in_use_;
}

}  // namespace vela::store
