// Lightweight runtime-check macros used across the library.
//
// VELA_CHECK is always on (it guards API contracts and distributed-protocol
// invariants whose violation would otherwise corrupt training state), while
// VELA_DCHECK compiles out in release builds and is meant for hot inner loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace vela {

// Thrown by VELA_CHECK failures. Deriving from std::logic_error keeps the
// failure catchable in tests while signalling a programming/contract error.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "VELA_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace vela

#define VELA_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr)) ::vela::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define VELA_CHECK_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream vela_check_os_;                                  \
      vela_check_os_ << msg;                                              \
      ::vela::detail::check_failed(#expr, __FILE__, __LINE__,             \
                                   vela_check_os_.str());                 \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define VELA_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define VELA_DCHECK(expr) VELA_CHECK(expr)
#endif
