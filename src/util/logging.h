// Minimal leveled logger.
//
// The distributed runtime runs many threads; log lines are serialized through
// a single mutex so interleaved output stays readable. Verbosity is a global
// knob because experiments toggle it from main().
#pragma once

#include <sstream>
#include <string>

namespace vela {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

// Thread-safe sink used by the LOG macros. `tag` is typically a subsystem
// name such as "master" or "worker/2".
void log_message(LogLevel level, const std::string& tag,
                 const std::string& message);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string tag)
      : level_(level), tag_(std::move(tag)) {}
  ~LogLine() { log_message(level_, tag_, os_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace vela

#define VELA_LOG_DEBUG(tag) ::vela::detail::LogLine(::vela::LogLevel::kDebug, tag)
#define VELA_LOG_INFO(tag) ::vela::detail::LogLine(::vela::LogLevel::kInfo, tag)
#define VELA_LOG_WARN(tag) ::vela::detail::LogLine(::vela::LogLevel::kWarn, tag)
#define VELA_LOG_ERROR(tag) ::vela::detail::LogLine(::vela::LogLevel::kError, tag)
