#include "util/csv.h"

#include <sstream>

#include "util/check.h"

namespace vela {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : path_(path), out_(path), columns_(columns.size()) {
  VELA_CHECK_MSG(out_.good(), "failed to open CSV file " << path);
  VELA_CHECK(!columns.empty());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  VELA_CHECK_MSG(cells.size() == columns_,
                 "CSV row width " << cells.size() << " != header width "
                                  << columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    text.push_back(os.str());
  }
  row(text);
}

}  // namespace vela
