// Injectable monotonic clock for retry, backoff and heartbeat timing
// (DESIGN.md §11).
//
// Every deadline the fault-tolerance layer computes — ReliableLink's reply
// timeouts, the socket backend's reconnect backoff, the heartbeat monitor's
// probe schedule — flows through a Clock so tests can substitute a FakeClock
// and run hours of simulated timeouts in milliseconds of wall time. The
// vela_lint `naked-clock` rule enforces the discipline: a raw
// std::chrono::steady_clock::now() in src/comm or src/core is a lint error
// unless the call site is itself the OS-level injection point (a poll(2)
// deadline) and carries an allow() with rationale.
//
// The one subtle operation is wait_slice(): code that is about to block on a
// transport with a timeout asks the clock how long to *really* block for a
// given virtual budget. SystemClock returns the budget unchanged, so the
// default path is byte-for-byte the old behavior. FakeClock advances its
// virtual time by the whole budget and returns a tiny real slice — the
// blocking call still yields the CPU (a reply already in flight can land),
// but a timeout that would take seconds of wall time resolves in about a
// millisecond.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace vela::util {

class Clock {
 public:
  using time_point = std::chrono::steady_clock::time_point;

  virtual ~Clock() = default;

  [[nodiscard]] virtual time_point now() = 0;

  // Converts a virtual wait budget into the real duration the caller should
  // block for (see header comment). Never returns more than `budget`.
  [[nodiscard]] virtual std::chrono::milliseconds wait_slice(
      std::chrono::milliseconds budget) = 0;

  // Sleeps for `d` of this clock's time (backoff pauses).
  virtual void sleep_for(std::chrono::milliseconds d) = 0;
};

// The process-wide wall clock (steady_clock passthrough). Stateless and
// thread-safe; every timing-sensitive component defaults to it.
[[nodiscard]] Clock& system_clock();

// Deterministic manual-advance clock for tests. now() only moves via
// advance(), sleep_for() and wait_slice() (which advances by the full
// budget). Thread-safe: the socket backend's tx and rx paths may consult it
// concurrently.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(
      std::chrono::milliseconds real_slice = std::chrono::milliseconds(1))
      : real_slice_(real_slice) {}

  [[nodiscard]] time_point now() override {
    std::lock_guard<std::mutex> lock(mutex_);
    return now_;
  }

  [[nodiscard]] std::chrono::milliseconds wait_slice(
      std::chrono::milliseconds budget) override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      now_ += budget;
      slept_ += budget;
    }
    return budget < real_slice_ ? budget : real_slice_;
  }

  void sleep_for(std::chrono::milliseconds d) override {
    std::lock_guard<std::mutex> lock(mutex_);
    now_ += d;
    slept_ += d;
    ++sleep_calls_;
  }

  void advance(std::chrono::milliseconds d) {
    std::lock_guard<std::mutex> lock(mutex_);
    now_ += d;
  }

  // Total virtual time spent in sleep_for/wait_slice, and the number of
  // sleep_for calls — tests pin backoff schedules with these.
  [[nodiscard]] std::chrono::milliseconds total_slept() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return slept_;
  }
  [[nodiscard]] std::uint64_t sleep_calls() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sleep_calls_;
  }

 private:
  mutable std::mutex mutex_;
  // Start well above the epoch so subtracting an interval can't underflow.
  time_point now_ = time_point{} + std::chrono::hours(1000);
  std::chrono::milliseconds real_slice_;
  std::chrono::milliseconds slept_{0};
  std::uint64_t sleep_calls_ = 0;
};

}  // namespace vela::util
