#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace vela {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& tag,
                 const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double t =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%9.3f] %-5s [%s] %s\n", t, level_name(level),
               tag.c_str(), message.c_str());
}

}  // namespace vela
