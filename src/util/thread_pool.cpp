#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/check.h"

namespace vela::util {
namespace {

// Nested-submit guard: set while a thread (worker or participating caller)
// is executing pool tasks, so nested run()/parallel_for() calls go inline.
thread_local bool tl_in_pool_task = false;

std::unique_ptr<ThreadPool> g_pool;           // guarded by g_pool_mutex
std::mutex g_pool_mutex;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : size_(std::max<std::size_t>(threads, 1)) {
  workers_.reserve(size_ - 1);
  for (std::size_t i = 0; i + 1 < size_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<audit::AuditedMutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_pool_task() { return tl_in_pool_task; }

void ThreadPool::work_on(Job& job) {
  tl_in_pool_task = true;
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) break;
    std::exception_ptr err;
    try {
      (*job.task)(i);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<audit::AuditedMutex> lock(job.m);
      if (err) job.errors.emplace_back(i, err);
      if (++job.done == job.count) job.cv.notify_all();
    }
  }
  tl_in_pool_task = false;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<audit::AuditedMutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = queue_.front();
      // A job whose every index is claimed is spent; retire it and look
      // again rather than spinning on fetch_add.
      if (job->next.load(std::memory_order_relaxed) >= job->count) {
        queue_.pop_front();
        continue;
      }
    }
    work_on(*job);
  }
}

void ThreadPool::dispatch(const std::function<void(std::size_t)>& task,
                          std::size_t count) {
  if (count == 0) return;
  if (size_ == 1 || count == 1 || tl_in_pool_task) {
    // Inline/serial path: index order, first exception aborts — identical
    // to the pre-pool serial loops.
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  auto job = std::make_shared<Job>();
  job->task = &task;
  job->count = count;
  {
    std::lock_guard<audit::AuditedMutex> lock(queue_mutex_);
    queue_.push_back(job);
  }
  queue_cv_.notify_all();

  // The caller is a lane too.
  work_on(*job);

  {
    std::unique_lock<audit::AuditedMutex> lock(job->m);
    job->cv.wait(lock, [&] { return job->done == job->count; });
  }
  {
    // Retire the job from the queue if no worker got there first.
    std::lock_guard<audit::AuditedMutex> lock(queue_mutex_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->get() == job.get()) {
        queue_.erase(it);
        break;
      }
    }
  }
  if (!job->errors.empty()) {
    auto first = std::min_element(
        job->errors.begin(), job->errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(first->second);
  }
}

void ThreadPool::run(const std::vector<std::function<void()>>& tasks) {
  dispatch([&tasks](std::size_t i) { tasks[i](); }, tasks.size());
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t g = std::max<std::size_t>(grain, 1);
  const std::size_t chunks = (n + g - 1) / g;
  dispatch(
      [&](std::size_t c) {
        const std::size_t begin = c * g;
        body(begin, std::min(n, begin + g), c);
      },
      chunks);
}

std::size_t ThreadPool::env_threads() {
  if (const char* env = std::getenv("VELA_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool == nullptr) {
    g_pool = std::make_unique<ThreadPool>(env_threads());
  }
  return *g_pool;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pool = std::make_unique<ThreadPool>(threads == 0 ? env_threads() : threads);
}

}  // namespace vela::util
