#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace vela {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  VELA_CHECK(!values.empty());
  VELA_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<double> empirical_cdf(const std::vector<double>& values,
                                  const std::vector<double>& points) {
  VELA_CHECK(!values.empty());
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(points.size());
  for (double x : points) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    out.push_back(static_cast<double>(it - sorted.begin()) /
                  static_cast<double>(sorted.size()));
  }
  return out;
}

void normalize_in_place(std::vector<double>& v) {
  double total = 0.0;
  for (double x : v) {
    VELA_CHECK(x >= 0.0);
    total += x;
  }
  if (total <= 0.0) return;
  for (auto& x : v) x /= total;
}

double entropy(const std::vector<double>& p) {
  double h = 0.0;
  for (double x : p) {
    if (x > 0.0) h -= x * std::log(x);
  }
  return h;
}

double l1_distance(const std::vector<double>& a, const std::vector<double>& b) {
  VELA_CHECK(a.size() == b.size());
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d;
}

}  // namespace vela
