// Small statistics helpers shared by the profiler, benchmarks and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace vela {

// Streaming mean/variance/min/max (Welford).
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Percentile of a sample (linear interpolation); p in [0, 100].
double percentile(std::vector<double> values, double p);

// Empirical CDF evaluated on a sorted copy of `values` at the given points.
std::vector<double> empirical_cdf(const std::vector<double>& values,
                                  const std::vector<double>& points);

// Normalizes a non-negative vector to sum to 1 (no-op on an all-zero input).
void normalize_in_place(std::vector<double>& v);

// Entropy (nats) of a probability vector; tolerates zeros.
double entropy(const std::vector<double>& p);

// L1 distance between two equally sized vectors.
double l1_distance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace vela
