// Compiled-in dynamic auditors, armed at runtime by VELA_AUDIT=1
// (DESIGN.md §9).
//
// Three invariant checkers share this module:
//
//  * LockOrderGraph — every AuditedMutex acquisition while other audited
//    mutexes are held adds held→acquired edges to a global lock-order graph;
//    the first edge that closes a cycle is a potential deadlock and fails
//    the audit at formation time, long before the interleaving that would
//    actually deadlock. blocking_queue / ThreadPool / channel / meter
//    mutexes are all AuditedMutex.
//
//  * ConservationLedger — byte conservation for the transport layer: every
//    wire byte a channel posts must end up delivered, dropped by a fault, or
//    still sitting in a queue. Channels feed the ledger from independent
//    measurement points (send entry, queue boundary, receive exit, fault
//    dispositions), and the runtimes call check() at every step end, so an
//    accounting leak — a code path that forgets a disposition — trips the
//    audit within one step. Retransmission bytes are tracked separately so
//    the recovery layer's re-posts are distinguishable from first sends.
//
//  * check_backward_tensors — shape/aliasing guard for autograd's reverse
//    sweep: a gradient must match its value's shape and must not alias the
//    value's storage (an aliased buffer would let an in-place optimizer
//    update corrupt a gradient still being propagated).
//
// When VELA_AUDIT is not set every hook is a single relaxed atomic load.
// Violations log and abort by default; tests install a handler to observe
// them instead.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

namespace vela {
class Tensor;
}

namespace vela::audit {

// True when auditing is armed (VELA_AUDIT=1 in the environment, read once,
// or an explicit test override).
bool enabled();
// Test hook: overrides the environment; pass-through to re-arm lazily is not
// supported (tests set it explicitly around their scopes).
void set_enabled_for_testing(bool on);

// Violation sink. The default handler logs the category and detail to
// stderr and aborts. Tests install a handler to capture violations; an
// empty handler restores the default.
using ViolationHandler =
    std::function<void(const std::string& category, const std::string& detail)>;
void set_violation_handler(ViolationHandler handler);
// Reports a violation through the current handler.
void fail(const char* category, const std::string& detail);

// --- lock-order auditing ----------------------------------------------------

class AuditedMutex;

// Global held→acquired lock-order graph over live AuditedMutex instances.
// Cycle formation is reported through fail("lock-order", ...).
class LockOrderGraph {
 public:
  static LockOrderGraph& instance();

  void on_acquire(const AuditedMutex* m);
  void on_release(const AuditedMutex* m);
  // Drops a destroyed mutex's node (addresses are reused; a stale node
  // could weld two unrelated lifetimes into a phantom cycle).
  void forget(const AuditedMutex* m);
  // Clears edges and held stacks (tests).
  void reset_for_testing();
  // Number of distinct held→acquired edges observed so far.
  std::size_t edge_count() const;

 private:
  LockOrderGraph() = default;
};

// Drop-in std::mutex replacement that reports acquisitions to the
// LockOrderGraph when auditing is armed. Satisfies Lockable, so it works
// under std::lock_guard / std::unique_lock and (with
// std::condition_variable_any) condition waits — the wait's internal
// unlock/relock flows through these methods, keeping the held-set exact.
class AuditedMutex {
 public:
  explicit AuditedMutex(const char* name = "mutex") : name_(name) {}
  ~AuditedMutex();

  AuditedMutex(const AuditedMutex&) = delete;
  AuditedMutex& operator=(const AuditedMutex&) = delete;

  void lock();
  bool try_lock();
  void unlock();

  const char* name() const { return name_; }

 private:
  std::mutex m_;
  const char* name_;
};

// --- byte-conservation auditing ---------------------------------------------

// Process-global transport ledger. Counters are fed from independent points
// in the channel layer; conservation is
//
//   posted == delivered + dropped + in_flight
//
// where in_flight = enqueued - dequeued. check() verifies the balance and
// reports the retransmit share; it is meaningful at step boundaries, when
// the runtime's request/reply traffic is quiescent.
//
// All counter updates and reads share one plain std::mutex (never an
// AuditedMutex — the ledger must not feed the graph it audits), and the
// channel layer uses the compound transitions so that a message is never
// observable by a receiver before its send-side accounting completed:
// on_posted_enqueued runs BEFORE the queue push publishes the message, and
// a push that then loses the race with close() converts the charge with
// on_enqueue_rejected. Without this ordering a sender preempted between
// push and charge makes a step-end check() see delivered bytes that were
// never enqueued — a false leak.
class ConservationLedger {
 public:
  static ConservationLedger& instance();

  void on_posted(std::uint64_t bytes);      // send entry (per transmission)
  void on_enqueued(std::uint64_t bytes);    // accepted into a queue
  void on_dequeued(std::uint64_t bytes);    // handed to a receiver
  void on_delivered(std::uint64_t bytes);   // receive API returned it
  void on_dropped(std::uint64_t bytes);     // fault disposition (drop/sever)
  void on_retransmit(std::uint64_t bytes);  // recovery re-post (also posted)
  // Session-resume replay on the socket backend (physical record bytes,
  // BELOW the accounting boundary — informational only). With replays > 0
  // and the balance intact, check() proves replayed bytes were charged
  // exactly once: the receiver's sequence dedupe keeps a replayed frame
  // from ever reaching `delivered` twice.
  void on_session_replay(std::uint64_t physical_bytes);
  // Expert-store paging (DESIGN.md §15): bytes spilled to / reloaded from
  // the on-disk expert table. Disk traffic, not wire traffic — informational
  // counters OUTSIDE the conservation balance, but checked for their own
  // invariant: every byte paged in was paged out first (in <= out), so a
  // page-in that reads more than the store ever wrote trips the audit.
  void on_page_out(std::uint64_t bytes);
  void on_page_in(std::uint64_t bytes);

  // Compound transitions (single critical section each) for the channel
  // hot paths — see the ordering contract above.
  void on_posted_enqueued(std::uint64_t bytes);   // charge before push
  void on_posted_dropped(std::uint64_t bytes);    // drop/sever disposition
  void on_enqueue_rejected(std::uint64_t bytes);  // failed push: enqueued
                                                  //   charge becomes dropped
  void on_received(std::uint64_t bytes);          // dequeued + delivered

  struct Snapshot {
    std::uint64_t posted = 0;
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t retransmit = 0;
    std::uint64_t session_replays = 0;
    std::uint64_t session_replay_bytes = 0;
    std::uint64_t page_out_bytes = 0;
    std::uint64_t page_in_bytes = 0;
    std::uint64_t in_flight() const { return enqueued - dequeued; }
    bool balanced() const {
      return posted == delivered + dropped + in_flight() &&
             dequeued == delivered;
    }
  };
  Snapshot snapshot() const;

  // Verifies conservation; `phase` labels the checkpoint in the violation
  // message (e.g. "train_step", "ep_step").
  void check(const char* phase) const;
  void reset_for_testing();

 private:
  ConservationLedger() = default;
};

// --- autograd backward auditing ---------------------------------------------

// Validates one (value, grad) pair during the reverse sweep: shapes must
// match and the buffers must not alias. `where` names the node for the
// violation message.
void check_backward_tensors(const Tensor& value, const Tensor& grad,
                            const char* where);

}  // namespace vela::audit
