// Tiny CSV writer used by benchmarks to dump figure series.
//
// Each bench binary both prints human-readable rows and (optionally) writes
// a CSV next to the binary so the figures can be re-plotted externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace vela {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  // Appends a data row; the number of cells must match the header.
  void row(const std::vector<std::string>& cells);

  // Convenience: formats doubles with full precision.
  void row(const std::vector<double>& cells);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace vela
