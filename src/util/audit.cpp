#include "util/audit.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

namespace vela::audit {

namespace {

// -1 = not yet read from the environment, 0 = off, 1 = on.
std::atomic<int> g_enabled{-1};

std::mutex g_handler_mutex;
ViolationHandler g_handler;  // empty → default log+abort

void default_handler(const std::string& category, const std::string& detail) {
  std::fprintf(stderr, "[vela-audit] %s violation: %s\n", category.c_str(),
               detail.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

bool enabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    const char* env = std::getenv("VELA_AUDIT");
    state = (env != nullptr && env[0] == '1') ? 1 : 0;
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

void set_enabled_for_testing(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void set_violation_handler(ViolationHandler handler) {
  std::lock_guard<std::mutex> lock(g_handler_mutex);
  g_handler = std::move(handler);
}

void fail(const char* category, const std::string& detail) {
  ViolationHandler handler;
  {
    std::lock_guard<std::mutex> lock(g_handler_mutex);
    handler = g_handler;
  }
  if (handler) {
    handler(category, detail);
  } else {
    default_handler(category, detail);
  }
}

// --- lock-order auditing ----------------------------------------------------

namespace {

// Global graph state. Guarded by a plain std::mutex — never an AuditedMutex,
// so the auditor cannot recurse into itself. Ordered containers keep the
// diagnostics and traversal deterministic.
struct LockGraphState {
  std::mutex mutex;
  std::map<const AuditedMutex*, std::set<const AuditedMutex*>> edges;
  // Owns every per-thread held-stack ever handed out, so the stacks stay
  // reachable from this (intentionally leaked) static after their thread
  // exits — leak checkers stay quiet and teardown order cannot dangle them.
  // Bounded by the number of auditing threads the process ever starts.
  std::vector<std::unique_ptr<std::vector<const AuditedMutex*>>> held_stacks;
};

LockGraphState& graph_state() {
  static LockGraphState* state = new LockGraphState();  // vela-lint: allow(naked-new)
  return *state;  // leaked intentionally: mutexes may outlive static teardown
}

// Per-thread stack of currently held audited mutexes, in acquisition order.
// A non-owning pointer TLS, not a plain thread_local vector: the vector's
// destructor would run at TLS teardown, but atexit-destroyed statics (the
// global ThreadPool) still lock AuditedMutexes after that point. The graph
// state owns the storage.
thread_local std::vector<const AuditedMutex*>* t_held = nullptr;

std::vector<const AuditedMutex*>& held_stack() {
  if (t_held == nullptr) {
    LockGraphState& state = graph_state();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.held_stacks.push_back(
        std::make_unique<std::vector<const AuditedMutex*>>());
    t_held = state.held_stacks.back().get();
  }
  return *t_held;
}

// True if `to` is reachable from `from` following recorded edges. Caller
// holds the graph mutex.
bool reachable(const LockGraphState& state, const AuditedMutex* from,
               const AuditedMutex* to) {
  std::set<const AuditedMutex*> visited;
  std::vector<const AuditedMutex*> stack{from};
  while (!stack.empty()) {
    const AuditedMutex* node = stack.back();
    stack.pop_back();
    if (node == to) return true;
    if (!visited.insert(node).second) continue;
    auto it = state.edges.find(node);
    if (it == state.edges.end()) continue;
    for (const AuditedMutex* next : it->second) stack.push_back(next);
  }
  return false;
}

}  // namespace

LockOrderGraph& LockOrderGraph::instance() {
  static LockOrderGraph graph;
  return graph;
}

void LockOrderGraph::on_acquire(const AuditedMutex* m) {
  std::vector<const AuditedMutex*>& held_list = held_stack();
  if (!held_list.empty()) {
    LockGraphState& state = graph_state();
    std::lock_guard<std::mutex> lock(state.mutex);
    for (const AuditedMutex* held : held_list) {
      if (held == m) continue;  // relock through a cv wait; no new ordering
      auto& successors = state.edges[held];
      if (!successors.insert(m).second) continue;  // edge already known
      // The new edge held→m closes a cycle iff held was already reachable
      // from m. Report the inversion with both mutex names.
      if (reachable(state, m, held)) {
        std::ostringstream oss;
        oss << "lock-order cycle: acquiring \"" << m->name() << "\" (" << m
            << ") while holding \"" << held->name() << "\" (" << held
            << ") inverts an established order";
        successors.erase(m);  // keep the graph acyclic for later checks
        fail("lock-order", oss.str());
      }
    }
  }
  held_list.push_back(m);
}

void LockOrderGraph::on_release(const AuditedMutex* m) {
  std::vector<const AuditedMutex*>& held_list = held_stack();
  for (auto it = held_list.rbegin(); it != held_list.rend(); ++it) {
    if (*it == m) {
      held_list.erase(std::next(it).base());
      return;
    }
  }
}

void LockOrderGraph::forget(const AuditedMutex* m) {
  LockGraphState& state = graph_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.edges.erase(m);
  for (auto& [node, successors] : state.edges) {
    (void)node;
    successors.erase(m);
  }
}

void LockOrderGraph::reset_for_testing() {
  // Materialize this thread's stack BEFORE taking the graph mutex —
  // held_stack() locks it to register a fresh stack.
  std::vector<const AuditedMutex*>& held = held_stack();
  LockGraphState& state = graph_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.edges.clear();
  held.clear();
}

std::size_t LockOrderGraph::edge_count() const {
  LockGraphState& state = graph_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::size_t count = 0;
  for (const auto& [node, successors] : state.edges) {
    (void)node;
    count += successors.size();
  }
  return count;
}

AuditedMutex::~AuditedMutex() {
  if (enabled()) LockOrderGraph::instance().forget(this);
}

void AuditedMutex::lock() {
  m_.lock();  // vela-lint: allow(manual-lock) — this IS the RAII layer
  if (enabled()) LockOrderGraph::instance().on_acquire(this);
}

bool AuditedMutex::try_lock() {
  if (!m_.try_lock()) return false;
  if (enabled()) LockOrderGraph::instance().on_acquire(this);
  return true;
}

void AuditedMutex::unlock() {
  if (enabled()) LockOrderGraph::instance().on_release(this);
  m_.unlock();  // vela-lint: allow(manual-lock) — this IS the RAII layer
}

// --- byte-conservation auditing ---------------------------------------------

namespace {

// Counter state. Guarded by a plain std::mutex (never an AuditedMutex — the
// ledger must not feed the lock-order graph it shares a module with). A
// mutex rather than per-counter atomics because the channel layer needs
// compound transitions: a message's posted+enqueued charge must become
// visible atomically, BEFORE the queue push publishes the message, or a
// step-end check() racing a preempted sender sees a false leak.
struct LedgerState {
  std::mutex mutex;
  std::uint64_t posted = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t retransmit = 0;
  std::uint64_t session_replays = 0;
  std::uint64_t session_replay_bytes = 0;
  std::uint64_t page_out_bytes = 0;
  std::uint64_t page_in_bytes = 0;
};

LedgerState& ledger_state() {
  static LedgerState state;
  return state;
}

}  // namespace

ConservationLedger& ConservationLedger::instance() {
  static ConservationLedger ledger;
  return ledger;
}

void ConservationLedger::on_posted(std::uint64_t bytes) {
  LedgerState& state = ledger_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.posted += bytes;
}
void ConservationLedger::on_enqueued(std::uint64_t bytes) {
  LedgerState& state = ledger_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.enqueued += bytes;
}
void ConservationLedger::on_dequeued(std::uint64_t bytes) {
  LedgerState& state = ledger_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.dequeued += bytes;
}
void ConservationLedger::on_delivered(std::uint64_t bytes) {
  LedgerState& state = ledger_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.delivered += bytes;
}
void ConservationLedger::on_dropped(std::uint64_t bytes) {
  LedgerState& state = ledger_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.dropped += bytes;
}
void ConservationLedger::on_retransmit(std::uint64_t bytes) {
  LedgerState& state = ledger_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.retransmit += bytes;
}
void ConservationLedger::on_session_replay(std::uint64_t physical_bytes) {
  LedgerState& state = ledger_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  // Session-resume replays happen BELOW the accounting boundary (physical
  // record bytes, not Message::wire_size), so they never touch the balance
  // counters — the receiver's sequence dedupe guarantees a replayed frame
  // is delivered at most once, and that is exactly what check() proves:
  // with replays > 0 and the balance intact, replayed bytes were charged
  // exactly once.
  ++state.session_replays;
  state.session_replay_bytes += physical_bytes;
}
void ConservationLedger::on_page_out(std::uint64_t bytes) {
  LedgerState& state = ledger_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  // Paging is disk traffic, below the wire-accounting boundary: like
  // session replays these counters stay OUTSIDE the conservation balance.
  // Their own invariant (in <= out) is enforced in on_page_in.
  state.page_out_bytes += bytes;
}
void ConservationLedger::on_page_in(std::uint64_t bytes) {
  LedgerState& state = ledger_state();
  std::uint64_t in = 0;
  std::uint64_t out = 0;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.page_in_bytes += bytes;
    in = state.page_in_bytes;
    out = state.page_out_bytes;
  }
  if (enabled() && in > out) {
    std::ostringstream oss;
    oss << "expert store read back " << in << " paged bytes but only " << out
        << " were ever written; the on-disk table is feeding bytes that were "
           "never spilled";
    fail("paging", oss.str());
  }
}

void ConservationLedger::on_posted_enqueued(std::uint64_t bytes) {
  LedgerState& state = ledger_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.posted += bytes;
  state.enqueued += bytes;
}
void ConservationLedger::on_posted_dropped(std::uint64_t bytes) {
  LedgerState& state = ledger_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.posted += bytes;
  state.dropped += bytes;
}
void ConservationLedger::on_enqueue_rejected(std::uint64_t bytes) {
  LedgerState& state = ledger_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  // The push lost the race with close(): the optimistic enqueued charge
  // becomes a drop. Between the charge and this conversion the bytes look
  // in-flight, which still balances.
  state.enqueued -= bytes;
  state.dropped += bytes;
}
void ConservationLedger::on_received(std::uint64_t bytes) {
  LedgerState& state = ledger_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.dequeued += bytes;
  state.delivered += bytes;
}

ConservationLedger::Snapshot ConservationLedger::snapshot() const {
  LedgerState& state = ledger_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  Snapshot snap;
  snap.posted = state.posted;
  snap.enqueued = state.enqueued;
  snap.dequeued = state.dequeued;
  snap.delivered = state.delivered;
  snap.dropped = state.dropped;
  snap.retransmit = state.retransmit;
  snap.session_replays = state.session_replays;
  snap.session_replay_bytes = state.session_replay_bytes;
  snap.page_out_bytes = state.page_out_bytes;
  snap.page_in_bytes = state.page_in_bytes;
  return snap;
}

void ConservationLedger::check(const char* phase) const {
  if (!enabled()) return;
  const Snapshot snap = snapshot();
  if (snap.balanced()) return;
  std::ostringstream oss;
  oss << "byte conservation broken at \"" << phase
      << "\": posted=" << snap.posted << " delivered=" << snap.delivered
      << " dropped=" << snap.dropped << " in_flight=" << snap.in_flight()
      << " (enqueued=" << snap.enqueued << " dequeued=" << snap.dequeued
      << ") retransmit=" << snap.retransmit
      << " session_replays=" << snap.session_replays
      << "; expected posted == delivered + dropped + in_flight";
  fail("conservation", oss.str());
}

void ConservationLedger::reset_for_testing() {
  LedgerState& state = ledger_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.posted = 0;
  state.enqueued = 0;
  state.dequeued = 0;
  state.delivered = 0;
  state.dropped = 0;
  state.retransmit = 0;
  state.session_replays = 0;
  state.session_replay_bytes = 0;
  state.page_out_bytes = 0;
  state.page_in_bytes = 0;
}

}  // namespace vela::audit
