#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace vela {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  VELA_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return r % n;
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  // Box-Muller rejects exact zero (log(0) = -inf); uniform() can return it.
  // vela-lint: allow(float-equality)
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(theta);
  has_spare_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  VELA_CHECK(n > 0);
  ZipfSampler sampler(static_cast<std::size_t>(n), s);
  return sampler.sample(*this);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  VELA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    VELA_CHECK_MSG(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  VELA_CHECK_MSG(total > 0.0, "categorical weights must not all be zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point slack lands on the last bucket
}

Rng Rng::split() { return Rng(next_u64()); }

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  VELA_CHECK(n > 0);
  VELA_CHECK(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t i) const {
  VELA_CHECK(i < cdf_.size());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace vela
