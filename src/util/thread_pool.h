// Fixed-size, work-stealing-free thread pool shared by every parallel hot
// path in the runtime (tensor kernels, per-expert forward/backward on the
// workers, dispatch serialization on the master).
//
// Design constraints, in order of importance:
//
//  * Determinism. parallel_for() splits [0, n) into contiguous chunks whose
//    boundaries depend only on n and the grain — never on the thread count
//    or on scheduling — so a kernel that writes disjoint chunk outputs (or
//    reduces per-chunk partials merged in chunk order) produces bit-identical
//    results under VELA_THREADS=1 and VELA_THREADS=64.
//  * Serial fallback. A pool of size 1 never touches the queue: every task
//    runs inline on the caller, in index order, which *is* the serial code
//    path (and what the determinism tests compare against).
//  * No nested deadlock. A task that itself calls run()/parallel_for()
//    executes the nested work inline on its own lane instead of blocking on
//    a queue that may never drain.
//  * The caller participates: submitting N tasks to a pool of size T uses
//    the caller as one of the T lanes, so a pool of size T spawns T-1
//    threads and size()==1 spawns none.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/audit.h"

namespace vela::util {

class ThreadPool {
 public:
  // `threads` is the total lane count including the calling thread; 0 is
  // clamped to 1. A pool of size T spawns T-1 worker threads.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return size_; }

  // Runs every task to completion (the caller executes its share). If any
  // tasks threw, rethrows the exception of the lowest-index failing task —
  // the same exception the serial loop would have surfaced, since tasks
  // before it completed without error. Inline execution (size 1 or a nested
  // call) instead throws at the first failing task, exactly like serial code.
  void run(const std::vector<std::function<void()>>& tasks);

  // Fixed-partition parallel loop: chunk c covers
  // [c*grain, min(n, (c+1)*grain)) and body(begin, end, c) is invoked once
  // per chunk. Chunk boundaries depend only on (n, grain), so per-chunk
  // reductions merged in chunk order are reproducible at any pool size.
  // With one chunk, size()==1, or when called from inside a pool task, the
  // chunks run inline on the caller in ascending order.
  void parallel_for(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

  // True while the current thread is executing a pool task (the nested-
  // submit guard); exposed so kernels can skip parallel setup work early.
  static bool in_pool_task();

  // The process-wide pool, created on first use with env_threads() lanes.
  static ThreadPool& global();
  // Replaces the global pool (tests and benchmarks sweeping thread counts).
  // Must only be called while no tasks are in flight. `threads`==0 resets
  // to env_threads().
  static void set_global_threads(std::size_t threads);
  // VELA_THREADS if set to a positive integer, else hardware_concurrency
  // (itself clamped to at least 1).
  static std::size_t env_threads();

 private:
  // One submitted batch of indexed tasks. Lanes claim indices through
  // `next`; completion is tracked under `m`.
  struct Job {
    const std::function<void(std::size_t)>* task = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::size_t done = 0;  // guarded by m
    // (task index, exception) pairs; rethrow picks the lowest index.
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
    audit::AuditedMutex m{"thread_pool_job"};
    std::condition_variable_any cv;
  };

  void worker_loop();
  // Claims and executes chunks of `job` until none remain.
  static void work_on(Job& job);
  // Runs `count` indexed tasks through the pool (or inline) and applies the
  // exception policy described on run().
  void dispatch(const std::function<void(std::size_t)>& task,
                std::size_t count);

  std::size_t size_ = 1;
  std::vector<std::thread> workers_;
  audit::AuditedMutex queue_mutex_{"thread_pool_queue"};
  std::condition_variable_any queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool stop_ = false;
};

}  // namespace vela::util
