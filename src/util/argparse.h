// Minimal command-line argument parser for the example binaries.
//
// Supports `--name value`, `--name=value` and boolean flags `--name`.
// Unknown arguments are collected and reported so typos fail loudly.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace vela {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::size_t get_size(const std::string& name, std::size_t fallback) const;
  bool get_flag(const std::string& name) const;

  // Positional (non --option) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;  // name -> value ("" = flag)
  std::vector<std::string> positional_;
};

}  // namespace vela
