#include "util/argparse.h"

#include <cstdlib>

#include "util/check.h"

namespace vela {

ArgParser::ArgParser(int argc, const char* const* argv) {
  VELA_CHECK(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    VELA_CHECK_MSG(!arg.empty(), "bare '--' is not a valid option");
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "";  // boolean flag
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  VELA_CHECK_MSG(end != it->second.c_str() && *end == '\0',
                 "option --" << name << " expects a number, got '"
                             << it->second << "'");
  return value;
}

std::size_t ArgParser::get_size(const std::string& name,
                                std::size_t fallback) const {
  const double value =
      get_double(name, static_cast<double>(fallback));
  VELA_CHECK_MSG(value >= 0 && value == static_cast<std::size_t>(value),
                 "option --" << name << " expects a non-negative integer");
  return static_cast<std::size_t>(value);
}

bool ArgParser::get_flag(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return false;
  return it->second.empty() || it->second == "1" || it->second == "true";
}

}  // namespace vela
