// Deterministic pseudo-random number generation for the whole library.
//
// All stochastic pieces of the system (weight init, synthetic corpora,
// random placement, token sampling) draw from an explicitly seeded Rng so
// experiments are bit-reproducible. The generator is xoshiro256**, seeded
// through SplitMix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <vector>

namespace vela {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  // Standard normal via Box–Muller (cached spare value).
  double normal();

  // Normal with given mean / stddev.
  double normal(double mean, double stddev);

  // Zipf-distributed integer in [0, n) with exponent s >= 0.
  // s == 0 degenerates to the uniform distribution. Sampling is by inverse
  // CDF over the precomputable harmonic weights; for repeated draws prefer
  // ZipfSampler below.
  std::uint64_t zipf(std::uint64_t n, double s);

  // Sample an index from an unnormalized non-negative weight vector.
  std::size_t categorical(const std::vector<double>& weights);

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Split off an independent child stream (for per-worker determinism).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

// Precomputed Zipf(n, s) sampler: O(log n) per draw via CDF binary search.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(Rng& rng) const;

  // Probability mass of rank i (normalized).
  double pmf(std::size_t i) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // inclusive cumulative probabilities
};

}  // namespace vela
