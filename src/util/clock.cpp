#include "util/clock.h"

#include <thread>

namespace vela::util {

namespace {

class SystemClock final : public Clock {
 public:
  time_point now() override { return std::chrono::steady_clock::now(); }

  std::chrono::milliseconds wait_slice(
      std::chrono::milliseconds budget) override {
    return budget;
  }

  void sleep_for(std::chrono::milliseconds d) override {
    if (d.count() > 0) std::this_thread::sleep_for(d);
  }
};

}  // namespace

Clock& system_clock() {
  static SystemClock clock;
  return clock;
}

}  // namespace vela::util
