// Unbounded MPMC blocking queue used as the transport primitive between the
// master process and expert workers. Close() releases all blocked consumers,
// which is how the runtime shuts worker threads down cleanly.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace vela {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Returns false if the queue is already closed (the item is dropped).
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  // Returns nullopt only after close() once the backlog is empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace vela
