// Unbounded MPMC blocking queue used as the transport primitive between the
// master process and expert workers. Close() releases all blocked consumers,
// which is how the runtime shuts worker threads down cleanly.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/audit.h"

namespace vela {

// Outcome of a timed pop (fault-tolerant receivers must tell a quiet link
// apart from a dead one).
enum class PopStatus { kOk, kTimeout, kClosed };

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Returns false if the queue is already closed (the item is dropped).
  bool push(T item) {
    {
      std::lock_guard<audit::AuditedMutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  // Returns nullopt only after close() once the backlog is empty.
  std::optional<T> pop() {
    std::unique_lock<audit::AuditedMutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Blocks up to `timeout` for an item. kOk stores the item in *out;
  // kTimeout means the queue stayed empty and open; kClosed means closed and
  // drained.
  PopStatus pop_for(std::chrono::milliseconds timeout, T* out) {
    std::unique_lock<audit::AuditedMutex> lock(mutex_);
    if (!cv_.wait_for(lock, timeout,
                      [&] { return !items_.empty() || closed_; })) {
      return PopStatus::kTimeout;
    }
    if (items_.empty()) return PopStatus::kClosed;
    *out = std::move(items_.front());
    items_.pop_front();
    return PopStatus::kOk;
  }

  // Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<audit::AuditedMutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard<audit::AuditedMutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<audit::AuditedMutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<audit::AuditedMutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable audit::AuditedMutex mutex_{"blocking_queue"};
  std::condition_variable_any cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace vela
