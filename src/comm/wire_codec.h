// The dtype layer of the quantized wire tier (DESIGN.md §13).
//
// One resolved WireCodec per runtime decides how activation/gradient
// dispatch payloads travel: untouched fp32, mantissa-rounded fp16, or
// per-row block int8 (tensor/qblock.h). The transform happens ONCE at the
// sender — the transport frame then carries the already-lossy floats
// losslessly — so both transport backends, fault injection replays and the
// multi-process fleet see bit-identical numerics with zero backend-specific
// code. Accounting rides Message::wire_size() via the stamped wire_bits /
// q8_block fields, which is all TrafficMeter and the conservation auditor
// ever look at.
//
// Resolution order (master, workers and remote vela_nodes all run the same
// function, so a fleet can never disagree):
//   1. an explicit config dtype (VelaSystemConfig / EpRuntimeConfig /
//      Scenario) wins;
//   2. kDefault consults VELA_WIRE_DTYPE (fp32|fp16|int8);
//   3. with the env unset, the legacy (wire_bits, quantize_wire) pair stays
//      authoritative — which keeps every pre-tier run bit-identical.
#pragma once

#include <cstdint>
#include <string>

#include "comm/message.h"
#include "tensor/tensor.h"

namespace vela::comm {

enum class WireDtype : std::uint8_t {
  kDefault = 0,  // resolve from VELA_WIRE_DTYPE, else legacy wire_bits pair
  kFp32,         // raw floats, 32-bit accounting, no transform
  kFp16,         // round-to-nearest-even half precision, 16-bit accounting
  kInt8,         // per-row block int8 + fp32 scales (qblock.h)
};

const char* wire_dtype_name(WireDtype d);

// Parses "fp32" / "fp16" / "int8" / "default" (empty → kDefault). Anything
// else is a hard config error.
WireDtype parse_wire_dtype(const std::string& name);

// VELA_WIRE_DTYPE / VELA_WIRE_BLOCK. Unset env → kDefault / 0.
WireDtype wire_dtype_from_env();
unsigned wire_block_from_env();

struct WireCodec {
  WireDtype dtype = WireDtype::kFp32;  // resolved — never kDefault
  unsigned bits = 32;   // accounting depth stamped into Message::wire_bits
  unsigned block = 0;   // q8 block length (32/64) when dtype == kInt8
  bool transforms = false;  // false ⇒ apply() is the identity copy

  // Resolves a runtime's codec from its config knobs (see file comment).
  // `requested_block` 0 falls back to VELA_WIRE_BLOCK, then 64.
  static WireCodec resolve(WireDtype requested, unsigned legacy_bits,
                           bool legacy_quantize, unsigned requested_block);

  // Sender-side payload transform (identity copy for fp32 / legacy).
  [[nodiscard]] Tensor apply(const Tensor& payload) const;

  // Stamps the accounting fields of a dispatch message.
  void stamp(Message& msg) const {
    msg.wire_bits = bits;
    msg.q8_block =
        dtype == WireDtype::kInt8 ? static_cast<std::uint8_t>(block) : 0;
  }

  bool is_int8() const { return dtype == WireDtype::kInt8; }
};

}  // namespace vela::comm
