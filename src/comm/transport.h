// Byte-stream transport under the comm fabric (DESIGN.md §10, §11).
//
// A Transport moves complete frames (frame.h: length-prefixed, CRC-trailed
// byte buffers) between two endpoints that both live in this process. It
// knows nothing about Messages, meters, ledgers or message-level fault
// injection — all of that lives one layer up in comm::Endpoint, which is
// what makes the backends interchangeable: the same fine-tune must be
// bit-exact (losses, weights, TrafficMeter counts) under every
// TransportKind.
//
// Two from-scratch backends:
//
//   * InProcTransport — a BlockingQueue of frame buffers; exactly the
//     blocking-queue semantics the runtime has always had.
//   * SocketTransport — a real localhost TCP connection with SESSION RESUME
//     (DESIGN.md §11): frames ride sequence-numbered session records, the
//     listener is retained for the life of the transport, and a severed
//     connection is re-established with bounded exponential backoff
//     (deterministically seeded jitter) and a hello/ack handshake that
//     replays unacknowledged frames — a cut cable loses no frames. Only
//     when the reconnect budget is exhausted does the transport report
//     closed, which the layers above translate into worker death.
//
// Connection-level fault scripting: a ConnectionScript (installed by the
// Endpoint from the FaultInjector's plan) describes faults *below* the
// frame layer — severing the TCP stream mid-record at an exact byte
// offset, refusing the next N reconnect attempts, delaying accepts. On the
// socket backend these exercise the real resume machinery; on the in-proc
// backend (which has no byte stream or reconnect) a scripted sever closes
// the queue permanently, so a "sever + refuse-all-reconnects" script kills
// a link identically on both backends and degrade tests are
// backend-invariant.
//
// Selection: VELA_TRANSPORT=inproc|socket (config fields default to
// kDefault, which defers to the environment; unset means inproc).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/blocking_queue.h"
#include "util/clock.h"

namespace vela::comm {

enum class TransportKind : std::uint8_t {
  kDefault,  // resolve from VELA_TRANSPORT (unset → kInProc)
  kInProc,
  kSocket,
};

// Resolves kDefault against the VELA_TRANSPORT environment variable
// (read per call, so tests can flip it); other kinds pass through.
// Unrecognized values fail a VELA_CHECK rather than silently degrading.
[[nodiscard]] TransportKind resolve_transport(TransportKind kind);

// "inproc" / "socket" (resolves kDefault first).
[[nodiscard]] const char* transport_kind_name(TransportKind kind);

// Parses a --transport flag value: "inproc", "socket", or "default"/"" (=
// follow VELA_TRANSPORT). Anything else fails a VELA_CHECK.
[[nodiscard]] TransportKind transport_kind_from_name(const std::string& name);

// --- connection-level fault scripting (DESIGN.md §11) -----------------------

// Scripted faults below the frame layer. Deterministic by construction:
// sever points are keyed by the send-order index of the data frame (each
// lane has a single logical sender order), and reconnect refusals count
// attempts, not time.
struct ConnectionScript {
  struct Sever {
    // 0-based index of the send() call during which the connection is cut.
    std::uint64_t frame_index = 0;
    // Bytes of that frame's session record that make it onto the wire
    // before the cut. 0 = cut before any byte; >= record size = the whole
    // record arrives and the cut lands between records (the replay-dedupe
    // case). Ignored by the in-proc backend (no byte stream).
    std::size_t byte_offset = 0;
  };
  std::vector<Sever> severs;  // each fires once
  // Number of reconnect attempts refused (connection reset at accept)
  // before one is allowed to succeed. Set it >= the reconnect budget to
  // make a sever permanent.
  int refuse_reconnects = 0;
  // Stall applied before each successful re-accept (a slow peer).
  std::chrono::milliseconds accept_delay{0};
};

// Reconnect schedule for the socket backend's session resume. Attempt k
// (k >= 1) sleeps min(base * multiplier^(k-1), max) plus a deterministic
// jitter drawn from `jitter_seed` in [0, base); after `max_attempts`
// failures the session is declared dead and the transport closes.
struct ReconnectPolicy {
  std::chrono::milliseconds backoff_base{5};
  std::chrono::milliseconds backoff_max{250};
  double backoff_multiplier = 2.0;
  int max_attempts = 8;
  std::uint64_t jitter_seed = 0x5eedf00dULL;
};

// Observability counters for the session layer (socket backend).
struct SessionStats {
  std::uint64_t frames_sent = 0;        // data records first-transmitted
  std::uint64_t reconnects = 0;         // successful session resumes
  std::uint64_t refused_connects = 0;   // attempts refused by script
  std::uint64_t replayed_frames = 0;    // data records re-sent on resume
  std::uint64_t replayed_bytes = 0;     // physical bytes of those records
  std::uint64_t duplicates_discarded = 0;  // receiver-side seq dedupe
  std::uint64_t severs_injected = 0;    // scripted cuts that fired
};

// Session record overhead on the socket stream: u8 record type + u64
// sequence number + u32 frame length. The torn-connection property test
// sweeps every byte offset of (overhead + frame size).
inline constexpr std::size_t kSessionDataOverheadBytes = 13;

// Unidirectional frame pipe. Thread-safe: the EP runtime's shared inboxes
// have many writers and the fabric makes no single-reader promise either.
// Semantics mirror BlockingQueue: send() after close() returns false,
// receivers drain buffered frames after close() before seeing end-of-stream.
class Transport {
 public:
  virtual ~Transport() = default;

  // Queues one complete frame; false if the transport is closed (the frame
  // is dropped). A true return means the frame was accepted in order and
  // intact — partial writes and transparent session resumes never surface
  // to the caller.
  virtual bool send(std::vector<std::uint8_t> frame) = 0;

  // Blocks for the next frame; nullopt once closed and drained.
  virtual std::optional<std::vector<std::uint8_t>> receive() = 0;
  virtual std::optional<std::vector<std::uint8_t>> try_receive() = 0;
  // Timed receive: kOk fills *out, kTimeout means nothing arrived, kClosed
  // means closed and drained.
  virtual PopStatus receive_for(std::chrono::milliseconds timeout,
                                std::vector<std::uint8_t>* out) = 0;

  virtual void close() = 0;
  [[nodiscard]] virtual bool closed() const = 0;

  [[nodiscard]] virtual const char* name() const = 0;

  // Installs a connection-fault script (nullptr clears). Non-owning: the
  // script must outlive the transport, same contract as the FaultInjector
  // it is derived from. Default: ignored (backends without connection
  // faults).
  virtual void set_connection_script(const ConnectionScript* script) {
    (void)script;
  }
};

// Factory — the only way the layers above comm construct a transport
// (vela_lint's direct-transport rule enforces this).
[[nodiscard]] std::unique_ptr<Transport> make_transport(TransportKind kind);

// In-process backend: frames ride a BlockingQueue, preserving the original
// channel semantics bit for bit. A scripted sever closes the queue
// permanently — in-proc has no byte stream to resume.
class InProcTransport final : public Transport {
 public:
  bool send(std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> receive() override;
  std::optional<std::vector<std::uint8_t>> try_receive() override;
  PopStatus receive_for(std::chrono::milliseconds timeout,
                        std::vector<std::uint8_t>* out) override;
  void close() override;
  [[nodiscard]] bool closed() const override;
  [[nodiscard]] const char* name() const override { return "inproc"; }
  void set_connection_script(const ConnectionScript* script) override;

 private:
  BlockingQueue<std::vector<std::uint8_t>> queue_;
  std::mutex script_mutex_;
  const ConnectionScript* script_ = nullptr;  // guarded by script_mutex_
  std::uint64_t frames_sent_ = 0;             // guarded by script_mutex_
  std::vector<bool> sever_fired_;             // guarded by script_mutex_
};

// Real-socket backend: a loopback TCP connection whose two file descriptors
// are both owned by this object. The constructor performs the blocking
// handshake — listen on an ephemeral 127.0.0.1 port, connect, accept — and
// RETAINS the listener so a severed connection can be re-established
// (session resume, DESIGN.md §11). The remote-process split — where the two
// halves live in different OS processes — is RemoteSocketTransport
// (comm/remote_transport.h, DESIGN.md §12); both speak the shared session
// codec in comm/session.h.
class SocketTransport final : public Transport {
 public:
  // `clock` drives backoff sleeps and defaults to the system clock;
  // `policy` bounds the reconnect schedule. Both are test injection points.
  explicit SocketTransport(util::Clock* clock = nullptr,
                           ReconnectPolicy policy = {});
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  bool send(std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> receive() override;
  std::optional<std::vector<std::uint8_t>> try_receive() override;
  PopStatus receive_for(std::chrono::milliseconds timeout,
                        std::vector<std::uint8_t>* out) override;
  void close() override;
  [[nodiscard]] bool closed() const override;
  [[nodiscard]] const char* name() const override { return "socket"; }
  void set_connection_script(const ConnectionScript* script) override;

  [[nodiscard]] SessionStats session_stats() const;

 private:
  class Impl;  // keeps <sys/socket.h> and friends out of this header
  std::unique_ptr<Impl> impl_;
};

}  // namespace vela::comm
