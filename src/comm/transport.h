// Byte-stream transport under the comm fabric (DESIGN.md §10).
//
// A Transport moves complete frames (frame.h: length-prefixed, CRC-trailed
// byte buffers) between two endpoints that both live in this process. It
// knows nothing about Messages, meters, ledgers or fault injection — all of
// that lives one layer up in comm::Endpoint, which is what makes the
// backends interchangeable: the same fine-tune must be bit-exact (losses,
// weights, TrafficMeter counts) under every TransportKind.
//
// Two from-scratch backends:
//
//   * InProcTransport — a BlockingQueue of frame buffers; exactly the
//     blocking-queue semantics the runtime has always had.
//   * SocketTransport — a real localhost TCP connection established with a
//     blocking listen/connect/accept handshake. Frames cross the kernel's
//     socket buffers; reads are re-segmented with a FrameDecoder, so torn
//     reads and short writes are handled, and close() is a graceful
//     shutdown(SHUT_WR) that lets the receiver drain buffered frames before
//     seeing EOF — mirroring BlockingQueue's close-then-drain contract.
//
// Selection: VELA_TRANSPORT=inproc|socket (config fields default to
// kDefault, which defers to the environment; unset means inproc).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/blocking_queue.h"

namespace vela::comm {

enum class TransportKind : std::uint8_t {
  kDefault,  // resolve from VELA_TRANSPORT (unset → kInProc)
  kInProc,
  kSocket,
};

// Resolves kDefault against the VELA_TRANSPORT environment variable
// (read per call, so tests can flip it); other kinds pass through.
// Unrecognized values fail a VELA_CHECK rather than silently degrading.
[[nodiscard]] TransportKind resolve_transport(TransportKind kind);

// "inproc" / "socket" (resolves kDefault first).
[[nodiscard]] const char* transport_kind_name(TransportKind kind);

// Parses a --transport flag value: "inproc", "socket", or "default"/"" (=
// follow VELA_TRANSPORT). Anything else fails a VELA_CHECK.
[[nodiscard]] TransportKind transport_kind_from_name(const std::string& name);

// Unidirectional frame pipe. Thread-safe: the EP runtime's shared inboxes
// have many writers and the fabric makes no single-reader promise either.
// Semantics mirror BlockingQueue: send() after close() returns false,
// receivers drain buffered frames after close() before seeing end-of-stream.
class Transport {
 public:
  virtual ~Transport() = default;

  // Queues one complete frame; false if the transport is closed (the frame
  // is dropped). A true return means the frame was accepted in order and
  // intact — partial writes never surface to the caller.
  virtual bool send(std::vector<std::uint8_t> frame) = 0;

  // Blocks for the next frame; nullopt once closed and drained.
  virtual std::optional<std::vector<std::uint8_t>> receive() = 0;
  virtual std::optional<std::vector<std::uint8_t>> try_receive() = 0;
  // Timed receive: kOk fills *out, kTimeout means nothing arrived, kClosed
  // means closed and drained.
  virtual PopStatus receive_for(std::chrono::milliseconds timeout,
                                std::vector<std::uint8_t>* out) = 0;

  virtual void close() = 0;
  [[nodiscard]] virtual bool closed() const = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

// Factory — the only way the layers above comm construct a transport
// (vela_lint's direct-transport rule enforces this).
[[nodiscard]] std::unique_ptr<Transport> make_transport(TransportKind kind);

// In-process backend: frames ride a BlockingQueue, preserving the original
// channel semantics bit for bit.
class InProcTransport final : public Transport {
 public:
  bool send(std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> receive() override;
  std::optional<std::vector<std::uint8_t>> try_receive() override;
  PopStatus receive_for(std::chrono::milliseconds timeout,
                        std::vector<std::uint8_t>* out) override;
  void close() override;
  [[nodiscard]] bool closed() const override;
  [[nodiscard]] const char* name() const override { return "inproc"; }

 private:
  BlockingQueue<std::vector<std::uint8_t>> queue_;
};

// Real-socket backend: a loopback TCP connection whose two file descriptors
// are both owned by this object (the remote-process split is a later PR).
// The constructor performs the blocking handshake — listen on an ephemeral
// 127.0.0.1 port, connect, accept — and then discards the listener.
class SocketTransport final : public Transport {
 public:
  SocketTransport();
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  bool send(std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> receive() override;
  std::optional<std::vector<std::uint8_t>> try_receive() override;
  PopStatus receive_for(std::chrono::milliseconds timeout,
                        std::vector<std::uint8_t>* out) override;
  void close() override;
  [[nodiscard]] bool closed() const override;
  [[nodiscard]] const char* name() const override { return "socket"; }

 private:
  class Impl;  // keeps <sys/socket.h> and friends out of this header
  std::unique_ptr<Impl> impl_;
};

}  // namespace vela::comm
