// Deterministic, scriptable fault injection for the master↔worker fabric.
//
// An injector attaches to the channels of one runtime (Channel::send consults
// it before publishing a message) and perturbs traffic according to a
// FaultPlan: scripted one-shot rules that fire on the nth message of a
// specific link direction, plus seeded background fault rates. Because each
// channel direction has a single producer (the master thread or one worker
// thread), per-link sequence numbers — and therefore the whole plan — are
// bit-reproducible across runs.
//
// Supported fault kinds:
//   kDrop      — the message never arrives (sender bytes still metered: the
//                NIC transmitted them).
//   kDelay     — the message arrives, but `delay_seconds` of link stall are
//                charged to the CommClock via consume_delay_seconds().
//   kDuplicate — the message arrives twice (both transmissions metered);
//                receivers dedupe by request id.
//   kCorrupt   — payload bits flip in flight; the checksum the channel
//                stamped no longer matches and the receiver drops it.
//   kSever     — the channel closes permanently (link death / worker loss);
//                every later send on it fails.
//   kCrashWorker — the message is replaced by a kCrash poison pill: the
//                worker simulates an abrupt process death (closes both
//                channel directions, loses all hosted state).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm/message.h"
#include "comm/transport.h"
#include "util/rng.h"

namespace vela::comm {

enum class FaultKind : std::uint8_t {
  kNone,
  kDrop,
  kDelay,
  kDuplicate,
  kCorrupt,
  kSever,
  kCrashWorker,
};

const char* fault_kind_name(FaultKind k);

// Direction of a DuplexLink channel, from the master's point of view.
enum class LinkDir : std::uint8_t { kToWorker = 0, kToMaster = 1 };

// One scripted fault: fires exactly once, on the `message_index`-th message
// (0-based) sent on link `link` in direction `dir` over the injector's
// lifetime (sequence numbers survive worker respawns).
struct FaultRule {
  std::size_t link = 0;
  LinkDir dir = LinkDir::kToWorker;
  std::uint64_t message_index = 0;
  FaultKind kind = FaultKind::kDrop;
  double delay_seconds = 0.0;  // kDelay only
};

// Connection-level fault script for one link direction (DESIGN.md §11):
// faults BELOW the frame layer — severing the byte stream mid-record,
// refusing reconnect attempts, delaying accepts. The Endpoint pushes the
// script down to its Transport; on the socket backend these exercise the
// session-resume machinery, on the in-proc backend a sever is permanent
// link death (see transport.h).
struct ConnectionFaultRule {
  std::size_t link = 0;
  LinkDir dir = LinkDir::kToWorker;
  ConnectionScript script;
};

struct FaultPlan {
  std::vector<FaultRule> rules;
  // At most one ConnectionFaultRule per (link, dir); the Endpoint installs
  // the first match at set_fault_injector time.
  std::vector<ConnectionFaultRule> connection_rules;
  // Background fault rates in [0, 1), evaluated per message from a seeded
  // per-link-direction stream after scripted rules. At most one background
  // fault fires per message.
  double drop_rate = 0.0;
  double corrupt_rate = 0.0;
  double duplicate_rate = 0.0;
  double delay_rate = 0.0;
  double delay_seconds = 0.0;  // charge per background delay
  std::uint64_t seed = 0;
};

struct FaultCounters {
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t severed = 0;
  std::uint64_t crashed = 0;

  std::uint64_t total() const {
    return dropped + delayed + duplicated + corrupted + severed + crashed;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Called by Channel::send with the outgoing message; may mutate it
  // (corruption, crash conversion). Returns the fault applied to this send.
  // Thread-safe; the per-(link, dir) sequence counter advances exactly once
  // per call.
  FaultKind on_send(std::size_t link, LinkDir dir, Message& msg);

  FaultCounters counters() const;
  std::uint64_t faults_injected() const;

  // Link-stall seconds accumulated by kDelay faults since the last call;
  // the caller charges them to the step's CommClock time.
  double consume_delay_seconds();

  std::uint64_t messages_seen(std::size_t link, LinkDir dir) const;

  // The connection-fault script for a link direction, or nullptr. The
  // returned pointer lives as long as the injector (the Endpoint hands it
  // straight to its Transport).
  const ConnectionScript* connection_script(std::size_t link,
                                            LinkDir dir) const;

 private:
  struct Lane {
    std::uint64_t next_index = 0;
    Rng rng{1};
    bool rng_init = false;
  };

  FaultKind pick_fault(Lane& lane, std::size_t link, LinkDir dir,
                       std::uint64_t index, double* delay_out);
  Lane& lane(std::size_t link, LinkDir dir);

  FaultPlan plan_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Lane> lanes_;  // key = link*2 + dir
  std::vector<bool> rule_fired_;
  FaultCounters counters_;
  double pending_delay_seconds_ = 0.0;
};

}  // namespace vela::comm
