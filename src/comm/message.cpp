#include "comm/message.h"

#include <sstream>

namespace vela::comm {

const char* message_type_name(MessageType t) {
  switch (t) {
    case MessageType::kExpertForward:
      return "ExpertForward";
    case MessageType::kExpertForwardResult:
      return "ExpertForwardResult";
    case MessageType::kExpertBackward:
      return "ExpertBackward";
    case MessageType::kExpertBackwardResult:
      return "ExpertBackwardResult";
    case MessageType::kOptimizerStep:
      return "OptimizerStep";
    case MessageType::kOptimizerStepDone:
      return "OptimizerStepDone";
    case MessageType::kFetchExpert:
      return "FetchExpert";
    case MessageType::kQueryExpert:
      return "QueryExpert";
    case MessageType::kLoadExpertState:
      return "LoadExpertState";
    case MessageType::kLoadExpertStateDone:
      return "LoadExpertStateDone";
    case MessageType::kExpertState:
      return "ExpertState";
    case MessageType::kInstallExpert:
      return "InstallExpert";
    case MessageType::kInstallExpertDone:
      return "InstallExpertDone";
    case MessageType::kAllReduceChunk:
      return "AllReduceChunk";
    case MessageType::kShutdown:
      return "Shutdown";
  }
  return "?";
}

std::string Message::to_string() const {
  std::ostringstream os;
  os << message_type_name(type) << "{req=" << request_id << ", layer=" << layer
     << ", expert=" << expert << ", step=" << step
     << ", bytes=" << wire_size() << "}";
  return os.str();
}

}  // namespace vela::comm
