#include "comm/message.h"

#include <cstring>
#include <sstream>

namespace vela::comm {

const char* message_type_name(MessageType t) {
  switch (t) {
    case MessageType::kExpertForward:
      return "ExpertForward";
    case MessageType::kExpertForwardResult:
      return "ExpertForwardResult";
    case MessageType::kExpertBackward:
      return "ExpertBackward";
    case MessageType::kExpertBackwardResult:
      return "ExpertBackwardResult";
    case MessageType::kOptimizerStep:
      return "OptimizerStep";
    case MessageType::kOptimizerStepDone:
      return "OptimizerStepDone";
    case MessageType::kFetchExpert:
      return "FetchExpert";
    case MessageType::kQueryExpert:
      return "QueryExpert";
    case MessageType::kLoadExpertState:
      return "LoadExpertState";
    case MessageType::kLoadExpertStateDone:
      return "LoadExpertStateDone";
    case MessageType::kExpertState:
      return "ExpertState";
    case MessageType::kInstallExpert:
      return "InstallExpert";
    case MessageType::kInstallExpertDone:
      return "InstallExpertDone";
    case MessageType::kAllReduceChunk:
      return "AllReduceChunk";
    case MessageType::kShutdown:
      return "Shutdown";
    case MessageType::kProbe:
      return "Probe";
    case MessageType::kProbeAck:
      return "ProbeAck";
    case MessageType::kAbortStep:
      return "AbortStep";
    case MessageType::kAbortStepDone:
      return "AbortStepDone";
    case MessageType::kSnapshotExpert:
      return "SnapshotExpert";
    case MessageType::kExpertSnapshot:
      return "ExpertSnapshot";
    case MessageType::kRestoreExpert:
      return "RestoreExpert";
    case MessageType::kRestoreExpertDone:
      return "RestoreExpertDone";
    case MessageType::kCrash:
      return "Crash";
    case MessageType::kStorePriorities:
      return "StorePriorities";
    case MessageType::kStorePrioritiesDone:
      return "StorePrioritiesDone";
    case MessageType::kPrefetchExperts:
      return "PrefetchExperts";
  }
  return "?";
}

std::uint32_t Message::compute_checksum() const {
  // FNV-1a, folding in every field a receiver acts on. Never returns 0 so a
  // stamped message cannot be mistaken for an unchecksummed one.
  std::uint32_t h = 2166136261u;
  auto mix = [&h](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 16777619u;
    }
  };
  mix(static_cast<std::uint32_t>(type));
  mix(static_cast<std::uint32_t>(request_id));
  mix(static_cast<std::uint32_t>(request_id >> 32));
  mix(source);
  mix(layer);
  mix(expert);
  mix(step);
  mix(static_cast<std::uint32_t>(phantom_bytes));
  // q8_block shares the fragment word: zero (every non-q8 message) leaves
  // the hash identical to the pre-quantization protocol, so stamped traffic
  // from fp32/fp16 runs is bit-compatible with old goldens.
  mix(static_cast<std::uint32_t>(chunk_index) |
      (static_cast<std::uint32_t>(chunk_count) << 8) |
      (static_cast<std::uint32_t>(q8_block) << 16));
  const float* data = payload.data();
  for (std::size_t i = 0; i < payload.size(); ++i) {
    std::uint32_t bits;
    static_assert(sizeof(std::uint32_t) == sizeof(float));
    std::memcpy(&bits, &data[i], sizeof(std::uint32_t));
    mix(bits);
  }
  return h == 0 ? 1u : h;
}

std::string Message::to_string() const {
  std::ostringstream os;
  os << message_type_name(type) << "{req=" << request_id << ", layer=" << layer
     << ", expert=" << expert << ", step=" << step;
  if (chunk_count > 1) {
    os << ", chunk=" << static_cast<unsigned>(chunk_index) << "/"
       << static_cast<unsigned>(chunk_count);
  }
  if (wire_bits == 8) {
    os << ", dtype=q8/" << static_cast<unsigned>(q8_block);
  }
  os << ", bytes=" << wire_size() << "}";
  return os.str();
}

}  // namespace vela::comm
