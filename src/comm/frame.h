// Transport frame codec: the byte representation a Transport actually moves.
//
// This is deliberately NOT serialize.h. That codec defines the *accounted*
// wire format (payloads at wire_bits precision, phantom payloads rejected,
// shape collapsed to an element count) and its sizes are what every ledger
// and golden CSV is calibrated against. A Transport, by contrast, must move
// a Message between two in-process endpoints *losslessly* — full fp32
// payload bits, tensor shape, phantom byte counts, fragment fields and the
// integrity checksum all survive — so that the same fine-tune is bit-exact
// on every backend. Byte accounting keeps using Message::wire_size(); the
// physical frame size never feeds a meter or ledger (DESIGN.md §10).
//
// Frame layout (little-endian):
//
//   u32 body_len | body[body_len] | u32 frame_crc (FNV-1a over body)
//
//   body := u8 type | u8 wire_bits | u8 chunk_index | u8 chunk_count |
//           u64 request_id | u32 source | u32 layer | u32 expert |
//           u32 step | u32 checksum | u64 phantom_bytes |
//           u32 rank | u64 dims[rank] | f32 data[numel]
//
// The frame CRC models the transport-level integrity check a real stream
// carries (TCP checksum / link CRC); the Message-level `checksum` field
// inside the body is the end-to-end one the fault injector corrupts, and it
// travels as payload here — a corrupted message frames cleanly and is only
// rejected at the receiving runtime, exactly like the in-proc path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "comm/message.h"

namespace vela::comm {

// Frames larger than this are rejected by the decoder: no legitimate message
// in the tree comes within two orders of magnitude, so an oversize length
// prefix means stream corruption (or a torn/misaligned read).
inline constexpr std::uint32_t kMaxFrameBodyBytes = 1u << 30;

// Bytes of framing around a body: the length prefix and the trailing CRC.
inline constexpr std::size_t kFrameOverheadBytes =
    2 * sizeof(std::uint32_t);

// FNV-1a over a byte range (the transport-level frame CRC).
[[nodiscard]] std::uint32_t frame_crc(const std::uint8_t* data,
                                      std::size_t size);

// Encodes a message into a complete frame (length prefix + body + CRC).
// Every message is encodable — phantom and zero-length payloads included.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Message& msg);

// Decodes a complete frame back into a Message. Returns false (with *error
// describing why, when non-null) on a short buffer, a length prefix that
// disagrees with the buffer, a CRC mismatch, or a malformed body. A true
// return restores the Message bit-exactly as encoded.
[[nodiscard]] bool decode_frame(const std::vector<std::uint8_t>& frame,
                                Message* out, std::string* error = nullptr);

// Incremental frame segmenter for byte-stream transports: feed() raw bytes
// in arbitrary pieces (a socket read boundary never aligns with frames) and
// next() yields complete frames in order. The decoder only segments and
// bounds-checks; CRC validation happens in decode_frame at the Endpoint, the
// single place both backends converge.
class FrameDecoder {
 public:
  void feed(const std::uint8_t* data, std::size_t size);

  // Extracts the next complete frame into *frame. Returns false when the
  // buffered bytes do not yet hold one. Throws CheckError if the stream is
  // unrecoverable (oversize length prefix) — a byte-stream cannot resync
  // after a bad length.
  [[nodiscard]] bool next(std::vector<std::uint8_t>* frame);

  // Bytes buffered but not yet returned as frames (a torn tail).
  [[nodiscard]] std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

}  // namespace vela::comm
