#include "comm/traffic_meter.h"

#include "util/check.h"

namespace vela::comm {

TrafficMeter::TrafficMeter(const cluster::ClusterTopology* topology)
    : topology_(topology) {
  VELA_CHECK(topology != nullptr);
}

void TrafficMeter::record(std::size_t src_node, std::size_t dst_node,
                          std::uint64_t bytes) {
  VELA_CHECK(src_node < topology_->num_nodes() &&
             dst_node < topology_->num_nodes());
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  cur_total_ += bytes;
  if (src_node != dst_node) cur_external_ += bytes;
  if (recovery_depth_ > 0) cur_recovery_ += bytes;
}

void TrafficMeter::end_step() {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  external_history_.push_back(cur_external_);
  total_history_.push_back(cur_total_);
  recovery_history_.push_back(cur_recovery_);
  paging_history_.push_back(cur_page_in_ + cur_page_out_);
  cur_external_ = 0;
  cur_total_ = 0;
  cur_recovery_ = 0;
  cur_page_in_ = 0;
  cur_page_out_ = 0;
}

void TrafficMeter::discard_current() {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  cur_external_ = 0;
  cur_total_ = 0;
  cur_recovery_ = 0;
  cur_page_in_ = 0;
  cur_page_out_ = 0;
}

void TrafficMeter::record_page_in(std::uint64_t bytes) {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  cur_page_in_ += bytes;
  lifetime_page_in_ += bytes;
}

void TrafficMeter::record_page_out(std::uint64_t bytes) {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  cur_page_out_ += bytes;
  lifetime_page_out_ += bytes;
}

std::uint64_t TrafficMeter::current_paging_bytes() const {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  return cur_page_in_ + cur_page_out_;
}

std::uint64_t TrafficMeter::step_paging_bytes(std::size_t i) const {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  VELA_CHECK(i < paging_history_.size());
  return paging_history_[i];
}

std::uint64_t TrafficMeter::lifetime_page_in_bytes() const {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  return lifetime_page_in_;
}

std::uint64_t TrafficMeter::lifetime_page_out_bytes() const {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  return lifetime_page_out_;
}

TrafficMeter::RecoveryScope::RecoveryScope(TrafficMeter* meter)
    : meter_(meter) {
  if (meter_ == nullptr) return;
  std::lock_guard<audit::AuditedMutex> lock(meter_->mutex_);
  ++meter_->recovery_depth_;
}

TrafficMeter::RecoveryScope::~RecoveryScope() {
  if (meter_ == nullptr) return;
  std::lock_guard<audit::AuditedMutex> lock(meter_->mutex_);
  VELA_CHECK(meter_->recovery_depth_ > 0);
  --meter_->recovery_depth_;
}

std::uint64_t TrafficMeter::current_recovery_bytes() const {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  return cur_recovery_;
}

std::uint64_t TrafficMeter::step_recovery_bytes(std::size_t i) const {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  VELA_CHECK(i < recovery_history_.size());
  return recovery_history_[i];
}

std::uint64_t TrafficMeter::lifetime_recovery_bytes() const {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  std::uint64_t total = cur_recovery_;
  for (auto b : recovery_history_) total += b;
  return total;
}

std::uint64_t TrafficMeter::current_external_bytes() const {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  return cur_external_;
}

std::uint64_t TrafficMeter::current_total_bytes() const {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  return cur_total_;
}

std::size_t TrafficMeter::num_steps() const {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  return external_history_.size();
}

std::uint64_t TrafficMeter::step_external_bytes(std::size_t i) const {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  VELA_CHECK(i < external_history_.size());
  return external_history_[i];
}

std::uint64_t TrafficMeter::step_total_bytes(std::size_t i) const {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  VELA_CHECK(i < total_history_.size());
  return total_history_[i];
}

double TrafficMeter::step_external_mb_per_node(std::size_t i) const {
  return static_cast<double>(step_external_bytes(i)) / 1e6 /
         static_cast<double>(topology_->num_nodes());
}

double TrafficMeter::mean_external_mb_per_node() const {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  if (external_history_.empty()) return 0.0;
  double total = 0.0;
  for (auto b : external_history_) total += static_cast<double>(b);
  return total / 1e6 / static_cast<double>(external_history_.size()) /
         static_cast<double>(topology_->num_nodes());
}

std::uint64_t TrafficMeter::lifetime_external_bytes() const {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  std::uint64_t total = cur_external_;
  for (auto b : external_history_) total += b;
  return total;
}

std::uint64_t TrafficMeter::lifetime_total_bytes() const {
  std::lock_guard<audit::AuditedMutex> lock(mutex_);
  std::uint64_t total = cur_total_;
  for (auto b : total_history_) total += b;
  return total;
}

}  // namespace vela::comm
