#include "comm/transport.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "comm/frame.h"
#include "util/check.h"

namespace vela::comm {

TransportKind resolve_transport(TransportKind kind) {
  if (kind != TransportKind::kDefault) return kind;
  const char* env = std::getenv("VELA_TRANSPORT");
  if (env == nullptr || env[0] == '\0') return TransportKind::kInProc;
  const std::string value(env);
  if (value == "inproc") return TransportKind::kInProc;
  if (value == "socket") return TransportKind::kSocket;
  VELA_CHECK_MSG(false, "VELA_TRANSPORT must be 'inproc' or 'socket', got '" +
                            value + "'");
  return TransportKind::kInProc;  // unreachable
}

TransportKind transport_kind_from_name(const std::string& name) {
  if (name == "inproc") return TransportKind::kInProc;
  if (name == "socket") return TransportKind::kSocket;
  if (name.empty() || name == "default") return TransportKind::kDefault;
  VELA_CHECK_MSG(false, "unknown transport '" + name +
                            "' (expected inproc, socket or default)");
  return TransportKind::kInProc;  // unreachable
}

const char* transport_kind_name(TransportKind kind) {
  switch (resolve_transport(kind)) {
    case TransportKind::kSocket:
      return "socket";
    default:
      return "inproc";
  }
}

// --- InProcTransport --------------------------------------------------------

bool InProcTransport::send(std::vector<std::uint8_t> frame) {
  return queue_.push(std::move(frame));
}

std::optional<std::vector<std::uint8_t>> InProcTransport::receive() {
  return queue_.pop();
}

std::optional<std::vector<std::uint8_t>> InProcTransport::try_receive() {
  return queue_.try_pop();
}

PopStatus InProcTransport::receive_for(std::chrono::milliseconds timeout,
                                       std::vector<std::uint8_t>* out) {
  return queue_.pop_for(timeout, out);
}

void InProcTransport::close() { queue_.close(); }

bool InProcTransport::closed() const { return queue_.closed(); }

// --- SocketTransport --------------------------------------------------------

class SocketTransport::Impl {
 public:
  Impl() {
    // Blocking handshake on an ephemeral loopback port: listen, connect,
    // accept. The connect completes against the listen backlog, so a single
    // thread can run all three steps in order.
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    VELA_CHECK_MSG(listener >= 0, "socket(): " +
                                      std::string(std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    VELA_CHECK_MSG(
        ::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) == 0,
        "bind(127.0.0.1:0): " + std::string(std::strerror(errno)));
    VELA_CHECK_MSG(::listen(listener, 1) == 0,
                   "listen(): " + std::string(std::strerror(errno)));
    socklen_t len = sizeof(addr);
    VELA_CHECK(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                             &len) == 0);

    tx_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    VELA_CHECK_MSG(tx_fd_ >= 0,
                   "socket(): " + std::string(std::strerror(errno)));
    VELA_CHECK_MSG(::connect(tx_fd_, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof(addr)) == 0,
                   "connect(loopback): " + std::string(std::strerror(errno)));
    rx_fd_ = ::accept(listener, nullptr, nullptr);
    VELA_CHECK_MSG(rx_fd_ >= 0,
                   "accept(): " + std::string(std::strerror(errno)));
    ::close(listener);

    // Frames are small and latency-sensitive (request/reply protocol):
    // disable Nagle so a frame is not held back waiting for an ACK.
    const int one = 1;
    ::setsockopt(tx_fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~Impl() {
    if (tx_fd_ >= 0) ::close(tx_fd_);
    if (rx_fd_ >= 0) ::close(rx_fd_);
  }

  bool send(const std::vector<std::uint8_t>& frame) {
    // One mutex per direction keeps concurrent senders' frames intact on the
    // stream (the EP inboxes are many-writer) and orders close() after any
    // in-progress write, so a frame is never torn by shutdown.
    std::lock_guard<std::mutex> lock(tx_mutex_);
    if (closed_.load(std::memory_order_acquire)) return false;
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n =
          ::send(tx_fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        // Peer fd gone (teardown): behave like a closed queue.
        closed_.store(true, std::memory_order_release);
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  // Timed/blocking/non-blocking receive share one loop; `timeout_ms` < 0
  // blocks indefinitely, 0 polls.
  PopStatus receive_within(long timeout_ms, std::vector<std::uint8_t>* out) {
    std::lock_guard<std::mutex> lock(rx_mutex_);
    const auto deadline =
        timeout_ms < 0
            ? std::chrono::steady_clock::time_point::max()
            : std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
    while (true) {
      if (decoder_.next(out)) return PopStatus::kOk;
      if (eof_) return PopStatus::kClosed;

      int wait_ms = -1;
      if (timeout_ms >= 0) {
        const auto remaining = deadline - std::chrono::steady_clock::now();
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
                .count();
        if (ms < 0 && timeout_ms != 0) return PopStatus::kTimeout;
        wait_ms = ms < 0 ? 0 : static_cast<int>(ms);
      }
      pollfd pfd{};
      pfd.fd = rx_fd_;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, wait_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        VELA_CHECK_MSG(false, "poll(): " + std::string(std::strerror(errno)));
      }
      if (ready == 0) return PopStatus::kTimeout;

      std::uint8_t buf[65536];
      const ssize_t n = ::recv(rx_fd_, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        VELA_CHECK_MSG(false, "recv(): " + std::string(std::strerror(errno)));
      }
      if (n == 0) {
        // Graceful shutdown: everything buffered has been fed to the
        // decoder; whole frames still drain, a torn tail is discarded.
        eof_ = true;
        continue;
      }
      decoder_.feed(buf, static_cast<std::size_t>(n));
    }
  }

  void close() {
    std::lock_guard<std::mutex> lock(tx_mutex_);
    if (closed_.exchange(true, std::memory_order_acq_rel)) return;
    // FIN after the last complete frame: the receiver drains the socket
    // buffer, then sees EOF — BlockingQueue's close-then-drain contract.
    ::shutdown(tx_fd_, SHUT_WR);
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  int tx_fd_ = -1;
  int rx_fd_ = -1;
  std::mutex tx_mutex_;
  std::mutex rx_mutex_;
  FrameDecoder decoder_;  // guarded by rx_mutex_
  bool eof_ = false;      // guarded by rx_mutex_
  std::atomic<bool> closed_{false};
};

SocketTransport::SocketTransport() : impl_(std::make_unique<Impl>()) {}
SocketTransport::~SocketTransport() = default;

bool SocketTransport::send(std::vector<std::uint8_t> frame) {
  return impl_->send(frame);
}

std::optional<std::vector<std::uint8_t>> SocketTransport::receive() {
  std::vector<std::uint8_t> frame;
  if (impl_->receive_within(-1, &frame) != PopStatus::kOk) return std::nullopt;
  return frame;
}

std::optional<std::vector<std::uint8_t>> SocketTransport::try_receive() {
  std::vector<std::uint8_t> frame;
  if (impl_->receive_within(0, &frame) != PopStatus::kOk) return std::nullopt;
  return frame;
}

PopStatus SocketTransport::receive_for(std::chrono::milliseconds timeout,
                                       std::vector<std::uint8_t>* out) {
  const long ms = static_cast<long>(timeout.count());
  return impl_->receive_within(ms < 0 ? 0 : ms, out);
}

void SocketTransport::close() { impl_->close(); }

bool SocketTransport::closed() const { return impl_->closed(); }

std::unique_ptr<Transport> make_transport(TransportKind kind) {
  if (resolve_transport(kind) == TransportKind::kSocket) {
    return std::make_unique<SocketTransport>();
  }
  return std::make_unique<InProcTransport>();
}

}  // namespace vela::comm
