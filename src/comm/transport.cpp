#include "comm/transport.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "comm/frame.h"
#include "comm/session.h"
#include "util/audit.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"

namespace vela::comm {

TransportKind resolve_transport(TransportKind kind) {
  if (kind != TransportKind::kDefault) return kind;
  const char* env = std::getenv("VELA_TRANSPORT");
  if (env == nullptr || env[0] == '\0') return TransportKind::kInProc;
  const std::string value(env);
  if (value == "inproc") return TransportKind::kInProc;
  if (value == "socket") return TransportKind::kSocket;
  VELA_CHECK_MSG(false, "VELA_TRANSPORT must be 'inproc' or 'socket', got '" +
                            value + "'");
  return TransportKind::kInProc;  // unreachable
}

TransportKind transport_kind_from_name(const std::string& name) {
  if (name == "inproc") return TransportKind::kInProc;
  if (name == "socket") return TransportKind::kSocket;
  if (name.empty() || name == "default") return TransportKind::kDefault;
  VELA_CHECK_MSG(false, "unknown transport '" + name +
                            "' (expected inproc, socket or default)");
  return TransportKind::kInProc;  // unreachable
}

const char* transport_kind_name(TransportKind kind) {
  switch (resolve_transport(kind)) {
    case TransportKind::kSocket:
      return "socket";
    default:
      return "inproc";
  }
}

// --- InProcTransport --------------------------------------------------------

bool InProcTransport::send(std::vector<std::uint8_t> frame) {
  {
    std::lock_guard<std::mutex> lock(script_mutex_);
    const std::uint64_t index = frames_sent_++;
    if (script_ != nullptr) {
      for (std::size_t i = 0; i < script_->severs.size(); ++i) {
        if (!sever_fired_[i] && script_->severs[i].frame_index == index) {
          // No byte stream to resume on this backend: a scripted sever is a
          // permanent link death, the backend-invariant "worker killed"
          // signal (see header).
          sever_fired_[i] = true;
          queue_.close();
          return false;
        }
      }
    }
  }
  return queue_.push(std::move(frame));
}

std::optional<std::vector<std::uint8_t>> InProcTransport::receive() {
  return queue_.pop();
}

std::optional<std::vector<std::uint8_t>> InProcTransport::try_receive() {
  return queue_.try_pop();
}

PopStatus InProcTransport::receive_for(std::chrono::milliseconds timeout,
                                       std::vector<std::uint8_t>* out) {
  return queue_.pop_for(timeout, out);
}

void InProcTransport::close() { queue_.close(); }

bool InProcTransport::closed() const { return queue_.closed(); }

void InProcTransport::set_connection_script(const ConnectionScript* script) {
  std::lock_guard<std::mutex> lock(script_mutex_);
  script_ = script;
  sever_fired_.assign(script != nullptr ? script->severs.size() : 0, false);
}

// --- SocketTransport: session records ---------------------------------------
//
// The socket backend wraps every frame in a session record so a severed
// connection can resume without frame loss (DESIGN.md §11). Stream layout
// (little-endian), data direction tx_fd → rx_fd:
//
//   kData    := u8 1 | u64 seq | u32 frame_len | frame[frame_len]
//
// and on the reverse direction of the same TCP connection (rx_fd → tx_fd):
//
//   kAck     := u8 2 | u64 next_expected_seq
//   kHello   := u8 3 | u64 next_expected_seq     (reconnect handshake)
//   kGoodbye := u8 4                              (graceful close, tx → rx)
//
// The sender keeps every data record in a replay buffer until an ack (or
// reconnect hello) covers its sequence number; the receiver delivers frames
// strictly in sequence order and discards duplicates, so a replayed record
// is observed at most once above the transport — which is why all byte
// accounting stays at Message::wire_size() and replays only surface in the
// informational session counters.
//
// The record codec itself lives in comm/session.h, shared with the
// multi-process RemoteSocketTransport so the two backends cannot drift.

namespace {

using session::encode_ctrl_record;
using session::encode_data_record;
using session::kRecAck;
using session::kRecData;
using session::kRecGoodbye;
using session::kRecHello;
using session::Record;
using session::RecordParser;
using session::write_all;
using session::write_all_timed;

}  // namespace

// --- SocketTransport --------------------------------------------------------

class SocketTransport::Impl {
 public:
  Impl(util::Clock* clock, ReconnectPolicy policy)
      : clock_(clock != nullptr ? clock : &util::system_clock()),
        policy_(policy),
        jitter_rng_(policy.jitter_seed) {
    // Blocking handshake on an ephemeral loopback port: listen, connect,
    // accept. The connect completes against the listen backlog, so a single
    // thread can run all three steps in order. The listener is RETAINED so
    // session resume can re-establish the connection after a sever.
    listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
    VELA_CHECK_MSG(listener_ >= 0,
                   "socket(): " + std::string(std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    VELA_CHECK_MSG(
        ::bind(listener_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) == 0,
        "bind(127.0.0.1:0): " + std::string(std::strerror(errno)));
    VELA_CHECK_MSG(::listen(listener_, 1) == 0,
                   "listen(): " + std::string(std::strerror(errno)));
    socklen_t len = sizeof(addr_);
    VELA_CHECK(::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr_),
                             &len) == 0);
    conn_ = connect_pair();
    VELA_CHECK_MSG(conn_ != nullptr, "socket transport: initial connect failed");
  }

  ~Impl() {
    if (listener_ >= 0) ::close(listener_);
    // conn_ fds close with the last shared_ptr reference.
  }

  bool send(const std::vector<std::uint8_t>& frame) {
    // tx_mutex_ keeps concurrent senders' records intact on the stream (the
    // EP inboxes are many-writer) and orders close() after any in-progress
    // write, so a record is never torn by a graceful shutdown.
    std::lock_guard<std::mutex> tx(tx_mutex_);
    if (closed_.load(std::memory_order_acquire)) return false;

    std::shared_ptr<Conn> conn;
    std::vector<std::uint8_t> record;
    const ConnectionScript::Sever* sever = nullptr;
    {
      std::lock_guard<std::mutex> st(state_mutex_);
      const std::uint64_t seq = next_seq_++;
      record = encode_data_record(seq, frame);
      replay_.emplace_back(seq, frame);
      sever = pending_sever_locked(seq);
      {
        std::lock_guard<std::mutex> sl(stats_mutex_);
        ++stats_.frames_sent;
      }
    }
    conn = snapshot();
    drain_acks(conn);

    bool wrote = false;
    if (sever != nullptr) {
      // Scripted cut: put exactly byte_offset bytes of the record on the
      // wire, then kill the connection. The frame stays in the replay
      // buffer, so resume must deliver it exactly once.
      const std::size_t cut = std::min(sever->byte_offset, record.size());
      {
        std::lock_guard<std::mutex> wl(conn->write_mutex);
        if (cut > 0) write_all(conn->tx_fd, record.data(), cut);
        ::shutdown(conn->tx_fd, SHUT_RDWR);
      }
      std::lock_guard<std::mutex> sl(stats_mutex_);
      ++stats_.severs_injected;
    } else {
      std::lock_guard<std::mutex> wl(conn->write_mutex);
      wrote = write_all(conn->tx_fd, record.data(), record.size());
    }
    if (wrote) return true;

    // The write failed (or the script cut the stream): resume the session.
    // recover() replays everything unacknowledged — including this frame —
    // so a successful resume means the frame is on the wire.
    std::unique_lock<std::mutex> st(state_mutex_);
    return recover_locked(conn, st);
  }

  // Timed/blocking/non-blocking receive share one loop; `timeout_ms` < 0
  // blocks indefinitely, 0 polls.
  PopStatus receive_within(long timeout_ms, std::vector<std::uint8_t>* out) {
    std::lock_guard<std::mutex> rx(rx_mutex_);
    // The poll deadline below is the OS-level wait budget — the injection
    // point itself; virtual-time conversion happens one layer up
    // (util::Clock::wait_slice in the retry loops).
    // vela-lint: allow(naked-clock)
    const auto deadline =
        timeout_ms < 0
            ? std::chrono::steady_clock::time_point::max()
            // vela-lint: allow(naked-clock)
            : std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
    while (true) {
      std::shared_ptr<Conn> conn = snapshot();
      Record rec;
      if (conn->rx_parser.next(&rec)) {
        if (rec.type == kRecData) {
          const std::uint64_t expected =
              next_expected_.load(std::memory_order_acquire);
          if (rec.seq == expected) {
            next_expected_.store(expected + 1, std::memory_order_release);
            send_ack(conn, expected + 1);
            *out = std::move(rec.frame);
            return PopStatus::kOk;
          }
          VELA_CHECK_MSG(rec.seq < expected,
                         "session resume broke ordering: got seq "
                             << rec.seq << ", expected " << expected);
          // A replayed record we already delivered: discard (this is the
          // exactly-once half of the resume contract) and re-ack so the
          // sender prunes its replay buffer.
          {
            std::lock_guard<std::mutex> sl(stats_mutex_);
            ++stats_.duplicates_discarded;
          }
          send_ack(conn, expected);
          continue;
        }
        VELA_CHECK_MSG(rec.type == kRecGoodbye,
                       "unexpected session record on data direction: "
                           << static_cast<int>(rec.type));
        goodbye_received_ = true;
        continue;
      }
      // Parser empty: closed-and-drained, or wait for more bytes.
      if (goodbye_received_) return PopStatus::kClosed;
      if (dead_.load(std::memory_order_acquire)) return PopStatus::kClosed;
      if (conn->rx_eof) {
        // EOF without a goodbye: the connection was lost, not closed.
        std::unique_lock<std::mutex> st(state_mutex_, std::try_to_lock);
        if (st.owns_lock()) {
          if (!recover_locked(conn, st)) return PopStatus::kClosed;
        } else {
          // Another thread is already resuming; yield so it can publish the
          // fresh connection (we then drain its replay). Real yield on
          // purpose — this is inter-thread scheduling, not protocol time.
          // vela-lint: allow(naked-clock)
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        continue;
      }

      int wait_ms = -1;
      if (timeout_ms >= 0) {
        // vela-lint: allow(naked-clock)
        const auto remaining = deadline - std::chrono::steady_clock::now();
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
                .count();
        if (ms < 0 && timeout_ms != 0) return PopStatus::kTimeout;
        wait_ms = ms < 0 ? 0 : static_cast<int>(ms);
      }
      pollfd pfd{};
      pfd.fd = conn->rx_fd;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, wait_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        VELA_CHECK_MSG(false, "poll(): " + std::string(std::strerror(errno)));
      }
      if (ready == 0) {
        if (timeout_ms == 0) return PopStatus::kTimeout;
        continue;  // re-check the deadline at the loop top
      }

      std::uint8_t buf[65536];
      const ssize_t n = ::recv(conn->rx_fd, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNRESET || errno == EPIPE) {
          conn->rx_eof = true;
          continue;
        }
        VELA_CHECK_MSG(false, "recv(): " + std::string(std::strerror(errno)));
      }
      if (n == 0) {
        conn->rx_eof = true;
        continue;
      }
      conn->rx_parser.feed(buf, static_cast<std::size_t>(n));
    }
  }

  void close() {
    std::lock_guard<std::mutex> tx(tx_mutex_);
    if (closed_.exchange(true, std::memory_order_acq_rel)) return;
    std::shared_ptr<Conn> conn = snapshot();
    // Goodbye after the last complete record, then FIN: the receiver drains
    // buffered records, sees the goodbye, and reports closed — the
    // BlockingQueue close-then-drain contract. An EOF *without* goodbye is
    // a connection loss and triggers resume instead.
    const auto bye = encode_ctrl_record(kRecGoodbye, 0);
    std::lock_guard<std::mutex> wl(conn->write_mutex);
    write_all(conn->tx_fd, bye.data(), bye.size());
    ::shutdown(conn->tx_fd, SHUT_WR);
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  void set_connection_script(const ConnectionScript* script) {
    std::lock_guard<std::mutex> st(state_mutex_);
    script_ = script;
    sever_fired_.assign(script != nullptr ? script->severs.size() : 0, false);
    refused_so_far_ = 0;
  }

  SessionStats session_stats() const {
    std::lock_guard<std::mutex> sl(stats_mutex_);
    return stats_;
  }

 private:
  struct Conn {
    int tx_fd = -1;
    int rx_fd = -1;
    std::mutex write_mutex;  // serializes writers to tx_fd (data/replay/bye)
    RecordParser rx_parser;  // receiver side; guarded by rx_mutex_
    RecordParser ack_parser;  // sender side (acks + hello); guarded by
                              // tx_mutex_, or state_mutex_ pre-publish
    bool rx_eof = false;      // guarded by rx_mutex_

    ~Conn() {
      if (tx_fd >= 0) ::close(tx_fd);
      if (rx_fd >= 0) ::close(rx_fd);
    }
  };

  std::shared_ptr<Conn> snapshot() const {
    std::lock_guard<std::mutex> lock(conn_ptr_mutex_);
    return conn_;
  }

  // Establishes a fresh connection through the retained listener. Returns
  // nullptr for a scripted refusal. Caller holds state_mutex_ (or is the
  // constructor).
  std::shared_ptr<Conn> connect_pair(bool resume = false) {
    if (resume && script_ != nullptr &&
        refused_so_far_ < script_->refuse_reconnects) {
      ++refused_so_far_;
      std::lock_guard<std::mutex> sl(stats_mutex_);
      ++stats_.refused_connects;
      return nullptr;
    }
    if (resume && script_ != nullptr && script_->accept_delay.count() > 0) {
      clock_->sleep_for(script_->accept_delay);
    }
    const int tx = ::socket(AF_INET, SOCK_STREAM, 0);
    VELA_CHECK_MSG(tx >= 0, "socket(): " + std::string(std::strerror(errno)));
    if (::connect(tx, reinterpret_cast<const sockaddr*>(&addr_),
                  sizeof(addr_)) != 0) {
      ::close(tx);
      return nullptr;
    }
    const int rx = ::accept(listener_, nullptr, nullptr);
    if (rx < 0) {
      ::close(tx);
      return nullptr;
    }
    // Frames are small and latency-sensitive (request/reply protocol):
    // disable Nagle so a record is not held back waiting for an ACK.
    const int one = 1;
    ::setsockopt(tx, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->tx_fd = tx;
    conn->rx_fd = rx;
    return conn;
  }

  // The scripted sever (if any) that fires on data frame `seq`. Caller
  // holds state_mutex_.
  const ConnectionScript::Sever* pending_sever_locked(std::uint64_t seq) {
    if (script_ == nullptr) return nullptr;
    for (std::size_t i = 0; i < script_->severs.size(); ++i) {
      if (!sever_fired_[i] && script_->severs[i].frame_index == seq) {
        sever_fired_[i] = true;
        return &script_->severs[i];
      }
    }
    return nullptr;
  }

  // Opportunistic ack drain on the send path: prunes the replay buffer.
  void drain_acks(const std::shared_ptr<Conn>& conn) {
    while (true) {
      std::uint8_t buf[4096];
      const ssize_t n =
          ::recv(conn->tx_fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n <= 0) break;
      conn->ack_parser.feed(buf, static_cast<std::size_t>(n));
    }
    Record rec;
    while (conn->ack_parser.next(&rec)) {
      VELA_CHECK_MSG(rec.type == kRecAck,
                     "unexpected session record on ack direction: "
                         << static_cast<int>(rec.type));
      std::lock_guard<std::mutex> st(state_mutex_);
      prune_replay_locked(rec.seq);
    }
  }

  void prune_replay_locked(std::uint64_t next_expected) {
    while (!replay_.empty() && replay_.front().first < next_expected) {
      replay_.pop_front();
    }
  }

  // Receiver-side cumulative ack. Best-effort: a lost ack only delays
  // pruning (the reconnect hello is the authoritative sync point).
  void send_ack(const std::shared_ptr<Conn>& conn,
                std::uint64_t next_expected) {
    const auto ack = encode_ctrl_record(kRecAck, next_expected);
    write_all(conn->rx_fd, ack.data(), ack.size());
  }

  // Session resume (DESIGN.md §11). Caller holds state_mutex_ via `st`.
  // Backoff attempt k sleeps min(base·mult^(k-1), max) + seeded jitter on
  // the injected clock. The handshake: a fresh connection is established
  // through the retained listener, the receive side sends kHello carrying
  // its next expected sequence number, the send side prunes its replay
  // buffer to that point and replays the rest — then the connection is
  // published and the old one's fds are shut down (waking any pollers).
  // Returns false once the attempt budget is exhausted: the session is
  // dead and the transport reports closed.
  bool recover_locked(const std::shared_ptr<Conn>& old_conn,
                      std::unique_lock<std::mutex>& st) {
    (void)st;
    if (dead_.load(std::memory_order_acquire)) return false;
    if (goodbye_received_ ||
        (closed_.load(std::memory_order_acquire) && snapshot() == old_conn)) {
      // Graceful close in progress — nothing to resume.
      return false;
    }
    if (snapshot() != old_conn) return true;  // another thread resumed

    for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
      if (attempt > 1) {
        const auto base = policy_.backoff_base.count();
        double delay = static_cast<double>(base);
        for (int k = 2; k < attempt; ++k) delay *= policy_.backoff_multiplier;
        delay = std::min(delay,
                         static_cast<double>(policy_.backoff_max.count()));
        const auto jitter = static_cast<std::int64_t>(
            jitter_rng_.uniform_index(static_cast<std::uint64_t>(base) + 1));
        clock_->sleep_for(std::chrono::milliseconds(
            static_cast<std::int64_t>(delay) + jitter));
      }
      std::shared_ptr<Conn> fresh = connect_pair(/*resume=*/true);
      if (fresh == nullptr) continue;  // refused

      // Handshake: receive side → kHello(next_expected) → send side.
      const std::uint64_t expected =
          next_expected_.load(std::memory_order_acquire);
      const auto hello = encode_ctrl_record(kRecHello, expected);
      if (!write_all_timed(fresh->rx_fd, hello.data(), hello.size(), 2000)) {
        continue;
      }
      Record rec;
      if (!read_record_blocking(fresh->tx_fd, &fresh->ack_parser, &rec) ||
          rec.type != kRecHello) {
        continue;
      }
      prune_replay_locked(rec.seq);

      // Publish BEFORE replaying: the receive path (which never blocks on
      // state_mutex_) starts draining the fresh connection immediately, so
      // a replay larger than the socket buffers still makes progress.
      {
        std::lock_guard<std::mutex> cp(conn_ptr_mutex_);
        conn_ = fresh;
      }
      ::shutdown(old_conn->tx_fd, SHUT_RDWR);
      ::shutdown(old_conn->rx_fd, SHUT_RDWR);

      bool ok = true;
      {
        std::lock_guard<std::mutex> wl(fresh->write_mutex);
        for (const auto& [seq, frame] : replay_) {
          const auto record = encode_data_record(seq, frame);
          if (!write_all_timed(fresh->tx_fd, record.data(), record.size(),
                               5000)) {
            ok = false;
            break;
          }
          {
            std::lock_guard<std::mutex> sl(stats_mutex_);
            ++stats_.replayed_frames;
            stats_.replayed_bytes += record.size();
          }
          if (audit::enabled()) {
            audit::ConservationLedger::instance().on_session_replay(
                record.size());
          }
        }
      }
      if (!ok) {
        // The fresh connection wedged mid-replay; cut it and try again —
        // the next hello re-syncs, so nothing is lost or duplicated.
        ::shutdown(fresh->tx_fd, SHUT_RDWR);
        ::shutdown(fresh->rx_fd, SHUT_RDWR);
        continue;
      }
      {
        std::lock_guard<std::mutex> sl(stats_mutex_);
        ++stats_.reconnects;
      }
      VELA_LOG_DEBUG("session") << "resumed after " << attempt
                                << " attempt(s), replayed " << replay_.size()
                                << " frame(s)";
      return true;
    }

    // Budget exhausted: the session is dead. The transport reports closed;
    // the layers above turn that into WorkerFailedError → degrade.
    dead_.store(true, std::memory_order_release);
    closed_.store(true, std::memory_order_release);
    ::shutdown(old_conn->tx_fd, SHUT_RDWR);
    ::shutdown(old_conn->rx_fd, SHUT_RDWR);
    {
      std::lock_guard<std::mutex> cp(conn_ptr_mutex_);
      if (conn_ != old_conn) {
        ::shutdown(conn_->tx_fd, SHUT_RDWR);
        ::shutdown(conn_->rx_fd, SHUT_RDWR);
      }
    }
    VELA_LOG_WARN("session") << "reconnect budget exhausted ("
                             << policy_.max_attempts
                             << " attempts); session dead";
    return false;
  }

  // Blocking read of one record during the handshake (real-time bounded:
  // loopback round trip, not protocol time).
  bool read_record_blocking(int fd, RecordParser* parser, Record* out) {
    return session::read_record_blocking(fd, parser, out, /*budget_ms=*/2000);
  }

  util::Clock* clock_;
  ReconnectPolicy policy_;
  int listener_ = -1;
  sockaddr_in addr_{};

  std::mutex tx_mutex_;  // serializes send()/close() callers
  std::mutex rx_mutex_;  // serializes receive callers

  // Session state: sequence numbers, replay buffer, reconnect machinery.
  // Lock order (never reversed): tx_mutex_/rx_mutex_ → state_mutex_ →
  // conn_ptr_mutex_/Conn::write_mutex → stats_mutex_.
  std::mutex state_mutex_;
  std::deque<std::pair<std::uint64_t, std::vector<std::uint8_t>>> replay_;
  std::uint64_t next_seq_ = 0;  // guarded by state_mutex_
  Rng jitter_rng_;              // guarded by state_mutex_
  const ConnectionScript* script_ = nullptr;  // guarded by state_mutex_
  std::vector<bool> sever_fired_;             // guarded by state_mutex_
  int refused_so_far_ = 0;                    // guarded by state_mutex_

  mutable std::mutex conn_ptr_mutex_;
  std::shared_ptr<Conn> conn_;  // guarded by conn_ptr_mutex_

  std::atomic<std::uint64_t> next_expected_{0};
  bool goodbye_received_ = false;  // guarded by rx_mutex_
  std::atomic<bool> closed_{false};
  std::atomic<bool> dead_{false};

  mutable std::mutex stats_mutex_;
  SessionStats stats_;  // guarded by stats_mutex_
};

SocketTransport::SocketTransport(util::Clock* clock, ReconnectPolicy policy)
    : impl_(std::make_unique<Impl>(clock, policy)) {}
SocketTransport::~SocketTransport() = default;

bool SocketTransport::send(std::vector<std::uint8_t> frame) {
  return impl_->send(frame);
}

std::optional<std::vector<std::uint8_t>> SocketTransport::receive() {
  std::vector<std::uint8_t> frame;
  if (impl_->receive_within(-1, &frame) != PopStatus::kOk) return std::nullopt;
  return frame;
}

std::optional<std::vector<std::uint8_t>> SocketTransport::try_receive() {
  std::vector<std::uint8_t> frame;
  if (impl_->receive_within(0, &frame) != PopStatus::kOk) return std::nullopt;
  return frame;
}

PopStatus SocketTransport::receive_for(std::chrono::milliseconds timeout,
                                       std::vector<std::uint8_t>* out) {
  const long ms = static_cast<long>(timeout.count());
  return impl_->receive_within(ms < 0 ? 0 : ms, out);
}

void SocketTransport::close() { impl_->close(); }

bool SocketTransport::closed() const { return impl_->closed(); }

void SocketTransport::set_connection_script(const ConnectionScript* script) {
  impl_->set_connection_script(script);
}

SessionStats SocketTransport::session_stats() const {
  return impl_->session_stats();
}

std::unique_ptr<Transport> make_transport(TransportKind kind) {
  if (resolve_transport(kind) == TransportKind::kSocket) {
    ReconnectPolicy policy;
    // Retry-budget knob (README): cap reconnect attempts per sever before
    // the session is declared dead.
    if (const char* env = std::getenv("VELA_RECONNECT_ATTEMPTS");
        env != nullptr && env[0] != '\0') {
      const long attempts = std::strtol(env, nullptr, 10);
      VELA_CHECK_MSG(attempts >= 1,
                     "VELA_RECONNECT_ATTEMPTS must be >= 1, got '" +
                         std::string(env) + "'");
      policy.max_attempts = static_cast<int>(attempts);
    }
    return std::make_unique<SocketTransport>(nullptr, policy);
  }
  return std::make_unique<InProcTransport>();
}

}  // namespace vela::comm
