#include "comm/session.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "comm/frame.h"
#include "util/check.h"

namespace vela::comm::session {

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void RecordParser::feed(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

namespace {

// Header length for a record type; 0 for an unknown type.
std::size_t header_bytes_for(std::uint8_t type) {
  switch (type) {
    case kRecData:
      return kSessionDataOverheadBytes;
    case kRecAck:
    case kRecHello:
      return 1 + sizeof(std::uint64_t);
    case kRecGoodbye:
      return 1;
    case kRecIdent:
      return kIdentRecordBytes;
    default:
      return 0;
  }
}

}  // namespace

bool RecordParser::next(Record* out) {
  bool corrupt = false;
  const bool got = next_lenient(out, &corrupt);
  if (corrupt) {
    VELA_CHECK_MSG(false, "session stream corrupted: record type "
                              << static_cast<int>(buffer_[0]));
  }
  return got;
}

bool RecordParser::next_lenient(Record* out, bool* corrupt) {
  *corrupt = false;
  if (buffer_.empty()) return false;
  const std::uint8_t type = buffer_[0];
  const std::size_t header = header_bytes_for(type);
  if (header == 0) {
    *corrupt = true;
    return false;
  }
  if (buffer_.size() < header) return false;
  std::size_t total = header;
  if (type == kRecData) {
    const std::uint32_t len = get_u32(buffer_.data() + 9);
    if (len > kMaxFrameBodyBytes + kFrameOverheadBytes) {
      *corrupt = true;
      return false;
    }
    total += len;
    if (buffer_.size() < total) return false;
  }
  out->type = type;
  out->seq = 0;
  out->ident_valid = false;
  out->frame.clear();
  switch (type) {
    case kRecData:
      out->seq = get_u64(buffer_.data() + 1);
      out->frame.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(header),
                        buffer_.begin() + static_cast<std::ptrdiff_t>(total));
      break;
    case kRecAck:
    case kRecHello:
      out->seq = get_u64(buffer_.data() + 1);
      break;
    case kRecIdent: {
      const std::uint8_t* p = buffer_.data() + 1;
      const std::uint32_t magic = get_u32(p);
      const std::uint32_t version = get_u32(p + 4);
      out->ident.rank = get_u32(p + 8);
      out->ident.lane = p[12];
      out->ident.capacity = get_u64(p + 13);
      out->ident.session_id = get_u64(p + 21);
      out->ident_valid = magic == kIdentMagic && version == kIdentVersion &&
                         (out->ident.lane == kLaneToWorker ||
                          out->ident.lane == kLaneToMaster);
      break;
    }
    case kRecGoodbye:
      break;  // goodbye carries nothing beyond the type byte
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  return true;
}

std::vector<std::uint8_t> encode_data_record(
    std::uint64_t seq, const std::vector<std::uint8_t>& frame) {
  std::vector<std::uint8_t> rec;
  rec.reserve(kSessionDataOverheadBytes + frame.size());
  rec.push_back(kRecData);
  put_u64(&rec, seq);
  put_u32(&rec, static_cast<std::uint32_t>(frame.size()));
  rec.insert(rec.end(), frame.begin(), frame.end());
  return rec;
}

std::vector<std::uint8_t> encode_ctrl_record(std::uint8_t type,
                                             std::uint64_t seq) {
  std::vector<std::uint8_t> rec;
  if (type == kRecGoodbye) {
    rec.push_back(kRecGoodbye);
    return rec;
  }
  rec.reserve(1 + sizeof(std::uint64_t));
  rec.push_back(type);
  put_u64(&rec, seq);
  return rec;
}

std::vector<std::uint8_t> encode_ident_record(const PeerIdentity& id) {
  std::vector<std::uint8_t> rec;
  rec.reserve(kIdentRecordBytes);
  rec.push_back(kRecIdent);
  put_u32(&rec, kIdentMagic);
  put_u32(&rec, kIdentVersion);
  put_u32(&rec, id.rank);
  rec.push_back(id.lane);
  put_u64(&rec, id.capacity);
  put_u64(&rec, id.session_id);
  VELA_CHECK(rec.size() == kIdentRecordBytes);
  return rec;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Poll deadlines are OS-level waits, the injection point itself.
// vela-lint: allow(naked-clock)
bool write_all_timed(int fd, const std::uint8_t* data, std::size_t size,
                     int budget_ms) {
  // vela-lint: allow(naked-clock)
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n =
        ::send(fd, data + off, size - off, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return false;
    }
    // vela-lint: allow(naked-clock)
    const auto remaining = deadline - std::chrono::steady_clock::now();
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
            .count();
    if (ms <= 0) return false;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    ::poll(&pfd, 1, static_cast<int>(ms));
  }
  return true;
}

// Handshake reads are real-time bounded (loopback round trip, not protocol
// time). vela-lint: allow(naked-clock)
bool read_record_blocking(int fd, RecordParser* parser, Record* out,
                          int budget_ms, bool lenient) {
  // vela-lint: allow(naked-clock)
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  while (true) {
    if (lenient) {
      bool corrupt = false;
      if (parser->next_lenient(out, &corrupt)) return true;
      if (corrupt) return false;
    } else {
      if (parser->next(out)) return true;
    }
    // vela-lint: allow(naked-clock)
    const auto remaining = deadline - std::chrono::steady_clock::now();
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
            .count();
    if (ms <= 0) return false;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, static_cast<int>(ms));
    if (ready <= 0) {
      if (ready < 0 && errno == EINTR) continue;
      return false;
    }
    std::uint8_t buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    parser->feed(buf, static_cast<std::size_t>(n));
  }
}

int make_listen_socket(std::uint16_t port, std::uint16_t* bound_port,
                       int backlog, int bind_attempts,
                       std::chrono::milliseconds retry_delay,
                       util::Clock* clock) {
  util::Clock* clk = clock != nullptr ? clock : &util::system_clock();
  VELA_CHECK_MSG(bind_attempts >= 1, "bind_attempts must be >= 1");
  int last_errno = 0;
  for (int attempt = 1; attempt <= bind_attempts; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    VELA_CHECK_MSG(fd >= 0, "socket(): " + std::string(std::strerror(errno)));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      last_errno = errno;
      ::close(fd);
      // Only a collision is worth retrying — the port may free up. Anything
      // else (EACCES, bad address) will not change on a re-bind.
      VELA_CHECK_MSG(last_errno == EADDRINUSE,
                     "bind(127.0.0.1:" << port
                                       << "): " << std::strerror(last_errno));
      if (attempt < bind_attempts) clk->sleep_for(retry_delay);
      continue;
    }
    VELA_CHECK_MSG(::listen(fd, backlog) == 0,
                   "listen(): " + std::string(std::strerror(errno)));
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    VELA_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
               0);
    if (bound_port != nullptr) *bound_port = ntohs(bound.sin_port);
    return fd;
  }
  VELA_CHECK_MSG(false, "bind(127.0.0.1:"
                            << port << "): port still in use after "
                            << bind_attempts << " attempt(s): "
                            << std::strerror(last_errno));
  return -1;  // unreachable
}

int dial_socket(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace vela::comm::session
