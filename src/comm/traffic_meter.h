// Traffic accounting: every byte that crosses a channel is attributed to a
// (source node, destination node) pair. "External traffic" — the paper's
// Fig. 5 metric — is traffic whose endpoints sit on different nodes,
// averaged per node and reported per fine-tuning step.
//
// Recovery phase (DESIGN.md §11): while a RecoveryScope is open, every
// recorded byte is ADDITIONALLY charged to the step's recovery counters —
// the elastic-FT layer's restore/migration traffic. The external/total
// series are untouched (a recovered byte still crossed the wire), so all
// existing ledgers and golden CSVs are unaffected; the recovery series is a
// new, separate breakdown. The master opens the scope around respawn
// restores and degrade migrations; both run single-threaded on the master
// thread with workers only echoing its requests, so everything metered
// inside the scope is recovery traffic by construction.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "cluster/topology.h"
#include "util/audit.h"

namespace vela::comm {

class TrafficMeter {
 public:
  explicit TrafficMeter(const cluster::ClusterTopology* topology);

  // Records `bytes` flowing from node `src_node` to node `dst_node`.
  void record(std::size_t src_node, std::size_t dst_node, std::uint64_t bytes);

  // Closes the current fine-tuning step: snapshots the per-step counters
  // into history and resets them.
  void end_step();

  // Drops the currently accumulating counters without recording a step
  // (used after the profiling pre-pass, which is not a fine-tuning step).
  void discard_current();

  // --- current (open) step -------------------------------------------------
  std::uint64_t current_external_bytes() const;
  std::uint64_t current_total_bytes() const;

  // --- history ---------------------------------------------------------------
  std::size_t num_steps() const;
  // Total cross-node bytes in step `i`.
  std::uint64_t step_external_bytes(std::size_t i) const;
  // All bytes (intra- plus cross-node) in step `i`.
  std::uint64_t step_total_bytes(std::size_t i) const;
  // The Fig. 5 series: cross-node MB per node for step `i`.
  double step_external_mb_per_node(std::size_t i) const;
  // Mean of the per-step series.
  double mean_external_mb_per_node() const;
  std::uint64_t lifetime_external_bytes() const;
  std::uint64_t lifetime_total_bytes() const;

  // --- recovery phase (DESIGN.md §11) --------------------------------------
  // RAII scope: while alive, recorded bytes are also charged to the step's
  // recovery counters. Nestable (a degrade inside a recover_step charges
  // once, not twice).
  class RecoveryScope {
   public:
    explicit RecoveryScope(TrafficMeter* meter);
    ~RecoveryScope();
    RecoveryScope(const RecoveryScope&) = delete;
    RecoveryScope& operator=(const RecoveryScope&) = delete;

   private:
    TrafficMeter* meter_;  // nullptr when metering is disabled
  };

  std::uint64_t current_recovery_bytes() const;
  std::uint64_t step_recovery_bytes(std::size_t i) const;
  std::uint64_t lifetime_recovery_bytes() const;

  // --- expert paging (DESIGN.md §15) ---------------------------------------
  // Bytes the expert store spilled to / reloaded from its on-disk table.
  // Like the recovery series this is a separate breakdown: paged bytes never
  // cross a channel, so they are NOT added to the external/total series —
  // budget-unbounded runs and paged runs report identical network traffic.
  void record_page_in(std::uint64_t bytes);
  void record_page_out(std::uint64_t bytes);

  std::uint64_t current_paging_bytes() const;  // in + out, open step
  std::uint64_t step_paging_bytes(std::size_t i) const;
  std::uint64_t lifetime_page_in_bytes() const;
  std::uint64_t lifetime_page_out_bytes() const;

 private:
  const cluster::ClusterTopology* topology_;
  mutable audit::AuditedMutex mutex_{"traffic_meter"};
  std::uint64_t cur_external_ = 0;
  std::uint64_t cur_total_ = 0;
  std::uint64_t cur_recovery_ = 0;
  std::uint64_t cur_page_in_ = 0;
  std::uint64_t cur_page_out_ = 0;
  std::uint64_t lifetime_page_in_ = 0;
  std::uint64_t lifetime_page_out_ = 0;
  int recovery_depth_ = 0;  // > 0 while a RecoveryScope is open
  std::vector<std::uint64_t> external_history_;
  std::vector<std::uint64_t> total_history_;
  std::vector<std::uint64_t> recovery_history_;
  std::vector<std::uint64_t> paging_history_;  // in + out per step
};

}  // namespace vela::comm
