// Shared per-phase byte/message ledger for both runtimes.
//
// A training step has 2·L synchronization phases — forward MoE block 0..L−1,
// then backward L−1..0 — and both runtimes feed the CommClock a record of
// the bytes each phase moved: VELA as master↔worker lanes (VelaStepRecord),
// the EP baseline as a full [N][N] all-to-all matrix (EpStepRecord). The
// charge/phase-interleave/reset bookkeeping used to be copy-pasted between
// ExpertBroker and ep::PeerBackend; this helper owns it once, so the phase
// ordering convention cannot drift between the systems being compared.
//
// Thread-safety: none — each owner charges from a single thread (the master
// thread; one EP shard thread per ledger) and merges after joining, exactly
// as before.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/comm_clock.h"

namespace vela::comm {

class PhaseLedger {
 public:
  // `rows`×`cols` cells per phase. VELA uses 1×N (one master row, one column
  // per worker); EP uses N×N (device → device).
  PhaseLedger(std::size_t num_layers, std::size_t rows, std::size_t cols);

  // Charges `bytes`/`messages` to the (row, col) cell of layer `layer`'s
  // forward or backward phase.
  void charge(std::size_t layer, bool backward_phase, std::size_t row,
              std::size_t col, std::uint64_t bytes, std::uint32_t messages);

  void reset();

  // Drains into a VelaStepRecord (phases forward 0..L−1 then backward
  // L−1..0) and resets. Requires rows == 1: lane n is cell (0, n).
  [[nodiscard]] VelaStepRecord take_vela();

  // Drains into an EpStepRecord's phases (same ordering) and resets. The
  // caller fills allreduce_bytes_per_device — the all-reduce is not a phase.
  [[nodiscard]] EpStepRecord take_ep();

  [[nodiscard]] std::size_t num_layers() const { return num_layers_; }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

 private:
  struct Cells {
    std::vector<std::vector<std::uint64_t>> bytes;     // [rows][cols]
    std::vector<std::vector<std::uint32_t>> messages;  // [rows][cols]
  };

  std::size_t num_layers_, rows_, cols_;
  std::vector<Cells> fwd_;  // [L]
  std::vector<Cells> bwd_;  // [L]
};

}  // namespace vela::comm
