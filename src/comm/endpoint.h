// Point-to-point endpoint between two processes of the runtime — the
// transport-agnostic layer of the comm fabric (DESIGN.md §10).
//
// An Endpoint owns exactly the responsibilities that must be identical on
// every backend:
//
//   * Message ↔ frame serialization (frame.h, lossless);
//   * traffic attribution — the TrafficMeter, the per-endpoint byte/message
//     counters, and the VELA_AUDIT conservation ledger are all charged HERE,
//     never in a runtime and never in a Transport. The charge is always
//     Message::wire_size() (the accounted protocol size), never the physical
//     frame size, so Fig. 5/6 numbers are invariant across backends;
//   * fault injection and integrity: the checksum is stamped and the
//     FaultInjector consulted before framing, so a corrupted message frames
//     cleanly and is only rejected by the receiving runtime's checksum_ok()
//     — drop/sever/duplicate/corrupt behave identically over a queue and a
//     socket, and ReliableLink's retransmit logic needs no backend code.
//
// This replaces the old comm::Channel (which fused all of the above with a
// hard-wired BlockingQueue<Message>). Construction goes through
// make_endpoint/make_duplex_link or a config's TransportKind; vela_lint's
// direct-transport rule keeps ad-hoc construction out of the runtimes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "comm/fault_injector.h"
#include "comm/message.h"
#include "comm/traffic_meter.h"
#include "comm/transport.h"

namespace vela::comm {

// Which half of a cross-process lane this Endpoint is (DESIGN.md §12).
//
// When both halves of a lane live in one process (kNone), this single
// Endpoint does all the accounting. When the lane crosses a process
// boundary, each process owns one Endpoint over one RemoteSocketTransport,
// and the accounting splits so that every process's ledger balances by
// itself AND the union over processes equals the in-process charges:
//
//   * kEgress  — the local send half. Meters at send exactly as kNone does
//     (the bytes left this node's NIC), but pairs the ledger's posted
//     charge with an immediate received charge: the matching delivery
//     happens in another process, whose own ledger never saw the post.
//   * kIngress — the local receive half. Meters and charges the ledger
//     (posted + received, paired) at receive time; the sender's meter lives
//     in the other process. Order-freedom of the TrafficMeter sums plus the
//     request/reply discipline of the runtimes (the master awaits every
//     reply within the step) make the per-step totals bit-identical to the
//     in-process run — the cross-mode gate pins this.
//
// Both remote roles advance accepted_ and delivered_ together, so
// pending() == 0 and the ledger's in_flight stays zero at every boundary.
enum class RemoteRole : std::uint8_t { kNone, kEgress, kIngress };

class Endpoint {
 public:
  // `src_node`/`dst_node` locate the endpoints for traffic attribution.
  // `meter` may be null (un-metered control channels). `kind` is resolved
  // against VELA_TRANSPORT once, at construction.
  Endpoint(TransportKind kind, std::size_t src_node, std::size_t dst_node,
           TrafficMeter* meter);

  // Cross-process lane half over a pre-built transport (a
  // RemoteSocketTransport from the dial/adopt factories). kind() reports
  // kSocket — remote lanes are the socket fabric by construction.
  Endpoint(std::unique_ptr<Transport> transport, RemoteRole role,
           std::size_t src_node, std::size_t dst_node, TrafficMeter* meter);

  // Sends a message; records its wire size. Returns false if closed.
  bool send(Message msg);

  // Blocks for the next message; nullopt once closed and drained.
  std::optional<Message> receive();
  std::optional<Message> try_receive();
  // Timed receive: kOk fills *out, kTimeout means nothing arrived, kClosed
  // means the endpoint is closed and drained. The retry layer is built on
  // this — a timeout is a suspected fault, a close a confirmed one.
  PopStatus receive_for(std::chrono::milliseconds timeout, Message* out);

  // Attaches a fault injector (may be null to detach). `link` and `dir`
  // identify this endpoint in the injector's per-lane fault plan. While an
  // injector is attached every outgoing message is checksummed.
  void set_fault_injector(FaultInjector* injector, std::size_t link,
                          LinkDir dir);

  void close();
  [[nodiscard]] bool closed() const { return transport_->closed(); }

  // Messages accepted by the transport but not yet handed to a receiver.
  // Maintained here (not read from a backend queue) with the same
  // charge-before-publish ordering as the conservation ledger, so at a
  // quiescent step boundary pending() over all endpoints equals the
  // ledger's in_flight count on every backend.
  [[nodiscard]] std::size_t pending() const;

  [[nodiscard]] std::size_t src_node() const { return src_; }
  [[nodiscard]] std::size_t dst_node() const { return dst_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_.load(); }
  [[nodiscard]] std::uint64_t messages_sent() const {
    return messages_sent_.load();
  }
  // Receive-side counters, maintained in every mode: a consumer that wants
  // per-lane traffic (the --processes bench emitters) reads bytes_sent() on
  // its send half and bytes_received() on its receive half, which is
  // mode-agnostic — in a remote process the send half of the reverse lane
  // is unreachable.
  [[nodiscard]] std::uint64_t bytes_received() const {
    return bytes_received_.load();
  }
  [[nodiscard]] std::uint64_t messages_received() const {
    return messages_received_.load();
  }
  [[nodiscard]] RemoteRole remote_role() const { return role_; }
  [[nodiscard]] TransportKind kind() const { return kind_; }
  [[nodiscard]] const char* backend_name() const { return transport_->name(); }

 private:
  // Frames `msg` and offers it to the transport, with the ledger charged
  // before the frame is published (see channel ordering contract).
  bool offer(const Message& msg, std::uint64_t size);

  // Shared receive epilogue: counters + ledger (+ ingress meter charge).
  void account_received(std::uint64_t size);

  TransportKind kind_;
  RemoteRole role_ = RemoteRole::kNone;
  std::size_t src_, dst_;
  TrafficMeter* meter_;
  std::unique_ptr<Transport> transport_;
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> messages_received_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> delivered_{0};
  // Atomic: detach (master thread, at shutdown) can race a worker's late
  // reply send. The lane id/direction are only written before the pointer
  // is published (release/acquire pairing in set_fault_injector / send).
  std::atomic<FaultInjector*> injector_{nullptr};
  std::size_t injector_link_ = 0;
  LinkDir injector_dir_ = LinkDir::kToWorker;
};

// The bidirectional master↔worker link: a pair of endpoints.
struct DuplexLink {
  explicit DuplexLink(TransportKind kind = TransportKind::kDefault,
                      std::size_t master_node = 0, std::size_t worker_node = 0,
                      TrafficMeter* meter = nullptr)
      : to_worker(kind, master_node, worker_node, meter),
        to_master(kind, worker_node, master_node, meter) {}

  // Cross-process link: each lane is its own pre-built remote transport and
  // this process plays one role per lane (the master holds egress/ingress,
  // the worker the mirror image). Built by the remote factories below.
  DuplexLink(std::unique_ptr<Transport> to_worker_transport,
             RemoteRole to_worker_role,
             std::unique_ptr<Transport> to_master_transport,
             RemoteRole to_master_role, std::size_t master_node,
             std::size_t worker_node, TrafficMeter* meter)
      : to_worker(std::move(to_worker_transport), to_worker_role, master_node,
                  worker_node, meter),
        to_master(std::move(to_master_transport), to_master_role, worker_node,
                  master_node, meter) {}

  Endpoint to_worker;
  Endpoint to_master;

  // Attaches `injector` (null detaches) to both directions under lane id
  // `link` (the worker index in the master's fleet).
  void set_fault_injector(FaultInjector* injector, std::size_t link) {
    to_worker.set_fault_injector(injector, link, LinkDir::kToWorker);
    to_master.set_fault_injector(injector, link, LinkDir::kToMaster);
  }

  void close() {
    to_worker.close();
    to_master.close();
  }
};

// Factories — how the runtimes (and tests that are not about the fabric
// itself) construct endpoints; `kind` may be kDefault to follow
// VELA_TRANSPORT.
[[nodiscard]] std::unique_ptr<Endpoint> make_endpoint(TransportKind kind,
                                                      std::size_t src_node,
                                                      std::size_t dst_node,
                                                      TrafficMeter* meter);
[[nodiscard]] std::unique_ptr<DuplexLink> make_duplex_link(
    TransportKind kind, std::size_t master_node, std::size_t worker_node,
    TrafficMeter* meter);

// --- multi-process deployment (DESIGN.md §12) --------------------------------

class PeerListener;  // comm/peer_listener.h

// Master-side half of a cross-process link: blocks until worker `rank` has
// dialed both lanes of `listener` and identified itself, then adopts the
// two connections (to_worker = egress, to_master = ingress). The worker's
// announced expert capacity must equal `expected_capacity` — a scenario
// mismatch between launcher and worker is a configuration bug, caught here.
// Returns nullptr if the worker does not appear within `accept_timeout`.
[[nodiscard]] std::unique_ptr<DuplexLink> make_master_remote_link(
    PeerListener& listener, std::uint32_t rank,
    std::uint64_t expected_capacity, std::size_t master_node,
    std::size_t worker_node, TrafficMeter* meter,
    std::chrono::milliseconds accept_timeout, ReconnectPolicy policy = {},
    util::Clock* clock = nullptr);

// Worker-side half: dials the master's `port` twice (once per lane),
// announcing (rank, capacity, session_id) on each. Un-metered — traffic
// attribution lives with the master's meter. session_id must be stable for
// the life of this process (reconnects re-identify with it) and unique
// across processes (the launcher/VELA node derives it from the pid).
[[nodiscard]] std::unique_ptr<DuplexLink> make_worker_remote_link(
    std::uint16_t port, std::uint32_t rank, std::uint64_t capacity,
    std::uint64_t session_id, std::size_t master_node,
    std::size_t worker_node, ReconnectPolicy policy = {},
    util::Clock* clock = nullptr);

}  // namespace vela::comm
