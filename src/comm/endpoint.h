// Point-to-point endpoint between two processes of the runtime — the
// transport-agnostic layer of the comm fabric (DESIGN.md §10).
//
// An Endpoint owns exactly the responsibilities that must be identical on
// every backend:
//
//   * Message ↔ frame serialization (frame.h, lossless);
//   * traffic attribution — the TrafficMeter, the per-endpoint byte/message
//     counters, and the VELA_AUDIT conservation ledger are all charged HERE,
//     never in a runtime and never in a Transport. The charge is always
//     Message::wire_size() (the accounted protocol size), never the physical
//     frame size, so Fig. 5/6 numbers are invariant across backends;
//   * fault injection and integrity: the checksum is stamped and the
//     FaultInjector consulted before framing, so a corrupted message frames
//     cleanly and is only rejected by the receiving runtime's checksum_ok()
//     — drop/sever/duplicate/corrupt behave identically over a queue and a
//     socket, and ReliableLink's retransmit logic needs no backend code.
//
// This replaces the old comm::Channel (which fused all of the above with a
// hard-wired BlockingQueue<Message>). Construction goes through
// make_endpoint/make_duplex_link or a config's TransportKind; vela_lint's
// direct-transport rule keeps ad-hoc construction out of the runtimes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "comm/fault_injector.h"
#include "comm/message.h"
#include "comm/traffic_meter.h"
#include "comm/transport.h"

namespace vela::comm {

class Endpoint {
 public:
  // `src_node`/`dst_node` locate the endpoints for traffic attribution.
  // `meter` may be null (un-metered control channels). `kind` is resolved
  // against VELA_TRANSPORT once, at construction.
  Endpoint(TransportKind kind, std::size_t src_node, std::size_t dst_node,
           TrafficMeter* meter);

  // Sends a message; records its wire size. Returns false if closed.
  bool send(Message msg);

  // Blocks for the next message; nullopt once closed and drained.
  std::optional<Message> receive();
  std::optional<Message> try_receive();
  // Timed receive: kOk fills *out, kTimeout means nothing arrived, kClosed
  // means the endpoint is closed and drained. The retry layer is built on
  // this — a timeout is a suspected fault, a close a confirmed one.
  PopStatus receive_for(std::chrono::milliseconds timeout, Message* out);

  // Attaches a fault injector (may be null to detach). `link` and `dir`
  // identify this endpoint in the injector's per-lane fault plan. While an
  // injector is attached every outgoing message is checksummed.
  void set_fault_injector(FaultInjector* injector, std::size_t link,
                          LinkDir dir);

  void close();
  [[nodiscard]] bool closed() const { return transport_->closed(); }

  // Messages accepted by the transport but not yet handed to a receiver.
  // Maintained here (not read from a backend queue) with the same
  // charge-before-publish ordering as the conservation ledger, so at a
  // quiescent step boundary pending() over all endpoints equals the
  // ledger's in_flight count on every backend.
  [[nodiscard]] std::size_t pending() const;

  [[nodiscard]] std::size_t src_node() const { return src_; }
  [[nodiscard]] std::size_t dst_node() const { return dst_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_.load(); }
  [[nodiscard]] std::uint64_t messages_sent() const {
    return messages_sent_.load();
  }
  [[nodiscard]] TransportKind kind() const { return kind_; }
  [[nodiscard]] const char* backend_name() const { return transport_->name(); }

 private:
  // Frames `msg` and offers it to the transport, with the ledger charged
  // before the frame is published (see channel ordering contract).
  bool offer(const Message& msg, std::uint64_t size);

  TransportKind kind_;
  std::size_t src_, dst_;
  TrafficMeter* meter_;
  std::unique_ptr<Transport> transport_;
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> delivered_{0};
  // Atomic: detach (master thread, at shutdown) can race a worker's late
  // reply send. The lane id/direction are only written before the pointer
  // is published (release/acquire pairing in set_fault_injector / send).
  std::atomic<FaultInjector*> injector_{nullptr};
  std::size_t injector_link_ = 0;
  LinkDir injector_dir_ = LinkDir::kToWorker;
};

// The bidirectional master↔worker link: a pair of endpoints.
struct DuplexLink {
  explicit DuplexLink(TransportKind kind = TransportKind::kDefault,
                      std::size_t master_node = 0, std::size_t worker_node = 0,
                      TrafficMeter* meter = nullptr)
      : to_worker(kind, master_node, worker_node, meter),
        to_master(kind, worker_node, master_node, meter) {}

  Endpoint to_worker;
  Endpoint to_master;

  // Attaches `injector` (null detaches) to both directions under lane id
  // `link` (the worker index in the master's fleet).
  void set_fault_injector(FaultInjector* injector, std::size_t link) {
    to_worker.set_fault_injector(injector, link, LinkDir::kToWorker);
    to_master.set_fault_injector(injector, link, LinkDir::kToMaster);
  }

  void close() {
    to_worker.close();
    to_master.close();
  }
};

// Factories — how the runtimes (and tests that are not about the fabric
// itself) construct endpoints; `kind` may be kDefault to follow
// VELA_TRANSPORT.
[[nodiscard]] std::unique_ptr<Endpoint> make_endpoint(TransportKind kind,
                                                      std::size_t src_node,
                                                      std::size_t dst_node,
                                                      TrafficMeter* meter);
[[nodiscard]] std::unique_ptr<DuplexLink> make_duplex_link(
    TransportKind kind, std::size_t master_node, std::size_t worker_node,
    TrafficMeter* meter);

}  // namespace vela::comm
