// Wire messages of the master↔worker protocol (Fig. 4).
//
// A message either carries a real tensor payload (the runnable models — the
// bytes that cross the channel are the bytes that are counted) or a phantom
// payload (shape presets: only the byte count travels, so Mixtral-scale
// traffic can be accounted without allocating Mixtral-scale tensors).
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>

#include "tensor/tensor.h"

namespace vela::comm {

enum class MessageType : std::uint8_t {
  kExpertForward,         // master → worker: token block for one expert
  kExpertForwardResult,   // worker → master: expert output
  kExpertBackward,        // master → worker: output gradient for one request
  kExpertBackwardResult,  // worker → master: input gradient
  kOptimizerStep,         // master → worker: end of step, apply updates
  kOptimizerStepDone,     // worker → master: ack
  kFetchExpert,           // master → worker: detach expert, return its state
  kQueryExpert,           // master → worker: return state, keep hosting
  kExpertState,           // worker → master: serialized adapter state
  kInstallExpert,         // master → worker: host expert (payload = state)
  kInstallExpertDone,     // worker → master: ack
  kLoadExpertState,       // master → worker: overwrite a hosted expert's
                          //   adapters (payload = state; checkpoint restore)
  kLoadExpertStateDone,   // worker → master: ack
  kAllReduceChunk,        // EP peer → peer: ring all-reduce gradient chunk
  kShutdown,              // master → worker: terminate
  kProbe,                 // master → worker: liveness probe (heartbeat)
  kProbeAck,              // worker → master: probe ack
  kAbortStep,             // master → worker: discard tapes + gradients of the
                          //   in-flight step (mid-step failure recovery)
  kAbortStepDone,         // worker → master: ack
  kSnapshotExpert,        // master → worker: return full recovery state
                          //   (adapters + optimizer moments), keep hosting
  kExpertSnapshot,        // worker → master: packed full recovery state
  kRestoreExpert,         // master → worker: host expert, restoring full
                          //   recovery state (empty payload = fresh from seed)
  kRestoreExpertDone,     // worker → master: ack
  kCrash,                 // fault injection only: simulate an abrupt worker
                          //   process death (both channels die, state is lost)
  kStorePriorities,       // master → worker: locality scores for the expert
                          //   store's admission policy (payload = flattened
                          //   L×E matrix; layer/expert fields carry the dims)
  kStorePrioritiesDone,   // worker → master: ack
  kPrefetchExperts,       // master → worker: fire-and-forget dispatch hint —
                          //   page these experts in ahead of the forwards
                          //   queued behind the hint (payload = expert ids
                          //   for the layer field; never awaited, no reply)
};

const char* message_type_name(MessageType t);

// The largest q8 block length the wire tag byte can carry (see Message
// below): the u8 precision slot encodes q8 as 0x80|block.
constexpr bool qblock_detail_max_block_fits_tag() { return 64 < 0x80; }

struct Message {
  MessageType type = MessageType::kShutdown;
  std::uint64_t request_id = 0;  // pairs requests with their results
  std::uint32_t source = 0;      // sending process (EP peers route replies by it)
  std::uint32_t layer = 0;
  std::uint32_t expert = 0;
  std::uint32_t step = 0;
  Tensor payload;                   // empty for control / phantom messages
  std::uint64_t phantom_bytes = 0;  // payload size when no tensor is carried
  unsigned wire_bits = 32;          // transport precision of the payload
  // Quantized wire tier (DESIGN.md §13): when wire_bits == 8 the payload is
  // accounted as per-row block int8 — one int8 code per element plus one
  // fp32 scale per `q8_block` elements (32 or 64; blocks never span rows).
  // 0 everywhere else. On the accounted wire this rides the u8 precision
  // slot as tag 0x80|q8_block, so the 36-byte header is unchanged.
  std::uint8_t q8_block = 0;
  // Fragmentation of one logical transfer (the VELA_OVERLAP dispatch
  // pipeline): a payload split into `chunk_count` row chunks travels as
  // fragments that share one protocol header — fragment 0 carries it, the
  // continuations (chunk_index > 0) are header-free, exactly like the
  // fragments of a scatter-gather write. Fragments of a group carry
  // consecutive request ids (base = request_id - chunk_index), so receivers
  // can reassemble without extra header fields. Unfragmented messages keep
  // the defaults (0, 1).
  std::uint8_t chunk_index = 0;
  std::uint8_t chunk_count = 1;
  // Integrity check over header fields + payload. 0 means "not checksummed":
  // channels only stamp checksums when a FaultInjector is attached, so the
  // fault-free hot path pays nothing. The checksum models the CRC a real
  // transport carries inside its header — kHeaderBytes already budgets it.
  std::uint32_t checksum = 0;

  // Size of a protocol header on the wire (type, ids, shape descriptor, CRC).
  static constexpr std::uint64_t kHeaderBytes = 36;

  // Total bytes this message occupies on the wire. Continuation fragments
  // ride the logical transfer whose header fragment 0 already paid for, so
  // they cost their payload only — which is what makes the chunked dispatch
  // pipeline byte-identical to the unchunked exchange at any chunk count.
  [[nodiscard]] std::uint64_t wire_size() const {
    std::uint64_t body;
    if (payload.size() == 0) {
      body = phantom_bytes;
    } else if (wire_bits == 8) {
      // Per-row block int8: codes + one fp32 scale per block (qblock.h).
      // Rank >= 2 payloads tile along dim 0; a flat payload is one row.
      const std::uint64_t rows = payload.rank() >= 2 ? payload.dim(0) : 1;
      const std::uint64_t cols = payload.size() / rows;
      const std::uint64_t block = q8_block != 0 ? q8_block : 64;
      body = rows * cols + rows * ((cols + block - 1) / block) * 4;
    } else {
      body = payload.wire_bytes(wire_bits);
    }
    return (chunk_index > 0 ? 0 : kHeaderBytes) + body;
  }

  // FNV-1a over the routing header and payload bits.
  [[nodiscard]] std::uint32_t compute_checksum() const;
  void stamp_checksum() { checksum = compute_checksum(); }
  // True when unchecksummed or the checksum matches (receivers treat a
  // mismatch as in-flight corruption and drop the message).
  [[nodiscard]] bool checksum_ok() const {
    return checksum == 0 || checksum == compute_checksum();
  }

  std::string to_string() const;
};

// Wire-layout pins (DESIGN.md §9). The codec in serialize.cpp writes the
// header fields below at these exact widths; kHeaderBytes is what every
// ledger, clock and golden CSV in the tree is calibrated against. Narrowing,
// widening or retyping a header field must break the build here — not drift
// the protocol silently (the PR 3 chunk-field repurposing is the motivating
// precedent). Message itself is NOT trivially copyable (it owns a Tensor);
// only the header fields are raw scalars.
static_assert(std::is_trivially_copyable_v<MessageType> &&
                  sizeof(MessageType) == sizeof(std::uint8_t),
              "wire header: type travels as u8");
static_assert(std::is_same_v<decltype(Message::request_id), std::uint64_t>,
              "wire header: request_id travels as u64");
static_assert(std::is_same_v<decltype(Message::source), std::uint32_t> &&
                  std::is_same_v<decltype(Message::layer), std::uint32_t> &&
                  std::is_same_v<decltype(Message::expert), std::uint32_t> &&
                  std::is_same_v<decltype(Message::step), std::uint32_t>,
              "wire header: routing ids travel as u32");
static_assert(std::is_same_v<decltype(Message::chunk_index), std::uint8_t> &&
                  std::is_same_v<decltype(Message::chunk_count), std::uint8_t>,
              "wire header: fragment indices travel as u8 (receivers "
              "reassemble trains keyed on request_id - chunk_index)");
static_assert(std::is_same_v<decltype(Message::checksum), std::uint32_t>,
              "wire header: the CRC slot is u32 (budgeted in kHeaderBytes)");
static_assert(std::is_same_v<decltype(Message::q8_block), std::uint8_t> &&
                  qblock_detail_max_block_fits_tag(),
              "wire header: q8_block rides the u8 precision slot as "
              "0x80|block, so the block length must stay below 0x80");
static_assert(Message::kHeaderBytes ==
                  4 * sizeof(std::uint8_t) +    // type, wire_bits, chunk_*
                      2 * sizeof(std::uint64_t) +  // request_id, element count
                      4 * sizeof(std::uint32_t),   // source, layer, expert, step
              "wire header: kHeaderBytes must equal the serialized field sum");

}  // namespace vela::comm
