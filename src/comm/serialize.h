// Byte-level message codec.
//
// The in-process channels move Message objects directly, but the byte
// accounting must correspond to a real wire format — this codec defines it
// and the tests pin encode(msg).size() == msg.wire_size(). Payloads encode
// at the message's wire_bits: 32 → raw IEEE binary32, 16 → IEEE binary16
// (round-to-nearest-even — the paper's b = 16 feature transport), 8 → the
// quantized tier's per-row block int8 (DESIGN.md §13). Header layout
// (little-endian, 36 bytes):
//
//   u8 type | u8 precision | u8 chunk_index | u8 chunk_count |
//   u64 request_id | u32 source | u32 layer | u32 expert | u32 step |
//   u64 payload elements
//
// The precision slot carries wire_bits literally for 16/32; a q8 payload
// tags it as 0x80|block (block ∈ {32, 64}) and packs its row count into the
// upper half of the element-count slot as (rows << 32) | numel, so the
// header stays exactly 36 bytes. A q8 body is then, per row, per block:
//
//   f32 scale | i8 codes[block]          (last block of a row may be short)
//
// One caveat for fragmented transfers (chunk_count > 1): every physical
// fragment still encodes the full framing above, but wire_size() charges the
// protocol header once per *logical* transfer (fragment 0 only) — the
// continuations' framing stands in for the few flag bytes a real
// scatter-gather transport amortizes across a fragment train. The size pin
// therefore holds exactly for unfragmented messages and fragment 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "comm/message.h"

namespace vela::comm {

// Field-by-field mirror of the header layout documented above, pinned at
// compile time so the comment, the codec and the byte accounting cannot
// drift apart. encode() checks the running offset against these at runtime;
// the static_assert makes drift a build failure first.
namespace wire {
inline constexpr std::size_t kTypeBytes = sizeof(std::uint8_t);
inline constexpr std::size_t kWireBitsBytes = sizeof(std::uint8_t);
inline constexpr std::size_t kChunkIndexBytes = sizeof(std::uint8_t);
inline constexpr std::size_t kChunkCountBytes = sizeof(std::uint8_t);
inline constexpr std::size_t kRequestIdBytes = sizeof(std::uint64_t);
inline constexpr std::size_t kSourceBytes = sizeof(std::uint32_t);
inline constexpr std::size_t kLayerBytes = sizeof(std::uint32_t);
inline constexpr std::size_t kExpertBytes = sizeof(std::uint32_t);
inline constexpr std::size_t kStepBytes = sizeof(std::uint32_t);
inline constexpr std::size_t kElementCountBytes = sizeof(std::uint64_t);
}  // namespace wire

static_assert(wire::kTypeBytes + wire::kWireBitsBytes +
                      wire::kChunkIndexBytes + wire::kChunkCountBytes +
                      wire::kRequestIdBytes + wire::kSourceBytes +
                      wire::kLayerBytes + wire::kExpertBytes +
                      wire::kStepBytes + wire::kElementCountBytes ==
                  Message::kHeaderBytes,
              "wire header fields must sum to Message::kHeaderBytes");

// IEEE 754 binary16 conversion (round-to-nearest-even, overflow → ±inf).
std::uint16_t float_to_half(float value);
float half_to_float(std::uint16_t half);

// Encodes a message to its wire representation. Phantom messages (no
// payload, phantom_bytes set) are not encodable — they exist only for
// accounting — and are rejected.
std::vector<std::uint8_t> encode(const Message& msg);

// Decodes a wire buffer back into a Message. The payload comes back as a
// rank-1 tensor of the transported element count (shape metadata beyond the
// element count is not carried — receivers know the expected shape from the
// protocol state, mirroring how the runtime uses it); a q8 payload comes
// back rank-2 [rows, cols], already dequantized. Throws on malformed input.
Message decode(const std::vector<std::uint8_t>& bytes);

}  // namespace vela::comm
