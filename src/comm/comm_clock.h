// Analytic step-time model (the Fig. 6 clock).
//
// Wall-clock on a CPU dev box says nothing about a 6×V100 cluster, so step
// time is computed from *measured byte counts* plus the topology's bandwidth
// and latency constants — exactly the quantity the paper's Eqs. (5)–(7)
// model, extended with the two effects §V-B identifies as decisive:
//
//   * VELA's master–worker exchange per MoE block completes when the slowest
//     worker finishes (max over workers, Eq. (7)); blocks are serialized by
//     the model's layer order, for both forward and backward;
//   * conventional EP inserts a status-synchronization round before every
//     all-to-all (devices must learn how many tokens to expect) and ends the
//     step with a gradient all-reduce for the replicated backbone.
//
// Compute time is charged identically to every system (same model, same
// FLOPs — the paper's systems differ only in communication).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/topology.h"

namespace vela::comm {

// One synchronization phase of a VELA step: the master exchanges token
// blocks (or gradients) with workers for one MoE block, then waits for all
// of them. A full step has 2·L phases (forward + backward).
struct MasterWorkerPhase {
  std::vector<std::uint64_t> bytes;     // [N] master↔worker n, both directions
  std::vector<std::uint32_t> messages;  // [N] message count (latency term)
};

struct VelaStepRecord {
  std::vector<MasterWorkerPhase> phases;
};

// One all-to-all phase of an EP step: bytes[i][j] flows device i → device j.
struct AllToAllPhase {
  std::vector<std::vector<std::uint64_t>> bytes;  // [N][N]
};

struct EpStepRecord {
  std::vector<AllToAllPhase> phases;
  // Backbone (LoRA) gradient all-reduce at the end of the step, per device.
  std::uint64_t allreduce_bytes_per_device = 0;
};

struct CommClockConfig {
  // Forward+backward compute per step, identical across systems. Calibrated
  // to a V100-class device on the Mixtral workload in the Fig. 6 bench.
  double compute_seconds = 1.0;
  // EP status-synchronization cost per all-to-all phase (count exchange +
  // barrier straggling) on top of the latency terms. A TCP all-gather of
  // token counts plus a barrier across 6 ranks costs single-digit
  // milliseconds; 5 ms reproduces the paper's observation that EP is the
  // slowest system even when its byte volume matches the baselines.
  double ep_sync_seconds_per_phase = 5e-3;
};

class CommClock {
 public:
  CommClock(const cluster::ClusterTopology* topology, CommClockConfig cfg);

  // Communication-only durations.
  double vela_comm_seconds(const VelaStepRecord& record) const;
  double ep_comm_seconds(const EpStepRecord& record) const;

  // Full step durations (comm + compute).
  double vela_step_seconds(const VelaStepRecord& record) const;
  double ep_step_seconds(const EpStepRecord& record) const;

  // Overlap-aware step model (Eqs. (5)–(7) generalized; DESIGN.md §8): each
  // of the P phases splits its exchange into `chunks` micro-chunks pipelined
  // against the phase's compute slice (compute_seconds / P), so the phase
  // completes on the critical path of the chunk pipeline,
  //
  //   T_p = max_w [ (t_w + c)/K + (K−1)/K · max(t_w, c) ],
  //
  // with t_w the worker's full-phase transfer time under the same calibrated
  // bandwidths (byte counts are invariant in K) and c the compute slice.
  // chunks <= 1 is exactly the sequential model (vela_step_seconds). The EP
  // models above are untouched: the all-to-all's status-synchronization and
  // all-reduce terms do not pipeline.
  double vela_overlap_step_seconds(const VelaStepRecord& record,
                                   std::size_t chunks) const;
  // The step's non-hidden communication: overlap step time minus compute.
  double vela_overlap_comm_seconds(const VelaStepRecord& record,
                                   std::size_t chunks) const;

  const CommClockConfig& config() const { return cfg_; }

 private:
  const cluster::ClusterTopology* topology_;
  CommClockConfig cfg_;
};

}  // namespace vela::comm
