#include "comm/frame.h"

#include <cstring>

#include "tensor/qblock.h"
#include "util/check.h"

namespace vela::comm {
namespace {

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "frame fields must be raw fixed-layout scalars");
  static_assert(sizeof(T) <= sizeof(std::uint64_t),
                "frame fields are at most 8 bytes");
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

// Bounds-checked read that reports malformed input through a flag instead of
// throwing: decode_frame must reject bad frames gracefully (the tests feed
// it truncated and bit-flipped buffers on purpose).
template <typename T>
bool read_pod(const std::uint8_t* data, std::size_t size, std::size_t& offset,
              T* out) {
  static_assert(std::is_trivially_copyable_v<T>,
                "frame fields must be raw fixed-layout scalars");
  static_assert(sizeof(T) <= sizeof(std::uint64_t),
                "frame fields are at most 8 bytes");
  if (offset + sizeof(T) > size) return false;
  std::memcpy(out, data + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

bool fail(std::string* error, const char* why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

std::uint32_t frame_crc(const std::uint8_t* data, std::size_t size) {
  // FNV-1a, the same construction Message::compute_checksum uses — cheap and
  // bit-stable across platforms.
  std::uint32_t hash = 2166136261u;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 16777619u;
  }
  return hash;
}

std::vector<std::uint8_t> encode_frame(const Message& msg) {
  VELA_CHECK_MSG(msg.wire_bits <= 0xFF,
                 "wire_bits must fit the frame's u8 slot");
  // The frame carries payload floats losslessly at any wire precision (the
  // quantization, if any, already happened at the sender); only the
  // accounting tag differs. q8 rides the u8 precision slot as 0x80|block,
  // exactly like the accounted codec in serialize.cpp.
  const bool q8 = msg.wire_bits == 8;
  if (q8) {
    VELA_CHECK_MSG(qblock::valid_block(msg.q8_block),
                   "q8 message without a valid block length");
  }
  const std::uint8_t precision_slot =
      q8 ? static_cast<std::uint8_t>(0x80u | msg.q8_block)
         : static_cast<std::uint8_t>(msg.wire_bits);
  std::vector<std::uint8_t> body;
  const std::size_t numel = msg.payload.size();
  body.reserve(Message::kHeaderBytes + 2 * sizeof(std::uint64_t) +
               sizeof(std::uint32_t) +
               msg.payload.rank() * sizeof(std::uint64_t) +
               numel * sizeof(float));
  append_pod(body, static_cast<std::uint8_t>(msg.type));
  append_pod(body, precision_slot);
  append_pod(body, msg.chunk_index);
  append_pod(body, msg.chunk_count);
  append_pod(body, msg.request_id);
  append_pod(body, msg.source);
  append_pod(body, msg.layer);
  append_pod(body, msg.expert);
  append_pod(body, msg.step);
  append_pod(body, msg.checksum);
  append_pod(body, msg.phantom_bytes);
  append_pod(body, static_cast<std::uint32_t>(msg.payload.rank()));
  for (std::size_t d = 0; d < msg.payload.rank(); ++d) {
    append_pod(body, static_cast<std::uint64_t>(msg.payload.dim(d)));
  }
  for (std::size_t i = 0; i < numel; ++i) {
    append_pod(body, msg.payload[i]);
  }
  VELA_CHECK_MSG(body.size() <= kMaxFrameBodyBytes,
                 "message too large for one frame");

  std::vector<std::uint8_t> frame;
  frame.reserve(body.size() + kFrameOverheadBytes);
  append_pod(frame, static_cast<std::uint32_t>(body.size()));
  frame.insert(frame.end(), body.begin(), body.end());
  append_pod(frame, frame_crc(body.data(), body.size()));
  return frame;
}

bool decode_frame(const std::vector<std::uint8_t>& frame, Message* out,
                  std::string* error) {
  VELA_CHECK(out != nullptr);
  if (frame.size() < kFrameOverheadBytes) {
    return fail(error, "frame shorter than its framing overhead");
  }
  std::size_t offset = 0;
  const std::uint8_t* data = frame.data();
  std::uint32_t body_len = 0;
  if (!read_pod(data, frame.size(), offset, &body_len)) {
    return fail(error, "truncated length prefix");
  }
  if (body_len > kMaxFrameBodyBytes) {
    return fail(error, "length prefix exceeds the frame body limit");
  }
  if (frame.size() != kFrameOverheadBytes + body_len) {
    return fail(error, "length prefix disagrees with the buffer size");
  }
  const std::uint8_t* body = data + sizeof(std::uint32_t);
  std::uint32_t crc = 0;
  std::size_t crc_offset = sizeof(std::uint32_t) + body_len;
  if (!read_pod(data, frame.size(), crc_offset, &crc)) {
    return fail(error, "truncated frame CRC");
  }
  if (crc != frame_crc(body, body_len)) {
    return fail(error, "frame CRC mismatch");
  }

  Message msg;
  offset = 0;
  std::uint8_t type = 0, wire_bits = 0;
  bool ok = read_pod(body, body_len, offset, &type) &&
            read_pod(body, body_len, offset, &wire_bits) &&
            read_pod(body, body_len, offset, &msg.chunk_index) &&
            read_pod(body, body_len, offset, &msg.chunk_count) &&
            read_pod(body, body_len, offset, &msg.request_id) &&
            read_pod(body, body_len, offset, &msg.source) &&
            read_pod(body, body_len, offset, &msg.layer) &&
            read_pod(body, body_len, offset, &msg.expert) &&
            read_pod(body, body_len, offset, &msg.step) &&
            read_pod(body, body_len, offset, &msg.checksum) &&
            read_pod(body, body_len, offset, &msg.phantom_bytes);
  std::uint32_t rank = 0;
  ok = ok && read_pod(body, body_len, offset, &rank);
  if (!ok) return fail(error, "truncated frame body header");
  msg.type = static_cast<MessageType>(type);
  if (wire_bits & 0x80u) {
    const std::uint8_t block = wire_bits & 0x7Fu;
    if (!qblock::valid_block(block)) {
      return fail(error, "bad q8 block tag in frame header");
    }
    msg.wire_bits = 8;
    msg.q8_block = block;
  } else {
    msg.wire_bits = wire_bits;
  }

  std::vector<std::size_t> shape;
  shape.reserve(rank);
  std::size_t numel = rank > 0 ? 1 : 0;
  for (std::uint32_t d = 0; d < rank; ++d) {
    std::uint64_t dim = 0;
    if (!read_pod(body, body_len, offset, &dim)) {
      return fail(error, "truncated shape descriptor");
    }
    if (dim == 0 || dim > kMaxFrameBodyBytes) {
      return fail(error, "implausible tensor dimension");
    }
    shape.push_back(static_cast<std::size_t>(dim));
    numel *= static_cast<std::size_t>(dim);
    if (numel > kMaxFrameBodyBytes) {
      return fail(error, "shape volume exceeds the frame body limit");
    }
  }
  if (numel * sizeof(float) > body_len) {
    return fail(error, "shape volume exceeds the frame body");
  }
  if (numel > 0) {
    std::vector<float> values(numel);
    for (std::size_t i = 0; i < numel; ++i) {
      if (!read_pod(body, body_len, offset, &values[i])) {
        return fail(error, "truncated payload data");
      }
    }
    msg.payload = Tensor(std::move(shape), std::move(values));
  }
  if (offset != body_len) return fail(error, "trailing bytes in frame body");
  *out = std::move(msg);
  return true;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

bool FrameDecoder::next(std::vector<std::uint8_t>* frame) {
  VELA_CHECK(frame != nullptr);
  if (buffer_.size() < sizeof(std::uint32_t)) return false;
  std::uint32_t body_len = 0;
  std::memcpy(&body_len, buffer_.data(), sizeof(std::uint32_t));
  // A byte stream cannot resynchronize after a corrupt length prefix: every
  // later "frame" would start at a garbage offset. Fail loudly instead of
  // delivering noise.
  VELA_CHECK_MSG(body_len <= kMaxFrameBodyBytes,
                 "frame stream corrupt: oversize length prefix");
  const std::size_t total = kFrameOverheadBytes + body_len;
  if (buffer_.size() < total) return false;
  frame->assign(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  return true;
}

}  // namespace vela::comm
