#include "comm/phase_ledger.h"

#include "util/check.h"

namespace vela::comm {

PhaseLedger::PhaseLedger(std::size_t num_layers, std::size_t rows,
                         std::size_t cols)
    : num_layers_(num_layers), rows_(rows), cols_(cols) {
  VELA_CHECK(num_layers_ > 0 && rows_ > 0 && cols_ > 0);
  reset();
}

void PhaseLedger::charge(std::size_t layer, bool backward_phase,
                         std::size_t row, std::size_t col, std::uint64_t bytes,
                         std::uint32_t messages) {
  VELA_CHECK(layer < num_layers_ && row < rows_ && col < cols_);
  Cells& cells = backward_phase ? bwd_[layer] : fwd_[layer];
  cells.bytes[row][col] += bytes;
  cells.messages[row][col] += messages;
}

void PhaseLedger::reset() {
  const Cells zero{
      std::vector<std::vector<std::uint64_t>>(
          rows_, std::vector<std::uint64_t>(cols_, 0)),
      std::vector<std::vector<std::uint32_t>>(
          rows_, std::vector<std::uint32_t>(cols_, 0))};
  fwd_.assign(num_layers_, zero);
  bwd_.assign(num_layers_, zero);
}

VelaStepRecord PhaseLedger::take_vela() {
  VELA_CHECK_MSG(rows_ == 1,
                 "VelaStepRecord has one master row; this ledger has more");
  VelaStepRecord record;
  record.phases.reserve(2 * num_layers_);
  const auto lane_phase = [](const Cells& cells) {
    return MasterWorkerPhase{cells.bytes[0], cells.messages[0]};
  };
  for (std::size_t l = 0; l < num_layers_; ++l) {
    record.phases.push_back(lane_phase(fwd_[l]));
  }
  for (std::size_t l = num_layers_; l-- > 0;) {
    record.phases.push_back(lane_phase(bwd_[l]));
  }
  reset();
  return record;
}

EpStepRecord PhaseLedger::take_ep() {
  EpStepRecord record;
  record.phases.reserve(2 * num_layers_);
  for (std::size_t l = 0; l < num_layers_; ++l) {
    record.phases.push_back(AllToAllPhase{fwd_[l].bytes});
  }
  for (std::size_t l = num_layers_; l-- > 0;) {
    record.phases.push_back(AllToAllPhase{bwd_[l].bytes});
  }
  reset();
  return record;
}

}  // namespace vela::comm
