#include "comm/comm_clock.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace vela::comm {

CommClock::CommClock(const cluster::ClusterTopology* topology,
                     CommClockConfig cfg)
    : topology_(topology), cfg_(cfg) {
  VELA_CHECK(topology != nullptr);
}

double CommClock::vela_comm_seconds(const VelaStepRecord& record) const {
  const std::size_t n = topology_->num_workers();
  double total = 0.0;
  for (const auto& phase : record.phases) {
    VELA_CHECK(phase.bytes.size() == n && phase.messages.size() == n);
    // Eq. (7): the master waits for the slowest worker of the phase. The
    // one-to-all pattern needs no status synchronization — the master
    // initiates every transfer directly (§V-B).
    double slowest = 0.0;
    for (std::size_t w = 0; w < n; ++w) {
      const double t =
          static_cast<double>(phase.bytes[w]) / topology_->worker_bandwidth(w) +
          static_cast<double>(phase.messages[w]) * topology_->worker_latency(w);
      slowest = std::max(slowest, t);
    }
    total += slowest;
  }
  return total;
}

double CommClock::ep_comm_seconds(const EpStepRecord& record) const {
  const std::size_t n = topology_->num_devices();
  double total = 0.0;
  for (const auto& phase : record.phases) {
    VELA_CHECK(phase.bytes.size() == n);
    // All-to-all: each device serializes its sends on its NIC; the phase
    // ends when the busiest device finishes sending and receiving.
    double slowest = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      VELA_CHECK(phase.bytes[i].size() == n);
      double send_time = 0.0, recv_time = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        if (phase.bytes[i][j] > 0) {
          send_time += static_cast<double>(phase.bytes[i][j]) /
                           topology_->device_bandwidth(i, j) +
                       topology_->device_latency(i, j);
        }
        if (phase.bytes[j][i] > 0) {
          recv_time += static_cast<double>(phase.bytes[j][i]) /
                       topology_->device_bandwidth(j, i);
        }
      }
      slowest = std::max(slowest, std::max(send_time, recv_time));
    }
    // Status synchronization before the transfer: devices exchange token
    // counts and barrier (the interruption §V-B describes).
    const double sync =
        cfg_.ep_sync_seconds_per_phase +
        2.0 * topology_->config().cross_node_latency_s *
            std::ceil(std::log2(static_cast<double>(std::max<std::size_t>(n, 2))));
    total += slowest + sync;
  }
  // Ring all-reduce of the replicated backbone's trainable gradients: each
  // device sends 2·(N−1)/N of the buffer; the ring is throttled by the
  // slowest (cross-node) hop.
  if (record.allreduce_bytes_per_device > 0) {
    const double ring_bytes = 2.0 *
                              static_cast<double>(n - 1) /
                              static_cast<double>(n) *
                              static_cast<double>(record.allreduce_bytes_per_device);
    total += ring_bytes /
             (topology_->config().cross_node_gbps * 1e9);
  }
  return total;
}

double CommClock::vela_step_seconds(const VelaStepRecord& record) const {
  return cfg_.compute_seconds + vela_comm_seconds(record);
}

double CommClock::vela_overlap_step_seconds(const VelaStepRecord& record,
                                            std::size_t chunks) const {
  // K <= 1 is the sequential schedule; return it through the sequential
  // model so the two paths are bit-identical, not merely algebraically equal
  // (the pipeline formula below sums in a different order).
  if (chunks <= 1) return vela_step_seconds(record);
  const std::size_t n = topology_->num_workers();
  const std::size_t phases = record.phases.size();
  if (phases == 0) return cfg_.compute_seconds;
  const double k = static_cast<double>(chunks);
  // The phase's share of the step's (system-independent) compute: with
  // micro-chunked dispatch the worker computes chunk i while chunk i+1 is in
  // flight, so each phase hides its transfers under its own expert compute.
  const double c = cfg_.compute_seconds / static_cast<double>(phases);
  double total = 0.0;
  for (const auto& phase : record.phases) {
    VELA_CHECK(phase.bytes.size() == n && phase.messages.size() == n);
    double slowest = 0.0;
    for (std::size_t w = 0; w < n; ++w) {
      const double t =
          static_cast<double>(phase.bytes[w]) / topology_->worker_bandwidth(w) +
          static_cast<double>(phase.messages[w]) * topology_->worker_latency(w);
      // Two-stage pipeline over K chunks: fill with the first chunk's
      // transfer+compute, then K−1 beats of the slower stage.
      const double piped = (t + c) / k + (k - 1.0) / k * std::max(t, c);
      slowest = std::max(slowest, piped);
    }
    total += slowest;
  }
  return total;
}

double CommClock::vela_overlap_comm_seconds(const VelaStepRecord& record,
                                            std::size_t chunks) const {
  if (chunks <= 1) return vela_comm_seconds(record);
  return vela_overlap_step_seconds(record, chunks) - cfg_.compute_seconds;
}

double CommClock::ep_step_seconds(const EpStepRecord& record) const {
  return cfg_.compute_seconds + ep_comm_seconds(record);
}

}  // namespace vela::comm
