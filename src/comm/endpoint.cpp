#include "comm/endpoint.h"

#include <unistd.h>

#include "comm/frame.h"
#include "comm/peer_listener.h"
#include "comm/remote_transport.h"
#include "util/audit.h"
#include "util/check.h"

namespace vela::comm {
namespace {

// Feeds the VELA_AUDIT byte-conservation ledger from the endpoint boundary.
// Every disposition a message can take (accepted by the transport, dropped
// by a fault, rejected by a closed transport, handed to a receiver) reports
// here, so a new code path that forgets one trips the step-end conservation
// check — on every backend, because no charge lives below this layer.
//
// Ordering contract: the posted+enqueued charge happens BEFORE the transport
// send publishes the frame. Once a receiver can observe the message its
// accounting is complete — otherwise a sender preempted between publish and
// charge would make a concurrent step-end check see delivered bytes that
// were never enqueued. A send that then loses the race with close() converts
// its optimistic charge into a drop.
void ledger_posted_enqueued(std::uint64_t bytes) {
  if (audit::enabled())
    audit::ConservationLedger::instance().on_posted_enqueued(bytes);
}
void ledger_posted_dropped(std::uint64_t bytes) {
  if (audit::enabled())
    audit::ConservationLedger::instance().on_posted_dropped(bytes);
}
void ledger_enqueue_rejected(std::uint64_t bytes) {
  if (audit::enabled())
    audit::ConservationLedger::instance().on_enqueue_rejected(bytes);
}
void ledger_received(std::uint64_t bytes) {
  if (audit::enabled())
    audit::ConservationLedger::instance().on_received(bytes);
}

}  // namespace

Endpoint::Endpoint(TransportKind kind, std::size_t src_node,
                   std::size_t dst_node, TrafficMeter* meter)
    : kind_(resolve_transport(kind)),
      src_(src_node),
      dst_(dst_node),
      meter_(meter),
      transport_(make_transport(kind_)) {}

Endpoint::Endpoint(std::unique_ptr<Transport> transport, RemoteRole role,
                   std::size_t src_node, std::size_t dst_node,
                   TrafficMeter* meter)
    : kind_(TransportKind::kSocket),
      role_(role),
      src_(src_node),
      dst_(dst_node),
      meter_(meter),
      transport_(std::move(transport)) {
  VELA_CHECK_MSG(role_ != RemoteRole::kNone,
                 "pre-built-transport endpoints are cross-process lanes; "
                 "use the TransportKind constructor for local ones");
  VELA_CHECK(transport_ != nullptr);
}

bool Endpoint::offer(const Message& msg, std::uint64_t size) {
  // `size` IS msg.wire_size(): send() computes it once and meters before
  // calling offer(), so charging again here would double-count the ledger.
  std::vector<std::uint8_t> frame = encode_frame(msg);  // vela-analyze: allow(uncharged-send)
  // pending() mirrors the ledger: count the message before the transport
  // publishes it, take the count back if the transport turned it away.
  accepted_.fetch_add(1, std::memory_order_relaxed);
  ledger_posted_enqueued(size);
  if (!transport_->send(std::move(frame))) {
    accepted_.fetch_sub(1, std::memory_order_relaxed);
    ledger_enqueue_rejected(size);
    return false;
  }
  if (role_ == RemoteRole::kEgress) {
    // The matching delivery happens in another process whose ledger never
    // saw this post: settle it here so this process balances by itself
    // (and pending() stays zero — nothing local will ever dequeue it).
    delivered_.fetch_add(1, std::memory_order_relaxed);
    ledger_received(size);
  }
  return true;
}

bool Endpoint::send(Message msg) {
  FaultKind fault = FaultKind::kNone;
  if (FaultInjector* injector = injector_.load(std::memory_order_acquire);
      injector != nullptr) {
    // Stamp before the injector mutates: a corrupted payload then fails
    // verification at the receiver, exactly like a real CRC. The stamped
    // checksum travels inside the frame body, so the socket backend carries
    // the corruption end to end just like the in-proc queue.
    msg.stamp_checksum();
    fault = injector->on_send(injector_link_, injector_dir_, msg);
  }
  const std::uint64_t size = msg.wire_size();
  // Account BEFORE publishing: once the receiver can observe the message,
  // its bytes must already be visible in the meter — otherwise a reader that
  // synchronizes on the reply could see a stale count (a real race caught by
  // the byte-equivalence tests). A send that loses the race with close()
  // slightly overcounts, which only happens during shutdown. Dropped and
  // corrupted messages still left the sender's NIC, so their bytes count;
  // a duplicate is two transmissions and counts twice.
  const std::uint64_t transmissions = fault == FaultKind::kDuplicate ? 2 : 1;
  bytes_sent_.fetch_add(size * transmissions, std::memory_order_relaxed);
  messages_sent_.fetch_add(transmissions, std::memory_order_relaxed);
  if (meter_ != nullptr) {
    for (std::uint64_t i = 0; i < transmissions; ++i) {
      meter_->record(src_, dst_, size);
    }
  }
  switch (fault) {
    case FaultKind::kDrop:
      ledger_posted_dropped(size);
      return true;  // transmitted, never delivered
    case FaultKind::kSever:
      ledger_posted_dropped(size);
      transport_->close();
      return false;
    case FaultKind::kDuplicate: {
      const bool first = offer(msg, size);
      const bool second = offer(msg, size);
      return first && second;
    }
    default:
      return offer(msg, size);
  }
}

void Endpoint::account_received(std::uint64_t size) {
  if (role_ == RemoteRole::kIngress) {
    // The sender lives in another process: these bytes enter this node
    // here, so the meter and the ledger's posted half are charged at
    // receive (paired with the received half just below — in_flight never
    // rises, matching the egress side's settle-at-send).
    accepted_.fetch_add(1, std::memory_order_relaxed);
    ledger_posted_enqueued(size);
    if (meter_ != nullptr) meter_->record(src_, dst_, size);
  }
  bytes_received_.fetch_add(size, std::memory_order_relaxed);
  messages_received_.fetch_add(1, std::memory_order_relaxed);
  delivered_.fetch_add(1, std::memory_order_relaxed);
  ledger_received(size);
}

std::optional<Message> Endpoint::receive() {
  std::optional<std::vector<std::uint8_t>> frame = transport_->receive();
  if (!frame.has_value()) return std::nullopt;
  Message msg;
  std::string error;
  VELA_CHECK_MSG(decode_frame(*frame, &msg, &error),
                 "transport delivered an undecodable frame: " + error);
  account_received(msg.wire_size());
  return msg;
}

std::optional<Message> Endpoint::try_receive() {
  std::optional<std::vector<std::uint8_t>> frame = transport_->try_receive();
  if (!frame.has_value()) return std::nullopt;
  Message msg;
  std::string error;
  VELA_CHECK_MSG(decode_frame(*frame, &msg, &error),
                 "transport delivered an undecodable frame: " + error);
  account_received(msg.wire_size());
  return msg;
}

PopStatus Endpoint::receive_for(std::chrono::milliseconds timeout,
                                Message* out) {
  std::vector<std::uint8_t> frame;
  const PopStatus status = transport_->receive_for(timeout, &frame);
  if (status != PopStatus::kOk) return status;
  std::string error;
  VELA_CHECK_MSG(decode_frame(frame, out, &error),
                 "transport delivered an undecodable frame: " + error);
  account_received(out->wire_size());
  return status;
}

void Endpoint::set_fault_injector(FaultInjector* injector, std::size_t link,
                                  LinkDir dir) {
  // Lane id/direction first, pointer last: a sender that wins the acquire
  // load must see a fully-described lane.
  injector_link_ = link;
  injector_dir_ = dir;
  injector_.store(injector, std::memory_order_release);
  // Connection-level faults live below the frame layer: hand the script
  // straight to the transport (nullptr clears any previous script).
  transport_->set_connection_script(
      injector != nullptr ? injector->connection_script(link, dir) : nullptr);
}

void Endpoint::close() { transport_->close(); }

std::size_t Endpoint::pending() const {
  const std::uint64_t accepted = accepted_.load(std::memory_order_relaxed);
  const std::uint64_t delivered = delivered_.load(std::memory_order_relaxed);
  return accepted > delivered ? static_cast<std::size_t>(accepted - delivered)
                              : 0;
}

std::unique_ptr<Endpoint> make_endpoint(TransportKind kind,
                                        std::size_t src_node,
                                        std::size_t dst_node,
                                        TrafficMeter* meter) {
  return std::make_unique<Endpoint>(kind, src_node, dst_node, meter);
}

std::unique_ptr<DuplexLink> make_duplex_link(TransportKind kind,
                                             std::size_t master_node,
                                             std::size_t worker_node,
                                             TrafficMeter* meter) {
  return std::make_unique<DuplexLink>(kind, master_node, worker_node, meter);
}

std::unique_ptr<DuplexLink> make_master_remote_link(
    PeerListener& listener, std::uint32_t rank,
    std::uint64_t expected_capacity, std::size_t master_node,
    std::size_t worker_node, TrafficMeter* meter,
    std::chrono::milliseconds accept_timeout, ReconnectPolicy policy,
    util::Clock* clock) {
  AcceptedPeer down =
      listener.take_peer(rank, session::kLaneToWorker, accept_timeout);
  if (!down.valid()) return nullptr;
  AcceptedPeer up =
      listener.take_peer(rank, session::kLaneToMaster, accept_timeout);
  if (!up.valid()) {
    ::close(down.fd);
    return nullptr;
  }
  // The two lanes must come from the same process instance and agree on
  // what the worker hosts; a mismatch is a launcher/scenario bug.
  VELA_CHECK_MSG(down.id.session_id == up.id.session_id,
                 "worker " << rank << " identified two different sessions");
  VELA_CHECK_MSG(down.id.capacity == expected_capacity &&
                     up.id.capacity == expected_capacity,
                 "worker " << rank << " announced capacity "
                           << down.id.capacity << ", expected "
                           << expected_capacity);
  auto to_worker = RemoteSocketTransport::adopt(
      std::move(down), RemoteSocketTransport::Role::kSender, &listener, clock,
      policy);
  auto to_master = RemoteSocketTransport::adopt(
      std::move(up), RemoteSocketTransport::Role::kReceiver, &listener, clock,
      policy);
  return std::make_unique<DuplexLink>(
      std::move(to_worker), RemoteRole::kEgress, std::move(to_master),
      RemoteRole::kIngress, master_node, worker_node, meter);
}

std::unique_ptr<DuplexLink> make_worker_remote_link(
    std::uint16_t port, std::uint32_t rank, std::uint64_t capacity,
    std::uint64_t session_id, std::size_t master_node,
    std::size_t worker_node, ReconnectPolicy policy, util::Clock* clock) {
  session::PeerIdentity id;
  id.rank = rank;
  id.capacity = capacity;
  id.session_id = session_id;
  id.lane = session::kLaneToWorker;
  auto to_worker = RemoteSocketTransport::dial(
      port, RemoteSocketTransport::Role::kReceiver, id, clock, policy);
  id.lane = session::kLaneToMaster;
  auto to_master = RemoteSocketTransport::dial(
      port, RemoteSocketTransport::Role::kSender, id, clock, policy);
  // The worker's receive half of the to_worker lane and send half of the
  // to_master lane; un-metered (attribution lives at the master).
  return std::make_unique<DuplexLink>(
      std::move(to_worker), RemoteRole::kIngress, std::move(to_master),
      RemoteRole::kEgress, master_node, worker_node, /*meter=*/nullptr);
}

}  // namespace vela::comm
