#include "comm/channel.h"

namespace vela::comm {

Channel::Channel(std::size_t src_node, std::size_t dst_node,
                 TrafficMeter* meter)
    : src_(src_node), dst_(dst_node), meter_(meter) {}

bool Channel::send(Message msg) {
  FaultKind fault = FaultKind::kNone;
  if (injector_ != nullptr) {
    // Stamp before the injector mutates: a corrupted payload then fails
    // verification at the receiver, exactly like a real CRC.
    msg.stamp_checksum();
    fault = injector_->on_send(injector_link_, injector_dir_, msg);
  }
  const std::uint64_t size = msg.wire_size();
  // Account BEFORE publishing: once the receiver can observe the message,
  // its bytes must already be visible in the meter — otherwise a reader that
  // synchronizes on the reply could see a stale count (a real race caught by
  // the byte-equivalence tests). A send that loses the race with close()
  // slightly overcounts, which only happens during shutdown. Dropped and
  // corrupted messages still left the sender's NIC, so their bytes count;
  // a duplicate is two transmissions and counts twice.
  const std::uint64_t transmissions = fault == FaultKind::kDuplicate ? 2 : 1;
  bytes_sent_.fetch_add(size * transmissions, std::memory_order_relaxed);
  messages_sent_.fetch_add(transmissions, std::memory_order_relaxed);
  if (meter_ != nullptr) {
    for (std::uint64_t i = 0; i < transmissions; ++i) {
      meter_->record(src_, dst_, size);
    }
  }
  switch (fault) {
    case FaultKind::kDrop:
      return true;  // transmitted, never delivered
    case FaultKind::kSever:
      queue_.close();
      return false;
    case FaultKind::kDuplicate: {
      Message copy = msg;
      queue_.push(std::move(copy));
      return queue_.push(std::move(msg));
    }
    default:
      return queue_.push(std::move(msg));
  }
}

std::optional<Message> Channel::receive() { return queue_.pop(); }

std::optional<Message> Channel::try_receive() { return queue_.try_pop(); }

PopStatus Channel::receive_for(std::chrono::milliseconds timeout,
                               Message* out) {
  return queue_.pop_for(timeout, out);
}

void Channel::set_fault_injector(FaultInjector* injector, std::size_t link,
                                 LinkDir dir) {
  injector_ = injector;
  injector_link_ = link;
  injector_dir_ = dir;
}

void Channel::close() { queue_.close(); }

}  // namespace vela::comm
