#include "comm/channel.h"

#include "util/audit.h"

namespace vela::comm {
namespace {

// Feeds the VELA_AUDIT byte-conservation ledger from the channel boundary.
// Every disposition a message can take (enqueued, dropped by a fault,
// rejected by a closed queue, handed to a receiver) reports here, so a new
// code path that forgets one trips the step-end conservation check.
//
// Ordering contract: the posted+enqueued charge happens BEFORE the queue
// push publishes the message. Once a receiver can observe the message its
// accounting is complete — otherwise a sender preempted between push and
// charge would make a concurrent step-end check see delivered bytes that
// were never enqueued. A push that then loses the race with close() converts
// its optimistic charge into a drop.
void ledger_posted_enqueued(std::uint64_t bytes) {
  if (audit::enabled())
    audit::ConservationLedger::instance().on_posted_enqueued(bytes);
}
void ledger_posted_dropped(std::uint64_t bytes) {
  if (audit::enabled())
    audit::ConservationLedger::instance().on_posted_dropped(bytes);
}
void ledger_enqueue_rejected(std::uint64_t bytes) {
  if (audit::enabled())
    audit::ConservationLedger::instance().on_enqueue_rejected(bytes);
}
void ledger_received(std::uint64_t bytes) {
  if (audit::enabled())
    audit::ConservationLedger::instance().on_received(bytes);
}

}  // namespace

Channel::Channel(std::size_t src_node, std::size_t dst_node,
                 TrafficMeter* meter)
    : src_(src_node), dst_(dst_node), meter_(meter) {}

bool Channel::send(Message msg) {
  FaultKind fault = FaultKind::kNone;
  if (injector_ != nullptr) {
    // Stamp before the injector mutates: a corrupted payload then fails
    // verification at the receiver, exactly like a real CRC.
    msg.stamp_checksum();
    fault = injector_->on_send(injector_link_, injector_dir_, msg);
  }
  const std::uint64_t size = msg.wire_size();
  // Account BEFORE publishing: once the receiver can observe the message,
  // its bytes must already be visible in the meter — otherwise a reader that
  // synchronizes on the reply could see a stale count (a real race caught by
  // the byte-equivalence tests). A send that loses the race with close()
  // slightly overcounts, which only happens during shutdown. Dropped and
  // corrupted messages still left the sender's NIC, so their bytes count;
  // a duplicate is two transmissions and counts twice.
  const std::uint64_t transmissions = fault == FaultKind::kDuplicate ? 2 : 1;
  bytes_sent_.fetch_add(size * transmissions, std::memory_order_relaxed);
  messages_sent_.fetch_add(transmissions, std::memory_order_relaxed);
  if (meter_ != nullptr) {
    for (std::uint64_t i = 0; i < transmissions; ++i) {
      meter_->record(src_, dst_, size);
    }
  }
  switch (fault) {
    case FaultKind::kDrop:
      ledger_posted_dropped(size);
      return true;  // transmitted, never delivered
    case FaultKind::kSever:
      ledger_posted_dropped(size);
      queue_.close();
      return false;
    case FaultKind::kDuplicate: {
      Message copy = msg;
      ledger_posted_enqueued(size);
      if (!queue_.push(std::move(copy))) ledger_enqueue_rejected(size);
      ledger_posted_enqueued(size);
      const bool ok = queue_.push(std::move(msg));
      if (!ok) ledger_enqueue_rejected(size);
      return ok;
    }
    default: {
      ledger_posted_enqueued(size);
      const bool ok = queue_.push(std::move(msg));
      // Lost the race with close(); the message was never queued.
      if (!ok) ledger_enqueue_rejected(size);
      return ok;
    }
  }
}

std::optional<Message> Channel::receive() {
  std::optional<Message> msg = queue_.pop();
  if (msg.has_value()) ledger_received(msg->wire_size());
  return msg;
}

std::optional<Message> Channel::try_receive() {
  std::optional<Message> msg = queue_.try_pop();
  if (msg.has_value()) ledger_received(msg->wire_size());
  return msg;
}

PopStatus Channel::receive_for(std::chrono::milliseconds timeout,
                               Message* out) {
  const PopStatus status = queue_.pop_for(timeout, out);
  if (status == PopStatus::kOk) ledger_received(out->wire_size());
  return status;
}

void Channel::set_fault_injector(FaultInjector* injector, std::size_t link,
                                 LinkDir dir) {
  injector_ = injector;
  injector_link_ = link;
  injector_dir_ = dir;
}

void Channel::close() { queue_.close(); }

}  // namespace vela::comm
