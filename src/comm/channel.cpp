#include "comm/channel.h"

namespace vela::comm {

Channel::Channel(std::size_t src_node, std::size_t dst_node,
                 TrafficMeter* meter)
    : src_(src_node), dst_(dst_node), meter_(meter) {}

bool Channel::send(Message msg) {
  const std::uint64_t size = msg.wire_size();
  // Account BEFORE publishing: once the receiver can observe the message,
  // its bytes must already be visible in the meter — otherwise a reader that
  // synchronizes on the reply could see a stale count (a real race caught by
  // the byte-equivalence tests). A send that loses the race with close()
  // slightly overcounts, which only happens during shutdown.
  bytes_sent_.fetch_add(size, std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  if (meter_ != nullptr) meter_->record(src_, dst_, size);
  return queue_.push(std::move(msg));
}

std::optional<Message> Channel::receive() { return queue_.pop(); }

std::optional<Message> Channel::try_receive() { return queue_.try_pop(); }

void Channel::close() { queue_.close(); }

}  // namespace vela::comm
