#include "comm/serialize.h"

#include <cmath>
#include <cstring>
#include <type_traits>

#include "tensor/qblock.h"
#include "util/check.h"

namespace vela::comm {
namespace {

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "wire fields must be raw fixed-layout scalars");
  static_assert(sizeof(T) <= sizeof(std::uint64_t),
                "wire fields are at most 8 bytes");
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T read_pod(const std::vector<std::uint8_t>& in, std::size_t& offset) {
  static_assert(std::is_trivially_copyable_v<T>,
                "wire fields must be raw fixed-layout scalars");
  static_assert(sizeof(T) <= sizeof(std::uint64_t),
                "wire fields are at most 8 bytes");
  VELA_CHECK_MSG(offset + sizeof(T) <= in.size(), "wire buffer truncated");
  T value;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

std::uint16_t float_to_half(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(std::uint32_t));
  const std::uint16_t sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000);
  const std::int32_t exponent =
      static_cast<std::int32_t>((bits >> 23) & 0xFF) - 127 + 15;
  std::uint32_t mantissa = bits & 0x7FFFFF;

  if (((bits >> 23) & 0xFF) == 0xFF) {
    // Inf / NaN: keep a mantissa bit for NaN.
    return static_cast<std::uint16_t>(sign | 0x7C00 |
                                      (mantissa ? 0x200 : 0));
  }
  if (exponent >= 0x1F) return static_cast<std::uint16_t>(sign | 0x7C00);  // ±inf
  if (exponent <= 0) {
    // Subnormal or underflow to zero.
    if (exponent < -10) return sign;
    mantissa |= 0x800000;  // implicit leading 1
    const int shift = 14 - exponent;
    std::uint32_t half_mant = mantissa >> shift;
    // Round to nearest even.
    const std::uint32_t rem = mantissa & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1))) ++half_mant;
    return static_cast<std::uint16_t>(sign | half_mant);
  }
  // Normal: round mantissa from 23 to 10 bits, nearest-even.
  std::uint32_t half_mant = mantissa >> 13;
  const std::uint32_t rem = mantissa & 0x1FFF;
  std::uint32_t half_bits =
      static_cast<std::uint32_t>(sign) |
      (static_cast<std::uint32_t>(exponent) << 10) | half_mant;
  if (rem > 0x1000 || (rem == 0x1000 && (half_bits & 1))) ++half_bits;
  return static_cast<std::uint16_t>(half_bits);
}

float half_to_float(std::uint16_t half) {
  const std::uint32_t sign = (half & 0x8000u) << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1F;
  const std::uint32_t mantissa = half & 0x3FF;
  std::uint32_t bits;
  if (exponent == 0x1F) {
    bits = sign | 0x7F800000u | (mantissa << 13);
  } else if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;
    } else {
      // Subnormal: normalize.
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400) == 0);
      bits = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
             ((m & 0x3FF) << 13);
    }
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float value;
  std::memcpy(&value, &bits, sizeof(float));
  return value;
}

std::vector<std::uint8_t> encode(const Message& msg) {
  VELA_CHECK_MSG(msg.phantom_bytes == 0,
                 "phantom messages are accounting-only and not encodable");
  VELA_CHECK(msg.wire_bits == 8 || msg.wire_bits == 16 || msg.wire_bits == 32);
  const bool q8 = msg.wire_bits == 8;
  if (q8) {
    VELA_CHECK_MSG(qblock::valid_block(msg.q8_block),
                   "q8 message without a valid block length");
  }
  std::vector<std::uint8_t> out;
  out.reserve(msg.wire_size());
  append_pod(out, static_cast<std::uint8_t>(msg.type));
  // The u8 precision slot: 16/32 travel literally; q8 travels as tag
  // 0x80|block (block < 0x80 by the message.h static_assert), which keeps
  // the 36-byte header layout — and every ledger calibrated to it — intact.
  append_pod(out, static_cast<std::uint8_t>(q8 ? (0x80u | msg.q8_block)
                                               : msg.wire_bits));
  append_pod(out, msg.chunk_index);
  append_pod(out, msg.chunk_count);
  append_pod(out, msg.request_id);
  append_pod(out, msg.source);
  append_pod(out, msg.layer);
  append_pod(out, msg.expert);
  append_pod(out, msg.step);
  // The u64 element-count slot. q8 payloads tile per row, so the receiver
  // needs the row count too: it rides the upper half as (rows << 32) |
  // numel — the PR 3 chunk-field repurposing precedent, no header growth.
  const std::uint64_t numel = msg.payload.size();
  if (q8) {
    const std::uint64_t rows =
        msg.payload.rank() >= 2 ? msg.payload.dim(0) : 1;
    VELA_CHECK_MSG(numel < (1ull << 32) && rows < (1ull << 32),
                   "q8 payload too large for the packed count slot");
    append_pod(out, (rows << 32) | numel);
  } else {
    append_pod(out, numel);
  }
  VELA_CHECK(out.size() == Message::kHeaderBytes);

  if (q8) {
    // Per-row blocks, each one fp32 scale then its int8 codes — the layout
    // whose byte count Message::wire_size() charges.
    const qblock::QTensor qt = qblock::quantize(msg.payload, msg.q8_block);
    const std::size_t per_row = qt.row_blocks();
    for (std::size_t r = 0; r < qt.rows; ++r) {
      for (std::size_t b = 0; b < per_row; ++b) {
        append_pod(out, qt.scales[r * per_row + b]);
        const std::size_t begin = b * qt.block;
        const std::size_t end =
            begin + qt.block < qt.cols ? begin + qt.block : qt.cols;
        for (std::size_t i = begin; i < end; ++i) {
          append_pod(out, qt.codes[r * qt.cols + i]);
        }
      }
    }
  } else if (msg.wire_bits == 16) {
    for (std::size_t i = 0; i < msg.payload.size(); ++i) {
      append_pod(out, float_to_half(msg.payload[i]));
    }
  } else {
    for (std::size_t i = 0; i < msg.payload.size(); ++i) {
      append_pod(out, msg.payload[i]);
    }
  }
  // Size pin: the encoded body must match what the ledgers charge. (A
  // continuation fragment is accounted header-free but still encodes its
  // header, hence the adjustment.)
  const std::uint64_t accounted =
      msg.wire_size() + (msg.chunk_index > 0 ? Message::kHeaderBytes : 0);
  VELA_CHECK_MSG(out.size() == accounted,
                 "accounted wire codec drifted from Message::wire_size()");
  return out;
}

Message decode(const std::vector<std::uint8_t>& bytes) {
  std::size_t offset = 0;
  Message msg;
  msg.type = static_cast<MessageType>(read_pod<std::uint8_t>(bytes, offset));
  const std::uint8_t precision_slot = read_pod<std::uint8_t>(bytes, offset);
  if (precision_slot & 0x80u) {
    msg.wire_bits = 8;
    msg.q8_block = precision_slot & 0x7Fu;
    VELA_CHECK_MSG(qblock::valid_block(msg.q8_block),
                   "bad q8 block tag in message header");
  } else {
    msg.wire_bits = precision_slot;
    VELA_CHECK_MSG(msg.wire_bits == 16 || msg.wire_bits == 32,
                   "bad wire_bits in message header");
  }
  msg.chunk_index = read_pod<std::uint8_t>(bytes, offset);
  msg.chunk_count = read_pod<std::uint8_t>(bytes, offset);
  VELA_CHECK_MSG(msg.chunk_count > 0 && msg.chunk_index < msg.chunk_count,
                 "bad fragment indices in message header");
  msg.request_id = read_pod<std::uint64_t>(bytes, offset);
  msg.source = read_pod<std::uint32_t>(bytes, offset);
  msg.layer = read_pod<std::uint32_t>(bytes, offset);
  msg.expert = read_pod<std::uint32_t>(bytes, offset);
  msg.step = read_pod<std::uint32_t>(bytes, offset);
  const auto count_slot = read_pod<std::uint64_t>(bytes, offset);
  if (msg.wire_bits == 8) {
    // Packed (rows << 32) | numel (see encode); payload comes back rank-2.
    const std::size_t rows = static_cast<std::size_t>(count_slot >> 32);
    const std::size_t numel =
        static_cast<std::size_t>(count_slot & 0xFFFFFFFFull);
    if (numel > 0) {
      VELA_CHECK_MSG(rows > 0 && numel % rows == 0,
                     "bad q8 row count in message header");
      qblock::QTensor qt;
      qt.rows = rows;
      qt.cols = numel / rows;
      qt.block = msg.q8_block;
      qt.codes.resize(numel);
      qt.scales.resize(rows * qt.row_blocks());
      const std::size_t per_row = qt.row_blocks();
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t b = 0; b < per_row; ++b) {
          qt.scales[r * per_row + b] = read_pod<float>(bytes, offset);
          const std::size_t begin = b * qt.block;
          const std::size_t end =
              begin + qt.block < qt.cols ? begin + qt.block : qt.cols;
          for (std::size_t i = begin; i < end; ++i) {
            qt.codes[r * qt.cols + i] = read_pod<std::int8_t>(bytes, offset);
          }
        }
      }
      msg.payload = qblock::dequantize(qt);
    }
  } else if (count_slot > 0) {
    const auto numel = count_slot;
    std::vector<float> data(numel);
    if (msg.wire_bits == 16) {
      for (auto& v : data) v = half_to_float(read_pod<std::uint16_t>(bytes, offset));
    } else {
      for (auto& v : data) v = read_pod<float>(bytes, offset);
    }
    msg.payload = Tensor({static_cast<std::size_t>(numel)}, std::move(data));
  }
  VELA_CHECK_MSG(offset == bytes.size(), "trailing bytes in wire buffer");
  return msg;
}

}  // namespace vela::comm
