#include "comm/serialize.h"

#include <cmath>
#include <cstring>
#include <type_traits>

#include "util/check.h"

namespace vela::comm {
namespace {

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "wire fields must be raw fixed-layout scalars");
  static_assert(sizeof(T) <= sizeof(std::uint64_t),
                "wire fields are at most 8 bytes");
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T read_pod(const std::vector<std::uint8_t>& in, std::size_t& offset) {
  static_assert(std::is_trivially_copyable_v<T>,
                "wire fields must be raw fixed-layout scalars");
  static_assert(sizeof(T) <= sizeof(std::uint64_t),
                "wire fields are at most 8 bytes");
  VELA_CHECK_MSG(offset + sizeof(T) <= in.size(), "wire buffer truncated");
  T value;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

std::uint16_t float_to_half(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(std::uint32_t));
  const std::uint16_t sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000);
  const std::int32_t exponent =
      static_cast<std::int32_t>((bits >> 23) & 0xFF) - 127 + 15;
  std::uint32_t mantissa = bits & 0x7FFFFF;

  if (((bits >> 23) & 0xFF) == 0xFF) {
    // Inf / NaN: keep a mantissa bit for NaN.
    return static_cast<std::uint16_t>(sign | 0x7C00 |
                                      (mantissa ? 0x200 : 0));
  }
  if (exponent >= 0x1F) return static_cast<std::uint16_t>(sign | 0x7C00);  // ±inf
  if (exponent <= 0) {
    // Subnormal or underflow to zero.
    if (exponent < -10) return sign;
    mantissa |= 0x800000;  // implicit leading 1
    const int shift = 14 - exponent;
    std::uint32_t half_mant = mantissa >> shift;
    // Round to nearest even.
    const std::uint32_t rem = mantissa & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1))) ++half_mant;
    return static_cast<std::uint16_t>(sign | half_mant);
  }
  // Normal: round mantissa from 23 to 10 bits, nearest-even.
  std::uint32_t half_mant = mantissa >> 13;
  const std::uint32_t rem = mantissa & 0x1FFF;
  std::uint32_t half_bits =
      static_cast<std::uint32_t>(sign) |
      (static_cast<std::uint32_t>(exponent) << 10) | half_mant;
  if (rem > 0x1000 || (rem == 0x1000 && (half_bits & 1))) ++half_bits;
  return static_cast<std::uint16_t>(half_bits);
}

float half_to_float(std::uint16_t half) {
  const std::uint32_t sign = (half & 0x8000u) << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1F;
  const std::uint32_t mantissa = half & 0x3FF;
  std::uint32_t bits;
  if (exponent == 0x1F) {
    bits = sign | 0x7F800000u | (mantissa << 13);
  } else if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;
    } else {
      // Subnormal: normalize.
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400) == 0);
      bits = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
             ((m & 0x3FF) << 13);
    }
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float value;
  std::memcpy(&value, &bits, sizeof(float));
  return value;
}

std::vector<std::uint8_t> encode(const Message& msg) {
  VELA_CHECK_MSG(msg.phantom_bytes == 0,
                 "phantom messages are accounting-only and not encodable");
  VELA_CHECK(msg.wire_bits == 16 || msg.wire_bits == 32);
  std::vector<std::uint8_t> out;
  out.reserve(msg.wire_size());
  append_pod(out, static_cast<std::uint8_t>(msg.type));
  append_pod(out, static_cast<std::uint8_t>(msg.wire_bits));
  append_pod(out, msg.chunk_index);
  append_pod(out, msg.chunk_count);
  append_pod(out, msg.request_id);
  append_pod(out, msg.source);
  append_pod(out, msg.layer);
  append_pod(out, msg.expert);
  append_pod(out, msg.step);
  append_pod(out, static_cast<std::uint64_t>(msg.payload.size()));
  VELA_CHECK(out.size() == Message::kHeaderBytes);

  if (msg.wire_bits == 16) {
    for (std::size_t i = 0; i < msg.payload.size(); ++i) {
      append_pod(out, float_to_half(msg.payload[i]));
    }
  } else {
    for (std::size_t i = 0; i < msg.payload.size(); ++i) {
      append_pod(out, msg.payload[i]);
    }
  }
  return out;
}

Message decode(const std::vector<std::uint8_t>& bytes) {
  std::size_t offset = 0;
  Message msg;
  msg.type = static_cast<MessageType>(read_pod<std::uint8_t>(bytes, offset));
  msg.wire_bits = read_pod<std::uint8_t>(bytes, offset);
  VELA_CHECK_MSG(msg.wire_bits == 16 || msg.wire_bits == 32,
                 "bad wire_bits in message header");
  msg.chunk_index = read_pod<std::uint8_t>(bytes, offset);
  msg.chunk_count = read_pod<std::uint8_t>(bytes, offset);
  VELA_CHECK_MSG(msg.chunk_count > 0 && msg.chunk_index < msg.chunk_count,
                 "bad fragment indices in message header");
  msg.request_id = read_pod<std::uint64_t>(bytes, offset);
  msg.source = read_pod<std::uint32_t>(bytes, offset);
  msg.layer = read_pod<std::uint32_t>(bytes, offset);
  msg.expert = read_pod<std::uint32_t>(bytes, offset);
  msg.step = read_pod<std::uint32_t>(bytes, offset);
  const auto numel = read_pod<std::uint64_t>(bytes, offset);
  if (numel > 0) {
    std::vector<float> data(numel);
    if (msg.wire_bits == 16) {
      for (auto& v : data) v = half_to_float(read_pod<std::uint16_t>(bytes, offset));
    } else {
      for (auto& v : data) v = read_pod<float>(bytes, offset);
    }
    msg.payload = Tensor({static_cast<std::size_t>(numel)}, std::move(data));
  }
  VELA_CHECK_MSG(offset == bytes.size(), "trailing bytes in wire buffer");
  return msg;
}

}  // namespace vela::comm
