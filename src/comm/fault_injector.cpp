#include "comm/fault_injector.h"

#include "util/check.h"

namespace vela::comm {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kSever:
      return "sever";
    case FaultKind::kCrashWorker:
      return "crash-worker";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rule_fired_(plan_.rules.size(), false) {
  for (const auto& r : plan_.rules) {
    VELA_CHECK_MSG(r.kind != FaultKind::kNone,
                   "fault rule with kind kNone is meaningless");
    VELA_CHECK_MSG(r.kind != FaultKind::kDelay || r.delay_seconds >= 0.0,
                   "negative delay in fault rule");
  }
}

FaultInjector::Lane& FaultInjector::lane(std::size_t link, LinkDir dir) {
  const std::uint64_t key =
      static_cast<std::uint64_t>(link) * 2 + static_cast<std::uint64_t>(dir);
  Lane& l = lanes_[key];
  if (!l.rng_init) {
    // A fixed per-lane stream: single-producer channels make the sequence of
    // draws — and therefore every background fault — reproducible.
    l.rng = Rng(plan_.seed * 0x9E3779B97F4A7C15ULL + key + 1);
    l.rng_init = true;
  }
  return l;
}

FaultKind FaultInjector::pick_fault(Lane& lane, std::size_t link, LinkDir dir,
                                    std::uint64_t index, double* delay_out) {
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& r = plan_.rules[i];
    if (rule_fired_[i] || r.link != link || r.dir != dir ||
        r.message_index != index) {
      continue;
    }
    rule_fired_[i] = true;
    *delay_out = r.delay_seconds;
    return r.kind;
  }
  const double background = plan_.drop_rate + plan_.corrupt_rate +
                            plan_.duplicate_rate + plan_.delay_rate;
  if (background > 0.0) {
    const double u = lane.rng.uniform();
    if (u < plan_.drop_rate) return FaultKind::kDrop;
    if (u < plan_.drop_rate + plan_.corrupt_rate) return FaultKind::kCorrupt;
    if (u < plan_.drop_rate + plan_.corrupt_rate + plan_.duplicate_rate) {
      return FaultKind::kDuplicate;
    }
    if (u < background) {
      *delay_out = plan_.delay_seconds;
      return FaultKind::kDelay;
    }
  }
  return FaultKind::kNone;
}

FaultKind FaultInjector::on_send(std::size_t link, LinkDir dir, Message& msg) {
  std::lock_guard<std::mutex> guard(mutex_);
  Lane& l = lane(link, dir);
  const std::uint64_t index = l.next_index++;
  double delay = 0.0;
  const FaultKind kind = pick_fault(l, link, dir, index, &delay);
  switch (kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kDrop:
      ++counters_.dropped;
      break;
    case FaultKind::kDelay:
      ++counters_.delayed;
      pending_delay_seconds_ += delay;
      break;
    case FaultKind::kDuplicate:
      ++counters_.duplicated;
      break;
    case FaultKind::kCorrupt:
      ++counters_.corrupted;
      // Flip payload bits after the channel stamped the checksum; receivers
      // detect the mismatch and drop the message (they never read the
      // garbage, so the flipped values themselves are irrelevant).
      if (msg.payload.size() > 0) {
        float* data = msg.payload.data();
        for (std::size_t i = 0; i < msg.payload.size();
             i += msg.payload.size() / 4 + 1) {
          data[i] = -data[i] + 1.0f;
        }
      }
      msg.checksum ^= 0x5A5A5A5Au;  // guarantees detection even when the
                                    // flips cancel or there is no payload
      break;
    case FaultKind::kSever:
      ++counters_.severed;
      break;
    case FaultKind::kCrashWorker:
      ++counters_.crashed;
      msg = Message{};
      msg.type = MessageType::kCrash;
      break;
  }
  return kind;
}

FaultCounters FaultInjector::counters() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return counters_;
}

std::uint64_t FaultInjector::faults_injected() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return counters_.total();
}

double FaultInjector::consume_delay_seconds() {
  std::lock_guard<std::mutex> guard(mutex_);
  const double d = pending_delay_seconds_;
  pending_delay_seconds_ = 0.0;
  return d;
}

std::uint64_t FaultInjector::messages_seen(std::size_t link,
                                           LinkDir dir) const {
  std::lock_guard<std::mutex> guard(mutex_);
  const std::uint64_t key =
      static_cast<std::uint64_t>(link) * 2 + static_cast<std::uint64_t>(dir);
  auto it = lanes_.find(key);
  return it == lanes_.end() ? 0 : it->second.next_index;
}

const ConnectionScript* FaultInjector::connection_script(std::size_t link,
                                                         LinkDir dir) const {
  // plan_ is immutable after construction; no lock needed and the returned
  // pointer stays valid for the injector's lifetime.
  for (const ConnectionFaultRule& rule : plan_.connection_rules) {
    if (rule.link == link && rule.dir == dir) return &rule.script;
  }
  return nullptr;
}

}  // namespace vela::comm
