// Cross-process socket transport of the comm fabric (DESIGN.md §12).
//
// RemoteSocketTransport is the remote-process split of SocketTransport: ONE
// direction of a master↔worker DuplexLink carried over its own TCP
// connection whose two ends live in different OS processes. Each side plays
// one role:
//
//   * kSender   — owns the sequence counter and the replay buffer, wraps
//     frames in kData session records, drains cumulative acks (and hello
//     prunes) arriving on the reverse path of the same connection, and
//     closes with goodbye-then-FIN;
//   * kReceiver — delivers frames strictly in sequence order, discards
//     replayed duplicates, acks cumulatively, and distinguishes goodbye
//     (graceful close) from bare EOF (connection loss → session resume).
//
// The session codec, replay/ack/hello resume protocol and its accounting
// are byte-for-byte the loopback SocketTransport's (comm/session.h is
// shared), so everything the equivalence gates pin — exactly-once delivery,
// replay charged to on_session_replay, goodbye semantics — holds across
// process boundaries too.
//
// Connection lifecycle: the worker process is always the dialer (it
// connects to the master's PeerListener port and opens with a kIdent
// record; on loss it redials and re-identifies with the same session id).
// The master side adopts connections from the PeerListener and, on loss,
// waits for the peer to re-identify (take_resume). Both sides then run the
// ordinary kHello handshake, which is what "identity layered under the
// session-resume records" means.
#pragma once

#include <memory>

#include "comm/peer_listener.h"
#include "comm/session.h"
#include "comm/transport.h"

namespace vela::comm {

class RemoteSocketTransport final : public Transport {
 public:
  enum class Role : std::uint8_t { kSender, kReceiver };

  // Dialer side (worker process): connects to 127.0.0.1:`port`, announces
  // `id`, and — in the receiver role — immediately offers its hello. The
  // initial connect is retried on `policy`'s backoff schedule; failure to
  // reach the master at all fails a VELA_CHECK (a worker without a master
  // cannot run).
  [[nodiscard]] static std::unique_ptr<RemoteSocketTransport> dial(
      std::uint16_t port, Role role, const session::PeerIdentity& id,
      util::Clock* clock = nullptr, ReconnectPolicy policy = {});

  // Acceptor side (master process): adopts a connection the `listener`
  // accepted and identified. `listener` is retained (non-owning) as the
  // resume source after a connection loss; it must outlive this transport.
  [[nodiscard]] static std::unique_ptr<RemoteSocketTransport> adopt(
      AcceptedPeer peer, Role role, PeerListener* listener,
      util::Clock* clock = nullptr, ReconnectPolicy policy = {});

  ~RemoteSocketTransport() override;

  RemoteSocketTransport(const RemoteSocketTransport&) = delete;
  RemoteSocketTransport& operator=(const RemoteSocketTransport&) = delete;

  bool send(std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> receive() override;
  std::optional<std::vector<std::uint8_t>> try_receive() override;
  PopStatus receive_for(std::chrono::milliseconds timeout,
                        std::vector<std::uint8_t>* out) override;
  void close() override;
  [[nodiscard]] bool closed() const override;
  [[nodiscard]] const char* name() const override { return "socket"; }

  [[nodiscard]] SessionStats session_stats() const;
  [[nodiscard]] const session::PeerIdentity& identity() const;

  // Cuts the live connection at the socket level (no goodbye), exactly what
  // a killed peer or a yanked cable looks like — the reconnect tests drive
  // the resume path through this.
  void sever_for_testing();

 private:
  RemoteSocketTransport();
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace vela::comm
